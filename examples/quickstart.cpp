// Quickstart: build an OG-LVQ index and search it.
//
//   1. Get your vectors into a row-major float matrix.
//   2. Pick a metric and an LVQ setting (LVQ-8 is the sweet spot for
//      d <= ~200; LVQ-4x8 for very high dimensionality).
//   3. Build with BuildOgLvq and query with SearchBatch.
//
// Run:  ./build/examples/quickstart
#include <cstdio>

#include "blink.h"

int main() {
  using namespace blink;

  // A small cosine-similarity embedding workload (synthetic stand-in for
  // deep-96): 20k base vectors, 500 queries, d = 96, unit-normalized.
  Dataset data = MakeDeepLike(/*n=*/20000, /*nq=*/500);
  std::printf("dataset %s: n=%zu d=%zu metric=%s\n", data.name.c_str(),
              data.base.rows(), data.base.cols(), MetricName(data.metric));

  // Build an OG-LVQ index: LVQ-8 compression, graph out-degree R = 32.
  VamanaBuildParams bp;
  bp.graph_max_degree = 32;
  bp.window_size = 64;
  bp.alpha = 1.2f;
  auto index = BuildOgLvq(data.base, data.metric, /*bits1=*/8, /*bits2=*/0, bp);
  std::printf("built %s in %.2fs  (%.1f MiB: vectors %.1f + graph %.1f)\n",
              index->name().c_str(), index->build_seconds(),
              index->memory_bytes() / 1048576.0,
              index->storage().memory_bytes() / 1048576.0,
              index->graph().memory_bytes() / 1048576.0);

  // Search: W (the window) trades accuracy for speed.
  const size_t k = 10;
  RuntimeParams params;
  params.window = 32;
  Matrix<uint32_t> ids(data.queries.rows(), k);
  Timer t;
  index->SearchBatch(data.queries, k, params, ids.data());
  const double qps = data.queries.rows() / t.Seconds();

  // Check accuracy against exact ground truth.
  Matrix<uint32_t> gt =
      ComputeGroundTruth(data.base, data.queries, k, data.metric);
  std::printf("10-recall@10 = %.4f at %.0f QPS (single thread)\n",
              MeanRecallAtK(ids, gt, k), qps);

  // First query's neighbors:
  std::printf("query 0 nearest ids:");
  for (size_t j = 0; j < k; ++j) std::printf(" %u", ids(0, j));
  std::printf("\n");
  return 0;
}
