// Passage retrieval (the paper's DPR-768 scenario): inner-product search
// over high-dimensional LLM embeddings, where two-level LVQ-4x8 shines —
// the level-1 4-bit codes slash bandwidth during traversal and the 8-bit
// residuals recover accuracy in the final re-ranking (paper Fig. 13,
// Table 4).
//
// Run:  ./build/examples/passage_retrieval
#include <cstdio>

#include "blink.h"

int main() {
  using namespace blink;

  const size_t n = 6000, nq = 200, k = 10;
  Dataset data = MakeDprLike(n, nq);
  Matrix<uint32_t> gt = ComputeGroundTruth(data.base, data.queries, k, data.metric);
  std::printf("passage retrieval, %s: n=%zu d=%zu metric=%s\n",
              data.name.c_str(), n, data.base.cols(), MetricName(data.metric));

  VamanaBuildParams bp;
  bp.graph_max_degree = 32;
  bp.window_size = 64;
  bp.alpha = 0.95f;  // the paper's alpha for inner-product datasets

  auto f32 = BuildVamanaF32(data.base, data.metric, bp);
  auto lvq48 = BuildOgLvq(data.base, data.metric, /*bits1=*/4, /*bits2=*/8, bp);

  std::printf("footprints: float32 %.1f MiB -> LVQ-4x8 %.1f MiB (vectors CR %.2fx)\n",
              f32->memory_bytes() / 1048576.0,
              lvq48->memory_bytes() / 1048576.0,
              lvq48->storage().level2()->compression_ratio());

  const auto sweep = WindowSweep({10, 16, 24, 32, 48, 64, 96});
  HarnessOptions opts;
  opts.k = k;
  opts.best_of = 3;

  auto pts_f32 = RunSweep(*f32, data.queries, gt, sweep, opts);
  auto pts_lvq = RunSweep(*lvq48, data.queries, gt, sweep, opts);
  PrintSweep(f32->name(), pts_f32);
  PrintSweep(lvq48->name(), pts_lvq);

  // The rerank ablation: the same two-level index searched without its
  // second level loses accuracy at identical traversal cost.
  std::vector<RuntimeParams> one_point = WindowSweep({32});
  auto with_rr = RunSweep(*lvq48, data.queries, gt, one_point, opts);
  one_point[0].rerank = false;
  auto without_rr = RunSweep(*lvq48, data.queries, gt, one_point, opts);
  std::printf("rerank ablation at W=32: with=%.4f, without=%.4f recall\n",
              with_rr[0].recall, without_rr[0].recall);
  return 0;
}
