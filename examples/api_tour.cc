// api_tour — the public facade end to end: one spec, one Build, one
// self-describing Open, across index flavors.
//
//   ./example_api_tour [out_dir]
//
// Builds a small synthetic dataset, then walks through: (1) declarative
// builds from IndexSpec, (2) Save -> Open round trips with no re-supplied
// configuration, (3) the capability model and mutation forwarding,
// (4) serving through Index::Serve, and (5) the name -> factory registry
// driving a harness sweep. See DESIGN.md D10.
#include <cstdio>
#include <filesystem>
#include <string>

#include "blink.h"

using namespace blink;

int main(int argc, char** argv) {
  const std::string out_dir =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() / "blink_api_tour")
                     .string();
  std::filesystem::create_directories(out_dir);

  Dataset data = MakeDeepLike(/*n=*/5000, /*nq=*/200, /*seed=*/42);
  Matrix<uint32_t> gt =
      ComputeGroundTruth(data.base, data.queries, /*k=*/10, data.metric);
  std::printf("dataset: n=%zu nq=%zu d=%zu (%s)\n\n", data.base.rows(),
              data.queries.rows(), data.base.cols(), MetricName(data.metric));

  // (1) Declarative builds: say what you want, not which constructor.
  IndexSpec spec;
  spec.kind = IndexKind::kStaticLvq;  // the paper's OG-LVQ system
  spec.metric = data.metric;
  spec.bits1 = 4;
  spec.bits2 = 8;  // two-level LVQ-4x8 with final re-ranking
  spec.graph.graph_max_degree = 32;

  Result<Index> built = Build(spec, data.base);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  Index index = std::move(built).value();
  std::printf("built   %-22s %6.1f KiB  caps:%s%s%s\n", index.name().c_str(),
              index.memory_bytes() / 1024.0,
              index.has(kCapSave) ? " save" : "",
              index.has(kCapInsert) ? " insert" : "",
              index.has(kCapRerank) ? " rerank" : "");

  // (2) Save -> Open: the artifact embeds metric + params; nothing is
  // re-supplied at load time.
  const std::string prefix = out_dir + "/tour_lvq";
  if (Status st = index.Save(prefix); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  Result<Index> reopened = Open(prefix);
  if (!reopened.ok()) {
    std::fprintf(stderr, "%s\n", reopened.status().ToString().c_str());
    return 1;
  }
  RuntimeParams params;
  params.window = 64;
  Matrix<uint32_t> ids(data.queries.rows(), 10);
  reopened.value().SearchBatch(data.queries, 10, params, ids.data());
  std::printf("reopened %-21s recall@10 %.4f (no flags re-supplied)\n",
              reopened.value().name().c_str(), MeanRecallAtK(ids, gt, 10));

  // (3) Mutation forwards to dynamic flavors; static handles say so.
  if (Status st = index.Delete(0); !st.ok()) {
    std::printf("static delete -> %s\n", st.ToString().c_str());
  }
  spec.kind = IndexKind::kDynamicLvq;
  spec.bits2 = 0;
  Result<Index> dyn = Build(spec, data.base);
  if (!dyn.ok()) {
    std::fprintf(stderr, "%s\n", dyn.status().ToString().c_str());
    return 1;
  }
  auto id = dyn.value().Insert(data.base.row(0));
  (void)dyn.value().Delete(id.ok() ? id.value() : 0);
  (void)dyn.value().Consolidate();
  std::printf("dynamic  %-21s insert/delete/consolidate ok (n=%zu)\n",
              dyn.value().name().c_str(), dyn.value().size());

  // (4) Serving: searcher pools + async micro-batching over any flavor.
  ServingOptions so;
  so.num_threads = 2;
  auto engine = std::move(dyn.value().Serve(so)).value();
  auto fut = engine->Submit(data.queries.row(0), 10, params);
  SearchResult res = fut.get();
  std::printf("served   one async query -> %zu ids (top id %u)\n",
              res.ids.size(), res.ids.empty() ? kInvalidId : res.ids[0]);

  // (5) The registry: build by name, sweep through the harness — the
  // same-harness baseline methodology with one entry point.
  std::printf("\nregistry sweep (window 32/64, recall@10 : QPS):\n");
  spec.bits2 = 8;  // back to two-level for the quality comparison
  for (const char* name : {"static-lvq", "hnsw"}) {
    Result<Index> named = BuildNamed(name, spec, data.base);
    if (!named.ok()) {
      std::fprintf(stderr, "%s\n", named.status().ToString().c_str());
      return 1;
    }
    HarnessOptions ho;
    ho.k = 10;
    ho.best_of = 1;
    const auto points = RunSweep(named.value().AsSearchIndex(), data.queries,
                                 gt, WindowSweep({32, 64}), ho);
    std::printf("  %-12s", name);
    for (const SweepPoint& pt : points) {
      std::printf("  %.4f : %-8.0f", pt.recall, pt.qps);
    }
    std::printf("\n");
  }
  std::printf("\nartifacts in %s\n", out_dir.c_str());
  return 0;
}
