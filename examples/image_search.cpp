// Image-embedding search (the paper's deep-96 scenario): cosine similarity
// over unit-normalized CNN embeddings. Demonstrates the LVQ value
// proposition end to end — same graph, same recall target, compare
// float32 / float16 / LVQ-8 on throughput and memory.
//
// Run:  ./build/examples/image_search
#include <cstdio>

#include "blink.h"

namespace {

struct Row {
  const char* label;
  double qps;
  double recall;
  double mib;
};

}  // namespace

int main() {
  using namespace blink;

  const size_t n = 20000, nq = 500, k = 10;
  Dataset data = MakeDeepLike(n, nq);
  Matrix<uint32_t> gt = ComputeGroundTruth(data.base, data.queries, k, data.metric);

  VamanaBuildParams bp;
  bp.graph_max_degree = 32;
  bp.window_size = 64;
  bp.alpha = 1.2f;

  auto f32 = BuildVamanaF32(data.base, data.metric, bp);
  auto f16 = BuildVamanaF16(data.base, data.metric, bp);
  auto lvq8 = BuildOgLvq(data.base, data.metric, 8, 0, bp);

  // Find each encoding's throughput at 0.9 recall by sweeping the window.
  const auto sweep = WindowSweep({10, 16, 24, 32, 48, 64, 96, 128});
  HarnessOptions opts;
  opts.k = k;
  opts.best_of = 3;

  auto eval = [&](const SearchIndex& idx) -> Row {
    auto pts = RunSweep(idx, data.queries, gt, sweep, opts);
    const SweepPoint* at = PointAtRecall(pts, 0.9);
    return {"", at != nullptr ? at->qps : 0.0, at != nullptr ? at->recall : 0.0,
            idx.memory_bytes() / 1048576.0};
  };

  Row rows[3] = {eval(*f32), eval(*f16), eval(*lvq8)};
  rows[0].label = "float32";
  rows[1].label = "float16";
  rows[2].label = "LVQ-8";

  std::printf("image search, %s, n=%zu, target 10-recall@10 >= 0.9\n",
              data.name.c_str(), n);
  std::printf("%-10s %12s %10s %12s %8s\n", "encoding", "QPS", "recall",
              "memory(MiB)", "speedup");
  for (const Row& r : rows) {
    std::printf("%-10s %12.0f %10.4f %12.1f %7.2fx\n", r.label, r.qps,
                r.recall, r.mib, rows[0].qps > 0 ? r.qps / rows[0].qps : 0.0);
  }
  return 0;
}
