// Adapting LVQ to data-distribution shifts (paper Sec. 3.2).
//
// LVQ's compression model is just the dataset mean mu: when the data
// distribution drifts, updating the model is a linear-time recompute of mu
// plus a re-encode — no k-means retraining (the expensive periodic update
// PQ-based indices need).
//
// This example encodes a dataset against a *stale* mean (simulating drift),
// measures the reconstruction penalty, then re-encodes with the refreshed
// mean and shows the penalty disappear.
//
// Run:  ./build/examples/dynamic_reencoding
#include <cmath>
#include <cstdio>
#include <vector>

#include "blink.h"

namespace {

/// Mean squared reconstruction error of an encoded dataset.
double ReconstructionMse(const blink::LvqDataset& ds, blink::MatrixViewF data) {
  std::vector<float> buf(ds.dim());
  double acc = 0.0;
  for (size_t i = 0; i < ds.size(); ++i) {
    ds.Decode(i, buf.data());
    const float* row = data.row(i);
    for (size_t j = 0; j < ds.dim(); ++j) {
      const double e = static_cast<double>(row[j]) - buf[j];
      acc += e * e;
    }
  }
  return acc / (static_cast<double>(ds.size()) * ds.dim());
}

}  // namespace

int main() {
  using namespace blink;

  const size_t n = 20000, d = 96;
  Dataset t0 = MakeDeepLike(n, 100, /*seed=*/1);

  // Simulate drift: the serving distribution shifts by a constant offset
  // (e.g. an embedding-model fine-tune moving the centroid).
  MatrixF shifted = t0.base.Clone();
  Rng rng(99);
  std::vector<float> drift(d);
  for (size_t j = 0; j < d; ++j) drift[j] = rng.Gaussian(0.0f, 0.15f);
  for (size_t i = 0; i < n; ++i) {
    float* row = shifted.row(i);
    for (size_t j = 0; j < d; ++j) row[j] += drift[j];
  }

  LvqDataset::Options opts;
  opts.bits = 8;

  // (a) Fresh model on the original data.
  LvqDataset fresh = LvqDataset::Encode(t0.base, opts);
  // (b) Stale model: drifted data encoded against the time-0 mean.
  LvqDataset stale = LvqDataset::EncodeWithMean(shifted, fresh.mean(), opts);
  // (c) Model update per Sec. 3.2: recompute mu over the new data,
  //     re-encode. Both steps are linear in n.
  Timer t;
  LvqDataset refreshed = LvqDataset::Encode(shifted, opts);
  const double update_s = t.Seconds();

  std::printf("LVQ-8 reconstruction MSE (d=%zu, n=%zu)\n", d, n);
  std::printf("  fresh model, original data : %.3e\n",
              ReconstructionMse(fresh, t0.base));
  std::printf("  STALE model, drifted data  : %.3e\n",
              ReconstructionMse(stale, shifted));
  std::printf("  refreshed model (%.3fs)    : %.3e\n", update_s,
              ReconstructionMse(refreshed, shifted));
  std::printf("\nThe stale-mean penalty comes from off-center vectors wasting "
              "code range;\nrecomputing mu + re-encoding (both O(n*d)) restores "
              "the fresh-model error.\n");
  return 0;
}
