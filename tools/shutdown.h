// Graceful-stop plumbing shared by the long-running tools (blink_server,
// blink_serve): SIGINT/SIGTERM set a flag the main loop polls, so the
// tool drains in-flight work and prints its final stats instead of dying
// mid-write. A second signal gives up and _exit(130)s — the escape hatch
// when a drain itself wedges.
#pragma once

#include <csignal>
#include <unistd.h>

namespace blink {
namespace tools {

namespace detail {
// sig_atomic_t + _exit: everything here is async-signal-safe.
inline volatile std::sig_atomic_t g_stop_requested = 0;

inline void StopSignalHandler(int) {
  if (detail::g_stop_requested) _exit(130);  // second signal: give up now
  detail::g_stop_requested = 1;
}
}  // namespace detail

/// Installs the SIGINT/SIGTERM handler. Call once at tool startup, before
/// the serving loop.
inline void InstallStopHandler() {
  struct sigaction sa = {};
  sa.sa_handler = detail::StopSignalHandler;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

/// True once SIGINT/SIGTERM has been received.
inline bool StopRequested() { return detail::g_stop_requested != 0; }

}  // namespace tools
}  // namespace blink
