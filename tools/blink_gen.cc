// blink_gen — generate a synthetic dataset family to fvecs files.
//
// Usage:
//   blink_gen <family> <n> <nq> <out_prefix> [seed]
//     family: deep | gist | sift | glove25 | glove50 | dpr | t2i
// Writes <out_prefix>.base.fvecs, <out_prefix>.query.fvecs and
// <out_prefix>.gt.ivecs (exact top-100 under the family's metric).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "blink.h"

using namespace blink;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <deep|gist|sift|glove25|glove50|dpr|t2i> <n> <nq> "
               "<out_prefix> [seed]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 5) return Usage(argv[0]);
  const std::string family = argv[1];
  const size_t n = std::strtoull(argv[2], nullptr, 10);
  const size_t nq = std::strtoull(argv[3], nullptr, 10);
  const std::string prefix = argv[4];
  const uint64_t seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1234;
  if (n == 0 || nq == 0) return Usage(argv[0]);

  Dataset data;
  if (family == "deep") {
    data = MakeDeepLike(n, nq, seed);
  } else if (family == "gist") {
    data = MakeGistLike(n, nq, seed);
  } else if (family == "sift") {
    data = MakeSiftLike(n, nq, seed);
  } else if (family == "glove25") {
    data = MakeGloveLike(25, n, nq, seed);
  } else if (family == "glove50") {
    data = MakeGloveLike(50, n, nq, seed);
  } else if (family == "dpr") {
    data = MakeDprLike(n, nq, seed);
  } else if (family == "t2i") {
    data = MakeT2iLike(n, nq, seed);
  } else {
    return Usage(argv[0]);
  }

  std::printf("generated %s: n=%zu nq=%zu d=%zu metric=%s\n",
              data.name.c_str(), n, nq, data.base.cols(),
              MetricName(data.metric));

  Status st = WriteFvecs(prefix + ".base.fvecs", data.base);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  st = WriteFvecs(prefix + ".query.fvecs", data.queries);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  const size_t k = std::min<size_t>(100, n);
  ThreadPool pool(NumThreads());
  Matrix<uint32_t> gt =
      ComputeGroundTruth(data.base, data.queries, k, data.metric, &pool);
  Matrix<int32_t> gt_i(gt.rows(), gt.cols());
  for (size_t i = 0; i < gt.size(); ++i) {
    gt_i.data()[i] = static_cast<int32_t>(gt.data()[i]);
  }
  st = WriteIvecs(prefix + ".gt.ivecs", gt_i);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s.{base.fvecs,query.fvecs,gt.ivecs} (gt k=%zu)\n",
              prefix.c_str(), k);
  return 0;
}
