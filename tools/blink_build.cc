// blink_build — build an index of any flavor from an fvecs file and
// persist it as a self-describing artifact (reload with Open(): no
// metric or params need re-supplying).
//
// Usage:
//   blink_build <base.fvecs> <out_prefix> [options]
//     --kind K              static-lvq (default) | static-f32 | static-f16 |
//                           static-leanvec | static-leanvec-lvq | sharded |
//                           dynamic-f32 | dynamic-lvq
//     --metric l2|ip        similarity (default l2)
//     --bits1 B             level-1 LVQ bits (default 8)
//     --bits2 B             level-2 residual bits, 0 = one-level (default 0)
//     --leanvec-dim D       reduced search dimension d' for the leanvec
//                           kinds, 0 = d/4 (default 0)
//     --R N                 graph max out-degree (default 32)
//     --window N            build window W (default 2R)
//     --alpha F             pruning relaxation (default 1.2 l2 / 0.95 ip)
//     --shards S            shard count; S > 1 implies --kind sharded
//     --partition kmeans|rr sharding method (default kmeans)
//     --meta SPEC           attach deterministic synthetic per-vector
//                           metadata: "tags" for the tag column alone, or
//                           a comma list of numeric column types, e.g.
//                           "f64,i64" (the tag column always exists). The
//                           store is saved as a .meta sidecar and filtered
//                           search (--filter in blink_search) works on the
//                           reopened artifact.
//     --meta-seed S         generator seed (default 42)
// Static kinds write <out_prefix>.graph and <out_prefix>.vecs; sharded
// writes the <out_prefix>/ directory (manifest + per-shard bundles);
// dynamic kinds write the single <out_prefix> BLDY file. With --meta each
// adds its metadata sidecar next to the artifact.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "blink.h"
#include "filter/synthetic.h"
#include "flags.h"

using namespace blink;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <base.fvecs> <out_prefix> [--kind K] "
               "[--metric l2|ip] [--bits1 B] [--bits2 B] [--leanvec-dim D] "
               "[--R N] [--window N] [--alpha F]\n"
               "       [--shards S] [--partition kmeans|rr] "
               "[--meta tags|COLS] [--meta-seed S]\n",
               argv0);
  return 2;
}

/// "tags" -> empty column list; otherwise a strict comma list of
/// i64|f64 tokens.
bool ParseMetaSpec(const char* value, std::vector<ColumnType>* types) {
  types->clear();
  if (std::strcmp(value, "tags") == 0) return true;
  const char* p = value;
  while (*p != '\0') {
    if (std::strncmp(p, "i64", 3) == 0) {
      types->push_back(ColumnType::kI64);
      p += 3;
    } else if (std::strncmp(p, "f64", 3) == 0) {
      types->push_back(ColumnType::kF64);
      p += 3;
    } else {
      break;
    }
    if (*p == '\0') return true;
    if (*p != ',' || p[1] == '\0') break;  // trailing comma or garbage
    ++p;
  }
  std::fprintf(stderr,
               "--meta: expected 'tags' or a comma list of i64|f64, got "
               "'%s'\n",
               value);
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);
  const std::string base_path = argv[1];
  const std::string prefix = argv[2];
  IndexSpec spec;
  spec.graph.graph_max_degree = 32;
  spec.graph.window_size = 0;  // 0 = 2R, resolved by Build()
  spec.graph.alpha = 0.0f;     // 0 = metric default, resolved by Build()
  bool kind_set = false;
  bool attach_meta = false;
  std::vector<ColumnType> meta_types;
  uint64_t meta_seed = 42;
  tools::FlagParser args(argc, argv, 3);
  std::string flag;
  const char* val = nullptr;
  long long iv = 0;
  double dv = 0.0;
  while (args.Next(&flag, &val)) {
    if (flag == "--kind") {
      auto kind = ParseIndexKind(val);
      if (!kind.ok()) {
        std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
        return 1;
      }
      spec.kind = kind.value();
      kind_set = true;
    } else if (flag == "--metric") {
      if (!tools::ParseMetricFlag(flag, val, &spec.metric)) return 1;
    } else if (flag == "--bits1") {
      // The serialized format (and UnpackCode) support 1..16 bits.
      if (!tools::ParseIntFlag(flag, val, 1, 16, &iv)) return 1;
      spec.bits1 = static_cast<int>(iv);
    } else if (flag == "--bits2") {
      if (!tools::ParseIntFlag(flag, val, 0, 16, &iv)) return 1;  // 0 = one-level
      spec.bits2 = static_cast<int>(iv);
    } else if (flag == "--leanvec-dim") {
      if (!tools::ParseIntFlag(flag, val, 0, 1 << 20, &iv)) return 1;  // 0 = d/4
      spec.leanvec_dim = static_cast<size_t>(iv);
    } else if (flag == "--R") {
      if (!tools::ParseIntFlag(flag, val, 1, 4096, &iv)) return 1;
      spec.graph.graph_max_degree = static_cast<uint32_t>(iv);
    } else if (flag == "--window") {
      if (!tools::ParseIntFlag(flag, val, 1, 1 << 20, &iv)) return 1;
      spec.graph.window_size = static_cast<uint32_t>(iv);
    } else if (flag == "--alpha") {
      if (!tools::ParseDoubleFlag(flag, val, &dv)) return 1;
      spec.graph.alpha = static_cast<float>(dv);
    } else if (flag == "--shards") {
      if (!tools::ParseIntFlag(flag, val, 1, 1 << 16, &iv)) return 1;
      spec.partition.num_shards = static_cast<size_t>(iv);
      if (iv > 1 && !kind_set) spec.kind = IndexKind::kSharded;
    } else if (flag == "--partition") {
      spec.partition.method = std::strcmp(val, "rr") == 0
                                  ? PartitionMethod::kRoundRobin
                                  : PartitionMethod::kBalancedKMeans;
    } else if (flag == "--meta") {
      if (!ParseMetaSpec(val, &meta_types)) return 1;
      attach_meta = true;
    } else if (flag == "--meta-seed") {
      if (!tools::ParseIntFlag(flag, val, 0, INT64_MAX, &iv)) return 1;
      meta_seed = static_cast<uint64_t>(iv);
    } else {
      return Usage(argv[0]);
    }
  }
  if (!args.ok()) return Usage(argv[0]);

  auto base = ReadFvecs(base_path);
  if (!base.ok()) {
    std::fprintf(stderr, "%s\n", base.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu vectors, d=%zu\n", base.value().rows(),
              base.value().cols());
  spec.dynamic.initial_capacity = base.value().rows() + 1024;

  ThreadPool pool(NumThreads());
  Timer t;
  Result<Index> index = Build(spec, base.value(), &pool);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  std::printf("built %s (%s) in %.1fs (%.1f MiB)\n",
              index.value().name().c_str(), KindName(index.value().kind()),
              t.Seconds(), index.value().memory_bytes() / 1048576.0);

  if (attach_meta) {
    auto store = std::make_shared<const MetadataStore>(MakeSyntheticMetadata(
        base.value().rows(), meta_types, meta_seed));
    Status attached = index.value().AttachMetadata(std::move(store));
    if (!attached.ok()) {
      std::fprintf(stderr, "%s\n", attached.ToString().c_str());
      return 1;
    }
    std::printf("attached synthetic metadata (tags + %zu numeric columns, "
                "seed %llu)\n",
                meta_types.size(),
                static_cast<unsigned long long>(meta_seed));
  }

  Status st = index.value().Save(prefix);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("saved %s (self-describing; reload with Open, no flags)\n",
              prefix.c_str());
  return 0;
}
