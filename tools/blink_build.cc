// blink_build — build an OG-LVQ index from an fvecs file and persist it.
//
// Usage:
//   blink_build <base.fvecs> <out_prefix> [options]
//     --metric l2|ip        similarity (default l2)
//     --bits1 B             level-1 LVQ bits (default 8)
//     --bits2 B             level-2 residual bits, 0 = one-level (default 0)
//     --R N                 graph max out-degree (default 32)
//     --window N            build window W (default 2R)
//     --alpha F             pruning relaxation (default 1.2 l2 / 0.95 ip)
//     --shards S            split into S shards, built in parallel (default 1)
//     --partition kmeans|rr sharding method (default kmeans)
// With --shards 1, writes <out_prefix>.graph and <out_prefix>.vecs (see
// graph/serialize.h); with S > 1, writes the <out_prefix>/ directory
// (manifest + per-shard bundles, see shard/serialize.h).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "blink.h"
#include "flags.h"

using namespace blink;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <base.fvecs> <out_prefix> [--metric l2|ip] "
               "[--bits1 B] [--bits2 B] [--R N] [--window N] [--alpha F]\n"
               "       [--shards S] [--partition kmeans|rr]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);
  const std::string base_path = argv[1];
  const std::string prefix = argv[2];
  Metric metric = Metric::kL2;
  int bits1 = 8, bits2 = 0;
  uint32_t R = 32, window = 0;
  float alpha = 0.0f;
  size_t shards = 1;
  PartitionMethod method = PartitionMethod::kBalancedKMeans;
  tools::FlagParser args(argc, argv, 3);
  std::string flag;
  const char* val = nullptr;
  long long iv = 0;
  double dv = 0.0;
  while (args.Next(&flag, &val)) {
    if (flag == "--metric") {
      metric = std::strcmp(val, "ip") == 0 ? Metric::kInnerProduct : Metric::kL2;
    } else if (flag == "--bits1") {
      // The serialized format (and UnpackCode) support 1..16 bits.
      if (!tools::ParseIntFlag(flag, val, 1, 16, &iv)) return 1;
      bits1 = static_cast<int>(iv);
    } else if (flag == "--bits2") {
      if (!tools::ParseIntFlag(flag, val, 0, 16, &iv)) return 1;  // 0 = one-level
      bits2 = static_cast<int>(iv);
    } else if (flag == "--R") {
      if (!tools::ParseIntFlag(flag, val, 1, 4096, &iv)) return 1;
      R = static_cast<uint32_t>(iv);
    } else if (flag == "--window") {
      if (!tools::ParseIntFlag(flag, val, 1, 1 << 20, &iv)) return 1;
      window = static_cast<uint32_t>(iv);
    } else if (flag == "--alpha") {
      if (!tools::ParseDoubleFlag(flag, val, &dv)) return 1;
      alpha = static_cast<float>(dv);
    } else if (flag == "--shards") {
      if (!tools::ParseIntFlag(flag, val, 1, 1 << 16, &iv)) return 1;
      shards = static_cast<size_t>(iv);
    } else if (flag == "--partition") {
      method = std::strcmp(val, "rr") == 0 ? PartitionMethod::kRoundRobin
                                           : PartitionMethod::kBalancedKMeans;
    } else {
      return Usage(argv[0]);
    }
  }
  if (!args.ok()) return Usage(argv[0]);

  auto base = ReadFvecs(base_path);
  if (!base.ok()) {
    std::fprintf(stderr, "%s\n", base.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu vectors, d=%zu\n", base.value().rows(),
              base.value().cols());

  VamanaBuildParams bp;
  bp.graph_max_degree = R;
  bp.window_size = window > 0 ? window : 2 * R;
  bp.alpha = alpha > 0.0f ? alpha
                          : (metric == Metric::kL2 ? 1.2f : 0.95f);

  ThreadPool pool(NumThreads());
  if (shards > 1) {
    ShardedBuildParams sp;
    sp.partition.num_shards = shards;
    sp.partition.method = method;
    sp.graph = bp;
    sp.bits1 = bits1;
    sp.bits2 = bits2;
    Timer t;
    auto index = BuildShardedLvq(base.value(), metric, sp, &pool);
    std::printf("built %s in %.1fs (%.1f MiB, %zu shards)\n",
                index->name().c_str(), t.Seconds(),
                index->memory_bytes() / 1048576.0, index->num_shards());
    Status st = SaveShardedIndex(prefix, *index);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("saved %s/ (manifest + shard bundles)\n", prefix.c_str());
    return 0;
  }

  Timer t;
  auto index = BuildOgLvq(base.value(), metric, bits1, bits2, bp, &pool);
  std::printf("built %s in %.1fs (%.1f MiB: vectors %.1f + graph %.1f)\n",
              index->name().c_str(), t.Seconds(),
              index->memory_bytes() / 1048576.0,
              index->storage().memory_bytes() / 1048576.0,
              index->graph().memory_bytes() / 1048576.0);

  Status st = SaveOgLvqIndex(prefix, *index);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("saved %s.{graph,vecs}\n", prefix.c_str());
  return 0;
}
