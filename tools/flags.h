// Shared command-line flag plumbing for the blink_* tools.
//
// Every tool takes `--flag value` pairs. The historical loop
// (`for (a; a + 1 < argc; a += 2)`) silently dropped a trailing flag with
// no value, and `std::atoi` turned garbage into 0; FlagParser makes both
// hard errors: a dangling flag and a malformed or out-of-range number each
// produce a message on stderr and a false/ok()==false the tool turns into
// its usage exit.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "filter/predicate.h"
#include "graph/storage.h"

namespace blink {
namespace tools {

/// Iterates `--flag value` pairs from argv[start..). Next() returns false
/// at the end of the arguments *or* on a dangling flag; check ok() after
/// the loop to tell the two apart.
class FlagParser {
 public:
  FlagParser(int argc, char** argv, int start)
      : argc_(argc), argv_(argv), pos_(start) {}

  bool Next(std::string* flag, const char** value) {
    if (pos_ >= argc_) return false;  // end of arguments
    *flag = argv_[pos_];
    if (pos_ + 1 >= argc_) {
      std::fprintf(stderr, "missing value for %s\n", argv_[pos_]);
      dangling_ = true;
      return false;
    }
    *value = argv_[pos_ + 1];
    pos_ += 2;
    return true;
  }

  /// False when the loop stopped on a dangling flag rather than the end.
  bool ok() const { return !dangling_; }

 private:
  int argc_;
  char** argv_;
  int pos_;
  bool dangling_ = false;
};

/// Strict decimal integer parse: the whole token must be a number in
/// [min_v, max_v]. Prints a message and returns false otherwise (so
/// `--lvq garbage` is an error, not silently 0 bits).
inline bool ParseIntFlag(const std::string& flag, const char* value,
                         long long min_v, long long max_v, long long* out) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE || v < min_v ||
      v > max_v) {
    std::fprintf(stderr, "%s: expected an integer in [%lld, %lld], got '%s'\n",
                 flag.c_str(), min_v, max_v, value);
    return false;
  }
  *out = v;
  return true;
}

/// Strict comma-separated unsigned list parse ("10,20,40"): every segment
/// must be a whole number in [min_v, max_v]; empty segments, trailing
/// commas and garbage are errors. Shared by the tools' sweep flags
/// (blink_search / blink_serve --window).
inline bool ParseUintListFlag(const std::string& flag, const char* value,
                              unsigned long min_v, unsigned long max_v,
                              std::vector<uint32_t>* out) {
  out->clear();
  const char* p = value;
  while (true) {
    errno = 0;
    char* end = nullptr;
    // strtoul would skip leading whitespace and accept '+'/'-'; a segment
    // must start with a digit outright.
    const bool digit_start = *p >= '0' && *p <= '9';
    const unsigned long v = digit_start ? std::strtoul(p, &end, 10) : 0;
    if (!digit_start || end == p || errno == ERANGE || v < min_v ||
        v > max_v || (*end != '\0' && *end != ',')) {
      std::fprintf(stderr,
                   "%s: expected N[,N...] with N in [%lu, %lu], got '%s'\n",
                   flag.c_str(), min_v, max_v, value);
      out->clear();
      return false;
    }
    out->push_back(static_cast<uint32_t>(v));
    if (*end == '\0') return true;
    p = end + 1;
    if (*p == '\0') {  // trailing comma
      std::fprintf(stderr, "%s: trailing ',' in '%s'\n", flag.c_str(), value);
      out->clear();
      return false;
    }
  }
}

/// Strict metric parse: exactly "l2" or "ip" (anything else used to fall
/// through to L2 silently).
inline bool ParseMetricFlag(const std::string& flag, const char* value,
                            Metric* out) {
  if (std::strcmp(value, "l2") == 0) {
    *out = Metric::kL2;
    return true;
  }
  if (std::strcmp(value, "ip") == 0) {
    *out = Metric::kInnerProduct;
    return true;
  }
  std::fprintf(stderr, "%s: expected l2 or ip, got '%s'\n", flag.c_str(),
               value);
  return false;
}

/// Strict filter-predicate parse, the CLI face of Predicate::Parse
/// (filter/predicate.h grammar: space-separated clauses like
/// "tag:any=1,3 num0>=2.5"). Same no-leniency contract as the numeric
/// parsers above: any malformed clause, stray token, or trailing garbage
/// prints the parser's message to stderr and returns false — never a
/// silently weakened predicate.
inline bool ParseFilterFlag(const std::string& flag, const char* value,
                            Predicate* out) {
  Result<Predicate> parsed = Predicate::Parse(value);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: %s\n", flag.c_str(),
                 parsed.status().ToString().c_str());
    return false;
  }
  *out = std::move(parsed).value();
  return true;
}

/// Strict filter-strategy parse: exactly "auto", "post", or "insearch".
inline bool ParseFilterStrategyFlag(const std::string& flag, const char* value,
                                    FilterStrategy* out) {
  if (std::strcmp(value, "auto") == 0) {
    *out = FilterStrategy::kAuto;
    return true;
  }
  if (std::strcmp(value, "post") == 0) {
    *out = FilterStrategy::kPostFilter;
    return true;
  }
  if (std::strcmp(value, "insearch") == 0) {
    *out = FilterStrategy::kInSearch;
    return true;
  }
  std::fprintf(stderr, "%s: expected auto, post, or insearch, got '%s'\n",
               flag.c_str(), value);
  return false;
}

/// Strict double parse (> 0 unless allow_zero).
inline bool ParseDoubleFlag(const std::string& flag, const char* value,
                            double* out, bool allow_zero = false) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (end == value || *end != '\0' || errno == ERANGE || v < 0.0 ||
      (!allow_zero && v == 0.0)) {
    std::fprintf(stderr, "%s: expected a positive number, got '%s'\n",
                 flag.c_str(), value);
    return false;
  }
  *out = v;
  return true;
}

}  // namespace tools
}  // namespace blink
