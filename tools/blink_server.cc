// blink_server — the network serving front end: a TCP server speaking the
// net/protocol.h frame protocol (plus HTTP GET /stats) over the async
// serving engine, with admission control and zero-downtime hot-swap.
//
// Index source, like blink_serve:
//   default       — build over a synthetic dataset (no input files).
//   --index PATH  — Open() a persisted artifact of any flavor. With
//                   --map, static bundles are served from a read-only
//                   file mapping (out-of-core).
//
// The server answers until SIGINT/SIGTERM, then drains in-flight queries
// and prints the final /stats JSON. Clients hot-swap the index with a
// kSwapRequest frame naming another artifact (blink_serve --connect
// --swap PATH), or probe telemetry with `curl http://host:port/stats`.
//
// Usage:
//   blink_server [options]
//     --index PATH       serve a persisted artifact (default: synthetic build)
//     --map              with --index: map static bundles instead of loading
//     --host H           bind address            (default 127.0.0.1)
//     --port P           TCP port; 0 = ephemeral (default 7741)
//     --port-file F      write the bound port to F (for scripts + --port 0)
//     --kind K           synthetic build: facade kind (default static-lvq)
//     --n N              synthetic build: base vectors (default 20000)
//     --lvq B            synthetic build: LVQ bits    (default 8)
//     --bits2 B          synthetic build: residual bits (default 0)
//     --shards S         synthetic build: shard count (default 1)
//     --seed S           synthetic build: dataset seed (default 1234)
//     --threads T        engine searcher pool size (default NumThreads())
//     --queue-capacity Q admission bound: max in-flight async queries
//                        (default 65536; lower it to see kOverloaded)
//     --max-connections C concurrent connections  (default 256)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <thread>

#include "blink.h"
#include "flags.h"
#include "shutdown.h"

using namespace blink;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--index PATH [--map]] [--host H] [--port P] "
               "[--port-file F]\n"
               "                   [--kind K] [--n N] [--lvq B] [--bits2 B] "
               "[--shards S] [--seed S]\n"
               "                   [--threads T] [--queue-capacity Q] "
               "[--max-connections C]\n",
               argv0);
  return 2;
}

/// Consumes every bare `--map` from argv (FlagParser only iterates
/// `--flag value` pairs); returns true when one was present.
bool TakeMapFlag(int* argc, char** argv) {
  bool found = false;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    if (std::strcmp(argv[r], "--map") == 0) {
      found = true;
    } else {
      argv[w++] = argv[r];
    }
  }
  *argc = w;
  return found;
}

}  // namespace

int main(int argc, char** argv) {
  const bool map_mode = TakeMapFlag(&argc, argv);
  std::string index_path, host = "127.0.0.1", port_file;
  long long port = 7741;
  size_t n = 20000;
  int lvq_bits = 8, bits2 = 0;
  size_t shards = 1;
  uint64_t seed = 1234;
  size_t threads = NumThreads();
  size_t queue_capacity = 1 << 16;
  size_t max_connections = 256;
  IndexKind kind = IndexKind::kStaticLvq;

  tools::FlagParser args(argc, argv, 1);
  std::string flag;
  const char* val = nullptr;
  long long iv = 0;
  while (args.Next(&flag, &val)) {
    if (flag == "--index") {
      index_path = val;
    } else if (flag == "--host") {
      host = val;
    } else if (flag == "--port") {
      if (!tools::ParseIntFlag(flag, val, 0, 65535, &iv)) return 1;
      port = iv;
    } else if (flag == "--port-file") {
      port_file = val;
    } else if (flag == "--kind") {
      auto parsed = ParseIndexKind(val);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        return 1;
      }
      kind = parsed.value();
    } else if (flag == "--n") {
      if (!tools::ParseIntFlag(flag, val, 1, 1LL << 32, &iv)) return 1;
      n = static_cast<size_t>(iv);
    } else if (flag == "--lvq") {
      if (!tools::ParseIntFlag(flag, val, 0, 16, &iv)) return 1;
      lvq_bits = static_cast<int>(iv);
    } else if (flag == "--bits2") {
      if (!tools::ParseIntFlag(flag, val, 0, 16, &iv)) return 1;
      bits2 = static_cast<int>(iv);
    } else if (flag == "--shards") {
      if (!tools::ParseIntFlag(flag, val, 1, 1 << 16, &iv)) return 1;
      shards = static_cast<size_t>(iv);
    } else if (flag == "--seed") {
      if (!tools::ParseIntFlag(flag, val, 0,
                               std::numeric_limits<long long>::max(), &iv)) {
        return 1;
      }
      seed = static_cast<uint64_t>(iv);
    } else if (flag == "--threads") {
      if (!tools::ParseIntFlag(flag, val, 1, 1 << 12, &iv)) return 1;
      threads = static_cast<size_t>(iv);
    } else if (flag == "--queue-capacity") {
      if (!tools::ParseIntFlag(flag, val, 1, 1LL << 32, &iv)) return 1;
      queue_capacity = static_cast<size_t>(iv);
    } else if (flag == "--max-connections") {
      if (!tools::ParseIntFlag(flag, val, 1, 1 << 16, &iv)) return 1;
      max_connections = static_cast<size_t>(iv);
    } else {
      return Usage(argv[0]);
    }
  }
  if (!args.ok()) return Usage(argv[0]);

  // Install the signal handler before serving starts: a SIGTERM racing
  // startup should still stop the tool gracefully.
  tools::InstallStopHandler();

  Index index;
  if (!index_path.empty()) {
    OpenOptions open_opts;
    if (map_mode) open_opts.load_mode = LoadMode::kMap;
    Result<Index> opened = Open(index_path, open_opts);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 1;
    }
    index = std::move(opened).value();
    std::printf("opened %s (%s, %s) from %s: n=%zu d=%zu (%.1f MiB)\n",
                index.name().c_str(), KindName(index.kind()),
                LoadModeName(index.spec().load_mode), index_path.c_str(),
                index.size(), index.dim(), index.memory_bytes() / 1048576.0);
  } else {
    if (map_mode) {
      std::fprintf(stderr, "warning: --map has no effect without --index "
                           "(a built index is heap-resident)\n");
    }
    ThreadPool build_pool(threads);
    Dataset data = MakeDeepLike(n, /*nq=*/1, seed);
    IndexSpec spec;
    spec.kind = kind;
    spec.metric = data.metric;
    spec.bits1 = lvq_bits > 0 ? lvq_bits : 8;
    spec.bits2 = bits2;
    spec.graph.graph_max_degree = 32;
    spec.graph.window_size = 64;
    spec.partition.num_shards = shards;
    Timer build_timer;
    Result<Index> built = Build(spec, data.base, &build_pool);
    if (!built.ok()) {
      std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
      return 1;
    }
    index = std::move(built).value();
    std::printf("built %s (%s) in %.1fs (%.1f MiB)\n", index.name().c_str(),
                KindName(index.kind()), build_timer.Seconds(),
                index.memory_bytes() / 1048576.0);
  }

  net::ServerOptions opts;
  opts.host = host;
  opts.port = static_cast<uint16_t>(port);
  opts.max_connections = max_connections;
  opts.serving.num_threads = threads;
  opts.serving.queue_capacity = queue_capacity;
  Result<std::unique_ptr<net::BlinkServer>> started =
      net::BlinkServer::Start(std::move(index), opts);
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<net::BlinkServer> server = std::move(started).value();
  std::printf("blink_server: listening on %s:%u (threads=%zu "
              "queue-capacity=%zu)\n",
              host.c_str(), server->port(), threads, queue_capacity);
  std::printf("  stats:  curl http://%s:%u/stats\n", host.c_str(),
              server->port());
  std::fflush(stdout);
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write --port-file %s\n", port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", server->port());
    std::fclose(f);
  }

  // Serve until SIGINT/SIGTERM. The accept and handler threads do the
  // work; this thread only polls the stop flag.
  while (!tools::StopRequested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("\nstopping: draining in-flight queries...\n");
  server->Stop();
  std::printf("final stats:\n%s\n", server->StatsJson().c_str());
  return 0;
}
