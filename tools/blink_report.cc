// blink_report — the machine-readable perf trajectory. Runs every requested
// index flavor through Build -> Calibrate -> timed search over a fixed-seed
// synthetic dataset and writes a schema-versioned JSON report (recall, QPS,
// latency percentiles, distance computations, memory, build time per
// flavor). CI runs this on a tiny dataset each push and gates on the
// committed bench/baseline.json.
//
// Usage:
//   blink_report [options]
//     --n N               base vectors (default 2000)
//     --nq N              queries; half calibrate, half evaluate (default 200)
//     --seed S            dataset seed (default 77)
//     --k N               neighbors per query (default 10)
//     --target-recall R   calibration target (default 0.9)
//     --max-window N      calibration search bound (default 1024)
//     --kinds a,b,c       comma-separated registry names (default: every
//                         registered factory)
//     --out FILE          report path (default BENCH_report.json)
//     --baseline FILE     gate against a committed baseline report; recall
//                         regressions beyond the tolerance exit non-zero
//     --threads N         worker threads (default: BLINK_THREADS/hardware)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "blink.h"
#include "filter/synthetic.h"
#include "flags.h"

using namespace blink;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--n N] [--nq N] [--seed S] [--k N] "
               "[--target-recall R] [--max-window N] [--kinds a,b,...] "
               "[--out report.json] [--baseline baseline.json] "
               "[--threads N]\n",
               argv0);
  return 2;
}

std::vector<std::string> SplitNames(const std::string& csv) {
  std::vector<std::string> names;
  size_t pos = 0;
  while (pos <= csv.size()) {
    const size_t comma = csv.find(',', pos);
    const size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > pos) names.push_back(csv.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return names;
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = 2000, nq = 200, k = 10;
  uint64_t seed = 77;
  double target_recall = 0.9;
  long long max_window = 1024;
  long long threads = 0;
  std::string kinds_csv, out_path = "BENCH_report.json", baseline_path;

  tools::FlagParser args(argc, argv, 1);
  std::string flag;
  const char* val = nullptr;
  long long iv = 0;
  while (args.Next(&flag, &val)) {
    if (flag == "--n") {
      if (!tools::ParseIntFlag(flag, val, 16, 1LL << 32, &iv)) return 1;
      n = static_cast<size_t>(iv);
    } else if (flag == "--nq") {
      if (!tools::ParseIntFlag(flag, val, 4, 1 << 24, &iv)) return 1;
      nq = static_cast<size_t>(iv);
    } else if (flag == "--seed") {
      if (!tools::ParseIntFlag(flag, val, 0, 1LL << 62, &iv)) return 1;
      seed = static_cast<uint64_t>(iv);
    } else if (flag == "--k") {
      if (!tools::ParseIntFlag(flag, val, 1, 1 << 16, &iv)) return 1;
      k = static_cast<size_t>(iv);
    } else if (flag == "--target-recall") {
      if (!tools::ParseDoubleFlag(flag, val, &target_recall)) return 1;
      if (target_recall > 1.0) {
        std::fprintf(stderr, "--target-recall: must be in (0, 1]\n");
        return 1;
      }
    } else if (flag == "--max-window") {
      if (!tools::ParseIntFlag(flag, val, 1, 1 << 20, &max_window)) return 1;
    } else if (flag == "--kinds") {
      kinds_csv = val;
    } else if (flag == "--out") {
      out_path = val;
    } else if (flag == "--baseline") {
      baseline_path = val;
    } else if (flag == "--threads") {
      if (!tools::ParseIntFlag(flag, val, 1, 4096, &threads)) return 1;
    } else {
      return Usage(argv[0]);
    }
  }
  if (!args.ok()) return Usage(argv[0]);

  const size_t nthreads =
      threads > 0 ? static_cast<size_t>(threads) : NumThreads();
  ThreadPool pool(nthreads);

  Dataset ds = MakeDeepLike(n, nq, seed);
  Matrix<uint32_t> gt =
      ComputeGroundTruth(ds.base, ds.queries, k, ds.metric, &pool);

  std::vector<std::string> kinds =
      kinds_csv.empty() ? RegisteredIndexNames() : SplitNames(kinds_csv);

  BenchReport report;
  report.dataset_name = ds.name;
  report.n = n;
  report.nq = nq;
  report.dim = ds.base.cols();
  report.metric = MetricName(ds.metric);
  report.seed = seed;
  report.k = k;
  report.target_recall = target_recall;
  report.threads = nthreads;

  BenchRunConfig cfg;
  cfg.k = k;
  cfg.target_recall = target_recall;
  cfg.max_window = static_cast<uint32_t>(max_window);
  cfg.pool = &pool;

  for (const std::string& name : kinds) {
    // The paper's flagship configuration — two-level LVQ-4x8, R=24 — sized
    // down to the report dataset; every flavor interprets the shared
    // fields its own way (see api/registry.cc).
    IndexSpec spec;
    spec.metric = ds.metric;
    spec.bits1 = 4;
    spec.bits2 = 8;
    spec.graph.graph_max_degree = 24;
    spec.graph.window_size = 48;
    spec.partition.num_shards = 4;
    spec.dynamic.initial_capacity = n;

    Timer build_timer;
    Result<Index> index = BuildNamed(name, spec, ds.base, &pool);
    const double build_seconds = build_timer.Seconds();
    if (!index.ok()) {
      std::fprintf(stderr, "%s: build failed: %s\n", name.c_str(),
                   index.status().ToString().c_str());
      return 1;
    }
    BenchFlavorReport f = MeasureFlavor(name, index.value(), build_seconds,
                                        ds.queries, gt, cfg);
    std::printf("%-12s recall %.4f  qps %8.0f  p50 %7.1fus  p99 %7.1fus  "
                "window %-4u %s\n",
                f.name.c_str(), f.recall, f.qps, f.p50_us, f.p99_us,
                f.options.window,
                f.calibrated ? "" : "(calibration failed; defaults)");
    report.flavors.push_back(std::move(f));
  }

  // Filtered-search flavor (DESIGN.md D15): static-lvq with a synthetic f64
  // metadata column and the 10%-selectivity predicate, scored against
  // brute-force filtered ground truth. Calibration stays unfiltered — it
  // tunes the base window the filtered plan widens from.
  for (const std::string& name : kinds) {
    if (name != "static-lvq") continue;
    IndexSpec spec;
    spec.metric = ds.metric;
    spec.bits1 = 4;
    spec.bits2 = 8;
    spec.graph.graph_max_degree = 24;
    spec.graph.window_size = 48;

    Timer build_timer;
    Result<Index> index = BuildNamed(name, spec, ds.base, &pool);
    const double build_seconds = build_timer.Seconds();
    if (!index.ok()) {
      std::fprintf(stderr, "%s-filtered: build failed: %s\n", name.c_str(),
                   index.status().ToString().c_str());
      return 1;
    }
    auto md = std::make_shared<const MetadataStore>(
        MakeSyntheticMetadata(n, {ColumnType::kF64}, seed + 7));
    Status attached = index.value().AttachMetadata(md);
    if (!attached.ok()) {
      std::fprintf(stderr, "%s-filtered: %s\n", name.c_str(),
                   attached.ToString().c_str());
      return 1;
    }
    auto pred = std::make_shared<Predicate>(
        std::move(Predicate::Parse("num0<0.1")).value());
    Matrix<uint32_t> fgt = ComputeFilteredGroundTruth(
        ds.base, ds.queries, k, ds.metric, *md, *pred, &pool);
    BenchRunConfig fcfg = cfg;
    fcfg.filter = pred;
    fcfg.filtered_groundtruth = &fgt;
    BenchFlavorReport f = MeasureFlavor(name + "-filtered", index.value(),
                                        build_seconds, ds.queries, gt, fcfg);
    std::printf("%-12s recall %.4f  qps %8.0f  p50 %7.1fus  p99 %7.1fus  "
                "window %-4u %s\n",
                f.name.c_str(), f.recall, f.qps, f.p50_us, f.p99_us,
                f.options.window,
                f.calibrated ? "" : "(calibration failed; defaults)");
    report.flavors.push_back(std::move(f));
  }

  const std::string json = BenchReportToJson(report);
  Status wst = WriteTextFile(out_path, json);
  if (!wst.ok()) {
    std::fprintf(stderr, "%s\n", wst.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu flavors)\n", out_path.c_str(),
              report.flavors.size());

  if (!baseline_path.empty()) {
    Result<std::string> text = ReadTextFile(baseline_path);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 1;
    }
    Result<BenchReport> baseline = ParseBenchReport(text.value());
    if (!baseline.ok()) {
      std::fprintf(stderr, "%s: %s\n", baseline_path.c_str(),
                   baseline.status().ToString().c_str());
      return 1;
    }
    GateResult gate = CompareToBaseline(report, baseline.value());
    for (const std::string& w : gate.warnings) {
      std::fprintf(stderr, "warning: %s\n", w.c_str());
    }
    for (const std::string& f : gate.failures) {
      std::fprintf(stderr, "FAIL: %s\n", f.c_str());
    }
    if (!gate.pass) {
      std::fprintf(stderr, "baseline gate failed against %s\n",
                   baseline_path.c_str());
      return 1;
    }
    std::printf("baseline gate passed against %s\n", baseline_path.c_str());
  }
  return 0;
}
