// blink_search — load a persisted index (single OG-LVQ bundle or sharded
// directory, auto-detected), run a query batch, report QPS (best of 5, as
// the paper measures) and, when ground truth is given, k-recall@k.
//
// Usage:
//   blink_search <index_prefix> <query.fvecs> [options]
//     --metric l2|ip        similarity used at build time (default l2)
//     --k N                 neighbors per query (default 10)
//     --window N[,N...]     search windows to sweep (default 10,20,40,80)
//     --nprobe-shards N     sharded index: shards probed per query (0 = all)
//     --gt file.ivecs       exact ground truth for recall
//     --out file.ivecs      write result ids
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "blink.h"
#include "flags.h"

using namespace blink;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <index_prefix> <query.fvecs> [--metric l2|ip] "
               "[--k N] [--window N,N,...] [--nprobe-shards N] "
               "[--gt gt.ivecs] [--out res.ivecs]\n",
               argv0);
  return 2;
}

/// Parses a comma-separated list of positive windows; empty on malformed
/// input (each segment must be a whole number followed by ',' or the end).
std::vector<uint32_t> ParseWindows(const char* s) {
  std::vector<uint32_t> out;
  for (const char* p = s; *p != '\0';) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(p, &end, 10);
    if (end == p || v == 0 || v > (1u << 20) ||
        (*end != '\0' && *end != ',')) {
      return {};
    }
    out.push_back(static_cast<uint32_t>(v));
    if (*end == '\0') break;
    p = end + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);
  const std::string prefix = argv[1];
  const std::string query_path = argv[2];
  Metric metric = Metric::kL2;
  size_t k = 10;
  uint32_t nprobe_shards = 0;
  std::vector<uint32_t> windows = {10, 20, 40, 80};
  std::string gt_path, out_path;
  tools::FlagParser args(argc, argv, 3);
  std::string flag;
  const char* val = nullptr;
  long long iv = 0;
  while (args.Next(&flag, &val)) {
    if (flag == "--metric") {
      metric = std::strcmp(val, "ip") == 0 ? Metric::kInnerProduct : Metric::kL2;
    } else if (flag == "--k") {
      if (!tools::ParseIntFlag(flag, val, 1, 1 << 20, &iv)) return 1;
      k = static_cast<size_t>(iv);
    } else if (flag == "--window") {
      windows = ParseWindows(val);
      if (windows.empty()) {
        std::fprintf(stderr, "--window: expected N[,N...], got '%s'\n", val);
        return 1;
      }
    } else if (flag == "--nprobe-shards") {
      if (!tools::ParseIntFlag(flag, val, 0, 1 << 16, &iv)) return 1;
      nprobe_shards = static_cast<uint32_t>(iv);
    } else if (flag == "--gt") {
      gt_path = val;
    } else if (flag == "--out") {
      out_path = val;
    } else {
      return Usage(argv[0]);
    }
  }
  if (!args.ok()) return Usage(argv[0]);

  VamanaBuildParams bp;  // configuration only; graph comes from disk
  Result<std::unique_ptr<SearchIndex>> index = [&]() -> Result<std::unique_ptr<SearchIndex>> {
    if (IsShardedIndexDir(prefix)) {
      auto r = LoadShardedIndex(prefix, metric, bp);
      if (!r.ok()) return r.status();
      return std::unique_ptr<SearchIndex>(std::move(r).value());
    }
    auto r = LoadOgLvqIndex(prefix, metric, bp);
    if (!r.ok()) return r.status();
    return std::unique_ptr<SearchIndex>(std::move(r).value());
  }();
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  auto queries = ReadFvecs(query_path);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }
  const size_t nq = queries.value().rows();
  std::printf("index %s: n=%zu d=%zu (%.1f MiB); %zu queries\n",
              index.value()->name().c_str(), index.value()->size(),
              index.value()->dim(), index.value()->memory_bytes() / 1048576.0,
              nq);

  Matrix<uint32_t> gt;
  if (!gt_path.empty()) {
    auto g = ReadIvecs(gt_path);
    if (!g.ok()) {
      std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
      return 1;
    }
    gt = Matrix<uint32_t>(g.value().rows(), g.value().cols());
    for (size_t i = 0; i < gt.size(); ++i) {
      gt.data()[i] = static_cast<uint32_t>(g.value().data()[i]);
    }
  }

  ThreadPool pool(NumThreads());
  Matrix<uint32_t> ids(nq, k);
  std::printf("%-8s %-12s %-10s\n", "window", "QPS", gt_path.empty() ? "-" : "recall");
  for (uint32_t w : windows) {
    RuntimeParams params;
    params.window = w;
    params.nprobe_shards = nprobe_shards;
    double best = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
      Timer t;
      index.value()->SearchBatch(queries.value(), k, params, ids.data(), &pool);
      best = std::max(best, static_cast<double>(nq) / t.Seconds());
    }
    if (gt.rows() == nq) {
      std::printf("%-8u %-12.0f %-10.4f\n", w, best, MeanRecallAtK(ids, gt, k));
    } else {
      std::printf("%-8u %-12.0f %-10s\n", w, best, "-");
    }
  }

  if (!out_path.empty()) {
    Matrix<int32_t> out(nq, k);
    for (size_t i = 0; i < out.size(); ++i) {
      out.data()[i] = static_cast<int32_t>(ids.data()[i]);
    }
    Status st = WriteIvecs(out_path, out);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
