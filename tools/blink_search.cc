// blink_search — Open() a persisted index of any flavor (static bundle,
// sharded directory or dynamic BLDY file, auto-detected and
// self-configuring), run a query batch, report QPS (best of 5, as the
// paper measures) and, when ground truth is given, k-recall@k.
//
// Usage:
//   blink_search <index_path> <query.fvecs> [options]
//     --metric l2|ip        fallback for pre-metadata (v1) artifacts only;
//                           ignored with a warning when the artifact is
//                           self-describing
//     --k N                 neighbors per query (default 10)
//     --window N[,N...]     search windows to sweep (default 10,20,40,80)
//     --target-recall R     calibrate instead of sweeping: find the cheapest
//                           SearchOptions meeting recall R on the first half
//                           of the queries (requires --gt; mutually
//                           exclusive with --window), print them, then run
//                           the full batch with the chosen options
//     --nprobe-shards N     sharded index: shards probed per query (0 = all)
//     --map                 serve a static bundle from a read-only file
//                           mapping (out-of-core); falls back to heap
//                           loading for non-static or pre-v3 artifacts
//     --filter PRED         filtered search: only vectors matching PRED
//                           (filter/predicate.h grammar, e.g.
//                           'tag:any=3 num0<0.5') are returned; requires a
//                           metadata sidecar (blink_build --meta)
//     --filter-strategy S   auto (default, selectivity crossover) | post |
//                           insearch
//     --filter-widen-cap N  post-filter widening cap (0 = auto)
//     --gt file.ivecs       exact ground truth for recall — with --filter,
//                           supply *filtered* ground truth
//     --out file.ivecs      write result ids
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "blink.h"
#include "flags.h"

using namespace blink;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <index_path> <query.fvecs> [--metric l2|ip] "
               "[--k N] [--window N,N,... | --target-recall R] "
               "[--nprobe-shards N] [--map] [--filter PRED] "
               "[--filter-strategy auto|post|insearch] "
               "[--filter-widen-cap N] [--gt gt.ivecs] "
               "[--out res.ivecs]\n",
               argv0);
  return 2;
}

/// Consumes every bare `--map` from argv (FlagParser only iterates
/// `--flag value` pairs); returns true when one was present.
bool TakeMapFlag(int* argc, char** argv) {
  bool found = false;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    if (std::strcmp(argv[r], "--map") == 0) {
      found = true;
    } else {
      argv[w++] = argv[r];
    }
  }
  *argc = w;
  return found;
}

}  // namespace

int main(int argc, char** argv) {
  OpenOptions open_opts;
  if (TakeMapFlag(&argc, argv)) open_opts.load_mode = LoadMode::kMap;
  if (argc < 3) return Usage(argv[0]);
  const std::string prefix = argv[1];
  const std::string query_path = argv[2];
  bool metric_flag = false;
  size_t k = 10;
  uint32_t nprobe_shards = 0;
  std::vector<uint32_t> windows = {10, 20, 40, 80};
  bool window_set = false;
  double target_recall = 0.0;  // 0 = sweep mode
  std::string gt_path, out_path;
  Predicate filter;
  bool filter_set = false;
  FilterStrategy filter_strategy = FilterStrategy::kAuto;
  uint32_t filter_widen_cap = 0;
  tools::FlagParser args(argc, argv, 3);
  std::string flag;
  const char* val = nullptr;
  long long iv = 0;
  while (args.Next(&flag, &val)) {
    if (flag == "--metric") {
      if (!tools::ParseMetricFlag(flag, val, &open_opts.fallback_metric)) {
        return 1;
      }
      metric_flag = true;
    } else if (flag == "--k") {
      if (!tools::ParseIntFlag(flag, val, 1, 1 << 20, &iv)) return 1;
      k = static_cast<size_t>(iv);
    } else if (flag == "--window") {
      if (!tools::ParseUintListFlag(flag, val, 1, 1u << 20, &windows)) {
        return 1;
      }
      window_set = true;
    } else if (flag == "--target-recall") {
      if (!tools::ParseDoubleFlag(flag, val, &target_recall)) return 1;
      if (target_recall > 1.0) {
        std::fprintf(stderr, "--target-recall: must be in (0, 1]\n");
        return 1;
      }
    } else if (flag == "--nprobe-shards") {
      if (!tools::ParseIntFlag(flag, val, 0, 1 << 16, &iv)) return 1;
      nprobe_shards = static_cast<uint32_t>(iv);
    } else if (flag == "--filter") {
      if (!tools::ParseFilterFlag(flag, val, &filter)) return 1;
      filter_set = true;
    } else if (flag == "--filter-strategy") {
      if (!tools::ParseFilterStrategyFlag(flag, val, &filter_strategy)) {
        return 1;
      }
    } else if (flag == "--filter-widen-cap") {
      if (!tools::ParseIntFlag(flag, val, 0, 1 << 20, &iv)) return 1;
      filter_widen_cap = static_cast<uint32_t>(iv);
    } else if (flag == "--gt") {
      gt_path = val;
    } else if (flag == "--out") {
      out_path = val;
    } else {
      return Usage(argv[0]);
    }
  }
  if (!args.ok()) return Usage(argv[0]);
  if (target_recall > 0.0 && window_set) {
    std::fprintf(stderr,
                 "--target-recall and --window are mutually exclusive: "
                 "calibration picks the window\n");
    return 1;
  }
  if (target_recall > 0.0 && gt_path.empty()) {
    std::fprintf(stderr, "--target-recall requires --gt (calibration "
                         "measures recall against exact ground truth)\n");
    return 1;
  }

  Result<Index> index = Open(prefix, open_opts);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  if (metric_flag && index.value().self_described()) {
    std::fprintf(stderr,
                 "warning: --metric ignored; %s is self-describing and was "
                 "built with %s\n",
                 prefix.c_str(), MetricName(index.value().metric()));
  }
  std::shared_ptr<const Predicate> filter_ptr;
  if (filter_set) {
    const MetadataStore* md = index.value().metadata();
    if (md == nullptr) {
      std::fprintf(stderr,
                   "--filter: %s has no metadata sidecar; build one with "
                   "blink_build --meta\n",
                   prefix.c_str());
      return 1;
    }
    Status valid = filter.ValidateFor(md->num_columns());
    if (!valid.ok()) {
      std::fprintf(stderr, "--filter: %s\n", valid.ToString().c_str());
      return 1;
    }
    filter_ptr = std::make_shared<const Predicate>(filter);
    const double sel = EstimateSelectivity(*md, filter);
    const FilterStrategy resolved =
        ResolveFilterStrategy(*md, filter, filter_strategy);
    std::printf("filter '%s': estimated selectivity %.4f, strategy %s\n",
                filter.ToString().c_str(), sel,
                resolved == FilterStrategy::kInSearch ? "in-search"
                                                      : "post-filter");
  }
  auto queries = ReadFvecs(query_path);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }
  const size_t nq = queries.value().rows();
  std::printf("index %s (%s, %s, %s): n=%zu d=%zu (%.1f MiB); %zu queries\n",
              index.value().name().c_str(), KindName(index.value().kind()),
              MetricName(index.value().metric()),
              LoadModeName(index.value().spec().load_mode),
              index.value().size(), index.value().dim(),
              index.value().memory_bytes() / 1048576.0, nq);

  Matrix<uint32_t> gt;
  if (!gt_path.empty()) {
    auto g = ReadIvecs(gt_path);
    if (!g.ok()) {
      std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
      return 1;
    }
    gt = Matrix<uint32_t>(g.value().rows(), g.value().cols());
    for (size_t i = 0; i < gt.size(); ++i) {
      gt.data()[i] = static_cast<uint32_t>(g.value().data()[i]);
    }
  }

  ThreadPool pool(NumThreads());
  Matrix<uint32_t> ids(nq, k);

  std::vector<SearchOptions> settings;
  if (target_recall > 0.0) {
    if (gt.rows() != nq) {
      std::fprintf(stderr, "--gt rows (%zu) != queries (%zu)\n",
                   static_cast<size_t>(gt.rows()), nq);
      return 1;
    }
    // Calibrate on the first half of the queries (held out from nothing
    // the tool reports — the final run covers the full set, but the tuned
    // options must generalize past their sample).
    const size_t ns = nq >= 4 ? nq / 2 : nq;
    MatrixViewF sample(queries.value().row(0), ns, queries.value().cols());
    Matrix<uint32_t> gt_sample(ns, gt.cols());
    for (size_t i = 0; i < ns; ++i) {
      std::copy_n(gt.row(i), gt.cols(), gt_sample.row(i));
    }
    CalibrationTarget target;
    target.target_recall = target_recall;
    target.sample_queries = sample;
    target.groundtruth = &gt_sample;
    target.k = k;
    target.seed.nprobe_shards = nprobe_shards;
    target.pool = &pool;
    Result<SearchOptions> chosen = index.value().Calibrate(target);
    if (!chosen.ok()) {
      std::fprintf(stderr, "calibration failed: %s\n",
                   chosen.status().ToString().c_str());
      return 1;
    }
    std::printf("calibrated for recall >= %.3f on %zu sample queries: "
                "window=%u nprobe_shards=%u rerank_window=%u\n",
                target_recall, ns, chosen.value().window,
                chosen.value().nprobe_shards, chosen.value().rerank_window);
    settings.push_back(chosen.value());
  } else {
    for (uint32_t w : windows) {
      SearchOptions params;
      params.window = w;
      params.nprobe_shards = nprobe_shards;
      settings.push_back(params);
    }
  }

  for (SearchOptions& s : settings) {
    s.filter = filter_ptr;
    s.filter_strategy = filter_strategy;
    s.filter_widen_cap = filter_widen_cap;
  }

  std::printf("%-8s %-12s %-10s\n", "window", "QPS", gt_path.empty() ? "-" : "recall");
  for (const SearchOptions& params : settings) {
    const uint32_t w = params.window;
    double best = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
      Timer t;
      index.value().SearchBatch(queries.value(), k, params, ids.data(), &pool);
      best = std::max(best, static_cast<double>(nq) / t.Seconds());
    }
    if (gt.rows() == nq) {
      std::printf("%-8u %-12.0f %-10.4f\n", w, best, MeanRecallAtK(ids, gt, k));
    } else {
      std::printf("%-8u %-12.0f %-10s\n", w, best, "-");
    }
  }

  if (!out_path.empty()) {
    Matrix<int32_t> out(nq, k);
    for (size_t i = 0; i < out.size(); ++i) {
      out.data()[i] = static_cast<int32_t>(ids.data()[i]);
    }
    Status st = WriteIvecs(out_path, out);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
