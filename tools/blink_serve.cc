// blink_serve — closed-loop load generator for the serving engine, built
// on the public facade (IndexSpec / Build / Open / Index::Serve), or — with
// --connect — for a remote blink_server over the net/protocol.h wire
// protocol.
//
// Two ways to get an index:
//   default       — build over a synthetic dataset (no input files), with
//                   exact ground truth so recall is reported.
//   --index PATH  — Open() a persisted artifact of any flavor (static
//                   bundle, sharded directory, dynamic BLDY file); queries
//                   are synthetic vectors of the index's dimension and
//                   recall is not reported (no ground truth).
//
// The synthetic build covers every facade flavor: --kind picks it
// directly, or the legacy shorthands compose it (--dynamic 1 + --lvq B,
// --shards S, --lvq 0 for float32). --churn keeps a single writer
// inserting/deleting through the Index handle (with periodic
// consolidation) while the clients search — facade mutation forwarding
// under real load.
//
// Usage:
//   blink_serve [options]
//     --index PATH     serve a persisted artifact (see above)
//     --map            with --index: serve a static bundle from a
//                      read-only file mapping (out-of-core); falls back
//                      to heap loading for non-static or pre-v3 artifacts
//     --kind K         explicit facade kind (static-lvq, sharded, ...)
//     --n N            base vectors                  (default 20000)
//     --nq N           distinct queries              (default 1000)
//     --k N            neighbors per query           (default 10)
//     --window N[,N..] search window sweep           (default 32)
//     --target-recall R calibrate instead of sweeping: serve with the
//                      cheapest SearchOptions meeting recall R on a held-out
//                      half of the queries. Synthetic-build mode only (the
//                      --index path has no ground truth); mutually
//                      exclusive with --window. The chosen options are
//                      printed before load starts.
//     --threads T      engine searcher pool size     (default NumThreads())
//     --clients C      closed-loop client threads    (default 2*threads)
//     --duration S     seconds of load per window    (default 3)
//     --mode M         sync | async                  (default async)
//     --batch B        queries per sync request      (default 8)
//     --lvq B          LVQ bits (0 = float32 index)  (default 8)
//     --bits2 B        LVQ residual bits             (default 0 = one-level)
//     --shards S       sharded index with S shards   (default 1 = unsharded)
//     --nprobe-shards P shards probed per query      (default 0 = all)
//     --dynamic 0|1    streaming dynamic index       (default 0)
//     --churn OPS      writer ops/sec during load    (default 0; needs a
//                      mutable index). With metadata attached the writer
//                      also upserts each inserted vector's metadata row
//                      (deterministic from its id), exercising the
//                      upsert-vs-filtered-search path under load.
//     --filter PRED    filtered search (filter/predicate.h grammar). The
//                      synthetic build attaches deterministic metadata
//                      (tags + one f64 column) and reports filtered and
//                      unfiltered recall separately; --index mode needs a
//                      .meta sidecar (blink_build --meta) and reports QPS
//                      only.
//     --filter-strategy auto|post|insearch (default auto)
//     --filter-widen-cap N post-filter widening cap  (default 0 = auto)
//     --seed S         dataset/build seed            (default 1234)
//
// Network loadgen mode (drives a running blink_server instead of an
// in-process engine):
//     --connect H:P    server address; C clients each open one connection
//                      and run a closed loop of B-query search requests
//     --queries F      query vectors (.fvecs, e.g. blink_gen's
//                      <prefix>.query.fvecs); default: gaussian vectors of
//                      the server's dimension
//     --gt F           ground truth (.ivecs) matching --queries; enables
//                      the recall report. Rejected requests (admission
//                      control) never count against recall — only answered
//                      queries are scored.
//     --swap P[,P...]  hot-swap artifact path(s): a swapper thread cycles
//                      through them during the load
//     --swap-every S   seconds between hot-swaps    (default 1.0)
//
// sync  — each client calls ServingEngine::SearchBatch with B queries per
//         request (the request is the latency unit).
// async — each client Submit()s one query at a time and waits on the
//         future; the engine micro-batches across clients.
//
// SIGINT/SIGTERM in any mode stops the load gracefully: in-flight requests
// finish and the final stats still print.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "blink.h"
#include "filter/synthetic.h"
#include "flags.h"
#include "shutdown.h"

using namespace blink;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--index PATH [--map]] [--kind K] [--n N] [--nq N] "
               "[--k N] "
               "[--window N,N,... | --target-recall R]\n"
               "                  [--threads T] "
               "[--clients C] [--duration S] [--mode sync|async] [--batch B]\n"
               "                  [--lvq bits] [--bits2 bits] [--shards S] "
               "[--nprobe-shards P]\n                  [--dynamic 0|1] "
               "[--churn OPS] [--seed S]\n"
               "       %s --connect HOST:PORT [--queries F.fvecs [--gt "
               "F.ivecs]] [--nq N] [--k N]\n"
               "                  [--window W] [--clients C] [--duration S] "
               "[--batch B]\n"
               "                  [--swap PATH[,PATH...] [--swap-every S]] "
               "[--seed S]\n",
               argv0, argv0);
  return 2;
}

struct ClientResult {
  std::vector<double> latencies_ms;
  size_t queries = 0;
  size_t rejected = 0;  ///< async submissions resolved with a non-kOk outcome
};

/// One closed-loop measurement: C clients hammering the engine for
/// `duration` seconds at one SearchOptions setting.
struct LoadResult {
  std::vector<double> latencies_ms;
  size_t queries = 0;
  size_t rejected = 0;
  double elapsed = 0.0;
  uint64_t batches = 0;
  double dists_per_query = 0.0;
};

LoadResult RunLoad(ServingEngine& engine, MatrixViewF queries, size_t k,
                   const SearchOptions& params, size_t clients, double duration,
                   bool async_mode, size_t batch, Matrix<uint32_t>* results,
                   std::vector<char>* answered) {
  const size_t nq = queries.rows;
  std::vector<ClientResult> per_client(clients);
  std::vector<std::thread> workers;
  workers.reserve(clients);
  const ServingCounters before = engine.counters();
  Timer wall;
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      ClientResult& out = per_client[c];
      const size_t lo = nq * c / clients;
      const size_t hi = std::max(lo + 1, nq * (c + 1) / clients);
      size_t qi = lo;
      while (wall.Seconds() < duration && !tools::StopRequested()) {
        Timer t;
        if (async_mode) {
          auto fut = engine.Submit(queries.row(qi), k, params);
          SearchResult res = fut.get();
          // A non-kOk outcome (shutdown race) never ran: the row keeps its
          // previous answer (if any) and the query is tallied as rejected,
          // not scored against recall.
          if (res.outcome == SearchOutcome::kOk) {
            std::copy(res.ids.begin(), res.ids.end(), results->row(qi));
            (*answered)[qi] = 1;
            out.queries += 1;
          } else {
            out.rejected += 1;
          }
          qi = qi + 1 >= hi ? lo : qi + 1;
        } else {
          const size_t take = std::min(batch, hi - qi);
          MatrixViewF slice(queries.row(qi), take, queries.cols);
          engine.SearchBatch(slice, k, params, results->row(qi));
          for (size_t r = 0; r < take; ++r) (*answered)[qi + r] = 1;
          out.queries += take;
          qi = qi + take >= hi ? lo : qi + take;
        }
        out.latencies_ms.push_back(t.Millis());
      }
    });
  }
  for (auto& w : workers) w.join();
  LoadResult r;
  r.elapsed = wall.Seconds();
  for (const ClientResult& c : per_client) {
    r.latencies_ms.insert(r.latencies_ms.end(), c.latencies_ms.begin(),
                          c.latencies_ms.end());
    r.queries += c.queries;
    r.rejected += c.rejected;
  }
  const ServingCounters after = engine.counters();
  r.batches = after.batches - before.batches;
  const uint64_t q = after.queries - before.queries;
  r.dists_per_query =
      q > 0 ? static_cast<double>(after.distance_computations -
                                  before.distance_computations) /
                  static_cast<double>(q)
            : 0.0;
  return r;
}

/// Consumes every bare `--map` from argv (FlagParser only iterates
/// `--flag value` pairs); returns true when one was present.
bool TakeMapFlag(int* argc, char** argv) {
  bool found = false;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    if (std::strcmp(argv[r], "--map") == 0) {
      found = true;
    } else {
      argv[w++] = argv[r];
    }
  }
  *argc = w;
  return found;
}

/// Gaussian query matrix for --index mode (no dataset to draw from).
MatrixF RandomQueries(size_t nq, size_t dim, uint64_t seed) {
  MatrixF q(nq, dim);
  Rng rng(seed);
  for (size_t i = 0; i < q.size(); ++i) {
    q.data()[i] = rng.Gaussian();
  }
  return q;
}

// ---------------------------------------------------------------------------
// --connect mode: a closed-loop network loadgen over net::BlinkClient.
// ---------------------------------------------------------------------------

struct ConnectConfig {
  std::string host;
  uint16_t port = 0;
  std::string queries_path;  ///< .fvecs; empty = gaussian
  std::string gt_path;       ///< .ivecs; empty = no recall report
  std::vector<std::string> swap_paths;
  double swap_every = 1.0;
  size_t nq = 1000;
  size_t k = 10;
  uint32_t window = 32;
  uint32_t nprobe_shards = 0;
  size_t clients = 0;
  size_t batch = 8;
  double duration = 3.0;
  uint64_t seed = 1234;
  /// Sent in every search request when set (the server must hold metadata;
  /// supply *filtered* ground truth with --gt or skip the recall report).
  std::shared_ptr<const Predicate> filter;
  FilterStrategy filter_strategy = FilterStrategy::kAuto;
  uint32_t filter_widen_cap = 0;
};

/// Per-client tallies. Rejected requests are counted, never scored: a
/// query the server refused (admission control / shutdown) must not drag
/// recall down — it was never answered, wrongly or otherwise.
struct NetClientResult {
  std::vector<double> latencies_ms;
  size_t answered = 0;       ///< queries with a kOk response
  size_t rejected = 0;       ///< queries in kOverloaded/kShuttingDown replies
  size_t transport_errors = 0;
  uint64_t min_generation = std::numeric_limits<uint64_t>::max();
  uint64_t max_generation = 0;
};

int RunConnectMode(const ConnectConfig& cfg) {
  // Probe the server: dimension (to size gaussian queries and sanity-check
  // files) and the starting generation come from its stats JSON.
  auto probe = net::BlinkClient::Connect(cfg.host, cfg.port);
  if (!probe.ok()) {
    std::fprintf(stderr, "%s\n", probe.status().ToString().c_str());
    return 1;
  }
  net::BlinkClient control = std::move(probe).value();
  net::StatusTextResponse stats0;
  Status st = control.Stats(&stats0);
  if (!st.ok()) {
    std::fprintf(stderr, "stats: %s\n", st.ToString().c_str());
    return 1;
  }
  Result<json::Value> parsed = json::Parse(stats0.text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "stats JSON: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  const json::Value* dim_v = parsed.value().Find("index") != nullptr
                                 ? parsed.value().Find("index")->Find("dim")
                                 : nullptr;
  if (dim_v == nullptr || !dim_v->is_number()) {
    std::fprintf(stderr, "stats JSON has no index.dim\n");
    return 1;
  }
  const size_t dim = static_cast<size_t>(dim_v->as_number());

  MatrixF queries;
  Matrix<uint32_t> gt;
  if (!cfg.queries_path.empty()) {
    Result<MatrixF> q = ReadFvecs(cfg.queries_path);
    if (!q.ok()) {
      std::fprintf(stderr, "%s\n", q.status().ToString().c_str());
      return 1;
    }
    queries = std::move(q).value();
    if (queries.cols() != dim) {
      std::fprintf(stderr,
                   "--queries dimension (%zu) != server dimension (%zu)\n",
                   queries.cols(), dim);
      return 1;
    }
    if (queries.rows() > cfg.nq) {
      MatrixF head(cfg.nq, dim);
      std::copy_n(queries.data(), cfg.nq * dim, head.data());
      queries = std::move(head);
    }
  } else {
    queries = RandomQueries(cfg.nq, dim, cfg.seed + 17);
  }
  const size_t nq = queries.rows();
  if (!cfg.gt_path.empty()) {
    if (cfg.queries_path.empty()) {
      std::fprintf(stderr, "--gt without --queries makes no sense (gaussian "
                           "queries have no ground truth)\n");
      return 1;
    }
    Result<Matrix<int32_t>> g = ReadIvecs(cfg.gt_path);
    if (!g.ok()) {
      std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
      return 1;
    }
    if (g.value().rows() < nq || g.value().cols() < cfg.k) {
      std::fprintf(stderr, "--gt is %zux%zu; need at least %zux%zu\n",
                   g.value().rows(), g.value().cols(), nq, cfg.k);
      return 1;
    }
    gt = Matrix<uint32_t>(nq, g.value().cols());
    for (size_t i = 0; i < gt.size(); ++i) {
      gt.data()[i] = static_cast<uint32_t>(g.value().data()[i]);
    }
  }

  size_t clients = cfg.clients == 0 ? 4 : cfg.clients;
  if (clients > nq) clients = nq;

  std::printf("blink_serve --connect %s:%u: nq=%zu d=%zu k=%zu window=%u | "
              "clients=%zu batch=%zu duration=%.1fs%s\n",
              cfg.host.c_str(), cfg.port, nq, dim, cfg.k, cfg.window, clients,
              cfg.batch, cfg.duration,
              cfg.swap_paths.empty()
                  ? ""
                  : (" | swap-every " + std::to_string(cfg.swap_every) + "s")
                        .c_str());

  SearchOptions options;
  options.window = cfg.window;
  options.nprobe_shards = cfg.nprobe_shards;
  options.filter = cfg.filter;
  options.filter_strategy = cfg.filter_strategy;
  options.filter_widen_cap = cfg.filter_widen_cap;

  // `answered[qi]` marks rows of `results` holding a scored answer;
  // stripes are disjoint per client so there are no concurrent writers.
  Matrix<uint32_t> results(nq, cfg.k);
  std::vector<char> answered(nq, 0);
  std::vector<NetClientResult> per_client(clients);
  std::atomic<bool> stop_load{false};
  Timer wall;

  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      NetClientResult& out = per_client[c];
      auto conn = net::BlinkClient::Connect(cfg.host, cfg.port);
      if (!conn.ok()) {
        out.transport_errors += 1;
        return;
      }
      net::BlinkClient client = std::move(conn).value();
      const size_t lo = nq * c / clients;
      const size_t hi = std::max(lo + 1, nq * (c + 1) / clients);
      size_t qi = lo;
      while (wall.Seconds() < cfg.duration && !tools::StopRequested() &&
             !stop_load.load(std::memory_order_relaxed)) {
        const size_t take = std::min(cfg.batch, hi - qi);
        MatrixViewF slice(queries.row(qi), take, queries.cols());
        net::SearchResponse res;
        Timer t;
        Status s = client.Search(slice, static_cast<uint32_t>(cfg.k), options,
                                 &res);
        if (!s.ok()) {
          out.transport_errors += 1;
          break;  // the stream is broken; this client is done
        }
        out.latencies_ms.push_back(t.Millis());
        out.min_generation = std::min(out.min_generation, res.generation);
        out.max_generation = std::max(out.max_generation, res.generation);
        if (res.status == net::WireStatus::kOk) {
          for (size_t r = 0; r < take; ++r) {
            std::copy_n(res.ids.data() + r * cfg.k, cfg.k,
                        results.row(qi + r));
            answered[qi + r] = 1;
          }
          out.answered += take;
        } else {
          out.rejected += take;
        }
        qi = qi + take >= hi ? lo : qi + take;
      }
    });
  }

  // Hot-swap driver: cycles through --swap artifacts on its own
  // connection while the clients hammer the server.
  size_t swaps_ok = 0, swaps_failed = 0;
  std::thread swapper;
  if (!cfg.swap_paths.empty()) {
    swapper = std::thread([&] {
      size_t next = 0;
      while (wall.Seconds() < cfg.duration && !tools::StopRequested() &&
             !stop_load.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(cfg.swap_every));
        if (wall.Seconds() >= cfg.duration || tools::StopRequested()) break;
        net::StatusTextResponse res;
        Status s = control.Swap(cfg.swap_paths[next], &res);
        next = (next + 1) % cfg.swap_paths.size();
        if (s.ok() && res.status == net::WireStatus::kOk) {
          ++swaps_ok;
          std::printf("hot-swap -> generation %llu\n",
                      static_cast<unsigned long long>(res.generation));
        } else {
          ++swaps_failed;
          std::fprintf(stderr, "hot-swap failed: %s\n",
                       s.ok() ? res.text.c_str() : s.ToString().c_str());
        }
      }
    });
  }

  for (auto& w : workers) w.join();
  stop_load.store(true);
  if (swapper.joinable()) swapper.join();
  const double elapsed = wall.Seconds();

  NetClientResult total;
  total.min_generation = std::numeric_limits<uint64_t>::max();
  for (const NetClientResult& c : per_client) {
    total.latencies_ms.insert(total.latencies_ms.end(),
                              c.latencies_ms.begin(), c.latencies_ms.end());
    total.answered += c.answered;
    total.rejected += c.rejected;
    total.transport_errors += c.transport_errors;
    total.min_generation = std::min(total.min_generation, c.min_generation);
    total.max_generation = std::max(total.max_generation, c.max_generation);
  }

  std::printf("\n%zu answered + %zu rejected queries in %.2fs (%zu "
              "requests)\n",
              total.answered, total.rejected, elapsed,
              total.latencies_ms.size());
  std::printf("QPS (answered)    %10.0f\n",
              elapsed > 0 ? static_cast<double>(total.answered) / elapsed
                          : 0.0);
  if (!total.latencies_ms.empty()) {
    std::printf("latency p50       %10.3f ms\n",
                Percentile(total.latencies_ms, 50));
    std::printf("latency p90       %10.3f ms\n",
                Percentile(total.latencies_ms, 90));
    std::printf("latency p99       %10.3f ms\n",
                Percentile(total.latencies_ms, 99));
  }
  if (total.max_generation > 0) {
    std::printf("generations seen  %10llu .. %llu\n",
                static_cast<unsigned long long>(total.min_generation),
                static_cast<unsigned long long>(total.max_generation));
  }
  if (!cfg.swap_paths.empty()) {
    std::printf("hot-swaps         %10zu ok, %zu failed\n", swaps_ok,
                swaps_failed);
  }
  if (total.transport_errors > 0) {
    std::fprintf(stderr, "transport errors  %10zu\n", total.transport_errors);
  }
  if (gt.rows() == nq) {
    // Recall over answered rows only: a rejected query was never answered,
    // so it cannot count as a miss.
    size_t scored = 0;
    double sum = 0.0;
    for (size_t qi = 0; qi < nq; ++qi) {
      if (!answered[qi]) continue;
      sum += RecallAtK({results.row(qi), cfg.k}, {gt.row(qi), gt.cols()},
                       cfg.k);
      ++scored;
    }
    std::printf("recall@%-2zu         %10.4f  (over %zu/%zu answered "
                "queries)\n",
                cfg.k, scored > 0 ? sum / static_cast<double>(scored) : 0.0,
                scored, nq);
  }

  // Server-side view, for cross-checking the loadgen numbers.
  net::StatusTextResponse stats1;
  if (control.Stats(&stats1).ok()) {
    std::printf("\nserver /stats:\n%s\n", stats1.text.c_str());
  }
  return total.transport_errors == 0 ? 0 : 1;
}

/// Splits a comma-separated path list ("a,b,c").
std::vector<std::string> SplitCsv(const char* value) {
  std::vector<std::string> out;
  const char* p = value;
  while (*p != '\0') {
    const char* comma = std::strchr(p, ',');
    if (comma == nullptr) {
      out.emplace_back(p);
      break;
    }
    out.emplace_back(p, comma - p);
    p = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  tools::InstallStopHandler();
  const bool map_mode = TakeMapFlag(&argc, argv);
  ConnectConfig net_cfg;
  std::string connect_addr;
  std::string index_path;
  size_t n = 20000, nq = 1000, k = 10, batch = 8;
  std::vector<uint32_t> windows = {32};
  bool window_set = false;
  double target_recall = 0.0;  // 0 = sweep mode
  size_t threads = NumThreads();
  size_t clients = 0;
  double duration = 3.0;
  int lvq_bits = 8, bits2 = 0;
  size_t shards = 1;
  uint32_t nprobe_shards = 0;
  uint64_t seed = 1234;
  bool async_mode = true;
  bool dynamic_mode = false;
  bool kind_set = false;
  IndexKind kind = IndexKind::kStaticLvq;
  size_t churn_ops = 0;
  Predicate filter;
  bool filter_set = false;
  FilterStrategy filter_strategy = FilterStrategy::kAuto;
  uint32_t filter_widen_cap = 0;
  tools::FlagParser args(argc, argv, 1);
  std::string flag;
  const char* val = nullptr;
  long long iv = 0;
  while (args.Next(&flag, &val)) {
    if (flag == "--index") {
      index_path = val;
    } else if (flag == "--connect") {
      connect_addr = val;
    } else if (flag == "--queries") {
      net_cfg.queries_path = val;
    } else if (flag == "--gt") {
      net_cfg.gt_path = val;
    } else if (flag == "--swap") {
      net_cfg.swap_paths = SplitCsv(val);
      if (net_cfg.swap_paths.empty()) {
        std::fprintf(stderr, "--swap: expected PATH[,PATH...]\n");
        return 1;
      }
    } else if (flag == "--swap-every") {
      if (!tools::ParseDoubleFlag(flag, val, &net_cfg.swap_every)) return 1;
    } else if (flag == "--kind") {
      auto parsed = ParseIndexKind(val);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        return 1;
      }
      kind = parsed.value();
      kind_set = true;
    } else if (flag == "--n") {
      if (!tools::ParseIntFlag(flag, val, 1, 1LL << 32, &iv)) return 1;
      n = static_cast<size_t>(iv);
    } else if (flag == "--nq") {
      if (!tools::ParseIntFlag(flag, val, 1, 1LL << 24, &iv)) return 1;
      nq = static_cast<size_t>(iv);
    } else if (flag == "--k") {
      if (!tools::ParseIntFlag(flag, val, 1, 1 << 20, &iv)) return 1;
      k = static_cast<size_t>(iv);
    } else if (flag == "--window") {
      if (!tools::ParseUintListFlag(flag, val, 1, 1u << 20, &windows)) {
        return 1;
      }
      window_set = true;
    } else if (flag == "--target-recall") {
      if (!tools::ParseDoubleFlag(flag, val, &target_recall)) return 1;
      if (target_recall > 1.0) {
        std::fprintf(stderr, "--target-recall: must be in (0, 1]\n");
        return 1;
      }
    } else if (flag == "--threads") {
      if (!tools::ParseIntFlag(flag, val, 1, 1 << 12, &iv)) return 1;
      threads = static_cast<size_t>(iv);
    } else if (flag == "--clients") {
      if (!tools::ParseIntFlag(flag, val, 1, 1 << 12, &iv)) return 1;
      clients = static_cast<size_t>(iv);
    } else if (flag == "--duration") {
      if (!tools::ParseDoubleFlag(flag, val, &duration)) return 1;
    } else if (flag == "--batch") {
      if (!tools::ParseIntFlag(flag, val, 1, 1 << 16, &iv)) return 1;
      batch = static_cast<size_t>(iv);
    } else if (flag == "--lvq") {
      // Validated: garbage used to parse as 0 bits (i.e. silently float32).
      if (!tools::ParseIntFlag(flag, val, 0, 16, &iv)) return 1;
      lvq_bits = static_cast<int>(iv);
    } else if (flag == "--bits2") {
      if (!tools::ParseIntFlag(flag, val, 0, 16, &iv)) return 1;
      bits2 = static_cast<int>(iv);
    } else if (flag == "--shards") {
      if (!tools::ParseIntFlag(flag, val, 1, 1 << 16, &iv)) return 1;
      shards = static_cast<size_t>(iv);
    } else if (flag == "--nprobe-shards") {
      if (!tools::ParseIntFlag(flag, val, 0, 1 << 16, &iv)) return 1;
      nprobe_shards = static_cast<uint32_t>(iv);
    } else if (flag == "--dynamic") {
      if (!tools::ParseIntFlag(flag, val, 0, 1, &iv)) return 1;
      dynamic_mode = iv != 0;
    } else if (flag == "--churn") {
      if (!tools::ParseIntFlag(flag, val, 0, 1 << 24, &iv)) return 1;
      churn_ops = static_cast<size_t>(iv);
    } else if (flag == "--filter") {
      if (!tools::ParseFilterFlag(flag, val, &filter)) return 1;
      filter_set = true;
    } else if (flag == "--filter-strategy") {
      if (!tools::ParseFilterStrategyFlag(flag, val, &filter_strategy)) {
        return 1;
      }
    } else if (flag == "--filter-widen-cap") {
      if (!tools::ParseIntFlag(flag, val, 0, 1 << 20, &iv)) return 1;
      filter_widen_cap = static_cast<uint32_t>(iv);
    } else if (flag == "--seed") {
      if (!tools::ParseIntFlag(flag, val, 0,
                               std::numeric_limits<long long>::max(), &iv)) {
        return 1;
      }
      seed = static_cast<uint64_t>(iv);
    } else if (flag == "--mode") {
      if (std::strcmp(val, "async") == 0) {
        async_mode = true;
      } else if (std::strcmp(val, "sync") == 0) {
        async_mode = false;
      } else {
        std::fprintf(stderr, "--mode: expected sync or async, got '%s'\n", val);
        return 1;
      }
    } else {
      return Usage(argv[0]);
    }
  }
  if (!args.ok()) return Usage(argv[0]);
  if (!connect_addr.empty()) {
    auto hp = net::ParseHostPort(connect_addr);
    if (!hp.ok()) {
      std::fprintf(stderr, "%s\n", hp.status().ToString().c_str());
      return 1;
    }
    net_cfg.host = hp.value().first;
    net_cfg.port = hp.value().second;
    net_cfg.nq = nq;
    net_cfg.k = k;
    net_cfg.window = windows.empty() ? 32 : windows[0];
    net_cfg.nprobe_shards = nprobe_shards;
    net_cfg.clients = clients;
    net_cfg.batch = batch;
    net_cfg.duration = duration;
    net_cfg.seed = seed;
    if (filter_set) {
      net_cfg.filter = std::make_shared<const Predicate>(filter);
      net_cfg.filter_strategy = filter_strategy;
      net_cfg.filter_widen_cap = filter_widen_cap;
    }
    return RunConnectMode(net_cfg);
  }
  if (!net_cfg.queries_path.empty() || !net_cfg.gt_path.empty() ||
      !net_cfg.swap_paths.empty()) {
    std::fprintf(stderr,
                 "--queries/--gt/--swap only apply with --connect\n");
    return 1;
  }
  if (target_recall > 0.0 && window_set) {
    std::fprintf(stderr,
                 "--target-recall and --window are mutually exclusive: "
                 "calibration picks the window\n");
    return 1;
  }
  if (target_recall > 0.0 && !index_path.empty()) {
    std::fprintf(stderr,
                 "--target-recall needs exact ground truth, which only the "
                 "synthetic build has; it cannot be combined with --index\n");
    return 1;
  }
  if (clients == 0) clients = 2 * threads;
  // Each client owns a disjoint stripe of the query set (so concurrent
  // writes into the recall matrix never overlap); more clients than
  // queries would collapse stripes.
  if (clients > nq) clients = nq;

  // Compose the spec from the legacy shorthand flags unless --kind said it
  // outright: --dynamic picks the mutable flavors, --shards the sharded
  // one, --lvq 0 the float32 baseline.
  if (!kind_set) {
    if (dynamic_mode) {
      kind = lvq_bits > 0 ? IndexKind::kDynamicLvq : IndexKind::kDynamicF32;
    } else if (shards > 1) {
      kind = IndexKind::kSharded;
    } else {
      kind = lvq_bits > 0 ? IndexKind::kStaticLvq : IndexKind::kStaticF32;
    }
  }

  ThreadPool build_pool(threads);
  Index index;
  MatrixF queries;
  MatrixF churn_base;   // vectors the churn writer inserts (see below)
  Matrix<uint32_t> gt;  // empty when no ground truth (--index mode)
  Matrix<uint32_t> filtered_gt;  // only in synthetic mode with --filter
  // Metadata rows (build-time and churn upserts) all derive from this one
  // seed so the filtered ground truth and the store agree.
  const uint64_t meta_seed = seed + 7;
  if (!index_path.empty()) {
    OpenOptions open_opts;
    if (map_mode) open_opts.load_mode = LoadMode::kMap;
    Result<Index> opened = Open(index_path, open_opts);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 1;
    }
    index = std::move(opened).value();
    queries = RandomQueries(nq, index.dim(), seed + 17);
    std::printf("opened %s (%s, %s) from %s: n=%zu d=%zu (%.1f MiB)\n",
                index.name().c_str(), KindName(index.kind()),
                LoadModeName(index.spec().load_mode), index_path.c_str(),
                index.size(), index.dim(),
                index.memory_bytes() / 1048576.0);
    if (filter_set && index.metadata() == nullptr) {
      std::fprintf(stderr,
                   "--filter: %s has no metadata sidecar; build one with "
                   "blink_build --meta\n",
                   index_path.c_str());
      return 1;
    }
  } else {
    if (map_mode) {
      std::fprintf(stderr, "warning: --map has no effect without --index "
                           "(a built index is heap-resident)\n");
    }
    Dataset data = MakeDeepLike(n, nq, seed);
    IndexSpec spec;
    spec.kind = kind;
    spec.metric = data.metric;
    spec.bits1 = lvq_bits > 0 ? lvq_bits : 8;
    spec.bits2 = bits2;
    spec.graph.graph_max_degree = 32;
    spec.graph.window_size = 64;
    spec.partition.num_shards = shards;
    spec.dynamic.initial_capacity =
        n + 1024;  // headroom so churn never stops the world
    Timer build_timer;
    Result<Index> built = Build(spec, data.base, &build_pool);
    if (!built.ok()) {
      std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
      return 1;
    }
    index = std::move(built).value();
    std::printf("built %s (%s) in %.1fs (%.1f MiB)\n", index.name().c_str(),
                KindName(index.kind()), build_timer.Seconds(),
                index.memory_bytes() / 1048576.0);
    gt = ComputeGroundTruth(data.base, data.queries, k, data.metric,
                            &build_pool);
    if (filter_set) {
      // Tags plus one f64 column: enough surface for any predicate the
      // grammar can express against synthetic data.
      auto store = std::make_shared<const MetadataStore>(MakeSyntheticMetadata(
          n, {ColumnType::kF64}, meta_seed));
      Status attached = index.AttachMetadata(store);
      if (!attached.ok()) {
        std::fprintf(stderr, "%s\n", attached.ToString().c_str());
        return 1;
      }
      filtered_gt = ComputeFilteredGroundTruth(data.base, data.queries, k,
                                               data.metric, *store, filter,
                                               &build_pool);
    }
    queries = data.queries.Clone();
    // The churn writer must insert *base* vectors: a transient duplicate
    // of a base vector can only tie with its original under the ground
    // truth, while a duplicate of a query would sit at distance 0 and
    // deflate recall.
    churn_base = std::move(data.base);
  }
  if (churn_ops > 0 && !index.has(kCapInsert)) {
    std::fprintf(stderr, "--churn requires a mutable index (%s is %s)\n",
                 index.name().c_str(), KindName(index.kind()));
    return 1;
  }
  std::shared_ptr<const Predicate> filter_ptr;
  if (filter_set) {
    const MetadataStore* md = index.metadata();
    Status valid = filter.ValidateFor(md->num_columns());
    if (!valid.ok()) {
      std::fprintf(stderr, "--filter: %s\n", valid.ToString().c_str());
      return 1;
    }
    filter_ptr = std::make_shared<const Predicate>(filter);
    std::printf("filter '%s': estimated selectivity %.4f, strategy %s\n",
                filter.ToString().c_str(), EstimateSelectivity(*md, filter),
                ResolveFilterStrategy(*md, filter, filter_strategy) ==
                        FilterStrategy::kInSearch
                    ? "in-search"
                    : "post-filter");
  }

  std::printf("blink_serve: nq=%zu d=%zu k=%zu | engine threads=%zu "
              "clients=%zu mode=%s%s | backend=%s\n",
              nq, index.dim(), k, threads, clients,
              async_mode ? "async" : "sync",
              async_mode ? "" : (" batch=" + std::to_string(batch)).c_str(),
              simd::BackendName());

  // Calibration runs before the churn writer starts: the sample measurement
  // should see the index as built, not mid-mutation.
  std::vector<SearchOptions> settings;
  if (target_recall > 0.0) {
    const size_t ns = nq >= 4 ? nq / 2 : nq;
    MatrixViewF sample(queries.row(0), ns, queries.cols());
    Matrix<uint32_t> gt_sample(ns, gt.cols());
    for (size_t i = 0; i < ns; ++i) {
      std::copy_n(gt.row(i), gt.cols(), gt_sample.row(i));
    }
    CalibrationTarget target;
    target.target_recall = target_recall;
    target.sample_queries = sample;
    target.groundtruth = &gt_sample;
    target.k = k;
    target.seed.nprobe_shards = nprobe_shards;
    target.pool = &build_pool;
    Result<SearchOptions> chosen = index.Calibrate(target);
    if (!chosen.ok()) {
      std::fprintf(stderr, "calibration failed: %s\n",
                   chosen.status().ToString().c_str());
      return 1;
    }
    std::printf("calibrated for recall >= %.3f on %zu sample queries: "
                "window=%u nprobe_shards=%u rerank_window=%u\n",
                target_recall, ns, chosen.value().window,
                chosen.value().nprobe_shards, chosen.value().rerank_window);
    settings.push_back(chosen.value());
  } else {
    for (uint32_t w : windows) {
      SearchOptions params;
      params.window = w;
      params.nprobe_shards = nprobe_shards;
      settings.push_back(params);
    }
  }

  ServingOptions opts;
  opts.num_threads = threads;
  Result<std::unique_ptr<ServingEngine>> served = index.Serve(opts);
  if (!served.ok()) {
    std::fprintf(stderr, "%s\n", served.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<ServingEngine> engine = std::move(served).value();

  // Live writer: insert fresh vectors and delete them again through the
  // facade's mutation seam, consolidating occasionally, at ~churn_ops/sec.
  // Synthetic-build mode inserts copies of base vectors (a duplicate can
  // only tie with its original, so the recall figure stays meaningful);
  // --index mode inserts gaussian vectors (no recall is reported there).
  std::atomic<bool> stop_churn{false};
  std::thread churner;
  if (churn_ops > 0) {
    churner = std::thread([&] {
      Rng rng(seed + 1);
      const MatrixF& source = churn_base.empty() ? queries : churn_base;
      std::vector<uint32_t> extra;
      const auto pause =
          std::chrono::microseconds(1000000 / std::max<size_t>(churn_ops, 1));
      size_t ops = 0;
      while (!stop_churn.load(std::memory_order_relaxed)) {
        if (extra.size() < 256 && rng.Bounded(2) == 0) {
          auto id = index.Insert(source.row(rng.Bounded(source.rows())));
          if (id.ok()) {
            // Give every churned-in vector deterministic id-derived
            // metadata so filtered searches under load see a live
            // upsert-vs-read schedule (the TSan target of this tool).
            if (const MetadataStore* md = index.metadata()) {
              std::vector<double> vals(md->num_columns());
              for (size_t c = 0; c < vals.size(); ++c) {
                vals[c] = md->column_type(c) == ColumnType::kI64
                              ? static_cast<double>(
                                    SyntheticI64(meta_seed, id.value(), c))
                              : SyntheticF64(meta_seed, id.value(), c);
              }
              (void)index.UpsertMetadata(id.value(),
                                         SyntheticTags(meta_seed, id.value()),
                                         vals.data(), vals.size());
            }
            extra.push_back(id.value());
          }
        } else if (!extra.empty()) {
          const size_t pick = rng.Bounded(extra.size());
          (void)index.Delete(extra[pick]);
          extra[pick] = extra.back();
          extra.pop_back();
        }
        if (++ops % 512 == 0) (void)index.Consolidate();
        std::this_thread::sleep_for(pause);
      }
      // Leave the index as found: drop the writer's surviving inserts.
      for (uint32_t id : extra) (void)index.Delete(id);
      (void)index.Consolidate();
    });
  }

  Matrix<uint32_t> results(nq, k);  // last result per query, for recall
  // One report per (window, variant) run; recall scores against whichever
  // ground truth matches the variant (exact vs brute-force-filtered), so
  // --filter prints filtered and unfiltered figures separately.
  auto run_and_report = [&](const char* label, const SearchOptions& params,
                            const Matrix<uint32_t>& truth) {
    std::vector<char> answered(nq, 0);
    LoadResult r = RunLoad(*engine, queries, k, params, clients, duration,
                           async_mode, batch, &results, &answered);
    const double qps = static_cast<double>(r.queries) / r.elapsed;
    std::printf("\nwindow %u%s: %zu queries in %.2fs  (%zu requests, %llu "
                "micro-batches)\n",
                params.window, label, r.queries, r.elapsed,
                r.latencies_ms.size(),
                static_cast<unsigned long long>(r.batches));
    std::printf("QPS               %10.0f\n", qps);
    if (r.rejected > 0) {
      std::printf("rejected          %10zu  (excluded from recall)\n",
                  r.rejected);
    }
    if (!r.latencies_ms.empty()) {
      std::printf("latency p50       %10.3f ms\n",
                  Percentile(r.latencies_ms, 50));
      std::printf("latency p90       %10.3f ms\n",
                  Percentile(r.latencies_ms, 90));
      std::printf("latency p99       %10.3f ms\n",
                  Percentile(r.latencies_ms, 99));
      std::printf("latency max       %10.3f ms\n",
                  *std::max_element(r.latencies_ms.begin(),
                                    r.latencies_ms.end()));
    }
    std::printf("dists/query       %10.1f\n", r.dists_per_query);
    if (truth.rows() == nq) {
      // Score only answered rows: a query the engine rejected (shutdown
      // race) was never answered and must not read as a recall miss.
      size_t scored = 0;
      double sum = 0.0;
      for (size_t qi = 0; qi < nq; ++qi) {
        if (!answered[qi]) continue;
        sum += RecallAtK({results.row(qi), k}, {truth.row(qi), truth.cols()},
                         k);
        ++scored;
      }
      std::printf("recall@%-2zu%s %10.4f  (over %zu/%zu answered)\n", k,
                  *label != '\0' ? label : "         ",
                  scored > 0 ? sum / static_cast<double>(scored) : 0.0,
                  scored, nq);
    }
  };
  for (const SearchOptions& params : settings) {
    if (tools::StopRequested()) break;
    run_and_report("", params, gt);
    if (filter_ptr != nullptr) {
      if (tools::StopRequested()) break;
      SearchOptions fparams = params;
      fparams.filter = filter_ptr;
      fparams.filter_strategy = filter_strategy;
      fparams.filter_widen_cap = filter_widen_cap;
      run_and_report(" [filtered]", fparams, filtered_gt);
    }
  }
  if (churner.joinable()) {
    stop_churn.store(true);
    churner.join();
  }
  return 0;
}
