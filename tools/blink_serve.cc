// blink_serve — closed-loop load generator for the serving engine.
//
// Builds an OG index over a synthetic dataset (no input files needed),
// stands up a ServingEngine, and drives it with C closed-loop client
// threads for a fixed duration; reports QPS, latency percentiles
// (p50/p90/p99/max) and k-recall@k against exact ground truth.
//
// Usage:
//   blink_serve [options]
//     --n N            base vectors                  (default 20000)
//     --nq N           distinct queries              (default 1000)
//     --k N            neighbors per query           (default 10)
//     --window N       search window W               (default 32)
//     --threads T      engine searcher pool size     (default NumThreads())
//     --clients C      closed-loop client threads    (default 2*threads)
//     --duration S     seconds of load               (default 3)
//     --mode M         sync | async                  (default async)
//     --batch B        queries per sync request      (default 8)
//     --lvq B          LVQ bits (0 = float32 index)  (default 8)
//     --shards S       sharded index with S shards   (default 1 = unsharded)
//     --nprobe-shards P shards probed per query      (default 0 = all)
//     --seed S         dataset/build seed            (default 1234)
//
// sync  — each client calls ServingEngine::SearchBatch with B queries per
//         request (the request is the latency unit).
// async — each client Submit()s one query at a time and waits on the
//         future; the engine micro-batches across clients.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "blink.h"

using namespace blink;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--n N] [--nq N] [--k N] [--window N] [--threads T] "
               "[--clients C]\n                  [--duration S] "
               "[--mode sync|async] [--batch B] [--lvq bits]\n"
               "                  [--shards S] [--nprobe-shards P] [--seed S]\n",
               argv0);
  return 2;
}

struct ClientResult {
  std::vector<double> latencies_ms;
  size_t queries = 0;
};

}  // namespace

int main(int argc, char** argv) {
  size_t n = 20000, nq = 1000, k = 10, batch = 8;
  uint32_t window = 32;
  size_t threads = NumThreads();
  size_t clients = 0;
  double duration = 3.0;
  int lvq_bits = 8;
  size_t shards = 1;
  uint32_t nprobe_shards = 0;
  uint64_t seed = 1234;
  bool async_mode = true;
  for (int a = 1; a + 1 < argc; a += 2) {
    const std::string flag = argv[a];
    const char* val = argv[a + 1];
    if (flag == "--n") n = std::strtoull(val, nullptr, 10);
    else if (flag == "--nq") nq = std::strtoull(val, nullptr, 10);
    else if (flag == "--k") k = std::strtoull(val, nullptr, 10);
    else if (flag == "--window") window = static_cast<uint32_t>(std::strtoul(val, nullptr, 10));
    else if (flag == "--threads") threads = std::strtoull(val, nullptr, 10);
    else if (flag == "--clients") clients = std::strtoull(val, nullptr, 10);
    else if (flag == "--duration") duration = std::strtod(val, nullptr);
    else if (flag == "--batch") batch = std::strtoull(val, nullptr, 10);
    else if (flag == "--lvq") lvq_bits = std::atoi(val);
    else if (flag == "--shards") shards = std::strtoull(val, nullptr, 10);
    else if (flag == "--nprobe-shards") nprobe_shards = static_cast<uint32_t>(std::strtoul(val, nullptr, 10));
    else if (flag == "--seed") seed = std::strtoull(val, nullptr, 10);
    else if (flag == "--mode") async_mode = std::strcmp(val, "async") == 0;
    else return Usage(argv[0]);
  }
  if (threads == 0) threads = 1;
  if (clients == 0) clients = 2 * threads;
  if (batch == 0) batch = 1;
  // Each client owns a disjoint stripe of the query set (so concurrent
  // writes into the recall matrix never overlap); more clients than
  // queries would collapse stripes.
  if (clients > nq) clients = nq;

  std::printf("blink_serve: n=%zu nq=%zu d=96 k=%zu W=%u | engine threads=%zu "
              "clients=%zu mode=%s%s | backend=%s\n",
              n, nq, k, window, threads, clients,
              async_mode ? "async" : "sync",
              async_mode ? "" : (" batch=" + std::to_string(batch)).c_str(),
              simd::BackendName());

  ThreadPool build_pool(threads);
  Dataset data = MakeDeepLike(n, nq, seed);
  VamanaBuildParams bp;
  bp.graph_max_degree = 32;
  bp.window_size = 64;
  Timer build_timer;
  std::unique_ptr<SearchIndex> index;
  if (shards > 1) {
    // The engine serves the sharded index through the same SearchIndex /
    // MakeSearcher seam as every other index — no serving changes needed.
    ShardedBuildParams sp;
    sp.partition.num_shards = shards;
    sp.graph = bp;
    sp.bits1 = lvq_bits > 0 ? lvq_bits : 8;
    index = BuildShardedLvq(data.base, data.metric, sp, &build_pool);
  } else if (lvq_bits > 0) {
    index = BuildOgLvq(data.base, data.metric, lvq_bits, 0, bp, &build_pool);
  } else {
    index = BuildVamanaF32(data.base, data.metric, bp, &build_pool);
  }
  std::printf("built %s in %.1fs (%.1f MiB)\n", index->name().c_str(),
              build_timer.Seconds(), index->memory_bytes() / 1048576.0);
  Matrix<uint32_t> gt =
      ComputeGroundTruth(data.base, data.queries, k, data.metric, &build_pool);

  ServingOptions opts;
  opts.num_threads = threads;
  ServingEngine engine(index.get(), opts);

  RuntimeParams params;
  params.window = window;
  params.nprobe_shards = nprobe_shards;

  // Closed loop: each client owns a stripe of the query set and hammers it
  // until the deadline, recording per-request latency.
  Matrix<uint32_t> results(nq, k);  // last result per query, for recall
  std::vector<ClientResult> per_client(clients);
  std::vector<std::thread> workers;
  workers.reserve(clients);
  Timer wall;
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      ClientResult& out = per_client[c];
      const size_t lo = nq * c / clients;
      const size_t hi = std::max(lo + 1, nq * (c + 1) / clients);
      size_t qi = lo;
      while (wall.Seconds() < duration) {
        Timer t;
        if (async_mode) {
          auto fut = engine.Submit(data.queries.row(qi), k, params);
          SearchResult res = fut.get();
          std::copy(res.ids.begin(), res.ids.end(), results.row(qi));
          out.queries += 1;
          qi = qi + 1 >= hi ? lo : qi + 1;
        } else {
          const size_t take = std::min(batch, hi - qi);
          MatrixViewF slice(data.queries.row(qi), take, data.queries.cols());
          engine.SearchBatch(slice, k, params, results.row(qi));
          out.queries += take;
          qi = qi + take >= hi ? lo : qi + take;
        }
        out.latencies_ms.push_back(t.Millis());
      }
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed = wall.Seconds();

  std::vector<double> lat;
  size_t total_queries = 0;
  for (const ClientResult& r : per_client) {
    lat.insert(lat.end(), r.latencies_ms.begin(), r.latencies_ms.end());
    total_queries += r.queries;
  }
  const ServingCounters c = engine.counters();
  const double qps = static_cast<double>(total_queries) / elapsed;
  std::printf("\n%zu queries in %.2fs  (%zu requests, %llu micro-batches)\n",
              total_queries, elapsed, lat.size(),
              static_cast<unsigned long long>(c.batches));
  std::printf("QPS               %10.0f\n", qps);
  if (!lat.empty()) {
    std::printf("latency p50       %10.3f ms\n", Percentile(lat, 50));
    std::printf("latency p90       %10.3f ms\n", Percentile(lat, 90));
    std::printf("latency p99       %10.3f ms\n", Percentile(lat, 99));
    std::printf("latency max       %10.3f ms\n",
                *std::max_element(lat.begin(), lat.end()));
  }
  std::printf("dists/query       %10.1f\n",
              c.queries > 0 ? static_cast<double>(c.distance_computations) /
                                  static_cast<double>(c.queries)
                            : 0.0);
  std::printf("recall@%-2zu         %10.4f\n", k, MeanRecallAtK(results, gt, k));
  return 0;
}
