// blink_serve — closed-loop load generator for the serving engine.
//
// Builds an index over a synthetic dataset (no input files needed), stands
// up a ServingEngine, and drives it with C closed-loop client threads for a
// fixed duration; reports QPS, latency percentiles (p50/p90/p99/max) and
// k-recall@k against exact ground truth.
//
// Two index families:
//   static  (default)    — OG-LVQ / float32 Vamana, optionally sharded.
//   dynamic (--dynamic 1) — a mutable DynamicGraphIndex built by streaming
//         inserts and served through DynamicView; --lvq selects the
//         compressed storage (LVQ-B, encoded at insert time against a
//         sample mean; --bits2 adds a residual level), --lvq 0 the float32
//         baseline. --churn keeps a single writer inserting/deleting
//         vectors (with periodic consolidation) while the clients search,
//         exercising the single-writer/multi-reader path under load.
//
// Usage:
//   blink_serve [options]
//     --n N            base vectors                  (default 20000)
//     --nq N           distinct queries              (default 1000)
//     --k N            neighbors per query           (default 10)
//     --window N       search window W               (default 32)
//     --threads T      engine searcher pool size     (default NumThreads())
//     --clients C      closed-loop client threads    (default 2*threads)
//     --duration S     seconds of load               (default 3)
//     --mode M         sync | async                  (default async)
//     --batch B        queries per sync request      (default 8)
//     --lvq B          LVQ bits (0 = float32 index)  (default 8)
//     --bits2 B        dynamic LVQ residual bits     (default 0 = one-level)
//     --shards S       sharded index with S shards   (default 1 = unsharded)
//     --nprobe-shards P shards probed per query      (default 0 = all)
//     --dynamic 0|1    streaming dynamic index       (default 0)
//     --churn OPS      writer ops/sec during load    (default 0; needs --dynamic)
//     --seed S         dataset/build seed            (default 1234)
//
// sync  — each client calls ServingEngine::SearchBatch with B queries per
//         request (the request is the latency unit).
// async — each client Submit()s one query at a time and waits on the
//         future; the engine micro-batches across clients.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "blink.h"
#include "flags.h"

using namespace blink;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--n N] [--nq N] [--k N] [--window N] [--threads T] "
               "[--clients C]\n                  [--duration S] "
               "[--mode sync|async] [--batch B] [--lvq bits] [--bits2 bits]\n"
               "                  [--shards S] [--nprobe-shards P] "
               "[--dynamic 0|1] [--churn OPS] [--seed S]\n",
               argv0);
  return 2;
}

struct ClientResult {
  std::vector<double> latencies_ms;
  size_t queries = 0;
};

}  // namespace

int main(int argc, char** argv) {
  size_t n = 20000, nq = 1000, k = 10, batch = 8;
  uint32_t window = 32;
  size_t threads = NumThreads();
  size_t clients = 0;
  double duration = 3.0;
  int lvq_bits = 8, bits2 = 0;
  size_t shards = 1;
  uint32_t nprobe_shards = 0;
  uint64_t seed = 1234;
  bool async_mode = true;
  bool dynamic_mode = false;
  size_t churn_ops = 0;
  tools::FlagParser args(argc, argv, 1);
  std::string flag;
  const char* val = nullptr;
  long long iv = 0;
  while (args.Next(&flag, &val)) {
    if (flag == "--n") {
      if (!tools::ParseIntFlag(flag, val, 1, 1LL << 32, &iv)) return 1;
      n = static_cast<size_t>(iv);
    } else if (flag == "--nq") {
      if (!tools::ParseIntFlag(flag, val, 1, 1LL << 24, &iv)) return 1;
      nq = static_cast<size_t>(iv);
    } else if (flag == "--k") {
      if (!tools::ParseIntFlag(flag, val, 1, 1 << 20, &iv)) return 1;
      k = static_cast<size_t>(iv);
    } else if (flag == "--window") {
      if (!tools::ParseIntFlag(flag, val, 1, 1 << 20, &iv)) return 1;
      window = static_cast<uint32_t>(iv);
    } else if (flag == "--threads") {
      if (!tools::ParseIntFlag(flag, val, 1, 1 << 12, &iv)) return 1;
      threads = static_cast<size_t>(iv);
    } else if (flag == "--clients") {
      if (!tools::ParseIntFlag(flag, val, 1, 1 << 12, &iv)) return 1;
      clients = static_cast<size_t>(iv);
    } else if (flag == "--duration") {
      if (!tools::ParseDoubleFlag(flag, val, &duration)) return 1;
    } else if (flag == "--batch") {
      if (!tools::ParseIntFlag(flag, val, 1, 1 << 16, &iv)) return 1;
      batch = static_cast<size_t>(iv);
    } else if (flag == "--lvq") {
      // Validated: garbage used to parse as 0 bits (i.e. silently float32).
      if (!tools::ParseIntFlag(flag, val, 0, 16, &iv)) return 1;
      lvq_bits = static_cast<int>(iv);
    } else if (flag == "--bits2") {
      if (!tools::ParseIntFlag(flag, val, 0, 16, &iv)) return 1;
      bits2 = static_cast<int>(iv);
    } else if (flag == "--shards") {
      if (!tools::ParseIntFlag(flag, val, 1, 1 << 16, &iv)) return 1;
      shards = static_cast<size_t>(iv);
    } else if (flag == "--nprobe-shards") {
      if (!tools::ParseIntFlag(flag, val, 0, 1 << 16, &iv)) return 1;
      nprobe_shards = static_cast<uint32_t>(iv);
    } else if (flag == "--dynamic") {
      if (!tools::ParseIntFlag(flag, val, 0, 1, &iv)) return 1;
      dynamic_mode = iv != 0;
    } else if (flag == "--churn") {
      if (!tools::ParseIntFlag(flag, val, 0, 1 << 24, &iv)) return 1;
      churn_ops = static_cast<size_t>(iv);
    } else if (flag == "--seed") {
      if (!tools::ParseIntFlag(flag, val, 0,
                               std::numeric_limits<long long>::max(), &iv)) {
        return 1;
      }
      seed = static_cast<uint64_t>(iv);
    } else if (flag == "--mode") {
      if (std::strcmp(val, "async") == 0) {
        async_mode = true;
      } else if (std::strcmp(val, "sync") == 0) {
        async_mode = false;
      } else {
        std::fprintf(stderr, "--mode: expected sync or async, got '%s'\n", val);
        return 1;
      }
    } else {
      return Usage(argv[0]);
    }
  }
  if (!args.ok()) return Usage(argv[0]);
  if (churn_ops > 0 && !dynamic_mode) {
    std::fprintf(stderr, "--churn requires --dynamic 1\n");
    return 1;
  }
  if (clients == 0) clients = 2 * threads;
  // Each client owns a disjoint stripe of the query set (so concurrent
  // writes into the recall matrix never overlap); more clients than
  // queries would collapse stripes.
  if (clients > nq) clients = nq;

  std::printf("blink_serve: n=%zu nq=%zu d=96 k=%zu W=%u | engine threads=%zu "
              "clients=%zu mode=%s%s | backend=%s\n",
              n, nq, k, window, threads, clients,
              async_mode ? "async" : "sync",
              async_mode ? "" : (" batch=" + std::to_string(batch)).c_str(),
              simd::BackendName());

  ThreadPool build_pool(threads);
  Dataset data = MakeDeepLike(n, nq, seed);
  const size_t dim = data.base.cols();
  VamanaBuildParams bp;
  bp.graph_max_degree = 32;
  bp.window_size = 64;
  Timer build_timer;
  std::unique_ptr<SearchIndex> index;
  std::unique_ptr<DynamicIndex> dyn_f32;
  std::unique_ptr<DynamicLvqIndex> dyn_lvq;
  if (dynamic_mode) {
    DynamicOptions dopts;
    dopts.graph_max_degree = bp.graph_max_degree;
    dopts.build_window = bp.window_size;
    dopts.metric = data.metric;
    dopts.alpha = data.metric == Metric::kL2 ? 1.2f : 0.95f;
    dopts.initial_capacity = n + 1024;  // headroom so churn never stops the world
    if (lvq_bits > 0) {
      DynamicLvqDataset::Options lo;
      lo.bits1 = lvq_bits;
      lo.bits2 = bits2;
      lo.mean = DynamicLvqDataset::SampleMean(data.base);
      dyn_lvq = std::make_unique<DynamicLvqIndex>(
          dim, dopts, DynamicLvqStorage(dim, data.metric, std::move(lo)));
      for (size_t i = 0; i < n; ++i) dyn_lvq->Insert(data.base.row(i));
      index = std::make_unique<DynamicLvqIndexView>(dyn_lvq.get());
    } else {
      dyn_f32 = std::make_unique<DynamicIndex>(dim, dopts);
      for (size_t i = 0; i < n; ++i) dyn_f32->Insert(data.base.row(i));
      index = std::make_unique<DynamicIndexView>(dyn_f32.get());
    }
  } else if (shards > 1) {
    // The engine serves the sharded index through the same SearchIndex /
    // MakeSearcher seam as every other index — no serving changes needed.
    ShardedBuildParams sp;
    sp.partition.num_shards = shards;
    sp.graph = bp;
    sp.bits1 = lvq_bits > 0 ? lvq_bits : 8;
    index = BuildShardedLvq(data.base, data.metric, sp, &build_pool);
  } else if (lvq_bits > 0) {
    index = BuildOgLvq(data.base, data.metric, lvq_bits, 0, bp, &build_pool);
  } else {
    index = BuildVamanaF32(data.base, data.metric, bp, &build_pool);
  }
  std::printf("built %s in %.1fs (%.1f MiB)\n", index->name().c_str(),
              build_timer.Seconds(), index->memory_bytes() / 1048576.0);
  Matrix<uint32_t> gt =
      ComputeGroundTruth(data.base, data.queries, k, data.metric, &build_pool);

  ServingOptions opts;
  opts.num_threads = threads;
  ServingEngine engine(index.get(), opts);

  RuntimeParams params;
  params.window = window;
  params.nprobe_shards = nprobe_shards;

  // Live writer: insert copies of random base vectors and delete them
  // again, consolidating occasionally, at ~churn_ops/sec. Base content
  // stays intact, so the recall figure below remains meaningful (a
  // transient duplicate can only tie with its original).
  std::atomic<bool> stop_churn{false};
  std::thread churner;
  if (churn_ops > 0) {
    churner = std::thread([&] {
      Rng rng(seed + 1);
      std::vector<uint32_t> extra;
      const auto pause =
          std::chrono::microseconds(1000000 / std::max<size_t>(churn_ops, 1));
      auto do_insert = [&](const float* v) {
        return dyn_lvq ? dyn_lvq->Insert(v) : dyn_f32->Insert(v);
      };
      auto do_delete = [&](uint32_t id) {
        return dyn_lvq ? dyn_lvq->Delete(id) : dyn_f32->Delete(id);
      };
      size_t ops = 0;
      while (!stop_churn.load(std::memory_order_relaxed)) {
        if (extra.size() < 256 && rng.Bounded(2) == 0) {
          extra.push_back(do_insert(data.base.row(rng.Bounded(n))));
        } else if (!extra.empty()) {
          const size_t pick = rng.Bounded(extra.size());
          (void)do_delete(extra[pick]);
          extra[pick] = extra.back();
          extra.pop_back();
        }
        if (++ops % 512 == 0) {
          if (dyn_lvq) {
            dyn_lvq->ConsolidateDeletes();
          } else {
            dyn_f32->ConsolidateDeletes();
          }
        }
        std::this_thread::sleep_for(pause);
      }
    });
  }

  // Closed loop: each client owns a stripe of the query set and hammers it
  // until the deadline, recording per-request latency.
  Matrix<uint32_t> results(nq, k);  // last result per query, for recall
  std::vector<ClientResult> per_client(clients);
  std::vector<std::thread> workers;
  workers.reserve(clients);
  Timer wall;
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      ClientResult& out = per_client[c];
      const size_t lo = nq * c / clients;
      const size_t hi = std::max(lo + 1, nq * (c + 1) / clients);
      size_t qi = lo;
      while (wall.Seconds() < duration) {
        Timer t;
        if (async_mode) {
          auto fut = engine.Submit(data.queries.row(qi), k, params);
          SearchResult res = fut.get();
          std::copy(res.ids.begin(), res.ids.end(), results.row(qi));
          out.queries += 1;
          qi = qi + 1 >= hi ? lo : qi + 1;
        } else {
          const size_t take = std::min(batch, hi - qi);
          MatrixViewF slice(data.queries.row(qi), take, data.queries.cols());
          engine.SearchBatch(slice, k, params, results.row(qi));
          out.queries += take;
          qi = qi + take >= hi ? lo : qi + take;
        }
        out.latencies_ms.push_back(t.Millis());
      }
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed = wall.Seconds();
  if (churner.joinable()) {
    stop_churn.store(true);
    churner.join();
  }

  std::vector<double> lat;
  size_t total_queries = 0;
  for (const ClientResult& r : per_client) {
    lat.insert(lat.end(), r.latencies_ms.begin(), r.latencies_ms.end());
    total_queries += r.queries;
  }
  const ServingCounters c = engine.counters();
  const double qps = static_cast<double>(total_queries) / elapsed;
  std::printf("\n%zu queries in %.2fs  (%zu requests, %llu micro-batches)\n",
              total_queries, elapsed, lat.size(),
              static_cast<unsigned long long>(c.batches));
  std::printf("QPS               %10.0f\n", qps);
  if (!lat.empty()) {
    std::printf("latency p50       %10.3f ms\n", Percentile(lat, 50));
    std::printf("latency p90       %10.3f ms\n", Percentile(lat, 90));
    std::printf("latency p99       %10.3f ms\n", Percentile(lat, 99));
    std::printf("latency max       %10.3f ms\n",
                *std::max_element(lat.begin(), lat.end()));
  }
  std::printf("dists/query       %10.1f\n",
              c.queries > 0 ? static_cast<double>(c.distance_computations) /
                                  static_cast<double>(c.queries)
                            : 0.0);
  std::printf("recall@%-2zu         %10.4f\n", k, MeanRecallAtK(results, gt, k));
  return 0;
}
