// Tests of the Sec. 4 theory: the pruning-rule error term E (Prop. 1,
// Eq. 19), its Gaussian moments (Prop. 2, Eqs. 12-13), and the folded
// normal of |E| (Cor. 1, Eqs. 14-15).
#include "graph/pruning_error.h"

#include <cmath>
#include <gtest/gtest.h>
#include <vector>

#include "data/synthetic.h"
#include "quant/lvq.h"

namespace blink {
namespace {

/// sign(a^T x' - b) evaluated directly from vectors (Eq. 9).
double HyperplaneSide(const float* x, const float* x_star, const float* x_prime,
                      size_t d) {
  double a_xp = 0.0, nx = 0.0, nxs = 0.0, norm2 = 0.0;
  for (size_t j = 0; j < d; ++j) {
    const double diff = static_cast<double>(x[j]) - x_star[j];
    a_xp += diff * x_prime[j];
    norm2 += diff * diff;
    nx += static_cast<double>(x[j]) * x[j];
    nxs += static_cast<double>(x_star[j]) * x_star[j];
  }
  const double norm = std::sqrt(norm2);
  return a_xp / norm - (nx - nxs) / (2.0 * norm);
}

TEST(PruningError, ExactIdentityOfPropositionOne) {
  // The algebraic identity behind Prop. 1:
  //   (a_hat^T Q(x') - b_hat) * ||Q(x) - Q(x*)||
  //     == (a^T x' - b) * ||x - x*|| - E.
  // We verify it numerically with real LVQ reconstructions.
  Dataset data = MakeDeepLike(300, 2, 200);
  LvqDataset::Options o;
  o.bits = 4;
  LvqDataset ds = LvqDataset::Encode(data.base, o);
  const size_t d = 96;
  std::vector<float> qx(d), qxs(d), qxp(d);
  // Work in centered space: both sides shift identically under the mean.
  std::vector<float> cx(d), cxs(d), cxp(d);
  for (size_t trial = 0; trial < 50; ++trial) {
    const size_t ix = trial, ixs = trial + 100, ixp = trial + 200;
    ds.DecodeCentered(ix, qx.data());
    ds.DecodeCentered(ixs, qxs.data());
    ds.DecodeCentered(ixp, qxp.data());
    for (size_t j = 0; j < d; ++j) {
      cx[j] = data.base(ix, j) - ds.mean()[j];
      cxs[j] = data.base(ixs, j) - ds.mean()[j];
      cxp[j] = data.base(ixp, j) - ds.mean()[j];
    }
    const double e =
        PruningErrorE(cx.data(), cxs.data(), cxp.data(), qx.data(), qxs.data(),
                      qxp.data(), d);
    // LHS: quantized-side hyperplane value scaled by ||Q(x) - Q(x*)||.
    double qnorm2 = 0.0;
    for (size_t j = 0; j < d; ++j) {
      const double diff = static_cast<double>(qx[j]) - qxs[j];
      qnorm2 += diff * diff;
    }
    const double lhs =
        HyperplaneSide(qx.data(), qxs.data(), qxp.data(), d) * std::sqrt(qnorm2);
    // RHS: full-precision hyperplane value scaled by ||x - x*||, minus E.
    double norm2 = 0.0;
    for (size_t j = 0; j < d; ++j) {
      const double diff = static_cast<double>(cx[j]) - cxs[j];
      norm2 += diff * diff;
    }
    const double rhs =
        HyperplaneSide(cx.data(), cxs.data(), cxp.data(), d) * std::sqrt(norm2) -
        e;
    EXPECT_NEAR(lhs, rhs, 1e-3 * std::max(1.0, std::fabs(lhs)))
        << "trial " << trial;
  }
}

TEST(PruningError, TheoryMatchesMonteCarloMoments) {
  // Prop. 2 assumes z ~ U[-Delta/2, Delta/2) per component. Simulate that
  // exactly and compare the sampled mean/stddev of E with Eqs. 12-13.
  const size_t d = 96;
  Rng rng(9);
  std::vector<float> x(d), xs(d), xp(d);
  for (size_t j = 0; j < d; ++j) {
    x[j] = rng.Gaussian();
    xs[j] = x[j] + 0.2f * rng.Gaussian();
    xp[j] = x[j] + 0.4f * rng.Gaussian();
  }
  const float dx = 0.05f, dxs = 0.03f, dxp = 0.04f;

  std::vector<float> qx(d), qxs(d), qxp(d);
  double sum = 0.0, sum2 = 0.0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (size_t j = 0; j < d; ++j) {
      qx[j] = x[j] - dx * (rng.UniformFloat() - 0.5f);
      qxs[j] = xs[j] - dxs * (rng.UniformFloat() - 0.5f);
      qxp[j] = xp[j] - dxp * (rng.UniformFloat() - 0.5f);
    }
    const double e = PruningErrorE(x.data(), xs.data(), xp.data(), qx.data(),
                                   qxs.data(), qxp.data(), d);
    sum += e;
    sum2 += e * e;
  }
  const double mc_mean = sum / trials;
  const double mc_std = std::sqrt(sum2 / trials - mc_mean * mc_mean);

  double d_x_xp = 0.0, d_xs_xp = 0.0, d_x_xs = 0.0;
  for (size_t j = 0; j < d; ++j) {
    d_x_xp += std::pow(static_cast<double>(xp[j]) - x[j], 2);
    d_xs_xp += std::pow(static_cast<double>(xp[j]) - xs[j], 2);
    d_x_xs += std::pow(static_cast<double>(x[j]) - xs[j], 2);
  }
  const PruningErrorTheory th = ComputePruningErrorTheory(
      dx, dxs, dxp, std::sqrt(d_x_xp), std::sqrt(d_xs_xp), std::sqrt(d_x_xs), d);

  EXPECT_NEAR(mc_mean, th.mu_e, 5e-2 * std::max(1.0, std::fabs(th.mu_e)) + 5e-4);
  EXPECT_NEAR(mc_std, th.sigma_e, 0.05 * th.sigma_e);
}

TEST(PruningError, FoldedNormalMomentsConsistent) {
  // Cor. 1 internal consistency: when mu_E = 0, mu_|E| = sigma*sqrt(2/pi).
  const PruningErrorTheory t =
      ComputePruningErrorTheory(0.05, 0.05, 0.04, 1.0, 1.2, 0.8, 96);
  EXPECT_NEAR(t.mu_e, 0.0, 1e-12);
  EXPECT_NEAR(t.mu_abs_e, t.sigma_e * std::sqrt(2.0 / M_PI), 1e-9);
  // And sigma_|E|^2 = mu^2 + sigma^2 - mu_|E|^2 stays positive.
  EXPECT_GT(t.sigma_abs_e, 0.0);
  EXPECT_LT(t.sigma_abs_e, t.sigma_e);
}

TEST(PruningError, MoreBitsShrinkTheoreticalError) {
  // Halving Delta (one extra bit) must shrink mu_|E| roughly linearly.
  double prev = 1e30;
  for (int bits = 2; bits <= 10; ++bits) {
    const double delta = 1.0 / ((1 << bits) - 1);
    const PruningErrorTheory t =
        ComputePruningErrorTheory(delta, delta, delta, 1.0, 1.0, 1.0, 96);
    EXPECT_LT(t.mu_abs_e, prev);
    prev = t.mu_abs_e;
  }
}

TEST(PruningError, MarginIsPositiveAndScaleCovariant) {
  const size_t d = 8;
  std::vector<float> x(d, 0.0f), xs(d, 0.0f), xp(d, 0.0f);
  xs[0] = 2.0f;   // x* at distance 2 along axis 0
  xp[0] = 0.4f;   // x' clearly on x's side of the bisector (at 1.0)
  const double m = PruningMargin(x.data(), xs.data(), xp.data(), d);
  EXPECT_GT(m, 0.0);
  // |a^T x' - b| = |0.4 - 1.0| = 0.6; margin = 0.6 * ||x - x*|| = 1.2.
  EXPECT_NEAR(m, 1.2, 1e-5);
}

TEST(PruningError, TripletSamplerProducesOrderedTriplets) {
  Dataset data = MakeDeepLike(500, 2, 201);
  auto triplets = SamplePruningTriplets(data.base, 100, 50, 7);
  ASSERT_EQ(triplets.size(), 100u);
  for (const auto& t : triplets) {
    EXPECT_LT(t.x, 500u);
    EXPECT_LT(t.x_star, 500u);
    EXPECT_LT(t.x_prime, 500u);
    EXPECT_NE(t.x, t.x_star);
    EXPECT_NE(t.x, t.x_prime);
    // x* must be closer to x than x' (the sampling invariant).
    const float d_star =
        simd::L2Sqr(data.base.row(t.x), data.base.row(t.x_star), 96);
    const float d_prime =
        simd::L2Sqr(data.base.row(t.x), data.base.row(t.x_prime), 96);
    EXPECT_LE(d_star, d_prime * (1.0f + 1e-5f));
  }
}

TEST(PruningError, LvqSaferThanGlobalAtFourBits) {
  // The Fig. 5 conclusion in miniature: at B = 4, LVQ's empirical |E| stays
  // well under the pruning margin more often than global quantization's.
  Dataset data = MakeDeepLike(2000, 2, 202);
  auto triplets = SamplePruningTriplets(data.base, 200, 100, 11);

  LvqDataset::Options lo;
  lo.bits = 4;
  LvqDataset lvq = LvqDataset::Encode(data.base, lo);
  GlobalDataset::Options go;
  go.bits = 4;
  GlobalDataset glob = GlobalDataset::Encode(data.base, go);

  const size_t d = 96;
  std::vector<float> cx(d), cxs(d), cxp(d), qx(d), qxs(d), qxp(d);
  auto mean_abs_e = [&](auto& ds) {
    double acc = 0.0;
    for (const auto& t : triplets) {
      for (size_t j = 0; j < d; ++j) {
        cx[j] = data.base(t.x, j) - ds.mean()[j];
        cxs[j] = data.base(t.x_star, j) - ds.mean()[j];
        cxp[j] = data.base(t.x_prime, j) - ds.mean()[j];
      }
      ds.DecodeCentered(t.x, qx.data());
      ds.DecodeCentered(t.x_star, qxs.data());
      ds.DecodeCentered(t.x_prime, qxp.data());
      acc += std::fabs(PruningErrorE(cx.data(), cxs.data(), cxp.data(),
                                     qx.data(), qxs.data(), qxp.data(), d));
    }
    return acc / triplets.size();
  };
  EXPECT_LT(mean_abs_e(lvq), mean_abs_e(glob));
}

}  // namespace
}  // namespace blink
