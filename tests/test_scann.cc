// Unit tests for the ScaNN-like baseline (anisotropic VQ + partitions).
#include "baselines/scann.h"

#include <cmath>
#include <gtest/gtest.h>

#include "data/groundtruth.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

namespace blink {
namespace {

struct ScannFixture {
  Dataset data = MakeDeepLike(4000, 50, 80);
  Matrix<uint32_t> gt =
      ComputeGroundTruth(data.base, data.queries, 10, data.metric);

  double Recall(const ScannIndex& idx, uint32_t nprobe, uint32_t reorder) const {
    RuntimeParams rp;
    rp.nprobe = nprobe;
    rp.reorder_k = reorder;
    Matrix<uint32_t> ids(data.queries.rows(), 10);
    idx.SearchBatch(data.queries, 10, rp, ids.data());
    return MeanRecallAtK(ids, gt, 10);
  }
};

TEST(Scann, DefaultLeavesIsSqrtN) {
  ScannFixture f;
  ScannParams p;
  ScannIndex idx(f.data.base, f.data.metric, p);
  // sqrt(4000) ~ 63; we add 1.
  EXPECT_NEAR(static_cast<double>(idx.n_leaves()), 64.0, 2.0);
}

TEST(Scann, EtaMatchesThresholdFormula) {
  ScannFixture f;
  ScannParams p;
  p.avq_threshold = 0.2f;
  ScannIndex idx(f.data.base, f.data.metric, p);
  // eta = (d-1) T^2 / (1-T^2) = 95 * 0.04 / 0.96.
  EXPECT_NEAR(idx.anisotropic_eta(), 95.0 * 0.04 / 0.96, 1e-3);
}

TEST(Scann, RecallIncreasesWithLeavesSearched) {
  // Many small leaves force a query's true neighbors to straddle
  // partitions, so probing more leaves must help.
  ScannFixture f;
  ScannParams p;
  p.n_leaves = 256;
  ScannIndex idx(f.data.base, f.data.metric, p);
  const double r1 = f.Recall(idx, 1, 50);
  const double rAll = f.Recall(idx, 256, 50);
  EXPECT_GT(rAll, r1);
  EXPECT_LT(r1, 0.99);
}

TEST(Scann, ReorderingIsEssentialAt4Bits) {
  // 4-bit product codes alone are coarse; reordering recovers accuracy —
  // the structure the paper's Sec. 6.6 argument rests on.
  ScannFixture f;
  ScannParams p;
  ScannIndex idx(f.data.base, f.data.metric, p);
  const double no_reorder = f.Recall(idx, 16, 0);
  const double with_reorder = f.Recall(idx, 16, 200);
  EXPECT_GT(with_reorder, no_reorder + 0.05);
  EXPECT_GE(with_reorder, 0.8);
}

TEST(Scann, FullProbeHighReorderNearExact) {
  ScannFixture f;
  ScannParams p;
  ScannIndex idx(f.data.base, f.data.metric, p);
  EXPECT_GE(f.Recall(idx, static_cast<uint32_t>(idx.n_leaves()), 500), 0.97);
}

TEST(Scann, InnerProductMetric) {
  Dataset data = MakeT2iLike(2000, 30, 81);
  Matrix<uint32_t> gt =
      ComputeGroundTruth(data.base, data.queries, 10, data.metric);
  ScannParams p;
  ScannIndex idx(data.base, data.metric, p);
  RuntimeParams rp;
  rp.nprobe = static_cast<uint32_t>(idx.n_leaves());
  rp.reorder_k = 300;
  Matrix<uint32_t> ids(data.queries.rows(), 10);
  idx.SearchBatch(data.queries, 10, rp, ids.data());
  EXPECT_GE(MeanRecallAtK(ids, gt, 10), 0.9);
}

TEST(Scann, MemoryIncludesReorderVectors) {
  ScannFixture f;
  ScannParams p;
  ScannIndex idx(f.data.base, f.data.metric, p);
  EXPECT_GE(idx.memory_bytes(), 4000u * 96u * 4u);  // full vectors dominate
}

}  // namespace
}  // namespace blink
