// Unit tests for Optimized Product Quantization.
#include "baselines/opq.h"

#include <cmath>
#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "simd/distance.h"
#include "util/prng.h"

namespace blink {
namespace {

/// Strongly correlated data where the correlation spans *distant*
/// dimensions (j and j + d/2): plain PQ's contiguous segments cannot see
/// it, so OPQ's rotation has something to exploit.
MatrixF CorrelatedData(size_t n, size_t d, uint64_t seed) {
  MatrixF m(n, d);
  Rng rng(seed);
  const size_t half = d / 2;
  for (size_t i = 0; i < n; ++i) {
    float* row = m.row(i);
    for (size_t j = 0; j < half; ++j) {
      const float latent = rng.Gaussian(0.0f, 2.0f);
      row[j] = latent + 0.1f * rng.Gaussian();
      row[j + half] = -latent + 0.1f * rng.Gaussian();
    }
  }
  return m;
}

double ReconstructionError(const OpqCodec& c, MatrixViewF data, size_t count) {
  std::vector<uint8_t> codes(c.code_bytes());
  std::vector<float> dec(c.dim());
  double err = 0.0;
  for (size_t i = 0; i < count; ++i) {
    c.Encode(data.row(i), codes.data());
    c.Decode(codes.data(), dec.data());
    for (size_t j = 0; j < c.dim(); ++j) {
      err += std::pow(dec[j] - data.row(i)[j], 2);
    }
  }
  return err;
}

double PqReconstructionError(const PqCodec& c, MatrixViewF data, size_t count) {
  std::vector<uint8_t> codes(c.code_bytes());
  std::vector<float> dec(c.dim());
  double err = 0.0;
  for (size_t i = 0; i < count; ++i) {
    c.Encode(data.row(i), codes.data());
    c.Decode(codes.data(), dec.data());
    for (size_t j = 0; j < c.dim(); ++j) {
      err += std::pow(dec[j] - data.row(i)[j], 2);
    }
  }
  return err;
}

TEST(Opq, RotationIsOrthogonal) {
  MatrixF data = CorrelatedData(2000, 16, 50);
  OpqParams p;
  p.pq.num_segments = 4;
  p.opt_iters = 4;
  OpqCodec c = OpqCodec::Train(data, p);
  EXPECT_LT(OrthogonalityDefect(c.rotation()), 1e-2);
}

TEST(Opq, BeatsPlainPqOnCorrelatedData) {
  MatrixF data = CorrelatedData(3000, 16, 51);
  PqParams pq;
  pq.num_segments = 8;
  OpqParams op;
  op.pq = pq;
  op.opt_iters = 16;
  PqCodec plain = PqCodec::Train(data, pq);
  OpqCodec opq = OpqCodec::Train(data, op);
  const double e_pq = PqReconstructionError(plain, data, 500);
  const double e_opq = ReconstructionError(opq, data, 500);
  EXPECT_LT(e_opq, e_pq * 0.92) << "OPQ should exploit cross-dim correlation";
}

TEST(Opq, DecodeRoundTripThroughRotation) {
  MatrixF data = CorrelatedData(1000, 8, 52);
  OpqParams p;
  p.pq.num_segments = 4;
  p.opt_iters = 3;
  OpqCodec c = OpqCodec::Train(data, p);
  // Encoding then decoding must land near the input (within quantizer error,
  // which for this strongly-clustered data is small).
  std::vector<uint8_t> codes(c.code_bytes());
  std::vector<float> dec(8);
  double err = 0.0, norm = 0.0;
  for (size_t i = 0; i < 200; ++i) {
    c.Encode(data.row(i), codes.data());
    c.Decode(codes.data(), dec.data());
    for (size_t j = 0; j < 8; ++j) {
      err += std::pow(dec[j] - data(i, j), 2);
      norm += std::pow(data(i, j), 2);
    }
  }
  EXPECT_LT(err, norm * 0.2);
}

TEST(Opq, AdcConsistentWithDecodedDistance) {
  MatrixF data = CorrelatedData(800, 16, 53);
  OpqParams p;
  p.pq.num_segments = 8;
  p.opt_iters = 3;
  OpqCodec c = OpqCodec::Train(data, p);
  std::vector<float> lut(c.pq().num_segments() * c.pq().ksub());
  std::vector<uint8_t> codes(c.code_bytes());
  std::vector<float> dec(16);
  const float* q = data.row(799);
  c.BuildLut(q, Metric::kL2, lut.data());
  for (size_t i = 0; i < 20; ++i) {
    c.Encode(data.row(i), codes.data());
    c.Decode(codes.data(), dec.data());
    // Rotation is an isometry: ADC in rotated space == L2 in original space.
    const float adc = c.AdcDistance(lut.data(), codes.data());
    const float direct = simd::L2Sqr(q, dec.data(), 16);
    EXPECT_NEAR(adc, direct, 1e-2f * std::max(1.0f, direct));
  }
}

TEST(OpqDataset, ExhaustiveSearchRuns) {
  Dataset data = MakeDeepLike(1000, 20, 54);
  OpqParams p;
  p.pq.num_segments = 24;
  p.opt_iters = 3;
  OpqCodec c = OpqCodec::Train(data.base, p);
  OpqDataset ds(std::move(c), data.base);
  Matrix<uint32_t> res = ds.ExhaustiveSearch(data.queries, 10, data.metric);
  EXPECT_EQ(res.rows(), 20u);
  for (size_t i = 0; i < res.size(); ++i) {
    EXPECT_LT(res.data()[i], 1000u);
  }
}

}  // namespace
}  // namespace blink
