// Unit tests for arenas, aligned allocation, and RSS accounting.
#include "util/memory.h"

#include <cstdint>
#include <cstring>
#include <gtest/gtest.h>

namespace blink {
namespace {

TEST(Arena, AllocatesZeroedMemory) {
  Arena a(1 << 20);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.size(), 1u << 20);
  for (size_t i = 0; i < a.size(); i += 4097) {
    EXPECT_EQ(a.data()[i], 0u) << i;
  }
}

TEST(Arena, MemoryIsWritable) {
  Arena a(4096);
  std::memset(a.data(), 0xAB, a.size());
  EXPECT_EQ(a.data()[4095], 0xAB);
}

TEST(Arena, MoveTransfersOwnership) {
  Arena a(1024);
  a.data()[7] = 42;
  uint8_t* p = a.data();
  Arena b = std::move(a);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b.data()[7], 42);
  Arena c;
  c = std::move(b);
  EXPECT_EQ(c.data()[7], 42);
}

TEST(Arena, ZeroSizeIsEmpty) {
  Arena a(0);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.size(), 0u);
}

TEST(Arena, ReportsABackingTier) {
  Arena a(4 << 20, /*want_huge_pages=*/true);
  const char* name = PageBackingName(a.backing());
  EXPECT_TRUE(std::string(name).find("huge") != std::string::npos ||
              std::string(name).find("standard") != std::string::npos);
}

TEST(Arena, NonHugeRequestIsStandard) {
  Arena a(4096, /*want_huge_pages=*/false);
  EXPECT_EQ(a.backing(), PageBacking::kStandard);
}

TEST(Arena, AlignedToCacheLine) {
  for (size_t sz : {64u, 100u, 4096u, 1u << 20}) {
    Arena a(sz);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(a.data()) % 64, 0u) << sz;
  }
}

TEST(AlignedAlloc, RespectsAlignment) {
  for (size_t align : {64u, 128u, 4096u}) {
    void* p = AlignedAlloc(1000, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u);
    AlignedFree(p);
  }
}

TEST(MakeAligned, TypedAllocation) {
  auto p = MakeAligned<double>(100);
  ASSERT_NE(p.get(), nullptr);
  p[99] = 3.14;
  EXPECT_DOUBLE_EQ(p[99], 3.14);
}

// Regression (ISSUE 4): count * sizeof(T) used to be computed unchecked, so
// a count near SIZE_MAX wrapped to a tiny allocation that type-checked as
// `count` elements. Overflow must now surface as a failed (null) allocation.
TEST(MakeAligned, CountOverflowFailsInsteadOfWrapping) {
  // SIZE_MAX/4 doubles = SIZE_MAX*2 bytes: wraps without the guard.
  auto p = MakeAligned<double>(SIZE_MAX / 4);
  EXPECT_EQ(p.get(), nullptr);
  auto q = MakeAligned<uint32_t>(SIZE_MAX / 2);
  EXPECT_EQ(q.get(), nullptr);
}

TEST(AlignedAlloc, NearMaxSizeFailsInsteadOfWrapping) {
  // Rounding SIZE_MAX - 1 up to the alignment would wrap to 0.
  EXPECT_EQ(AlignedAlloc(SIZE_MAX - 1, 64), nullptr);
}

TEST(Rss, AccountsResidentMemory) {
  EXPECT_GT(CurrentRssBytes(), 0u);
  EXPECT_GT(PeakRssBytes(), 0u);
  EXPECT_GE(PeakRssBytes(), CurrentRssBytes() / 2);  // sanity ordering
}

TEST(Rss, GrowsAfterTouchingLargeAllocation) {
  const size_t before = CurrentRssBytes();
  Arena a(64 << 20);
  std::memset(a.data(), 1, a.size());
  const size_t after = CurrentRssBytes();
  EXPECT_GE(after, before + (48u << 20));
}

}  // namespace
}  // namespace blink
