// Sharded index subsystem tests (ISSUE 3 tentpole): partitioner
// invariants, parallel per-shard build determinism, merged-search quality
// vs the unsharded index, serialization, serving-engine integration, and
// the padding-contract conformance satellite (empty/tiny shards must pad
// with kInvalidId / +inf on every path, including the merge).
#include "shard/sharded_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "serve/engine.h"
#include "shard/serialize.h"
#include "testutil.h"

namespace blink {
namespace {

using testutil::DeepFixture;
using testutil::ExpectPaddedRow;
using testutil::ExpectSameIds;
using testutil::Fixture;
using testutil::SearchIds;

ShardedBuildParams ShardParams(const Fixture& f, size_t S,
                               PartitionMethod method =
                                   PartitionMethod::kBalancedKMeans) {
  ShardedBuildParams sp;
  sp.partition.num_shards = S;
  sp.partition.method = method;
  sp.graph = f.bp;
  sp.bits1 = 8;
  sp.bits2 = 0;
  return sp;
}

// ---------------------------------------------------------------------------
// Partitioner.
// ---------------------------------------------------------------------------
void ExpectIsPartition(const Partition& p, size_t n) {
  ASSERT_EQ(p.global_to_shard.size(), n);
  std::set<uint32_t> seen;
  for (size_t s = 0; s < p.num_shards(); ++s) {
    for (size_t l = 0; l < p.shard_to_global[s].size(); ++l) {
      const uint32_t g = p.shard_to_global[s][l];
      ASSERT_LT(g, n);
      ASSERT_TRUE(seen.insert(g).second) << "id " << g << " in two shards";
      ASSERT_EQ(p.global_to_shard[g], s) << "remap disagrees for id " << g;
    }
  }
  ASSERT_EQ(seen.size(), n) << "every id must land in exactly one shard";
}

TEST(Partitioner, KMeansCoversEveryIdExactlyOnce) {
  Dataset data = MakeDeepLike(2000, 4, 7);
  PartitionerParams pp;
  pp.num_shards = 5;
  Partition p = PartitionDataset(data.base, pp);
  ASSERT_EQ(p.num_shards(), 5u);
  ExpectIsPartition(p, 2000);
  ASSERT_EQ(p.centroids.rows(), 5u);
  ASSERT_EQ(p.centroids.cols(), data.base.cols());
}

TEST(Partitioner, BalanceCapHolds) {
  Dataset data = MakeDeepLike(3000, 4, 8);
  PartitionerParams pp;
  pp.num_shards = 6;
  pp.balance_slack = 0.15;
  Partition p = PartitionDataset(data.base, pp);
  const size_t cap = static_cast<size_t>(
      std::ceil((3000.0 / 6.0) * (1.0 + pp.balance_slack)));
  for (size_t s = 0; s < p.num_shards(); ++s) {
    EXPECT_LE(p.shard_to_global[s].size(), cap) << "shard " << s;
    EXPECT_GT(p.shard_to_global[s].size(), 0u) << "shard " << s;
  }
}

TEST(Partitioner, RoundRobinIsExact) {
  Dataset data = MakeDeepLike(103, 4, 9);
  PartitionerParams pp;
  pp.num_shards = 4;
  pp.method = PartitionMethod::kRoundRobin;
  Partition p = PartitionDataset(data.base, pp);
  ExpectIsPartition(p, 103);
  for (size_t i = 0; i < 103; ++i) {
    EXPECT_EQ(p.global_to_shard[i], i % 4);
  }
}

TEST(Partitioner, DeterministicAcrossRunsAndThreadCounts) {
  Dataset data = MakeDeepLike(1500, 4, 10);
  PartitionerParams pp;
  pp.num_shards = 4;
  ThreadPool pool(3);
  Partition a = PartitionDataset(data.base, pp);
  Partition b = PartitionDataset(data.base, pp, &pool);
  ASSERT_EQ(a.global_to_shard, b.global_to_shard);
}

TEST(Partitioner, FewerPointsThanShardsLeavesEmptyShards) {
  Dataset data = MakeDeepLike(3, 2, 11);
  PartitionerParams pp;
  pp.num_shards = 8;
  Partition p = PartitionDataset(data.base, pp);
  ExpectIsPartition(p, 3);
  size_t empty = 0;
  for (size_t s = 0; s < p.num_shards(); ++s) {
    empty += p.shard_to_global[s].empty() ? 1 : 0;
  }
  EXPECT_EQ(empty, 5u);
}

// ---------------------------------------------------------------------------
// Build + merged search quality.
// ---------------------------------------------------------------------------
TEST(Sharded, S4Nprobe2RecallWithin2PercentOfUnsharded) {
  // The ISSUE 3 acceptance bar: S=4 with nprobe_shards=2 stays within 2%
  // of the unsharded index at the same per-shard window.
  Fixture f = DeepFixture(3000, 100, 42);
  ThreadPool pool(2);
  auto flat = BuildOgLvq(f.data.base, f.data.metric, 8, 0, f.bp, &pool);
  auto sharded = BuildShardedLvq(f.data.base, f.data.metric,
                                 ShardParams(f, 4), &pool);
  RuntimeParams p;
  p.window = 64;
  const double flat_recall = testutil::RecallOf(*flat, f, p);
  p.nprobe_shards = 2;
  const double sharded_recall = testutil::RecallOf(*sharded, f, p);
  EXPECT_GE(sharded_recall, flat_recall - 0.02)
      << "flat=" << flat_recall << " sharded=" << sharded_recall;
}

TEST(Sharded, ProbingMoreShardsDoesNotHurtRecall) {
  Fixture f = DeepFixture(2000, 80, 43);
  auto idx = BuildShardedLvq(f.data.base, f.data.metric, ShardParams(f, 4));
  RuntimeParams p;
  p.window = 48;
  p.nprobe_shards = 1;
  const double r1 = testutil::RecallOf(*idx, f, p);
  p.nprobe_shards = 2;
  const double r2 = testutil::RecallOf(*idx, f, p);
  p.nprobe_shards = 0;  // all
  const double rall = testutil::RecallOf(*idx, f, p);
  EXPECT_LE(r1, r2 + 0.02);
  EXPECT_LE(r2, rall + 0.02);
  EXPECT_GE(rall, 0.9);
}

TEST(Sharded, ParallelBuildMatchesSerialBuild) {
  Fixture f = DeepFixture(1200, 30, 44);
  ThreadPool pool(4);
  ShardedBuilder builder(ShardParams(f, 4));
  auto serial = builder.Build(f.data.base, f.data.metric, nullptr);
  auto parallel = builder.Build(f.data.base, f.data.metric, &pool);
  RuntimeParams p;
  p.window = 40;
  p.nprobe_shards = 2;
  ExpectSameIds(SearchIds(*serial, f.data.queries, f.k, p),
                SearchIds(*parallel, f.data.queries, f.k, p),
                "serial vs parallel build");
}

TEST(Sharded, ThreadedBatchMatchesSerialBatch) {
  Fixture f = DeepFixture(1200, 40, 45);
  auto idx = BuildShardedLvq(f.data.base, f.data.metric, ShardParams(f, 4));
  RuntimeParams p;
  p.window = 40;
  p.nprobe_shards = 2;
  ThreadPool pool(4);
  ExpectSameIds(SearchIds(*idx, f.data.queries, f.k, p),
                SearchIds(*idx, f.data.queries, f.k, p, &pool),
                "serial vs threaded batch");
}

TEST(Sharded, PooledSearcherMatchesBatchPath) {
  Fixture f = DeepFixture(1000, 20, 46);
  auto idx = BuildShardedLvq(f.data.base, f.data.metric, ShardParams(f, 3));
  RuntimeParams p;
  p.window = 40;
  p.nprobe_shards = 2;
  Matrix<uint32_t> batch = SearchIds(*idx, f.data.queries, f.k, p);
  auto searcher = idx->MakeSearcher();
  std::vector<uint32_t> ids(f.k);
  std::vector<float> dists(f.k);
  for (size_t qi = 0; qi < f.data.queries.rows(); ++qi) {
    searcher->Search(f.data.queries.row(qi), f.k, p, ids.data(), dists.data(),
                     nullptr);
    for (size_t j = 0; j < f.k; ++j) {
      ASSERT_EQ(batch(qi, j), ids[j]) << "query " << qi;
    }
  }
}

TEST(Sharded, SearchBatchExReportsDistsAndStats) {
  Fixture f = DeepFixture(900, 25, 47);
  auto idx = BuildShardedLvq(f.data.base, f.data.metric, ShardParams(f, 3));
  RuntimeParams p;
  p.window = 32;
  p.nprobe_shards = 2;
  const size_t nq = f.data.queries.rows();
  Matrix<uint32_t> ids(nq, f.k);
  MatrixF dists(nq, f.k);
  BatchStats stats;
  idx->SearchBatchEx(f.data.queries, f.k, p, ids.data(), dists.data(), &stats);
  EXPECT_GT(stats.distance_computations, 0u);
  EXPECT_GT(stats.hops, 0u);
  for (size_t qi = 0; qi < nq; ++qi) {
    for (size_t j = 0; j + 1 < f.k; ++j) {
      EXPECT_LE(dists(qi, j), dists(qi, j + 1)) << "merge must sort row " << qi;
    }
  }
}

TEST(Sharded, InnerProductMetricWorks) {
  Fixture f(MakeDprLike(1500, 50, 48));
  auto idx = BuildShardedLvq(f.data.base, f.data.metric, ShardParams(f, 3));
  RuntimeParams p;
  p.window = 64;
  p.nprobe_shards = 2;
  // IP partitions prune less cleanly than L2 (high-norm vectors matter to
  // every query), so subset probing gives up a bit more recall.
  EXPECT_GE(testutil::RecallOf(*idx, f, p), 0.75);
  p.nprobe_shards = 0;
  EXPECT_GE(testutil::RecallOf(*idx, f, p), 0.85);
}

TEST(Sharded, RoundRobinPartitionStillSearches) {
  Fixture f = DeepFixture(1000, 30, 49);
  auto idx = BuildShardedLvq(f.data.base, f.data.metric,
                             ShardParams(f, 4, PartitionMethod::kRoundRobin));
  RuntimeParams p;
  p.window = 48;
  p.nprobe_shards = 0;  // round-robin shards carry no geometry: probe all
  EXPECT_GE(testutil::RecallOf(*idx, f, p), 0.9);
}

TEST(Sharded, ServingEngineServesShardedIndexUnchanged) {
  Fixture f = DeepFixture(1200, 40, 50);
  auto idx = BuildShardedLvq(f.data.base, f.data.metric, ShardParams(f, 4));
  ServingOptions opts;
  opts.num_threads = 2;
  ServingEngine engine(idx.get(), opts);
  RuntimeParams p;
  p.window = 48;
  p.nprobe_shards = 2;
  const size_t nq = f.data.queries.rows();
  Matrix<uint32_t> ids(nq, f.k);
  engine.SearchBatch(f.data.queries, f.k, p, ids.data());
  EXPECT_GE(MeanRecallAtK(ids, f.gt, f.k), 0.85);
  SearchResult res = engine.Submit(f.data.queries.row(0), f.k, p).get();
  ASSERT_EQ(res.ids.size(), f.k);
}

// ---------------------------------------------------------------------------
// Serialization.
// ---------------------------------------------------------------------------
class ShardedSerializeTest : public testutil::TempPathTest {};

TEST_F(ShardedSerializeTest, RoundTripServesIdenticalResults) {
  Fixture f = DeepFixture(1500, 30, 51);
  auto built = BuildShardedLvq(f.data.base, f.data.metric, ShardParams(f, 4));
  const std::string dir = DirPath("sharded_rt");
  ASSERT_TRUE(SaveShardedIndex(dir, *built).ok());
  ASSERT_TRUE(IsShardedIndexDir(dir));
  auto loaded = LoadShardedIndex(dir, f.data.metric, f.bp, false);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  RuntimeParams p;
  p.window = 40;
  p.nprobe_shards = 2;
  ExpectSameIds(SearchIds(*built, f.data.queries, f.k, p),
                SearchIds(*loaded.value(), f.data.queries, f.k, p),
                "built vs loaded");
  EXPECT_EQ(loaded.value()->size(), built->size());
  EXPECT_EQ(loaded.value()->num_shards(), built->num_shards());
}

TEST_F(ShardedSerializeTest, RoundTripPreservesEmptyShards) {
  Fixture f = DeepFixture(3, 2, 52, /*k=*/2, /*R=*/4, /*W=*/8);
  ShardedBuildParams sp = ShardParams(f, 6);
  auto built = BuildShardedLvq(f.data.base, f.data.metric, sp);
  const std::string dir = DirPath("sharded_empty");
  ASSERT_TRUE(SaveShardedIndex(dir, *built).ok());
  auto loaded = LoadShardedIndex(dir, f.data.metric, sp.graph, false);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value()->num_shards(), 6u);
  EXPECT_EQ(loaded.value()->size(), 3u);
}

TEST_F(ShardedSerializeTest, CorruptManifestRejected) {
  const std::string dir = DirPath("sharded_bad");
  std::filesystem::create_directories(dir);
  FILE* mf = std::fopen((dir + "/manifest").c_str(), "wb");
  ASSERT_NE(mf, nullptr);
  const uint32_t junk = 0xDEADBEEF;
  std::fwrite(&junk, sizeof(junk), 1, mf);
  std::fclose(mf);
  VamanaBuildParams bp;
  EXPECT_FALSE(LoadShardedIndex(dir, Metric::kL2, bp).ok());
  EXPECT_FALSE(LoadShardedIndex("/nonexistent/dir", Metric::kL2, bp).ok());
}

TEST_F(ShardedSerializeTest, AbsurdHeaderCountsRejectedWithoutAllocating) {
  // Valid magic/version but a bit-flipped n: the loader must bound its
  // allocations by the file size and return a Status, not throw bad_alloc.
  const std::string dir = DirPath("sharded_absurd");
  std::filesystem::create_directories(dir);
  FILE* mf = std::fopen((dir + "/manifest").c_str(), "wb");
  ASSERT_NE(mf, nullptr);
  const uint32_t magic = 0x48534C42u, version = 1, bits1 = 8, bits2 = 0;
  const uint64_t S = 1, n = uint64_t{1} << 60, d = 96;
  std::fwrite(&magic, sizeof(magic), 1, mf);
  std::fwrite(&version, sizeof(version), 1, mf);
  std::fwrite(&S, sizeof(S), 1, mf);
  std::fwrite(&n, sizeof(n), 1, mf);
  std::fwrite(&d, sizeof(d), 1, mf);
  std::fwrite(&bits1, sizeof(bits1), 1, mf);
  std::fwrite(&bits2, sizeof(bits2), 1, mf);
  std::fclose(mf);
  VamanaBuildParams bp;
  EXPECT_FALSE(LoadShardedIndex(dir, Metric::kL2, bp).ok());
}

// ---------------------------------------------------------------------------
// Padding-contract conformance (ISSUE 3 satellite): fewer than k reachable
// results — tiny corpus split across shards, some empty — must pad with
// kInvalidId / +inf on every path, including the merge.
// ---------------------------------------------------------------------------
constexpr size_t kTinyCorpus = 5;
constexpr size_t kPadK = 16;

struct TinySharded {
  Dataset data;
  std::unique_ptr<ShardedIndex> index;

  explicit TinySharded(size_t num_shards)
      : data(MakeDeepLike(kTinyCorpus, 4, /*seed=*/99)) {
    ShardedBuildParams sp;
    sp.partition.num_shards = num_shards;
    sp.partition.method = PartitionMethod::kRoundRobin;
    sp.graph.graph_max_degree = 4;
    sp.graph.window_size = 8;
    index = BuildShardedLvq(data.base, data.metric, sp);
  }
};

TEST(ShardedPadding, SearchBatchPadsToK) {
  TinySharded t(3);
  RuntimeParams p;
  const size_t nq = t.data.queries.rows();
  Matrix<uint32_t> ids(nq, kPadK);
  t.index->SearchBatch(t.data.queries, kPadK, p, ids.data());
  for (size_t qi = 0; qi < nq; ++qi) {
    ExpectPaddedRow(ids.row(qi), nullptr, kPadK, kTinyCorpus);
  }
}

TEST(ShardedPadding, SearchBatchExPadsIdsAndDists) {
  TinySharded t(3);
  RuntimeParams p;
  const size_t nq = t.data.queries.rows();
  Matrix<uint32_t> ids(nq, kPadK);
  MatrixF dists(nq, kPadK);
  ThreadPool pool(2);
  t.index->SearchBatchEx(t.data.queries, kPadK, p, ids.data(), dists.data(),
                         nullptr, &pool);
  for (size_t qi = 0; qi < nq; ++qi) {
    ExpectPaddedRow(ids.row(qi), dists.row(qi), kPadK, kTinyCorpus);
  }
}

TEST(ShardedPadding, EmptyShardsAreSkippedAndStillPad) {
  // More shards than points: some shards are empty and must simply be
  // skipped by the probe without disturbing the padding.
  TinySharded t(8);
  RuntimeParams p;
  p.nprobe_shards = 6;  // probes clamp to the live shard count
  Matrix<uint32_t> ids(t.data.queries.rows(), kPadK);
  MatrixF dists(t.data.queries.rows(), kPadK);
  t.index->SearchBatchEx(t.data.queries, kPadK, p, ids.data(), dists.data(),
                         nullptr);
  for (size_t qi = 0; qi < t.data.queries.rows(); ++qi) {
    ExpectPaddedRow(ids.row(qi), dists.row(qi), kPadK, kTinyCorpus);
  }
}

TEST(ShardedPadding, NprobeSubsetPadsWithPartialReachableSet) {
  // Probing 1 of 3 round-robin shards reaches only that shard's ~2 points;
  // the merge must pad the rest of the row.
  TinySharded t(3);
  RuntimeParams p;
  p.nprobe_shards = 1;
  auto searcher = t.index->MakeSearcher();
  std::vector<uint32_t> ids(kPadK);
  std::vector<float> dists(kPadK);
  searcher->Search(t.data.queries.row(0), kPadK, p, ids.data(), dists.data(),
                   nullptr);
  size_t valid = 0;
  for (size_t j = 0; j < kPadK; ++j) {
    if (ids[j] != kInvalidId) {
      EXPECT_EQ(valid, j) << "padding must be a suffix";
      ++valid;
      EXPECT_TRUE(std::isfinite(dists[j]));
    } else {
      EXPECT_TRUE(std::isinf(dists[j]));
    }
  }
  EXPECT_GT(valid, 0u);
  EXPECT_LT(valid, kTinyCorpus) << "one shard cannot reach the whole corpus";
}

TEST(ShardedPadding, ServingEnginePadsSyncAndAsync) {
  TinySharded t(3);
  RuntimeParams p;
  ServingOptions opts;
  opts.num_threads = 2;
  ServingEngine engine(t.index.get(), opts);
  const size_t nq = t.data.queries.rows();
  Matrix<uint32_t> ids(nq, kPadK);
  MatrixF dists(nq, kPadK);
  engine.SearchBatch(t.data.queries, kPadK, p, ids.data(), dists.data());
  for (size_t qi = 0; qi < nq; ++qi) {
    ExpectPaddedRow(ids.row(qi), dists.row(qi), kPadK, kTinyCorpus);
  }
  SearchResult res = engine.Submit(t.data.queries.row(0), kPadK, p).get();
  ASSERT_EQ(res.ids.size(), kPadK);
  ExpectPaddedRow(res.ids.data(), res.dists.data(), kPadK, kTinyCorpus);
}

TEST(ShardedPadding, GlobalIdsAreWellFormedAcrossTheRemap) {
  // Merge output must be global ids (0..n), not shard-local ones: with
  // round-robin shards local id l of shard s is global l*S + s, so any
  // leaked local id would collide only at id 0 — check the full set.
  Fixture f = DeepFixture(300, 20, 53, /*k=*/10, /*R=*/8, /*W=*/16);
  auto idx = BuildShardedLvq(f.data.base, f.data.metric,
                             ShardParams(f, 3, PartitionMethod::kRoundRobin));
  RuntimeParams p;
  p.window = 64;
  Matrix<uint32_t> ids = SearchIds(*idx, f.data.queries, f.k, p);
  const double recall = MeanRecallAtK(ids, f.gt, f.k);
  EXPECT_GE(recall, 0.9) << "local->global remap must be applied";
}

}  // namespace
}  // namespace blink
