// Unit tests for the QPS/recall sweep harness.
#include "eval/harness.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace blink {
namespace {

using testutil::DeepFixture;
using testutil::Fixture;

/// An index that returns exact answers (brute force), used to validate the
/// harness's recall accounting.
class ExactIndex : public SearchIndex {
 public:
  ExactIndex(MatrixViewF base, Metric metric) : base_(base), metric_(metric) {}
  std::string name() const override { return "exact"; }
  size_t size() const override { return base_.rows; }
  size_t dim() const override { return base_.cols; }
  size_t memory_bytes() const override {
    return base_.rows * base_.cols * sizeof(float);
  }
  void SearchBatch(MatrixViewF queries, size_t k, const RuntimeParams&,
                   uint32_t* ids, ThreadPool* pool) const override {
    Matrix<uint32_t> gt = ComputeGroundTruth(base_, queries, k, metric_, pool);
    std::copy(gt.data(), gt.data() + gt.size(), ids);
  }

 private:
  MatrixViewF base_;
  Metric metric_;
};

TEST(Harness, ExactIndexScoresRecallOne) {
  Fixture f = DeepFixture(500, 20, 95);
  ExactIndex idx(f.data.base, f.data.metric);
  HarnessOptions opts;
  opts.best_of = 1;
  auto pts = RunSweep(idx, f.data.queries, f.gt, WindowSweep({10}), opts);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_DOUBLE_EQ(pts[0].recall, 1.0);
  EXPECT_GT(pts[0].qps, 0.0);
}

TEST(Harness, SweepProducesOnePointPerSetting) {
  Fixture f = DeepFixture(800, 10, 96, /*k=*/10, /*R=*/16, /*W=*/32);
  auto idx = BuildOgLvq(f.data.base, f.data.metric, 8, 0, f.bp);
  HarnessOptions opts;
  opts.best_of = 2;
  auto pts = RunSweep(*idx, f.data.queries, f.gt, WindowSweep({10, 20, 40}), opts);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[0].params.window, 10u);
  EXPECT_EQ(pts[2].params.window, 40u);
  // Bigger window: recall must not drop meaningfully.
  EXPECT_GE(pts[2].recall + 0.02, pts[0].recall);
}

TEST(Harness, SingleQueryModeRuns) {
  Fixture f = DeepFixture(500, 10, 97, /*k=*/10, /*R=*/16, /*W=*/32);
  auto idx = BuildOgLvq(f.data.base, f.data.metric, 8, 0, f.bp);
  HarnessOptions opts;
  opts.best_of = 1;
  opts.single_query = true;
  auto pts = RunSweep(*idx, f.data.queries, f.gt, WindowSweep({20}), opts);
  EXPECT_GT(pts[0].mean_latency_us, 0.0);
  EXPECT_GT(pts[0].recall, 0.5);
}

TEST(Harness, QpsAtRecallPicksFrontier) {
  std::vector<SweepPoint> pts(3);
  pts[0].recall = 0.80;
  pts[0].qps = 1000;
  pts[1].recall = 0.92;
  pts[1].qps = 600;
  pts[2].recall = 0.99;
  pts[2].qps = 200;
  EXPECT_DOUBLE_EQ(QpsAtRecall(pts, 0.9), 600.0);
  EXPECT_DOUBLE_EQ(QpsAtRecall(pts, 0.95), 200.0);
  EXPECT_DOUBLE_EQ(QpsAtRecall(pts, 0.995), 0.0);  // unreachable
}

TEST(Harness, QpsAtRecallIgnoresDominatedPoints) {
  std::vector<SweepPoint> pts(3);
  pts[0].recall = 0.95;
  pts[0].qps = 900;  // dominates the slower lower-recall point below
  pts[1].recall = 0.91;
  pts[1].qps = 500;
  pts[2].recall = 0.99;
  pts[2].qps = 100;
  EXPECT_DOUBLE_EQ(QpsAtRecall(pts, 0.9), 900.0);
}

TEST(Harness, PointAtRecallReturnsBestQps) {
  std::vector<SweepPoint> pts(3);
  pts[0].recall = 0.91;
  pts[0].qps = 500;
  pts[1].recall = 0.93;
  pts[1].qps = 700;
  pts[2].recall = 0.89;
  pts[2].qps = 900;
  const SweepPoint* p = PointAtRecall(pts, 0.9);
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->qps, 700.0);
  EXPECT_EQ(PointAtRecall(pts, 0.999), nullptr);
}

TEST(Harness, SweepGenerators) {
  auto w = WindowSweep({1, 2, 3});
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[1].window, 2u);
  auto p = ProbeSweep({1, 5}, {0, 100});
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p[3].nprobe, 5u);
  EXPECT_EQ(p[3].reorder_k, 100u);
}

}  // namespace
}  // namespace blink
