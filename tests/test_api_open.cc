// Open() robustness (ISSUE 5 satellite): every malformed, truncated,
// missing or legacy artifact must come back as a descriptive Status —
// never a crash — and the checked-in version-1 fixtures (tests/data/,
// written by the pre-metadata serializers) must keep loading with the
// OpenOptions fallbacks.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "api/index.h"
#include "graph/serialize.h"
#include "testutil.h"

namespace blink {
namespace {

using testutil::TempPathTest;

const std::string kDataDir = BLINK_TEST_DATA_DIR;

/// The dataset every fixture in tests/data/ was generated from (see
/// tests/data/README.md): MakeDeepLike(64, 8, seed=7), R=8 / W=16 /
/// alpha=1.2 / L2.
struct V1World {
  Dataset data = MakeDeepLike(64, 8, 7);
  VamanaBuildParams bp;
  V1World() {
    bp.graph_max_degree = 8;
    bp.window_size = 16;
    bp.alpha = 1.2f;
  }
};

std::vector<char> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const char* data, size_t size) {
  std::ofstream out(path, std::ios::binary);
  out.write(data, static_cast<std::streamsize>(size));
}

class OpenRobustness : public TempPathTest {};

// --- missing / unrecognized -------------------------------------------------

TEST_F(OpenRobustness, MissingPathIsDescriptiveNotFound) {
  auto r = Open("/nonexistent/prefix");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find(".graph"), std::string::npos)
      << "message should say what was tried: " << r.status().ToString();
}

TEST_F(OpenRobustness, WrongMagicFileIsRejected) {
  const std::string p = Path("wrong_magic");
  WriteFile(p, "this is not an index artifact at all", 37);
  auto r = Open(p);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("not a recognized index artifact"),
            std::string::npos)
      << r.status().ToString();
}

TEST_F(OpenRobustness, DirectoryWithoutManifestIsRejected) {
  const std::string dir = DirPath("no_manifest");
  std::filesystem::create_directories(dir);
  auto r = Open(dir);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("manifest"), std::string::npos);
}

TEST_F(OpenRobustness, BundleWithWrongVecsMagicIsRejected) {
  const std::string prefix = Path("bad_vecs");
  const std::string graph_src = kDataDir + "/v1_static_lvq.graph";
  const auto graph_bytes = ReadFile(graph_src);
  WriteFile(prefix + ".graph", graph_bytes.data(), graph_bytes.size());
  (void)Path("bad_vecs.graph");
  (void)Path("bad_vecs.vecs");
  WriteFile(prefix + ".vecs", "XXXXGARBAGE", 11);
  auto r = Open(prefix);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("magic"), std::string::npos);
}

TEST_F(OpenRobustness, ForgedHugeVecsHeaderFailsWithoutAllocating) {
  // A 'BLAF' header claiming n = 2^40, d = 2^20 passes the field bounds
  // alone; the loader must reject it against the actual file size instead
  // of attempting a 2^62-byte allocation.
  const std::string prefix = Path("forged");
  (void)Path("forged.graph");
  (void)Path("forged.vecs");
  const auto graph = ReadFile(kDataDir + "/v1_static_lvq.graph");
  WriteFile(prefix + ".graph", graph.data(), graph.size());
  struct __attribute__((packed)) {
    uint32_t magic = 0x46414C42u;  // "BLAF"
    uint32_t version = 1;
    uint64_t n = 1ull << 40;
    uint64_t d = 1ull << 20;
  } hdr;
  WriteFile(prefix + ".vecs", reinterpret_cast<const char*>(&hdr),
            sizeof(hdr));
  auto r = Open(prefix);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("file size"), std::string::npos)
      << r.status().ToString();
}

TEST_F(OpenRobustness, ForgedHugeLvqRowCountFails) {
  // Same attack on the LVQ payload: take the valid v1 vecs file and bump
  // its row count to 2^39 without adding payload.
  const std::string prefix = Path("forged_lvq");
  (void)Path("forged_lvq.graph");
  (void)Path("forged_lvq.vecs");
  const auto graph = ReadFile(kDataDir + "/v1_static_lvq.graph");
  WriteFile(prefix + ".graph", graph.data(), graph.size());
  auto vecs = ReadFile(kDataDir + "/v1_static_lvq.vecs");
  const uint64_t huge = 1ull << 39;
  std::memcpy(vecs.data() + 8, &huge, sizeof(huge));  // n field (magic+version)
  WriteFile(prefix + ".vecs", vecs.data(), vecs.size());
  auto r = Open(prefix);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("file size"), std::string::npos)
      << r.status().ToString();
}

// --- truncation -------------------------------------------------------------

// Every strict prefix of a valid artifact must fail with a Status. Loading
// byte-by-byte would be slow; probing a spread of cut points (including
// mid-header and mid-payload) covers the decode paths.
void ExpectTruncationsFail(const std::string& src, const std::string& dst,
                           const OpenOptions& opts) {
  const auto bytes = ReadFile(src);
  ASSERT_GT(bytes.size(), 16u);
  for (size_t cut : {size_t{0}, size_t{2}, size_t{5}, size_t{11},
                     size_t{17}, bytes.size() / 4, bytes.size() / 2,
                     bytes.size() - 5, bytes.size() - 1}) {
    if (cut >= bytes.size()) continue;
    WriteFile(dst, bytes.data(), cut);
    auto r = Open(dst, opts);
    EXPECT_FALSE(r.ok()) << src << " truncated to " << cut
                         << " bytes unexpectedly loaded";
  }
}

TEST_F(OpenRobustness, TruncatedDynamicFileFails) {
  ExpectTruncationsFail(kDataDir + "/v1_dynamic_lvq.bldy",
                        Path("trunc_dyn"), {});
}

TEST_F(OpenRobustness, TruncatedGraphFails) {
  const std::string prefix = Path("trunc_static");
  (void)Path("trunc_static.graph");
  (void)Path("trunc_static.vecs");
  const auto vecs = ReadFile(kDataDir + "/v1_static_lvq.vecs");
  WriteFile(prefix + ".vecs", vecs.data(), vecs.size());
  ExpectTruncationsFail(kDataDir + "/v1_static_lvq.graph", prefix + ".graph",
                        {});
}

TEST_F(OpenRobustness, TruncatedVecsFails) {
  const std::string prefix = Path("trunc_vecs");
  (void)Path("trunc_vecs.graph");
  (void)Path("trunc_vecs.vecs");
  const auto graph = ReadFile(kDataDir + "/v1_static_lvq.graph");
  WriteFile(prefix + ".graph", graph.data(), graph.size());
  const auto vecs = ReadFile(kDataDir + "/v1_static_lvq.vecs");
  for (size_t cut : {size_t{2}, size_t{9}, vecs.size() / 2,
                     vecs.size() - 1}) {
    WriteFile(prefix + ".vecs", vecs.data(), cut);
    auto r = Open(prefix);
    EXPECT_FALSE(r.ok()) << "vecs truncated to " << cut;
  }
}

TEST_F(OpenRobustness, TruncatedManifestFails) {
  const std::string dir = DirPath("trunc_manifest");
  std::filesystem::create_directories(dir);
  const auto manifest = ReadFile(kDataDir + "/v1_sharded/manifest");
  for (size_t cut : {size_t{2}, size_t{9}, size_t{21}, manifest.size() / 2,
                     manifest.size() - 1}) {
    WriteFile(dir + "/manifest", manifest.data(), cut);
    auto r = Open(dir);
    EXPECT_FALSE(r.ok()) << "manifest truncated to " << cut;
  }
}

TEST_F(OpenRobustness, ShardedWithMissingShardFileFails) {
  const std::string dir = DirPath("missing_shard");
  std::filesystem::create_directories(dir);
  for (const char* name : {"manifest", "shard_0000.graph", "shard_0000.vecs",
                           "shard_0001.graph", "shard_0001.vecs"}) {
    const auto bytes = ReadFile(kDataDir + "/v1_sharded/" + name);
    WriteFile(dir + "/" + name, bytes.data(), bytes.size());
  }
  std::remove((dir + "/shard_0001.graph").c_str());
  auto r = Open(dir);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("shard_0001"), std::string::npos)
      << r.status().ToString();
}

// --- version-1 back-compat fixtures ----------------------------------------

TEST(OpenBackCompat, V1StaticBundleLoadsWithFallbacks) {
  const V1World w;
  OpenOptions opts;
  opts.fallback_metric = w.data.metric;
  opts.fallback_graph = w.bp;
  opts.use_huge_pages = false;
  auto idx = Open(kDataDir + "/v1_static_lvq", opts);
  ASSERT_TRUE(idx.ok()) << idx.status().ToString();
  EXPECT_FALSE(idx.value().self_described());  // v1: config came from opts
  EXPECT_EQ(idx.value().kind(), IndexKind::kStaticLvq);
  EXPECT_EQ(idx.value().size(), 64u);
  EXPECT_EQ(idx.value().dim(), w.data.base.cols());
  EXPECT_EQ(idx.value().spec().bits1, 8);

  // Byte-identical to the legacy per-flavor loader on the same artifact.
  auto legacy = LoadOgLvqIndex(kDataDir + "/v1_static_lvq", w.data.metric,
                               w.bp, false);
  ASSERT_TRUE(legacy.ok());
  RuntimeParams p;
  p.window = 16;
  const auto via_open = testutil::SearchIds(idx.value().AsSearchIndex(),
                                            w.data.queries, 5, p);
  const auto via_legacy =
      testutil::SearchIds(*legacy.value(), w.data.queries, 5, p);
  testutil::ExpectSameIds(via_open, via_legacy, "v1 static");
}

TEST(OpenBackCompat, V1ShardedDirLoadsWithFallbacks) {
  const V1World w;
  OpenOptions opts;
  opts.fallback_metric = w.data.metric;
  opts.fallback_graph = w.bp;
  opts.use_huge_pages = false;
  auto idx = Open(kDataDir + "/v1_sharded", opts);
  ASSERT_TRUE(idx.ok()) << idx.status().ToString();
  EXPECT_FALSE(idx.value().self_described());
  EXPECT_EQ(idx.value().kind(), IndexKind::kSharded);
  EXPECT_EQ(idx.value().size(), 64u);
  EXPECT_EQ(idx.value().spec().partition.num_shards, 2u);
  RuntimeParams p;
  p.window = 16;
  const auto ids = testutil::SearchIds(idx.value().AsSearchIndex(),
                                       w.data.queries, 5, p);
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_LT(ids.data()[i], 64u);
  }
}

TEST(OpenBackCompat, V1DynamicFilesLoadWithFallbacks) {
  const V1World w;
  OpenOptions opts;
  opts.fallback_metric = w.data.metric;
  opts.fallback_graph = w.bp;
  for (const auto& [file, kind, live] :
       {std::tuple{"/v1_dynamic_f32.bldy", IndexKind::kDynamicF32,
                   size_t{61}},  // 64 inserted, 3 deleted
        std::tuple{"/v1_dynamic_lvq.bldy", IndexKind::kDynamicLvq,
                   size_t{63}}}) {
    auto idx = Open(kDataDir + file, opts);
    ASSERT_TRUE(idx.ok()) << file << ": " << idx.status().ToString();
    EXPECT_FALSE(idx.value().self_described()) << file;
    EXPECT_EQ(idx.value().kind(), kind) << file;
    EXPECT_EQ(idx.value().size(), live) << file;
    EXPECT_TRUE(idx.value().has(kCapInsert | kCapDelete | kCapConsolidate));
    // Still mutable after the reload.
    auto id = idx.value().Insert(w.data.base.row(0));
    ASSERT_TRUE(id.ok()) << file;
    EXPECT_EQ(idx.value().size(), live + 1) << file;
  }
}

// --- new-format artifacts are self-describing -------------------------------

class OpenSelfDescribing : public TempPathTest {};

TEST_F(OpenSelfDescribing, WrongFallbacksAreIgnoredForV2) {
  const V1World w;
  IndexSpec spec;
  spec.kind = IndexKind::kStaticLvq;
  spec.metric = w.data.metric;
  spec.graph = w.bp;
  auto built = Build(spec, w.data.base);
  ASSERT_TRUE(built.ok());
  const std::string prefix = Path("v2_static");
  (void)Path("v2_static.graph");
  (void)Path("v2_static.vecs");
  ASSERT_TRUE(built.value().Save(prefix).ok());

  OpenOptions wrong;
  wrong.fallback_metric = Metric::kInnerProduct;  // must be overridden
  wrong.fallback_graph.window_size = 999;
  wrong.use_huge_pages = false;
  auto back = Open(prefix, wrong);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().self_described());
  EXPECT_EQ(back.value().metric(), Metric::kL2);
  EXPECT_EQ(back.value().spec().graph.window_size, w.bp.window_size);
}

}  // namespace
}  // namespace blink
