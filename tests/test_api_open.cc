// Open() robustness (ISSUE 5 satellite): every malformed, truncated,
// missing or legacy artifact must come back as a descriptive Status —
// never a crash — and the checked-in version-1 fixtures (tests/data/,
// written by the pre-metadata serializers) must keep loading with the
// OpenOptions fallbacks.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "api/index.h"
#include "graph/serialize.h"
#include "testutil.h"

namespace blink {
namespace {

using testutil::TempPathTest;

const std::string kDataDir = BLINK_TEST_DATA_DIR;

/// The dataset every fixture in tests/data/ was generated from (see
/// tests/data/README.md): MakeDeepLike(64, 8, seed=7), R=8 / W=16 /
/// alpha=1.2 / L2.
struct V1World {
  Dataset data = MakeDeepLike(64, 8, 7);
  VamanaBuildParams bp;
  V1World() {
    bp.graph_max_degree = 8;
    bp.window_size = 16;
    bp.alpha = 1.2f;
  }
};

std::vector<char> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const char* data, size_t size) {
  std::ofstream out(path, std::ios::binary);
  out.write(data, static_cast<std::streamsize>(size));
}

class OpenRobustness : public TempPathTest {};

// --- missing / unrecognized -------------------------------------------------

TEST_F(OpenRobustness, MissingPathIsDescriptiveNotFound) {
  auto r = Open("/nonexistent/prefix");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find(".graph"), std::string::npos)
      << "message should say what was tried: " << r.status().ToString();
}

TEST_F(OpenRobustness, WrongMagicFileIsRejected) {
  const std::string p = Path("wrong_magic");
  WriteFile(p, "this is not an index artifact at all", 37);
  auto r = Open(p);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("not a recognized index artifact"),
            std::string::npos)
      << r.status().ToString();
}

TEST_F(OpenRobustness, DirectoryWithoutManifestIsRejected) {
  const std::string dir = DirPath("no_manifest");
  std::filesystem::create_directories(dir);
  auto r = Open(dir);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("manifest"), std::string::npos);
}

TEST_F(OpenRobustness, BundleWithWrongVecsMagicIsRejected) {
  const std::string prefix = Path("bad_vecs");
  const std::string graph_src = kDataDir + "/v1_static_lvq.graph";
  const auto graph_bytes = ReadFile(graph_src);
  WriteFile(prefix + ".graph", graph_bytes.data(), graph_bytes.size());
  (void)Path("bad_vecs.graph");
  (void)Path("bad_vecs.vecs");
  WriteFile(prefix + ".vecs", "XXXXGARBAGE", 11);
  auto r = Open(prefix);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("magic"), std::string::npos);
}

TEST_F(OpenRobustness, ForgedHugeVecsHeaderFailsWithoutAllocating) {
  // A 'BLAF' header claiming n = 2^40, d = 2^20 passes the field bounds
  // alone; the loader must reject it against the actual file size instead
  // of attempting a 2^62-byte allocation.
  const std::string prefix = Path("forged");
  (void)Path("forged.graph");
  (void)Path("forged.vecs");
  const auto graph = ReadFile(kDataDir + "/v1_static_lvq.graph");
  WriteFile(prefix + ".graph", graph.data(), graph.size());
  struct __attribute__((packed)) {
    uint32_t magic = 0x46414C42u;  // "BLAF"
    uint32_t version = 1;
    uint64_t n = 1ull << 40;
    uint64_t d = 1ull << 20;
  } hdr;
  WriteFile(prefix + ".vecs", reinterpret_cast<const char*>(&hdr),
            sizeof(hdr));
  auto r = Open(prefix);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("file size"), std::string::npos)
      << r.status().ToString();
}

TEST_F(OpenRobustness, ForgedHugeLvqRowCountFails) {
  // Same attack on the LVQ payload: take the valid v1 vecs file and bump
  // its row count to 2^39 without adding payload.
  const std::string prefix = Path("forged_lvq");
  (void)Path("forged_lvq.graph");
  (void)Path("forged_lvq.vecs");
  const auto graph = ReadFile(kDataDir + "/v1_static_lvq.graph");
  WriteFile(prefix + ".graph", graph.data(), graph.size());
  auto vecs = ReadFile(kDataDir + "/v1_static_lvq.vecs");
  const uint64_t huge = 1ull << 39;
  std::memcpy(vecs.data() + 8, &huge, sizeof(huge));  // n field (magic+version)
  WriteFile(prefix + ".vecs", vecs.data(), vecs.size());
  auto r = Open(prefix);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("file size"), std::string::npos)
      << r.status().ToString();
}

// --- truncation -------------------------------------------------------------

// Every strict prefix of a valid artifact must fail with a Status. Loading
// byte-by-byte would be slow; probing a spread of cut points (including
// mid-header and mid-payload) covers the decode paths.
void ExpectTruncationsFail(const std::string& src, const std::string& dst,
                           const OpenOptions& opts) {
  const auto bytes = ReadFile(src);
  ASSERT_GT(bytes.size(), 16u);
  for (size_t cut : {size_t{0}, size_t{2}, size_t{5}, size_t{11},
                     size_t{17}, bytes.size() / 4, bytes.size() / 2,
                     bytes.size() - 5, bytes.size() - 1}) {
    if (cut >= bytes.size()) continue;
    WriteFile(dst, bytes.data(), cut);
    auto r = Open(dst, opts);
    EXPECT_FALSE(r.ok()) << src << " truncated to " << cut
                         << " bytes unexpectedly loaded";
  }
}

TEST_F(OpenRobustness, TruncatedDynamicFileFails) {
  ExpectTruncationsFail(kDataDir + "/v1_dynamic_lvq.bldy",
                        Path("trunc_dyn"), {});
}

TEST_F(OpenRobustness, TruncatedGraphFails) {
  const std::string prefix = Path("trunc_static");
  (void)Path("trunc_static.graph");
  (void)Path("trunc_static.vecs");
  const auto vecs = ReadFile(kDataDir + "/v1_static_lvq.vecs");
  WriteFile(prefix + ".vecs", vecs.data(), vecs.size());
  ExpectTruncationsFail(kDataDir + "/v1_static_lvq.graph", prefix + ".graph",
                        {});
}

TEST_F(OpenRobustness, TruncatedVecsFails) {
  const std::string prefix = Path("trunc_vecs");
  (void)Path("trunc_vecs.graph");
  (void)Path("trunc_vecs.vecs");
  const auto graph = ReadFile(kDataDir + "/v1_static_lvq.graph");
  WriteFile(prefix + ".graph", graph.data(), graph.size());
  const auto vecs = ReadFile(kDataDir + "/v1_static_lvq.vecs");
  for (size_t cut : {size_t{2}, size_t{9}, vecs.size() / 2,
                     vecs.size() - 1}) {
    WriteFile(prefix + ".vecs", vecs.data(), cut);
    auto r = Open(prefix);
    EXPECT_FALSE(r.ok()) << "vecs truncated to " << cut;
  }
}

TEST_F(OpenRobustness, TruncatedManifestFails) {
  const std::string dir = DirPath("trunc_manifest");
  std::filesystem::create_directories(dir);
  const auto manifest = ReadFile(kDataDir + "/v1_sharded/manifest");
  for (size_t cut : {size_t{2}, size_t{9}, size_t{21}, manifest.size() / 2,
                     manifest.size() - 1}) {
    WriteFile(dir + "/manifest", manifest.data(), cut);
    auto r = Open(dir);
    EXPECT_FALSE(r.ok()) << "manifest truncated to " << cut;
  }
}

TEST_F(OpenRobustness, ShardedWithMissingShardFileFails) {
  const std::string dir = DirPath("missing_shard");
  std::filesystem::create_directories(dir);
  for (const char* name : {"manifest", "shard_0000.graph", "shard_0000.vecs",
                           "shard_0001.graph", "shard_0001.vecs"}) {
    const auto bytes = ReadFile(kDataDir + "/v1_sharded/" + name);
    WriteFile(dir + "/" + name, bytes.data(), bytes.size());
  }
  std::remove((dir + "/shard_0001.graph").c_str());
  auto r = Open(dir);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("shard_0001"), std::string::npos)
      << r.status().ToString();
}

// --- version-1 back-compat fixtures ----------------------------------------

TEST(OpenBackCompat, V1StaticBundleLoadsWithFallbacks) {
  const V1World w;
  OpenOptions opts;
  opts.fallback_metric = w.data.metric;
  opts.fallback_graph = w.bp;
  opts.use_huge_pages = false;
  auto idx = Open(kDataDir + "/v1_static_lvq", opts);
  ASSERT_TRUE(idx.ok()) << idx.status().ToString();
  EXPECT_FALSE(idx.value().self_described());  // v1: config came from opts
  EXPECT_EQ(idx.value().kind(), IndexKind::kStaticLvq);
  EXPECT_EQ(idx.value().size(), 64u);
  EXPECT_EQ(idx.value().dim(), w.data.base.cols());
  EXPECT_EQ(idx.value().spec().bits1, 8);

  // Byte-identical to the legacy per-flavor loader on the same artifact.
  auto legacy = LoadOgLvqIndex(kDataDir + "/v1_static_lvq", w.data.metric,
                               w.bp, false);
  ASSERT_TRUE(legacy.ok());
  RuntimeParams p;
  p.window = 16;
  const auto via_open = testutil::SearchIds(idx.value().AsSearchIndex(),
                                            w.data.queries, 5, p);
  const auto via_legacy =
      testutil::SearchIds(*legacy.value(), w.data.queries, 5, p);
  testutil::ExpectSameIds(via_open, via_legacy, "v1 static");
}

TEST(OpenBackCompat, V1ShardedDirLoadsWithFallbacks) {
  const V1World w;
  OpenOptions opts;
  opts.fallback_metric = w.data.metric;
  opts.fallback_graph = w.bp;
  opts.use_huge_pages = false;
  auto idx = Open(kDataDir + "/v1_sharded", opts);
  ASSERT_TRUE(idx.ok()) << idx.status().ToString();
  EXPECT_FALSE(idx.value().self_described());
  EXPECT_EQ(idx.value().kind(), IndexKind::kSharded);
  EXPECT_EQ(idx.value().size(), 64u);
  EXPECT_EQ(idx.value().spec().partition.num_shards, 2u);
  RuntimeParams p;
  p.window = 16;
  const auto ids = testutil::SearchIds(idx.value().AsSearchIndex(),
                                       w.data.queries, 5, p);
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_LT(ids.data()[i], 64u);
  }
}

TEST(OpenBackCompat, V1DynamicFilesLoadWithFallbacks) {
  const V1World w;
  OpenOptions opts;
  opts.fallback_metric = w.data.metric;
  opts.fallback_graph = w.bp;
  for (const auto& [file, kind, live] :
       {std::tuple{"/v1_dynamic_f32.bldy", IndexKind::kDynamicF32,
                   size_t{61}},  // 64 inserted, 3 deleted
        std::tuple{"/v1_dynamic_lvq.bldy", IndexKind::kDynamicLvq,
                   size_t{63}}}) {
    auto idx = Open(kDataDir + file, opts);
    ASSERT_TRUE(idx.ok()) << file << ": " << idx.status().ToString();
    EXPECT_FALSE(idx.value().self_described()) << file;
    EXPECT_EQ(idx.value().kind(), kind) << file;
    EXPECT_EQ(idx.value().size(), live) << file;
    EXPECT_TRUE(idx.value().has(kCapInsert | kCapDelete | kCapConsolidate));
    // Still mutable after the reload.
    auto id = idx.value().Insert(w.data.base.row(0));
    ASSERT_TRUE(id.ok()) << file;
    EXPECT_EQ(idx.value().size(), live + 1) << file;
  }
}

// --- new-format artifacts are self-describing -------------------------------

class OpenSelfDescribing : public TempPathTest {};

TEST_F(OpenSelfDescribing, WrongFallbacksAreIgnoredForV2) {
  const V1World w;
  IndexSpec spec;
  spec.kind = IndexKind::kStaticLvq;
  spec.metric = w.data.metric;
  spec.graph = w.bp;
  auto built = Build(spec, w.data.base);
  ASSERT_TRUE(built.ok());
  const std::string prefix = Path("v2_static");
  (void)Path("v2_static.graph");
  (void)Path("v2_static.vecs");
  ASSERT_TRUE(built.value().Save(prefix).ok());

  OpenOptions wrong;
  wrong.fallback_metric = Metric::kInnerProduct;  // must be overridden
  wrong.fallback_graph.window_size = 999;
  wrong.use_huge_pages = false;
  auto back = Open(prefix, wrong);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().self_described());
  EXPECT_EQ(back.value().metric(), Metric::kL2);
  EXPECT_EQ(back.value().spec().graph.window_size, w.bp.window_size);
}

// --- map mode (out-of-core serving, DESIGN.md D12) --------------------------

class OpenMapMode : public TempPathTest {
 protected:
  /// Registers both bundle files and returns the prefix.
  std::string BundlePrefix(const std::string& name) {
    const std::string graph = Path(name + ".graph");
    Path(name + ".vecs");
    return graph.substr(0, graph.size() - sizeof(".graph") + 1);
  }
};

// The core map-mode contract: for every static flavor, a mapped reopen
// serves byte-identical results to a heap-loaded reopen of the same
// artifact, and the spec records the mode actually in effect.
TEST_F(OpenMapMode, MappedSearchMatchesLoadedForEveryStaticFlavor) {
  const V1World w;
  struct Flavor {
    IndexKind kind;
    int bits1, bits2;
    const char* name;
  };
  for (const Flavor& fl :
       {Flavor{IndexKind::kStaticF32, 8, 0, "f32"},
        Flavor{IndexKind::kStaticF16, 8, 0, "f16"},
        Flavor{IndexKind::kStaticLvq, 8, 0, "lvq8"},
        Flavor{IndexKind::kStaticLvq, 4, 8, "lvq4x8"}}) {
    IndexSpec spec;
    spec.kind = fl.kind;
    spec.metric = w.data.metric;
    spec.bits1 = fl.bits1;
    spec.bits2 = fl.bits2;
    spec.graph = w.bp;
    auto built = Build(spec, w.data.base);
    ASSERT_TRUE(built.ok()) << fl.name << ": " << built.status().ToString();
    const std::string prefix = BundlePrefix(std::string("map_") + fl.name);
    ASSERT_TRUE(built.value().Save(prefix).ok()) << fl.name;

    OpenOptions heap;
    heap.use_huge_pages = false;
    auto loaded = Open(prefix, heap);
    ASSERT_TRUE(loaded.ok()) << fl.name << ": " << loaded.status().ToString();
    EXPECT_EQ(loaded.value().spec().load_mode, LoadMode::kLoad) << fl.name;

    OpenOptions map = heap;
    map.load_mode = LoadMode::kMap;
    auto mapped = Open(prefix, map);
    ASSERT_TRUE(mapped.ok()) << fl.name << ": " << mapped.status().ToString();
    EXPECT_EQ(mapped.value().spec().load_mode, LoadMode::kMap)
        << fl.name << ": a fresh Save() must be v3 and actually map";
    EXPECT_TRUE(mapped.value().self_described()) << fl.name;
    EXPECT_EQ(mapped.value().size(), w.data.base.rows()) << fl.name;

    RuntimeParams p;
    p.window = 16;
    testutil::ExpectSameIds(
        testutil::SearchIds(loaded.value().AsSearchIndex(), w.data.queries, 5,
                            p),
        testutil::SearchIds(mapped.value().AsSearchIndex(), w.data.queries, 5,
                            p),
        std::string("map vs load: ") + fl.name);
  }
}

// Every strict prefix of a v3 bundle must fail cleanly under a map-mode
// open too — the mapped parsers bounds-check instead of faulting.
TEST_F(OpenMapMode, TruncationSweepRejectsInMapMode) {
  const V1World w;
  IndexSpec spec;
  spec.kind = IndexKind::kStaticLvq;
  spec.metric = w.data.metric;
  spec.graph = w.bp;
  auto built = Build(spec, w.data.base);
  ASSERT_TRUE(built.ok());
  const std::string src = BundlePrefix("trunc_src");
  ASSERT_TRUE(built.value().Save(src).ok());

  const std::string dst = BundlePrefix("trunc_map");
  OpenOptions map;
  map.use_huge_pages = false;
  map.load_mode = LoadMode::kMap;

  const auto vecs = ReadFile(src + ".vecs");
  WriteFile(dst + ".vecs", vecs.data(), vecs.size());
  const auto graph = ReadFile(src + ".graph");
  for (size_t cut : {size_t{0}, size_t{2}, size_t{11}, size_t{17},
                     graph.size() / 4, graph.size() / 2, graph.size() - 5,
                     graph.size() - 1}) {
    WriteFile(dst + ".graph", graph.data(), cut);
    auto r = Open(dst, map);
    EXPECT_FALSE(r.ok()) << "graph truncated to " << cut
                         << " bytes opened in map mode";
  }
  WriteFile(dst + ".graph", graph.data(), graph.size());
  for (size_t cut : {size_t{2}, size_t{9}, vecs.size() / 2,
                     vecs.size() - 1}) {
    WriteFile(dst + ".vecs", vecs.data(), cut);
    auto r = Open(dst, map);
    EXPECT_FALSE(r.ok()) << "vecs truncated to " << cut
                         << " bytes opened in map mode";
  }
}

// Pre-v3 artifacts cannot be mapped; requesting kMap on one must silently
// fall back to the heap loaders and serve the same results as before.
TEST(OpenMapModeBackCompat, V1BundleFallsBackToHeapLoad) {
  const V1World w;
  OpenOptions opts;
  opts.fallback_metric = w.data.metric;
  opts.fallback_graph = w.bp;
  opts.use_huge_pages = false;
  opts.load_mode = LoadMode::kMap;
  auto idx = Open(kDataDir + "/v1_static_lvq", opts);
  ASSERT_TRUE(idx.ok()) << idx.status().ToString();
  EXPECT_EQ(idx.value().spec().load_mode, LoadMode::kLoad)
      << "a v1 artifact has no aligned sections to map";
  EXPECT_EQ(idx.value().size(), 64u);
}

// Sharded and dynamic flavors are heap-only; the map hint is ignored.
TEST(OpenMapModeBackCompat, NonStaticFlavorsIgnoreMapHint) {
  const V1World w;
  OpenOptions opts;
  opts.fallback_metric = w.data.metric;
  opts.fallback_graph = w.bp;
  opts.use_huge_pages = false;
  opts.load_mode = LoadMode::kMap;
  for (const char* path : {"/v1_sharded", "/v1_dynamic_lvq.bldy"}) {
    auto idx = Open(kDataDir + path, opts);
    ASSERT_TRUE(idx.ok()) << path << ": " << idx.status().ToString();
    EXPECT_EQ(idx.value().spec().load_mode, LoadMode::kLoad) << path;
  }
}

}  // namespace
}  // namespace blink
