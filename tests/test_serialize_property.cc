// Property-style serialization round-trip (ISSUE 3 satellite): a
// randomized sweep over (dim, degree, bits1/bits2, n) asserting that
// save -> load -> search produces byte-identical ids, for both the
// single-graph bundle and the sharded manifest layout.
#include <gtest/gtest.h>

#include <tuple>

#include "graph/serialize.h"
#include "shard/serialize.h"
#include "testutil.h"
#include "util/prng.h"

namespace blink {
namespace {

using testutil::ExpectSameIds;
using testutil::SearchIds;

struct Config {
  size_t n;
  size_t d;
  uint32_t R;
  int bits1;
  int bits2;
  uint64_t seed;
};

/// Draws a randomized-but-deterministic configuration sweep: dimensions,
/// degrees and bit widths are sampled with a fixed-seed PRNG so failures
/// reproduce exactly while still covering odd shapes (non-multiple-of-16
/// dims, 3-bit codes, tiny corpora).
std::vector<Config> SampleConfigs(size_t count, uint64_t seed) {
  const size_t dims[] = {8, 17, 33, 96, 130};
  const uint32_t degrees[] = {4, 8, 16, 24};
  const std::pair<int, int> bits[] = {{8, 0}, {4, 0}, {3, 0}, {4, 8}, {8, 4}};
  Rng rng(seed);
  std::vector<Config> out;
  for (size_t i = 0; i < count; ++i) {
    Config c;
    c.n = 40 + static_cast<size_t>(rng() % 360);
    c.d = dims[rng() % (sizeof(dims) / sizeof(dims[0]))];
    c.R = degrees[rng() % (sizeof(degrees) / sizeof(degrees[0]))];
    const auto& b = bits[rng() % (sizeof(bits) / sizeof(bits[0]))];
    c.bits1 = b.first;
    c.bits2 = b.second;
    c.seed = rng();
    out.push_back(c);
  }
  return out;
}

MatrixF GaussianData(size_t n, size_t d, uint64_t seed) {
  MatrixF data(n, d);
  Rng rng(seed);
  for (size_t i = 0; i < data.size(); ++i) {
    data.data()[i] = rng.Gaussian(0.0f, 1.0f);
  }
  return data;
}

class SerializePropertyTest : public testutil::TempPathTest {};

TEST_F(SerializePropertyTest, SingleBundleRoundTripIsByteIdentical) {
  size_t case_id = 0;
  for (const Config& c : SampleConfigs(10, /*seed=*/0xF00D)) {
    SCOPED_TRACE("n=" + std::to_string(c.n) + " d=" + std::to_string(c.d) +
                 " R=" + std::to_string(c.R) +
                 " bits=" + std::to_string(c.bits1) + "x" +
                 std::to_string(c.bits2));
    MatrixF base = GaussianData(c.n, c.d, c.seed);
    MatrixF queries = GaussianData(8, c.d, c.seed ^ 0xABCD);
    VamanaBuildParams bp;
    bp.graph_max_degree = c.R;
    bp.window_size = 2 * c.R;
    auto built = BuildOgLvq(base, Metric::kL2, c.bits1, c.bits2, bp);
    const std::string prefix =
        Path("prop_single_" + std::to_string(case_id));
    // The bundle is two files; register both for cleanup.
    Path("prop_single_" + std::to_string(case_id) + ".graph");
    Path("prop_single_" + std::to_string(case_id) + ".vecs");
    ASSERT_TRUE(SaveOgLvqIndex(prefix, *built).ok());
    auto loaded = LoadOgLvqIndex(prefix, Metric::kL2, bp, false);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    RuntimeParams p;
    p.window = 2 * c.R;
    const size_t k = std::min<size_t>(10, c.n);
    ExpectSameIds(SearchIds(*built, queries, k, p),
                  SearchIds(*loaded.value(), queries, k, p),
                  "single bundle round trip");
    ++case_id;
  }
}

TEST_F(SerializePropertyTest, ShardedManifestRoundTripIsByteIdentical) {
  size_t case_id = 0;
  for (const Config& c : SampleConfigs(6, /*seed=*/0xBEEF)) {
    const size_t S = 2 + c.seed % 3;  // 2..4 shards
    SCOPED_TRACE("n=" + std::to_string(c.n) + " d=" + std::to_string(c.d) +
                 " R=" + std::to_string(c.R) +
                 " bits=" + std::to_string(c.bits1) + "x" +
                 std::to_string(c.bits2) + " S=" + std::to_string(S));
    MatrixF base = GaussianData(c.n, c.d, c.seed);
    MatrixF queries = GaussianData(8, c.d, c.seed ^ 0xABCD);
    ShardedBuildParams sp;
    sp.partition.num_shards = S;
    sp.graph.graph_max_degree = c.R;
    sp.graph.window_size = 2 * c.R;
    sp.bits1 = c.bits1;
    sp.bits2 = c.bits2;
    auto built = BuildShardedLvq(base, Metric::kL2, sp);
    const std::string dir = DirPath("prop_sharded_" + std::to_string(case_id));
    ASSERT_TRUE(SaveShardedIndex(dir, *built).ok());
    auto loaded = LoadShardedIndex(dir, Metric::kL2, sp.graph, false);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ASSERT_EQ(loaded.value()->num_shards(), S);
    ASSERT_EQ(loaded.value()->bits1(), c.bits1);
    ASSERT_EQ(loaded.value()->bits2(), c.bits2);
    RuntimeParams p;
    p.window = 2 * c.R;
    const size_t k = std::min<size_t>(10, c.n);
    for (uint32_t nprobe : {0u, 1u, 2u}) {
      p.nprobe_shards = nprobe;
      ExpectSameIds(SearchIds(*built, queries, k, p),
                    SearchIds(*loaded.value(), queries, k, p),
                    "sharded round trip nprobe=" + std::to_string(nprobe));
    }
    ++case_id;
  }
}

}  // namespace
}  // namespace blink
