// Unit tests for the dynamic index (insert / delete / consolidate).
#include "graph/dynamic.h"

#include <gtest/gtest.h>
#include <cmath>
#include <set>

#include "data/groundtruth.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "util/prng.h"

namespace blink {
namespace {

DynamicIndex::Options SmallOpts(Metric m = Metric::kL2) {
  DynamicIndex::Options o;
  o.graph_max_degree = 16;
  o.build_window = 48;
  o.metric = m;
  o.alpha = m == Metric::kL2 ? 1.2f : 0.95f;
  return o;
}

/// Recall of the dynamic index against brute force over its live vectors.
double LiveRecall(const DynamicIndex& idx, MatrixViewF queries, size_t k,
                  uint32_t window) {
  // Brute-force ground truth over the live set.
  double total = 0.0;
  SearchResult res;
  for (size_t qi = 0; qi < queries.rows; ++qi) {
    const float* q = queries.row(qi);
    std::vector<std::pair<float, uint32_t>> exact;
    for (uint32_t i = 0; i < idx.size(); ++i) {
      if (idx.IsDeleted(i)) continue;
      const float dist = idx.max_degree() == 0
                             ? 0.0f
                             : simd::L2Sqr(q, idx.vector(i), idx.dim());
      exact.push_back({dist, i});
    }
    std::sort(exact.begin(), exact.end());
    const size_t kk = std::min(k, exact.size());
    std::set<uint32_t> gt;
    for (size_t j = 0; j < kk; ++j) gt.insert(exact[j].second);
    idx.Search(q, k, window, &res);
    size_t hits = 0;
    for (uint32_t id : res.ids) hits += gt.count(id);
    total += kk > 0 ? static_cast<double>(hits) / static_cast<double>(kk) : 1.0;
  }
  return total / static_cast<double>(queries.rows);
}

TEST(Dynamic, EmptyIndexPadsToK) {
  DynamicIndex idx(8, SmallOpts());
  SearchResult res;
  const float q[8] = {0};
  idx.Search(q, 5, 16, &res);
  // Contract: exactly k slots even with nothing live, all padded.
  ASSERT_EQ(res.ids.size(), 5u);
  ASSERT_EQ(res.dists.size(), 5u);
  for (size_t j = 0; j < 5; ++j) {
    EXPECT_EQ(res.ids[j], kInvalidId);
    EXPECT_TRUE(std::isinf(res.dists[j]));
  }
  EXPECT_EQ(idx.live_size(), 0u);
}

TEST(Dynamic, SingleInsertIsFindable) {
  DynamicIndex idx(4, SmallOpts());
  const float v[4] = {1, 2, 3, 4};
  const uint32_t id = idx.Insert(v);
  SearchResult res;
  idx.Search(v, 1, 8, &res);
  ASSERT_EQ(res.ids.size(), 1u);
  EXPECT_EQ(res.ids[0], id);
}

TEST(Dynamic, IncrementalBuildReachesHighRecall) {
  Dataset data = MakeDeepLike(2000, 50, 700);
  DynamicIndex idx(96, SmallOpts());
  for (size_t i = 0; i < 2000; ++i) idx.Insert(data.base.row(i));
  EXPECT_EQ(idx.live_size(), 2000u);
  EXPECT_GE(LiveRecall(idx, data.queries, 10, 64), 0.9);
}

TEST(Dynamic, DeletedVectorsDisappearFromResults) {
  Dataset data = MakeDeepLike(500, 20, 701);
  DynamicIndex idx(96, SmallOpts());
  std::vector<uint32_t> ids;
  for (size_t i = 0; i < 500; ++i) ids.push_back(idx.Insert(data.base.row(i)));
  // Delete the exact nearest neighbor of each query.
  SearchResult res;
  for (size_t qi = 0; qi < 20; ++qi) {
    idx.Search(data.queries.row(qi), 1, 64, &res);
    if (!res.ids.empty() && !idx.IsDeleted(res.ids[0])) {
      ASSERT_TRUE(idx.Delete(res.ids[0]).ok());
    }
  }
  for (size_t qi = 0; qi < 20; ++qi) {
    idx.Search(data.queries.row(qi), 10, 64, &res);
    for (uint32_t id : res.ids) {
      if (id == kInvalidId) continue;  // padding, not a result
      EXPECT_FALSE(idx.IsDeleted(id));
    }
  }
  EXPECT_LT(idx.live_size(), 500u);
}

TEST(Dynamic, DoubleDeleteIsAnError) {
  DynamicIndex idx(4, SmallOpts());
  const float v[4] = {1, 0, 0, 0};
  const uint32_t id = idx.Insert(v);
  EXPECT_TRUE(idx.Delete(id).ok());
  EXPECT_FALSE(idx.Delete(id).ok());
  EXPECT_FALSE(idx.Delete(999).ok());
}

TEST(Dynamic, ConsolidationPreservesRecall) {
  Dataset data = MakeDeepLike(1500, 40, 702);
  DynamicIndex idx(96, SmallOpts());
  for (size_t i = 0; i < 1500; ++i) idx.Insert(data.base.row(i));
  // Delete a third of the points, consolidate, check recall on the rest.
  Rng rng(1);
  size_t deleted = 0;
  while (deleted < 500) {
    const uint32_t id = static_cast<uint32_t>(rng.Bounded(1500));
    if (!idx.IsDeleted(id)) {
      ASSERT_TRUE(idx.Delete(id).ok());
      ++deleted;
    }
  }
  idx.ConsolidateDeletes();
  EXPECT_EQ(idx.live_size(), 1000u);
  EXPECT_GE(LiveRecall(idx, data.queries, 10, 64), 0.85);
}

TEST(Dynamic, SlotsAreRecycledAfterConsolidation) {
  Dataset data = MakeDeepLike(300, 5, 703);
  DynamicIndex idx(96, SmallOpts());
  std::vector<uint32_t> ids;
  for (size_t i = 0; i < 200; ++i) ids.push_back(idx.Insert(data.base.row(i)));
  const size_t before = idx.size();
  ASSERT_TRUE(idx.Delete(ids[7]).ok());
  ASSERT_TRUE(idx.Delete(ids[11]).ok());
  idx.ConsolidateDeletes();
  const uint32_t a = idx.Insert(data.base.row(200));
  const uint32_t b = idx.Insert(data.base.row(201));
  // Recycled ids, no growth.
  EXPECT_TRUE(a == ids[7] || a == ids[11]);
  EXPECT_TRUE(b == ids[7] || b == ids[11]);
  EXPECT_EQ(idx.size(), before);
  EXPECT_EQ(idx.live_size(), 200u);
}

// Regression: a second ConsolidateDeletes used to re-queue already-purged,
// not-yet-recycled slots into the free list, handing the same slot to two
// different Inserts (aliased ids) and underflowing the deleted count.
TEST(Dynamic, RepeatedConsolidationDoesNotDuplicateFreeSlots) {
  Dataset data = MakeDeepLike(10, 1, 707);
  DynamicIndex idx(96, SmallOpts());
  std::vector<uint32_t> ids;
  for (size_t i = 0; i < 5; ++i) ids.push_back(idx.Insert(data.base.row(i)));
  ASSERT_TRUE(idx.Delete(ids[0]).ok());
  ASSERT_TRUE(idx.Delete(ids[1]).ok());
  idx.ConsolidateDeletes();
  // Purged slots no longer navigate; the search slack must reset even
  // though the slots are still unreused.
  EXPECT_EQ(idx.num_tombstones(), 0u);
  EXPECT_EQ(idx.num_deleted(), 2u);
  const uint32_t x = idx.Insert(data.base.row(5));  // recycles one slot
  ASSERT_TRUE(idx.Delete(ids[2]).ok());
  idx.ConsolidateDeletes();  // must not re-queue the still-free slot
  const uint32_t a = idx.Insert(data.base.row(6));
  const uint32_t b = idx.Insert(data.base.row(7));
  const uint32_t c = idx.Insert(data.base.row(8));
  std::set<uint32_t> live_ids = {ids[3], ids[4], x, a, b, c};
  EXPECT_EQ(live_ids.size(), 6u) << "an id was handed out twice";
  EXPECT_EQ(idx.live_size(), 6u);
  EXPECT_EQ(idx.size(), 6u);
  EXPECT_EQ(idx.num_deleted(), 0u);
}

TEST(Dynamic, InterleavedInsertDeleteStress) {
  Dataset data = MakeDeepLike(3000, 20, 704);
  DynamicIndex idx(96, SmallOpts());
  Rng rng(9);
  std::vector<uint32_t> live;
  size_t next = 0;
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 300 && next < 3000; ++i) {
      live.push_back(idx.Insert(data.base.row(next++)));
    }
    for (int i = 0; i < 100 && live.size() > 10; ++i) {
      const size_t pick = rng.Bounded(live.size());
      ASSERT_TRUE(idx.Delete(live[pick]).ok());
      live[pick] = live.back();
      live.pop_back();
    }
    if (round % 2 == 1) idx.ConsolidateDeletes();
  }
  EXPECT_EQ(idx.live_size(), live.size());
  EXPECT_GE(LiveRecall(idx, data.queries, 10, 96), 0.8);
}

TEST(Dynamic, GrowthBeyondInitialCapacity) {
  DynamicIndex::Options o = SmallOpts();
  o.initial_capacity = 16;
  Dataset data = MakeDeepLike(400, 5, 705);
  DynamicIndex idx(96, o);
  for (size_t i = 0; i < 400; ++i) idx.Insert(data.base.row(i));
  EXPECT_GE(idx.capacity(), 400u);
  EXPECT_GE(LiveRecall(idx, data.queries, 10, 64), 0.85);
}

TEST(Dynamic, DeleteAllThenReinsert) {
  Dataset data = MakeDeepLike(100, 3, 706);
  DynamicIndex idx(96, SmallOpts());
  std::vector<uint32_t> ids;
  for (size_t i = 0; i < 50; ++i) ids.push_back(idx.Insert(data.base.row(i)));
  for (uint32_t id : ids) ASSERT_TRUE(idx.Delete(id).ok());
  EXPECT_EQ(idx.live_size(), 0u);
  SearchResult res;
  idx.Search(data.queries.row(0), 5, 32, &res);
  ASSERT_EQ(res.ids.size(), 5u);
  for (uint32_t id : res.ids) EXPECT_EQ(id, kInvalidId);
  idx.ConsolidateDeletes();
  for (size_t i = 50; i < 100; ++i) idx.Insert(data.base.row(i));
  EXPECT_EQ(idx.live_size(), 50u);
  EXPECT_GE(LiveRecall(idx, data.queries, 10, 64), 0.9);
}

}  // namespace
}  // namespace blink
