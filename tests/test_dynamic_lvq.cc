// Tests for the compressed dynamic index (ISSUE 4 tentpole): LVQ storage
// encoded at insert time, two-level re-ranking, slot recycling, padding
// conformance under churn, save→load→search equivalence, and concurrent
// reads during writes (the latter also runs under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "graph/dynamic.h"
#include "graph/serialize.h"
#include "serve/engine.h"
#include "testutil.h"
#include "util/prng.h"

namespace blink {
namespace {

DynamicOptions SmallOpts(Metric m = Metric::kL2) {
  DynamicOptions o;
  o.graph_max_degree = 16;
  o.build_window = 48;
  o.metric = m;
  o.alpha = m == Metric::kL2 ? 1.2f : 0.95f;
  return o;
}

DynamicLvqIndex MakeLvqIndex(const Dataset& data, int bits1, int bits2,
                             const DynamicOptions& opts) {
  DynamicLvqDataset::Options lo;
  lo.bits1 = bits1;
  lo.bits2 = bits2;
  lo.mean = DynamicLvqDataset::SampleMean(data.base);
  const size_t dim = data.base.cols();
  return DynamicLvqIndex(dim, opts,
                         DynamicLvqStorage(dim, opts.metric, std::move(lo)));
}

/// Recall of the index against float brute force over its live vectors.
/// `id_to_row` maps a live id to the base row it was inserted from.
double LiveRecall(const DynamicLvqIndex& idx, const Dataset& data,
                  const std::map<uint32_t, size_t>& id_to_row, size_t k,
                  uint32_t window) {
  const size_t dim = data.base.cols();
  double total = 0.0;
  SearchResult res;
  for (size_t qi = 0; qi < data.queries.rows(); ++qi) {
    const float* q = data.queries.row(qi);
    std::vector<std::pair<float, uint32_t>> exact;
    for (const auto& [id, row] : id_to_row) {
      exact.push_back({simd::L2Sqr(q, data.base.row(row), dim), id});
    }
    std::sort(exact.begin(), exact.end());
    const size_t kk = std::min(k, exact.size());
    std::set<uint32_t> gt;
    for (size_t j = 0; j < kk; ++j) gt.insert(exact[j].second);
    idx.Search(q, k, window, &res);
    size_t hits = 0;
    for (uint32_t id : res.ids) hits += gt.count(id);
    total += kk > 0 ? static_cast<double>(hits) / static_cast<double>(kk) : 1.0;
  }
  return total / static_cast<double>(data.queries.rows());
}

TEST(DynamicLvq, IncrementalBuildReachesHighRecall) {
  Dataset data = MakeDeepLike(2000, 50, 900);
  DynamicLvqIndex idx = MakeLvqIndex(data, /*bits1=*/8, /*bits2=*/0,
                                     SmallOpts());
  std::map<uint32_t, size_t> id_to_row;
  for (size_t i = 0; i < 2000; ++i) {
    id_to_row[idx.Insert(data.base.row(i))] = i;
  }
  EXPECT_EQ(idx.live_size(), 2000u);
  EXPECT_GE(LiveRecall(idx, data, id_to_row, 10, 64), 0.9);
}

TEST(DynamicLvq, TwoLevelRerankRecoversLowBitRecall) {
  Dataset data = MakeDeepLike(1500, 40, 901);
  DynamicLvqIndex lvq4 = MakeLvqIndex(data, 4, 0, SmallOpts());
  DynamicLvqIndex lvq4x8 = MakeLvqIndex(data, 4, 8, SmallOpts());
  std::map<uint32_t, size_t> rows4, rows4x8;
  for (size_t i = 0; i < 1500; ++i) {
    rows4[lvq4.Insert(data.base.row(i))] = i;
    rows4x8[lvq4x8.Insert(data.base.row(i))] = i;
  }
  const double r4 = LiveRecall(lvq4, data, rows4, 10, 64);
  const double r4x8 = LiveRecall(lvq4x8, data, rows4x8, 10, 64);
  // The residual level re-ranks the full window, so it can only help.
  EXPECT_GE(r4x8 + 1e-9, r4);
  EXPECT_GE(r4x8, 0.9);
}

TEST(DynamicLvq, FootprintBelowFloat32) {
  // dim 128 (sift-like): LVQ-8 stride = pad32(4 + 128) = 160 bytes vs 512
  // for float32 — the streaming path's version of the paper's Fig. 1 win.
  Dataset data = MakeSiftLike(300, 5, 902);
  DynamicOptions opts = SmallOpts();
  opts.initial_capacity = 300;
  DynamicLvqIndex lvq = MakeLvqIndex(data, 8, 0, opts);
  DynamicIndex f32(128, opts);
  for (size_t i = 0; i < 300; ++i) {
    lvq.Insert(data.base.row(i));
    f32.Insert(data.base.row(i));
  }
  const double ratio = static_cast<double>(lvq.storage().memory_bytes()) /
                       static_cast<double>(f32.storage().memory_bytes());
  EXPECT_LE(ratio, 0.35);
  // Decoded vectors stay close to the originals (8-bit per-vector bounds).
  std::vector<float> decoded(128);
  lvq.DecodeVector(0, decoded.data());
  const float err = simd::L2Sqr(decoded.data(), data.base.row(0), 128);
  const float norm = simd::L2Sqr(data.base.row(0),
                                 std::vector<float>(128, 0.0f).data(), 128);
  EXPECT_LE(err, 1e-3f * std::max(norm, 1.0f));
}

// Randomized insert/delete/consolidate/search churn: every search result
// must honor the padding contract, contain no tombstones, and fill all k
// slots whenever k live vectors exist.
TEST(DynamicLvq, ChurnPaddingConformance) {
  Dataset data = MakeDeepLike(2500, 10, 903);
  const size_t dim = data.base.cols();
  DynamicLvqIndex idx = MakeLvqIndex(data, 8, 0, SmallOpts());
  Rng rng(17);
  std::vector<uint32_t> live;
  size_t next = 0;
  const size_t k = 10;
  SearchResult res;
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 250 && next < 2500; ++i) {
      live.push_back(idx.Insert(data.base.row(next++)));
    }
    for (int i = 0; i < 120 && live.size() > 5; ++i) {
      const size_t pick = rng.Bounded(live.size());
      ASSERT_TRUE(idx.Delete(live[pick]).ok());
      live[pick] = live.back();
      live.pop_back();
    }
    if (round % 3 == 2) idx.ConsolidateDeletes();

    for (size_t qi = 0; qi < data.queries.rows(); ++qi) {
      idx.Search(data.queries.row(qi), k, 32, &res);
      ASSERT_EQ(res.ids.size(), k);
      ASSERT_EQ(res.dists.size(), k);
      size_t real = 0;
      for (size_t j = 0; j < k; ++j) {
        if (res.ids[j] != kInvalidId) {
          EXPECT_EQ(real, j) << "padding must be a suffix";
          EXPECT_LT(res.ids[j], idx.size());
          EXPECT_FALSE(idx.IsDeleted(res.ids[j])) << "tombstone in results";
          EXPECT_TRUE(std::isfinite(res.dists[j]));
          ++real;
        } else {
          EXPECT_TRUE(std::isinf(res.dists[j]));
        }
      }
      if (idx.live_size() >= k) {
        EXPECT_EQ(real, k) << "short results despite enough live vectors";
      }
    }
  }
  EXPECT_EQ(idx.live_size(), live.size());
  (void)dim;
}

TEST(DynamicLvq, SlotsRecycleAndReencode) {
  Dataset data = MakeDeepLike(300, 5, 904);
  DynamicLvqIndex idx = MakeLvqIndex(data, 8, 0, SmallOpts());
  std::vector<uint32_t> ids;
  for (size_t i = 0; i < 200; ++i) ids.push_back(idx.Insert(data.base.row(i)));
  const size_t before = idx.size();
  ASSERT_TRUE(idx.Delete(ids[3]).ok());
  ASSERT_TRUE(idx.Delete(ids[9]).ok());
  idx.ConsolidateDeletes();
  const uint32_t a = idx.Insert(data.base.row(200));
  const uint32_t b = idx.Insert(data.base.row(201));
  EXPECT_TRUE(a == ids[3] || a == ids[9]);
  EXPECT_TRUE(b == ids[3] || b == ids[9]);
  EXPECT_EQ(idx.size(), before);
  // The recycled slot must hold the *new* vector's encoding: its own query
  // must find it at rank 1.
  SearchResult res;
  idx.Search(data.base.row(200), 1, 32, &res);
  ASSERT_EQ(res.ids.size(), 1u);
  EXPECT_EQ(res.ids[0], a);
}

class DynamicLvqSerializeTest : public testutil::TempPathTest {};

TEST_F(DynamicLvqSerializeTest, SaveLoadSearchEquivalence) {
  for (const auto& [bits1, bits2] : {std::pair<int, int>{8, 0}, {4, 8}}) {
    Dataset data = MakeDeepLike(1200, 30, 905);
    DynamicOptions opts = SmallOpts();
    DynamicLvqIndex idx = MakeLvqIndex(data, bits1, bits2, opts);
    Rng rng(5);
    std::vector<uint32_t> live;
    for (size_t i = 0; i < 1000; ++i) live.push_back(idx.Insert(data.base.row(i)));
    for (int i = 0; i < 200; ++i) {
      const size_t pick = rng.Bounded(live.size());
      ASSERT_TRUE(idx.Delete(live[pick]).ok());
      live[pick] = live.back();
      live.pop_back();
    }
    idx.ConsolidateDeletes();
    for (size_t i = 1000; i < 1100; ++i) live.push_back(idx.Insert(data.base.row(i)));

    const std::string path =
        Path("dynlvq_" + std::to_string(bits1) + "_" + std::to_string(bits2));
    ASSERT_TRUE(SaveDynamic(path, idx).ok());
    auto loaded = LoadDynamicLvq(path, opts);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ASSERT_EQ(loaded.value()->live_size(), idx.live_size());
    ASSERT_EQ(loaded.value()->size(), idx.size());

    // Byte-identical search results through the serving view.
    DynamicLvqIndexView orig_view(&idx);
    DynamicLvqIndexView load_view(loaded.value().get());
    RuntimeParams p;
    p.window = 48;
    Matrix<uint32_t> a = testutil::SearchIds(orig_view, data.queries, 10, p);
    Matrix<uint32_t> b = testutil::SearchIds(load_view, data.queries, 10, p);
    testutil::ExpectSameIds(a, b, "dynamic LVQ save/load");

    // The loaded index keeps mutating identically: the same insert gets the
    // same (recycled or fresh) id on both sides.
    const uint32_t ia = idx.Insert(data.base.row(1100));
    const uint32_t ib = loaded.value()->Insert(data.base.row(1100));
    EXPECT_EQ(ia, ib);
  }
}

TEST_F(DynamicLvqSerializeTest, LoadRejectsWrongKind) {
  Dataset data = MakeDeepLike(50, 2, 906);
  DynamicOptions opts = SmallOpts();
  DynamicIndex f32(data.base.cols(), opts);
  for (size_t i = 0; i < 50; ++i) f32.Insert(data.base.row(i));
  const std::string path = Path("dynf32");
  ASSERT_TRUE(SaveDynamic(path, f32).ok());
  EXPECT_FALSE(LoadDynamicLvq(path, opts).ok());
  auto back = LoadDynamicF32(path, opts);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value()->live_size(), 50u);
}

// Concurrent readers against a live writer over the compressed index —
// the TSan CI job runs this suite to validate that insert-time encoding
// composes with the epoch/acquire-release protocol.
TEST(DynamicLvq, ConcurrentReadersDuringWrites) {
  const size_t kStable = 400, kChurn = 300;
  Dataset data = MakeDeepLike(kStable + kChurn, 1, 907);
  const size_t dim = data.base.cols();
  DynamicOptions opts = SmallOpts();
  opts.initial_capacity = kStable + kChurn + 64;
  DynamicLvqIndex idx = MakeLvqIndex(data, 8, 0, opts);
  std::vector<uint32_t> stable_ids;
  for (size_t i = 0; i < kStable; ++i) {
    stable_ids.push_back(idx.Insert(data.base.row(i)));
  }

  std::atomic<bool> stop_writer{false};
  std::thread writer([&] {
    Rng rng(23);
    std::vector<uint32_t> churn_ids;
    size_t next = kStable;
    while (!stop_writer.load()) {
      if (churn_ids.size() < kChurn / 2 ||
          (next < kStable + kChurn && rng.Bounded(2) == 0)) {
        const size_t src = next < kStable + kChurn
                               ? next++
                               : kStable + rng.Bounded(kChurn);
        churn_ids.push_back(idx.Insert(data.base.row(src)));
      } else if (!churn_ids.empty()) {
        const size_t pick = rng.Bounded(churn_ids.size());
        EXPECT_TRUE(idx.Delete(churn_ids[pick]).ok());
        churn_ids[pick] = churn_ids.back();
        churn_ids.pop_back();
      }
      if (rng.Bounded(97) == 0) idx.ConsolidateDeletes();
    }
  });

  const size_t kReaders = 4, kRounds = 200, k = 10;
  std::atomic<uint64_t> self_hits{0}, self_queries{0};
  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(300 + r);
      DynamicLvqIndex::SearchScratch scratch;
      SearchResult res;
      for (size_t round = 0; round < kRounds; ++round) {
        const size_t pick = rng.Bounded(kStable);
        idx.Search(data.base.row(pick), k, 48, &res, &scratch);
        ASSERT_EQ(res.ids.size(), k);
        ++self_queries;
        for (uint32_t id : res.ids) {
          ASSERT_TRUE(id == kInvalidId || id < opts.initial_capacity * 2);
          if (id == stable_ids[pick]) {
            ++self_hits;
            break;
          }
        }
      }
    });
  }
  for (auto& t : readers) t.join();
  stop_writer.store(true);
  writer.join();
  const double hit_rate = static_cast<double>(self_hits.load()) /
                          static_cast<double>(self_queries.load());
  // Quantized self-queries: the vector's own encoding is within the LVQ-8
  // error of itself, so it must surface in its own top-10 nearly always.
  EXPECT_GE(hit_rate, 0.9) << self_hits.load() << "/" << self_queries.load();
  (void)dim;
}

}  // namespace
}  // namespace blink
