// Unit tests for Locally-adaptive Vector Quantization (paper Sec. 3,
// Definitions 1-2, Eqs. 2-7).
#include "quant/lvq.h"

#include <cmath>
#include <gtest/gtest.h>
#include <numeric>
#include <vector>

#include "util/prng.h"

namespace blink {
namespace {

MatrixF RandomData(size_t n, size_t d, uint64_t seed, float spread = 1.0f,
                   float mean_offset = 0.0f) {
  MatrixF m(n, d);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      m(i, j) = mean_offset + spread * rng.Gaussian() +
                0.3f * static_cast<float>(j) / static_cast<float>(d);
    }
  }
  return m;
}

TEST(Lvq, MeanIsDatasetMean) {
  MatrixF data = RandomData(500, 16, 10, 1.0f, 3.0f);
  LvqDataset ds = LvqDataset::Encode(data, {});
  for (size_t j = 0; j < 16; ++j) {
    double acc = 0.0;
    for (size_t i = 0; i < 500; ++i) acc += data(i, j);
    EXPECT_NEAR(ds.mean()[j], acc / 500.0, 1e-4);
  }
}

TEST(Lvq, PerVectorBoundsMatchDefinitionOne) {
  // u = max_j (x_j - mu_j), l = min_j (x_j - mu_j), per vector (Eq. 3).
  MatrixF data = RandomData(100, 32, 11);
  LvqDataset ds = LvqDataset::Encode(data, {});
  for (size_t i = 0; i < 20; ++i) {
    float lo = 1e30f, hi = -1e30f;
    for (size_t j = 0; j < 32; ++j) {
      const float v = data(i, j) - ds.mean()[j];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const LvqConstants c = ds.constants(i);
    // Stored bounds are float16-rounded but must cover the true range.
    EXPECT_LE(c.lower, lo + 1e-6f);
    const float upper = c.lower + c.delta * static_cast<float>(MaxCode(ds.bits()));
    EXPECT_GE(upper, hi - 1e-6f);
    // And be tight to within float16 precision (relative 2^-11 + nudge).
    EXPECT_NEAR(c.lower, lo, std::max(2e-3f, std::fabs(lo) * 2e-3f));
  }
}

TEST(Lvq, ExtremeComponentsUseFullCodeRange) {
  // The min and max components of every vector must map to codes 0 and
  // 2^B - 1: LVQ uses the entire range (paper Fig. 2).
  MatrixF data = RandomData(50, 24, 12);
  LvqDataset ds = LvqDataset::Encode(data, {});
  for (size_t i = 0; i < 50; ++i) {
    uint32_t min_code = 255, max_code = 0;
    for (size_t j = 0; j < 24; ++j) {
      min_code = std::min(min_code, ds.code(i, j));
      max_code = std::max(max_code, ds.code(i, j));
    }
    EXPECT_EQ(min_code, 0u) << "vector " << i;
    EXPECT_EQ(max_code, 255u) << "vector " << i;
  }
}

TEST(Lvq, ReconstructionErrorBoundedByHalfDelta) {
  MatrixF data = RandomData(200, 48, 13);
  for (int bits : {4, 8}) {
    LvqDataset::Options o;
    o.bits = bits;
    LvqDataset ds = LvqDataset::Encode(data, o);
    std::vector<float> rec(48);
    for (size_t i = 0; i < 200; ++i) {
      ds.Decode(i, rec.data());
      const float half_delta = ds.constants(i).delta * 0.5f;
      for (size_t j = 0; j < 48; ++j) {
        EXPECT_LE(std::fabs(rec[j] - data(i, j)), half_delta * 1.001f)
            << "bits=" << bits << " i=" << i << " j=" << j;
      }
    }
  }
}

TEST(Lvq, FootprintMatchesEquationFour) {
  // footprint = ceil((d*B + 2*16)/8/p) * p bytes.
  MatrixF data = RandomData(10, 96, 14);
  {
    LvqDataset::Options o;  // B=8, p=32
    LvqDataset ds = LvqDataset::Encode(data, o);
    EXPECT_EQ(ds.vector_footprint(), 128u);  // ceil(100/32)*32
  }
  {
    LvqDataset::Options o;
    o.bits = 4;
    LvqDataset ds = LvqDataset::Encode(data, o);
    EXPECT_EQ(ds.vector_footprint(), 64u);  // 4 + 48 = 52 -> 64
  }
  {
    LvqDataset::Options o;
    o.padding = 0;  // unpadded
    LvqDataset ds = LvqDataset::Encode(data, o);
    EXPECT_EQ(ds.vector_footprint(), 100u);  // 4 + 96
  }
}

TEST(Lvq, CompressionRatioMatchesPaperExamples) {
  // Paper Sec. 3: B=8, p=0 gives CR 3.84 for d=96 and 3.98 for d=768.
  LvqDataset::Options o;
  o.padding = 0;
  {
    MatrixF data = RandomData(4, 96, 15);
    LvqDataset ds = LvqDataset::Encode(data, o);
    EXPECT_NEAR(ds.compression_ratio(), 3.84, 0.01);
  }
  {
    MatrixF data = RandomData(4, 768, 16);
    LvqDataset ds = LvqDataset::Encode(data, o);
    EXPECT_NEAR(ds.compression_ratio(), 3.98, 0.01);
  }
}

TEST(Lvq, ConstantVectorIsDegenerateButSafe) {
  MatrixF data(3, 8);
  for (size_t j = 0; j < 8; ++j) {
    data(0, j) = 2.0f;
    data(1, j) = 2.0f;
    data(2, j) = 2.0f;
  }
  LvqDataset ds = LvqDataset::Encode(data, {});
  std::vector<float> rec(8);
  ds.Decode(0, rec.data());
  for (size_t j = 0; j < 8; ++j) EXPECT_NEAR(rec[j], 2.0f, 1e-3f);
}

TEST(Lvq, EncodeWithMeanUsesProvidedModel) {
  MatrixF data = RandomData(100, 16, 17);
  std::vector<float> zero_mean(16, 0.0f);
  LvqDataset ds = LvqDataset::EncodeWithMean(data, zero_mean, {});
  EXPECT_EQ(ds.mean()[0], 0.0f);
  // Reconstruction still works (bounds absorb the uncentered offset).
  std::vector<float> rec(16);
  ds.Decode(0, rec.data());
  for (size_t j = 0; j < 16; ++j) {
    EXPECT_NEAR(rec[j], data(0, j), ds.constants(0).delta);
  }
}

TEST(Lvq, PrefetchDoesNotCrash) {
  MatrixF data = RandomData(10, 96, 18);
  LvqDataset ds = LvqDataset::Encode(data, {});
  for (size_t i = 0; i < 10; ++i) ds.PrefetchVector(i);
}

// --- Two-level (Definition 2) ---

TEST(Lvq2, ResidualErrorBoundedByLevel2Step) {
  MatrixF data = RandomData(200, 32, 19);
  LvqDataset2::Options o;
  o.bits1 = 4;
  o.bits2 = 8;
  LvqDataset2 ds = LvqDataset2::Encode(data, o);
  std::vector<float> rec(32);
  for (size_t i = 0; i < 200; ++i) {
    ds.Decode(i, rec.data());
    const float delta1 = ds.level1().constants(i).delta;
    const float delta2 = delta1 / static_cast<float>(MaxCode(8));
    for (size_t j = 0; j < 32; ++j) {
      EXPECT_LE(std::fabs(rec[j] - data(i, j)), delta2 * 0.5f * 1.01f)
          << i << "," << j;
    }
  }
}

TEST(Lvq2, TwoLevelStrictlyImprovesOneLevel) {
  MatrixF data = RandomData(300, 64, 20);
  LvqDataset2::Options o;
  o.bits1 = 4;
  o.bits2 = 4;
  LvqDataset2 ds2 = LvqDataset2::Encode(data, o);
  std::vector<float> rec1(64), rec2(64);
  double err1 = 0.0, err2 = 0.0;
  for (size_t i = 0; i < 300; ++i) {
    ds2.level1().Decode(i, rec1.data());
    ds2.Decode(i, rec2.data());
    for (size_t j = 0; j < 64; ++j) {
      err1 += std::pow(rec1[j] - data(i, j), 2);
      err2 += std::pow(rec2[j] - data(i, j), 2);
    }
  }
  EXPECT_LT(err2, err1 / 10.0);  // 4 extra bits: ~16x amplitude, ~256x energy
}

TEST(Lvq2, FootprintMatchesEquationSeven) {
  MatrixF data = RandomData(10, 96, 21);
  LvqDataset2::Options o;
  o.bits1 = 4;
  o.bits2 = 8;
  LvqDataset2 ds = LvqDataset2::Encode(data, o);
  // level1: ceil((96*4/8 + 4)/32)*32 = 64; level2: 96*8/8 = 96.
  EXPECT_EQ(ds.vector_footprint(), 64u + 96u);
  EXPECT_EQ(ds.memory_bytes(), 10u * (64u + 96u));
}

TEST(Lvq2, NoExtraConstantsStored) {
  // The residual level is pure codes: stride == PackedBytes(d, B2).
  MatrixF data = RandomData(10, 40, 22);
  LvqDataset2::Options o;
  o.bits1 = 8;
  o.bits2 = 4;
  LvqDataset2 ds = LvqDataset2::Encode(data, o);
  EXPECT_EQ(ds.vector_footprint() - ds.level1().vector_footprint(),
            PackedBytes(40, 4));
}

class LvqBitSweep : public ::testing::TestWithParam<int> {};

TEST_P(LvqBitSweep, MeanErrorTracksDeltaTheory) {
  // Under uniform quantization error, E|err| = Delta/4. Check within 25%.
  const int bits = GetParam();
  MatrixF data = RandomData(300, 64, 100 + bits);
  LvqDataset::Options o;
  o.bits = bits;
  LvqDataset ds = LvqDataset::Encode(data, o);
  std::vector<float> rec(64);
  double total_err = 0.0, total_expected = 0.0;
  for (size_t i = 0; i < 300; ++i) {
    ds.Decode(i, rec.data());
    for (size_t j = 0; j < 64; ++j) {
      total_err += std::fabs(rec[j] - data(i, j));
    }
    total_expected += 64.0 * ds.constants(i).delta / 4.0;
  }
  EXPECT_NEAR(total_err / total_expected, 1.0, 0.25) << "bits=" << bits;
}

INSTANTIATE_TEST_SUITE_P(BitWidths, LvqBitSweep,
                         ::testing::Values(2, 3, 4, 5, 6, 8, 10, 12));

}  // namespace
}  // namespace blink
