// Unit tests for the flat graph store.
#include "graph/graph.h"

#include <gtest/gtest.h>
#include <vector>

namespace blink {
namespace {

TEST(FlatGraph, EmptyOnConstruction) {
  FlatGraph g(10, 4);
  EXPECT_EQ(g.size(), 10u);
  EXPECT_EQ(g.max_degree(), 4u);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(g.degree(i), 0u);
}

TEST(FlatGraph, SetAndReadNeighbors) {
  FlatGraph g(5, 3);
  const uint32_t nbrs[] = {4, 1, 2};
  g.SetNeighbors(0, nbrs, 3);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.neighbors(0)[0], 4u);
  EXPECT_EQ(g.neighbors(0)[1], 1u);
  EXPECT_EQ(g.neighbors(0)[2], 2u);
  EXPECT_EQ(g.degree(1), 0u);  // other rows untouched
}

TEST(FlatGraph, AddNeighborRespectsBound) {
  FlatGraph g(2, 2);
  EXPECT_TRUE(g.AddNeighbor(0, 1));
  EXPECT_TRUE(g.AddNeighbor(0, 1));
  EXPECT_FALSE(g.AddNeighbor(0, 1));  // full
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(FlatGraph, ClearResetsRow) {
  FlatGraph g(2, 2);
  g.AddNeighbor(0, 1);
  g.Clear(0);
  EXPECT_EQ(g.degree(0), 0u);
}

TEST(FlatGraph, MemoryBytesIsFlatRowLayout) {
  // One u32 degree + R u32 slots per node, no indirection.
  FlatGraph g(100, 32);
  EXPECT_EQ(g.memory_bytes(), 100u * 33u * sizeof(uint32_t));
}

TEST(FlatGraph, AverageDegree) {
  FlatGraph g(4, 4);
  const uint32_t a[] = {1, 2};
  const uint32_t b[] = {0};
  g.SetNeighbors(0, a, 2);
  g.SetNeighbors(1, b, 1);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 3.0 / 4.0);
}

TEST(FlatGraph, SetNeighborsOverwrites) {
  FlatGraph g(1, 4);
  const uint32_t a[] = {1, 2, 3};
  const uint32_t b[] = {9};
  g.SetNeighbors(0, a, 3);
  g.SetNeighbors(0, b, 1);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.neighbors(0)[0], 9u);
}

TEST(FlatGraph, PrefetchDoesNotCrash) {
  FlatGraph g(16, 8);
  for (size_t i = 0; i < 16; ++i) g.PrefetchAdjacency(i);
}

TEST(FlatGraph, MoveTransfersStorage) {
  FlatGraph g(8, 2);
  g.AddNeighbor(3, 7);
  FlatGraph h = std::move(g);
  EXPECT_EQ(h.size(), 8u);
  EXPECT_EQ(h.degree(3), 1u);
  EXPECT_EQ(h.neighbors(3)[0], 7u);
}

TEST(FlatGraph, LargeDegreeGraph) {
  FlatGraph g(10, 128);
  std::vector<uint32_t> nbrs(128);
  for (uint32_t j = 0; j < 128; ++j) nbrs[j] = j;
  g.SetNeighbors(5, nbrs.data(), 128);
  EXPECT_EQ(g.degree(5), 128u);
  EXPECT_EQ(g.neighbors(5)[127], 127u);
}

}  // namespace
}  // namespace blink
