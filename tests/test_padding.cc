// Padding-contract tests (ISSUE 2 satellite): when k exceeds the number of
// reachable results, every search path pads ids with kInvalidId and dists
// with +inf — Search, SearchBatch, SearchBatchEx, MakeSearcher() searchers,
// the serving engine, and the dynamic-index view.
#include <gtest/gtest.h>

#include "serve/engine.h"
#include "testutil.h"

namespace blink {
namespace {

using testutil::ExpectPaddedRow;

constexpr size_t kCorpus = 5;  // tiny corpus so k=16 must pad
constexpr size_t kK = 16;

using TinyFixture = testutil::TinyWorld;  // corpus 5, 4 queries, seed 99

TEST(Padding, SingleQuerySearchPadsToK) {
  TinyFixture f;
  RuntimeParams p;
  SearchResult res;
  f.index->Search(f.data.queries.row(0), kK, p, &res);
  ASSERT_EQ(res.ids.size(), kK);
  ASSERT_EQ(res.dists.size(), kK);
  ExpectPaddedRow(res.ids.data(), res.dists.data(), kK, kCorpus);
}

TEST(Padding, SearchBatchPadsToK) {
  TinyFixture f;
  RuntimeParams p;
  const size_t nq = f.data.queries.rows();
  Matrix<uint32_t> ids(nq, kK);
  f.index->SearchBatch(f.data.queries, kK, p, ids.data());
  for (size_t qi = 0; qi < nq; ++qi) {
    ExpectPaddedRow(ids.row(qi), nullptr, kK, kCorpus);
  }
}

TEST(Padding, SearchBatchExPadsIdsAndDists) {
  TinyFixture f;
  RuntimeParams p;
  const size_t nq = f.data.queries.rows();
  Matrix<uint32_t> ids(nq, kK);
  MatrixF dists(nq, kK);
  ThreadPool pool(2);
  f.index->SearchBatchEx(f.data.queries, kK, p, ids.data(), dists.data(),
                         nullptr, &pool);
  for (size_t qi = 0; qi < nq; ++qi) {
    ExpectPaddedRow(ids.row(qi), dists.row(qi), kK, kCorpus);
  }
}

TEST(Padding, PooledSearcherPadsToK) {
  TinyFixture f;
  RuntimeParams p;
  auto searcher = f.index->MakeSearcher();
  std::vector<uint32_t> ids(kK);
  std::vector<float> dists(kK);
  searcher->Search(f.data.queries.row(0), kK, p, ids.data(), dists.data(),
                   nullptr);
  ExpectPaddedRow(ids.data(), dists.data(), kK, kCorpus);
}

TEST(Padding, ServingEnginePadsSyncAndAsync) {
  TinyFixture f;
  RuntimeParams p;
  ServingOptions opts;
  opts.num_threads = 2;
  ServingEngine engine(f.index.get(), opts);
  const size_t nq = f.data.queries.rows();
  Matrix<uint32_t> ids(nq, kK);
  MatrixF dists(nq, kK);
  engine.SearchBatch(f.data.queries, kK, p, ids.data(), dists.data());
  for (size_t qi = 0; qi < nq; ++qi) {
    ExpectPaddedRow(ids.row(qi), dists.row(qi), kK, kCorpus);
  }
  SearchResult res = engine.Submit(f.data.queries.row(0), kK, p).get();
  ASSERT_EQ(res.ids.size(), kK);
  ExpectPaddedRow(res.ids.data(), res.dists.data(), kK, kCorpus);
}

TEST(Padding, DynamicIndexViewPadsToK) {
  Dataset data = MakeDeepLike(kCorpus, 3, 101);
  DynamicIndex::Options o;
  o.graph_max_degree = 4;
  o.build_window = 8;
  DynamicIndex dyn(96, o);
  for (size_t i = 0; i < kCorpus; ++i) dyn.Insert(data.base.row(i));
  DynamicIndexView view(&dyn);
  RuntimeParams p;
  const size_t nq = data.queries.rows();
  Matrix<uint32_t> ids(nq, kK);
  MatrixF dists(nq, kK);
  view.SearchBatchEx(data.queries, kK, p, ids.data(), dists.data(), nullptr);
  for (size_t qi = 0; qi < nq; ++qi) {
    ExpectPaddedRow(ids.row(qi), dists.row(qi), kK, kCorpus);
  }
}

}  // namespace
}  // namespace blink
