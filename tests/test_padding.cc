// Padding-contract tests (ISSUE 2 satellite): when k exceeds the number of
// reachable results, every search path pads ids with kInvalidId and dists
// with +inf — Search, SearchBatch, SearchBatchEx, MakeSearcher() searchers,
// the serving engine, and the dynamic-index view.
#include <gtest/gtest.h>

#include "serve/engine.h"
#include "testutil.h"
#include "util/prng.h"

namespace blink {
namespace {

using testutil::ExpectPaddedRow;

constexpr size_t kCorpus = 5;  // tiny corpus so k=16 must pad
constexpr size_t kK = 16;

using TinyFixture = testutil::TinyWorld;  // corpus 5, 4 queries, seed 99

TEST(Padding, SingleQuerySearchPadsToK) {
  TinyFixture f;
  RuntimeParams p;
  SearchResult res;
  f.index->Search(f.data.queries.row(0), kK, p, &res);
  ASSERT_EQ(res.ids.size(), kK);
  ASSERT_EQ(res.dists.size(), kK);
  ExpectPaddedRow(res.ids.data(), res.dists.data(), kK, kCorpus);
}

TEST(Padding, SearchBatchPadsToK) {
  TinyFixture f;
  RuntimeParams p;
  const size_t nq = f.data.queries.rows();
  Matrix<uint32_t> ids(nq, kK);
  f.index->SearchBatch(f.data.queries, kK, p, ids.data());
  for (size_t qi = 0; qi < nq; ++qi) {
    ExpectPaddedRow(ids.row(qi), nullptr, kK, kCorpus);
  }
}

TEST(Padding, SearchBatchExPadsIdsAndDists) {
  TinyFixture f;
  RuntimeParams p;
  const size_t nq = f.data.queries.rows();
  Matrix<uint32_t> ids(nq, kK);
  MatrixF dists(nq, kK);
  ThreadPool pool(2);
  f.index->SearchBatchEx(f.data.queries, kK, p, ids.data(), dists.data(),
                         nullptr, &pool);
  for (size_t qi = 0; qi < nq; ++qi) {
    ExpectPaddedRow(ids.row(qi), dists.row(qi), kK, kCorpus);
  }
}

TEST(Padding, PooledSearcherPadsToK) {
  TinyFixture f;
  RuntimeParams p;
  auto searcher = f.index->MakeSearcher();
  std::vector<uint32_t> ids(kK);
  std::vector<float> dists(kK);
  searcher->Search(f.data.queries.row(0), kK, p, ids.data(), dists.data(),
                   nullptr);
  ExpectPaddedRow(ids.data(), dists.data(), kK, kCorpus);
}

TEST(Padding, ServingEnginePadsSyncAndAsync) {
  TinyFixture f;
  RuntimeParams p;
  ServingOptions opts;
  opts.num_threads = 2;
  ServingEngine engine(f.index.get(), opts);
  const size_t nq = f.data.queries.rows();
  Matrix<uint32_t> ids(nq, kK);
  MatrixF dists(nq, kK);
  engine.SearchBatch(f.data.queries, kK, p, ids.data(), dists.data());
  for (size_t qi = 0; qi < nq; ++qi) {
    ExpectPaddedRow(ids.row(qi), dists.row(qi), kK, kCorpus);
  }
  SearchResult res = engine.Submit(f.data.queries.row(0), kK, p).get();
  ASSERT_EQ(res.ids.size(), kK);
  ExpectPaddedRow(res.ids.data(), res.dists.data(), kK, kCorpus);
}

// Regression (ISSUE 4): DynamicIndex::Search used to return an *empty*
// result on live_size() == 0 instead of k padded slots.
TEST(Padding, EmptyDynamicIndexPadsToK) {
  DynamicIndex::Options o;
  o.graph_max_degree = 4;
  o.build_window = 8;
  DynamicIndex dyn(96, o);
  Dataset data = MakeDeepLike(4, 2, 107);
  SearchResult res;
  dyn.Search(data.queries.row(0), kK, 8, &res);
  ASSERT_EQ(res.ids.size(), kK);
  ASSERT_EQ(res.dists.size(), kK);
  ExpectPaddedRow(res.ids.data(), res.dists.data(), kK, /*corpus=*/0);

  // Same after inserting and deleting everything (live is 0 again, but
  // tombstones remain traversable until consolidation).
  std::vector<uint32_t> ids;
  for (size_t i = 0; i < 4; ++i) ids.push_back(dyn.Insert(data.base.row(i)));
  for (uint32_t id : ids) ASSERT_TRUE(dyn.Delete(id).ok());
  dyn.Search(data.queries.row(0), kK, 8, &res);
  ASSERT_EQ(res.ids.size(), kK);
  ExpectPaddedRow(res.ids.data(), res.dists.data(), kK, /*corpus=*/0);
}

// Regression (ISSUE 4): the tombstone window over-provision was capped at
// 64, so more than 64 tombstones closer to the query than the live points
// crowded every live result out of the candidate buffer. The slack now
// follows the actual tombstone count.
TEST(Padding, MassDeletionDoesNotCrowdOutLiveResults) {
  const size_t kNear = 120;  // > the old cap of 64, all deleted below
  const size_t kFar = 40;
  const size_t kDim = 8;
  const size_t k = 10;
  DynamicIndex::Options o;
  o.graph_max_degree = 8;
  o.build_window = 32;
  DynamicIndex dyn(kDim, o);
  Rng rng(42);
  // Near cluster around the origin (will be tombstoned), far cluster at a
  // large offset (stays live).
  std::vector<uint32_t> near_ids;
  float v[kDim];
  for (size_t i = 0; i < kNear; ++i) {
    for (size_t j = 0; j < kDim; ++j) {
      v[j] = rng.UniformFloat() * 0.1f;
    }
    near_ids.push_back(dyn.Insert(v));
  }
  for (size_t i = 0; i < kFar; ++i) {
    for (size_t j = 0; j < kDim; ++j) {
      v[j] = 100.0f + rng.UniformFloat() * 0.1f;
    }
    dyn.Insert(v);
  }
  for (uint32_t id : near_ids) ASSERT_TRUE(dyn.Delete(id).ok());

  // Query at the origin: all 120 tombstones are closer than any live
  // vector. A small window must still yield k live results.
  const float q[kDim] = {0};
  SearchResult res;
  dyn.Search(q, k, /*window=*/10, &res);
  ASSERT_EQ(res.ids.size(), k);
  size_t live = 0;
  for (uint32_t id : res.ids) {
    if (id == kInvalidId) continue;
    EXPECT_FALSE(dyn.IsDeleted(id));
    ++live;
  }
  EXPECT_EQ(live, k) << "tombstones crowded out live results";
}

TEST(Padding, DynamicIndexViewPadsToK) {
  Dataset data = MakeDeepLike(kCorpus, 3, 101);
  DynamicIndex::Options o;
  o.graph_max_degree = 4;
  o.build_window = 8;
  DynamicIndex dyn(96, o);
  for (size_t i = 0; i < kCorpus; ++i) dyn.Insert(data.base.row(i));
  DynamicIndexView view(&dyn);
  RuntimeParams p;
  const size_t nq = data.queries.rows();
  Matrix<uint32_t> ids(nq, kK);
  MatrixF dists(nq, kK);
  view.SearchBatchEx(data.queries, kK, p, ids.data(), dists.data(), nullptr);
  for (size_t qi = 0; qi < nq; ++qi) {
    ExpectPaddedRow(ids.row(qi), dists.row(qi), kK, kCorpus);
  }
}

}  // namespace
}  // namespace blink
