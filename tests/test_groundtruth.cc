// Unit tests for exact ground-truth computation.
#include "data/groundtruth.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "quant/lvq.h"
#include "simd/distance.h"

namespace blink {
namespace {

TEST(GroundTruth, MatchesNaiveReference) {
  Dataset data = MakeDeepLike(300, 20, 90);
  const size_t k = 5;
  Matrix<uint32_t> gt = ComputeGroundTruth(data.base, data.queries, k,
                                           data.metric);
  for (size_t qi = 0; qi < 20; ++qi) {
    std::vector<std::pair<float, uint32_t>> all;
    for (size_t i = 0; i < 300; ++i) {
      all.push_back({simd::ref::L2Sqr(data.queries.row(qi), data.base.row(i), 96),
                     static_cast<uint32_t>(i)});
    }
    std::sort(all.begin(), all.end());
    for (size_t j = 0; j < k; ++j) {
      EXPECT_EQ(gt(qi, j), all[j].second) << "query " << qi << " rank " << j;
    }
  }
}

TEST(GroundTruth, InnerProductOrdering) {
  Dataset data = MakeDprLike(200, 10, 91);
  Matrix<uint32_t> gt = ComputeGroundTruth(data.base, data.queries, 3,
                                           data.metric);
  // The top hit must have the largest inner product.
  for (size_t qi = 0; qi < 10; ++qi) {
    const float best =
        -simd::IpDist(data.queries.row(qi), data.base.row(gt(qi, 0)), 768);
    for (size_t i = 0; i < 200; ++i) {
      const float ip = -simd::IpDist(data.queries.row(qi), data.base.row(i), 768);
      EXPECT_LE(ip, best + 1e-3f);
    }
  }
}

TEST(GroundTruth, KLargerThanNPadsWithSentinel) {
  Dataset data = MakeDeepLike(3, 2, 92);
  Matrix<uint32_t> gt = ComputeGroundTruth(data.base, data.queries, 8,
                                           data.metric);
  for (size_t qi = 0; qi < 2; ++qi) {
    std::set<uint32_t> seen;
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_LT(gt(qi, j), 3u);
      seen.insert(gt(qi, j));
    }
    EXPECT_EQ(seen.size(), 3u);  // all distinct
    for (size_t j = 3; j < 8; ++j) EXPECT_EQ(gt(qi, j), UINT32_MAX);
  }
}

TEST(GroundTruth, ParallelMatchesSerial) {
  Dataset data = MakeDeepLike(500, 30, 93);
  Matrix<uint32_t> serial =
      ComputeGroundTruth(data.base, data.queries, 10, data.metric, nullptr);
  ThreadPool pool(4);
  Matrix<uint32_t> parallel =
      ComputeGroundTruth(data.base, data.queries, 10, data.metric, &pool);
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial.data()[i], parallel.data()[i]);
  }
}

TEST(GroundTruth, DecodeAllRoundTripsThroughLvq) {
  Dataset data = MakeDeepLike(100, 2, 94);
  LvqDataset::Options o;
  o.bits = 8;
  LvqDataset ds = LvqDataset::Encode(data.base, o);
  MatrixF decoded = DecodeAll(ds);
  ASSERT_EQ(decoded.rows(), 100u);
  ASSERT_EQ(decoded.cols(), 96u);
  std::vector<float> direct(96);
  for (size_t i = 0; i < 100; i += 17) {
    ds.Decode(i, direct.data());
    for (size_t j = 0; j < 96; ++j) {
      EXPECT_FLOAT_EQ(decoded(i, j), direct[j]);
    }
  }
}

}  // namespace
}  // namespace blink
