// Unit tests for the synthetic dataset families (Table 2 stand-ins).
#include "data/synthetic.h"

#include <cmath>
#include <gtest/gtest.h>
#include <set>

namespace blink {
namespace {

TEST(Synthetic, ShapesAndMetricsMatchFamilies) {
  Dataset deep = MakeDeepLike(100, 10);
  EXPECT_EQ(deep.base.rows(), 100u);
  EXPECT_EQ(deep.base.cols(), 96u);
  EXPECT_EQ(deep.queries.rows(), 10u);
  EXPECT_EQ(deep.metric, Metric::kL2);

  Dataset dpr = MakeDprLike(50, 5);
  EXPECT_EQ(dpr.base.cols(), 768u);
  EXPECT_EQ(dpr.metric, Metric::kInnerProduct);

  Dataset t2i = MakeT2iLike(50, 5);
  EXPECT_EQ(t2i.base.cols(), 200u);
  EXPECT_EQ(t2i.metric, Metric::kInnerProduct);

  Dataset gist = MakeGistLike(20, 2);
  EXPECT_EQ(gist.base.cols(), 960u);
  Dataset sift = MakeSiftLike(20, 2);
  EXPECT_EQ(sift.base.cols(), 128u);
  Dataset glove = MakeGloveLike(25, 20, 2);
  EXPECT_EQ(glove.base.cols(), 25u);
}

TEST(Synthetic, CosineFamiliesAreUnitNormalized) {
  auto check = [](const Dataset& data) {
    for (size_t i = 0; i < data.base.rows(); ++i) {
      double norm = 0.0;
      for (size_t j = 0; j < data.base.cols(); ++j) {
        norm += static_cast<double>(data.base(i, j)) * data.base(i, j);
      }
      EXPECT_NEAR(norm, 1.0, 1e-4) << data.name << " row " << i;
    }
  };
  check(MakeDeepLike(200, 20));
  check(MakeGloveLike(50, 200, 20));
}

TEST(Synthetic, DescriptorFamiliesAreNonNegative) {
  auto check = [](const Dataset& data) {
    for (size_t i = 0; i < data.base.rows(); ++i) {
      for (size_t j = 0; j < data.base.cols(); ++j) {
        EXPECT_GE(data.base(i, j), 0.0f) << data.name;
      }
    }
  };
  check(MakeSiftLike(100, 5));
  check(MakeGistLike(50, 5));
}

TEST(Synthetic, DeterministicGivenSeed) {
  Dataset a = MakeDeepLike(100, 10, 5);
  Dataset b = MakeDeepLike(100, 10, 5);
  Dataset c = MakeDeepLike(100, 10, 6);
  for (size_t i = 0; i < a.base.size(); ++i) {
    ASSERT_EQ(a.base.data()[i], b.base.data()[i]);
  }
  bool any_diff = false;
  for (size_t i = 0; i < a.base.size(); ++i) {
    if (a.base.data()[i] != c.base.data()[i]) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Synthetic, DimensionsHaveDistinctMeans) {
  // The property LVQ's de-meaning exploits (paper Fig. 3): raw dimensions
  // have visibly different means.
  Dataset data = MakeGloveLike(50, 2000, 10);
  std::vector<double> means(50, 0.0);
  for (size_t i = 0; i < data.base.rows(); ++i) {
    for (size_t j = 0; j < 50; ++j) means[j] += data.base(i, j);
  }
  double spread = 0.0;
  for (auto& m : means) m /= 2000.0;
  for (double m : means) spread = std::max(spread, std::fabs(m));
  EXPECT_GT(spread, 0.01);
}

TEST(Synthetic, DataIsClusterable) {
  // Mixture structure: nearest-neighbor distances must be far below the
  // typical inter-point distance (pure iid Gaussian would not show this).
  Dataset data = MakeDeepLike(2000, 1, 11);
  const size_t d = data.base.cols();
  double nn = 0.0, avg = 0.0;
  const size_t probes = 50;
  for (size_t p = 0; p < probes; ++p) {
    const float* x = data.base.row(p * 37 % 2000);
    double best = 1e30, sum = 0.0;
    for (size_t i = 0; i < 2000; ++i) {
      if (data.base.row(i) == x) continue;
      double dist = 0.0;
      for (size_t j = 0; j < d; ++j) {
        const double diff = x[j] - data.base(i, j);
        dist += diff * diff;
      }
      best = std::min(best, dist);
      sum += dist;
    }
    nn += best;
    avg += sum / 1999.0;
  }
  EXPECT_LT(nn / probes, 0.5 * avg / probes);
}

TEST(Synthetic, T2iQueriesComeFromShiftedDistribution) {
  Dataset data = MakeT2iLike(3000, 3000, 12);
  // Per-dimension means of base vs queries must differ measurably.
  const size_t d = data.base.cols();
  double max_shift = 0.0;
  for (size_t j = 0; j < d; ++j) {
    double mb = 0.0, mq = 0.0;
    for (size_t i = 0; i < 3000; ++i) {
      mb += data.base(i, j);
      mq += data.queries(i, j);
    }
    max_shift = std::max(max_shift, std::fabs(mb - mq) / 3000.0);
  }
  EXPECT_GT(max_shift, 0.05);
}

TEST(Synthetic, ModifyVarianceScalesChosenDimsOnly) {
  Dataset data = MakeDeepLike(500, 100, 13);
  MatrixF base_orig = data.base.Clone();
  MatrixF q_orig = data.queries.Clone();
  ModifyDatasetVariance(&data.base, &data.queries, 0.2, 10.0, 100.0, 99);
  size_t changed = 0;
  for (size_t j = 0; j < 96; ++j) {
    bool dim_changed = false;
    for (size_t i = 0; i < 10; ++i) {
      if (data.base(i, j) != base_orig(i, j)) dim_changed = true;
    }
    if (dim_changed) {
      ++changed;
      // Scaled consistently: ratio constant across rows (where nonzero).
      const float ratio = data.base(0, j) / base_orig(0, j);
      EXPECT_GT(ratio, 9.0f);
      EXPECT_LT(ratio, 101.0f);
      for (size_t i = 1; i < 5; ++i) {
        if (std::fabs(base_orig(i, j)) > 1e-6f) {
          EXPECT_NEAR(data.base(i, j) / base_orig(i, j), ratio,
                      std::fabs(ratio) * 1e-4f);
        }
      }
      // Queries scaled with the same factor.
      if (std::fabs(q_orig(0, j)) > 1e-6f) {
        EXPECT_NEAR(data.queries(0, j) / q_orig(0, j), ratio,
                    std::fabs(ratio) * 1e-4f);
      }
    }
  }
  EXPECT_EQ(changed, 96u / 5u);  // 20% of dimensions
}

TEST(Synthetic, RandomVarVarHasBimodalSpread) {
  Dataset data = MakeRandomVarVar(3000, 10, 96, 14);
  // ~20% of dims must have stddev >= 10, the rest <= ~1.
  size_t large = 0, small = 0;
  for (size_t j = 0; j < 96; ++j) {
    double m = 0.0, v = 0.0;
    for (size_t i = 0; i < 3000; ++i) m += data.base(i, j);
    m /= 3000.0;
    for (size_t i = 0; i < 3000; ++i) v += std::pow(data.base(i, j) - m, 2);
    const double sd = std::sqrt(v / 3000.0);
    if (sd > 5.0) ++large;
    if (sd < 1.5) ++small;
  }
  EXPECT_EQ(large, 96u / 5u);
  EXPECT_EQ(small, 96u - 96u / 5u);
}

TEST(Synthetic, NormalizeRowsHandlesZeroVector) {
  MatrixF m(2, 3);
  m(0, 0) = 3.0f;
  m(0, 1) = 4.0f;  // norm 5
  NormalizeRows(&m);
  EXPECT_FLOAT_EQ(m(0, 0), 0.6f);
  EXPECT_FLOAT_EQ(m(0, 1), 0.8f);
  EXPECT_FLOAT_EQ(m(1, 0), 0.0f);  // zero row stays zero, no NaN
}

}  // namespace
}  // namespace blink
