// Unit tests for the sorted linear candidate buffer and visited tracking
// (paper Sec. 5 "Optimizing graph search").
#include "graph/search_buffer.h"

#include <gtest/gtest.h>

#include "util/prng.h"

namespace blink {
namespace {

TEST(SearchBuffer, KeepsAscendingOrder) {
  SearchBuffer buf(8);
  Rng rng(1);
  for (uint32_t i = 0; i < 50; ++i) {
    buf.Insert(rng.UniformFloat(), i);
  }
  ASSERT_EQ(buf.size(), 8u);
  for (size_t i = 1; i < buf.size(); ++i) {
    EXPECT_LE(buf[i - 1].dist, buf[i].dist);
  }
}

TEST(SearchBuffer, EvictsWorstWhenFull) {
  SearchBuffer buf(3);
  buf.Insert(3.0f, 3);
  buf.Insert(1.0f, 1);
  buf.Insert(2.0f, 2);
  EXPECT_FALSE(buf.Insert(5.0f, 5));  // rejected: worse than all
  EXPECT_TRUE(buf.Insert(0.5f, 0));   // evicts id 3
  ASSERT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf[0].id, 0u);
  EXPECT_EQ(buf[1].id, 1u);
  EXPECT_EQ(buf[2].id, 2u);
}

TEST(SearchBuffer, RejectsDuplicateIds) {
  SearchBuffer buf(4);
  EXPECT_TRUE(buf.Insert(1.0f, 7));
  EXPECT_FALSE(buf.Insert(1.0f, 7));  // same id, same (bit-identical) dist
  EXPECT_EQ(buf.size(), 1u);
}

TEST(SearchBuffer, DuplicatesAmongEqualDistances) {
  SearchBuffer buf(8);
  // Several ids sharing one distance; re-inserting any of them is a no-op.
  EXPECT_TRUE(buf.Insert(1.0f, 1));
  EXPECT_TRUE(buf.Insert(1.0f, 2));
  EXPECT_TRUE(buf.Insert(1.0f, 3));
  EXPECT_FALSE(buf.Insert(1.0f, 2));
  EXPECT_EQ(buf.size(), 3u);
}

TEST(SearchBuffer, ExploredTracking) {
  SearchBuffer buf(4);
  buf.Insert(2.0f, 2);
  buf.Insert(1.0f, 1);
  long idx = buf.NextUnexplored();
  ASSERT_EQ(idx, 0);
  EXPECT_EQ(buf[0].id, 1u);
  buf.MarkExplored(0);
  idx = buf.NextUnexplored();
  ASSERT_EQ(idx, 1);
  buf.MarkExplored(1);
  EXPECT_EQ(buf.NextUnexplored(), -1);
}

TEST(SearchBuffer, InsertBeforeExploredRewindsScan) {
  SearchBuffer buf(4);
  buf.Insert(2.0f, 2);
  buf.MarkExplored(static_cast<size_t>(buf.NextUnexplored()));
  // A closer candidate arrives after the first was explored.
  buf.Insert(1.0f, 1);
  const long idx = buf.NextUnexplored();
  ASSERT_EQ(idx, 0);
  EXPECT_EQ(buf[0].id, 1u);
  EXPECT_EQ(buf[0].explored, 0u);
  EXPECT_EQ(buf[1].id, 2u);
  EXPECT_EQ(buf[1].explored, 1u);
}

TEST(SearchBuffer, WorstDistIsInfinityUntilFull) {
  SearchBuffer buf(2);
  EXPECT_GT(buf.WorstDist(), 1e37f);
  buf.Insert(1.0f, 1);
  EXPECT_GT(buf.WorstDist(), 1e37f);
  buf.Insert(2.0f, 2);
  EXPECT_FLOAT_EQ(buf.WorstDist(), 2.0f);
}

TEST(SearchBuffer, ResetClearsState) {
  SearchBuffer buf(4);
  buf.Insert(1.0f, 1);
  buf.MarkExplored(static_cast<size_t>(buf.NextUnexplored()));
  buf.Reset(6);
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.capacity(), 6u);
  EXPECT_EQ(buf.NextUnexplored(), -1);
}

TEST(SearchBuffer, StressAgainstSortedReference) {
  const size_t cap = 16;
  SearchBuffer buf(cap);
  std::vector<std::pair<float, uint32_t>> ref;
  Rng rng(42);
  for (uint32_t i = 0; i < 500; ++i) {
    const float dist = rng.UniformFloat();
    buf.Insert(dist, i);
    ref.push_back({dist, i});
  }
  std::sort(ref.begin(), ref.end());
  ASSERT_EQ(buf.size(), cap);
  for (size_t i = 0; i < cap; ++i) {
    EXPECT_FLOAT_EQ(buf[i].dist, ref[i].first) << i;
    EXPECT_EQ(buf[i].id, ref[i].second) << i;
  }
}

TEST(VisitedSet, MarksAndResets) {
  VisitedSet v(10);
  v.NextQuery();
  EXPECT_FALSE(v.Visited(3));
  EXPECT_TRUE(v.CheckAndMark(3));
  EXPECT_TRUE(v.Visited(3));
  EXPECT_FALSE(v.CheckAndMark(3));
  v.NextQuery();  // O(1) reset
  EXPECT_FALSE(v.Visited(3));
}

TEST(VisitedSet, SurvivesEpochWraparound) {
  VisitedSet v(4);
  // Force many epochs; correctness must hold across the uint32 wrap.
  for (int i = 0; i < 1000; ++i) {
    v.NextQuery();
    EXPECT_TRUE(v.CheckAndMark(2));
    EXPECT_FALSE(v.CheckAndMark(2));
  }
}

}  // namespace
}  // namespace blink
