// Unit tests for k-means (substrate for PQ / OPQ / IVF / ScaNN).
#include "cluster/kmeans.h"

#include <gtest/gtest.h>
#include <set>

#include "simd/distance.h"
#include "util/prng.h"

namespace blink {
namespace {

/// Three well-separated blobs in 2D.
MatrixF Blobs(size_t per_cluster, uint64_t seed) {
  const float centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  MatrixF m(per_cluster * 3, 2);
  Rng rng(seed);
  for (size_t c = 0; c < 3; ++c) {
    for (size_t i = 0; i < per_cluster; ++i) {
      float* row = m.row(c * per_cluster + i);
      row[0] = centers[c][0] + 0.3f * rng.Gaussian();
      row[1] = centers[c][1] + 0.3f * rng.Gaussian();
    }
  }
  return m;
}

TEST(KMeans, RecoversWellSeparatedClusters) {
  MatrixF data = Blobs(100, 1);
  KMeansParams p;
  p.k = 3;
  KMeansResult r = KMeans(data, p);
  // Every centroid must be close to one true center; all three distinct.
  std::set<int> matched;
  for (size_t c = 0; c < 3; ++c) {
    const float* cc = r.centroids.row(c);
    int best = -1;
    const float centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
    for (int t = 0; t < 3; ++t) {
      const float dx = cc[0] - centers[t][0], dy = cc[1] - centers[t][1];
      if (dx * dx + dy * dy < 1.0f) best = t;
    }
    ASSERT_GE(best, 0) << "centroid " << c << " far from every true center";
    matched.insert(best);
  }
  EXPECT_EQ(matched.size(), 3u);
}

TEST(KMeans, AssignmentIsNearestCentroid) {
  MatrixF data = Blobs(50, 2);
  KMeansParams p;
  p.k = 3;
  KMeansResult r = KMeans(data, p);
  for (size_t i = 0; i < data.rows(); ++i) {
    EXPECT_EQ(r.assignment[i], NearestCentroid(data.row(i), r.centroids));
  }
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  MatrixF data = Blobs(100, 3);
  KMeansParams p2, p8;
  p2.k = 2;
  p8.k = 8;
  EXPECT_GT(KMeans(data, p2).inertia, KMeans(data, p8).inertia);
}

TEST(KMeans, DeterministicGivenSeed) {
  MatrixF data = Blobs(60, 4);
  KMeansParams p;
  p.k = 4;
  KMeansResult a = KMeans(data, p);
  KMeansResult b = KMeans(data, p);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeans, KOneGivesGlobalMean) {
  MatrixF data = Blobs(30, 5);
  KMeansParams p;
  p.k = 1;
  KMeansResult r = KMeans(data, p);
  double mx = 0, my = 0;
  for (size_t i = 0; i < data.rows(); ++i) {
    mx += data(i, 0);
    my += data(i, 1);
  }
  mx /= data.rows();
  my /= data.rows();
  EXPECT_NEAR(r.centroids(0, 0), mx, 1e-3);
  EXPECT_NEAR(r.centroids(0, 1), my, 1e-3);
}

TEST(KMeans, KClampedToN) {
  MatrixF data = Blobs(1, 6);  // 3 points
  KMeansParams p;
  p.k = 100;
  KMeansResult r = KMeans(data, p);
  EXPECT_EQ(r.centroids.rows(), 3u);
  EXPECT_NEAR(r.inertia, 0.0, 1e-6);  // every point its own centroid
}

TEST(KMeans, EmptyClustersGetReseeded) {
  // Duplicate points + large k forces empty clusters during Lloyd steps.
  MatrixF data(40, 2);
  Rng rng(7);
  for (size_t i = 0; i < 20; ++i) {
    data(i, 0) = 0.0f;
    data(i, 1) = 0.0f;
    data(20 + i, 0) = 5.0f + 0.01f * rng.Gaussian();
    data(20 + i, 1) = 5.0f;
  }
  KMeansParams p;
  p.k = 8;
  KMeansResult r = KMeans(data, p);
  // Must terminate and produce a valid assignment.
  for (uint32_t a : r.assignment) EXPECT_LT(a, 8u);
}

TEST(KMeans, NearestCentroidsAscendingOrder) {
  MatrixF cents(5, 2);
  for (size_t c = 0; c < 5; ++c) {
    cents(c, 0) = static_cast<float>(c);
    cents(c, 1) = 0.0f;
  }
  const float q[2] = {2.2f, 0.0f};
  auto order = NearestCentroids(q, cents, 5);
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], 2u);
  EXPECT_EQ(order[1], 3u);  // |2.2-3| < |2.2-1|
  EXPECT_EQ(order[2], 1u);
  float prev = -1.0f;
  for (uint32_t c : order) {
    const float dist = simd::L2Sqr(q, cents.row(c), 2);
    EXPECT_GE(dist, prev);
    prev = dist;
  }
}

TEST(KMeans, ParallelAssignMatchesSerial) {
  MatrixF data = Blobs(200, 8);
  KMeansParams p;
  p.k = 6;
  KMeansResult r = KMeans(data, p);
  std::vector<uint32_t> serial(data.rows()), parallel(data.rows());
  AssignToCentroids(data, r.centroids, serial.data(), nullptr, nullptr);
  ThreadPool pool(4);
  AssignToCentroids(data, r.centroids, parallel.data(), nullptr, &pool);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace blink
