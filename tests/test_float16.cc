// Unit tests for the float16 storage type.
#include "util/float16.h"

#include <cmath>
#include <gtest/gtest.h>
#include <limits>

#include "util/prng.h"

namespace blink {
namespace {

TEST(Float16, ExactlyRepresentableValuesRoundTrip) {
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -2.0f, 0.25f, 1024.0f,
                  -1024.0f, 65504.0f /* max finite f16 */}) {
    EXPECT_EQ(static_cast<float>(Float16(v)), v) << v;
  }
}

TEST(Float16, KnownBitPatterns) {
  EXPECT_EQ(Float16(1.0f).bits(), 0x3C00);
  EXPECT_EQ(Float16(-2.0f).bits(), 0xC000);
  EXPECT_EQ(Float16(0.0f).bits(), 0x0000);
  EXPECT_EQ(Float16(65504.0f).bits(), 0x7BFF);
  // Smallest positive subnormal: 2^-24.
  EXPECT_FLOAT_EQ(static_cast<float>(Float16::FromBits(0x0001)),
                  std::ldexp(1.0f, -24));
}

TEST(Float16, RelativeErrorWithinHalfUlp) {
  // 10 mantissa bits -> relative error <= 2^-11 for normal values.
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const float v = rng.Uniform(-100.0f, 100.0f);
    const float r = static_cast<float>(Float16(v));
    if (std::fabs(v) > 1e-3f) {
      EXPECT_LE(std::fabs(r - v) / std::fabs(v), std::ldexp(1.0f, -11)) << v;
    }
  }
}

TEST(Float16, OverflowGoesToInfinity) {
  const float inf = static_cast<float>(Float16(1e6f));
  EXPECT_TRUE(std::isinf(inf));
  EXPECT_GT(inf, 0.0f);
  EXPECT_TRUE(std::isinf(static_cast<float>(Float16(-1e6f))));
}

TEST(Float16, SubnormalsPreserved) {
  const float tiny = std::ldexp(1.0f, -20);  // subnormal in f16
  const float r = static_cast<float>(Float16(tiny));
  EXPECT_NEAR(r, tiny, tiny * 0.1f);
}

TEST(Float16, ConversionIsMonotonic) {
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    const float a = rng.Uniform(-50.0f, 50.0f);
    const float b = rng.Uniform(-50.0f, 50.0f);
    const float fa = static_cast<float>(Float16(std::min(a, b)));
    const float fb = static_cast<float>(Float16(std::max(a, b)));
    EXPECT_LE(fa, fb);
  }
}

TEST(Float16, RoundTripThroughBitsIsIdentity) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const Float16 h(rng.Uniform(-10.0f, 10.0f));
    EXPECT_EQ(Float16::FromBits(h.bits()), h);
    // Converting the reconstruction again must be a fixed point.
    EXPECT_EQ(Float16(static_cast<float>(h)).bits(), h.bits());
  }
}

}  // namespace
}  // namespace blink
