// Index::Calibrate (ISSUE 6 tentpole): deterministic knob search over
// SearchOptions. Everything here runs on the fixed-seed recall-floor
// dataset (n=3000, 150 queries, seed 77), so "meets the target" is a
// regression bar, not a flake: the same build + the same sample measure
// the same recall every run.
#include <gtest/gtest.h>

#include <map>

#include "api/calibrate.h"
#include "api/index.h"
#include "testutil.h"

namespace blink {
namespace {

using testutil::Fixture;

const Fixture& SharedFixture() {
  static const Fixture* f = new Fixture(MakeDeepLike(3000, 150, 77));
  return *f;
}

IndexSpec SpecFor(IndexKind kind, const Fixture& f) {
  IndexSpec spec;
  spec.kind = kind;
  spec.metric = f.data.metric;
  spec.bits1 = 4;
  spec.bits2 = 8;
  spec.graph = f.bp;
  spec.partition.num_shards = 4;
  spec.dynamic.initial_capacity = f.data.base.rows();
  return spec;
}

const Index& BuiltIndex(IndexKind kind) {
  // One build per flavor per test binary; Calibrate is read-only.
  static auto* cache = new std::map<IndexKind, Index>();
  auto it = cache->find(kind);
  if (it == cache->end()) {
    const Fixture& f = SharedFixture();
    Result<Index> built = Build(SpecFor(kind, f), f.data.base);
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    it = cache->emplace(kind, std::move(built).value()).first;
  }
  return it->second;
}

CalibrationTarget TargetFor(const Fixture& f, double recall) {
  CalibrationTarget t;
  t.target_recall = recall;
  t.sample_queries = f.data.queries;
  t.groundtruth = &f.gt;
  t.k = f.k;
  return t;
}

double RecallWith(const Index& index, const Fixture& f,
                  const SearchOptions& options) {
  Matrix<uint32_t> ids(f.data.queries.rows(), f.k);
  index.SearchBatch(f.data.queries, f.k, options, ids.data());
  return MeanRecallAtK(ids, f.gt, f.k);
}

// --- the options meet the target -----------------------------------------

class CalibrateMeetsTarget : public ::testing::TestWithParam<IndexKind> {};

TEST_P(CalibrateMeetsTarget, OptionsMeetTargetRecall) {
  const Fixture& f = SharedFixture();
  const Index& index = BuiltIndex(GetParam());
  Result<SearchOptions> options =
      index.Calibrate(TargetFor(f, 0.95));
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  // The 0.01 slack covers FP drift across SIMD backends, nothing else:
  // on the calibration sample itself the options measured >= 0.95.
  EXPECT_GE(RecallWith(index, f, options.value()), 0.95 - 0.01)
      << KindName(GetParam());
  EXPECT_TRUE(options.value().Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Flavors, CalibrateMeetsTarget,
                         ::testing::Values(IndexKind::kStaticLvq,
                                           IndexKind::kSharded,
                                           IndexKind::kDynamicLvq),
                         [](const auto& info) {
                           std::string name = KindName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// --- determinism ----------------------------------------------------------

TEST(Calibrate, DeterministicAcrossRunsAndThreads) {
  const Fixture& f = SharedFixture();
  const Index& index = BuiltIndex(IndexKind::kStaticLvq);
  Result<SearchOptions> a = index.Calibrate(TargetFor(f, 0.95));
  Result<SearchOptions> b = index.Calibrate(TargetFor(f, 0.95));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().window, b.value().window);
  EXPECT_EQ(a.value().nprobe_shards, b.value().nprobe_shards);
  EXPECT_EQ(a.value().rerank_window, b.value().rerank_window);

  // Batch parallelism partitions by query and never changes results, so a
  // pooled calibration lands on the same options.
  ThreadPool pool(4);
  CalibrationTarget with_pool = TargetFor(f, 0.95);
  with_pool.pool = &pool;
  Result<SearchOptions> c = index.Calibrate(with_pool);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a.value().window, c.value().window);
  EXPECT_EQ(a.value().nprobe_shards, c.value().nprobe_shards);
  EXPECT_EQ(a.value().rerank_window, c.value().rerank_window);
}

// --- window behavior ------------------------------------------------------

TEST(Calibrate, WindowGrowsWithTargetRecall) {
  const Fixture& f = SharedFixture();
  const Index& index = BuiltIndex(IndexKind::kStaticLvq);
  uint32_t last_window = 0;
  for (double target : {0.80, 0.90, 0.97}) {
    Result<SearchOptions> options = index.Calibrate(TargetFor(f, target));
    ASSERT_TRUE(options.ok()) << "target " << target;
    EXPECT_GE(options.value().window, last_window) << "target " << target;
    EXPECT_GE(options.value().window, f.k);
    last_window = options.value().window;
  }
}

TEST(Calibrate, TraceGrowthPrefixIsMonotone) {
  const Fixture& f = SharedFixture();
  const Index& index = BuiltIndex(IndexKind::kStaticLvq);
  Result<CalibrationReport> report =
      CalibrateIndex(index, TargetFor(f, 0.95));
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report.value().trace.empty());
  // The exponential-growth prefix probes strictly increasing windows until
  // the first configuration that meets the target.
  uint32_t prev = 0;
  for (const CalibrationPoint& p : report.value().trace) {
    EXPECT_GT(p.options.window, prev);
    prev = p.options.window;
    if (p.recall >= 0.95) break;
  }
  // The winning configuration is the last word of the report.
  EXPECT_GE(report.value().achieved.recall, 0.95);
  EXPECT_EQ(report.value().achieved.options.window,
            report.value().options.window);
}

TEST(Calibrate, UnreachableTargetIsOutOfRange) {
  const Fixture& f = SharedFixture();
  // One-level LVQ-4 without re-ranking cannot hit perfect recall at
  // window == k; capping max_window there forces the unreachable branch.
  IndexSpec spec = SpecFor(IndexKind::kStaticLvq, f);
  spec.bits2 = 0;
  Result<Index> built = Build(spec, f.data.base);
  ASSERT_TRUE(built.ok());
  CalibrationTarget target = TargetFor(f, 1.0);
  target.max_window = static_cast<uint32_t>(f.k);
  Result<SearchOptions> options = built.value().Calibrate(target);
  ASSERT_FALSE(options.ok());
  EXPECT_EQ(options.status().code(), StatusCode::kOutOfRange);
}

// --- capability handling --------------------------------------------------

TEST(Calibrate, TuneOnWithoutCapabilityIsUnsupported) {
  const Fixture& f = SharedFixture();
  const Index& unsharded = BuiltIndex(IndexKind::kStaticLvq);
  CalibrationTarget shards = TargetFor(f, 0.9);
  shards.tune_shard_probes = TuneKnob::kOn;
  Result<SearchOptions> r1 = unsharded.Calibrate(shards);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kUnsupported);

  // Full-precision storage has no second level to re-rank with.
  IndexSpec spec = SpecFor(IndexKind::kStaticF32, f);
  Result<Index> f32 = Build(spec, f.data.base);
  ASSERT_TRUE(f32.ok());
  CalibrationTarget rerank = TargetFor(f, 0.9);
  rerank.tune_rerank = TuneKnob::kOn;
  Result<SearchOptions> r2 = f32.value().Calibrate(rerank);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kUnsupported);

  // kAuto on the same index degrades to "pinned" instead of erroring.
  Result<SearchOptions> r3 = f32.value().Calibrate(TargetFor(f, 0.9));
  EXPECT_TRUE(r3.ok()) << r3.status().ToString();
}

TEST(Calibrate, ShardProbeTuningStaysWithinShardCount) {
  const Fixture& f = SharedFixture();
  const Index& sharded = BuiltIndex(IndexKind::kSharded);
  Result<SearchOptions> options = sharded.Calibrate(TargetFor(f, 0.95));
  ASSERT_TRUE(options.ok());
  EXPECT_LT(options.value().nprobe_shards, 4u);  // 0 (= all) or a subset
}

// --- argument validation --------------------------------------------------

TEST(Calibrate, RejectsBadTargets) {
  const Fixture& f = SharedFixture();
  const Index& index = BuiltIndex(IndexKind::kStaticLvq);

  CalibrationTarget bad_recall = TargetFor(f, 1.5);
  EXPECT_EQ(index.Calibrate(bad_recall).status().code(),
            StatusCode::kInvalidArgument);

  CalibrationTarget no_gt = TargetFor(f, 0.9);
  no_gt.groundtruth = nullptr;
  EXPECT_EQ(index.Calibrate(no_gt).status().code(),
            StatusCode::kInvalidArgument);

  CalibrationTarget empty = TargetFor(f, 0.9);
  empty.sample_queries = MatrixViewF(nullptr, 0, f.data.queries.cols());
  EXPECT_EQ(index.Calibrate(empty).status().code(),
            StatusCode::kInvalidArgument);

  CalibrationTarget shallow_gt = TargetFor(f, 0.9);
  shallow_gt.k = f.gt.cols() + 1;
  EXPECT_EQ(index.Calibrate(shallow_gt).status().code(),
            StatusCode::kInvalidArgument);
}

// --- SearchOptions itself -------------------------------------------------

TEST(SearchOptionsTest, ValidateCatchesBadKnobs) {
  SearchOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.window = 0;
  EXPECT_FALSE(o.Validate().ok());
  o.window = 32;
  o.rerank_window = 33;
  EXPECT_FALSE(o.Validate().ok());
  o.rerank_window = 32;
  EXPECT_TRUE(o.Validate().ok());
  o.nprobe = 0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(SearchOptionsTest, ResolvedForNeutralizesMissingCapabilities) {
  SearchOptions o;
  o.window = 4;
  o.nprobe_shards = 3;
  o.rerank_window = 64;
  SearchOptions r = o.ResolvedFor(kCapSearch, /*k=*/10);
  EXPECT_EQ(r.window, 10u);          // clamped to k
  EXPECT_EQ(r.nprobe_shards, 0u);    // no kCapShardProbe
  EXPECT_FALSE(r.rerank);            // no kCapRerank
  EXPECT_EQ(r.rerank_window, 0u);

  SearchOptions full = o.ResolvedFor(
      kCapSearch | kCapShardProbe | kCapRerank, /*k=*/10);
  EXPECT_EQ(full.nprobe_shards, 3u);
  EXPECT_TRUE(full.rerank);
  EXPECT_EQ(full.rerank_window, 10u);  // clamped into [k, window]
}

TEST(SearchOptionsTest, DeprecatedAliasStillCompiles) {
  RuntimeParams legacy;  // the pre-redesign spelling
  legacy.window = 48;
  SearchOptions& modern = legacy;
  EXPECT_EQ(modern.window, 48u);
}

}  // namespace
}  // namespace blink
