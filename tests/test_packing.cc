// Unit tests for bit-packed code storage.
#include "quant/packing.h"

#include <cstring>
#include <gtest/gtest.h>
#include <vector>

#include "util/prng.h"

namespace blink {
namespace {

TEST(Packing, PackedBytesFormula) {
  EXPECT_EQ(PackedBytes(96, 8), 96u);
  EXPECT_EQ(PackedBytes(96, 4), 48u);
  EXPECT_EQ(PackedBytes(96, 16), 192u);
  EXPECT_EQ(PackedBytes(5, 3), 2u);   // 15 bits -> 2 bytes
  EXPECT_EQ(PackedBytes(7, 1), 1u);   // 7 bits -> 1 byte
  EXPECT_EQ(PackedBytes(9, 1), 2u);
  EXPECT_EQ(PackedBytes(0, 8), 0u);
}

TEST(Packing, ByteAlignedFastPaths) {
  std::vector<uint8_t> buf(16, 0);
  PackCode(buf.data(), 3, 8, 0xAB);
  EXPECT_EQ(buf[3], 0xAB);
  EXPECT_EQ(UnpackCode(buf.data(), 3, 8), 0xABu);

  std::fill(buf.begin(), buf.end(), 0);
  PackCode(buf.data(), 2, 16, 0xBEEF);
  EXPECT_EQ(UnpackCode(buf.data(), 2, 16), 0xBEEFu);
  EXPECT_EQ(buf[4], 0xEF);  // LSB first
  EXPECT_EQ(buf[5], 0xBE);
}

TEST(Packing, NibblePathLowNibbleFirst) {
  std::vector<uint8_t> buf(4, 0);
  PackCode(buf.data(), 0, 4, 0x3);
  PackCode(buf.data(), 1, 4, 0xC);
  EXPECT_EQ(buf[0], 0xC3);  // even index = low nibble
  EXPECT_EQ(UnpackCode(buf.data(), 0, 4), 0x3u);
  EXPECT_EQ(UnpackCode(buf.data(), 1, 4), 0xCu);
}

TEST(Packing, CrossByteBoundary) {
  // 3-bit codes: index 2 spans bits [6, 9), crossing a byte boundary.
  std::vector<uint8_t> buf(4, 0);
  PackCode(buf.data(), 2, 3, 0b101);
  EXPECT_EQ(UnpackCode(buf.data(), 2, 3), 0b101u);
  // Neighbors unaffected.
  EXPECT_EQ(UnpackCode(buf.data(), 0, 3), 0u);
  EXPECT_EQ(UnpackCode(buf.data(), 1, 3), 0u);
  EXPECT_EQ(UnpackCode(buf.data(), 3, 3), 0u);
}

TEST(Packing, LastCodeStaysInBounds) {
  // A 2-bit stream of 4 codes occupies exactly 1 byte; reading the last
  // code must not touch buf[1]. Canary bytes would make ASan-free
  // corruption visible as a wrong value.
  std::vector<uint8_t> buf = {0x00, 0xFF};
  PackCode(buf.data(), 3, 2, 0b11);
  EXPECT_EQ(UnpackCode(buf.data(), 3, 2), 0b11u);
  EXPECT_EQ(buf[1], 0xFF);  // canary untouched by pack
}

class PackingRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PackingRoundTrip, RandomCodesSurviveRoundTrip) {
  const int bits = GetParam();
  const size_t d = 97;  // prime length exercises every phase offset
  std::vector<uint8_t> buf(PackedBytes(d, bits), 0);
  std::vector<uint32_t> codes(d);
  Rng rng(bits * 7919);
  const uint32_t max_code = (bits == 16) ? 0xFFFFu : ((1u << bits) - 1u);
  for (size_t j = 0; j < d; ++j) {
    codes[j] = static_cast<uint32_t>(rng.Bounded(max_code + 1ull));
    PackCode(buf.data(), j, bits, codes[j]);
  }
  for (size_t j = 0; j < d; ++j) {
    EXPECT_EQ(UnpackCode(buf.data(), j, bits), codes[j])
        << "bits=" << bits << " j=" << j;
  }
}

TEST_P(PackingRoundTrip, StreamIsDense) {
  // Writing all-ones codes must produce exactly ceil(d*bits/8) non-zero
  // bytes of full coverage: every payload bit is set.
  const int bits = GetParam();
  const size_t d = 64;
  std::vector<uint8_t> buf(PackedBytes(d, bits), 0);
  const uint32_t ones = (bits == 16) ? 0xFFFFu : ((1u << bits) - 1u);
  for (size_t j = 0; j < d; ++j) PackCode(buf.data(), j, bits, ones);
  size_t set_bits = 0;
  for (uint8_t b : buf) set_bits += static_cast<size_t>(__builtin_popcount(b));
  EXPECT_EQ(set_bits, d * static_cast<size_t>(bits));
}

INSTANTIATE_TEST_SUITE_P(AllBitWidths, PackingRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

}  // namespace
}  // namespace blink
