// BENCH_report.json (ISSUE 6): the minimal JSON layer, the schema-versioned
// report serialization, the MeasureFlavor protocol, and the CI baseline
// gate. The golden-schema test pins the version-1 key set — renaming or
// dropping a key is a schema bump, not a refactor.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "api/index.h"
#include "eval/report.h"
#include "testutil.h"

namespace blink {
namespace {

using testutil::Fixture;

// --- the JSON layer -------------------------------------------------------

TEST(Json, DumpParseRoundTrip) {
  json::Object inner;
  inner["pi"] = 3.25;
  inner["yes"] = true;
  inner["no"] = false;
  inner["nothing"] = nullptr;
  json::Array list;
  list.push_back(1);
  list.push_back("two");
  list.push_back(json::Object{});
  json::Object root;
  root["inner"] = std::move(inner);
  root["list"] = std::move(list);
  root["name"] = "escaped \"quotes\" and\nnewlines\t";

  const std::string text = json::Dump(json::Value(std::move(root)));
  Result<json::Value> back = json::Parse(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  const json::Value& v = back.value();
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.Find("inner")->Find("pi")->as_number(), 3.25);
  EXPECT_TRUE(v.Find("inner")->Find("yes")->as_bool());
  EXPECT_FALSE(v.Find("inner")->Find("no")->as_bool());
  EXPECT_TRUE(v.Find("inner")->Find("nothing")->is_null());
  ASSERT_EQ(v.Find("list")->as_array().size(), 3u);
  EXPECT_EQ(v.Find("list")->as_array()[1].as_string(), "two");
  EXPECT_EQ(v.Find("name")->as_string(), "escaped \"quotes\" and\nnewlines\t");
  // Dump is deterministic (std::map key order), so round-tripping the text
  // reproduces it byte for byte — the property that keeps baselines
  // diffable.
  EXPECT_EQ(json::Dump(back.value()), text);
}

TEST(Json, NonFiniteNumbersSerializeAsZero) {
  json::Object o;
  o["a"] = std::nan("");
  o["b"] = std::numeric_limits<double>::infinity();
  const std::string text = json::Dump(json::Value(std::move(o)));
  EXPECT_EQ(text.find("nan"), std::string::npos) << text;
  EXPECT_EQ(text.find("inf"), std::string::npos) << text;
  Result<json::Value> back = json::Parse(text);
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back.value().Find("a")->as_number(), 0.0);
  EXPECT_DOUBLE_EQ(back.value().Find("b")->as_number(), 0.0);
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_FALSE(json::Parse("").ok());
  EXPECT_FALSE(json::Parse("{").ok());
  EXPECT_FALSE(json::Parse("[1, 2,]").ok());
  EXPECT_FALSE(json::Parse("{\"a\": tru}").ok());
  EXPECT_FALSE(json::Parse("{} trailing").ok());
  EXPECT_FALSE(json::Parse("\"unterminated").ok());
}

TEST(Json, FindOnNonObjectIsNull) {
  json::Value num(1.0);
  EXPECT_EQ(num.Find("x"), nullptr);
  json::Object o;
  o["present"] = 1;
  json::Value v(std::move(o));
  EXPECT_NE(v.Find("present"), nullptr);
  EXPECT_EQ(v.Find("absent"), nullptr);
}

// --- report serialization -------------------------------------------------

BenchReport TwoFlavorReport() {
  BenchReport r;
  r.dataset_name = "deep-like";
  r.n = 2000;
  r.nq = 200;
  r.dim = 96;
  r.metric = "l2";
  r.seed = 77;
  r.k = 10;
  r.target_recall = 0.9;
  r.threads = 2;
  BenchFlavorReport a;
  a.name = "static-lvq";
  a.build_seconds = 0.25;
  a.memory_bytes = 123456;
  a.calibrated = true;
  a.options.window = 24;
  a.options.rerank_window = 10;
  a.recall = 0.97;
  a.qps = 50000;
  a.p50_us = 40;
  a.p99_us = 120;
  a.dists_per_query = 800;
  BenchFlavorReport b;
  b.name = "ivf-pq";
  b.calibrated = false;
  b.calibration_error = "OutOfRange: target unreachable";
  b.recall = 0.65;
  b.qps = 90000;
  r.flavors = {a, b};
  return r;
}

TEST(BenchReportJson, RoundTripPreservesEveryField) {
  const BenchReport r = TwoFlavorReport();
  Result<BenchReport> back = ParseBenchReport(BenchReportToJson(r));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  const BenchReport& p = back.value();
  EXPECT_EQ(p.schema_version, kBenchReportSchemaVersion);
  EXPECT_EQ(p.generator, "blink_report");
  EXPECT_EQ(p.dataset_name, r.dataset_name);
  EXPECT_EQ(p.n, r.n);
  EXPECT_EQ(p.nq, r.nq);
  EXPECT_EQ(p.dim, r.dim);
  EXPECT_EQ(p.metric, r.metric);
  EXPECT_EQ(p.seed, r.seed);
  EXPECT_EQ(p.k, r.k);
  EXPECT_DOUBLE_EQ(p.target_recall, r.target_recall);
  EXPECT_EQ(p.threads, r.threads);
  ASSERT_EQ(p.flavors.size(), 2u);
  EXPECT_EQ(p.flavors[0].name, "static-lvq");
  EXPECT_TRUE(p.flavors[0].calibrated);
  EXPECT_EQ(p.flavors[0].options.window, 24u);
  EXPECT_EQ(p.flavors[0].options.rerank_window, 10u);
  EXPECT_DOUBLE_EQ(p.flavors[0].recall, 0.97);
  EXPECT_DOUBLE_EQ(p.flavors[0].p99_us, 120.0);
  EXPECT_FALSE(p.flavors[1].calibrated);
  EXPECT_EQ(p.flavors[1].calibration_error, "OutOfRange: target unreachable");
}

TEST(BenchReportJson, GoldenSchemaVersion1Keys) {
  const std::string text = BenchReportToJson(TwoFlavorReport());
  // The version-1 contract: these keys exist under these names. Consumers
  // (the CI gate, plotting scripts) key on them; renames bump the version.
  for (const char* key :
       {"\"schema_version\"", "\"generator\"", "\"dataset\"", "\"name\"",
        "\"n\"", "\"nq\"", "\"dim\"", "\"metric\"", "\"seed\"", "\"k\"",
        "\"target_recall\"", "\"threads\"", "\"flavors\"", "\"build_seconds\"",
        "\"memory_bytes\"", "\"calibrated\"", "\"options\"", "\"window\"",
        "\"nprobe_shards\"", "\"rerank\"", "\"rerank_window\"", "\"nprobe\"",
        "\"reorder_k\"", "\"recall\"", "\"qps\"", "\"p50_us\"", "\"p99_us\"",
        "\"dists_per_query\""}) {
    EXPECT_NE(text.find(key), std::string::npos) << key;
  }
  EXPECT_NE(text.find("\"schema_version\": 1"), std::string::npos);
  // Finite-numbers guarantee: no NaN/Inf spellings anywhere in the output.
  for (const char* bad : {"nan", "NaN", "inf", "Inf"}) {
    EXPECT_EQ(text.find(bad), std::string::npos) << bad;
  }
}

TEST(BenchReportJson, ParseRejectsWrongShape) {
  EXPECT_FALSE(ParseBenchReport("[]").ok());
  EXPECT_FALSE(ParseBenchReport("{}").ok());  // no schema_version
  EXPECT_FALSE(
      ParseBenchReport("{\"schema_version\": 1}").ok());  // no flavors
  EXPECT_FALSE(ParseBenchReport(
                   "{\"schema_version\": 1, \"flavors\": [{}]}")
                   .ok());  // flavor without a name
}

// --- MeasureFlavor --------------------------------------------------------

TEST(MeasureFlavor, CalibratesAndMeasuresARealIndex) {
  const Fixture f(MakeDeepLike(1200, 80, 77));
  IndexSpec spec;
  spec.kind = IndexKind::kStaticLvq;
  spec.metric = f.data.metric;
  spec.bits1 = 4;
  spec.bits2 = 8;
  spec.graph = f.bp;
  Result<Index> index = Build(spec, f.data.base);
  ASSERT_TRUE(index.ok());

  BenchRunConfig config;
  config.k = f.k;
  config.target_recall = 0.9;
  const BenchFlavorReport row = MeasureFlavor(
      "static-lvq", index.value(), /*build_seconds=*/0.1, f.data.queries,
      f.gt, config);
  EXPECT_EQ(row.name, "static-lvq");
  EXPECT_TRUE(row.calibrated) << row.calibration_error;
  // Calibration met 0.9 on the first half; the eval half is drawn from the
  // same distribution, so the tolerance only absorbs sampling drift.
  EXPECT_GE(row.recall, 0.9 - 0.05);
  EXPECT_GT(row.qps, 0.0);
  EXPECT_GT(row.p50_us, 0.0);
  EXPECT_GE(row.p99_us, row.p50_us);
  EXPECT_GT(row.dists_per_query, 0.0);
  EXPECT_GT(row.memory_bytes, 0.0);
}

TEST(MeasureFlavor, RecordsCalibrationFailureButStillMeasures) {
  const Fixture f(MakeDeepLike(800, 60, 77));
  IndexSpec spec;
  spec.kind = IndexKind::kStaticLvq;
  spec.metric = f.data.metric;
  spec.bits1 = 4;
  spec.bits2 = 0;  // one-level: no re-rank, imperfect ceiling
  spec.graph = f.bp;
  Result<Index> index = Build(spec, f.data.base);
  ASSERT_TRUE(index.ok());

  BenchRunConfig config;
  config.k = f.k;
  config.target_recall = 1.0;
  config.max_window = static_cast<uint32_t>(f.k);  // force OutOfRange
  const BenchFlavorReport row = MeasureFlavor(
      "static-lvq4", index.value(), 0.1, f.data.queries, f.gt, config);
  EXPECT_FALSE(row.calibrated);
  EXPECT_FALSE(row.calibration_error.empty());
  // The row still carries a real measurement (default options).
  EXPECT_GT(row.recall, 0.0);
  EXPECT_GT(row.qps, 0.0);
}

// --- the baseline gate ----------------------------------------------------

TEST(BaselineGate, PassesWhenNothingRegressed) {
  const BenchReport base = TwoFlavorReport();
  BenchReport cur = base;
  cur.flavors[0].recall += 0.005;  // noise-level improvement
  const GateResult g = CompareToBaseline(cur, base);
  EXPECT_TRUE(g.pass) << (g.failures.empty() ? "" : g.failures[0]);
  EXPECT_TRUE(g.failures.empty());
}

TEST(BaselineGate, RecallRegressionFails) {
  const BenchReport base = TwoFlavorReport();
  BenchReport cur = base;
  cur.flavors[1].recall = base.flavors[1].recall - 0.02;  // > 0.01 tolerance
  const GateResult g = CompareToBaseline(cur, base);
  EXPECT_FALSE(g.pass);
  ASSERT_EQ(g.failures.size(), 1u);
  EXPECT_NE(g.failures[0].find("ivf-pq"), std::string::npos);
}

TEST(BaselineGate, TargetRecallCapsTheFloor) {
  // A baseline machine that overshot the target (0.97 vs target 0.9) must
  // not tighten the gate: the floor is min(baseline, target) - tolerance.
  const BenchReport base = TwoFlavorReport();
  BenchReport cur = base;
  cur.flavors[0].recall = 0.895;  // above 0.9 - 0.01, far below 0.97 - 0.01
  EXPECT_TRUE(CompareToBaseline(cur, base).pass);
  cur.flavors[0].recall = 0.88;  // below even the capped floor
  EXPECT_FALSE(CompareToBaseline(cur, base).pass);
}

TEST(BaselineGate, MissingFlavorFailsNewFlavorWarns) {
  const BenchReport base = TwoFlavorReport();
  BenchReport cur = base;
  cur.flavors[1].name = "brand-new";  // ivf-pq gone, brand-new appeared
  const GateResult g = CompareToBaseline(cur, base);
  EXPECT_FALSE(g.pass);
  ASSERT_EQ(g.failures.size(), 1u);
  EXPECT_NE(g.failures[0].find("ivf-pq"), std::string::npos);
  bool warned_new = false;
  for (const std::string& w : g.warnings) {
    warned_new = warned_new || w.find("brand-new") != std::string::npos;
  }
  EXPECT_TRUE(warned_new);
}

TEST(BaselineGate, QpsDropOnlyWarns) {
  const BenchReport base = TwoFlavorReport();
  BenchReport cur = base;
  cur.flavors[0].qps = base.flavors[0].qps * 0.25;  // below the 0.5 ratio
  const GateResult g = CompareToBaseline(cur, base);
  EXPECT_TRUE(g.pass);
  EXPECT_FALSE(g.warnings.empty());
}

TEST(BaselineGate, SchemaMismatchFails) {
  const BenchReport base = TwoFlavorReport();
  BenchReport cur = base;
  cur.schema_version = kBenchReportSchemaVersion + 1;
  const GateResult g = CompareToBaseline(cur, base);
  EXPECT_FALSE(g.pass);
  ASSERT_FALSE(g.failures.empty());
  EXPECT_NE(g.failures[0].find("schema"), std::string::npos);
}

}  // namespace
}  // namespace blink
