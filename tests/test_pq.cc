// Unit tests for Product Quantization.
#include "baselines/pq.h"

#include <cmath>
#include <gtest/gtest.h>

#include "data/groundtruth.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "simd/distance.h"

namespace blink {
namespace {

TEST(PqCodec, SegmentBoundariesCoverAllDims) {
  Dataset data = MakeDeepLike(500, 5, 40);
  PqParams p;
  p.num_segments = 7;  // 96 % 7 != 0: remainder spread over first segments
  PqCodec c = PqCodec::Train(data.base, p);
  EXPECT_EQ(c.offset(0), 0u);
  size_t total = 0;
  for (size_t s = 0; s < c.num_segments(); ++s) total += c.segment_dim(s);
  EXPECT_EQ(total, 96u);
  EXPECT_EQ(c.offset(c.num_segments() - 1) + c.segment_dim(c.num_segments() - 1),
            96u);
}

TEST(PqCodec, AdcEqualsDecodedL2Distance) {
  // ADC with an L2 table is exactly ||q - decode(codes)||^2.
  Dataset data = MakeDeepLike(800, 10, 41);
  PqParams p;
  p.num_segments = 12;
  PqCodec c = PqCodec::Train(data.base, p);
  std::vector<uint8_t> codes(c.code_bytes());
  std::vector<float> dec(96), lut(c.num_segments() * c.ksub());
  for (size_t qi = 0; qi < 10; ++qi) {
    const float* q = data.queries.row(qi);
    c.BuildLut(q, Metric::kL2, lut.data());
    for (size_t i = 0; i < 20; ++i) {
      c.Encode(data.base.row(i), codes.data());
      c.Decode(codes.data(), dec.data());
      const float adc = c.AdcDistance(lut.data(), codes.data());
      const float direct = simd::L2Sqr(q, dec.data(), 96);
      EXPECT_NEAR(adc, direct, 1e-3f * std::max(1.0f, direct));
    }
  }
}

TEST(PqCodec, AdcEqualsDecodedIpDistance) {
  Dataset data = MakeDprLike(400, 5, 42);
  PqParams p;
  p.num_segments = 16;
  PqCodec c = PqCodec::Train(data.base, p);
  std::vector<uint8_t> codes(c.code_bytes());
  std::vector<float> dec(768), lut(c.num_segments() * c.ksub());
  const float* q = data.queries.row(0);
  c.BuildLut(q, Metric::kInnerProduct, lut.data());
  for (size_t i = 0; i < 10; ++i) {
    c.Encode(data.base.row(i), codes.data());
    c.Decode(codes.data(), dec.data());
    const float adc = c.AdcDistance(lut.data(), codes.data());
    const float direct = simd::IpDist(q, dec.data(), 768);
    EXPECT_NEAR(adc, direct, 1e-2f);
  }
}

TEST(PqCodec, ReconstructionBeatsDatasetVariance) {
  // A trained codebook must explain most of the variance.
  Dataset data = MakeDeepLike(2000, 5, 43);
  PqParams p;
  p.num_segments = 24;
  PqCodec c = PqCodec::Train(data.base, p);
  std::vector<uint8_t> codes(c.code_bytes());
  std::vector<float> dec(96);
  double err = 0.0, var = 0.0;
  std::vector<double> mean(96, 0.0);
  for (size_t i = 0; i < 2000; ++i) {
    for (size_t j = 0; j < 96; ++j) mean[j] += data.base(i, j);
  }
  for (auto& m : mean) m /= 2000.0;
  for (size_t i = 0; i < 500; ++i) {
    c.Encode(data.base.row(i), codes.data());
    c.Decode(codes.data(), dec.data());
    for (size_t j = 0; j < 96; ++j) {
      err += std::pow(dec[j] - data.base(i, j), 2);
      var += std::pow(data.base(i, j) - mean[j], 2);
    }
  }
  EXPECT_LT(err, var * 0.25);
}

TEST(PqCodec, MoreSegmentsReduceError) {
  Dataset data = MakeDeepLike(1500, 5, 44);
  auto mse = [&](size_t m) {
    PqParams p;
    p.num_segments = m;
    PqCodec c = PqCodec::Train(data.base, p);
    std::vector<uint8_t> codes(c.code_bytes());
    std::vector<float> dec(96);
    double err = 0.0;
    for (size_t i = 0; i < 300; ++i) {
      c.Encode(data.base.row(i), codes.data());
      c.Decode(codes.data(), dec.data());
      for (size_t j = 0; j < 96; ++j) {
        err += std::pow(dec[j] - data.base(i, j), 2);
      }
    }
    return err;
  };
  EXPECT_LT(mse(24), mse(6));
}

TEST(PqCodec, CompressionRatioFormula) {
  Dataset data = MakeDeepLike(200, 5, 45);
  PqParams p;
  p.num_segments = 8;
  PqCodec c = PqCodec::Train(data.base, p);
  // 96 floats (384 bytes) -> 8 bytes of codes: CR = 48.
  EXPECT_DOUBLE_EQ(c.compression_ratio(), 48.0);
}

TEST(PqDataset, ExhaustiveSearchRecallReasonable) {
  Dataset data = MakeDeepLike(3000, 50, 46);
  const size_t k = 10;
  Matrix<uint32_t> gt = ComputeGroundTruth(data.base, data.queries, k,
                                           data.metric);
  PqParams p;
  p.num_segments = 48;  // 2 dims per segment: high-quality PQ
  PqCodec c = PqCodec::Train(data.base, p);
  PqDataset ds(std::move(c), data.base);
  Matrix<uint32_t> res = ds.ExhaustiveSearch(data.queries, k, data.metric);
  EXPECT_GE(MeanRecallAtK(res, gt, k), 0.7);
}

TEST(PqStorage, SatisfiesStorageConceptForGraphs) {
  Dataset data = MakeDeepLike(500, 5, 47);
  PqParams p;
  p.num_segments = 96;  // the paper's PQ_M96 setting (1 dim per segment)
  PqStorage storage(data.base, data.metric, p);
  EXPECT_EQ(storage.size(), 500u);
  EXPECT_EQ(storage.dim(), 96u);
  PqStorage::Query q;
  storage.PrepareQuery(data.queries.row(0), &q);
  std::vector<float> dec(96);
  storage.DecodeVector(3, dec.data());
  const float adc = storage.Distance(q, 3);
  const float direct = simd::L2Sqr(data.queries.row(0), dec.data(), 96);
  EXPECT_NEAR(adc, direct, 1e-3f * std::max(1.0f, direct));
}

}  // namespace
}  // namespace blink
