// Unit tests for the HNSW baseline.
#include "baselines/hnsw.h"

#include <gtest/gtest.h>

#include "data/groundtruth.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

namespace blink {
namespace {

struct HnswFixture {
  Dataset data = MakeDeepLike(3000, 50, 70);
  Matrix<uint32_t> gt =
      ComputeGroundTruth(data.base, data.queries, 10, data.metric);

  double Recall(const HnswIndex& idx, uint32_t ef) const {
    RuntimeParams rp;
    rp.window = ef;
    Matrix<uint32_t> ids(data.queries.rows(), 10);
    idx.SearchBatch(data.queries, 10, rp, ids.data());
    return MeanRecallAtK(ids, gt, 10);
  }
};

TEST(Hnsw, HighRecallAtModerateEf) {
  HnswFixture f;
  HnswParams p;
  p.M = 16;
  p.ef_construction = 100;
  HnswIndex idx(f.data.base, f.data.metric, p);
  EXPECT_GE(f.Recall(idx, 64), 0.9);
}

TEST(Hnsw, RecallIncreasesWithEf) {
  HnswFixture f;
  HnswParams p;
  p.M = 12;
  p.ef_construction = 80;
  HnswIndex idx(f.data.base, f.data.metric, p);
  const double r10 = f.Recall(idx, 10);
  const double r128 = f.Recall(idx, 128);
  EXPECT_GT(r128, r10);
  EXPECT_GE(r128, 0.9);
}

TEST(Hnsw, LayerZeroDegreeBounded) {
  HnswFixture f;
  HnswParams p;
  p.M = 8;
  p.ef_construction = 60;
  HnswIndex idx(f.data.base, f.data.metric, p);
  // Average layer-0 degree must be positive and <= 2M.
  const double avg = idx.AverageDegree(0);
  EXPECT_GT(avg, 1.0);
  EXPECT_LE(avg, 16.0);
}

TEST(Hnsw, HierarchyExists) {
  HnswFixture f;
  HnswParams p;
  p.M = 8;
  p.ef_construction = 60;
  HnswIndex idx(f.data.base, f.data.metric, p);
  // With n = 3000 and M = 8, several layers are expected (ln(3000)/ln(8)
  // ~ 3.9); at least one upper layer must exist.
  EXPECT_GE(idx.max_level(), 1);
  EXPECT_LT(idx.entry_point(), 3000u);
}

TEST(Hnsw, DeterministicGivenSeed) {
  Dataset data = MakeDeepLike(800, 10, 71);
  HnswParams p;
  p.M = 8;
  p.ef_construction = 50;
  HnswIndex a(data.base, data.metric, p);
  HnswIndex b(data.base, data.metric, p);
  RuntimeParams rp;
  rp.window = 32;
  Matrix<uint32_t> ia(10, 10), ib(10, 10);
  a.SearchBatch(data.queries, 10, rp, ia.data());
  b.SearchBatch(data.queries, 10, rp, ib.data());
  for (size_t i = 0; i < ia.size(); ++i) {
    EXPECT_EQ(ia.data()[i], ib.data()[i]);
  }
}

TEST(Hnsw, InnerProductMetric) {
  Dataset data = MakeDprLike(1200, 30, 72);
  Matrix<uint32_t> gt =
      ComputeGroundTruth(data.base, data.queries, 10, data.metric);
  HnswParams p;
  p.M = 16;
  p.ef_construction = 100;
  HnswIndex idx(data.base, data.metric, p);
  RuntimeParams rp;
  rp.window = 96;
  Matrix<uint32_t> ids(data.queries.rows(), 10);
  idx.SearchBatch(data.queries, 10, rp, ids.data());
  EXPECT_GE(MeanRecallAtK(ids, gt, 10), 0.8);
}

TEST(Hnsw, ThreadedSearchMatchesSerial) {
  HnswFixture f;
  HnswParams p;
  p.M = 8;
  p.ef_construction = 50;
  HnswIndex idx(f.data.base, f.data.metric, p);
  RuntimeParams rp;
  rp.window = 48;
  Matrix<uint32_t> serial(f.data.queries.rows(), 10);
  Matrix<uint32_t> threaded(f.data.queries.rows(), 10);
  idx.SearchBatch(f.data.queries, 10, rp, serial.data(), nullptr);
  ThreadPool pool(3);
  idx.SearchBatch(f.data.queries, 10, rp, threaded.data(), &pool);
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial.data()[i], threaded.data()[i]);
  }
}

TEST(Hnsw, TinyDataset) {
  Dataset data = MakeDeepLike(3, 2, 73);
  HnswParams p;
  HnswIndex idx(data.base, data.metric, p);
  RuntimeParams rp;
  rp.window = 4;
  Matrix<uint32_t> ids(2, 3);
  idx.SearchBatch(data.queries, 3, rp, ids.data());
  for (size_t i = 0; i < ids.size(); ++i) EXPECT_LT(ids.data()[i], 3u);
}

}  // namespace
}  // namespace blink
