// The public facade (DESIGN.md D10): IndexSpec validation, Build over
// every flavor, Save -> Open round trips with byte-identical results and
// no re-supplied configuration, the capability model, mutation
// forwarding, serving through Index::Serve, and the name -> factory
// registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "api/index.h"
#include "api/registry.h"
#include "api/spec.h"
#include "eval/harness.h"
#include "graph/serialize.h"
#include "serve/engine.h"
#include "testutil.h"

namespace blink {
namespace {

using testutil::ExpectSameIds;
using testutil::Fixture;
using testutil::TempPathTest;

// One shared fixture: n=3000 deep-like vectors, 150 queries, seed 77 (the
// recall-floor suite's dataset, so floors here are comparable).
const Fixture& SharedFixture() {
  static const Fixture* f = new Fixture(MakeDeepLike(3000, 150, 77));
  return *f;
}

IndexSpec SpecFor(IndexKind kind, const Fixture& f) {
  IndexSpec spec;
  spec.kind = kind;
  spec.metric = f.data.metric;
  spec.graph = f.bp;
  spec.partition.num_shards = 4;
  spec.dynamic.initial_capacity = f.data.base.rows();
  return spec;
}

const IndexKind kAllKinds[] = {
    IndexKind::kStaticF32,  IndexKind::kStaticF16,  IndexKind::kStaticLvq,
    IndexKind::kSharded,    IndexKind::kDynamicF32, IndexKind::kDynamicLvq,
};

// --- spec ------------------------------------------------------------------

TEST(IndexSpec, ValidatesAndResolves) {
  IndexSpec spec;
  EXPECT_TRUE(spec.Validate().ok());

  spec.graph.graph_max_degree = 0;
  EXPECT_FALSE(spec.Validate().ok());
  spec.graph.graph_max_degree = 32;

  spec.kind = IndexKind::kStaticLvq;
  spec.bits1 = 0;
  EXPECT_FALSE(spec.Validate().ok());
  spec.bits1 = 17;
  EXPECT_FALSE(spec.Validate().ok());
  spec.bits1 = 8;
  spec.bits2 = -1;
  EXPECT_FALSE(spec.Validate().ok());
  spec.bits2 = 0;

  spec.kind = IndexKind::kSharded;
  spec.partition.num_shards = 0;
  EXPECT_FALSE(spec.Validate().ok());
  spec.partition.num_shards = 4;
  EXPECT_TRUE(spec.Validate().ok());

  // Resolution fills the deferred defaults.
  IndexSpec defaulted;
  defaulted.graph.graph_max_degree = 24;
  defaulted.graph.window_size = 0;
  defaulted.graph.alpha = 0.0f;
  defaulted.metric = Metric::kInnerProduct;
  const IndexSpec r = defaulted.Resolved();
  EXPECT_EQ(r.graph.window_size, 48u);
  EXPECT_FLOAT_EQ(r.graph.alpha, 0.95f);
}

TEST(IndexSpec, KindNamesRoundTrip) {
  for (IndexKind kind : kAllKinds) {
    auto parsed = ParseIndexKind(KindName(kind));
    ASSERT_TRUE(parsed.ok()) << KindName(kind);
    EXPECT_EQ(parsed.value(), kind);
  }
  EXPECT_FALSE(ParseIndexKind("flat").ok());
  EXPECT_FALSE(ParseIndexKind("").ok());
}

TEST(BuildApi, RejectsInvalidSpec) {
  const Fixture& f = SharedFixture();
  IndexSpec spec = SpecFor(IndexKind::kStaticLvq, f);
  spec.bits1 = 99;
  EXPECT_FALSE(Build(spec, f.data.base).ok());
}

// --- build + capabilities --------------------------------------------------

TEST(BuildApi, EveryKindBuildsAndSearches) {
  const Fixture& f = SharedFixture();
  for (IndexKind kind : kAllKinds) {
    auto built = Build(SpecFor(kind, f), f.data.base);
    ASSERT_TRUE(built.ok()) << KindName(kind);
    Index& idx = built.value();
    EXPECT_EQ(idx.kind(), kind);
    EXPECT_EQ(idx.size(), f.data.base.rows()) << KindName(kind);
    EXPECT_EQ(idx.dim(), f.data.base.cols());
    EXPECT_GT(idx.memory_bytes(), 0u);
    EXPECT_TRUE(idx.self_described());
    EXPECT_TRUE(idx.has(kCapSearch | kCapSave)) << KindName(kind);
    EXPECT_EQ(idx.has(kCapInsert), IsDynamicKind(kind)) << KindName(kind);
    EXPECT_EQ(idx.has(kCapShardProbe), kind == IndexKind::kSharded);

    RuntimeParams p;
    p.window = 64;
    const double recall =
        testutil::RecallOf(idx.AsSearchIndex(), f, p);
    EXPECT_GE(recall, 0.9) << KindName(kind);
  }
}

TEST(BuildApi, MutationForwardsOnlyToDynamicKinds) {
  const Fixture& f = SharedFixture();
  auto built = Build(SpecFor(IndexKind::kStaticLvq, f), f.data.base);
  ASSERT_TRUE(built.ok());
  EXPECT_FALSE(built.value().Insert(f.data.base.row(0)).ok());
  EXPECT_FALSE(built.value().Delete(0).ok());
  EXPECT_FALSE(built.value().Consolidate().ok());

  auto dyn = Build(SpecFor(IndexKind::kDynamicLvq, f), f.data.base);
  ASSERT_TRUE(dyn.ok());
  const size_t before = dyn.value().size();
  auto id = dyn.value().Insert(f.data.base.row(0));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(dyn.value().size(), before + 1);
  EXPECT_TRUE(dyn.value().Delete(id.value()).ok());
  EXPECT_TRUE(dyn.value().Consolidate().ok());
  EXPECT_EQ(dyn.value().size(), before);
}

// --- the acceptance recall floors through the facade -----------------------

TEST(BuildApi, FacadeRecallFloors) {
  const Fixture& f = SharedFixture();
  RuntimeParams p;
  p.window = 64;
  p.nprobe_shards = 2;
  for (IndexKind kind : {IndexKind::kStaticLvq, IndexKind::kSharded,
                         IndexKind::kDynamicLvq}) {
    auto built = Build(SpecFor(kind, f), f.data.base);
    ASSERT_TRUE(built.ok()) << KindName(kind);
    const double recall =
        testutil::RecallOf(built.value().AsSearchIndex(), f, p);
    EXPECT_GE(recall, 0.95) << KindName(kind) << " facade recall floor";
  }
}

// --- save -> open round trips ----------------------------------------------

class ApiRoundTrip : public TempPathTest {};

TEST_F(ApiRoundTrip, EveryKindReopensIdentically) {
  const Fixture& f = SharedFixture();
  RuntimeParams p;
  p.window = 48;
  for (IndexKind kind : kAllKinds) {
    SCOPED_TRACE(KindName(kind));
    auto built = Build(SpecFor(kind, f), f.data.base);
    ASSERT_TRUE(built.ok());
    const std::string path =
        kind == IndexKind::kSharded
            ? DirPath(std::string("rt_") + KindName(kind))
            : Path(std::string("rt_") + KindName(kind));
    if (kind == IndexKind::kStaticF32 || kind == IndexKind::kStaticF16 ||
        kind == IndexKind::kStaticLvq) {
      // Static bundles expand to two files; register them for cleanup.
      (void)Path(std::string("rt_") + KindName(kind) + ".graph");
      (void)Path(std::string("rt_") + KindName(kind) + ".vecs");
    }
    ASSERT_TRUE(built.value().Save(path).ok());

    // No metric, no params: the artifact knows.
    auto reopened = Open(path);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    Index& back = reopened.value();
    EXPECT_TRUE(back.self_described());
    EXPECT_EQ(back.kind(), kind);
    EXPECT_EQ(back.metric(), f.data.metric);
    EXPECT_EQ(back.size(), built.value().size());
    EXPECT_EQ(back.dim(), built.value().dim());
    EXPECT_EQ(back.spec().graph.graph_max_degree, f.bp.graph_max_degree);
    EXPECT_EQ(back.capabilities(), built.value().capabilities());

    const auto before = testutil::SearchIds(built.value().AsSearchIndex(),
                                            f.data.queries, f.k, p);
    const auto after =
        testutil::SearchIds(back.AsSearchIndex(), f.data.queries, f.k, p);
    ExpectSameIds(before, after, KindName(kind));
  }
}

TEST_F(ApiRoundTrip, ReopenedSpecPreservesLvqConfig) {
  const Fixture& f = SharedFixture();
  IndexSpec spec = SpecFor(IndexKind::kStaticLvq, f);
  spec.bits1 = 4;
  spec.bits2 = 8;
  auto built = Build(spec, f.data.base);
  ASSERT_TRUE(built.ok());
  const std::string prefix = Path("lvq48");
  (void)Path("lvq48.graph");
  (void)Path("lvq48.vecs");
  ASSERT_TRUE(built.value().Save(prefix).ok());
  auto back = Open(prefix);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().spec().bits1, 4);
  EXPECT_EQ(back.value().spec().bits2, 8);
  EXPECT_TRUE(back.value().has(kCapRerank));
}

TEST_F(ApiRoundTrip, DynamicReopenContinuesInserting) {
  const Fixture& f = SharedFixture();
  auto built = Build(SpecFor(IndexKind::kDynamicLvq, f), f.data.base);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built.value().Delete(5).ok());
  ASSERT_TRUE(built.value().Consolidate().ok());
  const std::string path = Path("dyn_continue");
  ASSERT_TRUE(built.value().Save(path).ok());

  auto back = Open(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  // Both sides insert the same vector next: the recycled id must match
  // (free-slot order is serialized state).
  auto id_orig = built.value().Insert(f.data.base.row(7));
  auto id_back = back.value().Insert(f.data.base.row(7));
  ASSERT_TRUE(id_orig.ok());
  ASSERT_TRUE(id_back.ok());
  EXPECT_EQ(id_orig.value(), id_back.value());
}

// --- serving through the facade --------------------------------------------

TEST(ApiServe, EngineServesFacadeIndex) {
  const Fixture& f = SharedFixture();
  auto built = Build(SpecFor(IndexKind::kStaticLvq, f), f.data.base);
  ASSERT_TRUE(built.ok());
  ServingOptions so;
  so.num_threads = 2;
  auto served = built.value().Serve(so);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  auto engine = std::move(served).value();
  ASSERT_NE(engine, nullptr);
  RuntimeParams p;
  p.window = 64;
  Matrix<uint32_t> ids(f.data.queries.rows(), f.k);
  engine->SearchBatch(f.data.queries, f.k, p, ids.data());
  EXPECT_GE(MeanRecallAtK(ids, f.gt, f.k), 0.95);
}

// --- sharded stats through the facade (SearchBatchEx satellite) ------------

TEST(ApiSearch, ShardedSearchBatchExSurvivesMerge) {
  const Fixture& f = SharedFixture();
  auto built = Build(SpecFor(IndexKind::kSharded, f), f.data.base);
  ASSERT_TRUE(built.ok());
  const size_t nq = f.data.queries.rows();
  Matrix<uint32_t> ids(nq, f.k);
  MatrixF dists(nq, f.k);
  BatchStats stats;
  RuntimeParams p;
  p.window = 64;
  built.value().SearchBatchEx(f.data.queries, f.k, p, ids.data(),
                              dists.data(), &stats);
  for (size_t i = 0; i < dists.size(); ++i) {
    EXPECT_FALSE(std::isnan(dists.data()[i])) << i;
  }
  EXPECT_GT(stats.distance_computations, 0u);
  EXPECT_GT(stats.hops, 0u);
}

// --- registry ---------------------------------------------------------------

TEST(Registry, BuildsFacadeKindsByName) {
  const Fixture& f = SharedFixture();
  IndexSpec spec = SpecFor(IndexKind::kStaticF32, f);  // kind is overridden
  auto idx = BuildNamed("static-lvq", spec, f.data.base);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx.value().kind(), IndexKind::kStaticLvq);
  EXPECT_TRUE(idx.value().has(kCapSave));
}

TEST(Registry, BaselinesComeBackSearchOnly) {
  const Fixture& f = SharedFixture();
  const IndexSpec spec = SpecFor(IndexKind::kStaticF32, f);
  RuntimeParams graph_params;
  graph_params.window = 64;
  RuntimeParams probe_params;
  probe_params.nprobe = 16;
  probe_params.reorder_k = 50;
  struct Case {
    const char* name;
    RuntimeParams params;
    double floor;
  };
  for (const Case& c : {Case{"hnsw", graph_params, 0.9},
                        Case{"ivf-pq", probe_params, 0.5},
                        Case{"scann", probe_params, 0.5},
                        Case{"og-global", graph_params, 0.5}}) {
    auto idx = BuildNamed(c.name, spec, f.data.base);
    ASSERT_TRUE(idx.ok()) << c.name;
    EXPECT_TRUE(idx.value().has(kCapSearch)) << c.name;
    EXPECT_FALSE(idx.value().has(kCapSave)) << c.name;
    EXPECT_FALSE(idx.value().Save("/tmp/never_written").ok()) << c.name;
    EXPECT_FALSE(idx.value().Insert(f.data.base.row(0)).ok()) << c.name;
    const double recall =
        testutil::RecallOf(idx.value().AsSearchIndex(), f, c.params);
    EXPECT_GE(recall, c.floor) << c.name;
  }
}

TEST(Registry, SweepsARegistryIndexThroughTheHarness) {
  const Fixture& f = SharedFixture();
  auto idx = BuildNamed("static-lvq", SpecFor(IndexKind::kStaticLvq, f),
                        f.data.base);
  ASSERT_TRUE(idx.ok());
  HarnessOptions opts;
  opts.k = f.k;
  opts.best_of = 1;
  const auto settings = WindowSweep({32, 64});
  const auto points = RunSweep(idx.value().AsSearchIndex(), f.data.queries,
                               f.gt, settings, opts);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_GE(points[1].recall, 0.95);
}

TEST(Registry, UnknownNameListsRegistered) {
  const Fixture& f = SharedFixture();
  auto idx = BuildNamed("nope", IndexSpec{}, f.data.base);
  ASSERT_FALSE(idx.ok());
  EXPECT_NE(idx.status().message().find("static-lvq"), std::string::npos);
}

TEST(Registry, RegisterRejectsDuplicatesAndAcceptsNew) {
  EXPECT_FALSE(RegisterIndexFactory(
      "static-lvq", [](const IndexSpec&, MatrixViewF, ThreadPool*) {
        return Result<Index>(Status::Internal("never"));
      }));
  const std::string name = "test-custom-factory";
  EXPECT_TRUE(RegisterIndexFactory(
      name, [](const IndexSpec& spec, MatrixViewF data, ThreadPool* pool) {
        IndexSpec s = spec;
        s.kind = IndexKind::kStaticF32;
        return Build(s, data, pool);
      }));
  const auto names = RegisteredIndexNames();
  EXPECT_NE(std::find(names.begin(), names.end(), name), names.end());
  const Fixture& f = SharedFixture();
  auto idx = BuildNamed(name, SpecFor(IndexKind::kStaticLvq, f), f.data.base);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx.value().kind(), IndexKind::kStaticF32);
}

}  // namespace
}  // namespace blink
