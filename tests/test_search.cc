// Unit tests for the greedy searcher over hand-constructed graphs, where
// the expected traversal is known exactly.
#include "graph/search.h"

#include <gtest/gtest.h>

#include "graph/storage.h"
#include "util/matrix.h"

namespace blink {
namespace {

/// n points on a line: point i at x = i (d = 2, second coord 0).
FloatStorage LineStorage(size_t n) {
  MatrixF m(n, 2);
  for (size_t i = 0; i < n; ++i) m(i, 0) = static_cast<float>(i);
  return FloatStorage(m, Metric::kL2, /*use_huge_pages=*/false);
}

/// Chain graph: i <-> i+1.
FlatGraph ChainGraph(size_t n) {
  FlatGraph g(n, 2, false);
  for (size_t i = 0; i < n; ++i) {
    std::vector<uint32_t> nbrs;
    if (i > 0) nbrs.push_back(static_cast<uint32_t>(i - 1));
    if (i + 1 < n) nbrs.push_back(static_cast<uint32_t>(i + 1));
    g.SetNeighbors(i, nbrs.data(), static_cast<uint32_t>(nbrs.size()));
  }
  return g;
}

TEST(GreedySearch, WalksChainToTheTarget) {
  const size_t n = 50;
  FloatStorage storage = LineStorage(n);
  FlatGraph graph = ChainGraph(n);
  GreedySearcher<FloatStorage> searcher(&graph, &storage);
  SearchParams p;
  p.window = 4;
  SearchResult res;
  const float query[2] = {42.2f, 0.0f};
  searcher.Search(query, 3, /*entry=*/0, p, &res);
  ASSERT_EQ(res.ids.size(), 3u);
  EXPECT_EQ(res.ids[0], 42u);
  EXPECT_EQ(res.ids[1], 43u);  // |42.2-43| < |42.2-41|
  EXPECT_EQ(res.ids[2], 41u);
  // Walking 0 -> 42 takes at least 42 expansions.
  EXPECT_GE(res.hops, 42u);
}

TEST(GreedySearch, WindowOneStillConverges) {
  const size_t n = 20;
  FloatStorage storage = LineStorage(n);
  FlatGraph graph = ChainGraph(n);
  GreedySearcher<FloatStorage> searcher(&graph, &storage);
  SearchParams p;
  p.window = 1;
  SearchResult res;
  const float query[2] = {15.0f, 0.0f};
  searcher.Search(query, 1, 0, p, &res);
  ASSERT_EQ(res.ids.size(), 1u);
  EXPECT_EQ(res.ids[0], 15u);
}

TEST(GreedySearch, IsolatedEntryReturnsOnlyItself) {
  FloatStorage storage = LineStorage(5);
  FlatGraph graph(5, 2, false);  // no edges at all
  GreedySearcher<FloatStorage> searcher(&graph, &storage);
  SearchParams p;
  p.window = 8;
  SearchResult res;
  const float query[2] = {3.0f, 0.0f};
  searcher.Search(query, 5, /*entry=*/1, p, &res);
  ASSERT_EQ(res.ids.size(), 1u);
  EXPECT_EQ(res.ids[0], 1u);
  EXPECT_EQ(res.hops, 1u);
}

TEST(GreedySearch, VisitedSetDoesNotChangeChainResults) {
  const size_t n = 40;
  FloatStorage storage = LineStorage(n);
  FlatGraph graph = ChainGraph(n);
  GreedySearcher<FloatStorage> searcher(&graph, &storage);
  SearchParams a, b;
  a.window = b.window = 6;
  a.use_visited_set = false;
  b.use_visited_set = true;
  SearchResult ra, rb;
  const float query[2] = {29.7f, 0.0f};
  searcher.Search(query, 4, 0, a, &ra);
  searcher.Search(query, 4, 0, b, &rb);
  ASSERT_EQ(ra.ids, rb.ids);
}

TEST(GreedySearch, DistanceCountsAreConsistent) {
  const size_t n = 30;
  FloatStorage storage = LineStorage(n);
  FlatGraph graph = ChainGraph(n);
  GreedySearcher<FloatStorage> searcher(&graph, &storage);
  SearchParams p;
  p.window = 4;
  p.use_visited_set = true;
  SearchResult res;
  const float query[2] = {25.0f, 0.0f};
  searcher.Search(query, 2, 0, p, &res);
  // With a visited set each node is evaluated at most once.
  EXPECT_LE(res.distance_computations, n);
  EXPECT_GE(res.distance_computations, 25u);
}

TEST(GreedySearch, CycleGraphTerminates) {
  // A pure cycle with the query far outside: the searcher must not loop.
  const size_t n = 16;
  FloatStorage storage = LineStorage(n);
  FlatGraph g(n, 2, false);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t nbrs[2] = {static_cast<uint32_t>((i + 1) % n),
                              static_cast<uint32_t>((i + n - 1) % n)};
    g.SetNeighbors(i, nbrs, 2);
  }
  GreedySearcher<FloatStorage> searcher(&g, &storage);
  SearchParams p;
  p.window = 3;
  p.use_visited_set = false;  // worst case for termination
  SearchResult res;
  const float query[2] = {-100.0f, 0.0f};
  searcher.Search(query, 3, 5, p, &res);
  EXPECT_EQ(res.ids.size(), 3u);
  EXPECT_EQ(res.ids[0], 0u);  // nearest to -100 on the line
}

TEST(GreedySearch, KClampedToBufferContents) {
  FloatStorage storage = LineStorage(3);
  FlatGraph graph = ChainGraph(3);
  GreedySearcher<FloatStorage> searcher(&graph, &storage);
  SearchParams p;
  p.window = 8;
  SearchResult res;
  const float query[2] = {1.0f, 0.0f};
  searcher.Search(query, 10, 0, p, &res);  // k > n
  EXPECT_EQ(res.ids.size(), 3u);
}

}  // namespace
}  // namespace blink
