// Unit tests for the epoch-based read guard (util/epoch.h). These run under
// the TSan CI job: the protocol's ordering claims are part of the contract.
#include "util/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace blink {
namespace {

TEST(Epoch, ReadersDoNotBlockEachOther) {
  EpochGuard guard;
  std::atomic<int> active{0};
  std::atomic<int> max_active{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        EpochGuard::ReadLock lock(&guard);
        const int a = active.fetch_add(1) + 1;
        int m = max_active.load();
        while (a > m && !max_active.compare_exchange_weak(m, a)) {
        }
        active.fetch_sub(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  // With 8 looping readers, at least two must have overlapped at least once
  // on any real scheduler; the point of the assertion is that overlap is
  // *possible* (no serialization).
  EXPECT_GE(max_active.load(), 1);
}

TEST(Epoch, QuiesceWaitsForPriorReaders) {
  EpochGuard guard;
  std::atomic<bool> reader_in{false};
  std::atomic<bool> release_reader{false};
  std::atomic<bool> reader_done{false};
  std::thread reader([&] {
    EpochGuard::ReadLock lock(&guard);
    reader_in.store(true);
    while (!release_reader.load()) std::this_thread::yield();
    reader_done.store(true);
  });
  while (!reader_in.load()) std::this_thread::yield();
  std::thread writer([&] { guard.Quiesce(); });
  // The writer cannot finish while the pre-existing reader is inside.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release_reader.store(true);
  writer.join();
  EXPECT_TRUE(reader_done.load());  // quiesce returned only after the exit
  reader.join();
}

TEST(Epoch, QuiesceDoesNotWaitForLaterReaders) {
  EpochGuard guard;
  // A reader that enters *after* Quiesce starts must not deadlock it: the
  // reader's stamp is >= the advanced epoch. Serial version: enter, exit,
  // quiesce, enter again while quiescing is impossible serially — so just
  // check Quiesce with an empty guard returns immediately.
  guard.Quiesce();
  EpochGuard::ReadLock lock(&guard);
  SUCCEED();
}

TEST(Epoch, ExclusiveExcludesReaders) {
  EpochGuard guard;
  std::atomic<int> in_critical{0};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> checksum_a{0}, checksum_b{0};
  uint64_t a = 0, b = 0;  // writer-owned pair; invariant a == b
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        EpochGuard::ReadLock lock(&guard);
        in_critical.fetch_add(1);
        checksum_a.store(a);
        checksum_b.store(b);
        EXPECT_EQ(a, b);  // exclusive writer must never be mid-update here
        in_critical.fetch_sub(1);
      }
    });
  }
  for (int round = 0; round < 300; ++round) {
    guard.LockExclusive();
    EXPECT_EQ(in_critical.load(), 0);
    ++a;  // deliberately torn update: readers must never see a != b
    std::this_thread::yield();
    ++b;
    guard.UnlockExclusive();
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(a, 300u);
  EXPECT_EQ(b, 300u);
}

TEST(Epoch, MoreReadersThanSlots) {
  EpochGuard guard;
  // More concurrent read attempts than kSlots must make progress (surplus
  // spins for a free slot). Run kSlots+16 threads doing short sections.
  std::atomic<size_t> completed{0};
  std::vector<std::thread> threads;
  const size_t nthreads = EpochGuard::kSlots + 16;
  for (size_t t = 0; t < nthreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        EpochGuard::ReadLock lock(&guard);
        completed.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(completed.load(), nthreads * 20);
}

TEST(Epoch, MixedQuiesceExclusiveStress) {
  EpochGuard guard;
  std::atomic<bool> stop_writer{false};
  std::atomic<uint64_t> reads{0};
  std::vector<int> data(64, 0);  // guarded: rewritten under exclusive
  std::thread writer([&] {
    int round = 0;
    while (!stop_writer.load()) {
      if (++round % 3 == 0) {
        guard.LockExclusive();
        for (auto& x : data) x = round;
        guard.UnlockExclusive();
      } else {
        guard.Quiesce();
      }
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        EpochGuard::ReadLock lock(&guard);
        int v = data[0];
        for (int x : data) EXPECT_EQ(x, v);  // rows never torn
        reads.fetch_add(1);
      }
    });
  }
  for (auto& t : readers) t.join();
  stop_writer.store(true);
  writer.join();
  EXPECT_EQ(reads.load(), 4u * 500u);
}

}  // namespace
}  // namespace blink
