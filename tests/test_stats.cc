// Unit tests for the statistics helpers.
#include "util/stats.h"

#include <cmath>
#include <gtest/gtest.h>

#include "util/prng.h"

namespace blink {
namespace {

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.Add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.0);  // population variance
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, GaussianSampleMoments) {
  RunningStats s;
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) s.Add(rng.Gaussian(5.0f, 2.0f));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 25.0);
  EXPECT_DOUBLE_EQ(Percentile({42.0}, 73), 42.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);    // bin 0
  h.Add(9.5);    // bin 9
  h.Add(-3.0);   // clamps to bin 0
  h.Add(100.0);  // clamps to bin 9
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bins()[0], 2u);
  EXPECT_EQ(h.bins()[9], 2u);
  EXPECT_DOUBLE_EQ(h.density(0), 0.5);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.125);
  EXPECT_DOUBLE_EQ(h.bin_center(3), 0.875);
}

TEST(Histogram, RangeUtilizationFullVsPartial) {
  // Uniform samples fill every bin; concentrated samples fill few.
  Histogram full(0.0, 1.0, 20), narrow(0.0, 1.0, 20);
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    full.Add(rng.UniformDouble());
    narrow.Add(0.45 + 0.1 * rng.UniformDouble());
  }
  EXPECT_GT(full.RangeUtilization(), 0.95);
  EXPECT_LT(narrow.RangeUtilization(), 0.2);
}

TEST(Histogram, AsciiRenderingContainsBars) {
  Histogram h(0.0, 1.0, 4);
  for (int i = 0; i < 10; ++i) h.Add(0.1);
  const std::string s = h.ToAscii(10);
  EXPECT_NE(s.find('#'), std::string::npos);
}

}  // namespace
}  // namespace blink
