// Unit tests for the uniform scalar quantizer (paper Eq. 1).
#include "quant/scalar.h"

#include <cmath>
#include <gtest/gtest.h>

#include "util/prng.h"

namespace blink {
namespace {

TEST(ScalarQuantizer, DeltaMatchesEquationOne) {
  // Delta = (u - l) / (2^B - 1).
  const ScalarQuantizer q(8, -1.0f, 1.0f);
  EXPECT_FLOAT_EQ(q.delta(), 2.0f / 255.0f);
  const ScalarQuantizer q4(4, 0.0f, 30.0f);
  EXPECT_FLOAT_EQ(q4.delta(), 2.0f);
}

TEST(ScalarQuantizer, BoundsEncodeToExtremeCodes) {
  const ScalarQuantizer q(8, -3.0f, 5.0f);
  EXPECT_EQ(q.Encode(-3.0f), 0u);
  EXPECT_EQ(q.Encode(5.0f), 255u);
  EXPECT_FLOAT_EQ(q.Decode(0), -3.0f);
  EXPECT_FLOAT_EQ(q.Decode(255), 5.0f);
}

TEST(ScalarQuantizer, ReconstructionErrorWithinHalfDelta) {
  const ScalarQuantizer q(6, -2.0f, 2.0f);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const float x = rng.Uniform(-2.0f, 2.0f);
    const float err = std::fabs(q.Quantize(x) - x);
    EXPECT_LE(err, q.max_error() * (1.0f + 1e-5f)) << "x=" << x;
  }
}

TEST(ScalarQuantizer, OutOfRangeValuesClampToEdges) {
  const ScalarQuantizer q(8, 0.0f, 1.0f);
  EXPECT_EQ(q.Encode(-5.0f), 0u);
  EXPECT_EQ(q.Encode(42.0f), 255u);
}

TEST(ScalarQuantizer, DegenerateRangeYieldsZeroCode) {
  const ScalarQuantizer q(8, 1.5f, 1.5f);
  EXPECT_EQ(q.Encode(1.5f), 0u);
  EXPECT_EQ(q.Encode(99.0f), 0u);
  EXPECT_FLOAT_EQ(q.Decode(0), 1.5f);
  EXPECT_FLOAT_EQ(q.delta(), 0.0f);
}

TEST(ScalarQuantizer, MidpointRoundsToNearestLevel) {
  // Eq. 1 uses floor(t + 1/2): exact midpoints round up.
  const ScalarQuantizer q(2, 0.0f, 3.0f);  // levels at 0,1,2,3
  EXPECT_EQ(q.Encode(0.49f), 0u);
  EXPECT_EQ(q.Encode(0.5f), 1u);
  EXPECT_EQ(q.Encode(1.49f), 1u);
}

TEST(ScalarQuantizer, OneBitQuantizer) {
  const ScalarQuantizer q(1, -1.0f, 1.0f);
  EXPECT_FLOAT_EQ(q.delta(), 2.0f);
  EXPECT_EQ(q.Encode(-0.9f), 0u);
  EXPECT_EQ(q.Encode(0.9f), 1u);
}

TEST(ResidualQuantizer, BoundsAreHalfDelta) {
  // Eq. 6: residuals are quantized over [-Delta/2, Delta/2).
  const ScalarQuantizer rq = ResidualQuantizer(0.5f, 8);
  EXPECT_FLOAT_EQ(rq.lower(), -0.25f);
  EXPECT_FLOAT_EQ(rq.upper(), 0.25f);
  EXPECT_FLOAT_EQ(rq.delta(), 0.5f / 255.0f);
}

TEST(ResidualQuantizer, TwoStageErrorShrinksByCodeRange) {
  // Quantizing the residual of an 8-bit quantizer with 8 more bits shrinks
  // the max error by ~255x.
  const ScalarQuantizer q1(8, -1.0f, 1.0f);
  const ScalarQuantizer q2 = ResidualQuantizer(q1.delta(), 8);
  Rng rng(2);
  float max_err = 0.0f;
  for (int i = 0; i < 2000; ++i) {
    const float x = rng.Uniform(-1.0f, 1.0f);
    const float l1 = q1.Quantize(x);
    const float r = x - l1;
    const float rec = l1 + q2.Quantize(r);
    max_err = std::max(max_err, std::fabs(rec - x));
  }
  EXPECT_LE(max_err, q2.max_error() * 1.01f);
  EXPECT_LT(max_err, q1.max_error() / 100.0f);
}

// Parameterized sweep: the quantizer contract holds for every bit width.
class ScalarQuantBits : public ::testing::TestWithParam<int> {};

TEST_P(ScalarQuantBits, RoundTripWithinHalfDeltaAndCodesInRange) {
  const int bits = GetParam();
  const ScalarQuantizer q(bits, -7.0f, 13.0f);
  Rng rng(bits);
  for (int i = 0; i < 500; ++i) {
    const float x = rng.Uniform(-7.0f, 13.0f);
    const uint32_t c = q.Encode(x);
    EXPECT_LE(c, MaxCode(bits));
    EXPECT_LE(std::fabs(q.Decode(c) - x), q.max_error() * (1.0f + 1e-5f));
  }
}

TEST_P(ScalarQuantBits, DecodeEncodeIsIdentityOnLevels) {
  const int bits = GetParam();
  const ScalarQuantizer q(bits, 0.0f, 100.0f);
  // Every reconstruction level must encode back to its own code.
  const uint32_t step = std::max<uint32_t>(1, MaxCode(bits) / 64);
  for (uint32_t c = 0; c <= MaxCode(bits); c += step) {
    EXPECT_EQ(q.Encode(q.Decode(c)), c) << "bits=" << bits << " code=" << c;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBitWidths, ScalarQuantBits,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 10, 12, 16));

}  // namespace
}  // namespace blink
