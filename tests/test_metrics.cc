// Unit tests for k-recall@k and Ranked-Bias Overlap.
#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace blink {
namespace {

TEST(Recall, ExactMatch) {
  const uint32_t res[] = {1, 2, 3, 4};
  const uint32_t gt[] = {4, 3, 2, 1};  // set semantics: order irrelevant
  EXPECT_DOUBLE_EQ(RecallAtK({res, 4}, {gt, 4}, 4), 1.0);
}

TEST(Recall, PartialOverlap) {
  const uint32_t res[] = {1, 2, 9, 8};
  const uint32_t gt[] = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(RecallAtK({res, 4}, {gt, 4}, 4), 0.5);
}

TEST(Recall, NoOverlap) {
  const uint32_t res[] = {5, 6};
  const uint32_t gt[] = {1, 2};
  EXPECT_DOUBLE_EQ(RecallAtK({res, 2}, {gt, 2}, 2), 0.0);
}

TEST(Recall, SentinelEntriesIgnored) {
  const uint32_t res[] = {1, UINT32_MAX, UINT32_MAX};
  const uint32_t gt[] = {1, 2, 3};
  EXPECT_NEAR(RecallAtK({res, 3}, {gt, 3}, 3), 1.0 / 3.0, 1e-12);
}

TEST(Recall, MeanOverBatch) {
  Matrix<uint32_t> res(2, 2), gt(2, 2);
  res(0, 0) = 1;
  res(0, 1) = 2;  // full hit
  res(1, 0) = 7;
  res(1, 1) = 8;  // miss
  gt(0, 0) = 2;
  gt(0, 1) = 1;
  gt(1, 0) = 1;
  gt(1, 1) = 2;
  EXPECT_DOUBLE_EQ(MeanRecallAtK(res, gt, 2), 0.5);
}

TEST(Rbo, IdenticalListsGiveOne) {
  const uint32_t a[] = {1, 2, 3, 4, 5};
  EXPECT_NEAR(RankBiasedOverlap({a, 5}, {a, 5}, 0.9), 1.0, 1e-9);
}

TEST(Rbo, DisjointListsGiveZero) {
  const uint32_t a[] = {1, 2, 3};
  const uint32_t b[] = {4, 5, 6};
  EXPECT_NEAR(RankBiasedOverlap({a, 3}, {b, 3}, 0.9), 0.0, 1e-9);
}

TEST(Rbo, SwapAtTopCostsMoreThanSwapAtBottom) {
  // RBO is top-weighted: disturbing early ranks hurts more.
  const uint32_t ref[] = {1, 2, 3, 4, 5, 6, 7, 8};
  const uint32_t top_swap[] = {2, 1, 3, 4, 5, 6, 7, 8};
  const uint32_t bot_swap[] = {1, 2, 3, 4, 5, 6, 8, 7};
  const double top = RankBiasedOverlap({ref, 8}, {top_swap, 8}, 0.9);
  const double bot = RankBiasedOverlap({ref, 8}, {bot_swap, 8}, 0.9);
  EXPECT_LT(top, bot);
  EXPECT_LT(bot, 1.0);
}

TEST(Rbo, BoundedInUnitInterval) {
  const uint32_t a[] = {1, 2, 3, 4};
  const uint32_t b[] = {3, 1, 9, 2};
  for (double p : {0.5, 0.9, 0.98}) {
    const double rbo = RankBiasedOverlap({a, 4}, {b, 4}, p);
    EXPECT_GE(rbo, 0.0);
    EXPECT_LE(rbo, 1.0);
  }
}

TEST(Rbo, HandComputedSmallCase) {
  // a = {1,2}, b = {2,1}, p = 0.5.
  // depth1: overlap 0 -> A1 = 0; depth2: both sets equal -> A2 = 1.
  // RBO_ext = (1-p)/p * (p*0 + p^2*1) + p^2 * 1 = 0.5*0.5 + 0.25 = 0.375...
  // (1-0.5)/0.5 * (0.25) + 0.25 = 0.25 + 0.25 = 0.5.
  const uint32_t a[] = {1, 2};
  const uint32_t b[] = {2, 1};
  EXPECT_NEAR(RankBiasedOverlap({a, 2}, {b, 2}, 0.5), 0.5, 1e-9);
}

TEST(Rbo, PrefixAgreementScoresHigh) {
  // Same top half, scrambled bottom half: high but not perfect RBO.
  const uint32_t a[] = {1, 2, 3, 4, 10, 11, 12, 13};
  const uint32_t b[] = {1, 2, 3, 4, 20, 21, 22, 23};
  const double rbo = RankBiasedOverlap({a, 8}, {b, 8}, 0.9);
  EXPECT_GT(rbo, 0.5);
  EXPECT_LT(rbo, 1.0);
}

TEST(Rbo, EmptyListsAreIdentical) {
  EXPECT_DOUBLE_EQ(RankBiasedOverlap({}, {}, 0.9), 1.0);
}

}  // namespace
}  // namespace blink
