// The tools' shared flag plumbing (tools/flags.h): the list parser behind
// the --window sweep flags (malformed-input satellite) and the strict
// metric parser (garbage used to silently map to L2).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../tools/flags.h"

namespace blink {
namespace {

using tools::FlagParser;
using tools::ParseMetricFlag;
using tools::ParseUintListFlag;

TEST(ParseUintList, AcceptsSingleAndMultiple) {
  std::vector<uint32_t> out;
  EXPECT_TRUE(ParseUintListFlag("--window", "32", 1, 1u << 20, &out));
  EXPECT_EQ(out, (std::vector<uint32_t>{32}));
  EXPECT_TRUE(ParseUintListFlag("--window", "10,20,40,80", 1, 1u << 20, &out));
  EXPECT_EQ(out, (std::vector<uint32_t>{10, 20, 40, 80}));
  EXPECT_TRUE(ParseUintListFlag("--window", "1", 1, 1u << 20, &out));
  EXPECT_EQ(out, (std::vector<uint32_t>{1}));
}

TEST(ParseUintList, RejectsMalformedInput) {
  std::vector<uint32_t> out;
  for (const char* bad : {"", ",", "10,", ",10", "10,,20", "abc", "10,abc",
                          "abc,10", "10 20", "10, 20", "-5", "3.5", "0",
                          "10,0", "2097153" /* > 2^20+ */}) {
    EXPECT_FALSE(ParseUintListFlag("--window", bad, 1, 1u << 20, &out))
        << "accepted '" << bad << "'";
    EXPECT_TRUE(out.empty()) << "non-empty result for '" << bad << "'";
  }
}

TEST(ParseUintList, HonorsBounds) {
  std::vector<uint32_t> out;
  EXPECT_TRUE(ParseUintListFlag("--f", "5,10", 5, 10, &out));
  EXPECT_FALSE(ParseUintListFlag("--f", "4", 5, 10, &out));
  EXPECT_FALSE(ParseUintListFlag("--f", "11", 5, 10, &out));
  EXPECT_FALSE(ParseUintListFlag("--f", "5,11", 5, 10, &out));
}

TEST(ParseMetric, AcceptsExactlyL2AndIp) {
  Metric m = Metric::kL2;
  EXPECT_TRUE(ParseMetricFlag("--metric", "ip", &m));
  EXPECT_EQ(m, Metric::kInnerProduct);
  EXPECT_TRUE(ParseMetricFlag("--metric", "l2", &m));
  EXPECT_EQ(m, Metric::kL2);
}

TEST(ParseMetric, RejectsEverythingElse) {
  Metric m = Metric::kL2;
  for (const char* bad : {"", "L2", "IP", "cosine", "l2 ", " ip", "euclidean",
                          "0", "garbage"}) {
    EXPECT_FALSE(ParseMetricFlag("--metric", bad, &m))
        << "accepted '" << bad << "'";
  }
}

TEST(FlagParserLoop, DanglingFlagIsAnError) {
  const char* argv[] = {"tool", "--a", "1", "--dangling"};
  FlagParser p(4, const_cast<char**>(argv), 1);
  std::string flag;
  const char* val = nullptr;
  ASSERT_TRUE(p.Next(&flag, &val));
  EXPECT_EQ(flag, "--a");
  EXPECT_FALSE(p.Next(&flag, &val));
  EXPECT_FALSE(p.ok());
}

}  // namespace
}  // namespace blink
