// The tools' shared flag plumbing (tools/flags.h): the list parser behind
// the --window sweep flags (malformed-input satellite) and the strict
// metric parser (garbage used to silently map to L2).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../tools/flags.h"

namespace blink {
namespace {

using tools::FlagParser;
using tools::ParseFilterFlag;
using tools::ParseFilterStrategyFlag;
using tools::ParseMetricFlag;
using tools::ParseUintListFlag;

TEST(ParseUintList, AcceptsSingleAndMultiple) {
  std::vector<uint32_t> out;
  EXPECT_TRUE(ParseUintListFlag("--window", "32", 1, 1u << 20, &out));
  EXPECT_EQ(out, (std::vector<uint32_t>{32}));
  EXPECT_TRUE(ParseUintListFlag("--window", "10,20,40,80", 1, 1u << 20, &out));
  EXPECT_EQ(out, (std::vector<uint32_t>{10, 20, 40, 80}));
  EXPECT_TRUE(ParseUintListFlag("--window", "1", 1, 1u << 20, &out));
  EXPECT_EQ(out, (std::vector<uint32_t>{1}));
}

TEST(ParseUintList, RejectsMalformedInput) {
  std::vector<uint32_t> out;
  for (const char* bad : {"", ",", "10,", ",10", "10,,20", "abc", "10,abc",
                          "abc,10", "10 20", "10, 20", "-5", "3.5", "0",
                          "10,0", "2097153" /* > 2^20+ */}) {
    EXPECT_FALSE(ParseUintListFlag("--window", bad, 1, 1u << 20, &out))
        << "accepted '" << bad << "'";
    EXPECT_TRUE(out.empty()) << "non-empty result for '" << bad << "'";
  }
}

TEST(ParseUintList, HonorsBounds) {
  std::vector<uint32_t> out;
  EXPECT_TRUE(ParseUintListFlag("--f", "5,10", 5, 10, &out));
  EXPECT_FALSE(ParseUintListFlag("--f", "4", 5, 10, &out));
  EXPECT_FALSE(ParseUintListFlag("--f", "11", 5, 10, &out));
  EXPECT_FALSE(ParseUintListFlag("--f", "5,11", 5, 10, &out));
}

TEST(ParseMetric, AcceptsExactlyL2AndIp) {
  Metric m = Metric::kL2;
  EXPECT_TRUE(ParseMetricFlag("--metric", "ip", &m));
  EXPECT_EQ(m, Metric::kInnerProduct);
  EXPECT_TRUE(ParseMetricFlag("--metric", "l2", &m));
  EXPECT_EQ(m, Metric::kL2);
}

TEST(ParseMetric, RejectsEverythingElse) {
  Metric m = Metric::kL2;
  for (const char* bad : {"", "L2", "IP", "cosine", "l2 ", " ip", "euclidean",
                          "0", "garbage"}) {
    EXPECT_FALSE(ParseMetricFlag("--metric", bad, &m))
        << "accepted '" << bad << "'";
  }
}

TEST(ParseFilter, AcceptsTheGrammarAndCanonicalizes) {
  Predicate p;
  ASSERT_TRUE(ParseFilterFlag("--filter", "tag:any=1,3 num0>=2.5", &p));
  EXPECT_EQ(p.tag_any, (uint64_t{1} << 1) | (uint64_t{1} << 3));
  ASSERT_EQ(p.ranges.size(), 1u);
  EXPECT_EQ(p.ranges[0].column, 0u);
  EXPECT_DOUBLE_EQ(p.ranges[0].lo, 2.5);

  ASSERT_TRUE(
      ParseFilterFlag("--filter", "tag:all=0 tag:none=63 num1<10 num1>0", &p));
  EXPECT_EQ(p.tag_all, uint64_t{1});
  EXPECT_EQ(p.tag_none, uint64_t{1} << 63);
  EXPECT_EQ(p.ranges.size(), 2u);
}

TEST(ParseFilter, RejectsMalformedPredicates) {
  Predicate p;
  for (const char* bad :
       {"tag:any=", "tag:any=64", "tag:some=1", "num0", "num0<>1", "numx<1",
        "num0<abc", "tag:any=1 garbage", "=5"}) {
    EXPECT_FALSE(ParseFilterFlag("--filter", bad, &p))
        << "accepted '" << bad << "'";
  }
}

TEST(ParseFilterStrategy, AcceptsExactlyTheThreeNames) {
  FilterStrategy s = FilterStrategy::kAuto;
  EXPECT_TRUE(ParseFilterStrategyFlag("--filter-strategy", "post", &s));
  EXPECT_EQ(s, FilterStrategy::kPostFilter);
  EXPECT_TRUE(ParseFilterStrategyFlag("--filter-strategy", "insearch", &s));
  EXPECT_EQ(s, FilterStrategy::kInSearch);
  EXPECT_TRUE(ParseFilterStrategyFlag("--filter-strategy", "auto", &s));
  EXPECT_EQ(s, FilterStrategy::kAuto);
  for (const char* bad :
       {"", "Auto", "POST", "in-search", "pre", "auto ", "0"}) {
    EXPECT_FALSE(ParseFilterStrategyFlag("--filter-strategy", bad, &s))
        << "accepted '" << bad << "'";
  }
}

TEST(FlagParserLoop, DanglingFlagIsAnError) {
  const char* argv[] = {"tool", "--a", "1", "--dangling"};
  FlagParser p(4, const_cast<char**>(argv), 1);
  std::string flag;
  const char* val = nullptr;
  ASSERT_TRUE(p.Next(&flag, &val));
  EXPECT_EQ(flag, "--a");
  EXPECT_FALSE(p.Next(&flag, &val));
  EXPECT_FALSE(p.ok());
}

}  // namespace
}  // namespace blink
