// Unit tests for Vamana graph construction (paper Algorithms 1-2).
#include "graph/builder.h"

#include <gtest/gtest.h>
#include <queue>
#include <vector>

#include "data/synthetic.h"

namespace blink {
namespace {

Dataset SmallDataset() { return MakeDeepLike(2000, 50, /*seed=*/7); }

VamanaBuildParams SmallParams() {
  VamanaBuildParams p;
  p.graph_max_degree = 16;
  p.window_size = 32;
  p.alpha = 1.2f;
  return p;
}

TEST(Builder, DegreesWithinBound) {
  Dataset data = SmallDataset();
  FloatStorage storage(data.base, data.metric);
  BuiltGraph g = BuildVamana(storage, SmallParams());
  for (size_t i = 0; i < g.graph.size(); ++i) {
    EXPECT_LE(g.graph.degree(i), 16u);
  }
}

TEST(Builder, NoSelfEdgesAndValidIds) {
  Dataset data = SmallDataset();
  FloatStorage storage(data.base, data.metric);
  BuiltGraph g = BuildVamana(storage, SmallParams());
  for (size_t i = 0; i < g.graph.size(); ++i) {
    const uint32_t* nbrs = g.graph.neighbors(i);
    for (uint32_t e = 0; e < g.graph.degree(i); ++e) {
      EXPECT_NE(nbrs[e], i) << "self edge at " << i;
      EXPECT_LT(nbrs[e], g.graph.size());
    }
  }
}

TEST(Builder, NoDuplicateNeighbors) {
  Dataset data = SmallDataset();
  FloatStorage storage(data.base, data.metric);
  BuiltGraph g = BuildVamana(storage, SmallParams());
  for (size_t i = 0; i < g.graph.size(); ++i) {
    std::vector<uint32_t> nbrs(g.graph.neighbors(i),
                               g.graph.neighbors(i) + g.graph.degree(i));
    std::sort(nbrs.begin(), nbrs.end());
    EXPECT_TRUE(std::adjacent_find(nbrs.begin(), nbrs.end()) == nbrs.end())
        << "duplicate neighbor at node " << i;
  }
}

TEST(Builder, GraphIsWellConnectedFromEntryPoint) {
  Dataset data = SmallDataset();
  FloatStorage storage(data.base, data.metric);
  BuiltGraph g = BuildVamana(storage, SmallParams());
  // BFS from the entry point must reach nearly every node (greedy search
  // can only find what is reachable).
  std::vector<char> seen(g.graph.size(), 0);
  std::queue<uint32_t> q;
  q.push(g.entry_point);
  seen[g.entry_point] = 1;
  size_t reached = 1;
  while (!q.empty()) {
    const uint32_t u = q.front();
    q.pop();
    const uint32_t* nbrs = g.graph.neighbors(u);
    for (uint32_t e = 0; e < g.graph.degree(u); ++e) {
      if (!seen[nbrs[e]]) {
        seen[nbrs[e]] = 1;
        ++reached;
        q.push(nbrs[e]);
      }
    }
  }
  EXPECT_GE(reached, g.graph.size() * 99 / 100)
      << "only " << reached << "/" << g.graph.size() << " reachable";
}

TEST(Builder, DeterministicGivenSeed) {
  Dataset data = MakeDeepLike(500, 10, 8);
  FloatStorage storage(data.base, data.metric);
  VamanaBuildParams p = SmallParams();
  BuiltGraph a = BuildVamana(storage, p);
  BuiltGraph b = BuildVamana(storage, p);
  ASSERT_EQ(a.entry_point, b.entry_point);
  for (size_t i = 0; i < a.graph.size(); ++i) {
    ASSERT_EQ(a.graph.degree(i), b.graph.degree(i)) << i;
    for (uint32_t e = 0; e < a.graph.degree(i); ++e) {
      ASSERT_EQ(a.graph.neighbors(i)[e], b.graph.neighbors(i)[e]) << i;
    }
  }
}

TEST(Builder, EntryPointIsMedoidish) {
  // The entry point must be closer to the dataset mean than 95% of nodes.
  Dataset data = SmallDataset();
  FloatStorage storage(data.base, data.metric);
  BuiltGraph g = BuildVamana(storage, SmallParams());
  const size_t n = data.base.rows(), d = data.base.cols();
  std::vector<float> mean(d, 0.0f);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) mean[j] += data.base(i, j);
  }
  for (auto& m : mean) m /= static_cast<float>(n);
  const float ep_dist = simd::L2Sqr(mean.data(), data.base.row(g.entry_point), d);
  size_t closer = 0;
  for (size_t i = 0; i < n; ++i) {
    if (simd::L2Sqr(mean.data(), data.base.row(i), d) < ep_dist) ++closer;
  }
  EXPECT_LE(closer, n / 20);
}

TEST(Builder, AlphaAboveOneGrowsDenserGraphs) {
  // The relaxed second pass (alpha > 1) keeps more diverse long edges, so
  // average degree should not shrink vs alpha = 1.
  Dataset data = MakeDeepLike(1500, 10, 9);
  FloatStorage storage(data.base, data.metric);
  VamanaBuildParams p1 = SmallParams();
  p1.alpha = 1.0f;
  VamanaBuildParams p2 = SmallParams();
  p2.alpha = 1.4f;
  BuiltGraph g1 = BuildVamana(storage, p1);
  BuiltGraph g2 = BuildVamana(storage, p2);
  EXPECT_GE(g2.graph.AverageDegree(), g1.graph.AverageDegree() * 0.95);
}

TEST(Builder, WorksOnLvqStorage) {
  // Sec. 4: graphs can be built directly from compressed vectors.
  Dataset data = MakeDeepLike(1000, 10, 10);
  LvqStorage storage(data.base, data.metric, /*bits=*/8);
  BuiltGraph g = BuildVamana(storage, SmallParams());
  EXPECT_GT(g.graph.AverageDegree(), 4.0);
  size_t reachable_edges = 0;
  for (size_t i = 0; i < g.graph.size(); ++i) reachable_edges += g.graph.degree(i);
  EXPECT_GT(reachable_edges, 0u);
}

TEST(Builder, TinyDatasets) {
  for (size_t n : {1u, 2u, 5u}) {
    Dataset data = MakeDeepLike(n, 2, 11);
    FloatStorage storage(data.base, data.metric);
    BuiltGraph g = BuildVamana(storage, SmallParams());
    EXPECT_EQ(g.graph.size(), n);
    EXPECT_LT(g.entry_point, n);
  }
}

TEST(Builder, ParallelBuildMatchesSerial) {
  Dataset data = MakeDeepLike(600, 10, 12);
  FloatStorage storage(data.base, data.metric);
  VamanaBuildParams p = SmallParams();
  BuiltGraph serial = BuildVamana(storage, p, nullptr);
  ThreadPool pool(4);
  BuiltGraph parallel = BuildVamana(storage, p, &pool);
  // The batch design makes construction deterministic per worker count only;
  // check structural quality instead of exact equality.
  EXPECT_NEAR(parallel.graph.AverageDegree(), serial.graph.AverageDegree(),
              serial.graph.AverageDegree() * 0.25 + 1.0);
}

}  // namespace
}  // namespace blink
