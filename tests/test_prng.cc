// Unit tests for the deterministic PRNG.
#include "util/prng.h"

#include <cmath>
#include <gtest/gtest.h>
#include <vector>

namespace blink {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2() != c()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformFloatInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const float u = rng.UniformFloat();
    EXPECT_GE(u, 0.0f);
    EXPECT_LT(u, 1.0f);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    const float u = rng.Uniform(-3.0f, 7.0f);
    EXPECT_GE(u, -3.0f);
    EXPECT_LT(u, 7.0f);
  }
}

TEST(Rng, BoundedNeverExceedsBound) {
  Rng rng(3);
  for (uint64_t n : {1ull, 2ull, 7ull, 100ull, 1000000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.Bounded(n), n);
    }
  }
  EXPECT_EQ(rng.Bounded(0), 0u);
  EXPECT_EQ(rng.Bounded(1), 0u);
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Rng rng(4);
  const uint64_t n = 10;
  std::vector<size_t> counts(n, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.Bounded(n)];
  for (size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), trials / 10.0, trials / 10.0 * 0.1);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(5);
  double sum = 0.0, sum2 = 0.0, sum3 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
    sum3 += g * g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
  EXPECT_NEAR(sum3 / n, 0.0, 0.05);  // symmetry
}

TEST(Rng, GaussianWithParams) {
  Rng rng(6);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian(10.0f, 3.0f);
    sum += g;
    sum2 += (g - 10.0) * (g - 10.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(sum2 / n), 3.0, 0.05);
}

TEST(Rng, UniformDoubleHighResolution) {
  Rng rng(7);
  // 53-bit doubles: consecutive draws essentially never collide.
  double prev = rng.UniformDouble();
  int collisions = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    if (u == prev) ++collisions;
    prev = u;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace blink
