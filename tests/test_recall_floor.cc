// Recall-floor regression tests (ISSUE 3 satellite): pinned recall@10 on a
// fixed-seed synthetic dataset with explicit floors, so hot-path changes
// (kernels, search loop, merge) cannot silently degrade quality. The
// floors sit ~3 points under the measured values at the time of writing;
// a failure here means search quality regressed, not flakiness — every
// input is deterministic.
#include <gtest/gtest.h>

#include "shard/sharded_index.h"
#include "testutil.h"

namespace blink {
namespace {

using testutil::DeepFixture;
using testutil::Fixture;

// One shared fixture: n=3000 deep-like vectors, 150 queries, seed 77.
const Fixture& SharedFixture() {
  static const Fixture* f = new Fixture(MakeDeepLike(3000, 150, 77));
  return *f;
}

TEST(RecallFloor, VamanaLvq8AtWindow64) {
  const Fixture& f = SharedFixture();
  auto idx = BuildOgLvq(f.data.base, f.data.metric, 8, 0, f.bp);
  RuntimeParams p;
  p.window = 64;
  const double recall = testutil::RecallOf(*idx, f, p);
  // Measured 0.993 (Release, avx512); the floor leaves ~4 points of
  // headroom for backend-to-backend FP drift, not for quality loss.
  EXPECT_GE(recall, 0.95) << "Vamana+LVQ-8 recall floor broken";
}

TEST(RecallFloor, VamanaLvq4x8RerankAtWindow64) {
  const Fixture& f = SharedFixture();
  auto idx = BuildOgLvq(f.data.base, f.data.metric, 4, 8, f.bp);
  RuntimeParams p;
  p.window = 64;
  const double recall = testutil::RecallOf(*idx, f, p);
  // Measured 1.000: the two-level rerank recovers the 4-bit level-1 loss.
  EXPECT_GE(recall, 0.95) << "LVQ-4x8 rerank recall floor broken";
}

TEST(RecallFloor, ShardedS4Nprobe2AtWindow64) {
  const Fixture& f = SharedFixture();
  ShardedBuildParams sp;
  sp.partition.num_shards = 4;
  sp.graph = f.bp;
  sp.bits1 = 8;
  auto idx = BuildShardedLvq(f.data.base, f.data.metric, sp);
  RuntimeParams p;
  p.window = 64;
  p.nprobe_shards = 2;
  const double recall = testutil::RecallOf(*idx, f, p);
  // Measured 0.993: two merged per-shard windows cover the partition loss.
  EXPECT_GE(recall, 0.95) << "sharded S=4/nprobe=2 recall floor broken";
}

}  // namespace
}  // namespace blink
