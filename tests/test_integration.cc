// Cross-module integration tests: full pipelines exercising every index
// family under the shared harness, plus miniature versions of the paper's
// headline experiments.
#include <gtest/gtest.h>

#include "blink.h"
#include "testutil.h"

namespace blink {
namespace {

/// testutil::Fixture plus the old local shorthand of this file.
struct World : testutil::Fixture {
  static constexpr size_t kK = 10;
  explicit World(Dataset d) : testutil::Fixture(std::move(d), kK) {}
  double Recall(const SearchIndex& idx, const RuntimeParams& p) const {
    return testutil::RecallOf(idx, *this, p);
  }
};

TEST(Integration, EveryIndexFamilyReachesHighRecall) {
  World w(MakeDeepLike(3000, 50, 300));
  const VamanaBuildParams& bp = w.bp;  // R=24, W=48 fixture defaults

  RuntimeParams graph_p;
  graph_p.window = 64;
  RuntimeParams probe_p;
  probe_p.nprobe = 24;
  probe_p.reorder_k = 200;

  auto og = BuildOgLvq(w.data.base, w.data.metric, 8, 0, bp);
  EXPECT_GE(w.Recall(*og, graph_p), 0.9) << og->name();

  auto vam = BuildVamanaF32(w.data.base, w.data.metric, bp);
  EXPECT_GE(w.Recall(*vam, graph_p), 0.9) << vam->name();

  HnswParams hp;
  hp.M = 12;
  hp.ef_construction = 80;
  HnswIndex hnsw(w.data.base, w.data.metric, hp);
  EXPECT_GE(w.Recall(hnsw, graph_p), 0.9) << hnsw.name();

  IvfPqParams ip;
  ip.nlist = 48;
  ip.pq.num_segments = 24;
  IvfPqIndex ivf(w.data.base, w.data.metric, ip);
  EXPECT_GE(w.Recall(ivf, probe_p), 0.9) << ivf.name();

  ScannParams sp;
  ScannIndex scann(w.data.base, w.data.metric, sp);
  EXPECT_GE(w.Recall(scann, probe_p), 0.9) << scann.name();

  ShardedBuildParams ssp;
  ssp.partition.num_shards = 4;
  ssp.graph = bp;
  auto sharded = BuildShardedLvq(w.data.base, w.data.metric, ssp);
  RuntimeParams sharded_p = graph_p;
  sharded_p.nprobe_shards = 2;
  EXPECT_GE(w.Recall(*sharded, sharded_p), 0.9) << sharded->name();
}

TEST(Integration, MiniFig4_GraphsBuiltFromLvq4AreAsGoodAsFloat32) {
  // Paper Fig. 4: graphs built from LVQ-compressed vectors (B >= 4) lose
  // almost nothing; graphs built from 2-bit vectors degrade.
  World w(MakeDeepLike(3000, 80, 301));
  VamanaBuildParams bp;
  bp.graph_max_degree = 24;
  bp.window_size = 48;
  FloatStorage search_storage(w.data.base, w.data.metric);

  auto recall_for_build_bits = [&](int bits) {
    BuiltGraph g =
        bits == 32
            ? BuildVamana(search_storage, bp)
            : BuildVamana(LvqStorage(w.data.base, w.data.metric, bits), bp);
    VamanaIndex<FloatStorage> idx(FloatStorage(w.data.base, w.data.metric),
                                  std::move(g), bp);
    RuntimeParams p;
    p.window = 48;
    return w.Recall(idx, p);
  };

  const double r32 = recall_for_build_bits(32);
  const double r8 = recall_for_build_bits(8);
  const double r4 = recall_for_build_bits(4);
  EXPECT_GE(r8, r32 - 0.02);
  EXPECT_GE(r4, r32 - 0.05);
}

TEST(Integration, MiniFig11_LvqBeatsGlobalInExhaustiveSearch) {
  // Exhaustive search over reconstructed vectors. The separation shows at
  // low bit budgets (paper Figs. 6 & 11): at B = 4 LVQ retains most of the
  // exact ordering while global quantization degrades; at B = 8 both
  // saturate near 1.0.
  World w(MakeDeepLike(2000, 50, 302));
  auto recall_of = [&](int bits, bool use_lvq) {
    MatrixF dec = [&] {
      if (use_lvq) {
        LvqDataset::Options lo;
        lo.bits = bits;
        lo.padding = 0;
        return DecodeAll(LvqDataset::Encode(w.data.base, lo));
      }
      GlobalDataset::Options go;
      go.bits = bits;
      return DecodeAll(GlobalDataset::Encode(w.data.base, go));
    }();
    Matrix<uint32_t> res =
        ComputeGroundTruth(dec, w.data.queries, World::kK, w.data.metric);
    return MeanRecallAtK(res, w.gt, World::kK);
  };
  const double r_lvq4 = recall_of(4, true);
  const double r_glob4 = recall_of(4, false);
  EXPECT_GT(r_lvq4, r_glob4);
  const double r_lvq8 = recall_of(8, true);
  EXPECT_GE(r_lvq8, 0.97);
}

TEST(Integration, InnerProductPipelineEndToEnd) {
  World w(MakeT2iLike(2500, 50, 303));
  VamanaBuildParams bp;
  bp.graph_max_degree = 24;
  bp.window_size = 48;
  bp.alpha = 0.95f;  // the paper's IP relaxation
  auto idx = BuildOgLvq(w.data.base, w.data.metric, 8, 0, bp);
  RuntimeParams p;
  p.window = 96;
  EXPECT_GE(w.Recall(*idx, p), 0.85);
}

TEST(Integration, VarianceModifiedDatasetStillSearchable) {
  // Paper Appendix A.1: pathological per-dimension variances.
  Dataset data = MakeDeepLike(2000, 40, 304);
  ModifyDatasetVariance(&data.base, &data.queries, 0.2, 10.0, 100.0, 5);
  data.metric = Metric::kL2;  // scaling destroys unit norms
  World w(std::move(data));
  VamanaBuildParams bp;
  bp.graph_max_degree = 24;
  bp.window_size = 48;
  auto idx = BuildOgLvq(w.data.base, w.data.metric, 8, 0, bp);
  RuntimeParams p;
  p.window = 64;
  EXPECT_GE(w.Recall(*idx, p), 0.85);
}

TEST(Integration, HarnessRanksEncodingsConsistently) {
  // Under the sweep harness, LVQ-8's QPS at matched recall must be at
  // least comparable to float32 (it wins big when memory-bound; at test
  // scale everything is cache-resident, so allow a wide band).
  World w(MakeDeepLike(2000, 50, 305));
  VamanaBuildParams bp;
  bp.graph_max_degree = 16;
  bp.window_size = 32;
  auto f32 = BuildVamanaF32(w.data.base, w.data.metric, bp);
  auto lvq = BuildOgLvq(w.data.base, w.data.metric, 8, 0, bp);
  HarnessOptions opts;
  opts.best_of = 2;
  auto sweep = WindowSweep({16, 32, 64});
  auto pts32 = RunSweep(*f32, w.data.queries, w.gt, sweep, opts);
  auto pts8 = RunSweep(*lvq, w.data.queries, w.gt, sweep, opts);
  const double q32 = QpsAtRecall(pts32, 0.85);
  const double q8 = QpsAtRecall(pts8, 0.85);
  ASSERT_GT(q32, 0.0);
  ASSERT_GT(q8, 0.0);
  EXPECT_GT(q8, q32 * 0.4);
}

TEST(Integration, SerializationRoundTripForGeneratedData) {
  Dataset data = MakeSiftLike(200, 10, 306);
  const std::string p = testing::TempDir() + "blink_integ.fvecs";
  ASSERT_TRUE(WriteFvecs(p, data.base).ok());
  auto r = ReadFvecs(p);
  ASSERT_TRUE(r.ok());
  // Indexing the reloaded data gives identical results.
  VamanaBuildParams bp;
  bp.graph_max_degree = 16;
  bp.window_size = 32;
  auto a = BuildOgLvq(data.base, data.metric, 8, 0, bp);
  auto b = BuildOgLvq(r.value(), data.metric, 8, 0, bp);
  RuntimeParams rp;
  rp.window = 32;
  Matrix<uint32_t> ia(10, 10), ib(10, 10);
  a->SearchBatch(data.queries, 10, rp, ia.data());
  b->SearchBatch(data.queries, 10, rp, ib.data());
  for (size_t i = 0; i < ia.size(); ++i) {
    EXPECT_EQ(ia.data()[i], ib.data()[i]);
  }
  std::remove(p.c_str());
}

}  // namespace
}  // namespace blink
