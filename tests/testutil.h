// Shared test scaffolding (ISSUE 3 satellite): the dataset / ground-truth /
// build boilerplate that used to be re-declared in every test_*.cc, plus
// temp-file management for serialization tests.
//
// Everything is deterministic given the seed, and sized for unit tests
// (seconds, not minutes, even in Debug).
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "data/groundtruth.h"
#include "data/synthetic.h"
#include "eval/interface.h"
#include "eval/metrics.h"
#include "graph/index.h"

namespace blink {
namespace testutil {

/// Seeded synthetic dataset + exact ground truth + small-graph build
/// params — the standard fixture of the index-level tests.
struct Fixture {
  Dataset data;
  Matrix<uint32_t> gt;
  VamanaBuildParams bp;
  size_t k;

  explicit Fixture(Dataset d, size_t k = 10, uint32_t R = 24, uint32_t W = 48)
      : data(std::move(d)), k(k) {
    gt = ComputeGroundTruth(data.base, data.queries, k, data.metric);
    bp.graph_max_degree = R;
    bp.window_size = W;
    bp.alpha = data.metric == Metric::kL2 ? 1.2f : 0.95f;
  }
};

/// The most common configuration: a deep-like dataset with k=10 ground
/// truth and an R=24 / W=48 build.
inline Fixture DeepFixture(size_t n, size_t nq, uint64_t seed, size_t k = 10,
                           uint32_t R = 24, uint32_t W = 48) {
  return Fixture(MakeDeepLike(n, nq, seed), k, R, W);
}

/// Mean recall@k of `idx` over the fixture's queries with explicit params.
inline double RecallOf(const SearchIndex& idx, const Fixture& f,
                       const RuntimeParams& p) {
  Matrix<uint32_t> ids(f.data.queries.rows(), f.k);
  idx.SearchBatch(f.data.queries, f.k, p, ids.data());
  return MeanRecallAtK(ids, f.gt, f.k);
}

/// Window-sweep shorthand used by most graph-index tests.
inline double RecallAtWindow(const SearchIndex& idx, const Fixture& f,
                             uint32_t window, bool rerank = true,
                             bool use_visited_set = false) {
  RuntimeParams p;
  p.window = window;
  p.rerank = rerank;
  p.use_visited_set = use_visited_set;
  return RecallOf(idx, f, p);
}

/// A corpus smaller than the typical k, with a built float32 index: the
/// padding-contract fixture (every path must pad to exactly k).
struct TinyWorld {
  Dataset data;
  std::unique_ptr<VamanaIndex<FloatStorage>> index;

  explicit TinyWorld(size_t corpus = 5, size_t nq = 4, uint64_t seed = 99)
      : data(MakeDeepLike(corpus, nq, seed)) {
    VamanaBuildParams bp;
    bp.graph_max_degree = 4;
    bp.window_size = 8;
    index = BuildVamanaF32(data.base, data.metric, bp);
  }
};

/// gtest fixture owning temp files/directories; everything registered via
/// Path()/DirPath() is removed in TearDown (files by remove, directories
/// recursively).
class TempPathTest : public ::testing::Test {
 protected:
  /// A fresh temp file path (not created), removed on teardown.
  std::string Path(const std::string& name) {
    const std::string p = testing::TempDir() + "blink_test_" + name;
    files_.push_back(p);
    return p;
  }

  /// A fresh temp directory path (not created), removed recursively.
  std::string DirPath(const std::string& name) {
    const std::string p = testing::TempDir() + "blink_test_" + name;
    dirs_.push_back(p);
    return p;
  }

  void TearDown() override {
    for (const auto& p : files_) std::remove(p.c_str());
    std::error_code ec;
    for (const auto& p : dirs_) std::filesystem::remove_all(p, ec);
  }

 private:
  std::vector<std::string> files_;
  std::vector<std::string> dirs_;
};

/// Asserts the eval/interface.h padding contract on one result row: valid
/// entries (id < corpus, finite dist when given) form a prefix of exactly
/// `corpus` entries, and every slot after it holds kInvalidId / +inf.
inline void ExpectPaddedRow(const uint32_t* ids, const float* dists, size_t k,
                            size_t corpus) {
  size_t real = 0;
  for (size_t j = 0; j < k; ++j) {
    if (ids[j] != kInvalidId) {
      EXPECT_LT(ids[j], corpus);
      if (dists != nullptr) {
        EXPECT_TRUE(std::isfinite(dists[j])) << j;
      }
      EXPECT_EQ(real, j) << "padding must be a suffix";
      ++real;
    } else if (dists != nullptr) {
      EXPECT_TRUE(std::isinf(dists[j])) << "dist " << j;
    }
  }
  EXPECT_EQ(real, corpus) << "all reachable results present before padding";
}

/// Asserts two id matrices are element-wise identical (byte-identical
/// results, the serialization round-trip bar).
inline void ExpectSameIds(const Matrix<uint32_t>& a, const Matrix<uint32_t>& b,
                          const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << what << " at flat index " << i;
  }
}

/// One batch search into a freshly allocated id matrix.
inline Matrix<uint32_t> SearchIds(const SearchIndex& idx, MatrixViewF queries,
                                  size_t k, const RuntimeParams& p,
                                  ThreadPool* pool = nullptr) {
  Matrix<uint32_t> ids(queries.rows, k);
  idx.SearchBatch(queries, k, p, ids.data(), pool);
  return ids;
}

}  // namespace testutil
}  // namespace blink
