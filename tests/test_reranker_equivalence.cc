// Reranker-seam equivalence (ISSUE 9 satellite): the refactor moved the
// two-level re-rank epilogue out of GreedySearcher::ExtractTopK and
// DynamicGraphIndex::Search into the shared seam (graph/reranker.h). These
// tests pin the seam to the pre-refactor semantics by re-implementing both
// original epilogues verbatim against the public post-search state
// (GreedySearcher::buffer() / SearchScratch::buffer) and asserting the
// production results are byte-identical — ids AND distance bit patterns —
// on the fixed-seed recall-floor dataset. Every input is deterministic; a
// failure here means the seam changed behavior, not flakiness.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "graph/dynamic.h"
#include "graph/index.h"
#include "graph/search.h"
#include "testutil.h"

namespace blink {
namespace {

using testutil::Fixture;

uint32_t Bits(float f) {
  uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

void ExpectBitIdentical(const SearchResult& got,
                        const std::vector<uint32_t>& want_ids,
                        const std::vector<float>& want_dists,
                        const std::string& what) {
  ASSERT_EQ(got.ids.size(), want_ids.size()) << what;
  ASSERT_EQ(got.dists.size(), want_dists.size()) << what;
  for (size_t i = 0; i < want_ids.size(); ++i) {
    ASSERT_EQ(got.ids[i], want_ids[i]) << what << " id at rank " << i;
    ASSERT_EQ(Bits(got.dists[i]), Bits(want_dists[i]))
        << what << " dist bits at rank " << i;
  }
}

// --- static path ------------------------------------------------------------

// The pre-seam GreedySearcher::ExtractTopK epilogue: re-score the clamped
// depth with FullDistance, partial_sort the first min(k, m) pairs, emit
// them. Reads only the public post-search state.
void OldStaticEpilogue(const LvqStorage& storage,
                       const GreedySearcher<LvqStorage>& searcher, size_t k,
                       uint32_t rerank_window, std::vector<uint32_t>* ids,
                       std::vector<float>* dists) {
  const SearchBuffer& buf = searcher.buffer();
  size_t m = buf.size();
  if (rerank_window != 0) {
    m = std::min<size_t>(m, std::max<size_t>(rerank_window, k));
  }
  std::vector<float> decode(storage.dim());
  std::vector<std::pair<float, uint32_t>> rescored;
  for (size_t i = 0; i < m; ++i) {
    const uint32_t id = buf[i].id;
    rescored.push_back(
        {storage.FullDistance(searcher.query_state(), id, decode.data()), id});
  }
  const size_t kk = std::min(k, m);
  std::partial_sort(rescored.begin(),
                    rescored.begin() + static_cast<ptrdiff_t>(kk),
                    rescored.end());
  ids->clear();
  dists->clear();
  for (size_t i = 0; i < kk; ++i) {
    ids->push_back(rescored[i].second);
    dists->push_back(rescored[i].first);
  }
}

TEST(RerankerEquivalence, StaticLvq4x8MatchesOldEpilogue) {
  const Fixture f(MakeDeepLike(1500, 60, 321));
  auto idx = BuildOgLvq(f.data.base, f.data.metric, 4, 8, f.bp);
  GreedySearcher<LvqStorage> searcher(&idx->graph(), &idx->storage());
  std::vector<uint32_t> want_ids;
  std::vector<float> want_dists;
  // rerank_window 0 (the historical whole-buffer depth) and a partial depth
  // that exercises the RerankDepth clamp against the old inline arithmetic.
  for (uint32_t rw : {uint32_t{0}, uint32_t{14}}) {
    SearchParams sp;
    sp.window = 48;
    sp.rerank = true;
    sp.rerank_window = rw;
    for (size_t qi = 0; qi < f.data.queries.rows(); ++qi) {
      SearchResult out;
      searcher.Search(f.data.queries.row(qi), f.k, idx->entry_point(), sp,
                      &out);
      OldStaticEpilogue(idx->storage(), searcher, f.k, rw, &want_ids,
                        &want_dists);
      ExpectBitIdentical(out, want_ids, want_dists,
                         "static rw=" + std::to_string(rw) + " query " +
                             std::to_string(qi));
    }
  }
}

// Without a second level there is nothing to re-rank: the seam must be a
// strict pass-through of the primary-sorted buffer.
TEST(RerankerEquivalence, StaticOneLevelIsPrimaryOrderPassThrough) {
  const Fixture f(MakeDeepLike(800, 30, 322));
  auto idx = BuildOgLvq(f.data.base, f.data.metric, 8, 0, f.bp);
  GreedySearcher<LvqStorage> searcher(&idx->graph(), &idx->storage());
  SearchParams sp;
  sp.window = 48;
  for (size_t qi = 0; qi < f.data.queries.rows(); ++qi) {
    SearchResult out;
    searcher.Search(f.data.queries.row(qi), f.k, idx->entry_point(), sp, &out);
    const SearchBuffer& buf = searcher.buffer();
    const size_t kk = std::min(f.k, buf.size());
    ASSERT_EQ(out.ids.size(), kk);
    for (size_t i = 0; i < kk; ++i) {
      ASSERT_EQ(out.ids[i], buf[i].id) << "query " << qi << " rank " << i;
      ASSERT_EQ(Bits(out.dists[i]), Bits(buf[i].dist))
          << "query " << qi << " rank " << i;
    }
  }
}

// --- dynamic path -----------------------------------------------------------

// The pre-seam DynamicGraphIndex::Search epilogue: re-score the clamped
// depth (tombstone slack included), full sort, skim past deleted ids, pad
// to exactly k. Reads the public SearchScratch left behind by Search().
void OldDynamicEpilogue(const DynamicLvqIndex& idx,
                        const DynamicLvqIndex::SearchScratch& scratch,
                        size_t k, uint32_t rerank_window, size_t tomb,
                        std::vector<uint32_t>* ids,
                        std::vector<float>* dists) {
  const SearchBuffer& buf = scratch.buffer;
  size_t m = buf.size();
  if (rerank_window != 0) {
    m = std::min<size_t>(m, std::max<size_t>(rerank_window, k) + tomb);
  }
  std::vector<float> decode(idx.dim());
  std::vector<std::pair<float, uint32_t>> rescored;
  for (size_t i = 0; i < m; ++i) {
    const uint32_t id = buf[i].id;
    rescored.push_back(
        {idx.storage().FullDistance(scratch.query, id, decode.data()), id});
  }
  std::sort(rescored.begin(), rescored.end());
  ids->clear();
  dists->clear();
  for (const auto& [dist, id] : rescored) {
    if (idx.IsDeleted(id)) continue;
    ids->push_back(id);
    dists->push_back(dist);
    if (ids->size() == k) break;
  }
  ids->resize(k, kInvalidId);
  dists->resize(k, kInvalidDist);
}

TEST(RerankerEquivalence, DynamicLvq4x8MatchesOldEpilogueUnderTombstones) {
  Dataset data = MakeDeepLike(1200, 50, 323);
  DynamicOptions opts;
  opts.graph_max_degree = 16;
  opts.build_window = 48;
  opts.metric = data.metric;
  opts.alpha = 1.2f;
  DynamicLvqDataset::Options lo;
  lo.bits1 = 4;
  lo.bits2 = 8;
  lo.mean = DynamicLvqDataset::SampleMean(data.base);
  const size_t dim = data.base.cols();
  DynamicLvqIndex idx(dim, opts,
                      DynamicLvqStorage(dim, opts.metric, std::move(lo)));
  std::vector<uint32_t> inserted;
  for (size_t i = 0; i < data.base.rows(); ++i) {
    inserted.push_back(idx.Insert(data.base.row(i)));
  }
  // Tombstone a deterministic slice so the deleted-id filter (and its
  // depth slack) is actually exercised, not just compiled.
  for (size_t i = 0; i < inserted.size(); i += 17) {
    ASSERT_TRUE(idx.Delete(inserted[i]).ok());
  }
  const size_t tomb = idx.num_tombstones();
  ASSERT_GT(tomb, 0u);

  const size_t k = 10;
  std::vector<uint32_t> want_ids;
  std::vector<float> want_dists;
  for (uint32_t rw : {uint32_t{0}, uint32_t{14}}) {
    DynamicLvqIndex::SearchScratch scratch;
    for (size_t qi = 0; qi < data.queries.rows(); ++qi) {
      SearchResult out;
      idx.Search(data.queries.row(qi), k, /*window=*/48, &out, &scratch,
                 /*rerank=*/true, rw);
      OldDynamicEpilogue(idx, scratch, k, rw, tomb, &want_ids, &want_dists);
      ExpectBitIdentical(out, want_ids, want_dists,
                         "dynamic rw=" + std::to_string(rw) + " query " +
                             std::to_string(qi));
    }
  }
}

}  // namespace
}  // namespace blink
