// Unit tests for dataset IO (fvecs/ivecs + native format).
#include "util/io.h"

#include <cstdio>
#include <gtest/gtest.h>
#include <string>

#include "util/prng.h"

namespace blink {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& name) {
    return testing::TempDir() + "blink_io_" + name;
  }
  void TearDown() override {
    for (const auto& p : cleanup_) std::remove(p.c_str());
  }
  std::string Track(const std::string& p) {
    cleanup_.push_back(p);
    return p;
  }
  std::vector<std::string> cleanup_;
};

TEST_F(IoTest, FvecsRoundTrip) {
  MatrixF m(7, 13);
  Rng rng(1);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.Gaussian();
  const std::string p = Track(Path("a.fvecs"));
  ASSERT_TRUE(WriteFvecs(p, m).ok());
  auto r = ReadFvecs(p);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows(), 7u);
  ASSERT_EQ(r.value().cols(), 13u);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(r.value().data()[i], m.data()[i]);
  }
}

TEST_F(IoTest, IvecsRoundTrip) {
  Matrix<int32_t> m(3, 5);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<int32_t>(i * 31 - 7);
  }
  const std::string p = Track(Path("a.ivecs"));
  ASSERT_TRUE(WriteIvecs(p, m).ok());
  auto r = ReadIvecs(p);
  ASSERT_TRUE(r.ok());
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(r.value().data()[i], m.data()[i]);
  }
}

TEST_F(IoTest, NativeF32RoundTrip) {
  MatrixF m(11, 4);
  Rng rng(2);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.UniformFloat();
  const std::string p = Track(Path("a.blnk"));
  ASSERT_TRUE(WriteNative(p, m).ok());
  auto r = ReadNativeF32(p);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().rows(), 11u);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(r.value().data()[i], m.data()[i]);
  }
}

TEST_F(IoTest, NativeU32RoundTrip) {
  Matrix<uint32_t> m(4, 9);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] = static_cast<uint32_t>(i);
  const std::string p = Track(Path("b.blnk"));
  ASSERT_TRUE(WriteNative(p, m).ok());
  auto r = ReadNativeU32(p);
  ASSERT_TRUE(r.ok());
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(r.value().data()[i], m.data()[i]);
  }
}

TEST_F(IoTest, DtypeMismatchIsAnError) {
  MatrixF m(2, 2);
  const std::string p = Track(Path("c.blnk"));
  ASSERT_TRUE(WriteNative(p, m).ok());
  auto r = ReadNativeU32(p);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IoTest, MissingFileIsIOError) {
  auto r = ReadFvecs("/nonexistent/path/x.fvecs");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST_F(IoTest, CorruptedHeaderRejected) {
  const std::string p = Track(Path("bad.fvecs"));
  FILE* f = std::fopen(p.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const int32_t bad_d = -4;
  std::fwrite(&bad_d, 4, 1, f);
  std::fclose(f);
  EXPECT_FALSE(ReadFvecs(p).ok());
}

TEST_F(IoTest, TruncatedPayloadRejected) {
  const std::string p = Track(Path("trunc.fvecs"));
  FILE* f = std::fopen(p.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const int32_t d = 8;
  const float vals[3] = {1, 2, 3};  // claims 8, writes 3
  std::fwrite(&d, 4, 1, f);
  std::fwrite(vals, 4, 3, f);
  std::fclose(f);
  EXPECT_FALSE(ReadFvecs(p).ok());
}

TEST_F(IoTest, BadMagicRejected) {
  const std::string p = Track(Path("magic.blnk"));
  FILE* f = std::fopen(p.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const uint32_t junk = 0xDEADBEEF;
  std::fwrite(&junk, 4, 1, f);
  std::fclose(f);
  EXPECT_FALSE(ReadNativeF32(p).ok());
}

// A native header whose rows*cols promises far more payload than the file
// holds must fail with a Status before the counts size any allocation
// (a forged 2^40-row header used to be an OOM, not an error).
TEST_F(IoTest, ForgedNativeRowCountRejected) {
  const std::string p = Track(Path("forged_rows.blnk"));
  FILE* f = std::fopen(p.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const uint32_t magic = 0x4B4E4C42u, version = 1, dtype = 0;
  const uint64_t rows = 1ull << 40, cols = 128;
  std::fwrite(&magic, 4, 1, f);
  std::fwrite(&version, 4, 1, f);
  std::fwrite(&rows, 8, 1, f);
  std::fwrite(&cols, 8, 1, f);
  std::fwrite(&dtype, 4, 1, f);
  const float payload[4] = {1, 2, 3, 4};  // a token payload, nowhere near
  std::fwrite(payload, 4, 4, f);
  std::fclose(f);
  auto r = ReadNativeF32(p);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  EXPECT_NE(r.status().ToString().find("file size"), std::string::npos);
}

// rows * cols * sizeof(T) overflowing size_t must not wrap into a small
// allocation that the payload read then overruns.
TEST_F(IoTest, OverflowingNativeShapeRejected) {
  const std::string p = Track(Path("forged_overflow.blnk"));
  FILE* f = std::fopen(p.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const uint32_t magic = 0x4B4E4C42u, version = 1, dtype = 2;
  const uint64_t rows = 1ull << 62, cols = 1ull << 62;
  std::fwrite(&magic, 4, 1, f);
  std::fwrite(&version, 4, 1, f);
  std::fwrite(&rows, 8, 1, f);
  std::fwrite(&cols, 8, 1, f);
  std::fwrite(&dtype, 4, 1, f);
  std::fclose(f);
  auto r = ReadNativeU32(p);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

// An fvecs dimension header in the plausible range must still agree with
// the file size (the existing modulo check), and an absurd one is rejected
// outright before it sizes row arithmetic.
TEST_F(IoTest, ImplausibleFvecsDimensionRejected) {
  const std::string p = Track(Path("forged_dim.fvecs"));
  FILE* f = std::fopen(p.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const int32_t d = (1 << 20) + 1;
  std::fwrite(&d, 4, 1, f);
  const float vals[2] = {0.5f, 0.25f};
  std::fwrite(vals, 4, 2, f);
  std::fclose(f);
  auto r = ReadFvecs(p);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(Status, ToStringAndCodes) {
  EXPECT_EQ(Status::OK().ToString(), "OK");
  const Status s = Status::InvalidArgument("boom");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("InvalidArgument"), std::string::npos);
  EXPECT_NE(s.ToString().find("boom"), std::string::npos);
}

TEST(ResultT, ValueAndStatusAccessors) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_TRUE(ok.status().ok());
  Result<int> bad(Status::NotFound("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(bad.value_or(7), 7);
}

}  // namespace
}  // namespace blink
