// Unit tests for index persistence (graph/serialize.h).
#include "graph/serialize.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <gtest/gtest.h>
#include <string>
#include <unistd.h>
#include <vector>

#include "testutil.h"
#include "util/binio.h"
#include "util/mmap_file.h"

namespace blink {
namespace {

using testutil::ExpectSameIds;
using testutil::SearchIds;

class SerializeTest : public testutil::TempPathTest {
 protected:
  /// Registers both files of an index bundle and returns the prefix.
  std::string BundlePrefix(const std::string& name) {
    const std::string graph = Path(name + ".graph");
    Path(name + ".vecs");
    return graph.substr(0, graph.size() - sizeof(".graph") + 1);
  }
};

TEST_F(SerializeTest, GraphRoundTrip) {
  Dataset data = MakeDeepLike(500, 5, 600);
  FloatStorage storage(data.base, data.metric);
  VamanaBuildParams bp;
  bp.graph_max_degree = 16;
  bp.window_size = 32;
  BuiltGraph g = BuildVamana(storage, bp);
  const std::string p = Path("a.graph");
  ASSERT_TRUE(SaveGraph(p, g.graph, g.entry_point).ok());
  auto r = LoadGraph(p, /*use_huge_pages=*/false);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const BuiltGraph& g2 = r.value();
  ASSERT_EQ(g2.graph.size(), g.graph.size());
  ASSERT_EQ(g2.graph.max_degree(), g.graph.max_degree());
  ASSERT_EQ(g2.entry_point, g.entry_point);
  for (size_t i = 0; i < g.graph.size(); ++i) {
    ASSERT_EQ(g2.graph.degree(i), g.graph.degree(i)) << i;
    for (uint32_t e = 0; e < g.graph.degree(i); ++e) {
      ASSERT_EQ(g2.graph.neighbors(i)[e], g.graph.neighbors(i)[e]) << i;
    }
  }
}

TEST_F(SerializeTest, LvqRoundTripIsBitExact) {
  Dataset data = MakeDeepLike(300, 5, 601);
  LvqDataset::Options o;
  o.bits = 8;
  LvqDataset ds = LvqDataset::Encode(data.base, o);
  const std::string p = Path("a.vecs");
  ASSERT_TRUE(SaveLvq(p, ds).ok());
  auto r = LoadLvq(p, false);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const LvqDataset& ds2 = r.value();
  ASSERT_EQ(ds2.size(), ds.size());
  ASSERT_EQ(ds2.dim(), ds.dim());
  ASSERT_EQ(ds2.bits(), ds.bits());
  ASSERT_EQ(ds2.vector_footprint(), ds.vector_footprint());
  EXPECT_EQ(ds2.mean(), ds.mean());
  for (size_t i = 0; i < ds.size(); ++i) {
    ASSERT_EQ(0, std::memcmp(ds2.blob(i), ds.blob(i), ds.vector_footprint()))
        << i;
  }
}

TEST_F(SerializeTest, Lvq2RoundTripIsBitExact) {
  Dataset data = MakeDeepLike(200, 5, 602);
  LvqDataset2::Options o;
  o.bits1 = 4;
  o.bits2 = 8;
  LvqDataset2 ds = LvqDataset2::Encode(data.base, o);
  const std::string p = Path("b.vecs");
  ASSERT_TRUE(SaveLvq2(p, ds).ok());
  auto r = LoadLvq2(p, false);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const LvqDataset2& ds2 = r.value();
  ASSERT_EQ(ds2.bits1(), 4);
  ASSERT_EQ(ds2.bits2(), 8);
  std::vector<float> a(ds.dim()), b(ds.dim());
  for (size_t i = 0; i < ds.size(); i += 13) {
    ds.Decode(i, a.data());
    ds2.Decode(i, b.data());
    for (size_t j = 0; j < ds.dim(); ++j) ASSERT_EQ(a[j], b[j]) << i;
  }
}

TEST_F(SerializeTest, FullIndexBundleServesIdenticalResults) {
  Dataset data = MakeDeepLike(1500, 30, 603);
  VamanaBuildParams bp;
  bp.graph_max_degree = 16;
  bp.window_size = 32;
  auto built = BuildOgLvq(data.base, data.metric, 8, 0, bp);
  const std::string prefix = BundlePrefix("bundle");
  ASSERT_TRUE(SaveOgLvqIndex(prefix, *built).ok());

  auto loaded = LoadOgLvqIndex(prefix, data.metric, bp, false);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  RuntimeParams p;
  p.window = 40;
  const size_t k = 10;
  ExpectSameIds(SearchIds(*built, data.queries, k, p),
                SearchIds(*loaded.value(), data.queries, k, p),
                "bundle round trip");
}

TEST_F(SerializeTest, TwoLevelBundleRoundTrips) {
  Dataset data = MakeDeepLike(800, 10, 604);
  VamanaBuildParams bp;
  bp.graph_max_degree = 16;
  bp.window_size = 32;
  auto built = BuildOgLvq(data.base, data.metric, 4, 8, bp);
  const std::string prefix = BundlePrefix("bundle2");
  ASSERT_TRUE(SaveOgLvqIndex(prefix, *built).ok());
  auto loaded = LoadOgLvqIndex(prefix, data.metric, bp, false);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value()->storage().has_second_level());
  RuntimeParams p;
  p.window = 32;
  ExpectSameIds(SearchIds(*built, data.queries, 10, p),
                SearchIds(*loaded.value(), data.queries, 10, p),
                "two-level bundle round trip");
}

TEST_F(SerializeTest, CorruptFilesRejected) {
  const std::string p = Path("bad.graph");
  FILE* f = std::fopen(p.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const uint32_t junk = 0x12345678;
  std::fwrite(&junk, 4, 1, f);
  std::fclose(f);
  EXPECT_FALSE(LoadGraph(p).ok());
  EXPECT_FALSE(LoadLvq(p).ok());
  EXPECT_FALSE(LoadLvq2(p).ok());
  EXPECT_FALSE(LoadGraph("/nonexistent/x.graph").ok());
}

TEST_F(SerializeTest, GraphWithOutOfRangeNeighborRejected) {
  FlatGraph g(4, 2, false);
  const uint32_t bogus[] = {99};  // beyond n=4
  g.SetNeighbors(0, bogus, 1);
  const std::string p = Path("oob.graph");
  ASSERT_TRUE(SaveGraph(p, g, 0).ok());
  EXPECT_FALSE(LoadGraph(p).ok());
}

TEST_F(SerializeTest, GraphWithOutOfRangeEntryPointRejected) {
  FlatGraph g(4, 2, false);
  const std::string p = Path("oob_entry.graph");
  ASSERT_TRUE(SaveGraph(p, g, /*entry_point=*/4).ok());  // beyond n=4
  EXPECT_FALSE(LoadGraph(p).ok());
}

// ---------------------------------------------------------------------------
// Atomic-save protocol: an interrupted save must never leave a torn file
// where the destination path is, and leftover temp files must be inert.
// ---------------------------------------------------------------------------

/// All bytes of a file, for before/after comparisons.
std::vector<uint8_t> Slurp(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<uint8_t> bytes;
  if (f != nullptr) {
    char buf[4096];
    size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      bytes.insert(bytes.end(), buf, buf + got);
    }
    std::fclose(f);
  }
  return bytes;
}

// A writer destroyed before Commit() — what an exception or early error
// return mid-save comes down to — leaves neither a destination file nor a
// stray temp behind.
TEST_F(SerializeTest, AbandonedAtomicWriteLeavesNothing) {
  const std::string p = Path("abandoned.graph");
  const std::string tmp = p + ".tmp." + std::to_string(::getpid());
  {
    binio::AtomicFile f(p);
    ASSERT_TRUE(f.ok());
    const uint32_t partial = 0x47414C42u;
    std::fwrite(&partial, 4, 1, f.get());
    // no Commit(): simulate the save dying mid-payload
  }
  FILE* dest = std::fopen(p.c_str(), "rb");
  EXPECT_EQ(dest, nullptr) << "destination must not exist";
  FILE* left = std::fopen(tmp.c_str(), "rb");
  EXPECT_EQ(left, nullptr) << "temp must be cleaned up";
  if (dest != nullptr) std::fclose(dest);
  if (left != nullptr) std::fclose(left);
}

// A crash hard enough to skip destructors (SIGKILL, power loss) leaves the
// partial temp file on disk. It must be invisible to loaders and a
// subsequent save of the same artifact must still succeed and replace
// nothing until its own commit.
TEST_F(SerializeTest, MidSaveCrashLeavesOldArtifactServable) {
  Dataset data = MakeDeepLike(200, 5, 604);
  FloatStorage storage(data.base, data.metric);
  VamanaBuildParams bp;
  bp.graph_max_degree = 8;
  bp.window_size = 16;
  BuiltGraph g = BuildVamana(storage, bp);
  const std::string p = Path("crashed.graph");
  const IndexMeta meta{data.metric, bp};
  ASSERT_TRUE(SaveGraph(p, g.graph, g.entry_point, &meta).ok());
  const std::vector<uint8_t> before = Slurp(p);

  // Simulate a crashed writer: a partial header under the temp-name
  // convention of some other (dead) process.
  const std::string stale = Path("crashed.graph.tmp.99999");
  FILE* f = std::fopen(stale.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const uint32_t partial = 0x47414C42u;
  std::fwrite(&partial, 4, 1, f);
  std::fclose(f);

  // The artifact still loads, byte-identical to what was committed.
  auto r = LoadGraph(p, /*use_huge_pages=*/false);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Slurp(p), before);

  // Saving again replaces the artifact atomically, stale temp and all.
  ASSERT_TRUE(SaveGraph(p, g.graph, g.entry_point, &meta).ok());
  EXPECT_TRUE(LoadGraph(p, false).ok());
}

// When the final rename cannot land (here: the destination is a
// directory), the save must report the failure and clean up its temp.
TEST_F(SerializeTest, FailedCommitReportsAndCleansUp) {
  FlatGraph g(4, 2, false);
  const std::string p = DirPath("rename_target.graph");
  std::filesystem::create_directories(p);  // rename over a directory fails
  const Status st = SaveGraph(p, g, 0);
  EXPECT_FALSE(st.ok());
  const std::string tmp = p + ".tmp." + std::to_string(::getpid());
  FILE* left = std::fopen(tmp.c_str(), "rb");
  EXPECT_EQ(left, nullptr) << "temp must be cleaned up after failed rename";
  if (left != nullptr) std::fclose(left);
}

// ---------------------------------------------------------------------------
// Map-mode loaders (v3 aligned artifacts).
// ---------------------------------------------------------------------------

TEST_F(SerializeTest, MappedGraphMatchesLoaded) {
  Dataset data = MakeDeepLike(300, 5, 605);
  FloatStorage storage(data.base, data.metric);
  VamanaBuildParams bp;
  bp.graph_max_degree = 12;
  bp.window_size = 24;
  BuiltGraph g = BuildVamana(storage, bp);
  const std::string p = Path("mapped.graph");
  const IndexMeta meta{data.metric, bp};
  ASSERT_TRUE(SaveGraph(p, g.graph, g.entry_point, &meta).ok());
  ASSERT_TRUE(IsMappableArtifact(p));

  auto map = MmapFile::Map(p);
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  IndexMeta got_meta;
  bool has_meta = false;
  auto r = MapGraph(map.value(), p, &got_meta, &has_meta);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const BuiltGraph& m = r.value();
  EXPECT_TRUE(m.graph.mapped());
  EXPECT_TRUE(has_meta);
  EXPECT_EQ(got_meta.metric, data.metric);
  EXPECT_EQ(got_meta.params.window_size, bp.window_size);
  ASSERT_EQ(m.graph.size(), g.graph.size());
  ASSERT_EQ(m.graph.max_degree(), g.graph.max_degree());
  ASSERT_EQ(m.entry_point, g.entry_point);
  for (size_t i = 0; i < g.graph.size(); ++i) {
    ASSERT_EQ(m.graph.degree(i), g.graph.degree(i)) << i;
    ASSERT_EQ(0, std::memcmp(m.graph.neighbors(i), g.graph.neighbors(i),
                             g.graph.degree(i) * sizeof(uint32_t)))
        << i;
  }
  // The v3 contract: the mapped row section sits on a 64-byte file offset,
  // so SIMD loads over it are cache-line aligned.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(m.graph.neighbors(0)) % 64, 4u)
      << "row 0 ids follow the 4-byte degree at an aligned row base";
}

TEST_F(SerializeTest, MappedLvqIsBitExact) {
  Dataset data = MakeDeepLike(150, 5, 606);
  LvqDataset::Options o;
  o.bits = 8;
  LvqDataset ds = LvqDataset::Encode(data.base, o);
  const std::string p = Path("mapped.vecs");
  ASSERT_TRUE(SaveLvq(p, ds).ok());
  ASSERT_TRUE(IsMappableArtifact(p));
  auto map = MmapFile::Map(p);
  ASSERT_TRUE(map.ok());
  auto r = MapLvq(map.value(), p);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const LvqDataset& m = r.value();
  EXPECT_TRUE(m.mapped());
  ASSERT_EQ(m.size(), ds.size());
  EXPECT_EQ(m.mean(), ds.mean());
  for (size_t i = 0; i < ds.size(); ++i) {
    ASSERT_EQ(0, std::memcmp(m.blob(i), ds.blob(i), ds.vector_footprint()))
        << i;
  }
  EXPECT_EQ(reinterpret_cast<uintptr_t>(m.raw_blob()) % 64, 0u);
}

TEST_F(SerializeTest, MappedLvq2IsBitExact) {
  Dataset data = MakeDeepLike(120, 5, 607);
  LvqDataset2::Options o;
  o.bits1 = 4;
  o.bits2 = 8;
  LvqDataset2 ds = LvqDataset2::Encode(data.base, o);
  const std::string p = Path("mapped2.vecs");
  ASSERT_TRUE(SaveLvq2(p, ds).ok());
  ASSERT_TRUE(IsMappableArtifact(p));
  auto map = MmapFile::Map(p);
  ASSERT_TRUE(map.ok());
  auto r = MapLvq2(map.value(), p);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const LvqDataset2& m = r.value();
  ASSERT_EQ(m.size(), ds.size());
  ASSERT_EQ(m.bits2(), ds.bits2());
  for (size_t i = 0; i < ds.size(); ++i) {
    ASSERT_EQ(0, std::memcmp(m.residual_codes(i), ds.residual_codes(i),
                             ds.residual_stride()))
        << i;
  }
  EXPECT_EQ(reinterpret_cast<uintptr_t>(m.raw_residuals()) % 64, 0u);
}

// Pre-v3 artifacts are not mappable; the probe says so and the loaders
// refuse with Unsupported (Open() uses the probe to fall back to heap).
TEST_F(SerializeTest, LegacyGraphIsNotMappable) {
  FlatGraph g(4, 2, false);
  const std::string p = Path("legacy.graph");
  ASSERT_TRUE(SaveGraph(p, g, 0).ok());  // no meta => legacy v1 layout
  EXPECT_FALSE(IsMappableArtifact(p));
  auto map = MmapFile::Map(p);
  ASSERT_TRUE(map.ok());
  auto r = MapGraph(map.value(), p);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

}  // namespace
}  // namespace blink
