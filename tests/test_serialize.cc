// Unit tests for index persistence (graph/serialize.h).
#include "graph/serialize.h"

#include <cstdio>
#include <gtest/gtest.h>

#include "testutil.h"

namespace blink {
namespace {

using testutil::ExpectSameIds;
using testutil::SearchIds;

class SerializeTest : public testutil::TempPathTest {
 protected:
  /// Registers both files of an index bundle and returns the prefix.
  std::string BundlePrefix(const std::string& name) {
    const std::string graph = Path(name + ".graph");
    Path(name + ".vecs");
    return graph.substr(0, graph.size() - sizeof(".graph") + 1);
  }
};

TEST_F(SerializeTest, GraphRoundTrip) {
  Dataset data = MakeDeepLike(500, 5, 600);
  FloatStorage storage(data.base, data.metric);
  VamanaBuildParams bp;
  bp.graph_max_degree = 16;
  bp.window_size = 32;
  BuiltGraph g = BuildVamana(storage, bp);
  const std::string p = Path("a.graph");
  ASSERT_TRUE(SaveGraph(p, g.graph, g.entry_point).ok());
  auto r = LoadGraph(p, /*use_huge_pages=*/false);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const BuiltGraph& g2 = r.value();
  ASSERT_EQ(g2.graph.size(), g.graph.size());
  ASSERT_EQ(g2.graph.max_degree(), g.graph.max_degree());
  ASSERT_EQ(g2.entry_point, g.entry_point);
  for (size_t i = 0; i < g.graph.size(); ++i) {
    ASSERT_EQ(g2.graph.degree(i), g.graph.degree(i)) << i;
    for (uint32_t e = 0; e < g.graph.degree(i); ++e) {
      ASSERT_EQ(g2.graph.neighbors(i)[e], g.graph.neighbors(i)[e]) << i;
    }
  }
}

TEST_F(SerializeTest, LvqRoundTripIsBitExact) {
  Dataset data = MakeDeepLike(300, 5, 601);
  LvqDataset::Options o;
  o.bits = 8;
  LvqDataset ds = LvqDataset::Encode(data.base, o);
  const std::string p = Path("a.vecs");
  ASSERT_TRUE(SaveLvq(p, ds).ok());
  auto r = LoadLvq(p, false);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const LvqDataset& ds2 = r.value();
  ASSERT_EQ(ds2.size(), ds.size());
  ASSERT_EQ(ds2.dim(), ds.dim());
  ASSERT_EQ(ds2.bits(), ds.bits());
  ASSERT_EQ(ds2.vector_footprint(), ds.vector_footprint());
  EXPECT_EQ(ds2.mean(), ds.mean());
  for (size_t i = 0; i < ds.size(); ++i) {
    ASSERT_EQ(0, std::memcmp(ds2.blob(i), ds.blob(i), ds.vector_footprint()))
        << i;
  }
}

TEST_F(SerializeTest, Lvq2RoundTripIsBitExact) {
  Dataset data = MakeDeepLike(200, 5, 602);
  LvqDataset2::Options o;
  o.bits1 = 4;
  o.bits2 = 8;
  LvqDataset2 ds = LvqDataset2::Encode(data.base, o);
  const std::string p = Path("b.vecs");
  ASSERT_TRUE(SaveLvq2(p, ds).ok());
  auto r = LoadLvq2(p, false);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const LvqDataset2& ds2 = r.value();
  ASSERT_EQ(ds2.bits1(), 4);
  ASSERT_EQ(ds2.bits2(), 8);
  std::vector<float> a(ds.dim()), b(ds.dim());
  for (size_t i = 0; i < ds.size(); i += 13) {
    ds.Decode(i, a.data());
    ds2.Decode(i, b.data());
    for (size_t j = 0; j < ds.dim(); ++j) ASSERT_EQ(a[j], b[j]) << i;
  }
}

TEST_F(SerializeTest, FullIndexBundleServesIdenticalResults) {
  Dataset data = MakeDeepLike(1500, 30, 603);
  VamanaBuildParams bp;
  bp.graph_max_degree = 16;
  bp.window_size = 32;
  auto built = BuildOgLvq(data.base, data.metric, 8, 0, bp);
  const std::string prefix = BundlePrefix("bundle");
  ASSERT_TRUE(SaveOgLvqIndex(prefix, *built).ok());

  auto loaded = LoadOgLvqIndex(prefix, data.metric, bp, false);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  RuntimeParams p;
  p.window = 40;
  const size_t k = 10;
  ExpectSameIds(SearchIds(*built, data.queries, k, p),
                SearchIds(*loaded.value(), data.queries, k, p),
                "bundle round trip");
}

TEST_F(SerializeTest, TwoLevelBundleRoundTrips) {
  Dataset data = MakeDeepLike(800, 10, 604);
  VamanaBuildParams bp;
  bp.graph_max_degree = 16;
  bp.window_size = 32;
  auto built = BuildOgLvq(data.base, data.metric, 4, 8, bp);
  const std::string prefix = BundlePrefix("bundle2");
  ASSERT_TRUE(SaveOgLvqIndex(prefix, *built).ok());
  auto loaded = LoadOgLvqIndex(prefix, data.metric, bp, false);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value()->storage().has_second_level());
  RuntimeParams p;
  p.window = 32;
  ExpectSameIds(SearchIds(*built, data.queries, 10, p),
                SearchIds(*loaded.value(), data.queries, 10, p),
                "two-level bundle round trip");
}

TEST_F(SerializeTest, CorruptFilesRejected) {
  const std::string p = Path("bad.graph");
  FILE* f = std::fopen(p.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const uint32_t junk = 0x12345678;
  std::fwrite(&junk, 4, 1, f);
  std::fclose(f);
  EXPECT_FALSE(LoadGraph(p).ok());
  EXPECT_FALSE(LoadLvq(p).ok());
  EXPECT_FALSE(LoadLvq2(p).ok());
  EXPECT_FALSE(LoadGraph("/nonexistent/x.graph").ok());
}

TEST_F(SerializeTest, GraphWithOutOfRangeNeighborRejected) {
  FlatGraph g(4, 2, false);
  const uint32_t bogus[] = {99};  // beyond n=4
  g.SetNeighbors(0, bogus, 1);
  const std::string p = Path("oob.graph");
  ASSERT_TRUE(SaveGraph(p, g, 0).ok());
  EXPECT_FALSE(LoadGraph(p).ok());
}

}  // namespace
}  // namespace blink
