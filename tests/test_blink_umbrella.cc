// Build-surface guard: this TU includes ONLY the umbrella header (plus
// gtest), so it fails to compile the moment blink.h stops being
// self-contained — a missing transitive include, a renamed public symbol,
// or header rot in any of the layers it pulls in.
//
// The test itself is one end-to-end round trip through the public API:
// synthesize a dataset, build an OG-LVQ index, search it, and check recall
// against exact ground truth, exercising quantization, graph build, SIMD
// dispatch, and evaluation in one pass.
#include "blink.h"

#include <gtest/gtest.h>

namespace blink {
namespace {

TEST(BlinkUmbrella, BuildSearchRecallRoundTrip) {
  Dataset data = MakeDeepLike(/*n=*/2000, /*nq=*/50);
  ASSERT_EQ(data.base.cols(), data.queries.cols());

  VamanaBuildParams bp;
  bp.graph_max_degree = 24;
  bp.window_size = 48;
  bp.alpha = data.metric == Metric::kL2 ? 1.2f : 0.95f;
  auto index =
      BuildOgLvq(data.base, data.metric, /*bits1=*/8, /*bits2=*/0, bp);
  ASSERT_NE(index, nullptr);
  EXPECT_GT(index->memory_bytes(), 0u);

  const size_t k = 10;
  RuntimeParams params;
  params.window = 40;
  Matrix<uint32_t> ids(data.queries.rows(), k);
  index->SearchBatch(data.queries, k, params, ids.data());

  Matrix<uint32_t> gt =
      ComputeGroundTruth(data.base, data.queries, k, data.metric);
  const double recall = MeanRecallAtK(ids, gt, k);
  // LVQ-8 at this scale should be near-exact; 0.8 leaves slack for the
  // quantization error while still catching a broken pipeline.
  EXPECT_GE(recall, 0.8) << "end-to-end recall collapsed";
}

TEST(BlinkUmbrella, SimdBackendIsSelected) {
  const char* name = simd::BackendName();
  ASSERT_NE(name, nullptr);
  const bool known = std::string(name) == "scalar" ||
                     std::string(name) == "avx2" ||
                     std::string(name) == "avx512";
  EXPECT_TRUE(known) << "unknown backend: " << name;
}

}  // namespace
}  // namespace blink
