// Unit tests for the small linear-algebra kit (Jacobi SVD for OPQ).
#include "util/linalg.h"

#include <cmath>
#include <gtest/gtest.h>

#include "util/prng.h"

namespace blink {
namespace {

MatrixF RandomSquare(size_t n, uint64_t seed) {
  MatrixF m(n, n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) m(i, j) = rng.Gaussian();
  }
  return m;
}

void ExpectSvdReconstructs(const MatrixF& a, const SvdResult& svd,
                           double tol) {
  const size_t n = a.rows();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < n; ++k) {
        acc += static_cast<double>(svd.u(i, k)) * svd.s[k] * svd.v(j, k);
      }
      EXPECT_NEAR(acc, a(i, j), tol) << i << "," << j;
    }
  }
}

TEST(JacobiSvd, ReconstructsRandomMatrix) {
  MatrixF a = RandomSquare(12, 1);
  SvdResult svd = JacobiSvd(a);
  ExpectSvdReconstructs(a, svd, 1e-3);
}

TEST(JacobiSvd, FactorsAreOrthogonal) {
  MatrixF a = RandomSquare(16, 2);
  SvdResult svd = JacobiSvd(a);
  EXPECT_LT(OrthogonalityDefect(svd.u), 1e-3);
  EXPECT_LT(OrthogonalityDefect(svd.v), 1e-3);
}

TEST(JacobiSvd, SingularValuesNonNegative) {
  MatrixF a = RandomSquare(10, 3);
  SvdResult svd = JacobiSvd(a);
  for (float s : svd.s) EXPECT_GE(s, 0.0f);
}

TEST(JacobiSvd, IdentityMatrix) {
  MatrixF a(8, 8);
  for (size_t i = 0; i < 8; ++i) a(i, i) = 1.0f;
  SvdResult svd = JacobiSvd(a);
  for (float s : svd.s) EXPECT_NEAR(s, 1.0f, 1e-5f);
  ExpectSvdReconstructs(a, svd, 1e-5);
}

TEST(JacobiSvd, DiagonalMatrixRecoversDiagonal) {
  MatrixF a(6, 6);
  const float diag[6] = {5.0f, 3.0f, 1.0f, 0.5f, 7.0f, 2.0f};
  for (size_t i = 0; i < 6; ++i) a(i, i) = diag[i];
  SvdResult svd = JacobiSvd(a);
  std::vector<float> s = svd.s;
  std::sort(s.begin(), s.end());
  std::vector<float> want(diag, diag + 6);
  std::sort(want.begin(), want.end());
  for (size_t i = 0; i < 6; ++i) EXPECT_NEAR(s[i], want[i], 1e-4f);
}

TEST(JacobiSvd, LargerMatrixStillAccurate) {
  MatrixF a = RandomSquare(96, 4);
  SvdResult svd = JacobiSvd(a);
  EXPECT_LT(OrthogonalityDefect(svd.u), 1e-2);
  ExpectSvdReconstructs(a, svd, 5e-3);
}

// --- degenerate inputs ------------------------------------------------------
// The LeanVec trainer (quant/leanvec.h) eigendecomposes sample covariances
// that can be arbitrarily rank-deficient (duplicate rows, constant dims).
// One-sided Jacobi builds V purely from rotations, so V must stay
// orthonormal and finite even when singular values vanish; U is allowed
// its zero columns (see the comment in linalg.cc).

TEST(JacobiSvd, RankOneGramKeepsVOrthonormal) {
  // Covariance of a sample whose rows all repeat: x x^T, rank 1.
  const size_t n = 12;
  std::vector<float> x(n);
  Rng rng(11);
  for (auto& v : x) v = rng.Gaussian();
  MatrixF a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) a(i, j) = x[i] * x[j];
  }
  SvdResult svd = JacobiSvd(a);
  EXPECT_LT(OrthogonalityDefect(svd.v), 1e-3);
  size_t significant = 0;
  for (float s : svd.s) {
    ASSERT_TRUE(std::isfinite(s));
    EXPECT_GE(s, 0.0f);
    if (s > 1e-3f) ++significant;
  }
  EXPECT_EQ(significant, 1u);
  for (size_t i = 0; i < svd.v.size(); ++i) {
    ASSERT_TRUE(std::isfinite(svd.v.data()[i])) << "V index " << i;
  }
}

TEST(JacobiSvd, ZeroBlockKeepsVOrthonormal) {
  // Covariance with constant dims: leading 4x4 block exactly zero.
  const size_t n = 10;
  MatrixF c(8, n);
  Rng rng(12);
  for (size_t i = 0; i < 8; ++i) {
    for (size_t j = 0; j < n; ++j) c(i, j) = j < 4 ? 0.0f : rng.Gaussian();
  }
  MatrixF a = GramProduct(c, c);
  SvdResult svd = JacobiSvd(a);
  EXPECT_LT(OrthogonalityDefect(svd.v), 1e-3);
  for (float s : svd.s) {
    ASSERT_TRUE(std::isfinite(s));
    EXPECT_GE(s, 0.0f);
  }
  ExpectSvdReconstructs(a, svd, 1e-2);
}

TEST(JacobiSvd, AllZeroMatrixIsHandled) {
  MatrixF a(6, 6);
  SvdResult svd = JacobiSvd(a);
  for (float s : svd.s) EXPECT_EQ(s, 0.0f);
  // No rotation ever fires, so V is exactly the identity.
  EXPECT_LT(OrthogonalityDefect(svd.v), 1e-6);
  for (size_t i = 0; i < svd.u.size(); ++i) {
    ASSERT_TRUE(std::isfinite(svd.u.data()[i]));
  }
}

TEST(GramProduct, MatchesNaive) {
  Rng rng(5);
  MatrixF a(7, 4), b(7, 3);
  for (size_t i = 0; i < 7; ++i) {
    for (size_t j = 0; j < 4; ++j) a(i, j) = rng.Gaussian();
    for (size_t j = 0; j < 3; ++j) b(i, j) = rng.Gaussian();
  }
  MatrixF g = GramProduct(a, b);
  ASSERT_EQ(g.rows(), 4u);
  ASSERT_EQ(g.cols(), 3u);
  for (size_t p = 0; p < 4; ++p) {
    for (size_t q = 0; q < 3; ++q) {
      double want = 0.0;
      for (size_t i = 0; i < 7; ++i) want += a(i, p) * b(i, q);
      EXPECT_NEAR(g(p, q), want, 1e-4);
    }
  }
}

TEST(RowTimesMatrix, ForwardAndTransposeAreConsistent) {
  Rng rng(6);
  const size_t d = 9;
  MatrixF r(d, d);
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < d; ++j) r(i, j) = rng.Gaussian();
  }
  std::vector<float> x(d), y(d), back(d);
  for (auto& v : x) v = rng.Gaussian();
  RowTimesMatrix(x.data(), r, y.data());
  // Naive check of y = x * R.
  for (size_t j = 0; j < d; ++j) {
    double want = 0.0;
    for (size_t i = 0; i < d; ++i) want += x[i] * r(i, j);
    EXPECT_NEAR(y[j], want, 1e-4);
  }
  // For orthogonal R, RowTimesMatrixT inverts RowTimesMatrix. Build one via
  // SVD of a random matrix (U is orthogonal).
  SvdResult svd = JacobiSvd(r);
  RowTimesMatrix(x.data(), svd.u, y.data());
  RowTimesMatrixT(y.data(), svd.u, back.data());
  for (size_t j = 0; j < d; ++j) EXPECT_NEAR(back[j], x[j], 1e-3);
}

}  // namespace
}  // namespace blink
