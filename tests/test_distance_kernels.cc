// Unit tests for the SIMD distance kernels: every optimized kernel must
// agree with the scalar reference across dimensions (including every tail
// length), encodings, and static/dynamic dispatch.
#include "simd/distance.h"

#include <cmath>
#include <gtest/gtest.h>
#include <vector>

#include "quant/packing.h"
#include "util/prng.h"

namespace blink::simd {
namespace {

std::vector<float> RandomVec(size_t d, Rng& rng, float lo = -2.0f,
                             float hi = 2.0f) {
  std::vector<float> v(d);
  for (auto& x : v) x = rng.Uniform(lo, hi);
  return v;
}

// Relative tolerance: SIMD reassociation changes rounding, not math.
void ExpectClose(float a, float b, float scale) {
  EXPECT_NEAR(a, b, 1e-4f * std::max(1.0f, std::fabs(scale)));
}

class KernelDims : public ::testing::TestWithParam<size_t> {};

TEST_P(KernelDims, L2MatchesReference) {
  const size_t d = GetParam();
  Rng rng(d);
  const auto a = RandomVec(d, rng), b = RandomVec(d, rng);
  ExpectClose(L2Sqr(a.data(), b.data(), d), ref::L2Sqr(a.data(), b.data(), d),
              ref::L2Sqr(a.data(), b.data(), d));
}

TEST_P(KernelDims, IpMatchesReference) {
  const size_t d = GetParam();
  Rng rng(d + 1);
  const auto a = RandomVec(d, rng), b = RandomVec(d, rng);
  ExpectClose(IpDist(a.data(), b.data(), d), ref::IpDist(a.data(), b.data(), d),
              static_cast<float>(d));
}

TEST_P(KernelDims, F16MatchesReference) {
  const size_t d = GetParam();
  Rng rng(d + 2);
  const auto q = RandomVec(d, rng);
  std::vector<Float16> v(d);
  for (size_t j = 0; j < d; ++j) v[j] = Float16(rng.Uniform(-2.0f, 2.0f));
  ExpectClose(L2SqrF16(q.data(), v.data(), d),
              ref::L2SqrF16(q.data(), v.data(), d), static_cast<float>(d));
  ExpectClose(IpDistF16(q.data(), v.data(), d),
              ref::IpDistF16(q.data(), v.data(), d), static_cast<float>(d));
}

TEST_P(KernelDims, U8MatchesReferenceAndDecodedF32) {
  const size_t d = GetParam();
  Rng rng(d + 3);
  const auto q = RandomVec(d, rng);
  std::vector<uint8_t> codes(d);
  for (auto& c : codes) c = static_cast<uint8_t>(rng.Bounded(256));
  const float delta = 0.0123f, lower = -1.1f;

  const float got_l2 = L2SqrU8(q.data(), codes.data(), delta, lower, d);
  const float want_l2 = ref::L2SqrU8(q.data(), codes.data(), delta, lower, d);
  ExpectClose(got_l2, want_l2, want_l2);

  // The fused kernel equals decode-then-float32-distance.
  std::vector<float> dec(d);
  for (size_t j = 0; j < d; ++j) dec[j] = delta * codes[j] + lower;
  ExpectClose(got_l2, ref::L2Sqr(q.data(), dec.data(), d), want_l2);

  ExpectClose(IpDistU8(q.data(), codes.data(), delta, lower, d),
              ref::IpDistU8(q.data(), codes.data(), delta, lower, d),
              static_cast<float>(d));
}

TEST_P(KernelDims, U4MatchesReference) {
  const size_t d = GetParam();
  Rng rng(d + 4);
  const auto q = RandomVec(d, rng);
  std::vector<uint8_t> codes(PackedBytes(d, 4) + 8, 0);  // slack for SIMD loads
  for (size_t j = 0; j < d; ++j) {
    PackCode(codes.data(), j, 4, static_cast<uint32_t>(rng.Bounded(16)));
  }
  const float delta = 0.21f, lower = -1.6f;
  const float want = ref::L2SqrU4(q.data(), codes.data(), delta, lower, d);
  ExpectClose(L2SqrU4(q.data(), codes.data(), delta, lower, d), want, want);
  ExpectClose(IpDistU4(q.data(), codes.data(), delta, lower, d),
              ref::IpDistU4(q.data(), codes.data(), delta, lower, d),
              static_cast<float>(d));
}

TEST_P(KernelDims, StaticAndDynamicDispatchAgree) {
  const size_t d = GetParam();
  Rng rng(d + 5);
  const auto a = RandomVec(d, rng), b = RandomVec(d, rng);
  const float dyn = GetL2F32Dynamic()(a.data(), b.data(), d);
  const float sta = GetL2F32(d)(a.data(), b.data(), d);
  EXPECT_FLOAT_EQ(dyn, sta);
}

// Every tail phase 1..33 plus the paper's dataset dimensionalities.
INSTANTIATE_TEST_SUITE_P(
    TailPhasesAndPaperDims, KernelDims,
    ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16,
                      17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30,
                      31, 32, 33, 50, 96, 128, 200, 256, 768, 960));

TEST(Kernels, ZeroDistanceForIdenticalVectors) {
  Rng rng(77);
  const auto a = RandomVec(96, rng);
  EXPECT_FLOAT_EQ(L2Sqr(a.data(), a.data(), 96), 0.0f);
}

TEST(Kernels, L2IsSymmetric) {
  Rng rng(78);
  const auto a = RandomVec(100, rng), b = RandomVec(100, rng);
  EXPECT_FLOAT_EQ(L2Sqr(a.data(), b.data(), 100), L2Sqr(b.data(), a.data(), 100));
}

TEST(Kernels, IpDistIsNegatedDotProduct) {
  std::vector<float> a = {1.0f, 2.0f, 3.0f};
  std::vector<float> b = {4.0f, -5.0f, 6.0f};
  EXPECT_FLOAT_EQ(IpDist(a.data(), b.data(), 3), -(4.0f - 10.0f + 18.0f));
}

TEST(Kernels, UnfusedU8MatchesFused) {
  Rng rng(79);
  const size_t d = 96;
  const auto q = RandomVec(d, rng);
  std::vector<uint8_t> codes(d);
  for (auto& c : codes) c = static_cast<uint8_t>(rng.Bounded(256));
  std::vector<float> scratch(d);
  const float fused = L2SqrU8(q.data(), codes.data(), 0.01f, -0.5f, d);
  const float unfused =
      L2SqrU8Unfused(q.data(), codes.data(), 0.01f, -0.5f, d, scratch.data());
  EXPECT_NEAR(fused, unfused, 1e-4f * std::max(1.0f, fused));
}

TEST(Kernels, HasStaticDimForPaperDatasets) {
  for (size_t d : {25u, 50u, 96u, 128u, 200u, 768u, 960u}) {
    EXPECT_TRUE(HasStaticDim(d)) << d;
  }
  EXPECT_FALSE(HasStaticDim(97));
}

TEST(Kernels, BackendNameIsKnown) {
  const std::string name = BackendName();
  EXPECT_TRUE(name == "avx512" || name == "avx2" || name == "scalar") << name;
}

TEST(Kernels, PrefetchBytesDoesNotCrash) {
  std::vector<uint8_t> buf(4096);
  PrefetchBytes(buf.data(), buf.size());
}

}  // namespace
}  // namespace blink::simd
