// Unit tests for the storage codecs behind the graph engine (the Storage
// concept of graph/storage.h): query preparation, traversal vs full
// distances, prefetch hooks, naming and memory accounting.
#include "graph/storage.h"

#include <cmath>
#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "graph/index.h"
#include "simd/distance.h"
#include "util/prng.h"

namespace blink {
namespace {

MatrixF SmallData(size_t n, size_t d, uint64_t seed) {
  MatrixF m(n, d);
  Rng rng(seed);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.Gaussian();
  return m;
}

TEST(FloatStorage, DistanceMatchesKernels) {
  MatrixF data = SmallData(50, 96, 1);
  FloatStorage s(data, Metric::kL2);
  FloatStorage::Query q;
  s.PrepareQuery(data.row(3), &q);
  EXPECT_FLOAT_EQ(s.Distance(q, 3), 0.0f);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_NEAR(s.Distance(q, i), simd::ref::L2Sqr(data.row(3), data.row(i), 96),
                1e-3f * std::max(1.0f, s.Distance(q, i)));
  }
}

TEST(FloatStorage, FullDistanceEqualsDistance) {
  MatrixF data = SmallData(20, 32, 2);
  FloatStorage s(data, Metric::kL2);
  FloatStorage::Query q;
  s.PrepareQuery(data.row(0), &q);
  float scratch[32];
  EXPECT_FALSE(s.has_second_level());
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_FLOAT_EQ(s.Distance(q, i), s.FullDistance(q, i, scratch));
  }
}

TEST(F16Storage, DecodeIsFloat16Rounding) {
  MatrixF data = SmallData(30, 24, 3);
  F16Storage s(data, Metric::kL2);
  std::vector<float> dec(24);
  s.DecodeVector(7, dec.data());
  for (size_t j = 0; j < 24; ++j) {
    EXPECT_EQ(dec[j], static_cast<float>(Float16(data(7, j))));
  }
}

TEST(F16Storage, IpMetricAgreesWithReference) {
  MatrixF data = SmallData(30, 40, 4);
  F16Storage s(data, Metric::kInnerProduct);
  F16Storage::Query q;
  std::vector<float> query(40);
  Rng rng(5);
  for (auto& v : query) v = rng.Gaussian();
  s.PrepareQuery(query.data(), &q);
  std::vector<float> dec(40);
  for (size_t i = 0; i < 30; ++i) {
    s.DecodeVector(i, dec.data());
    EXPECT_NEAR(s.Distance(q, i), simd::ref::IpDist(query.data(), dec.data(), 40),
                1e-3f);
  }
}

TEST(LvqStorage, EncodingNamesIdentifyConfig) {
  MatrixF data = SmallData(10, 16, 6);
  LvqStorage one(data, Metric::kL2, 8);
  LvqStorage two(data, Metric::kL2, 4, 8, 32);
  EXPECT_STREQ(one.encoding_name(), "LVQ-8");
  EXPECT_STREQ(two.encoding_name(), "LVQ-4x8");
  EXPECT_FALSE(one.has_second_level());
  EXPECT_TRUE(two.has_second_level());
}

TEST(LvqStorage, Lvq8x8ConfigurationWorks) {
  // The paper's LVQ-8x8 small-scale setting: 8-bit traversal + 8-bit
  // residual re-rank.
  MatrixF data = SmallData(60, 48, 7);
  LvqStorage s(data, Metric::kL2, 8, 8, 32);
  EXPECT_STREQ(s.encoding_name(), "LVQ-8x8");
  LvqStorage::Query q;
  std::vector<float> query(48);
  Rng rng(8);
  for (auto& v : query) v = rng.Gaussian();
  s.PrepareQuery(query.data(), &q);
  std::vector<float> scratch(48), dec(48);
  for (size_t i = 0; i < 60; ++i) {
    // FullDistance must be strictly more accurate than the traversal
    // distance relative to the true distance.
    s.DecodeVector(i, dec.data());  // two-level reconstruction
    const float full = s.FullDistance(q, i, scratch.data());
    const float truth = simd::ref::L2Sqr(query.data(), dec.data(), 48);
    EXPECT_NEAR(full, truth, 1e-2f * std::max(1.0f, truth));
  }
}

TEST(LvqStorage, IpBiasCorrectionIsExact) {
  // IP distances must match -<q, decode(i)> including the mean term.
  MatrixF data = SmallData(40, 32, 9);
  LvqStorage s(data, Metric::kInnerProduct, 8);
  std::vector<float> query(32);
  Rng rng(10);
  for (auto& v : query) v = rng.Gaussian();
  LvqStorage::Query q;
  s.PrepareQuery(query.data(), &q);
  std::vector<float> dec(32);
  for (size_t i = 0; i < 40; ++i) {
    s.DecodeVector(i, dec.data());
    EXPECT_NEAR(s.Distance(q, i), simd::ref::IpDist(query.data(), dec.data(), 32),
                5e-3f);
  }
}

TEST(LvqStorage, TwoLevelMemoryExceedsOneLevel) {
  MatrixF data = SmallData(100, 96, 11);
  LvqStorage one(data, Metric::kL2, 4);
  LvqStorage two(data, Metric::kL2, 4, 8, 32);
  EXPECT_GT(two.memory_bytes(), one.memory_bytes());
  EXPECT_EQ(two.memory_bytes() - one.memory_bytes(), 100u * 96u);  // 8b codes
}

TEST(GlobalQuantStorage, DistanceMatchesDecoded) {
  MatrixF data = SmallData(40, 64, 12);
  for (int bits : {4, 8}) {
    GlobalQuantStorage s(data, Metric::kL2, bits, 0);
    GlobalQuantStorage::Query q;
    std::vector<float> query(64);
    Rng rng(13 + bits);
    for (auto& v : query) v = rng.Gaussian();
    s.PrepareQuery(query.data(), &q);
    std::vector<float> dec(64);
    for (size_t i = 0; i < 40; ++i) {
      s.DecodeVector(i, dec.data());
      const float truth = simd::ref::L2Sqr(query.data(), dec.data(), 64);
      EXPECT_NEAR(s.Distance(q, i), truth, 2e-3f * std::max(1.0f, truth))
          << "bits=" << bits;
    }
  }
}

TEST(GlobalQuantStorage, TwoLevelFullDistanceMoreAccurate) {
  MatrixF data = SmallData(60, 32, 14);
  GlobalQuantStorage s(data, Metric::kL2, 4, 8);
  ASSERT_TRUE(s.has_second_level());
  std::vector<float> query(32);
  Rng rng(15);
  for (auto& v : query) v = rng.Gaussian();
  GlobalQuantStorage::Query q;
  s.PrepareQuery(query.data(), &q);
  std::vector<float> scratch(32);
  double err_l1 = 0.0, err_full = 0.0;
  for (size_t i = 0; i < 60; ++i) {
    const float truth = simd::ref::L2Sqr(query.data(), data.row(i), 32);
    err_l1 += std::fabs(s.Distance(q, i) - truth);
    err_full += std::fabs(s.FullDistance(q, i, scratch.data()) - truth);
  }
  EXPECT_LT(err_full, err_l1 / 2.0);
}

TEST(Storages, PrefetchHooksAreSafe) {
  MatrixF data = SmallData(20, 96, 16);
  FloatStorage f32(data, Metric::kL2);
  F16Storage f16(data, Metric::kL2);
  LvqStorage lvq(data, Metric::kL2, 4, 8, 32);
  GlobalQuantStorage glob(data, Metric::kL2, 8, 4);
  for (size_t i = 0; i < 20; ++i) {
    f32.Prefetch(i);
    f32.PrefetchSecondLevel(i);
    f16.Prefetch(i);
    f16.PrefetchSecondLevel(i);
    lvq.Prefetch(i);
    lvq.PrefetchSecondLevel(i);
    glob.Prefetch(i);
    glob.PrefetchSecondLevel(i);
  }
}

TEST(Storages, SearchResultStatsArePopulated) {
  Dataset data = MakeDeepLike(1000, 5, 17);
  VamanaBuildParams bp;
  bp.graph_max_degree = 16;
  bp.window_size = 32;
  auto idx = BuildOgLvq(data.base, data.metric, 8, 0, bp);
  RuntimeParams p;
  p.window = 24;
  SearchResult res;
  idx->Search(data.queries.row(0), 10, p, &res);
  EXPECT_GT(res.hops, 0u);
  EXPECT_GT(res.distance_computations, res.hops);  // >1 dist per expansion
  // A larger window explores at least as much.
  SearchResult res2;
  p.window = 96;
  idx->Search(data.queries.row(0), 10, p, &res2);
  EXPECT_GE(res2.distance_computations, res.distance_computations);
}

}  // namespace
}  // namespace blink
