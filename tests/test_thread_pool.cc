// Unit tests for the thread pool / batch parallelism substrate.
#include "util/thread_pool.h"

#include <atomic>
#include <gtest/gtest.h>
#include <set>
#include <vector>

namespace blink {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  const size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, WorksWithSingleWorker) {
  ThreadPool pool(1);
  std::atomic<size_t> sum{0};
  pool.ParallelFor(100, [&](size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleIterationRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++count;
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, RepeatedUseIsSafe) {
  // Regression for the dangling-stack-state bug: tasks from an earlier
  // ParallelFor must never touch a later frame.
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(64, [&](size_t i) { sum += i; });
    ASSERT_EQ(sum.load(), 2016u) << "round " << round;
  }
}

TEST(ThreadPool, TinyRangesRaceCompletionAgainstFrameExit) {
  // Regression for the 1-core TSan flake (deflaked in the out-of-core PR):
  // with trivial per-item work the caller drains the whole range itself
  // and reaches the completion wait while the last helper task sits
  // between its counter decrement and its notify. The decrement must
  // happen under the frame's mutex, or the caller destroys the stack
  // state the helper is about to lock. Tiny ranges + many rounds maximize
  // that window; TSan turns any regression into a hard failure here.
  ThreadPool pool(4);
  for (int round = 0; round < 2000; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(2, [&](size_t i) { sum += i + 1; });
    ASSERT_EQ(sum.load(), 3u) << "round " << round;
  }
}

TEST(ThreadPool, LargeNSmallWork) {
  ThreadPool pool(3);
  std::atomic<size_t> count{0};
  pool.ParallelFor(1 << 17, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1u << 17);
}

TEST(ThreadPool, HelperFunctionSerialFallback) {
  std::vector<int> hits(50, 0);
  ParallelFor(1, 50, [&](size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, HelperFunctionThreaded) {
  std::vector<std::atomic<int>> hits(500);
  ParallelFor(4, 500, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NumThreadsReported) {
  ThreadPool pool(7);
  EXPECT_EQ(pool.num_threads(), 7u);
  ThreadPool pool0(0);  // clamped to 1
  EXPECT_EQ(pool0.num_threads(), 1u);
}

TEST(ThreadPool, ExecutesOnMultipleThreadsWhenAvailable) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> tids;
  pool.ParallelFor(4000, [&](size_t) {
    std::unique_lock<std::mutex> lk(mu);
    tids.insert(std::this_thread::get_id());
  });
  // At least the calling thread participated; with real cores, more.
  EXPECT_GE(tids.size(), 1u);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.Submit([&] { ran.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, SubmitManyFromManyThreads) {
  ThreadPool pool(4);
  std::atomic<size_t> count{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        pool.Submit([&] { count.fetch_add(1); });
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 2000u);
}

TEST(ThreadPool, SubmitInterleavesWithParallelFor) {
  ThreadPool pool(3);
  std::atomic<size_t> submitted_done{0};
  std::atomic<size_t> pfor_done{0};
  for (int round = 0; round < 20; ++round) {
    pool.Submit([&] { submitted_done.fetch_add(1); });
    pool.ParallelFor(64, [&](size_t) { pfor_done.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(submitted_done.load(), 20u);
  EXPECT_EQ(pfor_done.load(), 20u * 64u);
}

TEST(ThreadPool, DestructorDrainsPendingSubmits) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { ran.fetch_add(1); });
    }
    // no WaitIdle: the destructor must finish the queue, not drop it
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, WaitIdleWithNothingSubmittedReturns) {
  ThreadPool pool(2);
  pool.WaitIdle();
  SUCCEED();
}

}  // namespace
}  // namespace blink
