// Unit tests for global / per-dimension scalar quantization baselines.
#include "quant/global.h"

#include <cmath>
#include <gtest/gtest.h>
#include <vector>

#include "quant/lvq.h"
#include "util/prng.h"

namespace blink {
namespace {

MatrixF RandomData(size_t n, size_t d, uint64_t seed) {
  MatrixF m(n, d);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      // Dimension-dependent spread so global != per-dimension.
      const float s = 0.2f + 1.5f * static_cast<float>(j) / static_cast<float>(d);
      m(i, j) = s * rng.Gaussian() + 0.5f * static_cast<float>(j % 3);
    }
  }
  return m;
}

TEST(GlobalQuant, GlobalModeUsesOneQuantizer) {
  MatrixF data = RandomData(100, 16, 30);
  GlobalDataset ds = GlobalDataset::Encode(data, {});
  EXPECT_EQ(ds.quantizers().size(), 1u);
  EXPECT_EQ(&ds.quantizer(0), &ds.quantizer(15));
}

TEST(GlobalQuant, PerDimensionModeUsesDQuantizers) {
  MatrixF data = RandomData(100, 16, 31);
  GlobalDataset::Options o;
  o.mode = GlobalMode::kPerDimension;
  GlobalDataset ds = GlobalDataset::Encode(data, o);
  EXPECT_EQ(ds.quantizers().size(), 16u);
}

TEST(GlobalQuant, BoundsCoverCenteredData) {
  MatrixF data = RandomData(200, 8, 32);
  GlobalDataset ds = GlobalDataset::Encode(data, {});
  const ScalarQuantizer& q = ds.quantizers()[0];
  for (size_t i = 0; i < 200; ++i) {
    for (size_t j = 0; j < 8; ++j) {
      const float v = data(i, j) - ds.mean()[j];
      EXPECT_GE(v, q.lower() - 1e-5f);
      EXPECT_LE(v, q.upper() + 1e-5f);
    }
  }
}

TEST(GlobalQuant, ReconstructionErrorBounded) {
  MatrixF data = RandomData(200, 24, 33);
  for (auto mode : {GlobalMode::kGlobal, GlobalMode::kPerDimension}) {
    GlobalDataset::Options o;
    o.mode = mode;
    GlobalDataset ds = GlobalDataset::Encode(data, o);
    std::vector<float> rec(24);
    for (size_t i = 0; i < 200; ++i) {
      ds.Decode(i, rec.data());
      for (size_t j = 0; j < 24; ++j) {
        EXPECT_LE(std::fabs(rec[j] - data(i, j)),
                  ds.quantizer(j).max_error() * 1.001f);
      }
    }
  }
}

TEST(GlobalQuant, PerDimensionBeatsGlobalOnHeterogeneousSpreads) {
  // With dimension-dependent variance, per-dim bounds waste fewer levels.
  MatrixF data = RandomData(500, 16, 34);
  GlobalDataset::Options og;
  GlobalDataset::Options op;
  op.mode = GlobalMode::kPerDimension;
  GlobalDataset g = GlobalDataset::Encode(data, og);
  GlobalDataset p = GlobalDataset::Encode(data, op);
  std::vector<float> rg(16), rp(16);
  double eg = 0.0, ep = 0.0;
  for (size_t i = 0; i < 500; ++i) {
    g.Decode(i, rg.data());
    p.Decode(i, rp.data());
    for (size_t j = 0; j < 16; ++j) {
      eg += std::pow(rg[j] - data(i, j), 2);
      ep += std::pow(rp[j] - data(i, j), 2);
    }
  }
  EXPECT_LT(ep, eg);
}

TEST(GlobalQuant, LvqBeatsBothOnPerVectorStructure) {
  // The paper's core claim (Fig. 2): per-vector bounds reconstruct better
  // than global or per-dimension bounds at equal bit budget.
  MatrixF data = RandomData(500, 32, 35);
  GlobalDataset::Options og;
  og.bits = 8;
  GlobalDataset g = GlobalDataset::Encode(data, og);
  GlobalDataset::Options op = og;
  op.mode = GlobalMode::kPerDimension;
  GlobalDataset p = GlobalDataset::Encode(data, op);
  LvqDataset::Options ol;
  ol.bits = 8;
  LvqDataset l = LvqDataset::Encode(data, ol);

  auto mse = [&](auto& ds) {
    std::vector<float> rec(32);
    double acc = 0.0;
    for (size_t i = 0; i < 500; ++i) {
      ds.Decode(i, rec.data());
      for (size_t j = 0; j < 32; ++j) acc += std::pow(rec[j] - data(i, j), 2);
    }
    return acc;
  };
  const double e_lvq = mse(l), e_global = mse(g), e_perdim = mse(p);
  EXPECT_LT(e_lvq, e_global);
  EXPECT_LT(e_lvq, e_perdim);
}

TEST(GlobalQuant, TwoLevelResidualImprovesReconstruction) {
  MatrixF data = RandomData(300, 16, 36);
  GlobalDataset::Options o1;
  o1.bits = 4;
  GlobalDataset one = GlobalDataset::Encode(data, o1);
  GlobalDataset::Options o2 = o1;
  o2.bits2 = 4;
  GlobalDataset two = GlobalDataset::Encode(data, o2);
  std::vector<float> r1(16), r2(16);
  double e1 = 0.0, e2 = 0.0;
  for (size_t i = 0; i < 300; ++i) {
    one.Decode(i, r1.data());
    two.Decode(i, r2.data());
    for (size_t j = 0; j < 16; ++j) {
      e1 += std::pow(r1[j] - data(i, j), 2);
      e2 += std::pow(r2[j] - data(i, j), 2);
    }
  }
  EXPECT_LT(e2, e1 / 10.0);
}

TEST(GlobalQuant, FootprintSmallerThanLvqAtSameBits) {
  // No inline constants and no padding by default (paper: LVQ-8 footprint
  // ~5% larger than global-8).
  MatrixF data = RandomData(10, 96, 37);
  GlobalDataset g = GlobalDataset::Encode(data, {});
  LvqDataset l = LvqDataset::Encode(data, {});
  EXPECT_LT(g.vector_footprint(), l.vector_footprint());
  EXPECT_EQ(g.vector_footprint(), 96u);
}

}  // namespace
}  // namespace blink
