// Determinism contract of the search paths (ISSUE 2 satellite):
//
//   1. Thread-count invariance — batch search parallelism is across
//      queries and each query's search is sequential, so 1-thread and
//      N-thread SearchBatch (and the serving engine, pooled or async) must
//      produce byte-identical ids and dists.
//   2. Backend invariance, qualified — scalar and AVX2 kernels evaluate
//      the same sums in different orders (FMA + tree reduction), so
//      distances may differ in the last ulps. Permitted divergence, which
//      this test both documents and enforces: per-position distances agree
//      to 1e-3 relative, and result ids agree except where near-equal
//      distances legitimately swap ranks (>= 99% of positions identical).
//      Anything larger is a kernel bug, not float noise.
//
// The backend comparison re-executes this binary under BLINK_SIMD=scalar /
// avx2 (backend selection is per-process) and diffs the dumps; it skips on
// hosts (or sanitizer builds) where only one backend exists.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "eval/interface.h"
#include "graph/index.h"
#include "serve/engine.h"
#include "simd/distance.h"
#include "util/thread_pool.h"

namespace blink {
namespace {

constexpr size_t kN = 2000;
constexpr size_t kNq = 64;
constexpr size_t kK = 10;
constexpr uint64_t kSeed = 4242;

/// The shared fixture: float32 index built single-threaded from a fixed
/// seed, so every process (and backend) starts from the same graph.
std::unique_ptr<VamanaIndex<FloatStorage>> BuildFixedIndex(
    const Dataset& data) {
  VamanaBuildParams bp;
  bp.graph_max_degree = 24;
  bp.window_size = 48;
  bp.seed = kSeed;
  return BuildVamanaF32(data.base, data.metric, bp, /*pool=*/nullptr);
}

RuntimeParams Params() {
  RuntimeParams p;
  p.window = 32;
  return p;
}

TEST(Determinism, SingleVsMultiThreadByteIdentical) {
  Dataset data = MakeDeepLike(kN, kNq, kSeed);
  auto index = BuildFixedIndex(data);
  Matrix<uint32_t> ids1(kNq, kK), idsN(kNq, kK);
  MatrixF dists1(kNq, kK), distsN(kNq, kK);
  index->SearchBatchEx(data.queries, kK, Params(), ids1.data(), dists1.data(),
                       nullptr, /*pool=*/nullptr);
  ThreadPool pool(4);
  index->SearchBatchEx(data.queries, kK, Params(), idsN.data(), distsN.data(),
                       nullptr, &pool);
  EXPECT_EQ(std::memcmp(ids1.data(), idsN.data(),
                        ids1.size() * sizeof(uint32_t)),
            0);
  EXPECT_EQ(std::memcmp(dists1.data(), distsN.data(),
                        dists1.size() * sizeof(float)),
            0);
}

TEST(Determinism, EngineSyncAndAsyncMatchDirect) {
  Dataset data = MakeDeepLike(kN, kNq, kSeed);
  auto index = BuildFixedIndex(data);
  Matrix<uint32_t> direct(kNq, kK), pooled(kNq, kK);
  MatrixF direct_d(kNq, kK), pooled_d(kNq, kK);
  index->SearchBatchEx(data.queries, kK, Params(), direct.data(),
                       direct_d.data(), nullptr, nullptr);

  ServingOptions opts;
  opts.num_threads = 3;
  ServingEngine engine(index.get(), opts);
  engine.SearchBatch(data.queries, kK, Params(), pooled.data(),
                     pooled_d.data());
  EXPECT_EQ(std::memcmp(direct.data(), pooled.data(),
                        direct.size() * sizeof(uint32_t)),
            0);
  EXPECT_EQ(std::memcmp(direct_d.data(), pooled_d.data(),
                        direct_d.size() * sizeof(float)),
            0);

  for (size_t qi = 0; qi < kNq; ++qi) {
    SearchResult res = engine.Submit(data.queries.row(qi), kK, Params()).get();
    ASSERT_EQ(res.ids.size(), kK);
    for (size_t j = 0; j < kK; ++j) {
      ASSERT_EQ(res.ids[j], direct(qi, j)) << "query " << qi;
      ASSERT_EQ(res.dists[j], direct_d(qi, j)) << "query " << qi;
    }
  }
}

TEST(Determinism, RepeatedSearchesOnWarmSearcherIdentical) {
  // Pooled-searcher state reuse (visited epochs, buffers) must not leak
  // across queries: the same query must return the same answer every time.
  Dataset data = MakeDeepLike(kN, kNq, kSeed);
  auto index = BuildFixedIndex(data);
  auto searcher = index->MakeSearcher();
  std::vector<uint32_t> first(kK), again(kK);
  std::vector<float> first_d(kK), again_d(kK);
  for (size_t qi = 0; qi < 8; ++qi) {
    searcher->Search(data.queries.row(qi), kK, Params(), first.data(),
                     first_d.data(), nullptr);
    for (int rep = 0; rep < 3; ++rep) {
      // interleave another query to dirty the scratch
      searcher->Search(data.queries.row((qi + 5) % kNq), kK, Params(),
                       again.data(), again_d.data(), nullptr);
      searcher->Search(data.queries.row(qi), kK, Params(), again.data(),
                       again_d.data(), nullptr);
      ASSERT_EQ(first, again) << "query " << qi << " rep " << rep;
      ASSERT_EQ(first_d, again_d) << "query " << qi << " rep " << rep;
    }
  }
}

// ---------------------------------------------------------------------------
// Cross-backend comparison (subprocess per backend).
// ---------------------------------------------------------------------------

std::string DumpPath(const char* backend) {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") + "/blink_determinism_" +
         backend + "_" + std::to_string(getpid()) + ".bin";
}

/// Child mode: runs the fixed search and writes backend name + ids + dists.
TEST(Determinism, BackendDumpChild) {
  const char* path = std::getenv("BLINK_DETERMINISM_DUMP");
  if (path == nullptr) GTEST_SKIP() << "parent-driven child test";
  Dataset data = MakeDeepLike(kN, kNq, kSeed);
  auto index = BuildFixedIndex(data);
  Matrix<uint32_t> ids(kNq, kK);
  MatrixF dists(kNq, kK);
  index->SearchBatchEx(data.queries, kK, Params(), ids.data(), dists.data(),
                       nullptr, nullptr);
  std::FILE* f = std::fopen(path, "wb");
  ASSERT_NE(f, nullptr);
  char backend[16] = {0};
  std::snprintf(backend, sizeof(backend), "%s", simd::BackendName());
  std::fwrite(backend, 1, sizeof(backend), f);
  std::fwrite(ids.data(), sizeof(uint32_t), ids.size(), f);
  std::fwrite(dists.data(), sizeof(float), dists.size(), f);
  std::fclose(f);
}

struct Dump {
  std::string backend;
  std::vector<uint32_t> ids;
  std::vector<float> dists;
};

bool RunChildAndLoad(const std::string& exe, const char* backend, Dump* out) {
  const std::string path = DumpPath(backend);
  const std::string cmd = "BLINK_SIMD=" + std::string(backend) +
                          " BLINK_DETERMINISM_DUMP=" + path + " " + exe +
                          " --gtest_filter=Determinism.BackendDumpChild"
                          " > /dev/null 2>&1";
  if (std::system(cmd.c_str()) != 0) return false;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char name[16] = {0};
  out->ids.resize(kNq * kK);
  out->dists.resize(kNq * kK);
  const bool ok =
      std::fread(name, 1, sizeof(name), f) == sizeof(name) &&
      std::fread(out->ids.data(), sizeof(uint32_t), out->ids.size(), f) ==
          out->ids.size() &&
      std::fread(out->dists.data(), sizeof(float), out->dists.size(), f) ==
          out->dists.size();
  std::fclose(f);
  std::remove(path.c_str());
  out->backend = name;
  return ok;
}

TEST(Determinism, ScalarVsAvx2WithinFloatTolerance) {
  if (std::getenv("BLINK_DETERMINISM_DUMP") != nullptr) {
    GTEST_SKIP() << "child process";
  }
  char exe[4096];
  const ssize_t len = readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  ASSERT_GT(len, 0);
  exe[len] = '\0';

  Dump scalar, avx2;
  ASSERT_TRUE(RunChildAndLoad(exe, "scalar", &scalar));
  ASSERT_TRUE(RunChildAndLoad(exe, "avx2", &avx2));
  if (scalar.backend == avx2.backend) {
    GTEST_SKIP() << "host/build has a single backend (" << scalar.backend
                 << "); nothing to compare";
  }

  // Permitted FP divergence (see file header): near-tie rank swaps only.
  size_t id_matches = 0;
  for (size_t i = 0; i < scalar.ids.size(); ++i) {
    if (scalar.ids[i] == avx2.ids[i]) ++id_matches;
    const float a = scalar.dists[i], b = avx2.dists[i];
    const float tol = 1e-3f * std::max(1.0f, std::max(std::fabs(a),
                                                      std::fabs(b)));
    EXPECT_NEAR(a, b, tol) << "position " << i;
  }
  EXPECT_GE(static_cast<double>(id_matches) /
                static_cast<double>(scalar.ids.size()),
            0.99);
}

}  // namespace
}  // namespace blink
