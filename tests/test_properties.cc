// Property-based suites: invariants that must hold across the cross
// product of bit widths, dimensionalities, and dataset families.
#include <cmath>
#include <gtest/gtest.h>
#include <tuple>

#include "blink.h"

namespace blink {
namespace {

// ---------------------------------------------------------------------------
// LVQ invariants across (bits, dim).
// ---------------------------------------------------------------------------
class LvqProperty : public ::testing::TestWithParam<std::tuple<int, size_t>> {};

TEST_P(LvqProperty, RoundTripErrorIsWithinHalfStep) {
  const auto [bits, d] = GetParam();
  MatrixF data(60, d);
  Rng rng(bits * 1000 + d);
  for (size_t i = 0; i < data.size(); ++i) {
    data.data()[i] = rng.Gaussian(0.5f, 1.5f);
  }
  LvqDataset::Options o;
  o.bits = bits;
  LvqDataset ds = LvqDataset::Encode(data, o);
  std::vector<float> rec(d);
  for (size_t i = 0; i < 60; ++i) {
    ds.Decode(i, rec.data());
    const float bound = ds.constants(i).delta * 0.5f * 1.001f + 1e-6f;
    for (size_t j = 0; j < d; ++j) {
      ASSERT_LE(std::fabs(rec[j] - data(i, j)), bound)
          << "bits=" << bits << " d=" << d << " i=" << i << " j=" << j;
    }
  }
}

TEST_P(LvqProperty, FootprintFormulaHolds) {
  const auto [bits, d] = GetParam();
  MatrixF data(4, d);
  LvqDataset::Options o;
  o.bits = bits;
  o.padding = 32;
  LvqDataset ds = LvqDataset::Encode(data, o);
  const size_t raw = (d * static_cast<size_t>(bits) + 7) / 8 + 4;
  const size_t expect = (raw + 31) / 32 * 32;
  EXPECT_EQ(ds.vector_footprint(), expect);
  EXPECT_NEAR(ds.compression_ratio(),
              static_cast<double>(d) * 4.0 / static_cast<double>(expect), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    BitsByDim, LvqProperty,
    ::testing::Combine(::testing::Values(2, 4, 8, 12),
                       ::testing::Values(7, 25, 96, 200, 768)));

// ---------------------------------------------------------------------------
// Kernel equivalence fuzz across encodings and phases.
// ---------------------------------------------------------------------------
class KernelFuzz : public ::testing::TestWithParam<int> {};

TEST_P(KernelFuzz, LvqStorageDistanceMatchesDecodedDistance) {
  const int seed = GetParam();
  Rng rng(seed);
  const size_t d = 16 + rng.Bounded(200);
  const size_t n = 30;
  MatrixF data(n, d);
  for (size_t i = 0; i < data.size(); ++i) data.data()[i] = rng.Gaussian();
  for (int bits : {4, 8}) {
    LvqStorage storage(data, Metric::kL2, bits, 32);
    std::vector<float> q(d), dec(d);
    for (auto& v : q) v = rng.Gaussian();
    LvqStorage::Query qs;
    storage.PrepareQuery(q.data(), &qs);
    for (size_t i = 0; i < n; ++i) {
      storage.DecodeVector(i, dec.data());
      const float direct = simd::ref::L2Sqr(q.data(), dec.data(), d);
      const float fused = storage.Distance(qs, i);
      ASSERT_NEAR(fused, direct, 2e-3f * std::max(1.0f, direct))
          << "seed=" << seed << " bits=" << bits << " d=" << d << " i=" << i;
    }
  }
}

TEST_P(KernelFuzz, IpDistanceMatchesDecodedDistance) {
  const int seed = GetParam();
  Rng rng(seed + 5000);
  const size_t d = 8 + rng.Bounded(100);
  MatrixF data(20, d);
  for (size_t i = 0; i < data.size(); ++i) data.data()[i] = rng.Gaussian();
  LvqStorage storage(data, Metric::kInnerProduct, 8, 32);
  std::vector<float> q(d), dec(d);
  for (auto& v : q) v = rng.Gaussian();
  LvqStorage::Query qs;
  storage.PrepareQuery(q.data(), &qs);
  for (size_t i = 0; i < 20; ++i) {
    storage.DecodeVector(i, dec.data());
    const float direct = simd::ref::IpDist(q.data(), dec.data(), d);
    ASSERT_NEAR(storage.Distance(qs, i), direct,
                2e-3f * std::max(1.0f, std::fabs(direct)))
        << "seed=" << seed << " d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelFuzz, ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// Two-level LVQ dominance across bit splits.
// ---------------------------------------------------------------------------
class TwoLevelProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TwoLevelProperty, SecondLevelNeverHurtsReconstruction) {
  const auto [b1, b2] = GetParam();
  MatrixF data(80, 64);
  Rng rng(b1 * 100 + b2);
  for (size_t i = 0; i < data.size(); ++i) data.data()[i] = rng.Gaussian();
  LvqDataset2::Options o;
  o.bits1 = b1;
  o.bits2 = b2;
  LvqDataset2 ds = LvqDataset2::Encode(data, o);
  std::vector<float> r1(64), r2(64);
  double e1 = 0.0, e2 = 0.0;
  for (size_t i = 0; i < 80; ++i) {
    ds.level1().Decode(i, r1.data());
    ds.Decode(i, r2.data());
    for (size_t j = 0; j < 64; ++j) {
      e1 += std::pow(r1[j] - data(i, j), 2);
      e2 += std::pow(r2[j] - data(i, j), 2);
    }
  }
  EXPECT_LE(e2, e1 * 1.0001) << "b1=" << b1 << " b2=" << b2;
}

INSTANTIATE_TEST_SUITE_P(Splits, TwoLevelProperty,
                         ::testing::Combine(::testing::Values(2, 4, 8),
                                            ::testing::Values(2, 4, 8)));

// ---------------------------------------------------------------------------
// Search invariants across dataset families.
// ---------------------------------------------------------------------------
class FamilyProperty : public ::testing::TestWithParam<int> {};

TEST_P(FamilyProperty, GraphSearchBeatsRandomByFar) {
  Dataset data = [&]() -> Dataset {
    switch (GetParam()) {
      case 0: return MakeDeepLike(1500, 30, 400);
      case 1: return MakeSiftLike(1500, 30, 401);
      case 2: return MakeGloveLike(25, 1500, 30, 402);
      case 3: return MakeDprLike(800, 20, 403);
      default: return MakeT2iLike(1500, 30, 404);
    }
  }();
  Matrix<uint32_t> gt =
      ComputeGroundTruth(data.base, data.queries, 10, data.metric);
  VamanaBuildParams bp;
  bp.graph_max_degree = 24;
  bp.window_size = 48;
  bp.alpha = data.metric == Metric::kL2 ? 1.2f : 0.95f;
  auto idx = BuildOgLvq(data.base, data.metric, 8, 0, bp);
  RuntimeParams p;
  p.window = 64;
  Matrix<uint32_t> ids(data.queries.rows(), 10);
  idx->SearchBatch(data.queries, 10, p, ids.data());
  EXPECT_GE(MeanRecallAtK(ids, gt, 10), 0.8) << data.name;
}

INSTANTIATE_TEST_SUITE_P(Families, FamilyProperty, ::testing::Range(0, 5));

// ---------------------------------------------------------------------------
// Compression-ratio ordering across paddings.
// ---------------------------------------------------------------------------
TEST(Properties, PaddingOnlyEverGrowsFootprint) {
  MatrixF data(4, 96);
  for (size_t pad : {0u, 8u, 32u, 64u}) {
    LvqDataset::Options o;
    o.padding = pad;
    LvqDataset ds = LvqDataset::Encode(data, o);
    EXPECT_GE(ds.vector_footprint(), 100u);  // 4 + 96 raw bytes
    if (pad > 0) {
      EXPECT_EQ(ds.vector_footprint() % pad, 0u);
    }
  }
}

TEST(Properties, RecallNeverExceedsOne) {
  Dataset data = MakeDeepLike(300, 20, 500);
  Matrix<uint32_t> gt =
      ComputeGroundTruth(data.base, data.queries, 10, data.metric);
  EXPECT_LE(MeanRecallAtK(gt, gt, 10), 1.0);
  EXPECT_DOUBLE_EQ(MeanRecallAtK(gt, gt, 10), 1.0);
}

}  // namespace
}  // namespace blink
