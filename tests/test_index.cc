// End-to-end tests of the OG-LVQ index (graph + storage + search + rerank).
#include "graph/index.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace blink {
namespace {

using testutil::Fixture;

double RecallOf(const SearchIndex& idx, const Fixture& f, uint32_t window,
                bool rerank = true, bool visited = false) {
  return testutil::RecallAtWindow(idx, f, window, rerank, visited);
}

TEST(Index, Float32HighRecall) {
  Fixture f(MakeDeepLike(3000, 100, 20));
  auto idx = BuildVamanaF32(f.data.base, f.data.metric, f.bp);
  EXPECT_GE(RecallOf(*idx, f, 64), 0.95);
}

TEST(Index, Lvq8TracksFloat32Closely) {
  // Paper: LVQ-8 introduces negligible accuracy degradation.
  Fixture f(MakeDeepLike(3000, 100, 21));
  auto f32 = BuildVamanaF32(f.data.base, f.data.metric, f.bp);
  auto lvq = BuildOgLvq(f.data.base, f.data.metric, 8, 0, f.bp);
  const double r32 = RecallOf(*f32, f, 64);
  const double r8 = RecallOf(*lvq, f, 64);
  EXPECT_GE(r8, r32 - 0.02);
}

TEST(Index, TwoLevelRerankBeatsLevel1Only) {
  Fixture f(MakeDeepLike(3000, 100, 22));
  auto idx = BuildOgLvq(f.data.base, f.data.metric, 4, 8, f.bp);
  const double with_rerank = RecallOf(*idx, f, 48, /*rerank=*/true);
  const double without = RecallOf(*idx, f, 48, /*rerank=*/false);
  EXPECT_GT(with_rerank, without);
  EXPECT_GE(with_rerank, 0.9);
}

TEST(Index, RecallMonotonicInWindow) {
  Fixture f(MakeDeepLike(3000, 100, 23));
  auto idx = BuildOgLvq(f.data.base, f.data.metric, 8, 0, f.bp);
  const double r10 = RecallOf(*idx, f, 10);
  const double r32 = RecallOf(*idx, f, 32);
  const double r96 = RecallOf(*idx, f, 96);
  EXPECT_LE(r10, r32 + 0.02);
  EXPECT_LE(r32, r96 + 0.02);
  EXPECT_GT(r96, r10);
}

TEST(Index, VisitedSetDoesNotChangeAccuracy) {
  // The visited set is a performance knob (Sec. 5); recall must be
  // essentially unchanged.
  Fixture f(MakeDeepLike(2000, 100, 24));
  auto idx = BuildOgLvq(f.data.base, f.data.metric, 8, 0, f.bp);
  const double without = RecallOf(*idx, f, 48, true, false);
  const double with = RecallOf(*idx, f, 48, true, true);
  EXPECT_NEAR(without, with, 0.02);
}

TEST(Index, PrefetchSettingsDoNotChangeResults) {
  Fixture f(MakeDeepLike(2000, 50, 25));
  auto idx = BuildOgLvq(f.data.base, f.data.metric, 8, 0, f.bp);
  const size_t k = 10;
  RuntimeParams a, b;
  a.window = b.window = 40;
  a.prefetch_offset = 0;
  a.prefetch_step = 0;  // no prefetch
  b.prefetch_offset = 4;
  b.prefetch_step = 8;
  Matrix<uint32_t> ia(f.data.queries.rows(), k), ib(f.data.queries.rows(), k);
  idx->SearchBatch(f.data.queries, k, a, ia.data());
  idx->SearchBatch(f.data.queries, k, b, ib.data());
  for (size_t i = 0; i < ia.size(); ++i) {
    ASSERT_EQ(ia.data()[i], ib.data()[i]) << i;
  }
}

TEST(Index, InnerProductMetricWorks) {
  Fixture f(MakeDprLike(1500, 50, 26));
  auto idx = BuildOgLvq(f.data.base, f.data.metric, 4, 8, f.bp);
  EXPECT_GE(RecallOf(*idx, f, 64), 0.85);
}

TEST(Index, BatchMatchesSingleQuerySearch) {
  Fixture f(MakeDeepLike(1500, 20, 27));
  auto idx = BuildOgLvq(f.data.base, f.data.metric, 8, 0, f.bp);
  const size_t k = 10;
  RuntimeParams p;
  p.window = 32;
  Matrix<uint32_t> batch(f.data.queries.rows(), k);
  idx->SearchBatch(f.data.queries, k, p, batch.data());
  for (size_t qi = 0; qi < f.data.queries.rows(); ++qi) {
    SearchResult res;
    idx->Search(f.data.queries.row(qi), k, p, &res);
    for (size_t j = 0; j < k; ++j) {
      ASSERT_EQ(batch(qi, j), res.ids[j]) << "query " << qi;
    }
  }
}

TEST(Index, ThreadedBatchMatchesSerialBatch) {
  Fixture f(MakeDeepLike(1500, 40, 28));
  auto idx = BuildOgLvq(f.data.base, f.data.metric, 8, 0, f.bp);
  const size_t k = 10;
  RuntimeParams p;
  p.window = 32;
  Matrix<uint32_t> serial(f.data.queries.rows(), k);
  Matrix<uint32_t> threaded(f.data.queries.rows(), k);
  idx->SearchBatch(f.data.queries, k, p, serial.data(), nullptr);
  ThreadPool pool(4);
  idx->SearchBatch(f.data.queries, k, p, threaded.data(), &pool);
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial.data()[i], threaded.data()[i]) << i;
  }
}

TEST(Index, MemoryAccountingIsConsistent) {
  Fixture f(MakeDeepLike(1000, 10, 29));
  auto lvq = BuildOgLvq(f.data.base, f.data.metric, 8, 0, f.bp);
  auto f32 = BuildVamanaF32(f.data.base, f.data.metric, f.bp);
  EXPECT_EQ(lvq->memory_bytes(),
            lvq->storage().memory_bytes() + lvq->graph().memory_bytes());
  // LVQ-8 vectors are ~3x smaller than float32 at d = 96 (padded).
  EXPECT_LT(lvq->storage().memory_bytes(),
            f32->storage().memory_bytes() * 45 / 100);
}

TEST(Index, NamesIdentifyConfiguration) {
  Fixture f(MakeDeepLike(300, 5, 30));
  auto one = BuildOgLvq(f.data.base, f.data.metric, 8, 0, f.bp);
  auto two = BuildOgLvq(f.data.base, f.data.metric, 4, 8, f.bp);
  EXPECT_EQ(one->name(), "OG-LVQ-8-R24");
  EXPECT_EQ(two->name(), "OG-LVQ-4x8-R24");
}

TEST(Index, KLargerThanWindowIsClamped) {
  Fixture f(MakeDeepLike(500, 10, 31));
  auto idx = BuildOgLvq(f.data.base, f.data.metric, 8, 0, f.bp);
  RuntimeParams p;
  p.window = 4;  // < k
  const size_t k = 10;
  Matrix<uint32_t> ids(f.data.queries.rows(), k);
  idx->SearchBatch(f.data.queries, k, p, ids.data());
  // All k slots must be filled with valid ids.
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_NE(ids.data()[i], UINT32_MAX);
  }
}

TEST(Index, GraphBuiltFromLvqSearchedWithFloat32) {
  // The Sec. 4 experiment shape: build the graph from compressed vectors,
  // then adopt it for full-precision search.
  Fixture f(MakeDeepLike(2000, 100, 32));
  LvqStorage lvq_storage(f.data.base, f.data.metric, 4);
  BuiltGraph g = BuildVamana(lvq_storage, f.bp);
  VamanaIndex<FloatStorage> idx(FloatStorage(f.data.base, f.data.metric),
                                std::move(g), f.bp);
  EXPECT_GE(RecallOf(idx, f, 64), 0.9);
}

}  // namespace
}  // namespace blink
