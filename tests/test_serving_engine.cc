// Serving engine tests: pooled-searcher correctness against the direct
// paths, async micro-batching, the ISSUE 2 multi-threaded stress test —
// concurrent SearchBatch from many threads while a writer mutates the
// dynamic index — plus the serving-path hardening of ISSUE 8: options
// validation, deterministic TrySubmit admission control, the shutdown
// outcome tag, and GenerationHolder hot-swap semantics. Runs under the
// ASan and TSan CI jobs.
#include "serve/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "api/index.h"
#include "api/spec.h"
#include "serve/generation.h"
#include "testutil.h"
#include "util/prng.h"

namespace blink {
namespace {

/// testutil::Fixture (deep-like corpus, R=24/W=48) plus a built LVQ-8
/// index — the engine tests search it through every serving path. The
/// ground truth computed by the base fixture serves the recall checks.
struct StaticFixture : testutil::Fixture {
  StaticFixture()
      : testutil::Fixture(MakeDeepLike(3000, 100, /*seed=*/808)),
        index(BuildOgLvq(data.base, data.metric, 8, 0, bp)) {}

  std::unique_ptr<VamanaIndex<LvqStorage>> index;
};

TEST(ServingEngine, SyncMatchesDirectSearchBatch) {
  StaticFixture f;
  const size_t k = 10, nq = f.data.queries.rows();
  RuntimeParams p;
  p.window = 32;
  Matrix<uint32_t> direct(nq, k), served(nq, k);
  f.index->SearchBatch(f.data.queries, k, p, direct.data());

  ServingOptions opts;
  opts.num_threads = 4;
  ServingEngine engine(f.index.get(), opts);
  engine.SearchBatch(f.data.queries, k, p, served.data());
  for (size_t i = 0; i < direct.size(); ++i) {
    ASSERT_EQ(direct.data()[i], served.data()[i]) << "flat index " << i;
  }
  const ServingCounters c = engine.counters();
  EXPECT_EQ(c.queries, nq);
  EXPECT_GT(c.distance_computations, 0u);
  EXPECT_GT(c.hops, 0u);
}

TEST(ServingEngine, SyncReportsDistsAndStats) {
  StaticFixture f;
  const size_t k = 10, nq = f.data.queries.rows();
  RuntimeParams p;
  p.window = 32;
  Matrix<uint32_t> ids(nq, k);
  MatrixF dists(nq, k);
  BatchStats stats;
  ServingOptions opts;
  opts.num_threads = 2;
  ServingEngine engine(f.index.get(), opts);
  engine.SearchBatch(f.data.queries, k, p, ids.data(), dists.data(), &stats);
  EXPECT_GT(stats.distance_computations, stats.hops);
  for (size_t qi = 0; qi < nq; ++qi) {
    for (size_t j = 1; j < k; ++j) {
      ASSERT_LE(dists(qi, j - 1), dists(qi, j)) << "unsorted dists, q" << qi;
    }
  }
}

TEST(ServingEngine, AsyncMatchesSync) {
  StaticFixture f;
  const size_t k = 10, nq = f.data.queries.rows();
  RuntimeParams p;
  p.window = 32;
  Matrix<uint32_t> sync_ids(nq, k);
  ServingOptions opts;
  opts.num_threads = 4;
  opts.max_batch = 7;  // force multi-query micro-batches
  ServingEngine engine(f.index.get(), opts);
  engine.SearchBatch(f.data.queries, k, p, sync_ids.data());

  std::vector<std::future<SearchResult>> futures;
  futures.reserve(nq);
  for (size_t qi = 0; qi < nq; ++qi) {
    futures.push_back(engine.Submit(f.data.queries.row(qi), k, p));
  }
  for (size_t qi = 0; qi < nq; ++qi) {
    SearchResult res = futures[qi].get();
    ASSERT_EQ(res.ids.size(), k);
    ASSERT_EQ(res.dists.size(), k);
    EXPECT_GT(res.distance_computations, 0u);
    for (size_t j = 0; j < k; ++j) {
      ASSERT_EQ(res.ids[j], sync_ids(qi, j)) << "query " << qi;
    }
  }
  EXPECT_GT(engine.counters().batches, 0u);
}

TEST(ServingEngine, AsyncManyClientThreads) {
  StaticFixture f;
  const size_t k = 10, nq = f.data.queries.rows();
  RuntimeParams p;
  p.window = 32;
  ServingOptions opts;
  opts.num_threads = 2;
  ServingEngine engine(f.index.get(), opts);
  Matrix<uint32_t> results(nq, k);
  std::vector<std::thread> clients;
  const size_t nclients = 8;
  for (size_t c = 0; c < nclients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t qi = c; qi < nq; qi += nclients) {
        SearchResult res = engine.Submit(f.data.queries.row(qi), k, p).get();
        EXPECT_EQ(res.ids.size(), k);
        std::copy(res.ids.begin(), res.ids.end(), results.row(qi));
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_GE(MeanRecallAtK(results, f.gt, k), 0.9);
  EXPECT_EQ(engine.counters().queries, nq);
}

TEST(ServingEngine, DrainWaitsForAllSubmitted) {
  StaticFixture f;
  RuntimeParams p;
  p.window = 16;
  ServingOptions opts;
  opts.num_threads = 2;
  ServingEngine engine(f.index.get(), opts);
  std::vector<std::future<SearchResult>> futures;
  for (size_t qi = 0; qi < 64; ++qi) {
    futures.push_back(engine.Submit(f.data.queries.row(qi), 5, p));
  }
  engine.Drain();
  for (auto& fut : futures) {
    // After Drain every future must be immediately ready.
    ASSERT_EQ(fut.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  }
}

TEST(ServingEngine, ServesDynamicIndexView) {
  Dataset data = MakeDeepLike(1200, 40, 809);
  DynamicIndex::Options o;
  o.graph_max_degree = 16;
  o.build_window = 48;
  DynamicIndex dyn(96, o);
  for (size_t i = 0; i < 1200; ++i) dyn.Insert(data.base.row(i));
  DynamicIndexView view(&dyn);
  EXPECT_EQ(view.size(), 1200u);
  EXPECT_EQ(view.dim(), 96u);
  EXPECT_GT(view.memory_bytes(), 0u);

  const size_t k = 10, nq = data.queries.rows();
  RuntimeParams p;
  p.window = 64;
  ServingOptions opts;
  opts.num_threads = 4;
  ServingEngine engine(&view, opts);
  Matrix<uint32_t> results(nq, k);
  BatchStats stats;
  engine.SearchBatch(data.queries, k, p, results.data(), nullptr, &stats);
  EXPECT_GT(stats.distance_computations, 0u);
  Matrix<uint32_t> gt = ComputeGroundTruth(data.base, data.queries, k,
                                           data.metric);
  EXPECT_GE(MeanRecallAtK(results, gt, k), 0.85);
}

// ---------------------------------------------------------------------------
// The ISSUE 2 stress test: concurrent SearchBatch from 8 threads while a
// writer inserts/deletes (and periodically consolidates), asserting no lost
// results and recall above a floor.
// ---------------------------------------------------------------------------

TEST(ServingEngine, ConcurrentReadWriteStress) {
  const size_t kStable = 700;   // never deleted; must stay findable
  const size_t kChurn = 500;    // inserted/deleted by the writer during load
  const size_t kDim = 96;
  Dataset data = MakeDeepLike(kStable + kChurn, 1, 810);

  DynamicIndex::Options o;
  o.graph_max_degree = 16;
  o.build_window = 48;
  o.initial_capacity = kStable + kChurn + 64;  // avoid stop-the-world growth
  DynamicIndex dyn(kDim, o);
  std::vector<uint32_t> stable_ids;
  for (size_t i = 0; i < kStable; ++i) {
    stable_ids.push_back(dyn.Insert(data.base.row(i)));
  }

  DynamicIndexView view(&dyn);
  ServingOptions opts;
  opts.num_threads = 4;
  ServingEngine engine(&view, opts);
  RuntimeParams p;
  p.window = 64;

  // Writer: churn the kChurn extra vectors through insert/delete cycles
  // with periodic consolidation (slot recycling under live traffic).
  std::atomic<bool> stop_writer{false};
  std::thread writer([&] {
    Rng rng(7);
    std::vector<uint32_t> churn_ids;
    size_t next = kStable;
    while (!stop_writer.load()) {
      if (churn_ids.size() < kChurn / 2 ||
          (next < kStable + kChurn && rng.Bounded(2) == 0)) {
        const size_t src = next < kStable + kChurn
                               ? next++
                               : kStable + rng.Bounded(kChurn);
        churn_ids.push_back(dyn.Insert(data.base.row(src)));
      } else if (!churn_ids.empty()) {
        const size_t pick = rng.Bounded(churn_ids.size());
        EXPECT_TRUE(dyn.Delete(churn_ids[pick]).ok());
        churn_ids[pick] = churn_ids.back();
        churn_ids.pop_back();
      }
      if (rng.Bounded(97) == 0) dyn.ConsolidateDeletes();
    }
  });

  // 8 reader threads: each repeatedly SearchBatches the *stable* vectors'
  // own coordinates through the engine. A stable vector must never get
  // lost: its exact duplicate is in the index, so it must appear in its own
  // top-k in the overwhelming majority of searches even mid-churn.
  const size_t kReaders = 8;
  const size_t kRounds = 6;
  const size_t kQueriesPerRound = 64;
  const size_t k = 10;
  std::atomic<uint64_t> self_hits{0};
  std::atomic<uint64_t> self_queries{0};
  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(100 + r);
      Matrix<uint32_t> ids(kQueriesPerRound, k);
      MatrixF queries(kQueriesPerRound, kDim);
      std::vector<uint32_t> expected(kQueriesPerRound);
      for (size_t round = 0; round < kRounds; ++round) {
        for (size_t qi = 0; qi < kQueriesPerRound; ++qi) {
          const size_t pick = rng.Bounded(kStable);
          expected[qi] = stable_ids[pick];
          std::copy(data.base.row(pick), data.base.row(pick) + kDim,
                    queries.row(qi));
        }
        engine.SearchBatch(queries, k, p, ids.data());
        for (size_t qi = 0; qi < kQueriesPerRound; ++qi) {
          ++self_queries;
          for (size_t j = 0; j < k; ++j) {
            EXPECT_LT(ids(qi, j) == kInvalidId ? 0u : ids(qi, j),
                      dyn.capacity());  // every id is in-range
            if (ids(qi, j) == expected[qi]) {
              ++self_hits;
              break;
            }
          }
        }
      }
    });
  }
  for (auto& t : readers) t.join();
  stop_writer.store(true);
  writer.join();

  // No lost results: under churn a self-query may occasionally miss, but
  // the overwhelming majority must find the stable vector.
  const double hit_rate = static_cast<double>(self_hits.load()) /
                          static_cast<double>(self_queries.load());
  EXPECT_GE(hit_rate, 0.95) << self_hits.load() << "/" << self_queries.load();

  // Quiesced recall floor: after the writer stops, every stable vector must
  // be findable and batch recall against brute force must clear the bar.
  dyn.ConsolidateDeletes();
  SearchResult res;
  size_t found = 0;
  for (size_t i = 0; i < kStable; ++i) {
    dyn.Search(data.base.row(i), k, 64, &res);
    for (uint32_t id : res.ids) {
      if (id == stable_ids[i]) {
        ++found;
        break;
      }
    }
  }
  EXPECT_GE(static_cast<double>(found) / kStable, 0.99);
}

// Async submissions racing a writer: every future must resolve with k
// in-range ids (no hangs, no lost promises).
TEST(ServingEngine, AsyncSubmitRacingWriter) {
  const size_t kDim = 96;
  Dataset data = MakeDeepLike(900, 60, 811);
  DynamicIndex::Options o;
  o.graph_max_degree = 16;
  o.build_window = 48;
  o.initial_capacity = 1200;
  DynamicIndex dyn(kDim, o);
  for (size_t i = 0; i < 600; ++i) dyn.Insert(data.base.row(i));

  DynamicIndexView view(&dyn);
  ServingOptions opts;
  opts.num_threads = 2;
  opts.max_batch = 4;
  ServingEngine engine(&view, opts);
  RuntimeParams p;
  p.window = 48;

  std::atomic<bool> stop_writer{false};
  std::thread writer([&] {
    Rng rng(13);
    size_t next = 600;
    std::vector<uint32_t> extra;
    while (!stop_writer.load()) {
      if (next < 900 && rng.Bounded(2) == 0) {
        extra.push_back(dyn.Insert(data.base.row(next++)));
      } else if (!extra.empty()) {
        const size_t pick = rng.Bounded(extra.size());
        (void)dyn.Delete(extra[pick]);
        extra[pick] = extra.back();
        extra.pop_back();
      }
      std::this_thread::yield();
    }
  });

  const size_t k = 5;
  std::vector<std::future<SearchResult>> futures;
  for (int round = 0; round < 10; ++round) {
    futures.clear();
    for (size_t qi = 0; qi < data.queries.rows(); ++qi) {
      futures.push_back(engine.Submit(data.queries.row(qi), k, p));
    }
    for (auto& fut : futures) {
      SearchResult res = fut.get();
      ASSERT_EQ(res.ids.size(), k);
      for (uint32_t id : res.ids) {
        ASSERT_TRUE(id == kInvalidId || id < dyn.capacity());
      }
    }
  }
  stop_writer.store(true);
  writer.join();
}

// ---------------------------------------------------------------------------
// ISSUE 8 serving-path hardening: options validation, deterministic
// admission control, the shutdown outcome tag, and generation hot-swap.
// ---------------------------------------------------------------------------

TEST(ServingOptions, ValidateRejectsDegenerateConfigurations) {
  EXPECT_TRUE(ServingOptions{}.Validate().ok());

  ServingOptions o;
  o.max_batch = 0;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);

  o = ServingOptions{};
  o.queue_capacity = 0;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);

  o = ServingOptions{};
  o.num_threads = (1u << 12) + 1;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);

  o = ServingOptions{};
  o.batch_linger_us = 10'000'001;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
}

/// A SearchIndex stub whose SearchBatch parks inside the search until the
/// gate opens — the deterministic way to hold async queries "executing"
/// while a test probes admission control or shutdown. With
/// `block_first_only`, only the first query ever parks; the rest answer
/// immediately (the shutdown test needs later queries to resolve while the
/// first pins the engine's in-flight count).
class GateIndex : public SearchIndex {
 public:
  explicit GateIndex(size_t dim, bool block_first_only = false)
      : dim_(dim), block_first_only_(block_first_only) {}

  std::string name() const override { return "gate-stub"; }
  size_t size() const override { return 1; }
  size_t dim() const override { return dim_; }
  size_t memory_bytes() const override { return sizeof(*this); }

  void SearchBatch(MatrixViewF queries, size_t k, const SearchOptions&,
                   uint32_t* ids, ThreadPool* = nullptr) const override {
    {
      std::unique_lock<std::mutex> lk(mu_);
      const uint64_t ticket = entered_++;
      entered_cv_.notify_all();
      if (!block_first_only_ || ticket == 0) {
        gate_cv_.wait(lk, [&] { return open_; });
      }
    }
    const uint32_t hit = 0;
    const float dist = 0.0f;
    for (size_t qi = 0; qi < queries.rows; ++qi) {
      WritePaddedRow(&hit, &dist, 1, k, ids + qi * k, nullptr);
    }
  }

  /// Blocks until `n` queries have entered SearchBatch.
  void WaitEntered(uint64_t n) const {
    std::unique_lock<std::mutex> lk(mu_);
    entered_cv_.wait(lk, [&] { return entered_ >= n; });
  }

  void OpenGate() const {
    std::lock_guard<std::mutex> lk(mu_);
    open_ = true;
    gate_cv_.notify_all();
  }

 private:
  size_t dim_;
  bool block_first_only_;
  // mutable: SearchBatch is const on the SearchIndex seam.
  mutable std::mutex mu_;
  mutable std::condition_variable entered_cv_;
  mutable std::condition_variable gate_cv_;
  mutable uint64_t entered_ = 0;
  mutable bool open_ = false;
};

// TrySubmit with queue_capacity=1: the first query is admitted and parks
// in the gate; the second is rejected with kRejectedOverload (and counted)
// instead of blocking; once the gate opens and the engine drains, admission
// recovers. No sleeps — every step is sequenced by the gate.
TEST(ServingEngine, TrySubmitRejectsOverloadDeterministically) {
  GateIndex gate(/*dim=*/8);
  ServingOptions opts;
  opts.num_threads = 1;
  opts.max_batch = 1;
  opts.queue_capacity = 1;
  ServingEngine engine(&gate, opts);
  const std::vector<float> q(8, 0.5f);
  RuntimeParams p;

  std::future<SearchResult> admitted;
  ASSERT_EQ(engine.TrySubmit(q.data(), 3, p, &admitted),
            ServingEngine::SubmitOutcome::kAccepted);
  gate.WaitEntered(1);  // the admitted query is now executing

  std::future<SearchResult> rejected;
  EXPECT_EQ(engine.TrySubmit(q.data(), 3, p, &rejected),
            ServingEngine::SubmitOutcome::kRejectedOverload);
  EXPECT_EQ(engine.counters().rejected, 1u);
  EXPECT_EQ(engine.inflight(), 1u);  // the rejection admitted nothing

  gate.OpenGate();
  SearchResult res = admitted.get();
  EXPECT_EQ(res.outcome, SearchOutcome::kOk);
  ASSERT_EQ(res.ids.size(), 3u);
  EXPECT_EQ(res.ids[0], 0u);
  engine.Drain();

  // Capacity is back: the next admission succeeds and resolves.
  std::future<SearchResult> again;
  ASSERT_EQ(engine.TrySubmit(q.data(), 3, p, &again),
            ServingEngine::SubmitOutcome::kAccepted);
  EXPECT_EQ(again.get().outcome, SearchOutcome::kOk);
  EXPECT_EQ(engine.counters().rejected, 1u);
}

// The ISSUE 8 bugfix: a Submit that lands during shutdown resolves with
// outcome == kShutdown and all-padded ids — distinguishable from a real
// zero-hit answer. The first query parks in the gate so the destructor is
// pinned in its drain while a submitter races Submit against it.
TEST(ServingEngine, SubmitDuringShutdownIsTaggedNotZeroHit) {
  GateIndex gate(/*dim=*/8, /*block_first_only=*/true);
  ServingOptions opts;
  opts.num_threads = 2;
  opts.max_batch = 1;
  auto engine = std::make_unique<ServingEngine>(&gate, opts);
  const std::vector<float> q(8, 0.5f);
  RuntimeParams p;

  // The hammer loop uses a raw pointer: unique_ptr::reset() nulls the
  // stored pointer before the destructor runs, and the destructor itself
  // cannot finish while the gate pins its drain — which is exactly the
  // window this test submits into.
  ServingEngine* raw = engine.get();
  std::future<SearchResult> pinned = raw->Submit(q.data(), 4, p);
  gate.WaitEntered(1);  // the pin is executing; the drain must wait for it

  // Destruction starts now but cannot finish until the gate opens.
  std::thread destroyer([&] { engine.reset(); });

  // Hammer Submit until one lands after stop: pre-stop submissions resolve
  // kOk (the gate only blocks the first query); the first post-stop one
  // must come back tagged kShutdown with k padded ids.
  bool saw_shutdown = false;
  for (int i = 0; i < 1'000'000 && !saw_shutdown; ++i) {
    SearchResult res = raw->Submit(q.data(), 4, p).get();
    ASSERT_EQ(res.ids.size(), 4u);
    if (res.outcome == SearchOutcome::kShutdown) {
      saw_shutdown = true;
      for (uint32_t id : res.ids) EXPECT_EQ(id, kInvalidId);
      for (float d : res.dists) EXPECT_EQ(d, kInvalidDist);
    } else {
      ASSERT_EQ(res.outcome, SearchOutcome::kOk);
      EXPECT_EQ(res.ids[0], 0u);  // a real answer, not padding
    }
  }
  EXPECT_TRUE(saw_shutdown);

  gate.OpenGate();
  destroyer.join();
  SearchResult res = pinned.get();
  EXPECT_EQ(res.outcome, SearchOutcome::kOk);  // admitted before stop
}

/// One small facade build for the GenerationHolder tests.
Index BuildFacadeIndex(const Dataset& data, int bits2 = 0) {
  IndexSpec spec;
  spec.kind = IndexKind::kStaticLvq;
  spec.metric = data.metric;
  spec.bits1 = 8;
  spec.bits2 = bits2;
  spec.graph.graph_max_degree = 16;
  spec.graph.window_size = 32;
  Result<Index> built = Build(spec, data.base);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

TEST(GenerationHolder, CreateValidatesIndexAndOptions) {
  // Empty handle: rejected.
  ServingOptions opts;
  opts.num_threads = 1;
  EXPECT_FALSE(GenerationHolder::Create(Index(), opts).ok());

  // Degenerate serving options: rejected at the boundary.
  Dataset data = MakeDeepLike(300, 4, 900);
  ServingOptions bad;
  bad.queue_capacity = 0;
  EXPECT_FALSE(
      GenerationHolder::Create(BuildFacadeIndex(data), bad).ok());
}

TEST(GenerationHolder, SwapCutsOverAndOldGenerationSurvivesHeldRefs) {
  Dataset data = MakeDeepLike(600, 12, 901);
  ServingOptions opts;
  opts.num_threads = 2;
  Result<std::unique_ptr<GenerationHolder>> made =
      GenerationHolder::Create(BuildFacadeIndex(data), opts, "genA");
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  GenerationHolder& holder = *made.value();
  EXPECT_EQ(holder.generation(), 1u);
  EXPECT_EQ(holder.swap_count(), 0u);

  std::shared_ptr<ServingGeneration> gen1 = holder.Current();
  ASSERT_NE(gen1, nullptr);
  EXPECT_EQ(gen1->number, 1u);
  EXPECT_EQ(gen1->source, "genA");

  Result<uint64_t> swapped =
      holder.SwapTo(BuildFacadeIndex(data, /*bits2=*/8), "genB");
  ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();
  EXPECT_EQ(swapped.value(), 2u);
  EXPECT_EQ(holder.generation(), 2u);
  EXPECT_EQ(holder.swap_count(), 1u);
  std::shared_ptr<ServingGeneration> gen2 = holder.Current();
  EXPECT_EQ(gen2->number, 2u);
  EXPECT_EQ(gen2->source, "genB");

  // The pre-swap generation we still hold answers correctly after the
  // cutover — the in-flight-request guarantee.
  const size_t k = 5, nq = data.queries.rows();
  RuntimeParams p;
  p.window = 32;
  Matrix<uint32_t> old_ids(nq, k), new_ids(nq, k);
  gen1->engine->SearchBatch(data.queries, k, p, old_ids.data());
  gen2->engine->SearchBatch(data.queries, k, p, new_ids.data());
  Matrix<uint32_t> gt = ComputeGroundTruth(data.base, data.queries, k,
                                           data.metric);
  EXPECT_GE(MeanRecallAtK(old_ids, gt, k), 0.9);
  EXPECT_GE(MeanRecallAtK(new_ids, gt, k), 0.9);
}

TEST(GenerationHolder, SwapRejectsDimensionMismatch) {
  Dataset deep = MakeDeepLike(300, 4, 902);   // d = 96
  Dataset sift = MakeSiftLike(300, 4, 903);   // d = 128
  ServingOptions opts;
  opts.num_threads = 1;
  Result<std::unique_ptr<GenerationHolder>> made =
      GenerationHolder::Create(BuildFacadeIndex(deep), opts);
  ASSERT_TRUE(made.ok());
  GenerationHolder& holder = *made.value();

  Result<uint64_t> swapped = holder.SwapTo(BuildFacadeIndex(sift));
  EXPECT_FALSE(swapped.ok());
  EXPECT_EQ(swapped.status().code(), StatusCode::kInvalidArgument)
      << swapped.status().ToString();
  // The failed swap changed nothing.
  EXPECT_EQ(holder.generation(), 1u);
  EXPECT_EQ(holder.swap_count(), 0u);
  EXPECT_EQ(holder.Current()->index.dim(), 96u);
}

}  // namespace
}  // namespace blink
