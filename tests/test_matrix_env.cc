// Unit tests for the small utilities: Matrix/MatrixView, env knobs, Timer.
#include <cstdlib>
#include <gtest/gtest.h>

#include "util/env.h"
#include "util/matrix.h"
#include "util/timer.h"

namespace blink {
namespace {

TEST(Matrix, ZeroInitialized) {
  MatrixF m(5, 7);
  for (size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.0f);
}

TEST(Matrix, RowAccessAndIndexing) {
  MatrixF m(3, 4);
  m(1, 2) = 42.0f;
  EXPECT_EQ(m.row(1)[2], 42.0f);
  EXPECT_EQ(m.row_span(1)[2], 42.0f);
  EXPECT_EQ(m.row(1), m.data() + 4);
}

TEST(Matrix, CloneIsDeep) {
  MatrixF m(2, 2);
  m(0, 0) = 1.0f;
  MatrixF c = m.Clone();
  c(0, 0) = 9.0f;
  EXPECT_EQ(m(0, 0), 1.0f);
  EXPECT_EQ(c(0, 0), 9.0f);
}

TEST(Matrix, MoveLeavesSourceEmpty) {
  MatrixF m(4, 4);
  m(3, 3) = 7.0f;
  MatrixF n = std::move(m);
  EXPECT_EQ(n(3, 3), 7.0f);
  EXPECT_EQ(n.rows(), 4u);
}

TEST(Matrix, RowsAreCacheAligned) {
  MatrixF m(3, 16);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(m.data()) % 64, 0u);
}

TEST(MatrixView, WrapsMatrixTransparently) {
  Matrix<int32_t> m(2, 3);
  m(1, 1) = -5;
  MatrixView<int32_t> v = m;
  EXPECT_EQ(v.rows, 2u);
  EXPECT_EQ(v.cols, 3u);
  EXPECT_EQ(v.row(1)[1], -5);
}

TEST(Matrix, SupportsByteElementType) {
  Matrix<uint8_t> m(4, 5);
  m(3, 4) = 0xFE;
  EXPECT_EQ(m(3, 4), 0xFE);
  EXPECT_EQ(m.size(), 20u);
}

TEST(Env, DoubleAndIntParsing) {
  setenv("BLINK_TEST_D", "2.5", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("BLINK_TEST_D", 1.0), 2.5);
  EXPECT_DOUBLE_EQ(EnvDouble("BLINK_TEST_MISSING", 7.0), 7.0);
  setenv("BLINK_TEST_I", "42", 1);
  EXPECT_EQ(EnvInt("BLINK_TEST_I", 1), 42);
  setenv("BLINK_TEST_BAD", "zzz", 1);
  EXPECT_EQ(EnvInt("BLINK_TEST_BAD", 3), 3);
  unsetenv("BLINK_TEST_D");
  unsetenv("BLINK_TEST_I");
  unsetenv("BLINK_TEST_BAD");
}

TEST(Env, ScaledNAppliesScaleAndFloor) {
  setenv("BLINK_SCALE", "2", 1);
  EXPECT_EQ(ScaledN(1000), 2000u);
  setenv("BLINK_SCALE", "0.001", 1);
  EXPECT_EQ(ScaledN(1000, 500), 500u);  // floored
  unsetenv("BLINK_SCALE");
  EXPECT_EQ(ScaledN(1000), 1000u);
}

TEST(Env, NumThreadsOverride) {
  setenv("BLINK_THREADS", "3", 1);
  EXPECT_EQ(NumThreads(), 3u);
  unsetenv("BLINK_THREADS");
  EXPECT_GE(NumThreads(), 1u);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink = sink + i * 0.5;
  const double s = t.Seconds();
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 10.0);
  EXPECT_NEAR(t.Millis(), t.Seconds() * 1e3, t.Seconds() * 1e3 * 0.5);
  t.Reset();
  EXPECT_LT(t.Seconds(), s + 1.0);
}

}  // namespace
}  // namespace blink
