// Filtered search subsystem (DESIGN.md D15): predicate grammar and
// semantics, the metadata column store (owned and mmap-backed), the BLMD
// sidecar round trip, filtered recall against brute-force-filtered ground
// truth across selectivities and flavors, strategy selection, the facade
// capability wiring, and the dynamic upsert-vs-search concurrency contract
// (TSan target).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/index.h"
#include "api/spec.h"
#include "data/groundtruth.h"
#include "filter/metadata.h"
#include "filter/predicate.h"
#include "filter/serialize.h"
#include "filter/synthetic.h"
#include "testutil.h"
#include "util/mmap_file.h"

namespace blink {
namespace {

using testutil::ExpectSameIds;
using testutil::TempPathTest;

// --- predicate grammar ------------------------------------------------------

TEST(PredicateParse, FullGrammar) {
  auto r = Predicate::Parse("tag:any=1,3 tag:all=0 tag:none=5 num0>=2.5 num1<7");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Predicate& p = r.value();
  EXPECT_EQ(p.tag_any, (1ull << 1) | (1ull << 3));
  EXPECT_EQ(p.tag_all, 1ull << 0);
  EXPECT_EQ(p.tag_none, 1ull << 5);
  ASSERT_EQ(p.ranges.size(), 2u);
  EXPECT_EQ(p.ranges[0].column, 0u);
  EXPECT_EQ(p.ranges[0].lo, 2.5);
  EXPECT_FALSE(p.ranges[0].lo_strict);
  EXPECT_TRUE(std::isinf(p.ranges[0].hi));
  EXPECT_EQ(p.ranges[1].column, 1u);
  EXPECT_EQ(p.ranges[1].hi, 7.0);
  EXPECT_TRUE(p.ranges[1].hi_strict);
}

TEST(PredicateParse, EqualityAndStrictOperators) {
  auto eq = Predicate::Parse("num2=7");
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(eq.value().ranges[0].lo, 7.0);
  EXPECT_EQ(eq.value().ranges[0].hi, 7.0);
  EXPECT_FALSE(eq.value().ranges[0].lo_strict);
  EXPECT_FALSE(eq.value().ranges[0].hi_strict);

  auto gt = Predicate::Parse("num0>1e-3");
  ASSERT_TRUE(gt.ok());
  EXPECT_TRUE(gt.value().ranges[0].lo_strict);
  EXPECT_EQ(gt.value().ranges[0].lo, 1e-3);

  auto le = Predicate::Parse("num0<=-2.5");
  ASSERT_TRUE(le.ok());
  EXPECT_FALSE(le.value().ranges[0].hi_strict);
  EXPECT_EQ(le.value().ranges[0].hi, -2.5);
}

TEST(PredicateParse, RepeatedTagClausesOrTheirMasks) {
  auto r = Predicate::Parse("tag:any=1 tag:any=4");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().tag_any, (1ull << 1) | (1ull << 4));
}

TEST(PredicateParse, StrictRejections) {
  const char* bad[] = {
      "",                // empty predicate
      " num0<1",         // stray leading space
      "num0<1 ",         // trailing space
      "num0<1  num1<2",  // doubled space = empty clause
      "num0",            // missing operator
      "num0<",           // missing value
      "num0<abc",        // non-numeric value
      "num0<1x",         // trailing garbage in value
      "num<1",           // missing column index
      "num0<inf",        // non-finite value
      "num0<nan",        // NaN value
      "tag:any=",        // empty bit list
      "tag:any=64",      // bit out of range
      "tag:any=1,",      // trailing comma
      "tag:any=1,,2",    // empty element
      "tag:sum=1",       // unknown tag constraint
      "tag:",            // empty tag clause
      "frobnicate",      // unknown clause
  };
  for (const char* text : bad) {
    auto r = Predicate::Parse(text);
    EXPECT_FALSE(r.ok()) << "should reject '" << text << "'";
  }
}

TEST(PredicateParse, ToStringRoundTrips) {
  const char* texts[] = {"tag:any=1,3 num0>=2.5", "tag:none=0 num1<7",
                        "num0=3 tag:all=2,5"};
  for (const char* text : texts) {
    auto p = Predicate::Parse(text);
    ASSERT_TRUE(p.ok()) << text;
    auto again = Predicate::Parse(p.value().ToString());
    ASSERT_TRUE(again.ok()) << p.value().ToString();
    EXPECT_EQ(again.value().ToString(), p.value().ToString());
  }
  EXPECT_EQ(Predicate().ToString(), "<match-all>");
}

TEST(PredicateValidate, ColumnBoundsAndEmptyRanges) {
  auto p = Predicate::Parse("num2<5");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p.value().ValidateFor(3).ok());
  auto st = p.value().ValidateFor(2);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("column 2"), std::string::npos)
      << st.ToString();

  // Conjoined clauses can produce an empty range only through two clauses;
  // a single range with lo > hi is rejected.
  Predicate empty;
  empty.ranges.push_back({.column = 0, .lo = 2.0, .hi = 1.0});
  EXPECT_FALSE(empty.ValidateFor(1).ok());
  Predicate point;
  point.ranges.push_back(
      {.column = 0, .lo_strict = true, .lo = 1.0, .hi = 1.0});
  EXPECT_FALSE(point.ValidateFor(1).ok());
}

// --- predicate semantics ----------------------------------------------------

TEST(MatchesPredicate, TagAndRangeSemantics) {
  MetadataStore s(4, {ColumnType::kI64, ColumnType::kF64});
  s.set_tags(0, 0b0011);
  s.set_tags(1, 0b0100);
  s.set_tags(2, 0b0111);
  s.set_tags(3, 0);
  for (uint32_t id = 0; id < 4; ++id) {
    s.SetNumericI64(0, id, 10 * (id + 1));  // 10, 20, 30, 40
    s.SetNumeric(1, id, 0.25 * id);         // 0.0, 0.25, 0.5, 0.75
  }

  auto match = [&](const char* text, uint32_t id) {
    auto p = Predicate::Parse(text);
    EXPECT_TRUE(p.ok()) << text;
    return MatchesPredicate(s, p.value(), id);
  };

  // any: at least one shared bit.
  EXPECT_TRUE(match("tag:any=0,2", 0));
  EXPECT_TRUE(match("tag:any=0,2", 1));
  EXPECT_FALSE(match("tag:any=0,2", 3));
  // all: superset.
  EXPECT_TRUE(match("tag:all=0,1", 0));
  EXPECT_FALSE(match("tag:all=0,1", 1));
  EXPECT_TRUE(match("tag:all=0,1,2", 2));
  // none: disjoint.
  EXPECT_TRUE(match("tag:none=2", 0));
  EXPECT_FALSE(match("tag:none=2", 1));
  EXPECT_TRUE(match("tag:none=0,1,2", 3));

  // Ranges, strict and inclusive endpoints, on both column types.
  EXPECT_TRUE(match("num0>=20", 1));
  EXPECT_FALSE(match("num0>20", 1));
  EXPECT_TRUE(match("num1<=0.5", 2));
  EXPECT_FALSE(match("num1<0.5", 2));
  EXPECT_TRUE(match("num0=30", 2));

  // Conjunction across clause kinds.
  EXPECT_TRUE(match("tag:any=2 num0>=25 num1<0.75", 2));
  EXPECT_FALSE(match("tag:any=2 num0>=25 num1<0.5", 2));
}

TEST(MatchesPredicate, TrivialPredicateMatchesEverything) {
  MetadataStore s(2, {});
  Predicate p;
  EXPECT_TRUE(p.Trivial());
  EXPECT_TRUE(MatchesPredicate(s, p, 0));
  EXPECT_TRUE(MatchesPredicate(s, p, 1));
}

// --- store operations -------------------------------------------------------

TEST(MetadataStore, ResizeZeroFillsAndClearRowClears) {
  MetadataStore s(2, {ColumnType::kF64});
  s.set_tags(1, 0xff);
  s.SetNumeric(0, 1, 3.5);
  s.Resize(4);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.tags(1), 0xffull);
  EXPECT_EQ(s.NumericF64(0, 1), 3.5);
  EXPECT_EQ(s.tags(3), 0ull);
  EXPECT_EQ(s.NumericF64(0, 3), 0.0);
  s.ClearRow(1);
  EXPECT_EQ(s.tags(1), 0ull);
  EXPECT_EQ(s.NumericF64(0, 1), 0.0);
}

TEST(MetadataStore, SelectivityEstimateTracksTruth) {
  const size_t n = 4096;
  MetadataStore s = MakeSyntheticMetadata(n, {ColumnType::kF64}, 7);
  auto p = Predicate::Parse("num0<0.25");
  ASSERT_TRUE(p.ok());
  size_t hits = 0;
  for (uint32_t i = 0; i < n; ++i) hits += MatchesPredicate(s, p.value(), i);
  const double truth = static_cast<double>(hits) / static_cast<double>(n);
  EXPECT_NEAR(truth, 0.25, 0.05);  // the generator is uniform [0,1)
  EXPECT_NEAR(EstimateSelectivity(s, p.value()), truth, 0.06);
}

TEST(ResolveFilterStrategyTest, CrossoverAndExplicitChoices) {
  MetadataStore s = MakeSyntheticMetadata(4096, {ColumnType::kF64}, 7);
  auto sparse = Predicate::Parse("num0<0.01");
  auto dense = Predicate::Parse("num0<0.5");
  ASSERT_TRUE(sparse.ok() && dense.ok());
  EXPECT_EQ(ResolveFilterStrategy(s, sparse.value(), FilterStrategy::kAuto),
            FilterStrategy::kInSearch);
  EXPECT_EQ(ResolveFilterStrategy(s, dense.value(), FilterStrategy::kAuto),
            FilterStrategy::kPostFilter);
  // Explicit requests are echoed regardless of selectivity.
  EXPECT_EQ(
      ResolveFilterStrategy(s, sparse.value(), FilterStrategy::kPostFilter),
      FilterStrategy::kPostFilter);
  EXPECT_EQ(ResolveFilterStrategy(s, dense.value(), FilterStrategy::kInSearch),
            FilterStrategy::kInSearch);
}

// --- serialization ----------------------------------------------------------

class MetadataSerialization : public TempPathTest {};

void ExpectSameCells(const MetadataStore& a, const MetadataStore& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.schema(), b.schema());
  for (uint32_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.tags(i), b.tags(i)) << "row " << i;
    for (size_t c = 0; c < a.num_columns(); ++c) {
      ASSERT_EQ(a.column_data(c)[i], b.column_data(c)[i])
          << "row " << i << " col " << c;
    }
  }
}

TEST_F(MetadataSerialization, SaveLoadRoundTripsEveryCell) {
  const MetadataStore s =
      MakeSyntheticMetadata(777, {ColumnType::kI64, ColumnType::kF64}, 5);
  const std::string p = Path("meta_roundtrip.meta");
  ASSERT_TRUE(SaveMetadata(p, s, s.size()).ok());
  EXPECT_TRUE(IsMetadataFile(p));
  auto loaded = LoadMetadata(p);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded.value().external());
  ExpectSameCells(s, loaded.value());
}

TEST_F(MetadataSerialization, MappedViewMatchesEveryCell) {
  const MetadataStore s =
      MakeSyntheticMetadata(500, {ColumnType::kF64, ColumnType::kI64}, 11);
  const std::string p = Path("meta_mapped.meta");
  ASSERT_TRUE(SaveMetadata(p, s, s.size()).ok());
  auto map = MmapFile::Map(p);
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  auto view = MapMetadata(map.value());
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_TRUE(view.value().external());
  ExpectSameCells(s, view.value());
}

// OwnedCopy and Slice must materialize every column of an *external*
// store — a regression test for the copy loops iterating the owned column
// vector (empty under mmap) instead of the schema.
TEST_F(MetadataSerialization, ExternalOwnedCopyAndSliceKeepNumericColumns) {
  const MetadataStore s =
      MakeSyntheticMetadata(300, {ColumnType::kF64, ColumnType::kI64}, 13);
  const std::string p = Path("meta_external_copy.meta");
  ASSERT_TRUE(SaveMetadata(p, s, s.size()).ok());
  auto map = MmapFile::Map(p);
  ASSERT_TRUE(map.ok());
  auto view = MapMetadata(map.value());
  ASSERT_TRUE(view.ok());

  MetadataStore copy = view.value().OwnedCopy();
  EXPECT_FALSE(copy.external());
  ExpectSameCells(s, copy);

  std::vector<uint32_t> ids = {7, 0, 299, 150};
  MetadataStore slice = view.value().Slice(ids);
  ASSERT_EQ(slice.size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(slice.tags(static_cast<uint32_t>(i)), s.tags(ids[i]));
    EXPECT_EQ(slice.NumericF64(0, static_cast<uint32_t>(i)),
              s.NumericF64(0, ids[i]));
    EXPECT_EQ(slice.NumericI64(1, static_cast<uint32_t>(i)),
              s.NumericI64(1, ids[i]));
  }
}

TEST_F(MetadataSerialization, ReSaveIsByteIdentical) {
  const MetadataStore s = MakeSyntheticMetadata(321, {ColumnType::kF64}, 17);
  const std::string p1 = Path("meta_bytes_1.meta");
  const std::string p2 = Path("meta_bytes_2.meta");
  ASSERT_TRUE(SaveMetadata(p1, s, s.size()).ok());
  auto loaded = LoadMetadata(p1);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(SaveMetadata(p2, loaded.value(), loaded.value().size()).ok());
  std::ifstream f1(p1, std::ios::binary), f2(p2, std::ios::binary);
  std::vector<char> b1((std::istreambuf_iterator<char>(f1)),
                       std::istreambuf_iterator<char>());
  std::vector<char> b2((std::istreambuf_iterator<char>(f2)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(b1, b2);
}

TEST_F(MetadataSerialization, TruncatedAndForeignFilesAreRejected) {
  const MetadataStore s = MakeSyntheticMetadata(100, {ColumnType::kF64}, 3);
  const std::string p = Path("meta_trunc.meta");
  ASSERT_TRUE(SaveMetadata(p, s, s.size()).ok());
  std::ifstream in(p, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  for (size_t cut : {size_t{3}, size_t{17}, bytes.size() / 2,
                     bytes.size() - 8}) {
    const std::string t = Path("meta_cut_" + std::to_string(cut));
    std::ofstream out(t, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
    out.close();
    EXPECT_FALSE(LoadMetadata(t).ok()) << "cut at " << cut;
  }
  const std::string garbage = Path("meta_garbage");
  std::ofstream g(garbage, std::ios::binary);
  g << "not a metadata sidecar";
  g.close();
  EXPECT_FALSE(IsMetadataFile(garbage));
  EXPECT_FALSE(LoadMetadata(garbage).ok());
}

// --- filtered recall vs brute-force-filtered ground truth -------------------

// Shared world: deep-like vectors plus deterministic synthetic metadata
// (tags and one uniform-[0,1) f64 column), so "num0<s" selects fraction s.
struct FilterWorld {
  Dataset data = MakeDeepLike(6000, 40, 21);
  std::shared_ptr<const MetadataStore> md =
      std::make_shared<const MetadataStore>(MakeSyntheticMetadata(
          6000, {ColumnType::kF64}, 123));
};

const FilterWorld& World() {
  static const FilterWorld* w = new FilterWorld();
  return *w;
}

IndexSpec FilterSpec(IndexKind kind) {
  const FilterWorld& w = World();
  IndexSpec spec;
  spec.kind = kind;
  spec.metric = w.data.metric;
  spec.graph.graph_max_degree = 24;
  spec.graph.window_size = 48;
  spec.partition.num_shards = 3;
  spec.dynamic.initial_capacity = w.data.base.rows() + 64;
  return spec;
}

/// Recall normalized by the number of *valid* ground-truth entries: sparse
/// predicates can match fewer than k rows, where |S ∩ GT| / k would cap
/// below 1.0 by construction. Queries with an empty filtered GT are
/// skipped.
double FilteredRecall(const Matrix<uint32_t>& ids, const Matrix<uint32_t>& gt,
                      size_t k) {
  double sum = 0.0;
  size_t scored = 0;
  for (size_t qi = 0; qi < ids.rows(); ++qi) {
    size_t valid = 0;
    size_t hits = 0;
    for (size_t j = 0; j < k; ++j) {
      if (gt.row(qi)[j] == UINT32_MAX) continue;
      ++valid;
      for (size_t m = 0; m < k; ++m) {
        if (ids.row(qi)[m] == gt.row(qi)[j]) {
          ++hits;
          break;
        }
      }
    }
    if (valid == 0) continue;
    sum += static_cast<double>(hits) / static_cast<double>(valid);
    ++scored;
  }
  return scored > 0 ? sum / static_cast<double>(scored) : 1.0;
}

/// Every returned id must satisfy the predicate — the filter contract is
/// exactness, not best-effort.
void ExpectAllResultsPass(const Matrix<uint32_t>& ids,
                          const MetadataStore& md, const Predicate& pred,
                          size_t corpus) {
  for (size_t qi = 0; qi < ids.rows(); ++qi) {
    for (size_t j = 0; j < ids.cols(); ++j) {
      const uint32_t id = ids.row(qi)[j];
      if (id == UINT32_MAX) continue;
      ASSERT_LT(id, corpus);
      ASSERT_TRUE(MatchesPredicate(md, pred, id))
          << "query " << qi << " returned id " << id
          << " violating '" << pred.ToString() << "'";
    }
  }
}

struct SelectivityCase {
  const char* text;
  double selectivity;  // informational
  double floor;        // pinned valid-GT-normalized recall floor
};

// The four selectivity tiers of the acceptance bar. The sparse tiers match
// fewer rows than k on this corpus, which is exactly the regime the
// adaptive widening / push-down machinery exists for.
const SelectivityCase kSelectivities[] = {
    {"num0<0.5", 0.5, 0.95},
    {"num0<0.1", 0.1, 0.95},
    {"num0<0.01", 0.01, 0.9},
    {"num0<0.001", 0.001, 0.9},
};

void RunSelectivitySweep(IndexKind kind) {
  const FilterWorld& w = World();
  ThreadPool pool(4);
  Result<Index> built = Build(FilterSpec(kind), w.data.base, &pool);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  Index& index = built.value();
  ASSERT_TRUE(index.AttachMetadata(w.md).ok());
  EXPECT_TRUE(index.has(kCapFilter));

  const size_t k = 10;
  const size_t nq = w.data.queries.rows();
  for (const SelectivityCase& sc : kSelectivities) {
    auto pred = Predicate::Parse(sc.text);
    ASSERT_TRUE(pred.ok()) << sc.text;
    const Matrix<uint32_t> gt =
        ComputeFilteredGroundTruth(w.data.base, w.data.queries, k,
                                   w.data.metric, *w.md, pred.value(), &pool);
    SearchOptions options;
    options.window = 48;
    options.filter = std::make_shared<const Predicate>(pred.value());
    Matrix<uint32_t> ids(nq, k);
    index.SearchBatch(w.data.queries, k, options, ids.data(), &pool);
    ExpectAllResultsPass(ids, *w.md, pred.value(), w.data.base.rows());
    const double recall = FilteredRecall(ids, gt, k);
    EXPECT_GE(recall, sc.floor)
        << KindName(kind) << " at '" << sc.text << "'";
  }
}

TEST(FilteredRecallSweep, StaticLvq) {
  RunSelectivitySweep(IndexKind::kStaticLvq);
}
TEST(FilteredRecallSweep, Sharded) { RunSelectivitySweep(IndexKind::kSharded); }
TEST(FilteredRecallSweep, DynamicLvq) {
  RunSelectivitySweep(IndexKind::kDynamicLvq);
}

// Both explicit strategies must meet the same bar (the crossover is a
// performance decision, never a correctness one).
TEST(FilteredRecallSweep, BothStrategiesAreExact) {
  const FilterWorld& w = World();
  ThreadPool pool(4);
  Result<Index> built =
      Build(FilterSpec(IndexKind::kStaticLvq), w.data.base, &pool);
  ASSERT_TRUE(built.ok());
  Index& index = built.value();
  ASSERT_TRUE(index.AttachMetadata(w.md).ok());

  const size_t k = 10;
  auto pred = Predicate::Parse("num0<0.05");
  ASSERT_TRUE(pred.ok());
  const Matrix<uint32_t> gt =
      ComputeFilteredGroundTruth(w.data.base, w.data.queries, k, w.data.metric,
                                 *w.md, pred.value(), &pool);
  for (FilterStrategy strategy :
       {FilterStrategy::kPostFilter, FilterStrategy::kInSearch}) {
    SearchOptions options;
    options.window = 48;
    options.filter = std::make_shared<const Predicate>(pred.value());
    options.filter_strategy = strategy;
    Matrix<uint32_t> ids(w.data.queries.rows(), k);
    index.SearchBatch(w.data.queries, k, options, ids.data(), &pool);
    ExpectAllResultsPass(ids, *w.md, pred.value(), w.data.base.rows());
    EXPECT_GE(FilteredRecall(ids, gt, k), 0.9)
        << "strategy " << static_cast<int>(strategy);
  }
}

// --- facade wiring and artifact round trip ----------------------------------

class FilterFacade : public TempPathTest {};

TEST_F(FilterFacade, CapabilityTogglesWithAttachment) {
  const FilterWorld& w = World();
  ThreadPool pool(4);
  Result<Index> built =
      Build(FilterSpec(IndexKind::kStaticLvq), w.data.base, &pool);
  ASSERT_TRUE(built.ok());
  Index& index = built.value();
  EXPECT_FALSE(index.has(kCapFilter));
  EXPECT_EQ(index.metadata(), nullptr);

  SearchOptions filtered;
  filtered.filter =
      std::make_shared<const Predicate>(Predicate::Parse("num0<0.5").value());
  EXPECT_FALSE(filtered.ValidateFor(index.capabilities()).ok());

  // Without kCapFilter a filtered query fails *closed*: all-padded rows.
  Matrix<uint32_t> ids(w.data.queries.rows(), 10);
  index.SearchBatch(w.data.queries, 10, filtered, ids.data(), &pool);
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids.data()[i], UINT32_MAX);
  }

  ASSERT_TRUE(index.AttachMetadata(w.md).ok());
  EXPECT_TRUE(index.has(kCapFilter));
  EXPECT_NE(index.metadata(), nullptr);
  EXPECT_TRUE(filtered.ValidateFor(index.capabilities()).ok());

  ASSERT_TRUE(index.AttachMetadata(nullptr).ok());
  EXPECT_FALSE(index.has(kCapFilter));
  EXPECT_EQ(index.metadata(), nullptr);
}

TEST_F(FilterFacade, OptionsValidateWidenCap) {
  SearchOptions o;
  o.filter =
      std::make_shared<const Predicate>(Predicate::Parse("num0<1").value());
  o.window = 64;
  o.filter_widen_cap = 32;  // below the window floor
  EXPECT_FALSE(o.Validate().ok());
  o.filter_widen_cap = 0;  // auto
  EXPECT_TRUE(o.Validate().ok());
  o.filter_widen_cap = 128;
  EXPECT_TRUE(o.Validate().ok());
  EXPECT_EQ(o.ResolvedFor(10, 1).filter_widen_cap, 128u);
  o.filter_widen_cap = (1u << 20) + 1;
  EXPECT_FALSE(o.Validate().ok());
}

void RoundTripFlavor(IndexKind kind, const std::string& path,
                     LoadMode load_mode) {
  const FilterWorld& w = World();
  ThreadPool pool(4);
  Result<Index> built = Build(FilterSpec(kind), w.data.base, &pool);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ASSERT_TRUE(built.value().AttachMetadata(w.md).ok());
  ASSERT_TRUE(built.value().Save(path).ok());

  OpenOptions oo;
  oo.load_mode = load_mode;
  Result<Index> opened = Open(path, oo);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_TRUE(opened.value().has(kCapFilter)) << KindName(kind);
  ASSERT_NE(opened.value().metadata(), nullptr);
  EXPECT_EQ(opened.value().metadata()->size(), w.md->size());

  SearchOptions options;
  options.window = 48;
  options.filter =
      std::make_shared<const Predicate>(Predicate::Parse("num0<0.1").value());
  const size_t k = 10;
  const size_t nq = w.data.queries.rows();
  Matrix<uint32_t> before(nq, k), after(nq, k);
  built.value().SearchBatch(w.data.queries, k, options, before.data(), &pool);
  opened.value().SearchBatch(w.data.queries, k, options, after.data(), &pool);
  ExpectSameIds(before, after,
                std::string(KindName(kind)) + " filtered round trip");
}

TEST_F(FilterFacade, StaticRoundTripLoadAndMap) {
  RoundTripFlavor(IndexKind::kStaticLvq, Path("filter_static"),
                  LoadMode::kLoad);
  RoundTripFlavor(IndexKind::kStaticLvq, Path("filter_static_map"),
                  LoadMode::kMap);
}

TEST_F(FilterFacade, ShardedRoundTrip) {
  RoundTripFlavor(IndexKind::kSharded, DirPath("filter_sharded"),
                  LoadMode::kLoad);
}

TEST_F(FilterFacade, DynamicRoundTrip) {
  RoundTripFlavor(IndexKind::kDynamicLvq, Path("filter_dynamic"),
                  LoadMode::kLoad);
}

TEST_F(FilterFacade, SidecarReSaveIsByteIdentical) {
  const FilterWorld& w = World();
  ThreadPool pool(4);
  Result<Index> built =
      Build(FilterSpec(IndexKind::kStaticLvq), w.data.base, &pool);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built.value().AttachMetadata(w.md).ok());
  const std::string p1 = Path("filter_bytes_1");
  const std::string p2 = Path("filter_bytes_2");
  Path("filter_bytes_1.graph");  // register artifacts for teardown
  Path("filter_bytes_1.vecs");
  Path("filter_bytes_1.meta");
  Path("filter_bytes_2.graph");
  Path("filter_bytes_2.vecs");
  Path("filter_bytes_2.meta");
  ASSERT_TRUE(built.value().Save(p1).ok());
  Result<Index> opened = Open(p1);
  ASSERT_TRUE(opened.ok());
  ASSERT_TRUE(opened.value().Save(p2).ok());
  for (const char* suffix : {".meta", ".graph", ".vecs"}) {
    std::ifstream f1(p1 + suffix, std::ios::binary);
    std::ifstream f2(p2 + suffix, std::ios::binary);
    std::vector<char> b1((std::istreambuf_iterator<char>(f1)),
                         std::istreambuf_iterator<char>());
    std::vector<char> b2((std::istreambuf_iterator<char>(f2)),
                         std::istreambuf_iterator<char>());
    ASSERT_FALSE(b1.empty()) << suffix;
    EXPECT_EQ(b1, b2) << suffix;
  }
}

TEST_F(FilterFacade, DetachRemovesStaleSidecarOnSave) {
  const FilterWorld& w = World();
  ThreadPool pool(4);
  Result<Index> built =
      Build(FilterSpec(IndexKind::kStaticLvq), w.data.base, &pool);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built.value().AttachMetadata(w.md).ok());
  const std::string p = Path("filter_stale");
  Path("filter_stale.graph");
  Path("filter_stale.vecs");
  Path("filter_stale.meta");
  ASSERT_TRUE(built.value().Save(p).ok());
  EXPECT_TRUE(IsMetadataFile(p + ".meta"));

  // Detach and re-save: the stale sidecar must not survive to resurrect
  // old metadata on the next Open.
  ASSERT_TRUE(built.value().AttachMetadata(nullptr).ok());
  ASSERT_TRUE(built.value().Save(p).ok());
  EXPECT_FALSE(IsMetadataFile(p + ".meta"));
  Result<Index> opened = Open(p);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value().metadata(), nullptr);
  EXPECT_FALSE(opened.value().has(kCapFilter));
}

TEST_F(FilterFacade, FilterlessArtifactsOpenUnchanged) {
  const FilterWorld& w = World();
  ThreadPool pool(4);
  Result<Index> built =
      Build(FilterSpec(IndexKind::kStaticLvq), w.data.base, &pool);
  ASSERT_TRUE(built.ok());
  const std::string p = Path("filter_none");
  Path("filter_none.graph");
  Path("filter_none.vecs");
  ASSERT_TRUE(built.value().Save(p).ok());
  EXPECT_FALSE(IsMetadataFile(p + ".meta"));
  Result<Index> opened = Open(p);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value().metadata(), nullptr);
  EXPECT_FALSE(opened.value().has(kCapFilter));
}

// --- dynamic mutation path --------------------------------------------------

TEST(FilterDynamic, UpsertAndSlotRecyclingNeverLeakStaleRows) {
  const FilterWorld& w = World();
  ThreadPool pool(4);
  Result<Index> built =
      Build(FilterSpec(IndexKind::kDynamicLvq), w.data.base, &pool);
  ASSERT_TRUE(built.ok());
  Index& index = built.value();
  ASSERT_TRUE(index.AttachMetadata(w.md).ok());

  // Tag bit 62 marks exactly one vector: the one we are about to insert.
  auto marked = Predicate::Parse("tag:any=62");
  ASSERT_TRUE(marked.ok());
  SearchOptions options;
  options.window = 32;
  options.filter = std::make_shared<const Predicate>(marked.value());

  Result<uint32_t> inserted = index.Insert(w.data.base.row(0));
  ASSERT_TRUE(inserted.ok());
  const double values[] = {0.5};
  ASSERT_TRUE(index
                  .UpsertMetadata(inserted.value(), uint64_t{1} << 62, values,
                                  1)
                  .ok());

  const size_t k = 4;
  Matrix<uint32_t> ids(1, k);
  index.SearchBatch({w.data.queries.row(0), 1, w.data.queries.cols()}, k,
                    options, ids.data(), &pool);
  EXPECT_EQ(ids.row(0)[0], inserted.value());
  for (size_t j = 1; j < k; ++j) EXPECT_EQ(ids.row(0)[j], UINT32_MAX);

  // Delete, consolidate, insert again: the recycled slot must not inherit
  // the deleted vector's marker bit.
  ASSERT_TRUE(index.Delete(inserted.value()).ok());
  ASSERT_TRUE(index.Consolidate().ok());
  Result<uint32_t> recycled = index.Insert(w.data.base.row(1));
  ASSERT_TRUE(recycled.ok());
  index.SearchBatch({w.data.queries.row(0), 1, w.data.queries.cols()}, k,
                    options, ids.data(), &pool);
  for (size_t j = 0; j < k; ++j) {
    EXPECT_EQ(ids.row(0)[j], UINT32_MAX)
        << "recycled slot " << recycled.value() << " leaked the marker tag";
  }
}

TEST(FilterDynamic, MetadataSurvivesSaveOpenWithTombstones) {
  const FilterWorld& w = World();
  ThreadPool pool(4);
  Result<Index> built =
      Build(FilterSpec(IndexKind::kDynamicLvq), w.data.base, &pool);
  ASSERT_TRUE(built.ok());
  Index& index = built.value();
  ASSERT_TRUE(index.AttachMetadata(w.md).ok());
  // A deleted-but-unconsolidated row keeps its slot; slot ids persist
  // verbatim through Save/Open, and so must metadata rows.
  ASSERT_TRUE(index.Delete(5).ok());

  const std::string p =
      testing::TempDir() + "blink_test_filter_dyn_tomb";
  ASSERT_TRUE(index.Save(p).ok());
  Result<Index> opened = Open(p);
  std::remove(p.c_str());
  std::remove((p + ".meta").c_str());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ASSERT_NE(opened.value().metadata(), nullptr);
  const MetadataStore& md = *opened.value().metadata();
  ASSERT_GE(md.size(), w.md->size());
  for (uint32_t id = 0; id < w.md->size(); id += 97) {
    EXPECT_EQ(md.tags(id), w.md->tags(id)) << id;
    EXPECT_EQ(md.NumericF64(0, id), w.md->NumericF64(0, id)) << id;
  }
}

// Concurrent metadata upserts against filtered searches: the TSan contract
// is relaxed atomics per cell (see MetadataStore), so this must run clean
// under -DBLINK_TSAN=ON (CI registers test_filter in the tsan job).
TEST(FilterDynamic, ConcurrentUpsertVsFilteredSearch) {
  Dataset data = MakeDeepLike(2000, 8, 31);
  IndexSpec spec;
  spec.kind = IndexKind::kDynamicLvq;
  spec.metric = data.metric;
  spec.graph.graph_max_degree = 16;
  spec.graph.window_size = 32;
  spec.dynamic.initial_capacity = data.base.rows() + 256;
  ThreadPool pool(4);
  Result<Index> built = Build(spec, data.base, &pool);
  ASSERT_TRUE(built.ok());
  Index& index = built.value();
  ASSERT_TRUE(index.AttachMetadata(std::make_shared<const MetadataStore>(
                      MakeSyntheticMetadata(data.base.rows(),
                                            {ColumnType::kF64}, 77)))
                  .ok());

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const uint32_t id = static_cast<uint32_t>(i % data.base.rows());
      const double v = SyntheticF64(77, i, 0);
      (void)index.UpsertMetadata(id, SyntheticTags(77, i), &v, 1);
      ++i;
    }
  });
  std::thread churner([&] {
    std::vector<uint32_t> extra;
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      if (extra.size() < 32) {
        auto id = index.Insert(data.base.row(i % data.base.rows()));
        if (id.ok()) {
          const double v = 0.25;
          (void)index.UpsertMetadata(id.value(), 1, &v, 1);
          extra.push_back(id.value());
        }
      } else {
        for (uint32_t id : extra) (void)index.Delete(id);
        extra.clear();
        (void)index.Consolidate();
      }
      ++i;
    }
    for (uint32_t id : extra) (void)index.Delete(id);
  });

  SearchOptions options;
  options.window = 32;
  options.filter =
      std::make_shared<const Predicate>(Predicate::Parse("num0<0.5").value());
  Matrix<uint32_t> ids(data.queries.rows(), 10);
  for (int iter = 0; iter < 40; ++iter) {
    const FilterStrategy strategy = iter % 2 == 0 ? FilterStrategy::kPostFilter
                                                  : FilterStrategy::kInSearch;
    options.filter_strategy = strategy;
    index.SearchBatch(data.queries, 10, options, ids.data(), &pool);
  }
  stop.store(true);
  writer.join();
  churner.join();
}

}  // namespace
}  // namespace blink
