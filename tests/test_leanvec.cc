// LeanVec (ISSUE 9 tentpole): the trainer's Status contract on degenerate
// samples, search quality of both shipped flavors, the self-describing
// BLLV round trip (Build -> Save -> Open, heap and mapped, byte-identical
// results with no caller-supplied parameters), truncation robustness, and
// Calibrate on a reduced-dimension primary.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "api/calibrate.h"
#include "api/index.h"
#include "quant/leanvec.h"
#include "testutil.h"
#include "util/prng.h"

namespace blink {
namespace {

using testutil::Fixture;

// --- trainer Status contract ------------------------------------------------

MatrixF GaussianSample(size_t n, size_t d, uint64_t seed) {
  MatrixF m(n, d);
  Rng rng(seed);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.Gaussian();
  return m;
}

void ExpectOrthonormalColumns(const LeanVecModel& model) {
  const size_t d = model.dim();
  const size_t dp = model.reduced_dim();
  for (size_t a = 0; a < dp; ++a) {
    double norm2 = 0.0;
    for (size_t i = 0; i < d; ++i) {
      const float v = model.proj(i, a);
      ASSERT_TRUE(std::isfinite(v)) << "proj(" << i << "," << a << ")";
      norm2 += static_cast<double>(v) * v;
    }
    EXPECT_NEAR(norm2, 1.0, 1e-3) << "column " << a << " not unit norm";
    for (size_t b = a + 1; b < dp; ++b) {
      double dot = 0.0;
      for (size_t i = 0; i < d; ++i) {
        dot += static_cast<double>(model.proj(i, a)) * model.proj(i, b);
      }
      EXPECT_NEAR(dot, 0.0, 1e-3) << "columns " << a << "," << b;
    }
  }
}

TEST(LeanVecTrainer, EmptySampleIsRejected) {
  auto r = TrainLeanVec(MatrixViewF(nullptr, 0, 16), 4);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("empty"), std::string::npos);
}

TEST(LeanVecTrainer, NonFiniteSampleIsRejected) {
  MatrixF s = GaussianSample(32, 16, 1);
  s(7, 3) = std::numeric_limits<float>::quiet_NaN();
  auto r = TrainLeanVec(MatrixViewF(s), 4);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("non-finite"), std::string::npos);

  s(7, 3) = std::numeric_limits<float>::infinity();
  auto r2 = TrainLeanVec(MatrixViewF(s), 4);
  EXPECT_FALSE(r2.ok());
}

TEST(LeanVecTrainer, ReducedDimAboveDataDimIsRejected) {
  MatrixF s = GaussianSample(32, 16, 2);
  auto r = TrainLeanVec(MatrixViewF(s), 17);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("exceeds"), std::string::npos);
}

TEST(LeanVecTrainer, ZeroReducedDimResolvesToQuarter) {
  MatrixF s = GaussianSample(64, 16, 3);
  auto r = TrainLeanVec(MatrixViewF(s), 0);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().reduced_dim(), 4u);
  ExpectOrthonormalColumns(r.value());
}

// Duplicate rows center to the zero matrix: every covariance eigenvalue is
// zero, the hardest rank-deficiency. One-sided Jacobi must still hand back
// an orthonormal (here: identity-permuted) basis, and the trainer's
// per-column validation must accept it.
TEST(LeanVecTrainer, DuplicateRowSampleTrains) {
  MatrixF s(64, 16);
  Rng rng(4);
  for (size_t j = 0; j < 16; ++j) s(0, j) = rng.Gaussian();
  for (size_t i = 1; i < 64; ++i) {
    std::memcpy(s.row(i), s.row(0), 16 * sizeof(float));
  }
  auto r = TrainLeanVec(MatrixViewF(s), 4);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectOrthonormalColumns(r.value());
}

// Constant (zero-variance) dimensions zero out rows and columns of the
// covariance; the surviving eigenvectors must span the varying dims.
TEST(LeanVecTrainer, ZeroVarianceDimsTrain) {
  MatrixF s = GaussianSample(64, 16, 5);
  for (size_t i = 0; i < 64; ++i) {
    for (size_t j = 0; j < 6; ++j) s(i, j) = 3.5f;  // constant block
  }
  auto r = TrainLeanVec(MatrixViewF(s), 4);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectOrthonormalColumns(r.value());
  // The top-4 directions carry variance, so none of them should point into
  // the constant block.
  for (size_t c = 0; c < 4; ++c) {
    for (size_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(r.value().proj(j, c), 0.0f, 1e-3)
          << "constant dim " << j << " leaked into column " << c;
    }
  }
}

// --- search quality ---------------------------------------------------------

const Fixture& SharedFixture() {
  static const Fixture* f = new Fixture(MakeDeepLike(2000, 100, 77));
  return *f;
}

IndexSpec LeanVecSpec(IndexKind kind, const Fixture& f) {
  IndexSpec spec;
  spec.kind = kind;
  spec.metric = f.data.metric;
  spec.graph = f.bp;
  return spec;
}

TEST(LeanVec, StaticLeanVecRecallFloor) {
  const Fixture& f = SharedFixture();
  Result<Index> index =
      Build(LeanVecSpec(IndexKind::kStaticLeanVec, f), f.data.base);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ(index.value().spec().leanvec_dim, f.data.base.cols() / 4);
  const double recall =
      testutil::RecallAtWindow(index.value().AsSearchIndex(), f, 64);
  // Measured 0.99+: the full-dimension re-rank recovers the d -> d/4
  // projection loss. The floor leaves headroom for FP drift only.
  EXPECT_GE(recall, 0.9) << "static-leanvec recall floor broken";
}

TEST(LeanVec, StaticLeanVecLvqRecallFloor) {
  const Fixture& f = SharedFixture();
  Result<Index> index =
      Build(LeanVecSpec(IndexKind::kStaticLeanVecLvq, f), f.data.base);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  const double recall =
      testutil::RecallAtWindow(index.value().AsSearchIndex(), f, 64);
  EXPECT_GE(recall, 0.9) << "static-leanvec-lvq recall floor broken";
}

// --- round trip -------------------------------------------------------------

class LeanVecRoundTrip : public testutil::TempPathTest {};

void SearchIdsAndDists(const Index& index, const Fixture& f,
                       Matrix<uint32_t>* ids, Matrix<float>* dists) {
  RuntimeParams p;
  p.window = 48;
  *ids = Matrix<uint32_t>(f.data.queries.rows(), f.k);
  *dists = Matrix<float>(f.data.queries.rows(), f.k);
  index.AsSearchIndex().SearchBatchEx(f.data.queries, f.k, p, ids->data(),
                                      dists->data(), nullptr);
}

void ExpectSameResults(const Index& a, const Index& b, const Fixture& f,
                       const std::string& what) {
  Matrix<uint32_t> ids_a, ids_b;
  Matrix<float> dists_a, dists_b;
  SearchIdsAndDists(a, f, &ids_a, &dists_a);
  SearchIdsAndDists(b, f, &ids_b, &dists_b);
  testutil::ExpectSameIds(ids_a, ids_b, what);
  for (size_t i = 0; i < dists_a.size(); ++i) {
    uint32_t bits_a, bits_b;
    std::memcpy(&bits_a, dists_a.data() + i, sizeof(bits_a));
    std::memcpy(&bits_b, dists_b.data() + i, sizeof(bits_b));
    ASSERT_EQ(bits_a, bits_b) << what << " dist bits at flat index " << i;
  }
}

void RoundTripBothModes(const std::string& prefix, IndexKind kind,
                        const Fixture& f) {
  Result<Index> built = Build(LeanVecSpec(kind, f), f.data.base);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ASSERT_TRUE(built.value().Save(prefix).ok());

  // Self-describing: Open takes the path and nothing else.
  Result<Index> loaded = Open(prefix);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().kind(), kind);
  EXPECT_EQ(loaded.value().spec().leanvec_dim,
            built.value().spec().leanvec_dim);
  EXPECT_EQ(loaded.value().spec().metric, f.data.metric);
  ExpectSameResults(built.value(), loaded.value(),  f,
                    std::string(KindName(kind)) + " kLoad");

  OpenOptions mapped;
  mapped.load_mode = LoadMode::kMap;
  Result<Index> map = Open(prefix, mapped);
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  ExpectSameResults(built.value(), map.value(), f,
                    std::string(KindName(kind)) + " kMap");
}

TEST_F(LeanVecRoundTrip, StaticLeanVecLoadAndMapAreByteIdentical) {
  const std::string prefix = Path("leanvec_f32");
  (void)Path("leanvec_f32.graph");
  (void)Path("leanvec_f32.vecs");
  RoundTripBothModes(prefix, IndexKind::kStaticLeanVec, SharedFixture());
}

TEST_F(LeanVecRoundTrip, StaticLeanVecLvqLoadAndMapAreByteIdentical) {
  const std::string prefix = Path("leanvec_lvq");
  (void)Path("leanvec_lvq.graph");
  (void)Path("leanvec_lvq.vecs");
  RoundTripBothModes(prefix, IndexKind::kStaticLeanVecLvq, SharedFixture());
}

// Explicit d' survives the round trip too (not just the d/4 default).
TEST_F(LeanVecRoundTrip, ExplicitReducedDimSurvives) {
  const Fixture& f = SharedFixture();
  IndexSpec spec = LeanVecSpec(IndexKind::kStaticLeanVec, f);
  spec.leanvec_dim = 32;
  Result<Index> built = Build(spec, f.data.base);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built.value().spec().leanvec_dim, 32u);
  const std::string prefix = Path("leanvec_d32");
  (void)Path("leanvec_d32.graph");
  (void)Path("leanvec_d32.vecs");
  ASSERT_TRUE(built.value().Save(prefix).ok());
  Result<Index> loaded = Open(prefix);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().spec().leanvec_dim, 32u);
  ExpectSameResults(built.value(), loaded.value(), f, "explicit d'");
}

// Every strict prefix of a BLLV payload must come back as a Status — the
// cut points cover mid-header, mid-model (mean / projection matrix), and
// both vector sections.
void ExpectVecsTruncationsFail(const std::string& prefix) {
  std::ifstream in(prefix + ".vecs", std::ios::binary);
  ASSERT_TRUE(in.good());
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  ASSERT_GT(bytes.size(), 256u);
  for (size_t cut :
       {size_t{0}, size_t{2}, size_t{7}, size_t{13}, size_t{33}, size_t{100},
        bytes.size() / 4, bytes.size() / 2, bytes.size() - 64,
        bytes.size() - 1}) {
    if (cut >= bytes.size()) continue;
    std::ofstream out(prefix + ".vecs",
                      std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
    out.close();
    auto r = Open(prefix);
    EXPECT_FALSE(r.ok()) << "BLLV truncated to " << cut
                         << " bytes unexpectedly loaded";
  }
}

TEST_F(LeanVecRoundTrip, TruncatedLeanVecVecsFails) {
  const Fixture& f = SharedFixture();
  for (IndexKind kind :
       {IndexKind::kStaticLeanVec, IndexKind::kStaticLeanVecLvq}) {
    const std::string prefix =
        Path(std::string("trunc_") + KindName(kind));
    (void)Path(std::string("trunc_") + KindName(kind) + ".graph");
    (void)Path(std::string("trunc_") + KindName(kind) + ".vecs");
    Result<Index> built = Build(LeanVecSpec(kind, f), f.data.base);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    ASSERT_TRUE(built.value().Save(prefix).ok());
    ExpectVecsTruncationsFail(prefix);
  }
}

// --- Calibrate --------------------------------------------------------------

TEST(LeanVec, CalibrateMeetsTargetOnLeanVec) {
  const Fixture& f = SharedFixture();
  Result<Index> index =
      Build(LeanVecSpec(IndexKind::kStaticLeanVec, f), f.data.base);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  CalibrationTarget t;
  t.target_recall = 0.95;
  t.sample_queries = f.data.queries;
  t.groundtruth = &f.gt;
  t.k = f.k;
  Result<SearchOptions> options = index.value().Calibrate(t);
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  Matrix<uint32_t> ids(f.data.queries.rows(), f.k);
  index.value().SearchBatch(f.data.queries, f.k, options.value(), ids.data());
  // Same sample, same build: the 0.01 slack covers SIMD-backend FP drift.
  EXPECT_GE(MeanRecallAtK(ids, f.gt, f.k), 0.95 - 0.01);
}

}  // namespace
}  // namespace blink
