// Unit tests for the IVF-PQ (+refine) baseline.
#include "baselines/ivf.h"

#include <gtest/gtest.h>

#include "data/groundtruth.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

namespace blink {
namespace {

struct IvfFixture {
  Dataset data = MakeDeepLike(4000, 50, 60);
  Matrix<uint32_t> gt =
      ComputeGroundTruth(data.base, data.queries, 10, data.metric);

  IvfPqParams Params() const {
    IvfPqParams p;
    p.nlist = 64;
    p.pq.num_segments = 24;
    return p;
  }

  double Recall(const IvfPqIndex& idx, uint32_t nprobe,
                uint32_t reorder) const {
    RuntimeParams rp;
    rp.nprobe = nprobe;
    rp.reorder_k = reorder;
    Matrix<uint32_t> ids(data.queries.rows(), 10);
    idx.SearchBatch(data.queries, 10, rp, ids.data());
    return MeanRecallAtK(ids, gt, 10);
  }
};

TEST(IvfPq, RecallIncreasesWithNprobe) {
  IvfFixture f;
  IvfPqIndex idx(f.data.base, f.data.metric, f.Params());
  const double r1 = f.Recall(idx, 1, 0);
  const double r8 = f.Recall(idx, 8, 0);
  const double r64 = f.Recall(idx, 64, 0);
  EXPECT_LT(r1, r64);
  EXPECT_LE(r8, r64 + 0.02);
  EXPECT_GT(r64, 0.5);  // all lists probed: limited only by PQ error
}

TEST(IvfPq, ReorderingBoostsRecall) {
  IvfFixture f;
  IvfPqIndex idx(f.data.base, f.data.metric, f.Params());
  const double no_reorder = f.Recall(idx, 16, 0);
  const double with_reorder = f.Recall(idx, 16, 100);
  EXPECT_GT(with_reorder, no_reorder);
  EXPECT_GE(with_reorder, 0.85);
}

TEST(IvfPq, FullProbeWithReorderIsNearExact) {
  IvfFixture f;
  IvfPqIndex idx(f.data.base, f.data.metric, f.Params());
  EXPECT_GE(f.Recall(idx, 64, 500), 0.98);
}

TEST(IvfPq, MemoryAccountsForRefineVectors) {
  IvfFixture f;
  IvfPqParams with = f.Params();
  IvfPqParams without = f.Params();
  without.keep_full_vectors = false;
  IvfPqIndex a(f.data.base, f.data.metric, with);
  IvfPqIndex b(f.data.base, f.data.metric, without);
  // The refine copy costs n*d*4 bytes — the paper's Sec. 6.6 criticism.
  EXPECT_GE(a.memory_bytes(), b.memory_bytes() + 4000u * 96u * 4u);
}

TEST(IvfPq, WithoutFullVectorsReorderIsNoop) {
  IvfFixture f;
  IvfPqParams p = f.Params();
  p.keep_full_vectors = false;
  IvfPqIndex idx(f.data.base, f.data.metric, p);
  EXPECT_NEAR(f.Recall(idx, 16, 100), f.Recall(idx, 16, 0), 1e-9);
}

TEST(IvfPq, InnerProductMetric) {
  Dataset data = MakeDprLike(1500, 30, 61);
  Matrix<uint32_t> gt =
      ComputeGroundTruth(data.base, data.queries, 10, data.metric);
  IvfPqParams p;
  p.nlist = 32;
  p.pq.num_segments = 96;
  IvfPqIndex idx(data.base, data.metric, p);
  RuntimeParams rp;
  rp.nprobe = 32;
  rp.reorder_k = 200;
  Matrix<uint32_t> ids(data.queries.rows(), 10);
  idx.SearchBatch(data.queries, 10, rp, ids.data());
  EXPECT_GE(MeanRecallAtK(ids, gt, 10), 0.9);
}

TEST(IvfPq, EveryPointLandsInExactlyOneList) {
  IvfFixture f;
  IvfPqIndex idx(f.data.base, f.data.metric, f.Params());
  // Probing all lists with huge reorder must be able to return any id:
  // verified indirectly by near-exact recall above; here check the name/
  // size/dim contract.
  EXPECT_EQ(idx.size(), 4000u);
  EXPECT_EQ(idx.dim(), 96u);
  EXPECT_NE(idx.name().find("IVFPQ"), std::string::npos);
}

}  // namespace
}  // namespace blink
