// Network front-end tests (ISSUE 8): wire-protocol round trips and bounds
// checks, loopback server correctness against the direct search path,
// HTTP /stats, malformed-frame handling, deterministic server-level
// admission control, and the tentpole guarantee — hot-swap under
// concurrent load with zero dropped or erroneous responses. Registered in
// the TSan CI job alongside the serving-engine suite.
#include "net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/index.h"
#include "api/spec.h"
#include "eval/report.h"
#include "filter/metadata.h"
#include "filter/predicate.h"
#include "filter/synthetic.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "testutil.h"

namespace blink {
namespace {

using net::BlinkClient;
using net::BlinkServer;
using net::FrameType;
using net::SearchResponse;
using net::ServerOptions;
using net::StatusTextResponse;
using net::WireStatus;

// --- protocol unit tests ----------------------------------------------------

TEST(NetProtocol, SearchRequestRoundTrip) {
  MatrixF queries(3, 4);
  for (size_t i = 0; i < queries.size(); ++i) {
    queries.data()[i] = 0.25f * static_cast<float>(i);
  }
  SearchOptions opts;
  opts.window = 48;
  opts.nprobe_shards = 3;
  opts.rerank_window = 17;
  opts.rerank = false;
  const std::vector<uint8_t> payload =
      net::EncodeSearchRequest(queries, /*k=*/7, opts);

  net::SearchRequest req;
  ASSERT_TRUE(net::DecodeSearchRequest(payload, &req).ok());
  EXPECT_EQ(req.k, 7u);
  EXPECT_EQ(req.options.window, 48u);
  EXPECT_EQ(req.options.nprobe_shards, 3u);
  EXPECT_EQ(req.options.rerank_window, 17u);
  EXPECT_FALSE(req.options.rerank);
  ASSERT_EQ(req.num_queries, 3u);
  ASSERT_EQ(req.dim, 4u);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(req.queries[i], queries.data()[i]) << i;
  }
}

TEST(NetProtocol, SearchRequestRejectsTruncationAndMismatch) {
  MatrixF queries(2, 3);
  SearchOptions opts;
  std::vector<uint8_t> payload = net::EncodeSearchRequest(queries, 5, opts);
  net::SearchRequest req;

  // Truncated header.
  std::vector<uint8_t> short_header(payload.begin(), payload.begin() + 10);
  EXPECT_FALSE(net::DecodeSearchRequest(short_header, &req).ok());

  // Body shorter than the header promises.
  std::vector<uint8_t> short_body(payload.begin(), payload.end() - 4);
  EXPECT_FALSE(net::DecodeSearchRequest(short_body, &req).ok());

  // Body longer than the header promises.
  std::vector<uint8_t> long_body = payload;
  long_body.insert(long_body.end(), 4, 0);
  EXPECT_FALSE(net::DecodeSearchRequest(long_body, &req).ok());
}

TEST(NetProtocol, FilteredSearchRequestRoundTrip) {
  MatrixF queries(2, 3);
  for (size_t i = 0; i < queries.size(); ++i) {
    queries.data()[i] = static_cast<float>(i);
  }
  Result<Predicate> pred =
      Predicate::Parse("tag:any=1,3 tag:none=60 num0>=2.5 num1<7");
  ASSERT_TRUE(pred.ok());
  SearchOptions opts;
  opts.window = 64;
  opts.filter = std::make_shared<Predicate>(std::move(pred).value());
  opts.filter_strategy = FilterStrategy::kInSearch;
  opts.filter_widen_cap = 512;
  const std::vector<uint8_t> payload =
      net::EncodeSearchRequest(queries, /*k=*/5, opts);

  net::SearchRequest req;
  ASSERT_TRUE(net::DecodeSearchRequest(payload, &req).ok());
  ASSERT_NE(req.options.filter, nullptr);
  EXPECT_EQ(req.options.filter->ToString(), opts.filter->ToString());
  EXPECT_EQ(req.options.filter_strategy, FilterStrategy::kInSearch);
  EXPECT_EQ(req.options.filter_widen_cap, 512u);
  ASSERT_EQ(req.num_queries, 2u);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(req.queries[i], queries.data()[i]) << i;
  }
}

TEST(NetProtocol, FilteredSearchRequestRejectsMalformedBlocks) {
  MatrixF queries(1, 2);
  SearchOptions opts;
  opts.filter = std::make_shared<Predicate>(
      std::move(Predicate::Parse("num0<0.5")).value());
  const std::vector<uint8_t> payload =
      net::EncodeSearchRequest(queries, 5, opts);
  net::SearchRequest req;
  ASSERT_TRUE(net::DecodeSearchRequest(payload, &req).ok());

  // Fixed offsets from the wire layout (protocol.h): the flags byte sits
  // after k/window/nprobe/rerank_window (4x u32) + rerank (u8); the filter
  // strategy byte after the 28-byte header, the floats, and 3x u64 tags.
  const size_t kFlagsOff = 17;
  const size_t kStrategyOff = 28 + queries.size() * sizeof(float) + 24;

  // Unknown flag bits.
  std::vector<uint8_t> bad_flags = payload;
  bad_flags[kFlagsOff] |= 0x2;
  EXPECT_FALSE(net::DecodeSearchRequest(bad_flags, &req).ok());

  // Unknown strategy enum value.
  std::vector<uint8_t> bad_strategy = payload;
  bad_strategy[kStrategyOff] = 3;
  EXPECT_FALSE(net::DecodeSearchRequest(bad_strategy, &req).ok());

  // Truncated filter block.
  std::vector<uint8_t> truncated(payload.begin(), payload.end() - 4);
  EXPECT_FALSE(net::DecodeSearchRequest(truncated, &req).ok());

  // Trailing bytes after the filter block.
  std::vector<uint8_t> trailing = payload;
  trailing.insert(trailing.end(), 4, 0);
  EXPECT_FALSE(net::DecodeSearchRequest(trailing, &req).ok());

  // The filter flag set but no block at all.
  std::vector<uint8_t> missing_block =
      net::EncodeSearchRequest(queries, 5, SearchOptions{});
  missing_block[kFlagsOff] |= net::kSearchFlagHasFilter;
  EXPECT_FALSE(net::DecodeSearchRequest(missing_block, &req).ok());

  // Range count over the wire bound.
  SearchOptions many;
  auto big = std::make_shared<Predicate>();
  big->ranges.resize(net::kMaxWireFilterRanges + 1,
                     Predicate::Range{0, false, false, 0.0, 1.0});
  many.filter = std::move(big);
  EXPECT_FALSE(net::DecodeSearchRequest(
                   net::EncodeSearchRequest(queries, 5, many), &req)
                   .ok());
}

TEST(NetProtocol, SearchResponseRoundTripAndErrorShape) {
  SearchResponse res;
  res.status = WireStatus::kOk;
  res.generation = 42;
  res.num_queries = 2;
  res.k = 3;
  res.ids = {1, 2, kInvalidId, 4, 5, 6};
  res.dists = {0.1f, 0.2f, kInvalidDist, 0.4f, 0.5f, 0.6f};

  SearchResponse back;
  ASSERT_TRUE(
      net::DecodeSearchResponse(net::EncodeSearchResponse(res), &back).ok());
  EXPECT_EQ(back.status, WireStatus::kOk);
  EXPECT_EQ(back.generation, 42u);
  EXPECT_EQ(back.ids, res.ids);
  EXPECT_EQ(back.dists, res.dists);

  // Non-kOk responses carry no arrays regardless of what the struct held.
  res.status = WireStatus::kOverloaded;
  ASSERT_TRUE(
      net::DecodeSearchResponse(net::EncodeSearchResponse(res), &back).ok());
  EXPECT_EQ(back.status, WireStatus::kOverloaded);
  EXPECT_EQ(back.num_queries, 0u);
  EXPECT_EQ(back.k, 0u);
  EXPECT_TRUE(back.ids.empty());

  // Truncated response body is an error, not garbage results.
  std::vector<uint8_t> enc = net::EncodeSearchResponse(res);
  enc.pop_back();
  EXPECT_FALSE(net::DecodeSearchResponse(enc, &back).ok());
}

TEST(NetProtocol, SwapAndStatusTextRoundTrips) {
  std::string path;
  ASSERT_TRUE(
      net::DecodeSwapRequest(net::EncodeSwapRequest("/tmp/idx_b"), &path).ok());
  EXPECT_EQ(path, "/tmp/idx_b");

  // Length header inconsistent with the body: rejected.
  std::vector<uint8_t> bad = net::EncodeSwapRequest("abc");
  bad.push_back('d');
  EXPECT_FALSE(net::DecodeSwapRequest(bad, &path).ok());

  StatusTextResponse st;
  st.status = WireStatus::kError;
  st.generation = 9;
  st.text = "open failed: no such file";
  StatusTextResponse back;
  ASSERT_TRUE(net::DecodeStatusText(net::EncodeStatusText(st), &back).ok());
  EXPECT_EQ(back.status, WireStatus::kError);
  EXPECT_EQ(back.generation, 9u);
  EXPECT_EQ(back.text, st.text);
}

TEST(NetProtocol, WireReaderBoundsChecks) {
  const uint8_t buf[6] = {1, 2, 3, 4, 5, 6};
  net::WireReader r(buf, sizeof(buf));
  uint32_t u = 0;
  EXPECT_TRUE(r.U32(&u));
  EXPECT_EQ(r.remaining(), 2u);
  uint64_t big = 0;
  EXPECT_FALSE(r.U64(&big));  // only 2 bytes left
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.AtEnd());

  net::WireReader r2(buf, sizeof(buf));
  EXPECT_TRUE(r2.Skip(6));
  EXPECT_TRUE(r2.AtEnd());
  EXPECT_FALSE(r2.Skip(1));
}

TEST(NetSocket, ParseHostPort) {
  auto ok = net::ParseHostPort("127.0.0.1:7741");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().first, "127.0.0.1");
  EXPECT_EQ(ok.value().second, 7741);

  EXPECT_FALSE(net::ParseHostPort("127.0.0.1").ok());      // no port
  EXPECT_FALSE(net::ParseHostPort("127.0.0.1:").ok());     // empty port
  EXPECT_FALSE(net::ParseHostPort("127.0.0.1:0").ok());    // port 0
  EXPECT_FALSE(net::ParseHostPort("127.0.0.1:9x9").ok());  // non-digit
  EXPECT_FALSE(net::ParseHostPort("127.0.0.1:70000").ok());  // > 65535
}

// --- loopback server fixtures -----------------------------------------------

Index BuildNetIndex(const Dataset& data, int bits2 = 0) {
  IndexSpec spec;
  spec.kind = IndexKind::kStaticLvq;
  spec.metric = data.metric;
  spec.bits1 = 8;
  spec.bits2 = bits2;
  spec.graph.graph_max_degree = 16;
  spec.graph.window_size = 32;
  Result<Index> built = Build(spec, data.base);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

class NetServerTest : public testutil::TempPathTest {};

TEST_F(NetServerTest, LoopbackSearchMatchesDirectPath) {
  Dataset data = MakeDeepLike(1500, 30, 910);
  Index index = BuildNetIndex(data);
  const size_t k = 10, nq = data.queries.rows();
  SearchOptions p;
  p.window = 32;
  Matrix<uint32_t> direct(nq, k);
  index.SearchBatch(data.queries, k, p, direct.data());

  ServerOptions opts;
  opts.serving.num_threads = 2;
  Result<std::unique_ptr<BlinkServer>> started =
      BlinkServer::Start(std::move(index), opts);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  std::unique_ptr<BlinkServer> server = std::move(started).value();

  Result<BlinkClient> connected = BlinkClient::Connect("127.0.0.1",
                                                       server->port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  BlinkClient client = std::move(connected).value();

  WireStatus ping = WireStatus::kError;
  ASSERT_TRUE(client.Ping(&ping).ok());
  EXPECT_EQ(ping, WireStatus::kOk);

  SearchResponse res;
  ASSERT_TRUE(client.Search(data.queries, k, p, &res).ok());
  ASSERT_EQ(res.status, WireStatus::kOk);
  EXPECT_EQ(res.generation, 1u);
  ASSERT_EQ(res.num_queries, nq);
  ASSERT_EQ(res.k, k);
  for (size_t i = 0; i < direct.size(); ++i) {
    ASSERT_EQ(res.ids[i], direct.data()[i]) << "flat index " << i;
  }
  // Corpus >> k, so every slot must hold a real neighbor: valid id and a
  // finite distance (ExpectPaddedRow is for corpora smaller than k).
  for (size_t i = 0; i < res.ids.size(); ++i) {
    EXPECT_LT(res.ids[i], data.base.rows()) << "flat index " << i;
    EXPECT_TRUE(std::isfinite(res.dists[i])) << "flat index " << i;
  }

  // The stats frame reports the served traffic as valid JSON.
  StatusTextResponse stats;
  ASSERT_TRUE(client.Stats(&stats).ok());
  ASSERT_EQ(stats.status, WireStatus::kOk);
  Result<json::Value> doc = json::Parse(stats.text);
  ASSERT_TRUE(doc.ok()) << stats.text;
  const json::Value* completed = doc.value().Find("completed_queries");
  ASSERT_NE(completed, nullptr);
  EXPECT_EQ(completed->as_number(), static_cast<double>(nq));
  const json::Value* gen = doc.value().Find("generation");
  ASSERT_NE(gen, nullptr);
  EXPECT_EQ(gen->as_number(), 1.0);

  server->Stop();
}

TEST_F(NetServerTest, RejectsBadRequestsWithoutDroppingTheConnection) {
  Dataset data = MakeDeepLike(400, 4, 911);
  ServerOptions opts;
  opts.serving.num_threads = 1;
  opts.max_queries_per_request = 8;
  Result<std::unique_ptr<BlinkServer>> started =
      BlinkServer::Start(BuildNetIndex(data), opts);
  ASSERT_TRUE(started.ok());
  std::unique_ptr<BlinkServer> server = std::move(started).value();
  Result<BlinkClient> connected = BlinkClient::Connect("127.0.0.1",
                                                       server->port());
  ASSERT_TRUE(connected.ok());
  BlinkClient client = std::move(connected).value();
  SearchOptions p;
  p.window = 32;
  SearchResponse res;

  // Wrong dimensionality: status response, connection stays usable.
  MatrixF wrong_dim(2, 32);
  ASSERT_TRUE(client.Search(wrong_dim, 5, p, &res).ok());
  EXPECT_EQ(res.status, WireStatus::kBadRequest);

  // k = 0.
  MatrixF one(1, data.base.cols());
  ASSERT_TRUE(client.Search(one, 0, p, &res).ok());
  EXPECT_EQ(res.status, WireStatus::kBadRequest);

  // Over the per-request query cap.
  MatrixF many(9, data.base.cols());
  ASSERT_TRUE(client.Search(many, 5, p, &res).ok());
  EXPECT_EQ(res.status, WireStatus::kBadRequest);

  // A swap to a nonexistent artifact is an in-band kError, not a dropped
  // connection, and leaves the generation untouched.
  StatusTextResponse swap;
  ASSERT_TRUE(client.Swap(Path("no_such_artifact"), &swap).ok());
  EXPECT_EQ(swap.status, WireStatus::kError);
  EXPECT_FALSE(swap.text.empty());
  EXPECT_EQ(server->generations().generation(), 1u);

  // The same connection still answers a good request.
  ASSERT_TRUE(client.Search(one, 5, p, &res).ok());
  EXPECT_EQ(res.status, WireStatus::kOk);

  // Telemetry counted the rejects.
  StatusTextResponse stats;
  ASSERT_TRUE(client.Stats(&stats).ok());
  Result<json::Value> doc = json::Parse(stats.text);
  ASSERT_TRUE(doc.ok());
  const json::Value* bad = doc.value().Find("bad_requests");
  ASSERT_NE(bad, nullptr);
  EXPECT_GE(bad->as_number(), 3.0);
  server->Stop();
}

TEST_F(NetServerTest, LoopbackFilteredSearchMatchesDirectPath) {
  Dataset data = MakeDeepLike(1200, 24, 913);
  Index index = BuildNetIndex(data);
  auto md = std::make_shared<const MetadataStore>(MakeSyntheticMetadata(
      data.base.rows(), {ColumnType::kF64}, /*seed=*/77));
  ASSERT_TRUE(index.AttachMetadata(md).ok());

  const size_t k = 10, nq = data.queries.rows();
  SearchOptions p;
  p.window = 32;
  p.filter = std::make_shared<Predicate>(
      std::move(Predicate::Parse("num0<0.2")).value());
  Matrix<uint32_t> direct(nq, k);
  index.SearchBatch(data.queries, k, p, direct.data());

  ServerOptions opts;
  opts.serving.num_threads = 2;
  Result<std::unique_ptr<BlinkServer>> started =
      BlinkServer::Start(std::move(index), opts);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  std::unique_ptr<BlinkServer> server = std::move(started).value();
  Result<BlinkClient> connected = BlinkClient::Connect("127.0.0.1",
                                                       server->port());
  ASSERT_TRUE(connected.ok());
  BlinkClient client = std::move(connected).value();

  SearchResponse res;
  ASSERT_TRUE(client.Search(data.queries, k, p, &res).ok());
  ASSERT_EQ(res.status, WireStatus::kOk);
  ASSERT_EQ(res.num_queries, nq);
  for (size_t i = 0; i < direct.size(); ++i) {
    ASSERT_EQ(res.ids[i], direct.data()[i]) << "flat index " << i;
  }
  // Every returned neighbor satisfies the predicate (exactness contract).
  for (uint32_t id : res.ids) {
    if (id == kInvalidId) continue;
    EXPECT_TRUE(MatchesPredicate(*md, *p.filter, id)) << id;
  }
  server->Stop();
}

TEST_F(NetServerTest, FilterAgainstFilterlessIndexIsABadRequest) {
  Dataset data = MakeDeepLike(400, 4, 914);
  ServerOptions opts;
  opts.serving.num_threads = 1;
  Result<std::unique_ptr<BlinkServer>> started =
      BlinkServer::Start(BuildNetIndex(data), opts);
  ASSERT_TRUE(started.ok());
  std::unique_ptr<BlinkServer> server = std::move(started).value();
  Result<BlinkClient> connected = BlinkClient::Connect("127.0.0.1",
                                                       server->port());
  ASSERT_TRUE(connected.ok());
  BlinkClient client = std::move(connected).value();

  MatrixF one(1, data.base.cols());
  SearchOptions p;
  p.window = 32;
  p.filter = std::make_shared<Predicate>(
      std::move(Predicate::Parse("num0<0.5")).value());
  SearchResponse res;
  ASSERT_TRUE(client.Search(one, 5, p, &res).ok());
  EXPECT_EQ(res.status, WireStatus::kBadRequest);

  // A predicate referencing a column beyond the schema is also rejected,
  // and the connection survives both rejects.
  p.filter = std::make_shared<Predicate>(
      std::move(Predicate::Parse("num7<0.5")).value());
  ASSERT_TRUE(client.Search(one, 5, p, &res).ok());
  EXPECT_EQ(res.status, WireStatus::kBadRequest);

  p.filter = nullptr;
  ASSERT_TRUE(client.Search(one, 5, p, &res).ok());
  EXPECT_EQ(res.status, WireStatus::kOk);
  server->Stop();
}

TEST_F(NetServerTest, MalformedFramesCloseTheConnection) {
  Dataset data = MakeDeepLike(400, 4, 912);
  ServerOptions opts;
  opts.serving.num_threads = 1;
  Result<std::unique_ptr<BlinkServer>> started =
      BlinkServer::Start(BuildNetIndex(data), opts);
  ASSERT_TRUE(started.ok());
  std::unique_ptr<BlinkServer> server = std::move(started).value();

  // A length prefix beyond max_frame_bytes: the server hangs up.
  {
    Result<net::TcpConn> raw = net::TcpConnect("127.0.0.1", server->port());
    ASSERT_TRUE(raw.ok());
    const uint32_t huge = opts.max_frame_bytes + 1;
    ASSERT_TRUE(raw.value().WriteFull(&huge, sizeof(huge)).ok());
    uint8_t byte = 0;
    Result<bool> got = raw.value().ReadFullOrEof(&byte, 1);
    ASSERT_TRUE(got.ok());
    EXPECT_FALSE(got.value()) << "expected EOF after an oversized prefix";
  }

  // An unknown frame type: the server hangs up.
  {
    Result<net::TcpConn> raw = net::TcpConnect("127.0.0.1", server->port());
    ASSERT_TRUE(raw.ok());
    net::WireWriter w;
    w.U32(1);     // body_len = 1 (just the type byte)
    w.U8(0x7f);   // not a FrameType
    ASSERT_TRUE(raw.value().WriteFull(w.buf().data(), w.buf().size()).ok());
    uint8_t byte = 0;
    Result<bool> got = raw.value().ReadFullOrEof(&byte, 1);
    ASSERT_TRUE(got.ok());
    EXPECT_FALSE(got.value()) << "expected EOF after an unknown frame type";
  }
  server->Stop();
}

TEST_F(NetServerTest, HttpStatsEndpoint) {
  Dataset data = MakeDeepLike(400, 4, 913);
  ServerOptions opts;
  opts.serving.num_threads = 1;
  Result<std::unique_ptr<BlinkServer>> started =
      BlinkServer::Start(BuildNetIndex(data), opts);
  ASSERT_TRUE(started.ok());
  std::unique_ptr<BlinkServer> server = std::move(started).value();

  auto http_get = [&](const std::string& target) {
    Result<net::TcpConn> raw = net::TcpConnect("127.0.0.1", server->port());
    EXPECT_TRUE(raw.ok());
    const std::string req = "GET " + target + " HTTP/1.0\r\n\r\n";
    EXPECT_TRUE(raw.value().WriteFull(req.data(), req.size()).ok());
    std::string out;
    char buf[512];
    for (;;) {
      Result<bool> got = raw.value().ReadFullOrEof(buf, 1);
      if (!got.ok() || !got.value()) break;
      out.push_back(buf[0]);
    }
    return out;
  };

  const std::string stats = http_get("/stats");
  EXPECT_NE(stats.find("200 OK"), std::string::npos) << stats;
  const size_t body_at = stats.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  Result<json::Value> doc = json::Parse(stats.substr(body_at + 4));
  ASSERT_TRUE(doc.ok()) << stats;
  EXPECT_NE(doc.value().Find("http_requests"), nullptr);

  const std::string missing = http_get("/nope");
  EXPECT_NE(missing.find("404"), std::string::npos) << missing;
  server->Stop();
}

// --- deterministic server-level admission control ---------------------------

/// A SearchIndex stub that parks every search until the gate opens (the
/// server-level twin of the engine suite's GateIndex).
class GateIndex : public SearchIndex {
 public:
  explicit GateIndex(size_t dim) : dim_(dim) {}

  std::string name() const override { return "gate-stub"; }
  size_t size() const override { return 1; }
  size_t dim() const override { return dim_; }
  size_t memory_bytes() const override { return sizeof(*this); }

  void SearchBatch(MatrixViewF queries, size_t k, const SearchOptions&,
                   uint32_t* ids, ThreadPool* = nullptr) const override {
    {
      std::unique_lock<std::mutex> lk(mu_);
      ++entered_;
      entered_cv_.notify_all();
      gate_cv_.wait(lk, [&] { return open_; });
    }
    const uint32_t hit = 0;
    const float dist = 0.0f;
    for (size_t qi = 0; qi < queries.rows; ++qi) {
      WritePaddedRow(&hit, &dist, 1, k, ids + qi * k, nullptr);
    }
  }

  void WaitEntered(uint64_t n) const {
    std::unique_lock<std::mutex> lk(mu_);
    entered_cv_.wait(lk, [&] { return entered_ >= n; });
  }

  void OpenGate() const {
    std::lock_guard<std::mutex> lk(mu_);
    open_ = true;
    gate_cv_.notify_all();
  }

 private:
  size_t dim_;
  mutable std::mutex mu_;
  mutable std::condition_variable entered_cv_;
  mutable std::condition_variable gate_cv_;
  mutable uint64_t entered_ = 0;
  mutable bool open_ = false;
};

// With queue_capacity=1, a second concurrent request is answered
// kOverloaded immediately — the socket thread never blocks on engine
// backpressure — and the admitted request still completes once the index
// unblocks. Sequenced entirely by the gate, no sleeps.
TEST(NetServer, OverloadIsAnsweredInBand) {
  auto gate_owned = std::make_unique<GateIndex>(/*dim=*/8);
  GateIndex* gate = gate_owned.get();
  IndexSpec spec;
  spec.kind = IndexKind::kStaticLvq;
  Index index = WrapSearchIndex(std::move(gate_owned), spec);

  ServerOptions opts;
  opts.serving.num_threads = 1;
  opts.serving.max_batch = 1;
  opts.serving.queue_capacity = 1;
  Result<std::unique_ptr<BlinkServer>> started =
      BlinkServer::Start(std::move(index), opts);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  std::unique_ptr<BlinkServer> server = std::move(started).value();

  MatrixF query(1, 8);
  SearchOptions p;
  p.window = 4;

  // Client A occupies the engine (parked in the gate).
  SearchResponse res_a;
  Status status_a;
  std::thread a([&] {
    Result<BlinkClient> c = BlinkClient::Connect("127.0.0.1", server->port());
    ASSERT_TRUE(c.ok());
    status_a = c.value().Search(query, 3, p, &res_a);
  });
  gate->WaitEntered(1);

  // Client B is rejected in-band, without waiting for A.
  Result<BlinkClient> cb = BlinkClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(cb.ok());
  SearchResponse res_b;
  ASSERT_TRUE(cb.value().Search(query, 3, p, &res_b).ok());
  EXPECT_EQ(res_b.status, WireStatus::kOverloaded);
  EXPECT_TRUE(res_b.ids.empty());

  gate->OpenGate();
  a.join();
  ASSERT_TRUE(status_a.ok());
  EXPECT_EQ(res_a.status, WireStatus::kOk);
  ASSERT_EQ(res_a.ids.size(), 3u);
  EXPECT_EQ(res_a.ids[0], 0u);

  StatusTextResponse stats;
  ASSERT_TRUE(cb.value().Stats(&stats).ok());
  Result<json::Value> doc = json::Parse(stats.text);
  ASSERT_TRUE(doc.ok());
  const json::Value* rejected = doc.value().Find("rejected_queries");
  ASSERT_NE(rejected, nullptr);
  EXPECT_EQ(rejected->as_number(), 1.0);
  const json::Value* completed = doc.value().Find("completed_queries");
  ASSERT_NE(completed, nullptr);
  EXPECT_EQ(completed->as_number(), 1.0);
  server->Stop();
}

// --- the tentpole guarantee: hot-swap under concurrent load -----------------

// N client threads run closed-loop self-queries over loopback while the
// server hot-swaps generations in a loop. The bar: zero transport errors,
// zero non-kOk responses (capacity is sized so admission never rejects),
// every id valid, per-connection generation numbers non-decreasing, and
// self-recall stays high across every generation — no response is ever
// served from a freed index.
TEST_F(NetServerTest, HotSwapUnderConcurrentLoad) {
  Dataset data = MakeDeepLike(2000, 1, 914);
  const size_t dim = data.base.cols();

  const std::string path_a = Path("hot_swap_a");
  (void)Path("hot_swap_a.graph");
  (void)Path("hot_swap_a.vecs");
  const std::string path_b = Path("hot_swap_b");
  (void)Path("hot_swap_b.graph");
  (void)Path("hot_swap_b.vecs");
  ASSERT_TRUE(BuildNetIndex(data, /*bits2=*/0).Save(path_a).ok());
  ASSERT_TRUE(BuildNetIndex(data, /*bits2=*/8).Save(path_b).ok());

  ServerOptions opts;
  opts.serving.num_threads = 2;
  Result<std::unique_ptr<BlinkServer>> started =
      BlinkServer::Start(BuildNetIndex(data), opts);
  ASSERT_TRUE(started.ok());
  std::unique_ptr<BlinkServer> server = std::move(started).value();

  const size_t kClients = 3;
  const size_t kBatch = 4;
  const size_t k = 10;
  const uint64_t kSwaps = 4;  // acceptance bar is >= 3 consecutive swaps
  std::atomic<bool> done{false};
  std::atomic<uint64_t> total_queries{0};
  std::atomic<uint64_t> self_hits{0};
  std::atomic<uint64_t> transport_errors{0};
  std::atomic<uint64_t> wrong_status{0};
  std::atomic<uint64_t> max_generation{0};

  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Result<BlinkClient> connected =
          BlinkClient::Connect("127.0.0.1", server->port());
      ASSERT_TRUE(connected.ok());
      BlinkClient client = std::move(connected).value();
      SearchOptions p;
      p.window = 32;
      MatrixF queries(kBatch, dim);
      std::vector<size_t> rows(kBatch);
      uint64_t last_generation = 0;
      size_t next = c * 131;  // disjoint-ish starting points
      while (!done.load(std::memory_order_relaxed)) {
        for (size_t b = 0; b < kBatch; ++b) {
          rows[b] = (next + b * 61) % data.base.rows();
          std::memcpy(queries.row(b), data.base.row(rows[b]),
                      dim * sizeof(float));
        }
        next += kBatch * 61;
        SearchResponse res;
        Status s = client.Search(queries, k, p, &res);
        if (!s.ok()) {
          ++transport_errors;
          break;
        }
        if (res.status != WireStatus::kOk) {
          ++wrong_status;
          continue;
        }
        // Generations only ever move forward on one connection.
        EXPECT_GE(res.generation, last_generation);
        last_generation = res.generation;
        uint64_t seen = max_generation.load();
        while (res.generation > seen &&
               !max_generation.compare_exchange_weak(seen, res.generation)) {
        }
        for (size_t b = 0; b < kBatch; ++b) {
          ++total_queries;
          bool hit = false;
          for (size_t j = 0; j < k; ++j) {
            const uint32_t id = res.ids[b * k + j];
            ASSERT_TRUE(id == kInvalidId || id < data.base.rows());
            if (id == rows[b]) hit = true;
          }
          if (hit) ++self_hits;
        }
      }
    });
  }

  // The swapper: >= 3 consecutive hot-swaps while the clients hammer.
  for (uint64_t s = 0; s < kSwaps; ++s) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    Result<uint64_t> swapped = server->Swap(s % 2 == 0 ? path_b : path_a);
    ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();
    EXPECT_EQ(swapped.value(), s + 2);
  }
  // Let traffic observe the final generation before stopping the clients
  // (bounded wait — generous for the TSan build).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (max_generation.load() < kSwaps + 1 &&
         transport_errors.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  done.store(true);
  for (auto& t : clients) t.join();

  EXPECT_EQ(transport_errors.load(), 0u);
  EXPECT_EQ(wrong_status.load(), 0u);
  EXPECT_GT(total_queries.load(), 0u);
  EXPECT_EQ(server->generations().swap_count(), kSwaps);
  EXPECT_EQ(server->generations().generation(), kSwaps + 1);
  EXPECT_EQ(max_generation.load(), kSwaps + 1);  // traffic saw the last swap

  // Self-queries are exact duplicates of indexed vectors: they must stay
  // findable through every generation.
  const double hit_rate = static_cast<double>(self_hits.load()) /
                          static_cast<double>(total_queries.load());
  EXPECT_GE(hit_rate, 0.95) << self_hits.load() << "/" << total_queries.load();

  server->Stop();
  // Stop() is idempotent.
  server->Stop();
}

}  // namespace
}  // namespace blink
