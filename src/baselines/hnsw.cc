#include "baselines/hnsw.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <queue>

#include "simd/distance.h"
#include "util/prng.h"

namespace blink {

HnswIndex::HnswIndex(MatrixViewF data, Metric metric, const HnswParams& params,
                     ThreadPool* /*pool*/)
    : n_(data.rows), d_(data.cols), metric_(metric), params_(params) {
  vectors_ = MatrixF(n_, d_);
  for (size_t i = 0; i < n_; ++i) {
    std::memcpy(vectors_.row(i), data.row(i), d_ * sizeof(float));
  }
  levels_.resize(n_);
  links_.resize(n_);
  visit_stamps_.assign(n_, 0);

  // Exponential level assignment: floor(-ln(U) * mult), mult = 1/ln(M).
  Rng rng(params.seed);
  const double mult = 1.0 / std::log(static_cast<double>(params.M));
  for (size_t i = 0; i < n_; ++i) {
    double u = rng.UniformDouble();
    if (u < 1e-12) u = 1e-12;
    levels_[i] = static_cast<int>(-std::log(u) * mult);
    links_[i].resize(levels_[i] + 1);
  }

  // Sequential insertion (construction is inherently order-dependent).
  for (size_t i = 0; i < n_; ++i) {
    Insert(static_cast<uint32_t>(i), levels_[i]);
  }
}

float HnswIndex::Dist(const float* q, uint32_t id) const {
  const float* v = vectors_.row(id);
  return metric_ == Metric::kL2 ? simd::L2Sqr(q, v, d_)
                                : simd::IpDist(q, v, d_);
}

void HnswIndex::SearchLayer(const float* q, uint32_t ep, size_t ef, int level,
                            std::vector<uint32_t>& visited_stamps,
                            uint32_t stamp,
                            std::vector<Candidate>* out) const {
  // Min-heap of frontier candidates; max-heap of the ef best results.
  std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>> frontier;
  std::priority_queue<Candidate> best;

  const float d0 = Dist(q, ep);
  frontier.push({d0, ep});
  best.push({d0, ep});
  visited_stamps[ep] = stamp;

  while (!frontier.empty()) {
    const Candidate c = frontier.top();
    if (c.dist > best.top().dist && best.size() >= ef) break;
    frontier.pop();
    const auto& nbrs = links_[c.id][level];
    for (uint32_t nb : nbrs) {
      if (visited_stamps[nb] == stamp) continue;
      visited_stamps[nb] = stamp;
      const float dist = Dist(q, nb);
      if (best.size() < ef || dist < best.top().dist) {
        frontier.push({dist, nb});
        best.push({dist, nb});
        if (best.size() > ef) best.pop();
      }
    }
  }
  out->resize(best.size());
  for (size_t i = best.size(); i-- > 0;) {
    (*out)[i] = best.top();
    best.pop();
  }
}

void HnswIndex::SelectNeighborsHeuristic(
    const std::vector<Candidate>& candidates, size_t m,
    std::vector<uint32_t>* out) const {
  out->clear();
  // Candidates arrive in ascending distance to the query point. Keep e only
  // if it is closer to the query than to every already-selected neighbor
  // (diversity pruning, HNSW Algorithm 4).
  for (const Candidate& e : candidates) {
    if (out->size() >= m) break;
    bool keep = true;
    const float* ve = vectors_.row(e.id);
    for (uint32_t r : *out) {
      const float d_er = metric_ == Metric::kL2
                             ? simd::L2Sqr(ve, vectors_.row(r), d_)
                             : simd::IpDist(ve, vectors_.row(r), d_);
      if (d_er < e.dist) {
        keep = false;
        break;
      }
    }
    if (keep) out->push_back(e.id);
  }
}

void HnswIndex::Insert(uint32_t id, int level) {
  if (max_level_ < 0) {  // first node
    entry_point_ = id;
    max_level_ = level;
    return;
  }
  const float* q = vectors_.row(id);
  uint32_t ep = entry_point_;

  // Greedy descent through layers above the node's level.
  for (int lc = max_level_; lc > level; --lc) {
    bool changed = true;
    float d_ep = Dist(q, ep);
    while (changed) {
      changed = false;
      for (uint32_t nb : links_[ep][lc]) {
        const float dist = Dist(q, nb);
        if (dist < d_ep) {
          d_ep = dist;
          ep = nb;
          changed = true;
        }
      }
    }
  }

  // Connect at each layer from min(level, max_level_) down to 0.
  std::vector<Candidate> candidates;
  std::vector<uint32_t> selected;
  std::vector<Candidate> shrink_cands;
  std::vector<uint32_t> shrunk;
  for (int lc = std::min(level, max_level_); lc >= 0; --lc) {
    ++stamp_;
    if (stamp_ == 0) {
      std::fill(visit_stamps_.begin(), visit_stamps_.end(), 0u);
      stamp_ = 1;
    }
    SearchLayer(q, ep, params_.ef_construction, lc, visit_stamps_, stamp_,
                &candidates);
    const uint32_t bound = DegreeBound(lc);
    SelectNeighborsHeuristic(candidates, params_.M, &selected);
    links_[id][lc] = selected;

    for (uint32_t nb : selected) {
      auto& back = links_[nb][lc];
      back.push_back(id);
      if (back.size() > bound) {
        // Shrink with the same heuristic, rebuilding candidates around nb.
        const float* vnb = vectors_.row(nb);
        shrink_cands.clear();
        shrink_cands.reserve(back.size());
        for (uint32_t e : back) {
          shrink_cands.push_back({Dist(vnb, e), e});
        }
        std::sort(shrink_cands.begin(), shrink_cands.end());
        SelectNeighborsHeuristic(shrink_cands, bound, &shrunk);
        back = shrunk;
      }
    }
    if (!candidates.empty()) ep = candidates.front().id;
  }

  if (level > max_level_) {
    max_level_ = level;
    entry_point_ = id;
  }
}

size_t HnswIndex::memory_bytes() const {
  size_t bytes = vectors_.size() * sizeof(float);
  for (const auto& node : links_) {
    for (const auto& layer : node) {
      bytes += layer.size() * sizeof(uint32_t) + sizeof(void*);
    }
    bytes += sizeof(void*);
  }
  return bytes;
}

double HnswIndex::AverageDegree(int level) const {
  size_t total = 0, nodes = 0;
  for (size_t i = 0; i < n_; ++i) {
    if (levels_[i] >= level) {
      total += links_[i][level].size();
      ++nodes;
    }
  }
  return nodes > 0 ? static_cast<double>(total) / static_cast<double>(nodes) : 0.0;
}

void HnswIndex::SearchBatch(MatrixViewF queries, size_t k,
                            const SearchOptions& params, uint32_t* ids,
                            ThreadPool* pool) const {
  const size_t nq = queries.rows;
  const size_t ef = std::max<size_t>(params.window, k);

  auto run_slice = [&](size_t widx, size_t slices) {
    std::vector<uint32_t> stamps(n_, 0);
    uint32_t stamp = 0;
    std::vector<Candidate> results;
    const size_t lo = nq * widx / slices, hi = nq * (widx + 1) / slices;
    for (size_t qi = lo; qi < hi; ++qi) {
      const float* q = queries.row(qi);
      uint32_t ep = entry_point_;
      for (int lc = max_level_; lc > 0; --lc) {
        bool changed = true;
        float d_ep = Dist(q, ep);
        while (changed) {
          changed = false;
          for (uint32_t nb : links_[ep][lc]) {
            const float dist = Dist(q, nb);
            if (dist < d_ep) {
              d_ep = dist;
              ep = nb;
              changed = true;
            }
          }
        }
      }
      ++stamp;
      if (stamp == 0) {
        std::fill(stamps.begin(), stamps.end(), 0u);
        stamp = 1;
      }
      SearchLayer(q, ep, ef, 0, stamps, stamp, &results);
      uint32_t* row = ids + qi * k;
      for (size_t j = 0; j < k; ++j) {
        row[j] = j < results.size() ? results[j].id : UINT32_MAX;
      }
    }
  };

  const size_t workers = pool != nullptr ? pool->num_threads() : 1;
  if (pool != nullptr && workers > 1 && nq > 1) {
    pool->ParallelFor(workers, [&](size_t w) { run_slice(w, workers); });
  } else {
    run_slice(0, 1);
  }
}

}  // namespace blink
