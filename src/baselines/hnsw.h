// Hierarchical Navigable Small World graphs (Malkov & Yashunin [39]) — the
// HNSWlib stand-in baseline (Figs. 1, 9, 10, 21).
//
// Faithful to the original algorithm: exponentially-distributed node
// levels (mult = 1/ln(M)), greedy descent through the upper layers,
// ef-bounded best-first search at layer 0, and the diversity heuristic
// (Algorithm 4 of the HNSW paper) for neighbor selection. Vectors are
// stored in full precision, as HNSWlib serves them.
//
// The paper maps graph parameters as R = 2M (layer-0 degree); its
// R = {32, 64, 128} sweeps correspond to M = {16, 32, 64}.
#pragma once

#include <cstdint>
#include <vector>

#include "eval/interface.h"
#include "graph/storage.h"
#include "util/matrix.h"

namespace blink {

struct HnswParams {
  uint32_t M = 16;                 ///< upper-layer degree; layer 0 uses 2M
  uint32_t ef_construction = 200;  ///< build-time beam width
  uint64_t seed = 100;
};

class HnswIndex : public SearchIndex {
 public:
  HnswIndex(MatrixViewF data, Metric metric, const HnswParams& params,
            ThreadPool* pool = nullptr);

  std::string name() const override {
    return "HNSW-M" + std::to_string(params_.M);
  }
  size_t size() const override { return n_; }
  size_t dim() const override { return d_; }
  size_t memory_bytes() const override;

  /// SearchOptions::window is ef-search.
  void SearchBatch(MatrixViewF queries, size_t k, const SearchOptions& params,
                   uint32_t* ids, ThreadPool* pool = nullptr) const override;

  int max_level() const { return max_level_; }
  uint32_t entry_point() const { return entry_point_; }
  double AverageDegree(int level) const;

 private:
  float Dist(const float* q, uint32_t id) const;

  struct Candidate {
    float dist;
    uint32_t id;
    bool operator<(const Candidate& o) const { return dist < o.dist; }
    bool operator>(const Candidate& o) const { return dist > o.dist; }
  };

  /// Best-first search of one layer; returns up to ef candidates
  /// (ascending distance).
  void SearchLayer(const float* q, uint32_t ep, size_t ef, int level,
                   std::vector<uint32_t>& visited_stamps, uint32_t stamp,
                   std::vector<Candidate>* out) const;

  /// HNSW Algorithm 4: greedy diversity selection.
  void SelectNeighborsHeuristic(const std::vector<Candidate>& candidates,
                                size_t m, std::vector<uint32_t>* out) const;

  void Insert(uint32_t id, int level);

  uint32_t DegreeBound(int level) const { return level == 0 ? 2 * params_.M : params_.M; }

  size_t n_ = 0;
  size_t d_ = 0;
  Metric metric_ = Metric::kL2;
  HnswParams params_;
  MatrixF vectors_;
  std::vector<int> levels_;
  /// links_[i][l]: adjacency of node i at layer l (l <= levels_[i]).
  std::vector<std::vector<std::vector<uint32_t>>> links_;
  uint32_t entry_point_ = 0;
  int max_level_ = -1;
  // Build-time scratch (single-threaded construction).
  mutable std::vector<uint32_t> visit_stamps_;
  mutable uint32_t stamp_ = 0;
};

}  // namespace blink
