// IVF-PQ with optional full-precision re-ranking — the stand-in for the
// paper's FAISS-IVFPQfs baseline (Figs. 1, 9, 10, 21).
//
// Structure: a coarse k-means partition (nlist inverted lists); residuals
// to the assigned centroid are PQ-encoded. A query probes the `nprobe`
// nearest partitions, scores candidates with a per-list ADC table, and
// optionally re-ranks the best `reorder_k` candidates against the stored
// full-precision vectors (FAISS's refine stage — this is exactly the
// "PQ must keep full-precision vectors around" memory cost the paper
// criticizes in Sec. 6.6; memory_bytes() accounts for it).
//
// Substitution note (DESIGN.md §2): we implement classic ADC lookups, not
// the 4-bit SIMD "fast-scan" kernels; the paper's positioning claims only
// need the index *shape* (flat QPS/footprint across parameters, recall
// gated by re-ranking), which ADC preserves.
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/pq.h"
#include "cluster/kmeans.h"
#include "eval/interface.h"
#include "util/matrix.h"
#include "util/memory.h"

namespace blink {

struct IvfPqParams {
  size_t nlist = 1024;      ///< coarse partitions
  PqParams pq;              ///< residual codec (pq.num_segments = "nbins")
  bool keep_full_vectors = true;  ///< enable the re-ranking stage
  size_t train_sample = 50000;
  uint64_t seed = 11;
};

class IvfPqIndex : public SearchIndex {
 public:
  IvfPqIndex(MatrixViewF data, Metric metric, const IvfPqParams& params,
             ThreadPool* pool = nullptr);

  std::string name() const override;
  size_t size() const override { return n_; }
  size_t dim() const override { return d_; }
  size_t memory_bytes() const override;

  void SearchBatch(MatrixViewF queries, size_t k, const SearchOptions& params,
                   uint32_t* ids, ThreadPool* pool = nullptr) const override;

  size_t nlist() const { return centroids_.rows(); }
  const PqCodec& codec() const { return codec_; }

 private:
  void SearchOne(const float* q, size_t k, uint32_t nprobe, uint32_t reorder_k,
                 uint32_t* out) const;

  size_t n_ = 0;
  size_t d_ = 0;
  Metric metric_ = Metric::kL2;
  IvfPqParams params_;
  MatrixF centroids_;  // nlist x d
  PqCodec codec_;      // trained on residuals
  // Inverted lists, flattened: per list, ids and PQ codes.
  std::vector<std::vector<uint32_t>> list_ids_;
  std::vector<std::vector<uint8_t>> list_codes_;
  MatrixF full_vectors_;  // n x d when keep_full_vectors (refine stage)
};

}  // namespace blink
