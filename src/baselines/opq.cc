#include "baselines/opq.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/prng.h"

namespace blink {

namespace {

/// Z = X * R for row-major X (n x d), R (d x d).
MatrixF Rotate(MatrixViewF x, const MatrixF& r) {
  MatrixF z(x.rows, x.cols);
  for (size_t i = 0; i < x.rows; ++i) {
    RowTimesMatrix(x.row(i), r, z.row(i));
  }
  return z;
}

}  // namespace

OpqCodec OpqCodec::Train(MatrixViewF data, const OpqParams& params,
                         ThreadPool* pool) {
  OpqCodec c;
  const size_t d = data.cols;

  // Training subsample (OPQ iterates over the data several times).
  const size_t n_train = std::min(data.rows, params.pq.train_sample);
  MatrixF train(n_train, d);
  {
    Rng rng(params.pq.kmeans.seed ^ 0x09C0DEull);
    for (size_t i = 0; i < n_train; ++i) {
      const size_t src =
          n_train == data.rows ? i : static_cast<size_t>(rng.Bounded(data.rows));
      std::memcpy(train.row(i), data.row(src), d * sizeof(float));
    }
  }

  // Random orthogonal initialization (non-parametric OPQ, Ge et al.).
  // Identity is a saddle point: at R = I the Gram X^T Z_hat is symmetric
  // PSD, whose Procrustes solution U V^T is the identity again.
  {
    MatrixF g(d, d);
    Rng rng(params.pq.kmeans.seed ^ 0x0BADC0DEull);
    for (size_t i = 0; i < d; ++i) {
      for (size_t j = 0; j < d; ++j) g(i, j) = rng.Gaussian();
    }
    SvdResult svd = JacobiSvd(g);
    c.rotation_ = MatrixF(d, d);
    for (size_t i = 0; i < d; ++i) {
      for (size_t j = 0; j < d; ++j) {
        double acc = 0.0;
        for (size_t k = 0; k < d; ++k) {
          acc += static_cast<double>(svd.u(i, k)) * svd.v(j, k);
        }
        c.rotation_(i, j) = static_cast<float>(acc);
      }
    }
  }

  MatrixF zhat(n_train, d);
  std::vector<uint8_t> codes(params.pq.num_segments);
  for (size_t iter = 0; iter < std::max<size_t>(params.opt_iters, 1); ++iter) {
    // 1. Train PQ on the rotated data.
    MatrixF z = Rotate(train, c.rotation_);
    c.pq_ = PqCodec::Train(z, params.pq, pool);

    if (iter + 1 == std::max<size_t>(params.opt_iters, 1)) break;

    // 2. Reconstruct Z_hat and solve Procrustes: R = U V^T, SVD(X^T Z_hat).
    codes.resize(c.pq_.code_bytes());
    for (size_t i = 0; i < n_train; ++i) {
      c.pq_.Encode(z.row(i), codes.data());
      c.pq_.Decode(codes.data(), zhat.row(i));
    }
    MatrixF gram = GramProduct(train, zhat);  // d x d
    SvdResult svd = JacobiSvd(gram);
    // R = U * V^T.
    for (size_t i = 0; i < d; ++i) {
      for (size_t j = 0; j < d; ++j) {
        double acc = 0.0;
        for (size_t k = 0; k < d; ++k) {
          acc += static_cast<double>(svd.u(i, k)) * svd.v(j, k);
        }
        c.rotation_(i, j) = static_cast<float>(acc);
      }
    }
  }
  return c;
}

void OpqCodec::Encode(const float* x, uint8_t* codes) const {
  std::vector<float> z(dim());
  RowTimesMatrix(x, rotation_, z.data());
  pq_.Encode(z.data(), codes);
}

void OpqCodec::Decode(const uint8_t* codes, float* out) const {
  std::vector<float> z(dim());
  pq_.Decode(codes, z.data());
  RowTimesMatrixT(z.data(), rotation_, out);
}

void OpqCodec::BuildLut(const float* q, Metric metric, float* lut) const {
  std::vector<float> z(dim());
  RowTimesMatrix(q, rotation_, z.data());
  pq_.BuildLut(z.data(), metric, lut);
}

OpqDataset::OpqDataset(OpqCodec codec, MatrixViewF data, ThreadPool* pool)
    : codec_(std::move(codec)), codes_(data.rows, codec_.code_bytes()) {
  auto one = [&](size_t i) { codec_.Encode(data.row(i), codes_.row(i)); };
  if (pool != nullptr) {
    pool->ParallelFor(data.rows, one);
  } else {
    for (size_t i = 0; i < data.rows; ++i) one(i);
  }
}

Matrix<uint32_t> OpqDataset::ExhaustiveSearch(MatrixViewF queries, size_t k,
                                              Metric metric,
                                              ThreadPool* pool) const {
  const size_t nq = queries.rows, n = size();
  Matrix<uint32_t> out(nq, k);
  auto one = [&](size_t qi) {
    std::vector<float> lut(codec_.pq().num_segments() * codec_.pq().ksub());
    codec_.BuildLut(queries.row(qi), metric, lut.data());
    std::vector<std::pair<float, uint32_t>> top;
    top.reserve(k + 1);
    for (size_t i = 0; i < n; ++i) {
      const float dist = codec_.AdcDistance(lut.data(), codes_.row(i));
      if (top.size() < k) {
        top.push_back({dist, static_cast<uint32_t>(i)});
        std::push_heap(top.begin(), top.end());
      } else if (dist < top.front().first) {
        std::pop_heap(top.begin(), top.end());
        top.back() = {dist, static_cast<uint32_t>(i)};
        std::push_heap(top.begin(), top.end());
      }
    }
    std::sort(top.begin(), top.end());
    uint32_t* row = out.row(qi);
    for (size_t j = 0; j < k; ++j) {
      row[j] = j < top.size() ? top[j].second : UINT32_MAX;
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(nq, one);
  } else {
    for (size_t qi = 0; qi < nq; ++qi) one(qi);
  }
  return out;
}

}  // namespace blink
