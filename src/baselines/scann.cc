#include "baselines/scann.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "simd/distance.h"
#include "util/prng.h"

namespace blink {

ScannIndex::ScannIndex(MatrixViewF data, Metric metric,
                       const ScannParams& params, ThreadPool* pool)
    : n_(data.rows), d_(data.cols), metric_(metric), params_(params) {
  n_leaves_ = params.n_leaves > 0
                  ? params.n_leaves
                  : static_cast<size_t>(std::sqrt(static_cast<double>(n_))) + 1;
  n_leaves_ = std::min(n_leaves_, n_);

  // Score-aware weighting: eta = (d-1) T^2 / (1 - T^2).
  const double t2 = static_cast<double>(params.avq_threshold) *
                    static_cast<double>(params.avq_threshold);
  eta_ = t2 < 1.0 ? static_cast<double>(d_ - 1) * t2 / (1.0 - t2) : 1.0;

  // 1. Partition.
  const size_t n_train = std::min(n_, params.train_sample);
  MatrixF train(n_train, d_);
  {
    Rng rng(params.seed);
    for (size_t i = 0; i < n_train; ++i) {
      const size_t src =
          n_train == n_ ? i : static_cast<size_t>(rng.Bounded(n_));
      std::memcpy(train.row(i), data.row(src), d_ * sizeof(float));
    }
  }
  KMeansParams kp;
  kp.k = n_leaves_;
  kp.seed = params.seed;
  kp.max_iters = 20;
  centroids_ = KMeans(train, kp, pool).centroids;

  // 2. Residual 4-bit PQ codebooks (standard k-means training).
  std::vector<uint32_t> assign(n_);
  AssignToCentroids(data, centroids_, assign.data(), nullptr, pool);
  MatrixF residuals(n_, d_);
  for (size_t i = 0; i < n_; ++i) {
    const float* x = data.row(i);
    const float* c = centroids_.row(assign[i]);
    float* r = residuals.row(i);
    for (size_t j = 0; j < d_; ++j) r[j] = x[j] - c[j];
  }
  PqParams pq;
  pq.num_segments = std::max<size_t>(1, d_ / params.dims_per_block);
  pq.bits_per_segment = 4;
  pq.train_sample = params.train_sample;
  pq.kmeans.seed = params.seed + 1;
  codec_ = PqCodec::Train(residuals, pq, pool);

  // 3. Anisotropic encoding into leaves.
  leaf_ids_.resize(n_leaves_);
  leaf_codes_.resize(n_leaves_);
  std::vector<uint8_t> code(codec_.code_bytes());
  for (size_t i = 0; i < n_; ++i) {
    EncodeAnisotropic(residuals.row(i), data.row(i), code.data());
    const uint32_t leaf = assign[i];
    leaf_ids_[leaf].push_back(static_cast<uint32_t>(i));
    leaf_codes_[leaf].insert(leaf_codes_[leaf].end(), code.begin(), code.end());
  }

  // 4. Full-precision vectors for reordering.
  full_vectors_ = MatrixF(n_, d_);
  for (size_t i = 0; i < n_; ++i) {
    std::memcpy(full_vectors_.row(i), data.row(i), d_ * sizeof(float));
  }
}

void ScannIndex::EncodeAnisotropic(const float* residual,
                                   const float* direction,
                                   uint8_t* codes) const {
  // Per-segment score-aware assignment: error parallel to the datapoint
  // direction is weighted by eta (> 1 for T > 0).
  const size_t m = codec_.num_segments();
  const size_t ksub = codec_.ksub();
  const float eta = static_cast<float>(eta_);
  for (size_t s = 0; s < m; ++s) {
    const size_t off = codec_.offset(s);
    const size_t dsub = codec_.segment_dim(s);
    const float* rs = residual + off;
    const float* us = direction + off;
    float u_norm2 = 0.0f;
    for (size_t j = 0; j < dsub; ++j) u_norm2 += us[j] * us[j];
    uint32_t best = 0;
    float best_loss = 3.4e38f;
    for (size_t cc = 0; cc < ksub; ++cc) {
      const float* cent = codec_.centroid(s, cc);
      float err2 = 0.0f, par = 0.0f;
      for (size_t j = 0; j < dsub; ++j) {
        const float e = rs[j] - cent[j];
        err2 += e * e;
        par += e * us[j];
      }
      float loss = err2;
      if (u_norm2 > 1e-12f) {
        const float par2 = par * par / u_norm2;  // ||projection on u_s||^2
        loss = err2 + (eta - 1.0f) * par2;
      }
      if (loss < best_loss) {
        best_loss = loss;
        best = static_cast<uint32_t>(cc);
      }
    }
    codes[s] = static_cast<uint8_t>(best);
  }
}

size_t ScannIndex::memory_bytes() const {
  size_t bytes = centroids_.size() * sizeof(float);
  for (size_t l = 0; l < n_leaves_; ++l) {
    bytes += leaf_ids_[l].size() * sizeof(uint32_t) + leaf_codes_[l].size();
  }
  bytes += full_vectors_.size() * sizeof(float);
  return bytes;
}

void ScannIndex::SearchOne(const float* q, size_t k, uint32_t nprobe,
                           uint32_t reorder_k, uint32_t* out) const {
  const size_t probes =
      std::min<size_t>(std::max<uint32_t>(nprobe, 1), n_leaves_);
  const std::vector<uint32_t> leaves = NearestCentroids(q, centroids_, probes);

  const size_t cand_target = std::max<size_t>(k, reorder_k);
  std::vector<std::pair<float, uint32_t>> top;
  top.reserve(cand_target + 1);
  std::vector<float> lut(codec_.num_segments() * codec_.ksub());
  std::vector<float> qres(d_);
  for (uint32_t l : leaves) {
    const float* c = centroids_.row(l);
    float bias = 0.0f;
    if (metric_ == Metric::kL2) {
      for (size_t j = 0; j < d_; ++j) qres[j] = q[j] - c[j];
    } else {
      std::memcpy(qres.data(), q, d_ * sizeof(float));
      bias = simd::IpDist(q, c, d_);
    }
    codec_.BuildLut(qres.data(), metric_, lut.data());
    const auto& ids = leaf_ids_[l];
    const auto& codes = leaf_codes_[l];
    const size_t m = codec_.code_bytes();
    for (size_t e = 0; e < ids.size(); ++e) {
      const float dist = codec_.AdcDistance(lut.data(), &codes[e * m]) + bias;
      if (top.size() < cand_target) {
        top.push_back({dist, ids[e]});
        std::push_heap(top.begin(), top.end());
      } else if (dist < top.front().first) {
        std::pop_heap(top.begin(), top.end());
        top.back() = {dist, ids[e]};
        std::push_heap(top.begin(), top.end());
      }
    }
  }
  std::sort(top.begin(), top.end());

  if (reorder_k > 0) {
    const size_t rr = std::min<size_t>(reorder_k, top.size());
    for (size_t e = 0; e < rr; ++e) {
      const float* v = full_vectors_.row(top[e].second);
      top[e].first = metric_ == Metric::kL2 ? simd::L2Sqr(q, v, d_)
                                            : simd::IpDist(q, v, d_);
    }
    std::sort(top.begin(), top.begin() + rr);
  }

  for (size_t j = 0; j < k; ++j) {
    out[j] = j < top.size() ? top[j].second : UINT32_MAX;
  }
}

void ScannIndex::SearchBatch(MatrixViewF queries, size_t k,
                             const SearchOptions& params, uint32_t* ids,
                             ThreadPool* pool) const {
  auto one = [&](size_t qi) {
    SearchOne(queries.row(qi), k, params.nprobe, params.reorder_k, ids + qi * k);
  };
  if (pool != nullptr) {
    pool->ParallelFor(queries.rows, one);
  } else {
    for (size_t qi = 0; qi < queries.rows; ++qi) one(qi);
  }
}

}  // namespace blink
