// Optimized Product Quantization (Ge et al. [18]) — PQ with a learned
// orthogonal rotation R that redistributes variance across segments before
// quantizing (the non-parametric OPQ of the original paper). Baseline for
// the exhaustive-compression study (paper Fig. 11).
//
// Training alternates:
//   1. PQ codebooks on the rotated data Z = X R,
//   2. orthogonal Procrustes update R = U V^T from SVD(X^T Z_hat).
#pragma once

#include <cstdint>

#include "baselines/pq.h"
#include "util/linalg.h"
#include "util/matrix.h"

namespace blink {

struct OpqParams {
  PqParams pq;
  size_t opt_iters = 8;  ///< alternations of (codebooks, rotation)
};

class OpqCodec {
 public:
  OpqCodec() = default;

  static OpqCodec Train(MatrixViewF data, const OpqParams& params,
                        ThreadPool* pool = nullptr);

  size_t dim() const { return pq_.dim(); }
  size_t code_bytes() const { return pq_.code_bytes(); }
  double compression_ratio() const { return pq_.compression_ratio(); }
  const PqCodec& pq() const { return pq_; }
  const MatrixF& rotation() const { return rotation_; }

  /// Encodes x: rotate (z = x R), then PQ-encode z.
  void Encode(const float* x, uint8_t* codes) const;
  /// Decodes to the original space: x_hat = z_hat R^T.
  void Decode(const uint8_t* codes, float* out) const;
  /// ADC table for a query (built in rotated space; rotation is an isometry
  /// so L2/IP distances transfer directly).
  void BuildLut(const float* q, Metric metric, float* lut) const;
  float AdcDistance(const float* lut, const uint8_t* codes) const {
    return pq_.AdcDistance(lut, codes);
  }

 private:
  PqCodec pq_;
  MatrixF rotation_;  // d x d, orthogonal
};

/// OPQ-encoded dataset with exhaustive ADC search (Fig. 11 baseline).
class OpqDataset {
 public:
  OpqDataset() = default;
  OpqDataset(OpqCodec codec, MatrixViewF data, ThreadPool* pool = nullptr);

  const OpqCodec& codec() const { return codec_; }
  size_t size() const { return codes_.rows(); }
  size_t dim() const { return codec_.dim(); }
  void Decode(size_t i, float* out) const { codec_.Decode(codes_.row(i), out); }
  size_t memory_bytes() const { return codes_.size(); }
  double compression_ratio() const { return codec_.compression_ratio(); }

  Matrix<uint32_t> ExhaustiveSearch(MatrixViewF queries, size_t k,
                                    Metric metric,
                                    ThreadPool* pool = nullptr) const;

 private:
  OpqCodec codec_;
  Matrix<uint8_t> codes_;
};

}  // namespace blink
