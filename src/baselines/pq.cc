#include "baselines/pq.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "simd/distance.h"
#include "util/prng.h"

namespace blink {

PqCodec PqCodec::Train(MatrixViewF data, const PqParams& params,
                       ThreadPool* pool) {
  PqCodec c;
  c.d_ = data.cols;
  c.m_ = std::min(params.num_segments, c.d_);
  assert(params.bits_per_segment >= 1 && params.bits_per_segment <= 8);
  c.ksub_ = 1ull << params.bits_per_segment;

  // Segment boundaries: spread the remainder over the first segments.
  c.offsets_.resize(c.m_ + 1);
  const size_t base = c.d_ / c.m_, rem = c.d_ % c.m_;
  c.offsets_[0] = 0;
  for (size_t s = 0; s < c.m_; ++s) {
    c.offsets_[s + 1] = c.offsets_[s] + base + (s < rem ? 1 : 0);
  }
  c.max_dsub_ = base + (rem > 0 ? 1 : 0);
  c.codebooks_.assign(c.m_ * c.ksub_ * c.max_dsub_, 0.0f);

  // Training sample (deterministic subsample when data is large).
  const size_t n_train = std::min(data.rows, params.train_sample);
  std::vector<uint32_t> sample(n_train);
  if (n_train == data.rows) {
    for (size_t i = 0; i < n_train; ++i) sample[i] = static_cast<uint32_t>(i);
  } else {
    Rng rng(params.kmeans.seed ^ 0xC0DEBAull);
    for (size_t i = 0; i < n_train; ++i) {
      sample[i] = static_cast<uint32_t>(rng.Bounded(data.rows));
    }
  }

  // One k-means per segment.
  for (size_t s = 0; s < c.m_; ++s) {
    const size_t dsub = c.segment_dim(s);
    MatrixF seg(n_train, dsub);
    for (size_t i = 0; i < n_train; ++i) {
      std::memcpy(seg.row(i), data.row(sample[i]) + c.offsets_[s],
                  dsub * sizeof(float));
    }
    KMeansParams kp = params.kmeans;
    kp.k = c.ksub_;
    kp.seed = params.kmeans.seed + s;
    KMeansResult km = KMeans(seg, kp, pool);
    for (size_t cc = 0; cc < std::min(c.ksub_, km.centroids.rows()); ++cc) {
      std::memcpy(&c.codebooks_[(s * c.ksub_ + cc) * c.max_dsub_],
                  km.centroids.row(cc), dsub * sizeof(float));
    }
  }
  return c;
}

void PqCodec::Encode(const float* x, uint8_t* codes) const {
  for (size_t s = 0; s < m_; ++s) {
    const size_t dsub = segment_dim(s);
    const float* xs = x + offsets_[s];
    uint32_t best = 0;
    float best_dist = 3.4e38f;
    for (size_t cc = 0; cc < ksub_; ++cc) {
      const float dist = simd::L2Sqr(xs, centroid(s, cc), dsub);
      if (dist < best_dist) {
        best_dist = dist;
        best = static_cast<uint32_t>(cc);
      }
    }
    codes[s] = static_cast<uint8_t>(best);
  }
}

void PqCodec::Decode(const uint8_t* codes, float* out) const {
  for (size_t s = 0; s < m_; ++s) {
    std::memcpy(out + offsets_[s], centroid(s, codes[s]),
                segment_dim(s) * sizeof(float));
  }
}

void PqCodec::BuildLut(const float* q, Metric metric, float* lut) const {
  for (size_t s = 0; s < m_; ++s) {
    const size_t dsub = segment_dim(s);
    const float* qs = q + offsets_[s];
    float* row = lut + s * ksub_;
    if (metric == Metric::kL2) {
      for (size_t cc = 0; cc < ksub_; ++cc) {
        row[cc] = simd::L2Sqr(qs, centroid(s, cc), dsub);
      }
    } else {
      for (size_t cc = 0; cc < ksub_; ++cc) {
        row[cc] = simd::IpDist(qs, centroid(s, cc), dsub);
      }
    }
  }
}

PqDataset::PqDataset(PqCodec codec, MatrixViewF data, ThreadPool* pool)
    : codec_(std::move(codec)), codes_(data.rows, codec_.code_bytes()) {
  auto one = [&](size_t i) { codec_.Encode(data.row(i), codes_.row(i)); };
  if (pool != nullptr) {
    pool->ParallelFor(data.rows, one);
  } else {
    for (size_t i = 0; i < data.rows; ++i) one(i);
  }
}

Matrix<uint32_t> PqDataset::ExhaustiveSearch(MatrixViewF queries, size_t k,
                                             Metric metric,
                                             ThreadPool* pool) const {
  const size_t nq = queries.rows, n = size();
  Matrix<uint32_t> out(nq, k);
  auto one = [&](size_t qi) {
    std::vector<float> lut(codec_.num_segments() * codec_.ksub());
    codec_.BuildLut(queries.row(qi), metric, lut.data());
    std::vector<std::pair<float, uint32_t>> top;
    top.reserve(k + 1);
    for (size_t i = 0; i < n; ++i) {
      const float dist = codec_.AdcDistance(lut.data(), codes(i));
      if (top.size() < k) {
        top.push_back({dist, static_cast<uint32_t>(i)});
        std::push_heap(top.begin(), top.end());
      } else if (dist < top.front().first) {
        std::pop_heap(top.begin(), top.end());
        top.back() = {dist, static_cast<uint32_t>(i)};
        std::push_heap(top.begin(), top.end());
      }
    }
    std::sort(top.begin(), top.end());
    uint32_t* row = out.row(qi);
    for (size_t j = 0; j < k; ++j) {
      row[j] = j < top.size() ? top[j].second : UINT32_MAX;
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(nq, one);
  } else {
    for (size_t qi = 0; qi < nq; ++qi) one(qi);
  }
  return out;
}

}  // namespace blink
