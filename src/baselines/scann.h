// ScaNN-like baseline (Guo et al. [21]): k-means partitioning, 4-bit
// product codes over residuals with *anisotropic* (score-aware) code
// assignment, and full-precision reordering (Figs. 1, 9, 10, 21).
//
// ScaNN's score-aware loss weights quantization error parallel to the
// datapoint direction more heavily than orthogonal error, with the ratio
// eta = (d-1) T^2 / (1 - T^2) derived from the threshold T
// (avq_threshold, the paper sweeps the authors' recommended T = 0.2).
//
// Substitution note (DESIGN.md §2): codebooks are trained with standard
// k-means and only the *assignment* uses the anisotropic loss, a common
// simplification of ScaNN's coordinate-descent trainer; and scoring uses
// plain ADC rather than the AVX shuffle-based 4-bit fast-scan. Both keep
// the baseline's QPS/recall *shape* (partition-probe cost structure,
// recall gated by reordering).
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/pq.h"
#include "cluster/kmeans.h"
#include "eval/interface.h"
#include "util/matrix.h"

namespace blink {

struct ScannParams {
  size_t n_leaves = 0;         ///< 0 = sqrt(n), the authors' recommendation
  float avq_threshold = 0.2f;  ///< anisotropic threshold T
  size_t dims_per_block = 2;   ///< PQ segment width (4-bit codes)
  size_t train_sample = 50000;
  uint64_t seed = 21;
};

class ScannIndex : public SearchIndex {
 public:
  ScannIndex(MatrixViewF data, Metric metric, const ScannParams& params,
             ThreadPool* pool = nullptr);

  std::string name() const override {
    return "ScaNN-leaves" + std::to_string(n_leaves_);
  }
  size_t size() const override { return n_; }
  size_t dim() const override { return d_; }
  size_t memory_bytes() const override;

  /// SearchOptions::nprobe = leaves_to_search, reorder_k = reorder depth.
  void SearchBatch(MatrixViewF queries, size_t k, const SearchOptions& params,
                   uint32_t* ids, ThreadPool* pool = nullptr) const override;

  size_t n_leaves() const { return n_leaves_; }
  double anisotropic_eta() const { return eta_; }

 private:
  void SearchOne(const float* q, size_t k, uint32_t nprobe, uint32_t reorder_k,
                 uint32_t* out) const;
  /// Anisotropic encode of one residual (direction = the original vector).
  void EncodeAnisotropic(const float* residual, const float* direction,
                         uint8_t* codes) const;

  size_t n_ = 0;
  size_t d_ = 0;
  size_t n_leaves_ = 0;
  Metric metric_ = Metric::kL2;
  ScannParams params_;
  double eta_ = 1.0;
  MatrixF centroids_;  // n_leaves x d
  PqCodec codec_;      // 4-bit codes over residuals
  std::vector<std::vector<uint32_t>> leaf_ids_;
  std::vector<std::vector<uint8_t>> leaf_codes_;
  MatrixF full_vectors_;  // reorder stage
};

}  // namespace blink
