#include "baselines/ivf.h"

#include <algorithm>
#include <cstring>

#include "simd/distance.h"
#include "util/prng.h"

namespace blink {

IvfPqIndex::IvfPqIndex(MatrixViewF data, Metric metric,
                       const IvfPqParams& params, ThreadPool* pool)
    : n_(data.rows), d_(data.cols), metric_(metric), params_(params) {
  // 1. Coarse quantizer: k-means over a training sample.
  const size_t n_train = std::min(n_, params.train_sample);
  MatrixF train(n_train, d_);
  {
    Rng rng(params.seed);
    for (size_t i = 0; i < n_train; ++i) {
      const size_t src =
          n_train == n_ ? i : static_cast<size_t>(rng.Bounded(n_));
      std::memcpy(train.row(i), data.row(src), d_ * sizeof(float));
    }
  }
  KMeansParams kp;
  kp.k = std::min(params.nlist, n_);
  kp.seed = params.seed;
  kp.max_iters = 20;
  KMeansResult coarse = KMeans(train, kp, pool);
  centroids_ = std::move(coarse.centroids);

  // 2. Assign all points; compute residuals; train the residual PQ.
  std::vector<uint32_t> assign(n_);
  AssignToCentroids(data, centroids_, assign.data(), nullptr, pool);
  MatrixF residuals(n_, d_);
  for (size_t i = 0; i < n_; ++i) {
    const float* x = data.row(i);
    const float* c = centroids_.row(assign[i]);
    float* r = residuals.row(i);
    for (size_t j = 0; j < d_; ++j) r[j] = x[j] - c[j];
  }
  codec_ = PqCodec::Train(residuals, params.pq, pool);

  // 3. Populate inverted lists.
  const size_t nlist = centroids_.rows();
  list_ids_.resize(nlist);
  list_codes_.resize(nlist);
  std::vector<uint8_t> code(codec_.code_bytes());
  for (size_t i = 0; i < n_; ++i) {
    const uint32_t c = assign[i];
    codec_.Encode(residuals.row(i), code.data());
    list_ids_[c].push_back(static_cast<uint32_t>(i));
    list_codes_[c].insert(list_codes_[c].end(), code.begin(), code.end());
  }

  // 4. Full-precision vectors for the refine stage.
  if (params.keep_full_vectors) {
    full_vectors_ = MatrixF(n_, d_);
    for (size_t i = 0; i < n_; ++i) {
      std::memcpy(full_vectors_.row(i), data.row(i), d_ * sizeof(float));
    }
  }
}

std::string IvfPqIndex::name() const {
  return "IVFPQ-nlist" + std::to_string(nlist()) + "-M" +
         std::to_string(codec_.num_segments()) +
         (params_.keep_full_vectors ? "+refine" : "");
}

size_t IvfPqIndex::memory_bytes() const {
  size_t bytes = centroids_.size() * sizeof(float);
  for (size_t l = 0; l < list_ids_.size(); ++l) {
    bytes += list_ids_[l].size() * sizeof(uint32_t) + list_codes_[l].size();
  }
  bytes += full_vectors_.size() * sizeof(float);
  return bytes;
}

void IvfPqIndex::SearchOne(const float* q, size_t k, uint32_t nprobe,
                           uint32_t reorder_k, uint32_t* out) const {
  const size_t probes = std::min<size_t>(std::max<uint32_t>(nprobe, 1), nlist());
  const std::vector<uint32_t> lists = NearestCentroids(q, centroids_, probes);

  // ADC scan of the probed lists. With residual encoding the table depends
  // on (q - centroid), so it is rebuilt per probed list (classic IVFADC).
  const size_t cand_target = std::max<size_t>(k, reorder_k);
  std::vector<std::pair<float, uint32_t>> top;
  top.reserve(cand_target + 1);
  std::vector<float> lut(codec_.num_segments() * codec_.ksub());
  std::vector<float> qres(d_);
  for (uint32_t l : lists) {
    const float* c = centroids_.row(l);
    float bias = 0.0f;
    if (metric_ == Metric::kL2) {
      for (size_t j = 0; j < d_; ++j) qres[j] = q[j] - c[j];
    } else {
      // -<q, c + r> = -<q, c> - <q, r>: table over residuals + constant.
      std::memcpy(qres.data(), q, d_ * sizeof(float));
      bias = simd::IpDist(q, c, d_);
    }
    codec_.BuildLut(qres.data(), metric_, lut.data());
    const auto& ids = list_ids_[l];
    const auto& codes = list_codes_[l];
    const size_t m = codec_.code_bytes();
    for (size_t e = 0; e < ids.size(); ++e) {
      const float dist = codec_.AdcDistance(lut.data(), &codes[e * m]) + bias;
      if (top.size() < cand_target) {
        top.push_back({dist, ids[e]});
        std::push_heap(top.begin(), top.end());
      } else if (dist < top.front().first) {
        std::pop_heap(top.begin(), top.end());
        top.back() = {dist, ids[e]};
        std::push_heap(top.begin(), top.end());
      }
    }
  }
  std::sort(top.begin(), top.end());

  // Refine: recompute the best reorder_k with full-precision vectors.
  if (reorder_k > 0 && full_vectors_.rows() == n_) {
    const size_t rr = std::min<size_t>(reorder_k, top.size());
    for (size_t e = 0; e < rr; ++e) {
      const float* v = full_vectors_.row(top[e].second);
      top[e].first = metric_ == Metric::kL2 ? simd::L2Sqr(q, v, d_)
                                            : simd::IpDist(q, v, d_);
    }
    std::sort(top.begin(), top.begin() + rr);
  }

  for (size_t j = 0; j < k; ++j) {
    out[j] = j < top.size() ? top[j].second : UINT32_MAX;
  }
}

void IvfPqIndex::SearchBatch(MatrixViewF queries, size_t k,
                             const SearchOptions& params, uint32_t* ids,
                             ThreadPool* pool) const {
  auto one = [&](size_t qi) {
    SearchOne(queries.row(qi), k, params.nprobe, params.reorder_k, ids + qi * k);
  };
  if (pool != nullptr) {
    pool->ParallelFor(queries.rows, one);
  } else {
    for (size_t qi = 0; qi < queries.rows; ++qi) one(qi);
  }
}

}  // namespace blink
