// Product Quantization (Jégou et al. [33]) — the paper's principal
// compression baseline (Figs. 11, 12) and the substrate of the IVF and
// ScaNN-like baselines.
//
// The vector space is split into M contiguous segments; each segment is
// vector-quantized against its own 2^bits-entry codebook trained with
// k-means. Queries are evaluated with Asymmetric Distance Computation
// (ADC): a per-query lookup table of partial distances, gathered per code —
// the indexed-gather access pattern whose cost under random access the
// paper analyzes in Sec. 7.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/kmeans.h"
#include "eval/interface.h"
#include "graph/storage.h"
#include "util/matrix.h"

namespace blink {

struct PqParams {
  size_t num_segments = 8;      ///< M
  size_t bits_per_segment = 8;  ///< codebook size 2^bits (8 -> 256)
  size_t train_sample = 20000;  ///< max vectors used to train codebooks
  KMeansParams kmeans;
};

/// Trained PQ codebooks plus encode/decode/ADC primitives.
class PqCodec {
 public:
  PqCodec() = default;

  static PqCodec Train(MatrixViewF data, const PqParams& params,
                       ThreadPool* pool = nullptr);

  size_t dim() const { return d_; }
  size_t num_segments() const { return m_; }
  size_t ksub() const { return ksub_; }
  size_t code_bytes() const { return m_; }  // one byte per segment (<=8 bits)

  /// Compression ratio vs float32 (same formula as LVQ's Eq. 5; the paper
  /// defines PQ's footprint as its number of segments at 256 centroids).
  double compression_ratio() const {
    return static_cast<double>(d_) * 4.0 / static_cast<double>(code_bytes());
  }

  void Encode(const float* x, uint8_t* codes) const;
  void Decode(const uint8_t* codes, float* out) const;

  /// Fills a per-query ADC table of m * ksub partial distances:
  /// L2 -> ||q_seg - centroid||^2, IP -> -<q_seg, centroid>.
  void BuildLut(const float* q, Metric metric, float* lut) const;

  float AdcDistance(const float* lut, const uint8_t* codes) const {
    float acc = 0.0f;
    for (size_t s = 0; s < m_; ++s) acc += lut[s * ksub_ + codes[s]];
    return acc;
  }

  /// Segment boundaries: segment s covers [offset(s), offset(s+1)).
  size_t offset(size_t s) const { return offsets_[s]; }
  size_t segment_dim(size_t s) const { return offsets_[s + 1] - offsets_[s]; }
  /// Centroid c of segment s (segment_dim(s) floats).
  const float* centroid(size_t s, size_t c) const {
    return codebooks_.data() + (s * ksub_ + c) * max_dsub_;
  }

 private:
  size_t d_ = 0;
  size_t m_ = 0;
  size_t ksub_ = 0;
  size_t max_dsub_ = 0;
  std::vector<size_t> offsets_;   // m+1
  std::vector<float> codebooks_;  // m * ksub * max_dsub (zero-padded)
};

/// A PQ-encoded dataset (n x m codes) for exhaustive ADC search.
class PqDataset {
 public:
  PqDataset() = default;
  PqDataset(PqCodec codec, MatrixViewF data, ThreadPool* pool = nullptr);

  const PqCodec& codec() const { return codec_; }
  size_t size() const { return codes_.rows(); }
  size_t dim() const { return codec_.dim(); }
  const uint8_t* codes(size_t i) const { return codes_.row(i); }
  void Decode(size_t i, float* out) const { codec_.Decode(codes(i), out); }
  size_t memory_bytes() const { return codes_.size(); }
  double compression_ratio() const { return codec_.compression_ratio(); }

  /// Exhaustive ADC top-k (ascending distance).
  Matrix<uint32_t> ExhaustiveSearch(MatrixViewF queries, size_t k,
                                    Metric metric,
                                    ThreadPool* pool = nullptr) const;

 private:
  PqCodec codec_;
  Matrix<uint8_t> codes_;
};

/// PQ storage for the graph engine (the Sec. 6.7 PQ-under-our-harness
/// ablation, Fig. 12): traversal distances are ADC lookups into the
/// per-query table.
class PqStorage {
 public:
  struct Query {
    std::vector<float> lut;
  };

  PqStorage() = default;
  PqStorage(MatrixViewF data, Metric metric, const PqParams& params,
            ThreadPool* pool = nullptr)
      : metric_(metric) {
    codec_ = PqCodec::Train(data, params, pool);
    ds_ = PqDataset(codec_, data, pool);
  }

  size_t size() const { return ds_.size(); }
  size_t dim() const { return codec_.dim(); }
  Metric metric() const { return metric_; }
  size_t memory_bytes() const { return ds_.memory_bytes(); }
  const char* encoding_name() const { return "PQ"; }

  void PrepareQuery(const float* q, Query* out) const {
    out->lut.resize(codec_.num_segments() * codec_.ksub());
    codec_.BuildLut(q, metric_, out->lut.data());
  }

  float Distance(const Query& q, size_t i) const {
    return codec_.AdcDistance(q.lut.data(), ds_.codes(i));
  }

  bool has_second_level() const { return false; }
  float FullDistance(const Query& q, size_t i, float* /*scratch*/) const {
    return Distance(q, i);
  }
  void PrefetchSecondLevel(size_t /*i*/) const {}

  void DecodeVector(size_t i, float* out) const { ds_.Decode(i, out); }

  void Prefetch(size_t i) const {
    __builtin_prefetch(ds_.codes(i), 0, 3);
  }

 private:
  PqCodec codec_;
  PqDataset ds_;
  Metric metric_ = Metric::kL2;
};

}  // namespace blink
