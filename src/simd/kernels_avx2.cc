// AVX2 kernel backend. Compiled with -mavx2 -mfma -mf16c (see
// CMakeLists.txt); only reached at runtime when cpuid reports those
// features, so the binary as a whole stays runnable on plain x86-64.
#define BLINK_SIMD_BACKEND_AVX2 1
#define BLINK_SIMD_TABLE_FN Avx2Kernels
#define BLINK_SIMD_TABLE_NAME "avx2"
#include "simd/kernels.inc"
