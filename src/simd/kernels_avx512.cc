// AVX-512 kernel backend. Compiled with -mavx512f -mavx512bw -mavx512vl
// -mavx512dq -mfma -mf16c (see CMakeLists.txt); only reached at runtime
// when cpuid reports those features.
#define BLINK_SIMD_BACKEND_AVX512 1
#define BLINK_SIMD_TABLE_FN Avx512Kernels
#define BLINK_SIMD_TABLE_NAME "avx512"
#include "simd/kernels.inc"
