// Similarity-computation kernels (paper Sec. 5, "Efficient similarity
// calculations using LVQ with AVX").
//
// Compressed vectors are stored as densely packed integers with the scaling
// constants inline; kernels fuse decompression with the distance
// computation: codes are loaded, widened, converted to float and combined
// with (delta, lower) via FMA, accumulating partial results in SIMD
// registers. There are no function calls or materialized decoded vectors
// on the hot path.
//
// All kernels compare a float32 *query* against a stored vector in one of
// the supported encodings:
//   float32, float16, U8 codes (LVQ-8 / global-8), U4 packed nibbles
//   (LVQ-4 / global-4).
// For quantized encodings the query must already be mean-centered (LVQ
// compares in centered space; see quant/lvq.h).
//
// Distance convention: lower = more similar. L2 kernels return squared
// Euclidean distance; "IpDist" kernels return the *negated* inner product.
//
// Static dimensionality (paper: up to 32% speedup): Get*Fn(d) returns a
// specialization with a compile-time trip count when d is one of the
// instantiated dimensions, else the dynamic kernel. Get*FnDynamic() always
// returns the dynamic kernel (for the Fig. 8 static-vs-dynamic ablation).
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/float16.h"

namespace blink::simd {

/// Name of the SIMD backend selected at runtime ("avx512", "avx2",
/// "scalar"). Selection is by cpuid, overridable with BLINK_SIMD=scalar|
/// avx2|avx512 (narrowing only: a forced backend the host cannot run falls
/// back to the widest supported one; unknown values warn on stderr and
/// auto-select).
const char* BackendName();

// ---------------------------------------------------------------------------
// Scalar reference implementations (ground truth for tests; also the
// fallback backend).
// ---------------------------------------------------------------------------
namespace ref {
float L2Sqr(const float* a, const float* b, size_t d);
float IpDist(const float* a, const float* b, size_t d);
float L2SqrF16(const float* q, const Float16* v, size_t d);
float IpDistF16(const float* q, const Float16* v, size_t d);
/// Codes decode as delta * c_j + lower.
float L2SqrU8(const float* q, const uint8_t* codes, float delta, float lower,
              size_t d);
float IpDistU8(const float* q, const uint8_t* codes, float delta, float lower,
               size_t d);
float L2SqrU4(const float* q, const uint8_t* codes, float delta, float lower,
              size_t d);
float IpDistU4(const float* q, const uint8_t* codes, float delta, float lower,
               size_t d);
}  // namespace ref

// ---------------------------------------------------------------------------
// Optimized kernels (backend chosen at runtime; see BackendName()).
// ---------------------------------------------------------------------------
float L2Sqr(const float* a, const float* b, size_t d);
float IpDist(const float* a, const float* b, size_t d);
float L2SqrF16(const float* q, const Float16* v, size_t d);
float IpDistF16(const float* q, const Float16* v, size_t d);
float L2SqrU8(const float* q, const uint8_t* codes, float delta, float lower,
              size_t d);
float IpDistU8(const float* q, const uint8_t* codes, float delta, float lower,
               size_t d);
float L2SqrU4(const float* q, const uint8_t* codes, float delta, float lower,
              size_t d);
float IpDistU4(const float* q, const uint8_t* codes, float delta, float lower,
               size_t d);

/// Non-fused U8 L2 for the fusion ablation (DESIGN.md D3): decodes into
/// `scratch` (>= d floats), then calls the float32 kernel.
float L2SqrU8Unfused(const float* q, const uint8_t* codes, float delta,
                     float lower, size_t d, float* scratch);

// ---------------------------------------------------------------------------
// Function-pointer dispatch with optional static dimensionality.
// ---------------------------------------------------------------------------
using DistF32Fn = float (*)(const float*, const float*, size_t);
using DistF16Fn = float (*)(const float*, const Float16*, size_t);
using DistU8Fn = float (*)(const float*, const uint8_t*, float, float, size_t);
using DistU4Fn = float (*)(const float*, const uint8_t*, float, float, size_t);

DistF32Fn GetL2F32(size_t d);
DistF32Fn GetIpF32(size_t d);
DistF16Fn GetL2F16(size_t d);
DistF16Fn GetIpF16(size_t d);
DistU8Fn GetL2U8(size_t d);
DistU8Fn GetIpU8(size_t d);
DistU4Fn GetL2U4(size_t d);
DistU4Fn GetIpU4(size_t d);

DistF32Fn GetL2F32Dynamic();
DistU8Fn GetL2U8Dynamic();
DistU4Fn GetL2U4Dynamic();
DistF16Fn GetL2F16Dynamic();

/// True if `d` has a compile-time specialization.
bool HasStaticDim(size_t d);

/// Prefetches `bytes` starting at `p` into L1/L2 (one request per line).
inline void PrefetchBytes(const void* p, size_t bytes) {
  const char* c = static_cast<const char*>(p);
  for (size_t off = 0; off < bytes; off += 64) {
    __builtin_prefetch(c + off, 0, 3);
  }
}

}  // namespace blink::simd
