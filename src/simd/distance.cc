#include "simd/distance.h"

#include <cassert>

#if defined(__AVX512F__) || defined(__AVX2__)
#include <immintrin.h>
#endif

#include "quant/packing.h"

namespace blink::simd {

// ---------------------------------------------------------------------------
// Scalar reference kernels.
// ---------------------------------------------------------------------------
namespace ref {

float L2Sqr(const float* a, const float* b, size_t d) {
  float acc = 0.0f;
  for (size_t j = 0; j < d; ++j) {
    const float diff = a[j] - b[j];
    acc += diff * diff;
  }
  return acc;
}

float IpDist(const float* a, const float* b, size_t d) {
  float acc = 0.0f;
  for (size_t j = 0; j < d; ++j) acc += a[j] * b[j];
  return -acc;
}

float L2SqrF16(const float* q, const Float16* v, size_t d) {
  float acc = 0.0f;
  for (size_t j = 0; j < d; ++j) {
    const float diff = q[j] - static_cast<float>(v[j]);
    acc += diff * diff;
  }
  return acc;
}

float IpDistF16(const float* q, const Float16* v, size_t d) {
  float acc = 0.0f;
  for (size_t j = 0; j < d; ++j) acc += q[j] * static_cast<float>(v[j]);
  return -acc;
}

float L2SqrU8(const float* q, const uint8_t* codes, float delta, float lower,
              size_t d) {
  float acc = 0.0f;
  for (size_t j = 0; j < d; ++j) {
    const float diff = q[j] - (delta * static_cast<float>(codes[j]) + lower);
    acc += diff * diff;
  }
  return acc;
}

float IpDistU8(const float* q, const uint8_t* codes, float delta, float lower,
               size_t d) {
  float acc = 0.0f;
  for (size_t j = 0; j < d; ++j) {
    acc += q[j] * (delta * static_cast<float>(codes[j]) + lower);
  }
  return -acc;
}

float L2SqrU4(const float* q, const uint8_t* codes, float delta, float lower,
              size_t d) {
  float acc = 0.0f;
  for (size_t j = 0; j < d; ++j) {
    const uint32_t c = UnpackCode(codes, j, 4);
    const float diff = q[j] - (delta * static_cast<float>(c) + lower);
    acc += diff * diff;
  }
  return acc;
}

float IpDistU4(const float* q, const uint8_t* codes, float delta, float lower,
               size_t d) {
  float acc = 0.0f;
  for (size_t j = 0; j < d; ++j) {
    const uint32_t c = UnpackCode(codes, j, 4);
    acc += q[j] * (delta * static_cast<float>(c) + lower);
  }
  return -acc;
}

}  // namespace ref

const char* BackendName() {
#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__)
  return "avx512";
#elif defined(__AVX2__)
  return "avx2";
#else
  return "scalar";
#endif
}

// ---------------------------------------------------------------------------
// Kernel templates. D > 0 makes the trip count a compile-time constant so
// the compiler can fully unroll (the paper's static-dimensionality
// optimization, worth up to 32%).
// ---------------------------------------------------------------------------
namespace {

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__)

/// Horizontal sum of a 512-bit float accumulator. Hand-rolled instead of
/// _mm512_reduce_add_ps to avoid a GCC -Wuninitialized false positive in
/// the intrinsic header (it passes _mm256_undefined_pd to a masked extract).
inline float ReduceAdd512(__m512 v) {
  const __m256 lo = _mm512_castps512_ps256(v);
  const __m256 hi = _mm512_extractf32x8_ps(v, 1);
  const __m256 s = _mm256_add_ps(lo, hi);
  __m128 s128 = _mm_add_ps(_mm256_castps256_ps128(s), _mm256_extractf128_ps(s, 1));
  s128 = _mm_add_ps(s128, _mm_movehl_ps(s128, s128));
  s128 = _mm_add_ss(s128, _mm_shuffle_ps(s128, s128, 0x55));
  return _mm_cvtss_f32(s128);
}

template <int D>
float L2SqrImpl(const float* a, const float* b, size_t d_dyn) {
  const size_t d = D > 0 ? static_cast<size_t>(D) : d_dyn;
  __m512 acc = _mm512_setzero_ps();
  size_t j = 0;
  for (; j + 16 <= d; j += 16) {
    const __m512 x = _mm512_loadu_ps(a + j);
    const __m512 y = _mm512_loadu_ps(b + j);
    const __m512 diff = _mm512_sub_ps(x, y);
    acc = _mm512_fmadd_ps(diff, diff, acc);
  }
  if (j < d) {
    const __mmask16 m = static_cast<__mmask16>((1u << (d - j)) - 1u);
    const __m512 x = _mm512_maskz_loadu_ps(m, a + j);
    const __m512 y = _mm512_maskz_loadu_ps(m, b + j);
    const __m512 diff = _mm512_sub_ps(x, y);
    acc = _mm512_fmadd_ps(diff, diff, acc);
  }
  return ReduceAdd512(acc);
}

template <int D>
float IpDistImpl(const float* a, const float* b, size_t d_dyn) {
  const size_t d = D > 0 ? static_cast<size_t>(D) : d_dyn;
  __m512 acc = _mm512_setzero_ps();
  size_t j = 0;
  for (; j + 16 <= d; j += 16) {
    acc = _mm512_fmadd_ps(_mm512_loadu_ps(a + j), _mm512_loadu_ps(b + j), acc);
  }
  if (j < d) {
    const __mmask16 m = static_cast<__mmask16>((1u << (d - j)) - 1u);
    acc = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(m, a + j),
                          _mm512_maskz_loadu_ps(m, b + j), acc);
  }
  return -ReduceAdd512(acc);
}

template <int D>
float L2SqrF16Impl(const float* q, const Float16* v, size_t d_dyn) {
  const size_t d = D > 0 ? static_cast<size_t>(D) : d_dyn;
  const uint16_t* vb = reinterpret_cast<const uint16_t*>(v);
  __m512 acc = _mm512_setzero_ps();
  size_t j = 0;
  for (; j + 16 <= d; j += 16) {
    const __m256i h = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vb + j));
    const __m512 f = _mm512_cvtph_ps(h);
    const __m512 diff = _mm512_sub_ps(_mm512_loadu_ps(q + j), f);
    acc = _mm512_fmadd_ps(diff, diff, acc);
  }
  if (j < d) {
    const __mmask16 m = static_cast<__mmask16>((1u << (d - j)) - 1u);
    const __m256i h = _mm256_maskz_loadu_epi16(m, vb + j);
    const __m512 f = _mm512_cvtph_ps(h);
    const __m512 diff = _mm512_sub_ps(_mm512_maskz_loadu_ps(m, q + j), f);
    acc = _mm512_fmadd_ps(diff, diff, acc);
  }
  return ReduceAdd512(acc);
}

template <int D>
float IpDistF16Impl(const float* q, const Float16* v, size_t d_dyn) {
  const size_t d = D > 0 ? static_cast<size_t>(D) : d_dyn;
  const uint16_t* vb = reinterpret_cast<const uint16_t*>(v);
  __m512 acc = _mm512_setzero_ps();
  size_t j = 0;
  for (; j + 16 <= d; j += 16) {
    const __m256i h = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vb + j));
    acc = _mm512_fmadd_ps(_mm512_loadu_ps(q + j), _mm512_cvtph_ps(h), acc);
  }
  if (j < d) {
    const __mmask16 m = static_cast<__mmask16>((1u << (d - j)) - 1u);
    const __m256i h = _mm256_maskz_loadu_epi16(m, vb + j);
    acc = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(m, q + j), _mm512_cvtph_ps(h), acc);
  }
  return -ReduceAdd512(acc);
}

template <int D>
float L2SqrU8Impl(const float* q, const uint8_t* codes, float delta,
                  float lower, size_t d_dyn) {
  const size_t d = D > 0 ? static_cast<size_t>(D) : d_dyn;
  const __m512 vd = _mm512_set1_ps(delta);
  const __m512 vl = _mm512_set1_ps(lower);
  __m512 acc = _mm512_setzero_ps();
  size_t j = 0;
  for (; j + 16 <= d; j += 16) {
    const __m128i bytes =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + j));
    const __m512 f = _mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(bytes));
    const __m512 dec = _mm512_fmadd_ps(f, vd, vl);
    const __m512 diff = _mm512_sub_ps(_mm512_loadu_ps(q + j), dec);
    acc = _mm512_fmadd_ps(diff, diff, acc);
  }
  if (j < d) {
    const __mmask16 m = static_cast<__mmask16>((1u << (d - j)) - 1u);
    const __m128i bytes = _mm_maskz_loadu_epi8(m, codes + j);
    const __m512 f = _mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(bytes));
    const __m512 dec = _mm512_fmadd_ps(f, vd, vl);
    // Masked query load zeroes the lanes past d; zero the decoded lanes too
    // so the masked-out components contribute nothing.
    const __m512 diff =
        _mm512_maskz_sub_ps(m, _mm512_maskz_loadu_ps(m, q + j), dec);
    acc = _mm512_fmadd_ps(diff, diff, acc);
  }
  return ReduceAdd512(acc);
}

template <int D>
float IpDistU8Impl(const float* q, const uint8_t* codes, float delta,
                   float lower, size_t d_dyn) {
  const size_t d = D > 0 ? static_cast<size_t>(D) : d_dyn;
  const __m512 vd = _mm512_set1_ps(delta);
  const __m512 vl = _mm512_set1_ps(lower);
  __m512 acc = _mm512_setzero_ps();
  size_t j = 0;
  for (; j + 16 <= d; j += 16) {
    const __m128i bytes =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + j));
    const __m512 f = _mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(bytes));
    const __m512 dec = _mm512_fmadd_ps(f, vd, vl);
    acc = _mm512_fmadd_ps(_mm512_loadu_ps(q + j), dec, acc);
  }
  if (j < d) {
    const __mmask16 m = static_cast<__mmask16>((1u << (d - j)) - 1u);
    const __m128i bytes = _mm_maskz_loadu_epi8(m, codes + j);
    const __m512 f = _mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(bytes));
    const __m512 dec = _mm512_fmadd_ps(f, vd, vl);
    acc = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(m, q + j), dec, acc);
  }
  return -ReduceAdd512(acc);
}

/// Expands 8 packed bytes (16 nibbles, low nibble = even index) into 16
/// ordered byte codes: unpacklo(lo, hi) interleaves exactly in code order.
inline __m128i ExpandNibbles(__m128i bytes8) {
  const __m128i mask = _mm_set1_epi8(0x0F);
  const __m128i lo = _mm_and_si128(bytes8, mask);
  const __m128i hi = _mm_and_si128(_mm_srli_epi16(bytes8, 4), mask);
  return _mm_unpacklo_epi8(lo, hi);
}

template <int D>
float L2SqrU4Impl(const float* q, const uint8_t* codes, float delta,
                  float lower, size_t d_dyn) {
  const size_t d = D > 0 ? static_cast<size_t>(D) : d_dyn;
  const __m512 vd = _mm512_set1_ps(delta);
  const __m512 vl = _mm512_set1_ps(lower);
  __m512 acc = _mm512_setzero_ps();
  size_t j = 0;
  for (; j + 16 <= d; j += 16) {
    const __m128i b8 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes + j / 2));
    const __m512 f = _mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(ExpandNibbles(b8)));
    const __m512 dec = _mm512_fmadd_ps(f, vd, vl);
    const __m512 diff = _mm512_sub_ps(_mm512_loadu_ps(q + j), dec);
    acc = _mm512_fmadd_ps(diff, diff, acc);
  }
  float tail = 0.0f;
  if constexpr (D <= 0 || D % 16 != 0) {  // tail is dead code otherwise
    for (; j < d; ++j) {
      const uint32_t c = UnpackCode(codes, j, 4);
      const float diff = q[j] - (delta * static_cast<float>(c) + lower);
      tail += diff * diff;
    }
  }
  return ReduceAdd512(acc) + tail;
}

template <int D>
float IpDistU4Impl(const float* q, const uint8_t* codes, float delta,
                   float lower, size_t d_dyn) {
  const size_t d = D > 0 ? static_cast<size_t>(D) : d_dyn;
  const __m512 vd = _mm512_set1_ps(delta);
  const __m512 vl = _mm512_set1_ps(lower);
  __m512 acc = _mm512_setzero_ps();
  size_t j = 0;
  for (; j + 16 <= d; j += 16) {
    const __m128i b8 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes + j / 2));
    const __m512 f = _mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(ExpandNibbles(b8)));
    const __m512 dec = _mm512_fmadd_ps(f, vd, vl);
    acc = _mm512_fmadd_ps(_mm512_loadu_ps(q + j), dec, acc);
  }
  float tail = 0.0f;
  if constexpr (D <= 0 || D % 16 != 0) {  // tail is dead code otherwise
    for (; j < d; ++j) {
      const uint32_t c = UnpackCode(codes, j, 4);
      tail += q[j] * (delta * static_cast<float>(c) + lower);
    }
  }
  return -(ReduceAdd512(acc) + tail);
}

#elif defined(__AVX2__)

inline float ReduceAdd256(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_hadd_ps(lo, lo);
  lo = _mm_hadd_ps(lo, lo);
  return _mm_cvtss_f32(lo);
}

template <int D>
float L2SqrImpl(const float* a, const float* b, size_t d_dyn) {
  const size_t d = D > 0 ? static_cast<size_t>(D) : d_dyn;
  __m256 acc = _mm256_setzero_ps();
  size_t j = 0;
  for (; j + 8 <= d; j += 8) {
    const __m256 diff =
        _mm256_sub_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j));
    acc = _mm256_fmadd_ps(diff, diff, acc);
  }
  float tail = 0.0f;
  for (; j < d; ++j) {
    const float diff = a[j] - b[j];
    tail += diff * diff;
  }
  return ReduceAdd256(acc) + tail;
}

template <int D>
float IpDistImpl(const float* a, const float* b, size_t d_dyn) {
  const size_t d = D > 0 ? static_cast<size_t>(D) : d_dyn;
  __m256 acc = _mm256_setzero_ps();
  size_t j = 0;
  for (; j + 8 <= d; j += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j), acc);
  }
  float tail = 0.0f;
  for (; j < d; ++j) tail += a[j] * b[j];
  return -(ReduceAdd256(acc) + tail);
}

template <int D>
float L2SqrF16Impl(const float* q, const Float16* v, size_t d_dyn) {
  const size_t d = D > 0 ? static_cast<size_t>(D) : d_dyn;
#if defined(__F16C__)
  const uint16_t* vb = reinterpret_cast<const uint16_t*>(v);
  __m256 acc = _mm256_setzero_ps();
  size_t j = 0;
  for (; j + 8 <= d; j += 8) {
    const __m128i h = _mm_loadu_si128(reinterpret_cast<const __m128i*>(vb + j));
    const __m256 f = _mm256_cvtph_ps(h);
    const __m256 diff = _mm256_sub_ps(_mm256_loadu_ps(q + j), f);
    acc = _mm256_fmadd_ps(diff, diff, acc);
  }
  float tail = 0.0f;
  for (; j < d; ++j) {
    const float diff = q[j] - static_cast<float>(v[j]);
    tail += diff * diff;
  }
  return ReduceAdd256(acc) + tail;
#else
  return ref::L2SqrF16(q, v, d);
#endif
}

template <int D>
float IpDistF16Impl(const float* q, const Float16* v, size_t d_dyn) {
  const size_t d = D > 0 ? static_cast<size_t>(D) : d_dyn;
#if defined(__F16C__)
  const uint16_t* vb = reinterpret_cast<const uint16_t*>(v);
  __m256 acc = _mm256_setzero_ps();
  size_t j = 0;
  for (; j + 8 <= d; j += 8) {
    const __m128i h = _mm_loadu_si128(reinterpret_cast<const __m128i*>(vb + j));
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(q + j), _mm256_cvtph_ps(h), acc);
  }
  float tail = 0.0f;
  for (; j < d; ++j) tail += q[j] * static_cast<float>(v[j]);
  return -(ReduceAdd256(acc) + tail);
#else
  return ref::IpDistF16(q, v, d);
#endif
}

template <int D>
float L2SqrU8Impl(const float* q, const uint8_t* codes, float delta,
                  float lower, size_t d_dyn) {
  const size_t d = D > 0 ? static_cast<size_t>(D) : d_dyn;
  const __m256 vd = _mm256_set1_ps(delta);
  const __m256 vl = _mm256_set1_ps(lower);
  __m256 acc = _mm256_setzero_ps();
  size_t j = 0;
  for (; j + 8 <= d; j += 8) {
    const __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes + j));
    const __m256 f = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes));
    const __m256 dec = _mm256_fmadd_ps(f, vd, vl);
    const __m256 diff = _mm256_sub_ps(_mm256_loadu_ps(q + j), dec);
    acc = _mm256_fmadd_ps(diff, diff, acc);
  }
  float tail = 0.0f;
  for (; j < d; ++j) {
    const float diff = q[j] - (delta * static_cast<float>(codes[j]) + lower);
    tail += diff * diff;
  }
  return ReduceAdd256(acc) + tail;
}

template <int D>
float IpDistU8Impl(const float* q, const uint8_t* codes, float delta,
                   float lower, size_t d_dyn) {
  const size_t d = D > 0 ? static_cast<size_t>(D) : d_dyn;
  const __m256 vd = _mm256_set1_ps(delta);
  const __m256 vl = _mm256_set1_ps(lower);
  __m256 acc = _mm256_setzero_ps();
  size_t j = 0;
  for (; j + 8 <= d; j += 8) {
    const __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes + j));
    const __m256 f = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes));
    const __m256 dec = _mm256_fmadd_ps(f, vd, vl);
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(q + j), dec, acc);
  }
  float tail = 0.0f;
  for (; j < d; ++j) {
    tail += q[j] * (delta * static_cast<float>(codes[j]) + lower);
  }
  return -(ReduceAdd256(acc) + tail);
}

template <int D>
float L2SqrU4Impl(const float* q, const uint8_t* codes, float delta,
                  float lower, size_t d_dyn) {
  return ref::L2SqrU4(q, codes, delta, lower, D > 0 ? static_cast<size_t>(D) : d_dyn);
}

template <int D>
float IpDistU4Impl(const float* q, const uint8_t* codes, float delta,
                   float lower, size_t d_dyn) {
  return ref::IpDistU4(q, codes, delta, lower, D > 0 ? static_cast<size_t>(D) : d_dyn);
}

#else  // scalar backend

template <int D>
float L2SqrImpl(const float* a, const float* b, size_t d_dyn) {
  return ref::L2Sqr(a, b, D > 0 ? static_cast<size_t>(D) : d_dyn);
}
template <int D>
float IpDistImpl(const float* a, const float* b, size_t d_dyn) {
  return ref::IpDist(a, b, D > 0 ? static_cast<size_t>(D) : d_dyn);
}
template <int D>
float L2SqrF16Impl(const float* q, const Float16* v, size_t d_dyn) {
  return ref::L2SqrF16(q, v, D > 0 ? static_cast<size_t>(D) : d_dyn);
}
template <int D>
float IpDistF16Impl(const float* q, const Float16* v, size_t d_dyn) {
  return ref::IpDistF16(q, v, D > 0 ? static_cast<size_t>(D) : d_dyn);
}
template <int D>
float L2SqrU8Impl(const float* q, const uint8_t* codes, float delta,
                  float lower, size_t d_dyn) {
  return ref::L2SqrU8(q, codes, delta, lower, D > 0 ? static_cast<size_t>(D) : d_dyn);
}
template <int D>
float IpDistU8Impl(const float* q, const uint8_t* codes, float delta,
                   float lower, size_t d_dyn) {
  return ref::IpDistU8(q, codes, delta, lower, D > 0 ? static_cast<size_t>(D) : d_dyn);
}
template <int D>
float L2SqrU4Impl(const float* q, const uint8_t* codes, float delta,
                  float lower, size_t d_dyn) {
  return ref::L2SqrU4(q, codes, delta, lower, D > 0 ? static_cast<size_t>(D) : d_dyn);
}
template <int D>
float IpDistU4Impl(const float* q, const uint8_t* codes, float delta,
                   float lower, size_t d_dyn) {
  return ref::IpDistU4(q, codes, delta, lower, D > 0 ? static_cast<size_t>(D) : d_dyn);
}

#endif  // backend selection

}  // namespace

// ---------------------------------------------------------------------------
// Public dynamic-dimension entry points.
// ---------------------------------------------------------------------------
float L2Sqr(const float* a, const float* b, size_t d) { return L2SqrImpl<0>(a, b, d); }
float IpDist(const float* a, const float* b, size_t d) { return IpDistImpl<0>(a, b, d); }
float L2SqrF16(const float* q, const Float16* v, size_t d) {
  return L2SqrF16Impl<0>(q, v, d);
}
float IpDistF16(const float* q, const Float16* v, size_t d) {
  return IpDistF16Impl<0>(q, v, d);
}
float L2SqrU8(const float* q, const uint8_t* codes, float delta, float lower,
              size_t d) {
  return L2SqrU8Impl<0>(q, codes, delta, lower, d);
}
float IpDistU8(const float* q, const uint8_t* codes, float delta, float lower,
               size_t d) {
  return IpDistU8Impl<0>(q, codes, delta, lower, d);
}
float L2SqrU4(const float* q, const uint8_t* codes, float delta, float lower,
              size_t d) {
  return L2SqrU4Impl<0>(q, codes, delta, lower, d);
}
float IpDistU4(const float* q, const uint8_t* codes, float delta, float lower,
               size_t d) {
  return IpDistU4Impl<0>(q, codes, delta, lower, d);
}

float L2SqrU8Unfused(const float* q, const uint8_t* codes, float delta,
                     float lower, size_t d, float* scratch) {
  for (size_t j = 0; j < d; ++j) {
    scratch[j] = delta * static_cast<float>(codes[j]) + lower;
  }
  return L2Sqr(q, scratch, d);
}

// ---------------------------------------------------------------------------
// Static-dimensionality dispatch.
// ---------------------------------------------------------------------------
// The dimensions of every dataset family in the paper (Table 2).
#define BLINK_STATIC_DIMS(X) \
  X(25) X(50) X(96) X(128) X(200) X(256) X(768) X(960)

bool HasStaticDim(size_t d) {
  switch (d) {
#define CASE(D) case D:
    BLINK_STATIC_DIMS(CASE)
#undef CASE
    return true;
    default:
      return false;
  }
}

#define MAKE_DISPATCH(getter, fn_type, IMPL_NAME)     \
  fn_type getter(size_t d) {                          \
    switch (d) {                                      \
      case 25: return &IMPL_NAME<25>;                 \
      case 50: return &IMPL_NAME<50>;                 \
      case 96: return &IMPL_NAME<96>;                 \
      case 128: return &IMPL_NAME<128>;               \
      case 200: return &IMPL_NAME<200>;               \
      case 256: return &IMPL_NAME<256>;               \
      case 768: return &IMPL_NAME<768>;               \
      case 960: return &IMPL_NAME<960>;               \
      default: return &IMPL_NAME<0>;                  \
    }                                                 \
  }

MAKE_DISPATCH(GetL2F32, DistF32Fn, L2SqrImpl)
MAKE_DISPATCH(GetIpF32, DistF32Fn, IpDistImpl)
MAKE_DISPATCH(GetL2F16, DistF16Fn, L2SqrF16Impl)
MAKE_DISPATCH(GetIpF16, DistF16Fn, IpDistF16Impl)
MAKE_DISPATCH(GetL2U8, DistU8Fn, L2SqrU8Impl)
MAKE_DISPATCH(GetIpU8, DistU8Fn, IpDistU8Impl)
MAKE_DISPATCH(GetL2U4, DistU4Fn, L2SqrU4Impl)
MAKE_DISPATCH(GetIpU4, DistU4Fn, IpDistU4Impl)

#undef MAKE_DISPATCH
#undef BLINK_STATIC_DIMS

DistF32Fn GetL2F32Dynamic() { return &L2SqrImpl<0>; }
DistU8Fn GetL2U8Dynamic() { return &L2SqrU8Impl<0>; }
DistU4Fn GetL2U4Dynamic() { return &L2SqrU4Impl<0>; }
DistF16Fn GetL2F16Dynamic() { return &L2SqrF16Impl<0>; }

}  // namespace blink::simd
