// Runtime-dispatched similarity kernels.
//
// The kernel bodies live in kernels.inc, compiled once per backend with
// per-file -march flags (kernels_scalar.cc / kernels_avx2.cc /
// kernels_avx512.cc). This TU holds the portable reference kernels and the
// dispatcher: cpuid picks the widest table the host supports, and the
// BLINK_SIMD environment variable (scalar|avx2|avx512) can force a narrower
// one for testing and ablations.

#include "simd/distance.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "quant/packing.h"
#include "simd/backends.h"

namespace blink::simd {

// ---------------------------------------------------------------------------
// Scalar reference kernels (ground truth for tests; shared by the scalar
// backend and the U4 fallbacks of narrower SIMD backends).
// ---------------------------------------------------------------------------
namespace ref {

float L2Sqr(const float* a, const float* b, size_t d) {
  float acc = 0.0f;
  for (size_t j = 0; j < d; ++j) {
    const float diff = a[j] - b[j];
    acc += diff * diff;
  }
  return acc;
}

float IpDist(const float* a, const float* b, size_t d) {
  float acc = 0.0f;
  for (size_t j = 0; j < d; ++j) acc += a[j] * b[j];
  return -acc;
}

float L2SqrF16(const float* q, const Float16* v, size_t d) {
  float acc = 0.0f;
  for (size_t j = 0; j < d; ++j) {
    const float diff = q[j] - static_cast<float>(v[j]);
    acc += diff * diff;
  }
  return acc;
}

float IpDistF16(const float* q, const Float16* v, size_t d) {
  float acc = 0.0f;
  for (size_t j = 0; j < d; ++j) acc += q[j] * static_cast<float>(v[j]);
  return -acc;
}

float L2SqrU8(const float* q, const uint8_t* codes, float delta, float lower,
              size_t d) {
  float acc = 0.0f;
  for (size_t j = 0; j < d; ++j) {
    const float diff = q[j] - (delta * static_cast<float>(codes[j]) + lower);
    acc += diff * diff;
  }
  return acc;
}

float IpDistU8(const float* q, const uint8_t* codes, float delta, float lower,
               size_t d) {
  float acc = 0.0f;
  for (size_t j = 0; j < d; ++j) {
    acc += q[j] * (delta * static_cast<float>(codes[j]) + lower);
  }
  return -acc;
}

float L2SqrU4(const float* q, const uint8_t* codes, float delta, float lower,
              size_t d) {
  float acc = 0.0f;
  for (size_t j = 0; j < d; ++j) {
    const uint32_t c = UnpackCode(codes, j, 4);
    const float diff = q[j] - (delta * static_cast<float>(c) + lower);
    acc += diff * diff;
  }
  return acc;
}

float IpDistU4(const float* q, const uint8_t* codes, float delta, float lower,
               size_t d) {
  float acc = 0.0f;
  for (size_t j = 0; j < d; ++j) {
    const uint32_t c = UnpackCode(codes, j, 4);
    acc += q[j] * (delta * static_cast<float>(c) + lower);
  }
  return -acc;
}

}  // namespace ref

// ---------------------------------------------------------------------------
// Backend selection.
// ---------------------------------------------------------------------------
namespace {

bool HostHasAvx2() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
         __builtin_cpu_supports("f16c");
#else
  return false;
#endif
}

bool HostHasAvx512() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512vl") &&
         __builtin_cpu_supports("avx512dq");
#else
  return false;
#endif
}

const KernelTable& SelectKernels() {
  const char* force = std::getenv("BLINK_SIMD");
  if (force != nullptr && *force == '\0') force = nullptr;
  if (force != nullptr && std::strcmp(force, "scalar") != 0 &&
      std::strcmp(force, "avx2") != 0 && std::strcmp(force, "avx512") != 0) {
    std::fprintf(stderr,
                 "blink: ignoring unknown BLINK_SIMD=\"%s\" "
                 "(expected scalar|avx2|avx512); auto-selecting\n",
                 force);
    force = nullptr;
  }
#if defined(BLINK_HAVE_AVX512_TU)
  if (HostHasAvx512() && HostHasAvx2() &&
      (force == nullptr || std::strcmp(force, "avx512") == 0)) {
    return Avx512Kernels();
  }
#endif
#if defined(BLINK_HAVE_AVX2_TU)
  if (HostHasAvx2() &&
      (force == nullptr || std::strcmp(force, "avx2") == 0 ||
       std::strcmp(force, "avx512") == 0)) {
    return Avx2Kernels();
  }
#endif
  (void)force;
  return ScalarKernels();
}

}  // namespace

const KernelTable& ActiveKernels() {
  static const KernelTable& table = SelectKernels();
  return table;
}

const char* BackendName() { return ActiveKernels().name; }

// ---------------------------------------------------------------------------
// Public entry points: forward through the selected table.
// ---------------------------------------------------------------------------
float L2Sqr(const float* a, const float* b, size_t d) {
  return ActiveKernels().l2_f32(a, b, d);
}
float IpDist(const float* a, const float* b, size_t d) {
  return ActiveKernels().ip_f32(a, b, d);
}
float L2SqrF16(const float* q, const Float16* v, size_t d) {
  return ActiveKernels().l2_f16(q, v, d);
}
float IpDistF16(const float* q, const Float16* v, size_t d) {
  return ActiveKernels().ip_f16(q, v, d);
}
float L2SqrU8(const float* q, const uint8_t* codes, float delta, float lower,
              size_t d) {
  return ActiveKernels().l2_u8(q, codes, delta, lower, d);
}
float IpDistU8(const float* q, const uint8_t* codes, float delta, float lower,
               size_t d) {
  return ActiveKernels().ip_u8(q, codes, delta, lower, d);
}
float L2SqrU4(const float* q, const uint8_t* codes, float delta, float lower,
              size_t d) {
  return ActiveKernels().l2_u4(q, codes, delta, lower, d);
}
float IpDistU4(const float* q, const uint8_t* codes, float delta, float lower,
               size_t d) {
  return ActiveKernels().ip_u4(q, codes, delta, lower, d);
}

float L2SqrU8Unfused(const float* q, const uint8_t* codes, float delta,
                     float lower, size_t d, float* scratch) {
  for (size_t j = 0; j < d; ++j) {
    scratch[j] = delta * static_cast<float>(codes[j]) + lower;
  }
  return L2Sqr(q, scratch, d);
}

// ---------------------------------------------------------------------------
// Static-dimensionality dispatch (BLINK_STATIC_DIMS in backends.h; the
// per-backend getters in kernels.inc switch over the same list).
// ---------------------------------------------------------------------------
bool HasStaticDim(size_t d) {
  switch (d) {
#define CASE(D) case D:
    BLINK_STATIC_DIMS(CASE)
#undef CASE
    return true;
    default:
      return false;
  }
}

DistF32Fn GetL2F32(size_t d) { return ActiveKernels().get_l2_f32(d); }
DistF32Fn GetIpF32(size_t d) { return ActiveKernels().get_ip_f32(d); }
DistF16Fn GetL2F16(size_t d) { return ActiveKernels().get_l2_f16(d); }
DistF16Fn GetIpF16(size_t d) { return ActiveKernels().get_ip_f16(d); }
DistU8Fn GetL2U8(size_t d) { return ActiveKernels().get_l2_u8(d); }
DistU8Fn GetIpU8(size_t d) { return ActiveKernels().get_ip_u8(d); }
DistU4Fn GetL2U4(size_t d) { return ActiveKernels().get_l2_u4(d); }
DistU4Fn GetIpU4(size_t d) { return ActiveKernels().get_ip_u4(d); }

DistF32Fn GetL2F32Dynamic() { return ActiveKernels().l2_f32; }
DistU8Fn GetL2U8Dynamic() { return ActiveKernels().l2_u8; }
DistU4Fn GetL2U4Dynamic() { return ActiveKernels().l2_u4; }
DistF16Fn GetL2F16Dynamic() { return ActiveKernels().l2_f16; }

}  // namespace blink::simd
