// Portable kernel backend: always compiled, no ISA flags, runs on any
// x86-64 (or non-x86) host. No BLINK_SIMD_BACKEND_* macro means kernels.inc
// compiles the scalar branch even when the whole build is compiled with
// -march=native (BLINK_NATIVE).
#define BLINK_SIMD_TABLE_FN ScalarKernels
#define BLINK_SIMD_TABLE_NAME "scalar"
#include "simd/kernels.inc"
