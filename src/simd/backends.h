// Internal: per-backend kernel tables for runtime SIMD dispatch.
//
// Each instruction-set backend (scalar, AVX2, AVX-512) is the same kernel
// source (kernels.inc) compiled in its own translation unit with per-file
// -march flags, exporting one KernelTable. distance.cc picks a table at
// startup with cpuid (overridable via BLINK_SIMD=scalar|avx2|avx512), so a
// plain x86-64 binary still runs everywhere while using the widest ISA the
// host supports. Not part of the public API — include simd/distance.h.
#pragma once

#include "simd/distance.h"

// The dimensions of every dataset family in the paper (Table 2). Single
// source of truth for the static-dimensionality specializations: consumed
// by MAKE_DISPATCH in kernels.inc (per backend) and HasStaticDim() in
// distance.cc. Extra arguments are forwarded to X after the dimension.
#define BLINK_STATIC_DIMS_APPLY(X, D, ...) X(D __VA_OPT__(, ) __VA_ARGS__)
#define BLINK_STATIC_DIMS(X, ...)                 \
  BLINK_STATIC_DIMS_APPLY(X, 25, __VA_ARGS__)     \
  BLINK_STATIC_DIMS_APPLY(X, 50, __VA_ARGS__)     \
  BLINK_STATIC_DIMS_APPLY(X, 96, __VA_ARGS__)     \
  BLINK_STATIC_DIMS_APPLY(X, 128, __VA_ARGS__)    \
  BLINK_STATIC_DIMS_APPLY(X, 200, __VA_ARGS__)    \
  BLINK_STATIC_DIMS_APPLY(X, 256, __VA_ARGS__)    \
  BLINK_STATIC_DIMS_APPLY(X, 768, __VA_ARGS__)    \
  BLINK_STATIC_DIMS_APPLY(X, 960, __VA_ARGS__)

namespace blink::simd {

struct KernelTable {
  const char* name;

  // Dynamic-dimension kernels (also what the static-dim getters fall back
  // to for un-specialized d).
  DistF32Fn l2_f32;
  DistF32Fn ip_f32;
  DistF16Fn l2_f16;
  DistF16Fn ip_f16;
  DistU8Fn l2_u8;
  DistU8Fn ip_u8;
  DistU4Fn l2_u4;
  DistU4Fn ip_u4;

  // Static-dimensionality getters: return a compile-time trip-count
  // specialization when d is instantiated, else the dynamic kernel above.
  DistF32Fn (*get_l2_f32)(size_t d);
  DistF32Fn (*get_ip_f32)(size_t d);
  DistF16Fn (*get_l2_f16)(size_t d);
  DistF16Fn (*get_ip_f16)(size_t d);
  DistU8Fn (*get_l2_u8)(size_t d);
  DistU8Fn (*get_ip_u8)(size_t d);
  DistU4Fn (*get_l2_u4)(size_t d);
  DistU4Fn (*get_ip_u4)(size_t d);
};

// One per backend TU. The AVX tables exist only when the build compiled
// their TU (BLINK_HAVE_AVX2_TU / BLINK_HAVE_AVX512_TU).
const KernelTable& ScalarKernels();
const KernelTable& Avx2Kernels();
const KernelTable& Avx512Kernels();

/// The table selected for this process (cpuid + BLINK_SIMD override).
const KernelTable& ActiveKernels();

}  // namespace blink::simd
