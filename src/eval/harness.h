// QPS/recall sweep harness following the ANN-benchmarks protocol the paper
// adopts (Sec. 6.3): for each runtime setting, run the full query batch
// (or one query at a time in single-query mode), report the best throughput
// of `best_of` runs, and pair it with the achieved k-recall@k.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "eval/interface.h"
#include "util/matrix.h"
#include "util/thread_pool.h"

namespace blink {

struct SweepPoint {
  SearchOptions params;
  double recall = 0.0;
  double qps = 0.0;
  double mean_latency_us = 0.0;  ///< per-query wall time (single-query mode)
};

struct HarnessOptions {
  size_t k = 10;
  int best_of = 3;            ///< paper reports best of 5 runs
  bool single_query = false;  ///< batch-of-1 protocol (Table 3 right half)
  ThreadPool* pool = nullptr;
};

/// Runs the index over every setting and returns one point per setting.
std::vector<SweepPoint> RunSweep(const SearchIndex& index, MatrixViewF queries,
                                 const Matrix<uint32_t>& ground_truth,
                                 std::span<const SearchOptions> settings,
                                 const HarnessOptions& opts);

/// Best QPS among points with recall >= target; linearly interpolates QPS
/// between the bracketing points when no measured point reaches the target
/// exactly. Returns 0 if the target is unreachable.
double QpsAtRecall(std::span<const SweepPoint> points, double target_recall);

/// Recall of the point whose recall is closest to (and >=) the target;
/// convenience for table printing.
const SweepPoint* PointAtRecall(std::span<const SweepPoint> points,
                                double target_recall);

/// Graph-index sweep: one SearchOptions per window value.
std::vector<SearchOptions> WindowSweep(std::initializer_list<uint32_t> windows);
std::vector<SearchOptions> WindowSweep(const std::vector<uint32_t>& windows);

/// IVF/ScaNN sweep: the cross product of probe counts and re-rank depths.
std::vector<SearchOptions> ProbeSweep(const std::vector<uint32_t>& nprobes,
                                      const std::vector<uint32_t>& reorder_ks);

/// Prints "recall qps" rows with a header, as the figures report them.
void PrintSweep(const std::string& label, std::span<const SweepPoint> points);

}  // namespace blink
