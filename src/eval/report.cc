#include "eval/report.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "api/calibrate.h"
#include "eval/metrics.h"
#include "util/stats.h"
#include "util/timer.h"

namespace blink {
namespace json {

const Value* Value::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  auto it = as_object().find(key);
  return it != as_object().end() ? &it->second : nullptr;
}

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(double d, std::string* out) {
  if (!std::isfinite(d)) d = 0.0;  // reports must stay parseable everywhere
  char buf[32];
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", d);
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", d);
  }
  *out += buf;
}

void DumpTo(const Value& v, int indent, std::string* out) {
  const std::string pad(2 * indent, ' ');
  const std::string pad_in(2 * (indent + 1), ' ');
  if (v.is_null()) {
    *out += "null";
  } else if (v.is_bool()) {
    *out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    AppendNumber(v.as_number(), out);
  } else if (v.is_string()) {
    AppendEscaped(v.as_string(), out);
  } else if (v.is_array()) {
    const Array& a = v.as_array();
    if (a.empty()) {
      *out += "[]";
      return;
    }
    *out += "[\n";
    for (size_t i = 0; i < a.size(); ++i) {
      *out += pad_in;
      DumpTo(a[i], indent + 1, out);
      if (i + 1 < a.size()) out->push_back(',');
      out->push_back('\n');
    }
    *out += pad + "]";
  } else {
    const Object& o = v.as_object();
    if (o.empty()) {
      *out += "{}";
      return;
    }
    *out += "{\n";
    size_t i = 0;
    for (const auto& [key, val] : o) {
      *out += pad_in;
      AppendEscaped(key, out);
      *out += ": ";
      DumpTo(val, indent + 1, out);
      if (++i < o.size()) out->push_back(',');
      out->push_back('\n');
    }
    *out += pad + "}";
  }
}

// Recursive-descent parser over [p, end).
class Parser {
 public:
  Parser(const char* p, const char* end) : p_(p), end_(end) {}

  Result<Value> Run() {
    Result<Value> v = ParseValue();
    if (!v.ok()) return v;
    SkipWs();
    if (p_ != end_) return Err("trailing characters after JSON value");
    return v;
  }

 private:
  Status Err(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error: " + what);
  }

  void SkipWs() {
    while (p_ != end_ && std::isspace(static_cast<unsigned char>(*p_))) ++p_;
  }

  bool Consume(char c) {
    SkipWs();
    if (p_ == end_ || *p_ != c) return false;
    ++p_;
    return true;
  }

  bool ConsumeWord(const char* w) {
    const char* q = p_;
    while (*w != '\0') {
      if (q == end_ || *q != *w) return false;
      ++q;
      ++w;
    }
    p_ = q;
    return true;
  }

  Result<Value> ParseValue() {
    SkipWs();
    if (p_ == end_) return Err("unexpected end of input");
    switch (*p_) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        Result<std::string> s = ParseString();
        if (!s.ok()) return s.status();
        return Value(std::move(s).value());
      }
      case 't':
        if (ConsumeWord("true")) return Value(true);
        return Err("bad literal");
      case 'f':
        if (ConsumeWord("false")) return Value(false);
        return Err("bad literal");
      case 'n':
        if (ConsumeWord("null")) return Value(nullptr);
        return Err("bad literal");
      default: return ParseNumber();
    }
  }

  Result<Value> ParseObject() {
    ++p_;  // '{'
    Object obj;
    SkipWs();
    if (Consume('}')) return Value(std::move(obj));
    while (true) {
      SkipWs();
      if (p_ == end_ || *p_ != '"') return Err("expected object key");
      Result<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      if (!Consume(':')) return Err("expected ':' after key");
      Result<Value> val = ParseValue();
      if (!val.ok()) return val;
      obj.insert_or_assign(std::move(key).value(), std::move(val).value());
      if (Consume(',')) continue;
      if (Consume('}')) return Value(std::move(obj));
      return Err("expected ',' or '}' in object");
    }
  }

  Result<Value> ParseArray() {
    ++p_;  // '['
    Array arr;
    SkipWs();
    if (Consume(']')) return Value(std::move(arr));
    while (true) {
      Result<Value> val = ParseValue();
      if (!val.ok()) return val;
      arr.push_back(std::move(val).value());
      if (Consume(',')) continue;
      if (Consume(']')) return Value(std::move(arr));
      return Err("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++p_;  // '"'
    std::string s;
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c != '\\') {
        s.push_back(c);
        continue;
      }
      if (p_ == end_) return Err("unterminated escape");
      char e = *p_++;
      switch (e) {
        case '"': s.push_back('"'); break;
        case '\\': s.push_back('\\'); break;
        case '/': s.push_back('/'); break;
        case 'b': s.push_back('\b'); break;
        case 'f': s.push_back('\f'); break;
        case 'n': s.push_back('\n'); break;
        case 'r': s.push_back('\r'); break;
        case 't': s.push_back('\t'); break;
        case 'u': {
          if (end_ - p_ < 4) return Err("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = *p_++;
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else return Err("bad \\u escape");
          }
          // The reports only emit \u for control characters; anything wider
          // degrades to '?' rather than growing a UTF-16 decoder here.
          s.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default: return Err("unknown escape");
      }
    }
    if (p_ == end_) return Err("unterminated string");
    ++p_;  // closing '"'
    return s;
  }

  Result<Value> ParseNumber() {
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    while (p_ != end_ &&
           (std::isdigit(static_cast<unsigned char>(*p_)) || *p_ == '.' ||
            *p_ == 'e' || *p_ == 'E' || *p_ == '-' || *p_ == '+')) {
      ++p_;
    }
    if (p_ == start) return Err("expected a value");
    char* parsed_end = nullptr;
    const std::string text(start, p_);
    const double d = std::strtod(text.c_str(), &parsed_end);
    if (parsed_end != text.c_str() + text.size()) return Err("bad number");
    return Value(d);
  }

  const char* p_;
  const char* end_;
};

}  // namespace

std::string Dump(const Value& value) {
  std::string out;
  DumpTo(value, 0, &out);
  out.push_back('\n');
  return out;
}

Result<Value> Parse(const std::string& text) {
  return Parser(text.data(), text.data() + text.size()).Run();
}

}  // namespace json

// --- report <-> JSON ------------------------------------------------------

namespace {

json::Object OptionsToJson(const SearchOptions& o) {
  json::Object obj;
  obj.emplace("window", static_cast<double>(o.window));
  obj.emplace("nprobe_shards", static_cast<double>(o.nprobe_shards));
  obj.emplace("rerank", o.rerank);
  obj.emplace("rerank_window", static_cast<double>(o.rerank_window));
  obj.emplace("nprobe", static_cast<double>(o.nprobe));
  obj.emplace("reorder_k", static_cast<double>(o.reorder_k));
  return obj;
}

double GetNum(const json::Value& v, const std::string& key, double dflt = 0) {
  const json::Value* m = v.Find(key);
  return m != nullptr && m->is_number() ? m->as_number() : dflt;
}

std::string GetStr(const json::Value& v, const std::string& key) {
  const json::Value* m = v.Find(key);
  return m != nullptr && m->is_string() ? m->as_string() : std::string();
}

bool GetBool(const json::Value& v, const std::string& key, bool dflt = false) {
  const json::Value* m = v.Find(key);
  return m != nullptr && m->is_bool() ? m->as_bool() : dflt;
}

SearchOptions OptionsFromJson(const json::Value& v) {
  SearchOptions o;
  o.window = static_cast<uint32_t>(GetNum(v, "window", o.window));
  o.nprobe_shards =
      static_cast<uint32_t>(GetNum(v, "nprobe_shards", o.nprobe_shards));
  o.rerank = GetBool(v, "rerank", o.rerank);
  o.rerank_window =
      static_cast<uint32_t>(GetNum(v, "rerank_window", o.rerank_window));
  o.nprobe = static_cast<uint32_t>(GetNum(v, "nprobe", o.nprobe));
  o.reorder_k = static_cast<uint32_t>(GetNum(v, "reorder_k", o.reorder_k));
  return o;
}

}  // namespace

std::string BenchReportToJson(const BenchReport& report) {
  json::Object root;
  root.emplace("schema_version", static_cast<double>(report.schema_version));
  root.emplace("generator", report.generator);
  json::Object ds;
  ds.emplace("name", report.dataset_name);
  ds.emplace("n", static_cast<double>(report.n));
  ds.emplace("nq", static_cast<double>(report.nq));
  ds.emplace("dim", static_cast<double>(report.dim));
  ds.emplace("metric", report.metric);
  ds.emplace("seed", static_cast<double>(report.seed));
  root.emplace("dataset", std::move(ds));
  root.emplace("k", static_cast<double>(report.k));
  root.emplace("target_recall", report.target_recall);
  root.emplace("threads", static_cast<double>(report.threads));
  json::Array flavors;
  for (const BenchFlavorReport& f : report.flavors) {
    json::Object o;
    o.emplace("name", f.name);
    o.emplace("build_seconds", f.build_seconds);
    o.emplace("memory_bytes", f.memory_bytes);
    o.emplace("calibrated", f.calibrated);
    o.emplace("calibration_error", f.calibration_error);
    o.emplace("options", OptionsToJson(f.options));
    o.emplace("rerank_window", static_cast<double>(f.rerank_window));
    o.emplace("primary_dim", static_cast<double>(f.primary_dim));
    o.emplace("recall", f.recall);
    o.emplace("qps", f.qps);
    o.emplace("p50_us", f.p50_us);
    o.emplace("p99_us", f.p99_us);
    o.emplace("dists_per_query", f.dists_per_query);
    flavors.push_back(std::move(o));
  }
  root.emplace("flavors", std::move(flavors));
  return json::Dump(root);
}

Result<BenchReport> ParseBenchReport(const std::string& text) {
  Result<json::Value> parsed = json::Parse(text);
  if (!parsed.ok()) return parsed.status();
  const json::Value& root = parsed.value();
  if (!root.is_object()) {
    return Status::InvalidArgument("bench report: top level is not an object");
  }
  const json::Value* version = root.Find("schema_version");
  if (version == nullptr || !version->is_number()) {
    return Status::InvalidArgument("bench report: missing schema_version");
  }
  BenchReport r;
  r.schema_version = static_cast<int>(version->as_number());
  r.generator = GetStr(root, "generator");
  if (const json::Value* ds = root.Find("dataset"); ds != nullptr) {
    r.dataset_name = GetStr(*ds, "name");
    r.n = static_cast<size_t>(GetNum(*ds, "n"));
    r.nq = static_cast<size_t>(GetNum(*ds, "nq"));
    r.dim = static_cast<size_t>(GetNum(*ds, "dim"));
    r.metric = GetStr(*ds, "metric");
    r.seed = static_cast<uint64_t>(GetNum(*ds, "seed"));
  }
  r.k = static_cast<size_t>(GetNum(root, "k", 10));
  r.target_recall = GetNum(root, "target_recall", 0.9);
  r.threads = static_cast<size_t>(GetNum(root, "threads", 1));
  const json::Value* flavors = root.Find("flavors");
  if (flavors == nullptr || !flavors->is_array()) {
    return Status::InvalidArgument("bench report: missing flavors array");
  }
  for (const json::Value& fv : flavors->as_array()) {
    BenchFlavorReport f;
    f.name = GetStr(fv, "name");
    if (f.name.empty()) {
      return Status::InvalidArgument("bench report: flavor without a name");
    }
    f.build_seconds = GetNum(fv, "build_seconds");
    f.memory_bytes = GetNum(fv, "memory_bytes");
    f.calibrated = GetBool(fv, "calibrated");
    f.calibration_error = GetStr(fv, "calibration_error");
    if (const json::Value* o = fv.Find("options"); o != nullptr) {
      f.options = OptionsFromJson(*o);
    }
    // Additive v1 keys: reports written before them parse with 0 here.
    f.rerank_window = static_cast<uint32_t>(GetNum(fv, "rerank_window"));
    f.primary_dim = static_cast<size_t>(GetNum(fv, "primary_dim"));
    f.recall = GetNum(fv, "recall");
    f.qps = GetNum(fv, "qps");
    f.p50_us = GetNum(fv, "p50_us");
    f.p99_us = GetNum(fv, "p99_us");
    f.dists_per_query = GetNum(fv, "dists_per_query");
    r.flavors.push_back(std::move(f));
  }
  return r;
}

// --- measurement ----------------------------------------------------------

BenchFlavorReport MeasureFlavor(const std::string& name, const Index& index,
                                double build_seconds, MatrixViewF queries,
                                const Matrix<uint32_t>& groundtruth,
                                const BenchRunConfig& config) {
  BenchFlavorReport f;
  f.name = name;
  f.build_seconds = build_seconds;
  f.memory_bytes = static_cast<double>(index.memory_bytes());
  const size_t nq = queries.rows;
  const size_t k = config.k;

  // Calibrate on the first half, evaluate on the second — the tuned options
  // must generalize past the sample they were fitted on. Tiny batches skip
  // the split rather than calibrating on nothing.
  const size_t ns = nq >= 4 ? nq / 2 : nq;
  const size_t eval_lo = nq >= 4 ? ns : 0;
  const size_t ne = nq - eval_lo;
  MatrixViewF sample(queries.row(0), ns, queries.cols);
  MatrixViewF eval(queries.row(eval_lo), ne, queries.cols);
  Matrix<uint32_t> gt_sample(ns, groundtruth.cols());
  Matrix<uint32_t> gt_eval(ne, groundtruth.cols());
  for (size_t i = 0; i < ns; ++i) {
    std::copy_n(groundtruth.row(i), groundtruth.cols(), gt_sample.row(i));
  }
  for (size_t i = 0; i < ne; ++i) {
    std::copy_n(groundtruth.row(eval_lo + i), groundtruth.cols(),
                gt_eval.row(i));
  }

  CalibrationTarget target;
  target.target_recall = config.target_recall;
  target.sample_queries = sample;
  target.groundtruth = &gt_sample;
  target.k = k;
  target.max_window = config.max_window;
  target.pool = config.pool;
  Result<SearchOptions> calibrated = index.Calibrate(target);
  if (calibrated.ok()) {
    f.calibrated = true;
    f.options = calibrated.value();
  } else {
    f.calibrated = false;
    f.calibration_error = calibrated.status().ToString();
    f.options = SearchOptions{};  // measured anyway, at the defaults
  }
  f.rerank_window = f.options.rerank_window;
  if (config.filter != nullptr) {
    f.options.filter = config.filter;
    f.options.filter_strategy = config.filter_strategy;
    if (config.filtered_groundtruth != nullptr) {
      for (size_t i = 0; i < ne; ++i) {
        std::copy_n(config.filtered_groundtruth->row(eval_lo + i),
                    config.filtered_groundtruth->cols(), gt_eval.row(i));
      }
    }
  }
  // leanvec_dim is only resolved non-zero for the LeanVec kinds, where it
  // is the dimensionality traversal actually pays; everything else searches
  // the full d.
  f.primary_dim =
      index.spec().leanvec_dim > 0 ? index.spec().leanvec_dim : index.dim();

  // Batch throughput: best of `best_of` runs (the harness protocol). The
  // search is deterministic, so stats from the last rep stand for all.
  Matrix<uint32_t> ids(ne, k);
  BatchStats stats;
  double best_seconds = -1.0;
  for (int rep = 0; rep < std::max(1, config.best_of); ++rep) {
    stats = BatchStats{};
    Timer t;
    index.SearchBatchEx(eval, k, f.options, ids.data(), nullptr, &stats,
                        config.pool);
    const double s = t.Seconds();
    if (best_seconds < 0.0 || s < best_seconds) best_seconds = s;
  }
  f.recall = MeanRecallAtK(ids, gt_eval, k);
  f.qps = best_seconds > 0.0 ? static_cast<double>(ne) / best_seconds : 0.0;
  f.dists_per_query = ne > 0 ? static_cast<double>(stats.distance_computations) /
                                   static_cast<double>(ne)
                             : 0.0;

  // Single-query latency percentiles through a pooled searcher (the serving
  // path's unit of work).
  std::unique_ptr<Searcher> searcher = index.MakeSearcher();
  std::vector<double> micros;
  micros.reserve(ne);
  std::vector<uint32_t> one_ids(k);
  std::vector<float> one_dists(k);
  for (size_t qi = 0; qi < ne; ++qi) {
    Timer t;
    searcher->Search(eval.row(qi), k, f.options, one_ids.data(),
                     one_dists.data(), nullptr);
    micros.push_back(t.Micros());
  }
  f.p50_us = Percentile(micros, 50.0);
  f.p99_us = Percentile(micros, 99.0);
  return f;
}

// --- the baseline gate ----------------------------------------------------

namespace {

std::string Fmt(const char* fmt, double a, double b) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, a, b);
  return buf;
}

}  // namespace

GateResult CompareToBaseline(const BenchReport& current,
                             const BenchReport& baseline,
                             const BaselineGate& gate) {
  GateResult out;
  if (current.schema_version != baseline.schema_version) {
    out.pass = false;
    out.failures.push_back(
        "schema_version mismatch (current " +
        std::to_string(current.schema_version) + ", baseline " +
        std::to_string(baseline.schema_version) +
        "): regenerate bench/baseline.json");
    return out;
  }
  for (const BenchFlavorReport& b : baseline.flavors) {
    const BenchFlavorReport* c = nullptr;
    for (const BenchFlavorReport& f : current.flavors) {
      if (f.name == b.name) {
        c = &f;
        break;
      }
    }
    if (c == nullptr) {
      out.pass = false;
      out.failures.push_back("flavor '" + b.name +
                             "' is in the baseline but missing from the "
                             "current report");
      continue;
    }
    // A baseline machine that overshot the target must not tighten the
    // gate, hence the min() with the configured target.
    const double floor =
        std::min(b.recall, current.target_recall) - gate.recall_tolerance;
    if (c->recall < floor) {
      out.pass = false;
      out.failures.push_back(
          b.name + ": recall regressed " +
          Fmt("(current %.4f < floor %.4f)", c->recall, floor));
    }
    if (b.qps > 0.0 && c->qps < gate.qps_warn_ratio * b.qps) {
      out.warnings.push_back(
          b.name + ": QPS dropped " +
          Fmt("(current %.0f vs baseline %.0f)", c->qps, b.qps));
    }
  }
  for (const BenchFlavorReport& f : current.flavors) {
    bool known = false;
    for (const BenchFlavorReport& b : baseline.flavors) {
      if (b.name == f.name) {
        known = true;
        break;
      }
    }
    if (!known) {
      out.warnings.push_back("flavor '" + f.name +
                             "' is new (not in the baseline)");
    }
  }
  return out;
}

}  // namespace blink
