// Accuracy metrics: k-recall@k (paper Sec. 2) and Ranked-Bias Overlap
// (Webber et al. [56], used in the paper's Fig. 6 to compare candidate-list
// orderings under compression).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "util/matrix.h"

namespace blink {

/// |S ∩ Gt| / k for one query. Entries equal to UINT32_MAX are ignored.
inline double RecallAtK(std::span<const uint32_t> result,
                        std::span<const uint32_t> ground_truth, size_t k) {
  std::unordered_set<uint32_t> gt;
  gt.reserve(k * 2);
  for (size_t j = 0; j < k && j < ground_truth.size(); ++j) {
    if (ground_truth[j] != UINT32_MAX) gt.insert(ground_truth[j]);
  }
  size_t hits = 0;
  for (size_t j = 0; j < k && j < result.size(); ++j) {
    if (result[j] != UINT32_MAX && gt.count(result[j])) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

/// Mean k-recall@k over a batch (both matrices are nq x >=k, row-major).
inline double MeanRecallAtK(const Matrix<uint32_t>& results,
                            const Matrix<uint32_t>& ground_truth, size_t k) {
  const size_t nq = results.rows();
  if (nq == 0) return 0.0;
  double sum = 0.0;
  for (size_t qi = 0; qi < nq; ++qi) {
    sum += RecallAtK({results.row(qi), std::min(k, results.cols())},
                     {ground_truth.row(qi), std::min(k, ground_truth.cols())},
                     k);
  }
  return sum / static_cast<double>(nq);
}

/// Extrapolated Ranked-Bias Overlap between two rankings, with persistence
/// parameter p in (0, 1). Implements RBO_EXT from Webber et al. for two
/// equal-depth lists:
///   RBO = (1-p)/p * [ sum_{d=1..D} p^d * A_d ] + p^D * A_D,
/// where A_d is the agreement (overlap/d) at depth d. Higher = more similar
/// orderings; identical lists give 1.0.
inline double RankBiasedOverlap(std::span<const uint32_t> a,
                                std::span<const uint32_t> b, double p = 0.98) {
  const size_t depth = std::min(a.size(), b.size());
  if (depth == 0) return 1.0;
  std::unordered_set<uint32_t> seen_a, seen_b;
  seen_a.reserve(depth * 2);
  seen_b.reserve(depth * 2);
  size_t overlap = 0;
  double sum = 0.0;
  double pd = 1.0;  // p^d, starting at d=1 below
  double agreement = 0.0;
  for (size_t d = 1; d <= depth; ++d) {
    const uint32_t xa = a[d - 1], xb = b[d - 1];
    if (xa == xb) {
      ++overlap;
    } else {
      if (seen_b.count(xa)) ++overlap;
      if (seen_a.count(xb)) ++overlap;
      seen_a.insert(xa);
      seen_b.insert(xb);
    }
    agreement = static_cast<double>(overlap) / static_cast<double>(d);
    pd *= p;
    sum += pd * agreement;
  }
  return (1.0 - p) / p * sum + pd * agreement;
}

}  // namespace blink
