#include "eval/harness.h"

#include <algorithm>
#include <cstdio>

#include "eval/metrics.h"
#include "util/timer.h"

namespace blink {

std::vector<SweepPoint> RunSweep(const SearchIndex& index, MatrixViewF queries,
                                 const Matrix<uint32_t>& ground_truth,
                                 std::span<const SearchOptions> settings,
                                 const HarnessOptions& opts) {
  std::vector<SweepPoint> points;
  points.reserve(settings.size());
  const size_t nq = queries.rows;
  Matrix<uint32_t> ids(nq, opts.k);

  for (const SearchOptions& params : settings) {
    SweepPoint pt;
    pt.params = params;
    double best_seconds = -1.0;
    const int runs = std::max(1, opts.best_of);
    for (int r = 0; r < runs; ++r) {
      Timer t;
      if (opts.single_query) {
        // Batch-of-1 protocol: latency path, no batch parallelism.
        for (size_t qi = 0; qi < nq; ++qi) {
          MatrixViewF one(queries.row(qi), 1, queries.cols);
          index.SearchBatch(one, opts.k, params, ids.row(qi), nullptr);
        }
      } else {
        index.SearchBatch(queries, opts.k, params, ids.data(), opts.pool);
      }
      const double s = t.Seconds();
      if (best_seconds < 0.0 || s < best_seconds) best_seconds = s;
    }
    pt.recall = MeanRecallAtK(ids, ground_truth, opts.k);
    pt.qps = best_seconds > 0.0 ? static_cast<double>(nq) / best_seconds : 0.0;
    pt.mean_latency_us =
        nq > 0 ? best_seconds * 1e6 / static_cast<double>(nq) : 0.0;
    points.push_back(pt);
  }
  return points;
}

namespace {
/// Pareto frontier in (recall asc, qps desc): for interpolation we want the
/// best qps achievable at each recall level.
std::vector<SweepPoint> ParetoByRecall(std::span<const SweepPoint> points) {
  std::vector<SweepPoint> sorted(points.begin(), points.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const SweepPoint& a, const SweepPoint& b) {
              return a.recall < b.recall;
            });
  // Keep points not dominated by a higher-recall, higher-qps point.
  std::vector<SweepPoint> frontier;
  double best_qps_right = -1.0;
  for (size_t i = sorted.size(); i-- > 0;) {
    if (sorted[i].qps > best_qps_right) {
      frontier.push_back(sorted[i]);
      best_qps_right = sorted[i].qps;
    }
  }
  std::reverse(frontier.begin(), frontier.end());  // ascending recall
  return frontier;
}
}  // namespace

double QpsAtRecall(std::span<const SweepPoint> points, double target_recall) {
  const auto frontier = ParetoByRecall(points);
  if (frontier.empty()) return 0.0;
  // Best QPS among points meeting the target: on the frontier, recall
  // ascends while qps descends, so it is the first point >= target.
  for (const SweepPoint& p : frontier) {
    if (p.recall >= target_recall) {
      // Interpolate against the previous (faster, lower-recall) point for a
      // smoother estimate when one exists.
      return p.qps;
    }
  }
  return 0.0;
}

const SweepPoint* PointAtRecall(std::span<const SweepPoint> points,
                                double target_recall) {
  const SweepPoint* best = nullptr;
  for (const SweepPoint& p : points) {
    if (p.recall >= target_recall && (best == nullptr || p.qps > best->qps)) {
      best = &p;
    }
  }
  return best;
}

std::vector<SearchOptions> WindowSweep(std::initializer_list<uint32_t> windows) {
  return WindowSweep(std::vector<uint32_t>(windows));
}

std::vector<SearchOptions> WindowSweep(const std::vector<uint32_t>& windows) {
  std::vector<SearchOptions> out;
  out.reserve(windows.size());
  for (uint32_t w : windows) {
    SearchOptions p;
    p.window = w;
    out.push_back(p);
  }
  return out;
}

std::vector<SearchOptions> ProbeSweep(const std::vector<uint32_t>& nprobes,
                                      const std::vector<uint32_t>& reorder_ks) {
  std::vector<SearchOptions> out;
  out.reserve(nprobes.size() * reorder_ks.size());
  for (uint32_t np : nprobes) {
    for (uint32_t rk : reorder_ks) {
      SearchOptions p;
      p.nprobe = np;
      p.reorder_k = rk;
      out.push_back(p);
    }
  }
  return out;
}

void PrintSweep(const std::string& label, std::span<const SweepPoint> points) {
  std::printf("# %s\n", label.c_str());
  std::printf("%-10s %-12s %-12s\n", "recall", "QPS", "latency_us");
  for (const SweepPoint& p : points) {
    std::printf("%-10.4f %-12.1f %-12.2f\n", p.recall, p.qps, p.mean_latency_us);
  }
}

}  // namespace blink
