// Type-erased index interface shared by OG-LVQ and every baseline, so the
// evaluation harness can sweep them under identical conditions (the paper's
// same-harness ablation methodology, Sec. 6.7).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/matrix.h"
#include "util/thread_pool.h"

namespace blink {

/// Runtime (per-query-batch) knobs. Each index reads the fields relevant to
/// it; sweeping `window` traces a graph index's QPS/recall Pareto curve,
/// sweeping (nprobe, reorder_k) traces an IVF/ScaNN curve.
struct RuntimeParams {
  uint32_t window = 32;          ///< graph W / HNSW ef-search
  bool rerank = true;            ///< two-level final re-ranking (LVQ-B1xB2)
  uint32_t nprobe = 8;           ///< IVF/ScaNN: partitions probed
  uint32_t reorder_k = 0;        ///< IVF/ScaNN: full-precision re-rank depth
  uint32_t prefetch_offset = 0;  ///< graph prefetcher lookahead offset
  uint32_t prefetch_step = 2;    ///< graph prefetcher vectors/iteration
  bool use_visited_set = true;   ///< graph visited-set ablation (see search.h)
};

/// A built, queryable ANN index.
class SearchIndex {
 public:
  virtual ~SearchIndex() = default;

  virtual std::string name() const = 0;
  virtual size_t size() const = 0;
  virtual size_t dim() const = 0;
  /// Resident bytes of everything needed to serve queries.
  virtual size_t memory_bytes() const = 0;

  /// Finds the k nearest neighbors of each query row; writes row-major ids
  /// (queries.rows x k). When fewer than k results exist, the remainder is
  /// filled with UINT32_MAX. Thread-safe; batch is parallelized across
  /// `pool` when provided (single-threaded otherwise).
  virtual void SearchBatch(MatrixViewF queries, size_t k,
                           const RuntimeParams& params, uint32_t* ids,
                           ThreadPool* pool = nullptr) const = 0;
};

}  // namespace blink
