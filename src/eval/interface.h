// Type-erased index interface shared by OG-LVQ and every baseline, so the
// evaluation harness can sweep them under identical conditions (the paper's
// same-harness ablation methodology, Sec. 6.7).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "filter/predicate.h"
#include "util/matrix.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace blink {

/// What an index can do, as a bitmask. Declared here (not in api/index.h)
/// because SearchOptions defaulting is capability-aware: knobs that a flavor
/// cannot honor are neutralized in one place instead of being silently
/// ignored at N call sites.
enum : uint32_t {
  kCapSearch = 1u << 0,       ///< SearchBatch / SearchBatchEx / MakeSearcher
  kCapSave = 1u << 1,         ///< Save(path) round-trips through Open
  kCapInsert = 1u << 2,       ///< Insert(vec)
  kCapDelete = 1u << 3,       ///< Delete(id)
  kCapConsolidate = 1u << 4,  ///< Consolidate()
  kCapShardProbe = 1u << 5,   ///< honors SearchOptions::nprobe_shards
  kCapRerank = 1u << 6,       ///< two-level re-ranking (honors rerank knobs)
  kCapFilter = 1u << 7,       ///< metadata attached; honors SearchOptions
                              ///< filter fields (src/filter/, DESIGN.md D15)
};
using Capabilities = uint32_t;

/// Named search-time options (per query batch). Each index reads the fields
/// relevant to it; sweeping `window` traces a graph index's QPS/recall
/// Pareto curve, sweeping (nprobe, reorder_k) traces an IVF/ScaNN curve.
/// `Index::Calibrate` searches this space for the cheapest configuration
/// meeting a recall target (api/calibrate.h).
struct SearchOptions {
  uint32_t window = 32;          ///< graph W / HNSW ef-search
  bool rerank = true;            ///< two-level final re-ranking (LVQ-B1xB2)
  uint32_t nprobe = 8;           ///< IVF/ScaNN: partitions probed
  uint32_t reorder_k = 0;        ///< IVF/ScaNN: full-precision re-rank depth
  uint32_t nprobe_shards = 0;    ///< sharded index: shards probed (0 = all)
  uint32_t prefetch_offset = 0;  ///< graph prefetcher lookahead offset
  uint32_t prefetch_step = 2;    ///< graph prefetcher vectors/iteration
  bool use_visited_set = true;   ///< graph visited-set ablation (see search.h)
  /// Two-level re-rank depth: how many of the window's candidates are
  /// re-scored at full precision before the top-k selection. 0 = the whole
  /// window (the paper's Sec. 3.2 gather; the historical behavior); smaller
  /// values trade residual-gather work for recall. Clamped to >= k and
  /// ignored when `rerank` is false or the storage has no second level.
  uint32_t rerank_window = 0;

  /// Metadata predicate restricting results (null = unfiltered). Held by
  /// shared_ptr so the options struct stays cheaply copyable through the
  /// serving queue. Indices without kCapFilter fail *closed* on a filtered
  /// query (all-padded rows) — validate with ValidateFor at boundaries so
  /// that misconfiguration surfaces as a Status instead.
  std::shared_ptr<const Predicate> filter;
  /// Execution strategy for a filtered query; kAuto picks post-filter vs
  /// in-search push-down by estimated selectivity (DESIGN.md D15).
  FilterStrategy filter_strategy = FilterStrategy::kAuto;
  /// Adaptive widening cap for filtered searches: the window grows
  /// geometrically until k survivors are found or it reaches this cap.
  /// 0 = auto (the index size, clamped to 2^20). Explicit values are
  /// floored at max(window, k) by ResolvedFor.
  uint32_t filter_widen_cap = 0;

  /// OK iff every knob is inside its representable range. Search paths do
  /// not validate (they clamp); call this at configuration boundaries (CLI
  /// parsing, calibration, serving setup).
  Status Validate() const {
    if (window == 0) {
      return Status::InvalidArgument("SearchOptions::window must be >= 1");
    }
    if (window > (1u << 20)) {
      return Status::InvalidArgument("SearchOptions::window out of range (> 2^20)");
    }
    if (rerank_window > window) {
      return Status::InvalidArgument(
          "SearchOptions::rerank_window (" + std::to_string(rerank_window) +
          ") exceeds window (" + std::to_string(window) + ")");
    }
    if (nprobe == 0) {
      return Status::InvalidArgument("SearchOptions::nprobe must be >= 1");
    }
    if (filter != nullptr) {
      if (filter_widen_cap != 0 && filter_widen_cap < window) {
        return Status::InvalidArgument(
            "SearchOptions::filter_widen_cap (" +
            std::to_string(filter_widen_cap) + ") below the window floor (" +
            std::to_string(window) + ")");
      }
      if (filter_widen_cap > (1u << 20)) {
        return Status::InvalidArgument(
            "SearchOptions::filter_widen_cap out of range (> 2^20)");
      }
    }
    return Status::OK();
  }

  /// Validate() plus capability checks that cannot be neutralized silently:
  /// a filter on an index without kCapFilter would otherwise fail closed
  /// (all-padded rows), so it is rejected here as Unsupported. Use at every
  /// boundary where the target index's capabilities are known.
  Status ValidateFor(Capabilities caps) const {
    BLINK_RETURN_NOT_OK(Validate());
    if (filter != nullptr && (caps & kCapFilter) == 0) {
      return Status::Unsupported(
          "SearchOptions::filter set but the index has no metadata "
          "attached (kCapFilter)");
    }
    return Status::OK();
  }

  /// The options with capability-unaware knobs neutralized: nprobe_shards
  /// falls back to 0 (all shards) without kCapShardProbe, the re-rank pair
  /// is disabled without kCapRerank, and rerank_window is clamped into
  /// [k, window] when set. The one place flavor-specific defaulting lives.
  SearchOptions ResolvedFor(Capabilities caps, size_t k) const {
    SearchOptions r = *this;
    r.window = std::max<uint32_t>(r.window, static_cast<uint32_t>(k));
    if ((caps & kCapShardProbe) == 0) r.nprobe_shards = 0;
    if ((caps & kCapRerank) == 0) {
      r.rerank = false;
      r.rerank_window = 0;
    } else if (r.rerank_window != 0) {
      r.rerank_window = std::clamp<uint32_t>(
          r.rerank_window, static_cast<uint32_t>(k), r.window);
    }
    // The filter itself is never dropped here: silently returning
    // unfiltered neighbors would violate the predicate contract. Flavors
    // without kCapFilter fail closed; ValidateFor rejects earlier.
    if (r.filter != nullptr && r.filter_widen_cap != 0) {
      r.filter_widen_cap = std::max(r.filter_widen_cap, r.window);
    }
    return r;
  }
};

/// Deprecated name of SearchOptions, kept so out-of-tree callers compile;
/// new code should spell SearchOptions.
using RuntimeParams = SearchOptions;

/// Aggregate work counters of a batch (or of one searcher's lifetime).
/// Indices that do not track a counter leave it at zero.
struct BatchStats {
  uint64_t distance_computations = 0;
  uint64_t hops = 0;  ///< graph nodes expanded
};

/// Padding sentinels for queries with fewer than k reachable results: the
/// id slot gets kInvalidId and the paired distance slot +infinity, on every
/// search path (Search, SearchBatch, SearchBatchEx, Searcher).
inline constexpr uint32_t kInvalidId = UINT32_MAX;
inline constexpr float kInvalidDist = std::numeric_limits<float>::infinity();

/// Copies `count` results into row-major output, padding to exactly k per
/// the contract above. `src_dists` must hold `count` entries when `dists`
/// is non-null. The single implementation of the padding contract — every
/// index/searcher path funnels through it.
inline void WritePaddedRow(const uint32_t* src_ids, const float* src_dists,
                           size_t count, size_t k, uint32_t* ids,
                           float* dists) {
  for (size_t j = 0; j < k; ++j) {
    ids[j] = j < count ? src_ids[j] : kInvalidId;
  }
  if (dists != nullptr) {
    for (size_t j = 0; j < k; ++j) {
      dists[j] = j < count ? src_dists[j] : kInvalidDist;
    }
  }
}

/// Shared partition-and-reduce loop of every batch-search path: splits
/// [0, nq) into at most `max_slices` contiguous slices, runs
/// `slice_fn(slice_index, lo, hi, &slice_stats)` for each — across `pool`
/// when more than one slice, inline otherwise — and reduces the per-slice
/// stats into `*stats` (may be null).
template <typename SliceFn>
inline void RunBatchSlices(size_t nq, size_t max_slices, ThreadPool* pool,
                           BatchStats* stats, SliceFn&& slice_fn) {
  if (nq == 0) return;
  const size_t num_slices =
      std::max<size_t>(1, std::min(max_slices, nq));
  std::vector<BatchStats> slice_stats(num_slices);
  auto run = [&](size_t w) {
    const size_t lo = nq * w / num_slices;
    const size_t hi = nq * (w + 1) / num_slices;
    slice_fn(w, lo, hi, &slice_stats[w]);
  };
  if (num_slices > 1 && pool != nullptr) {
    pool->ParallelFor(num_slices, run);
  } else {
    for (size_t w = 0; w < num_slices; ++w) run(w);
  }
  if (stats != nullptr) {
    for (const BatchStats& s : slice_stats) {
      stats->distance_computations += s.distance_computations;
      stats->hops += s.hops;
    }
  }
}

/// Reusable single-query searcher: per-thread search state (visited epochs,
/// candidate buffer, query scratch) survives across calls, which is where
/// serving throughput comes from (see serve/engine.h). Not thread-safe —
/// one Searcher per worker thread.
class Searcher {
 public:
  virtual ~Searcher() = default;

  /// Writes exactly k ids (and, when `dists` is non-null, k distances) for
  /// one query, padded per the contract above. When `stats` is non-null the
  /// query's work counters are accumulated (+=) into it.
  virtual void Search(const float* query, size_t k, const SearchOptions& params,
                      uint32_t* ids, float* dists, BatchStats* stats) = 0;
};

/// A built, queryable ANN index.
class SearchIndex {
 public:
  virtual ~SearchIndex() = default;

  virtual std::string name() const = 0;
  virtual size_t size() const = 0;
  virtual size_t dim() const = 0;
  /// Resident bytes of everything needed to serve queries.
  virtual size_t memory_bytes() const = 0;

  /// Finds the k nearest neighbors of each query row; writes row-major ids
  /// (queries.rows x k). When fewer than k results exist, the remainder is
  /// filled with kInvalidId. Thread-safe; batch is parallelized across
  /// `pool` when provided (single-threaded otherwise).
  virtual void SearchBatch(MatrixViewF queries, size_t k,
                           const SearchOptions& params, uint32_t* ids,
                           ThreadPool* pool = nullptr) const = 0;

  /// Extended batch search: additionally reports per-query distances
  /// (row-major queries.rows x k, padded with +inf) and aggregate work
  /// counters. Either of `dists` / `stats` may be null. The default
  /// implementation forwards to SearchBatch, fills `dists` with NaN
  /// ("unavailable") and leaves `stats` untouched; indices that track these
  /// (VamanaIndex, the dynamic index) override it.
  virtual void SearchBatchEx(MatrixViewF queries, size_t k,
                             const SearchOptions& params, uint32_t* ids,
                             float* dists, BatchStats* stats,
                             ThreadPool* pool = nullptr) const {
    SearchBatch(queries, k, params, ids, pool);
    if (dists != nullptr) {
      const size_t total = queries.rows * k;
      for (size_t i = 0; i < total; ++i) {
        dists[i] = std::numeric_limits<float>::quiet_NaN();
      }
    }
    (void)stats;
  }

  /// Creates a reusable per-thread searcher. The default adapter runs
  /// batches of one through SearchBatchEx (correct but without scratch
  /// reuse); indices with per-query state override this to return a
  /// searcher that keeps that state warm.
  virtual std::unique_ptr<Searcher> MakeSearcher() const;
};

namespace detail {

/// MakeSearcher() fallback: a stateless adapter over SearchBatchEx.
class BatchOfOneSearcher : public Searcher {
 public:
  explicit BatchOfOneSearcher(const SearchIndex* index) : index_(index) {}

  void Search(const float* query, size_t k, const SearchOptions& params,
              uint32_t* ids, float* dists, BatchStats* stats) override {
    MatrixViewF one(query, 1, index_->dim());
    index_->SearchBatchEx(one, k, params, ids, dists, stats, nullptr);
  }

 private:
  const SearchIndex* index_;
};

}  // namespace detail

inline std::unique_ptr<Searcher> SearchIndex::MakeSearcher() const {
  return std::make_unique<detail::BatchOfOneSearcher>(this);
}

}  // namespace blink
