// Type-erased index interface shared by OG-LVQ and every baseline, so the
// evaluation harness can sweep them under identical conditions (the paper's
// same-harness ablation methodology, Sec. 6.7).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "util/matrix.h"
#include "util/thread_pool.h"

namespace blink {

/// Runtime (per-query-batch) knobs. Each index reads the fields relevant to
/// it; sweeping `window` traces a graph index's QPS/recall Pareto curve,
/// sweeping (nprobe, reorder_k) traces an IVF/ScaNN curve.
struct RuntimeParams {
  uint32_t window = 32;          ///< graph W / HNSW ef-search
  bool rerank = true;            ///< two-level final re-ranking (LVQ-B1xB2)
  uint32_t nprobe = 8;           ///< IVF/ScaNN: partitions probed
  uint32_t reorder_k = 0;        ///< IVF/ScaNN: full-precision re-rank depth
  uint32_t nprobe_shards = 0;    ///< sharded index: shards probed (0 = all)
  uint32_t prefetch_offset = 0;  ///< graph prefetcher lookahead offset
  uint32_t prefetch_step = 2;    ///< graph prefetcher vectors/iteration
  bool use_visited_set = true;   ///< graph visited-set ablation (see search.h)
};

/// Aggregate work counters of a batch (or of one searcher's lifetime).
/// Indices that do not track a counter leave it at zero.
struct BatchStats {
  uint64_t distance_computations = 0;
  uint64_t hops = 0;  ///< graph nodes expanded
};

/// Padding sentinels for queries with fewer than k reachable results: the
/// id slot gets kInvalidId and the paired distance slot +infinity, on every
/// search path (Search, SearchBatch, SearchBatchEx, Searcher).
inline constexpr uint32_t kInvalidId = UINT32_MAX;
inline constexpr float kInvalidDist = std::numeric_limits<float>::infinity();

/// Copies `count` results into row-major output, padding to exactly k per
/// the contract above. `src_dists` must hold `count` entries when `dists`
/// is non-null. The single implementation of the padding contract — every
/// index/searcher path funnels through it.
inline void WritePaddedRow(const uint32_t* src_ids, const float* src_dists,
                           size_t count, size_t k, uint32_t* ids,
                           float* dists) {
  for (size_t j = 0; j < k; ++j) {
    ids[j] = j < count ? src_ids[j] : kInvalidId;
  }
  if (dists != nullptr) {
    for (size_t j = 0; j < k; ++j) {
      dists[j] = j < count ? src_dists[j] : kInvalidDist;
    }
  }
}

/// Shared partition-and-reduce loop of every batch-search path: splits
/// [0, nq) into at most `max_slices` contiguous slices, runs
/// `slice_fn(slice_index, lo, hi, &slice_stats)` for each — across `pool`
/// when more than one slice, inline otherwise — and reduces the per-slice
/// stats into `*stats` (may be null).
template <typename SliceFn>
inline void RunBatchSlices(size_t nq, size_t max_slices, ThreadPool* pool,
                           BatchStats* stats, SliceFn&& slice_fn) {
  if (nq == 0) return;
  const size_t num_slices =
      std::max<size_t>(1, std::min(max_slices, nq));
  std::vector<BatchStats> slice_stats(num_slices);
  auto run = [&](size_t w) {
    const size_t lo = nq * w / num_slices;
    const size_t hi = nq * (w + 1) / num_slices;
    slice_fn(w, lo, hi, &slice_stats[w]);
  };
  if (num_slices > 1 && pool != nullptr) {
    pool->ParallelFor(num_slices, run);
  } else {
    for (size_t w = 0; w < num_slices; ++w) run(w);
  }
  if (stats != nullptr) {
    for (const BatchStats& s : slice_stats) {
      stats->distance_computations += s.distance_computations;
      stats->hops += s.hops;
    }
  }
}

/// Reusable single-query searcher: per-thread search state (visited epochs,
/// candidate buffer, query scratch) survives across calls, which is where
/// serving throughput comes from (see serve/engine.h). Not thread-safe —
/// one Searcher per worker thread.
class Searcher {
 public:
  virtual ~Searcher() = default;

  /// Writes exactly k ids (and, when `dists` is non-null, k distances) for
  /// one query, padded per the contract above. When `stats` is non-null the
  /// query's work counters are accumulated (+=) into it.
  virtual void Search(const float* query, size_t k, const RuntimeParams& params,
                      uint32_t* ids, float* dists, BatchStats* stats) = 0;
};

/// A built, queryable ANN index.
class SearchIndex {
 public:
  virtual ~SearchIndex() = default;

  virtual std::string name() const = 0;
  virtual size_t size() const = 0;
  virtual size_t dim() const = 0;
  /// Resident bytes of everything needed to serve queries.
  virtual size_t memory_bytes() const = 0;

  /// Finds the k nearest neighbors of each query row; writes row-major ids
  /// (queries.rows x k). When fewer than k results exist, the remainder is
  /// filled with kInvalidId. Thread-safe; batch is parallelized across
  /// `pool` when provided (single-threaded otherwise).
  virtual void SearchBatch(MatrixViewF queries, size_t k,
                           const RuntimeParams& params, uint32_t* ids,
                           ThreadPool* pool = nullptr) const = 0;

  /// Extended batch search: additionally reports per-query distances
  /// (row-major queries.rows x k, padded with +inf) and aggregate work
  /// counters. Either of `dists` / `stats` may be null. The default
  /// implementation forwards to SearchBatch, fills `dists` with NaN
  /// ("unavailable") and leaves `stats` untouched; indices that track these
  /// (VamanaIndex, the dynamic index) override it.
  virtual void SearchBatchEx(MatrixViewF queries, size_t k,
                             const RuntimeParams& params, uint32_t* ids,
                             float* dists, BatchStats* stats,
                             ThreadPool* pool = nullptr) const {
    SearchBatch(queries, k, params, ids, pool);
    if (dists != nullptr) {
      const size_t total = queries.rows * k;
      for (size_t i = 0; i < total; ++i) {
        dists[i] = std::numeric_limits<float>::quiet_NaN();
      }
    }
    (void)stats;
  }

  /// Creates a reusable per-thread searcher. The default adapter runs
  /// batches of one through SearchBatchEx (correct but without scratch
  /// reuse); indices with per-query state override this to return a
  /// searcher that keeps that state warm.
  virtual std::unique_ptr<Searcher> MakeSearcher() const;
};

namespace detail {

/// MakeSearcher() fallback: a stateless adapter over SearchBatchEx.
class BatchOfOneSearcher : public Searcher {
 public:
  explicit BatchOfOneSearcher(const SearchIndex* index) : index_(index) {}

  void Search(const float* query, size_t k, const RuntimeParams& params,
              uint32_t* ids, float* dists, BatchStats* stats) override {
    MatrixViewF one(query, 1, index_->dim());
    index_->SearchBatchEx(one, k, params, ids, dists, stats, nullptr);
  }

 private:
  const SearchIndex* index_;
};

}  // namespace detail

inline std::unique_ptr<Searcher> SearchIndex::MakeSearcher() const {
  return std::make_unique<detail::BatchOfOneSearcher>(this);
}

}  // namespace blink
