// Machine-readable perf trajectory (DESIGN.md D11): every flavor the
// registry knows, run through Build -> Calibrate -> timed search, serialized
// as a schema-versioned BENCH_report.json. CI runs blink_report on a tiny
// fixed-seed dataset each push and diffs the result against the committed
// bench/baseline.json, so recall regressions fail the build instead of
// rotting silently in stdout logs.
//
// The JSON schema (version 1):
//   {
//     "schema_version": 1,
//     "generator": "blink_report",
//     "dataset": {"name", "n", "nq", "dim", "metric", "seed"},
//     "k", "target_recall", "threads",
//     "flavors": [{
//       "name", "build_seconds", "memory_bytes",
//       "calibrated",            // false => calibration_error says why and
//       "calibration_error",     //          the options are the defaults
//       "options": {"window", "nprobe_shards", "rerank", "rerank_window",
//                   "nprobe", "reorder_k"},
//       "rerank_window",         // effective re-rank depth (additive, v1)
//       "primary_dim",           // traversal dimensionality: the LeanVec d'
//                                // or the full d (additive, v1)
//       "recall", "qps", "p50_us", "p99_us", "dists_per_query"
//     }, ...]
//   }
// The two top-level flavor keys mirror what the trajectory needs to tell a
// projection-width regression from a window regression; they are additive
// to schema version 1, and absent keys parse as 0.
// Numbers are always finite (non-finite measurements serialize as 0).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/index.h"
#include "eval/interface.h"
#include "util/matrix.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace blink {

// --- minimal JSON ---------------------------------------------------------
// Just enough JSON to write and reread the bench reports (and for tests to
// inspect them) without an external dependency.
namespace json {

class Value;
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

/// Tagged union over the JSON types. A plain struct (not std::variant):
/// the recursive Object/Array alternatives trip GCC's -Wmaybe-uninitialized
/// in variant's generated assignment, and the reports are small enough that
/// the unused members cost nothing that matters.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Value() = default;
  Value(std::nullptr_t) {}                                       // NOLINT
  Value(bool b) : type_(Type::kBool), bool_(b) {}                // NOLINT
  Value(double d) : type_(Type::kNumber), num_(d) {}             // NOLINT
  Value(int i) : Value(static_cast<double>(i)) {}                // NOLINT
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT
  Value(const char* s) : Value(std::string(s)) {}                // NOLINT
  Value(Object o) : type_(Type::kObject), obj_(std::move(o)) {}  // NOLINT
  Value(Array a) : type_(Type::kArray), arr_(std::move(a)) {}    // NOLINT

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  const std::string& as_string() const { return str_; }
  const Object& as_object() const { return obj_; }
  const Array& as_array() const { return arr_; }

  /// Member lookup on an object; nullptr when absent or not an object.
  const Value* Find(const std::string& key) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Object obj_;
  Array arr_;
};

/// Serializes with stable ordering (std::map keys) and 2-space indentation.
/// Non-finite numbers serialize as 0 — reports must stay diffable and
/// parseable everywhere.
std::string Dump(const Value& value);

/// Strict-enough parser for Dump() output and hand-written baselines.
Result<Value> Parse(const std::string& text);

}  // namespace json

// --- the report -----------------------------------------------------------

inline constexpr int kBenchReportSchemaVersion = 1;

/// One index flavor's row in the trajectory.
struct BenchFlavorReport {
  std::string name;            ///< registry name ("static-lvq", "hnsw", ...)
  double build_seconds = 0.0;
  double memory_bytes = 0.0;
  bool calibrated = false;     ///< Calibrate met the target on this flavor
  std::string calibration_error;  ///< Status text when !calibrated
  SearchOptions options;       ///< calibrated (or fallback default) options
  uint32_t rerank_window = 0;  ///< effective re-rank depth (options mirror)
  size_t primary_dim = 0;      ///< traversal dim: LeanVec d', else the full d
  double recall = 0.0;         ///< measured with `options` on the eval split
  double qps = 0.0;            ///< batch mode, best of the configured reps
  double p50_us = 0.0;         ///< single-query latency percentiles
  double p99_us = 0.0;
  double dists_per_query = 0.0;
};

struct BenchReport {
  int schema_version = kBenchReportSchemaVersion;
  std::string generator = "blink_report";
  std::string dataset_name;
  size_t n = 0;        ///< base vectors
  size_t nq = 0;       ///< total queries (calibration + eval splits)
  size_t dim = 0;
  std::string metric;  ///< MetricName()
  uint64_t seed = 0;
  size_t k = 10;
  double target_recall = 0.9;
  size_t threads = 1;
  std::vector<BenchFlavorReport> flavors;
};

std::string BenchReportToJson(const BenchReport& report);
Result<BenchReport> ParseBenchReport(const std::string& text);

// --- measurement ----------------------------------------------------------

struct BenchRunConfig {
  size_t k = 10;
  double target_recall = 0.9;
  uint32_t max_window = 1024;  ///< calibration search bound
  int best_of = 3;             ///< QPS reps (the harness' best-of protocol)
  ThreadPool* pool = nullptr;  ///< batch parallelism (latency path ignores it)
  /// When set, the measured search carries this predicate (the index must
  /// have metadata attached) and recall is scored against
  /// `filtered_groundtruth` instead of the calibration ground truth.
  /// Calibration itself stays unfiltered: it tunes the base window the
  /// filtered plan widens from.
  std::shared_ptr<const Predicate> filter;
  FilterStrategy filter_strategy = FilterStrategy::kAuto;
  const Matrix<uint32_t>* filtered_groundtruth = nullptr;
};

/// Calibrates `index` on the first half of `queries` (the held-out sample),
/// then measures recall / QPS / latency percentiles / distance comps on the
/// second half with the chosen options. When calibration fails (target
/// unreachable, flavor without tunable knobs hitting its plateau), the
/// flavor is still measured with the default options and the error recorded
/// — a report row never disappears just because a flavor got slower.
BenchFlavorReport MeasureFlavor(const std::string& name, const Index& index,
                                double build_seconds, MatrixViewF queries,
                                const Matrix<uint32_t>& groundtruth,
                                const BenchRunConfig& config);

// --- the baseline gate ----------------------------------------------------

struct BaselineGate {
  /// Fail when a flavor's recall drops more than this below the smaller of
  /// the baseline's recall and the configured target (the min() keeps a
  /// baseline machine that overshot the target from tightening the gate).
  double recall_tolerance = 0.01;
  /// Warn (never fail — machines differ) when QPS falls below this fraction
  /// of the baseline.
  double qps_warn_ratio = 0.5;
};

struct GateResult {
  bool pass = true;
  std::vector<std::string> failures;  ///< recall regressions, missing flavors
  std::vector<std::string> warnings;  ///< QPS drops, new flavors
};

/// Diffs `current` against `baseline` under the gate's tolerances.
GateResult CompareToBaseline(const BenchReport& current,
                             const BenchReport& baseline,
                             const BaselineGate& gate = {});

}  // namespace blink
