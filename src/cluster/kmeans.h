// Lloyd's k-means with k-means++ seeding — the training substrate for every
// codebook-based baseline (PQ, OPQ, IVF, ScaNN-like).
#pragma once

#include <cstdint>
#include <vector>

#include "util/matrix.h"
#include "util/thread_pool.h"

namespace blink {

struct KMeansParams {
  size_t k = 256;
  size_t max_iters = 25;
  double tol = 1e-4;  ///< relative improvement threshold for early stop
  uint64_t seed = 7;
};

struct KMeansResult {
  MatrixF centroids;                 // k x d
  std::vector<uint32_t> assignment;  // n
  double inertia = 0.0;              // sum of squared distances to centroids
  size_t iterations = 0;
};

/// Clusters `data` into params.k centroids under squared-L2. Empty clusters
/// are reseeded from the point farthest from its centroid. Deterministic
/// given the seed.
KMeansResult KMeans(MatrixViewF data, const KMeansParams& params,
                    ThreadPool* pool = nullptr);

/// Assigns each row of `data` to its nearest centroid (squared L2).
/// Optionally records the distance.
void AssignToCentroids(MatrixViewF data, MatrixViewF centroids,
                       uint32_t* assignment, float* distances = nullptr,
                       ThreadPool* pool = nullptr);

/// Index of the centroid nearest to `x` (squared L2).
uint32_t NearestCentroid(const float* x, MatrixViewF centroids);

/// Indices of the `m` nearest centroids to `x`, ascending by distance.
std::vector<uint32_t> NearestCentroids(const float* x, MatrixViewF centroids,
                                       size_t m);

}  // namespace blink
