#include "cluster/kmeans.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "simd/distance.h"
#include "util/prng.h"

namespace blink {

namespace {

/// k-means++ seeding: iteratively sample points proportional to their
/// squared distance to the nearest chosen center.
MatrixF SeedPlusPlus(MatrixViewF data, size_t k, Rng& rng) {
  const size_t n = data.rows, d = data.cols;
  MatrixF centroids(k, d);
  std::vector<float> min_dist(n, std::numeric_limits<float>::max());

  size_t first = static_cast<size_t>(rng.Bounded(n));
  std::copy(data.row(first), data.row(first) + d, centroids.row(0));

  for (size_t c = 1; c < k; ++c) {
    const float* prev = centroids.row(c - 1);
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const float dist = simd::L2Sqr(data.row(i), prev, d);
      min_dist[i] = std::min(min_dist[i], dist);
      total += min_dist[i];
    }
    // Sample proportional to min_dist.
    double r = rng.UniformDouble() * total;
    size_t chosen = n - 1;
    for (size_t i = 0; i < n; ++i) {
      r -= min_dist[i];
      if (r <= 0.0) {
        chosen = i;
        break;
      }
    }
    std::copy(data.row(chosen), data.row(chosen) + d, centroids.row(c));
  }
  return centroids;
}

}  // namespace

uint32_t NearestCentroid(const float* x, MatrixViewF centroids) {
  const size_t k = centroids.rows, d = centroids.cols;
  uint32_t best = 0;
  float best_dist = std::numeric_limits<float>::max();
  for (size_t c = 0; c < k; ++c) {
    const float dist = simd::L2Sqr(x, centroids.row(c), d);
    if (dist < best_dist) {
      best_dist = dist;
      best = static_cast<uint32_t>(c);
    }
  }
  return best;
}

std::vector<uint32_t> NearestCentroids(const float* x, MatrixViewF centroids,
                                       size_t m) {
  const size_t k = centroids.rows, d = centroids.cols;
  std::vector<std::pair<float, uint32_t>> all(k);
  for (size_t c = 0; c < k; ++c) {
    all[c] = {simd::L2Sqr(x, centroids.row(c), d), static_cast<uint32_t>(c)};
  }
  m = std::min(m, k);
  std::partial_sort(all.begin(), all.begin() + m, all.end());
  std::vector<uint32_t> out(m);
  for (size_t i = 0; i < m; ++i) out[i] = all[i].second;
  return out;
}

void AssignToCentroids(MatrixViewF data, MatrixViewF centroids,
                       uint32_t* assignment, float* distances,
                       ThreadPool* pool) {
  const size_t n = data.rows, d = data.cols, k = centroids.rows;
  auto one = [&](size_t i) {
    uint32_t best = 0;
    float best_dist = std::numeric_limits<float>::max();
    for (size_t c = 0; c < k; ++c) {
      const float dist = simd::L2Sqr(data.row(i), centroids.row(c), d);
      if (dist < best_dist) {
        best_dist = dist;
        best = static_cast<uint32_t>(c);
      }
    }
    assignment[i] = best;
    if (distances != nullptr) distances[i] = best_dist;
  };
  if (pool != nullptr) {
    pool->ParallelFor(n, one);
  } else {
    for (size_t i = 0; i < n; ++i) one(i);
  }
}

KMeansResult KMeans(MatrixViewF data, const KMeansParams& params,
                    ThreadPool* pool) {
  const size_t n = data.rows, d = data.cols;
  const size_t k = std::min(params.k, n);
  assert(k > 0 && "k-means needs at least one cluster and one point");

  Rng rng(params.seed);
  KMeansResult res;
  res.centroids = SeedPlusPlus(data, k, rng);
  res.assignment.assign(n, 0);
  std::vector<float> dist(n, 0.0f);

  double prev_inertia = std::numeric_limits<double>::max();
  for (size_t it = 0; it < params.max_iters; ++it) {
    res.iterations = it + 1;
    AssignToCentroids(data, res.centroids, res.assignment.data(), dist.data(),
                      pool);
    double inertia = 0.0;
    for (size_t i = 0; i < n; ++i) inertia += dist[i];
    res.inertia = inertia;

    // Update step.
    std::vector<double> sums(k * d, 0.0);
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      const uint32_t c = res.assignment[i];
      const float* row = data.row(i);
      double* s = &sums[c * d];
      for (size_t j = 0; j < d; ++j) s[j] += row[j];
      ++counts[c];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Reseed an empty cluster from the point farthest from its centroid.
        size_t far = 0;
        for (size_t i = 1; i < n; ++i) {
          if (dist[i] > dist[far]) far = i;
        }
        std::copy(data.row(far), data.row(far) + d, res.centroids.row(c));
        dist[far] = 0.0f;  // avoid picking the same point twice
        continue;
      }
      float* cr = res.centroids.row(c);
      const double inv = 1.0 / static_cast<double>(counts[c]);
      for (size_t j = 0; j < d; ++j) {
        cr[j] = static_cast<float>(sums[c * d + j] * inv);
      }
    }

    if (prev_inertia < std::numeric_limits<double>::max()) {
      const double rel =
          prev_inertia > 0.0 ? (prev_inertia - inertia) / prev_inertia : 0.0;
      if (rel >= 0.0 && rel < params.tol) break;
    }
    prev_inertia = inertia;
  }
  return res;
}

}  // namespace blink
