// blink — graph-based similarity search with Locally-adaptive Vector
// Quantization (LVQ).
//
// Umbrella header: pulls in the full public API. Reproduction of
// "Similarity search in the blink of an eye with compressed indices"
// (VLDB 2023). See README.md for a tour and DESIGN.md for the system map.
//
// Most applications only need the facade in src/api/ — IndexSpec,
// Build(), Open(), the Index handle and the name->factory registry; the
// subsystem headers below are the implementation layers it fronts.
#pragma once

// Public facade: one spec, one Build, one self-describing Open.
#include "api/spec.h"
#include "api/index.h"
#include "api/registry.h"
#include "api/calibrate.h"

// Core quantization (the paper's contribution).
#include "quant/scalar.h"      // uniform scalar quantization (Eq. 1)
#include "quant/lvq.h"         // LVQ-B and LVQ-B1xB2 (Defs. 1-2)
#include "quant/lvq_dynamic.h" // growable LVQ arena for streaming inserts
#include "quant/global.h"      // global / per-dimension baselines

// Optimized graph index (OG-LVQ).
#include "graph/graph.h"
#include "graph/storage.h"
#include "graph/dynamic_storage.h"
#include "graph/search.h"
#include "graph/builder.h"
#include "graph/index.h"
#include "graph/dynamic.h"
#include "graph/serialize.h"
#include "graph/pruning_error.h"

// Sharded index (partition-then-probe at dataset scale).
#include "shard/partitioner.h"
#include "shard/sharded_index.h"
#include "shard/serialize.h"

// Concurrent serving engine + zero-downtime hot-swap.
#include "serve/engine.h"
#include "serve/generation.h"

// Network serving front end (frame protocol, server, client).
#include "net/socket.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/client.h"

// SIMD distance kernels.
#include "simd/distance.h"

// Baselines (same-harness comparisons).
#include "baselines/pq.h"
#include "baselines/opq.h"
#include "baselines/ivf.h"
#include "baselines/hnsw.h"
#include "baselines/scann.h"

// Data + evaluation.
#include "cluster/kmeans.h"
#include "data/synthetic.h"
#include "data/groundtruth.h"
#include "eval/interface.h"
#include "eval/metrics.h"
#include "eval/harness.h"
#include "eval/report.h"

// Utilities.
#include "util/env.h"
#include "util/epoch.h"
#include "util/float16.h"
#include "util/io.h"
#include "util/matrix.h"
#include "util/memory.h"
#include "util/prng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"
