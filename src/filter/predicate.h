// Filter predicates over per-vector metadata (DESIGN.md D15).
//
// A Predicate is a conjunction of
//   - tag constraints over a u64 tag-set bitmask: any-of / all-of / none-of,
//   - numeric range constraints over typed columns (i64 or f64), each an
//     interval with independently strict or inclusive endpoints.
//
// Predicates are plain data: they reference metadata columns by index and
// carry no pointer to a MetadataStore, so one predicate can be evaluated
// against any store with a compatible schema (e.g. the per-shard slices of
// a sharded index, or a server-side store a remote client has never seen).
// Binding happens at evaluation time through FilterView (metadata.h).
//
// The textual grammar (parsed by Predicate::Parse, exposed to CLIs via
// tools::ParseFilterFlag) is a space-separated clause list:
//
//   clause  := tag-clause | num-clause
//   tag-clause := "tag:any=" bitlist | "tag:all=" bitlist | "tag:none=" bitlist
//   bitlist := bit ("," bit)*          // bit in [0, 63]
//   num-clause := "num" col op value   // e.g. num0>=2.5, num1<10, num2=7
//   op      := "<" | "<=" | ">" | ">=" | "="
//
// Parsing is strict in the ParseUintListFlag tradition: single-space
// separators, no empty clauses, whole-token numbers, trailing garbage is an
// error. Repeated tag clauses of the same kind OR their masks; repeated
// num clauses on one column conjoin (intersect) as separate ranges.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/status.h"

namespace blink {

/// Cell type of one metadata column. Every cell is stored as 8 bytes; the
/// type governs interpretation (and exact round-tripping in the artifact).
enum class ColumnType : uint8_t {
  kI64 = 0,
  kF64 = 1,
};

/// How a filtered search executes (DESIGN.md D15).
///  - kPostFilter: search unfiltered, drop failing candidates at extraction,
///    widening the window geometrically until k survivors or a cap.
///  - kInSearch: the greedy traversal evaluates the predicate per candidate
///    and keeps a separate result buffer of passing vertices while still
///    routing through failing ones (filtered-Vamana style).
///  - kAuto: pick by estimated selectivity (crossover in metadata.h).
enum class FilterStrategy : uint8_t {
  kAuto = 0,
  kPostFilter = 1,
  kInSearch = 2,
};

/// A compiled metadata predicate: tag masks plus numeric range conjunctions.
struct Predicate {
  /// Pass requires (tags & tag_any) != 0. Zero disables the constraint.
  uint64_t tag_any = 0;
  /// Pass requires (tags & tag_all) == tag_all. Zero disables.
  uint64_t tag_all = 0;
  /// Pass requires (tags & tag_none) == 0. Zero disables.
  uint64_t tag_none = 0;

  /// One numeric interval constraint; a predicate passes only if every
  /// range passes. NaN column values fail every range.
  struct Range {
    uint32_t column = 0;
    bool lo_strict = false;  ///< true: value > lo, false: value >= lo
    bool hi_strict = false;  ///< true: value < hi, false: value <= hi
    double lo = -std::numeric_limits<double>::infinity();
    double hi = std::numeric_limits<double>::infinity();
  };
  std::vector<Range> ranges;

  /// True when no constraint is set (matches everything).
  bool Trivial() const {
    return tag_any == 0 && tag_all == 0 && tag_none == 0 && ranges.empty();
  }

  /// Checks column references against a store's column count and rejects
  /// NaN bounds / empty intervals. Call at configuration boundaries (CLI,
  /// net server) so bad predicates fail loudly, not as empty result sets.
  Status ValidateFor(size_t num_columns) const;

  /// Strict parser for the grammar above. Returns InvalidArgument with a
  /// pointer to the offending clause on any deviation.
  static Result<Predicate> Parse(const std::string& text);

  /// Canonical textual form (re-parseable); "<match-all>" when Trivial().
  std::string ToString() const;
};

}  // namespace blink
