// Deterministic synthetic per-vector metadata (DESIGN.md D15).
//
// blink_build, the filtered-recall tests and bench/filtered_selectivity
// all need metadata with *known, tunable* selectivity, and they need to
// agree on it exactly (an artifact built by the tool must answer the same
// filtered queries the bench issues). One generator, seeded and pure:
//
//  - tag bit b (0..63) is set iff the low b bits of a per-id hash are
//    zero, so bits nest (bit 3 set => bits 0..2 set) and `tag:any=b`
//    selects a ~2^-b fraction of the rows: b=1 ~50%, b=3 ~12.5%,
//    b=7 ~0.8%, b=10 ~0.1%. Bit 0 is always set.
//  - an f64 column cell is uniform in [0, 1), so `num<c><s` selects a ~s
//    fraction directly (the precise knob the selectivity sweeps use).
//  - an i64 column cell is uniform in [0, 1000).
//
// Everything derives from SplitMix64 over (seed, id, column) — stable
// across platforms, no libc rand.
#pragma once

#include <cstdint>
#include <vector>

#include "filter/metadata.h"

namespace blink {

inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// The tag bitmask for row `id`: bit b set iff hash's low b bits are zero.
inline uint64_t SyntheticTags(uint64_t seed, uint64_t id) {
  const uint64_t h = SplitMix64(seed ^ (id * 0x9e3779b97f4a7c15ull));
  uint64_t tags = 0;
  for (uint32_t b = 0; b < 64; ++b) {
    const uint64_t mask = b == 63 ? (~0ull >> 1) : ((1ull << b) - 1);
    if ((h & mask) != 0) break;  // bits nest; the first miss ends the run
    tags |= 1ull << b;
  }
  return tags;
}

/// Uniform double in [0, 1) for (seed, id, column).
inline double SyntheticF64(uint64_t seed, uint64_t id, uint64_t column) {
  const uint64_t h =
      SplitMix64(seed ^ (id * 0x9e3779b97f4a7c15ull) ^ ((column + 1) << 32));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Uniform integer in [0, 1000) for (seed, id, column).
inline int64_t SyntheticI64(uint64_t seed, uint64_t id, uint64_t column) {
  const uint64_t h =
      SplitMix64(seed ^ (id * 0x6a09e667f3bcc909ull) ^ ((column + 1) << 32));
  return static_cast<int64_t>(h % 1000);
}

/// An owned store of `n` rows with the given numeric columns, every cell
/// filled by the generators above.
inline MetadataStore MakeSyntheticMetadata(size_t n,
                                           std::vector<ColumnType> types,
                                           uint64_t seed) {
  MetadataStore store(n, std::move(types));
  for (size_t i = 0; i < n; ++i) {
    const uint32_t id = static_cast<uint32_t>(i);
    store.set_tags(id, SyntheticTags(seed, i));
    for (size_t c = 0; c < store.num_columns(); ++c) {
      if (store.column_type(c) == ColumnType::kF64) {
        store.SetNumeric(c, id, SyntheticF64(seed, i, c));
      } else {
        store.SetNumericI64(c, id, SyntheticI64(seed, i, c));
      }
    }
  }
  return store;
}

}  // namespace blink
