// Metadata artifact IO (DESIGN.md D15, format table).
//
// A metadata store persists as a sidecar next to the index artifact
// (<prefix>.meta for static/dynamic, <dir>/metadata.meta for sharded) so
// filterless v1–v3 artifacts keep opening unchanged: a missing sidecar
// simply means "no metadata". The sidecar itself is v3-style self-
// describing, every section 64-byte aligned and mmap-clean:
//
//   offset  field
//   ------  -----------------------------------------------------------
//   0       u32 magic "BLMD"
//   4       u32 format version (3)
//   8       u64 row count n
//   16      u32 numeric column count C
//   20      u32 reserved (0)
//   24      u8  column types [C] (0 = i64, 1 = f64)
//   .       pad to 64
//   .       u64 tags[n]                 (64-byte aligned)
//   .       pad to 64
//   .       u64 column 0 cells [n]      (64-byte aligned)
//   .       ... one aligned run per remaining column
//
// Saving goes through binio::AtomicFile (tmp + fsync + rename), matching
// every other artifact writer. Loading offers the same two modes as the
// index bundles: LoadMetadata copies to an owned store, MapMetadata wraps
// an MmapFile with zero copies (MetadataStore::FromExternal).
#pragma once

#include <string>

#include "filter/metadata.h"
#include "util/mmap_file.h"
#include "util/status.h"

namespace blink {

/// Writes rows [0, n_rows) atomically; n_rows beyond store.size() clamps.
/// Pass n_rows = store.size() for full saves (dynamic indices persist only
/// the used prefix of their capacity-sized store).
Status SaveMetadata(const std::string& path, const MetadataStore& store,
                    size_t n_rows);
inline Status SaveMetadata(const std::string& path,
                           const MetadataStore& store) {
  return SaveMetadata(path, store, store.size());
}

/// Heap-loads a metadata sidecar (kLoad mode).
Result<MetadataStore> LoadMetadata(const std::string& path);

/// Zero-copy view into `map` (kMap mode); the caller keeps `map` alive for
/// the store's lifetime, exactly like the mapped index bundles.
Result<MetadataStore> MapMetadata(const MmapFile& map);

/// True when `path` exists and starts with the BLMD magic — the Open()
/// probe deciding whether an artifact has a metadata sidecar.
bool IsMetadataFile(const std::string& path);

}  // namespace blink
