#include "filter/metadata.h"

#include <algorithm>
#include <cmath>

namespace blink {

bool MatchesPredicate(const MetadataStore& s, const Predicate& p,
                      uint32_t id) {
  const uint64_t t = s.tags(id);
  if (p.tag_any != 0 && (t & p.tag_any) == 0) return false;
  if ((t & p.tag_all) != p.tag_all) return false;
  if ((t & p.tag_none) != 0) return false;
  for (const Predicate::Range& r : p.ranges) {
    const double v = s.NumericF64(r.column, id);
    // Negated comparisons so NaN cells fail every range.
    if (r.lo_strict ? !(v > r.lo) : !(v >= r.lo)) return false;
    if (r.hi_strict ? !(v < r.hi) : !(v <= r.hi)) return false;
  }
  return true;
}

double EstimateSelectivity(const MetadataStore& s, const Predicate& p,
                           size_t max_samples) {
  const size_t n = s.size();
  if (n == 0 || max_samples == 0) return 1.0;
  const size_t samples = std::min(n, max_samples);
  const size_t stride = n / samples;  // >= 1
  size_t hits = 0;
  size_t taken = 0;
  for (size_t i = 0; taken < samples && i < n; i += stride, ++taken) {
    if (MatchesPredicate(s, p, static_cast<uint32_t>(i))) ++hits;
  }
  // Laplace smoothing: a sample that happens to miss every match must not
  // report selectivity 0 (the strategy crossover divides by it downstream).
  return (static_cast<double>(hits) + 1.0) / (static_cast<double>(taken) + 2.0);
}

FilterStrategy ResolveFilterStrategy(const MetadataStore& s,
                                     const Predicate& p,
                                     FilterStrategy requested) {
  if (requested != FilterStrategy::kAuto) return requested;
  return EstimateSelectivity(s, p) <= kInSearchSelectivityCrossover
             ? FilterStrategy::kInSearch
             : FilterStrategy::kPostFilter;
}

uint32_t ResolveWidenCap(uint32_t requested, size_t index_size,
                         uint32_t window0) {
  if (requested != 0) return std::max(requested, window0);
  const uint64_t cap =
      std::max<uint64_t>(window0, static_cast<uint64_t>(index_size));
  return static_cast<uint32_t>(std::min<uint64_t>(cap, uint64_t{1} << 20));
}

uint32_t ResolveInSearchWindow(double selectivity, size_t k, uint32_t window0,
                               uint32_t widen_cap) {
  const uint32_t hi = std::max(widen_cap, window0);
  const double want =
      1.5 * static_cast<double>(k) / std::max(selectivity, 1e-6);
  if (want >= static_cast<double>(hi)) return hi;
  return std::max(window0, static_cast<uint32_t>(std::ceil(want)));
}

}  // namespace blink
