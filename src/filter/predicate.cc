#include "filter/predicate.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace blink {

namespace {

// Strict whole-token unsigned parse (ParseUintListFlag contract): digits
// only, value in [0, max]. Returns false on any deviation.
bool ParseU64Token(const char* s, const char* end, uint64_t max,
                   uint64_t* out) {
  if (s == end) return false;
  uint64_t v = 0;
  for (const char* p = s; p != end; ++p) {
    if (*p < '0' || *p > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(*p - '0');
    if (v > (max - digit) / 10) return false;  // overflow past max
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

// Parses "b0,b1,..." (bits in [0,63]) into a mask. Same no-leniency rules
// as ParseUintListFlag: no empty elements, no trailing comma.
bool ParseBitList(const char* s, const char* end, uint64_t* mask) {
  if (s == end) return false;
  *mask = 0;
  const char* tok = s;
  for (const char* p = s;; ++p) {
    if (p == end || *p == ',') {
      uint64_t bit = 0;
      if (!ParseU64Token(tok, p, 63, &bit)) return false;
      *mask |= uint64_t{1} << bit;
      if (p == end) return true;
      tok = p + 1;
      if (tok == end) return false;  // trailing comma
    }
  }
}

// Strict whole-token double parse: strtod must consume exactly [s, end)
// and produce a finite value.
bool ParseDoubleToken(const char* s, const char* end, double* out) {
  if (s == end) return false;
  std::string tok(s, end);  // strtod needs NUL termination
  errno = 0;
  char* stop = nullptr;
  const double v = std::strtod(tok.c_str(), &stop);
  if (stop != tok.c_str() + tok.size() || errno == ERANGE || !std::isfinite(v))
    return false;
  *out = v;
  return true;
}

Status BadClause(const char* what, const char* clause_begin,
                 const char* clause_end) {
  std::string msg = "filter: ";
  msg += what;
  msg += " in clause '";
  msg.append(clause_begin, clause_end);
  msg += "'";
  return Status::InvalidArgument(std::move(msg));
}

// Parses one clause [s, end) into *out. The clause is already known to be
// non-empty and space-free.
Status ParseClause(const char* s, const char* end, Predicate* out) {
  if (std::strncmp(s, "tag:", 4) == 0 && end - s > 4) {
    const char* body = s + 4;
    uint64_t* mask = nullptr;
    if (std::strncmp(body, "any=", 4) == 0) {
      mask = &out->tag_any;
      body += 4;
    } else if (std::strncmp(body, "all=", 4) == 0) {
      mask = &out->tag_all;
      body += 4;
    } else if (std::strncmp(body, "none=", 5) == 0) {
      mask = &out->tag_none;
      body += 5;
    } else {
      return BadClause("unknown tag constraint (want any/all/none)", s, end);
    }
    uint64_t bits = 0;
    if (!ParseBitList(body, end, &bits))
      return BadClause("bad tag bit list (want digits 0..63, comma-separated)",
                       s, end);
    *mask |= bits;
    return Status::OK();
  }
  if (std::strncmp(s, "num", 3) == 0) {
    const char* p = s + 3;
    const char* col_end = p;
    while (col_end != end && *col_end >= '0' && *col_end <= '9') ++col_end;
    uint64_t col = 0;
    if (!ParseU64Token(p, col_end, std::numeric_limits<uint32_t>::max(), &col))
      return BadClause("bad column index", s, end);
    p = col_end;
    // Operator: <, <=, >, >=, =
    if (p == end) return BadClause("missing comparison operator", s, end);
    Predicate::Range r;
    r.column = static_cast<uint32_t>(col);
    const char op = *p++;
    bool le_ge = false;
    if ((op == '<' || op == '>') && p != end && *p == '=') {
      le_ge = true;
      ++p;
    }
    double v = 0.0;
    if (!ParseDoubleToken(p, end, &v))
      return BadClause("bad numeric value", s, end);
    switch (op) {
      case '<':
        r.hi = v;
        r.hi_strict = !le_ge;
        break;
      case '>':
        r.lo = v;
        r.lo_strict = !le_ge;
        break;
      case '=':
        r.lo = r.hi = v;
        break;
      default:
        return BadClause("unknown comparison operator", s, end);
    }
    out->ranges.push_back(r);
    return Status::OK();
  }
  return BadClause("unknown clause (want tag:... or num<col><op><value>)", s,
                   end);
}

void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  *out += buf;
}

void AppendBitList(std::string* out, const char* kind, uint64_t mask) {
  *out += kind;
  bool first = true;
  for (int b = 0; b < 64; ++b) {
    if ((mask >> b) & 1) {
      if (!first) *out += ',';
      *out += std::to_string(b);
      first = false;
    }
  }
}

}  // namespace

Status Predicate::ValidateFor(size_t num_columns) const {
  for (const Range& r : ranges) {
    if (r.column >= num_columns) {
      std::string msg = "filter: range references column ";
      msg += std::to_string(r.column);
      msg += " but the metadata store has ";
      msg += std::to_string(num_columns);
      msg += " numeric column(s)";
      return Status::InvalidArgument(std::move(msg));
    }
    if (std::isnan(r.lo) || std::isnan(r.hi))
      return Status::InvalidArgument("filter: NaN range bound");
    if (r.lo > r.hi || (r.lo == r.hi && (r.lo_strict || r.hi_strict)))
      return Status::InvalidArgument("filter: empty numeric range");
  }
  return Status::OK();
}

Result<Predicate> Predicate::Parse(const std::string& text) {
  Predicate p;
  const char* s = text.c_str();
  const char* end = s + text.size();
  if (s == end) return Status::InvalidArgument("filter: empty predicate");
  const char* clause = s;
  for (const char* q = s;; ++q) {
    if (q == end || *q == ' ') {
      if (q == clause)
        return Status::InvalidArgument(
            "filter: empty clause (stray or doubled space)");
      BLINK_RETURN_NOT_OK(ParseClause(clause, q, &p));
      if (q == end) break;
      clause = q + 1;
      if (clause == end)
        return Status::InvalidArgument("filter: trailing space");
    }
  }
  return p;
}

std::string Predicate::ToString() const {
  if (Trivial()) return "<match-all>";
  std::string out;
  auto sep = [&out] {
    if (!out.empty()) out += ' ';
  };
  if (tag_any) {
    sep();
    AppendBitList(&out, "tag:any=", tag_any);
  }
  if (tag_all) {
    sep();
    AppendBitList(&out, "tag:all=", tag_all);
  }
  if (tag_none) {
    sep();
    AppendBitList(&out, "tag:none=", tag_none);
  }
  const double inf = std::numeric_limits<double>::infinity();
  for (const Range& r : ranges) {
    if (r.lo == r.hi && !r.lo_strict && !r.hi_strict) {
      sep();
      out += "num" + std::to_string(r.column) + "=";
      AppendDouble(&out, r.lo);
      continue;
    }
    if (r.lo != -inf) {
      sep();
      out += "num" + std::to_string(r.column) + (r.lo_strict ? ">" : ">=");
      AppendDouble(&out, r.lo);
    }
    if (r.hi != inf) {
      sep();
      out += "num" + std::to_string(r.column) + (r.hi_strict ? "<" : "<=");
      AppendDouble(&out, r.hi);
    }
  }
  return out;
}

}  // namespace blink
