// Per-vector metadata column store (DESIGN.md D15).
//
// Layout is columnar and keyed by dense vector id: one u64 tag-set bitmask
// column plus zero or more typed numeric columns (i64 or f64), every cell a
// fixed 8 bytes. Columnar cells keep predicate evaluation a handful of
// contiguous loads and make the serialized sections mmap-clean (each column
// is one 64-byte-aligned run of n*8 bytes, see filter/serialize.h).
//
// Concurrency: every cell access goes through std::atomic_ref with relaxed
// ordering, so the dynamic path can upsert metadata while searchers read it
// (TSan-clean, free on x86). A row update is not atomic across cells —
// a concurrent reader may see a half-applied row — which is acceptable for
// filtering: publication ordering for *liveness* is owned by the dynamic
// index's epoch protocol, metadata rows are eventually consistent.
//
// Two backings share one interface:
//  - owned: std::vector<uint64_t> per column (Build / kLoad / dynamic),
//  - external: const pointers into an mmap (kMap); mutation is a no-op
//    guarded by callers (the dynamic path never maps).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

#include "filter/predicate.h"
#include "util/status.h"

namespace blink {

class MetadataStore {
 public:
  MetadataStore() = default;

  /// Owned store with `n` zeroed rows and the given numeric column types.
  MetadataStore(size_t n, std::vector<ColumnType> types)
      : n_(n), types_(std::move(types)), tags_(n, 0) {
    cols_.resize(types_.size());
    for (auto& c : cols_) c.assign(n, 0);
  }

  /// Read-only view over externally owned (mmapped) column runs. Pointers
  /// must be 8-byte aligned and outlive the store.
  static MetadataStore FromExternal(size_t n, std::vector<ColumnType> types,
                                    const uint64_t* tags,
                                    std::vector<const uint64_t*> cols) {
    MetadataStore s;
    s.n_ = n;
    s.types_ = std::move(types);
    s.tags_ext_ = tags;
    s.cols_ext_ = std::move(cols);
    return s;
  }

  size_t size() const { return n_; }
  size_t num_columns() const { return types_.size(); }
  ColumnType column_type(size_t c) const { return types_[c]; }
  const std::vector<ColumnType>& schema() const { return types_; }
  bool external() const { return tags_ext_ != nullptr; }

  uint64_t tags(uint32_t id) const { return LoadCell(TagsData() + id); }
  void set_tags(uint32_t id, uint64_t v) { StoreCell(&tags_[id], v); }

  int64_t NumericI64(size_t c, uint32_t id) const {
    const uint64_t raw = LoadCell(ColData(c) + id);
    return types_[c] == ColumnType::kI64
               ? static_cast<int64_t>(raw)
               : static_cast<int64_t>(std::bit_cast<double>(raw));
  }
  double NumericF64(size_t c, uint32_t id) const {
    const uint64_t raw = LoadCell(ColData(c) + id);
    return types_[c] == ColumnType::kF64
               ? std::bit_cast<double>(raw)
               : static_cast<double>(static_cast<int64_t>(raw));
  }

  /// Stores `v` converted to the column's type (i64 columns truncate
  /// toward zero; i64 magnitudes beyond 2^53 lose precision — D15).
  void SetNumeric(size_t c, uint32_t id, double v) {
    const uint64_t raw =
        types_[c] == ColumnType::kF64
            ? std::bit_cast<uint64_t>(v)
            : static_cast<uint64_t>(static_cast<int64_t>(v));
    StoreCell(&cols_[c][id], raw);
  }
  void SetNumericI64(size_t c, uint32_t id, int64_t v) {
    const uint64_t raw = types_[c] == ColumnType::kI64
                             ? static_cast<uint64_t>(v)
                             : std::bit_cast<uint64_t>(static_cast<double>(v));
    StoreCell(&cols_[c][id], raw);
  }

  /// Zeroes one row (tags and every numeric cell). Used when the dynamic
  /// index recycles a slot so a new vector never inherits stale metadata.
  void ClearRow(uint32_t id) {
    StoreCell(&tags_[id], 0);
    for (auto& col : cols_) StoreCell(&col[id], 0);
  }

  /// Grows (or shrinks) an owned store; new rows are zeroed. The dynamic
  /// index calls this under its exclusive lock, mirroring storage Grow.
  void Resize(size_t n) {
    n_ = n;
    tags_.resize(n, 0);
    for (auto& col : cols_) col.resize(n, 0);
  }

  /// Owned deep copy (external stores materialize onto the heap). The
  /// dynamic flavor copies shared or mapped metadata through this before
  /// attaching, since its rows are upserted in place.
  MetadataStore OwnedCopy() const {
    MetadataStore s(n_, types_);
    // types_.size(), not cols_.size(): an external store keeps its column
    // pointers in cols_ext_ and leaves cols_ empty.
    for (size_t i = 0; i < n_; ++i) {
      s.tags_[i] = LoadCell(TagsData() + i);
      for (size_t c = 0; c < types_.size(); ++c)
        s.cols_[c][i] = LoadCell(ColData(c) + i);
    }
    return s;
  }

  /// Owned copy holding rows `ids[0..m)` renumbered to 0..m (the sharded
  /// index slices the global store into per-shard local-id stores).
  MetadataStore Slice(const std::vector<uint32_t>& ids) const {
    MetadataStore s(ids.size(), types_);
    for (size_t i = 0; i < ids.size(); ++i) {
      const uint32_t src = ids[i];
      s.tags_[i] = LoadCell(TagsData() + src);
      for (size_t c = 0; c < types_.size(); ++c)
        s.cols_[c][i] = LoadCell(ColData(c) + src);
    }
    return s;
  }

  /// Raw column runs for serialization (n_ cells each).
  const uint64_t* tags_data() const { return TagsData(); }
  const uint64_t* column_data(size_t c) const { return ColData(c); }

  size_t memory_bytes() const {
    return external() ? 0 : (1 + cols_.size()) * n_ * sizeof(uint64_t);
  }

 private:
  const uint64_t* TagsData() const {
    return tags_ext_ != nullptr ? tags_ext_ : tags_.data();
  }
  const uint64_t* ColData(size_t c) const {
    return tags_ext_ != nullptr ? cols_ext_[c] : cols_[c].data();
  }
  static uint64_t LoadCell(const uint64_t* p) {
    // atomic_ref<const T> is C++26; the const_cast is load-only.
    return std::atomic_ref<uint64_t>(*const_cast<uint64_t*>(p))
        .load(std::memory_order_relaxed);
  }
  static void StoreCell(uint64_t* p, uint64_t v) {
    std::atomic_ref<uint64_t>(*p).store(v, std::memory_order_relaxed);
  }

  size_t n_ = 0;
  std::vector<ColumnType> types_;
  std::vector<uint64_t> tags_;
  std::vector<std::vector<uint64_t>> cols_;
  const uint64_t* tags_ext_ = nullptr;
  std::vector<const uint64_t*> cols_ext_;
};

/// Evaluates `p` against row `id` of `s`. Tag semantics: any → at least one
/// shared bit, all → superset, none → disjoint; ranges conjoin.
bool MatchesPredicate(const MetadataStore& s, const Predicate& p, uint32_t id);

/// A predicate bound to a store for per-candidate evaluation inside the
/// greedy search loop (see SearchParams::filter).
struct FilterView {
  const MetadataStore* store = nullptr;
  const Predicate* pred = nullptr;
  bool Pass(uint32_t id) const { return MatchesPredicate(*store, *pred, id); }
};

/// Estimated fraction of rows matching `p`, from a deterministic strided
/// sample of at most `max_samples` rows. Laplace-smoothed so it is never
/// exactly 0 or 1 on a sample.
double EstimateSelectivity(const MetadataStore& s, const Predicate& p,
                           size_t max_samples = 1024);

/// Selectivity at or below which in-search push-down beats widened
/// post-filtering (DESIGN.md D15 crossover rule).
inline constexpr double kInSearchSelectivityCrossover = 0.05;

/// Resolves kAuto via the selectivity crossover; echoes explicit choices.
FilterStrategy ResolveFilterStrategy(const MetadataStore& s,
                                     const Predicate& p,
                                     FilterStrategy requested);

/// The window cap for adaptive widening: an explicit request is honored
/// (floored at the starting window); 0 = auto = the index size, clamped to
/// the same 2^20 bound SearchOptions::Validate enforces for windows.
uint32_t ResolveWidenCap(uint32_t requested, size_t index_size,
                         uint32_t window0);

/// Starting window for the in-search (push-down) strategy. The traversal is
/// routed by unfiltered proximity, so the k-th passing neighbor sits at
/// unfiltered rank ~k/selectivity; a window of that order (with 1.5x
/// headroom) is needed for the passing buffer to collect high-quality
/// survivors. Post-filtering self-corrects by widening on survivor count;
/// in-search would otherwise stop at the first window holding k survivors
/// of arbitrary quality (DESIGN.md D15). Clamped to [window0, widen_cap].
uint32_t ResolveInSearchWindow(double selectivity, size_t k, uint32_t window0,
                               uint32_t widen_cap);

}  // namespace blink
