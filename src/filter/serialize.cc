#include "filter/serialize.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "util/binio.h"

namespace blink {

namespace {

constexpr uint32_t kMetaMagic = 0x444D4C42;  // "BLMD" little-endian
constexpr uint32_t kMetaVersion = 3;         // aligned/mmap-clean, like v3
constexpr size_t kSectionAlign = 64;

// Pads the write cursor (tracked by the caller) up to the next 64-byte
// boundary with zero bytes.
bool WritePad(FILE* f, uint64_t* offset) {
  const uint64_t misalign = *offset % kSectionAlign;
  if (misalign == 0) return true;
  const uint8_t zeros[kSectionAlign] = {};
  const size_t pad = kSectionAlign - misalign;
  if (!binio::WriteAll(f, zeros, pad)) return false;
  *offset += pad;
  return true;
}

// Bounds-checked cursor over an in-memory image (the mmap path). The
// equivalent reader in graph/serialize.cc is file-local, so the metadata
// sidecar carries its own.
struct Cursor {
  const uint8_t* base;
  size_t size;
  size_t pos = 0;

  template <typename T>
  bool Read(T* out) {
    if (size - pos < sizeof(T)) return false;
    std::memcpy(out, base + pos, sizeof(T));
    pos += sizeof(T);
    return true;
  }
  bool Align() {
    const size_t aligned = (pos + kSectionAlign - 1) & ~(kSectionAlign - 1);
    if (aligned > size) return false;
    pos = aligned;
    return true;
  }
  // A 64-byte-aligned run of `bytes`, or nullptr if out of bounds.
  const uint8_t* Section(size_t bytes) {
    if (!Align() || size - pos < bytes) return nullptr;
    const uint8_t* p = base + pos;
    pos += bytes;
    return p;
  }
};

struct MetaHeader {
  uint64_t n = 0;
  std::vector<ColumnType> types;
};

// Parses the fixed header through a Cursor; shared by both load modes.
Status ReadHeader(Cursor* c, MetaHeader* out) {
  uint32_t magic = 0, version = 0, num_cols = 0, reserved = 0;
  if (!c->Read(&magic) || magic != kMetaMagic)
    return Status::InvalidArgument("metadata: bad magic (not a BLMD file)");
  if (!c->Read(&version) || version != kMetaVersion)
    return Status::InvalidArgument("metadata: unsupported format version");
  if (!c->Read(&out->n) || !c->Read(&num_cols) || !c->Read(&reserved))
    return Status::InvalidArgument("metadata: truncated header");
  if (num_cols > 4096)
    return Status::InvalidArgument("metadata: implausible column count");
  out->types.resize(num_cols);
  for (uint32_t i = 0; i < num_cols; ++i) {
    uint8_t t = 0;
    if (!c->Read(&t)) return Status::InvalidArgument("metadata: truncated header");
    if (t > static_cast<uint8_t>(ColumnType::kF64))
      return Status::InvalidArgument("metadata: unknown column type");
    out->types[i] = static_cast<ColumnType>(t);
  }
  return Status::OK();
}

}  // namespace

Status SaveMetadata(const std::string& path, const MetadataStore& store,
                    size_t n_rows) {
  const uint64_t n = std::min(n_rows, store.size());
  binio::AtomicFile out(path);
  if (!out.ok()) return Status::IOError("metadata: cannot open " + path);
  FILE* f = out.get();
  uint64_t offset = 0;
  bool ok = true;
  auto write_pod = [&](const auto& v) {
    offset += sizeof(v);
    return binio::WritePod(f, v);
  };
  ok = ok && write_pod(kMetaMagic);
  ok = ok && write_pod(kMetaVersion);
  ok = ok && write_pod(n);
  ok = ok && write_pod(static_cast<uint32_t>(store.num_columns()));
  ok = ok && write_pod(uint32_t{0});  // reserved
  for (size_t c = 0; ok && c < store.num_columns(); ++c)
    ok = write_pod(static_cast<uint8_t>(store.column_type(c)));
  ok = ok && WritePad(f, &offset);
  const size_t run = n * sizeof(uint64_t);
  ok = ok && binio::WriteAll(f, store.tags_data(), run);
  offset += run;
  for (size_t c = 0; ok && c < store.num_columns(); ++c) {
    ok = WritePad(f, &offset) && binio::WriteAll(f, store.column_data(c), run);
    offset += run;
  }
  if (!ok) return Status::IOError("metadata: short write to " + path);
  return out.Commit();
}

Result<MetadataStore> LoadMetadata(const std::string& path) {
  // Heap mode reuses the mmap parser on a transient private mapping; the
  // Slice at the end copies every cell into owned storage.
  auto map = MmapFile::Map(path);
  BLINK_RETURN_NOT_OK(map.status());
  auto view = MapMetadata(map.value());
  BLINK_RETURN_NOT_OK(view.status());
  const MetadataStore& v = view.value();
  std::vector<uint32_t> all(v.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<uint32_t>(i);
  return v.Slice(all);
}

Result<MetadataStore> MapMetadata(const MmapFile& map) {
  Cursor c{map.data(), map.size()};
  MetaHeader h;
  BLINK_RETURN_NOT_OK(ReadHeader(&c, &h));
  if (h.n > (uint64_t{1} << 32))
    return Status::InvalidArgument("metadata: implausible row count");
  const size_t run = static_cast<size_t>(h.n) * sizeof(uint64_t);
  const uint8_t* tags = c.Section(run);
  if (tags == nullptr)
    return Status::InvalidArgument("metadata: truncated tags section");
  std::vector<const uint64_t*> cols(h.types.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    const uint8_t* col = c.Section(run);
    if (col == nullptr)
      return Status::InvalidArgument("metadata: truncated column section");
    cols[i] = reinterpret_cast<const uint64_t*>(col);
  }
  if (c.pos != c.size)
    return Status::InvalidArgument("metadata: trailing bytes after sections");
  return MetadataStore::FromExternal(static_cast<size_t>(h.n),
                                     std::move(h.types),
                                     reinterpret_cast<const uint64_t*>(tags),
                                     std::move(cols));
}

bool IsMetadataFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  uint32_t magic = 0;
  const bool ok = std::fread(&magic, sizeof(magic), 1, f) == 1;
  std::fclose(f);
  return ok && magic == kMetaMagic;
}

}  // namespace blink
