// IndexSpec: the declarative description of an index the public API builds
// from (DESIGN.md D10).
//
// One value type covers every flavor the system ships — the paper's static
// OG-LVQ configurations, the full-precision and float16 baselines, the
// partition-then-probe sharded index and the mutable dynamic index — so
// call sites say *what* they want ("two-level LVQ-4x8 over IP, R=64")
// instead of *which constructor* to reach for. Specs validate before any
// work happens, and an Open()ed artifact reconstructs the spec it was
// built from, making artifacts self-describing.
#pragma once

#include <string>

#include "eval/interface.h"
#include "graph/builder.h"
#include "graph/storage.h"
#include "shard/partitioner.h"
#include "util/status.h"

namespace blink {

/// Every index flavor the facade can build, save and reopen.
enum class IndexKind {
  kStaticF32,        ///< Vamana over float32 rows (the paper's "Vamana")
  kStaticF16,        ///< Vamana over float16 rows (Table 4 baseline)
  kStaticLvq,        ///< OG-LVQ: Vamana over LVQ-B / LVQ-B1xB2 (the system)
  kSharded,          ///< partition-then-probe over per-shard OG-LVQ (D8)
  kDynamicF32,       ///< mutable single-writer/multi-reader index, float32
  kDynamicLvq,       ///< mutable index with insert-time LVQ encoding (D9)
  kStaticLeanVec,    ///< learned d->d' projection primary, float32 both (D14)
  kStaticLeanVecLvq, ///< projected LVQ-8 primary, full-dim LVQ-8 secondary
};

/// Stable lowercase name ("static-lvq", "sharded", ...); the registry and
/// the tools' --kind flag both speak it.
const char* KindName(IndexKind kind);

/// How Open() materializes an artifact's payload (DESIGN.md D12).
/// kLoad copies everything onto the heap (the pre-v3 behavior); kMap
/// serves the static flavors straight out of a read-only file mapping —
/// near-instant open on a warm page cache, and datasets larger than
/// resident memory stay servable because the kernel pages vectors in and
/// out on demand. Requesting kMap is a hint: sharded and dynamic flavors,
/// and pre-v3 (unaligned) artifacts, silently fall back to kLoad, and the
/// spec records the mode actually in effect.
enum class LoadMode { kLoad, kMap };

/// Stable lowercase name ("load" / "map") for tools and reports.
const char* LoadModeName(LoadMode mode);

/// Parses KindName() output; error Status on unknown names.
Result<IndexKind> ParseIndexKind(const std::string& name);

/// Knobs specific to the dynamic flavors. Metric, degree, window and alpha
/// come from the spec's shared fields — the dynamic index simply interprets
/// graph.window_size as its insert-time search window.
struct DynamicSpec {
  size_t initial_capacity = 1024;  ///< slots provisioned before first Grow
};

/// Declarative index description: Build(spec, data) turns it into a live
/// Index. Fields irrelevant to the kind are ignored (e.g. `partition` for
/// an unsharded kind); Validate() rejects contradictory settings.
struct IndexSpec {
  IndexKind kind = IndexKind::kStaticLvq;
  Metric metric = Metric::kL2;

  /// LVQ code widths (kStaticLvq, kSharded, kDynamicLvq). bits2 == 0 means
  /// one-level LVQ-B; > 0 enables the two-level residual re-ranking.
  int bits1 = 8;
  int bits2 = 0;

  /// Vamana construction knobs, shared by every flavor: R, window, alpha,
  /// seed. `alpha` <= 0 selects the metric default (1.2 L2 / 0.95 IP) at
  /// Build time; window_size == 0 selects 2R.
  VamanaBuildParams graph;

  /// Reduced search dimension d' for the LeanVec kinds (D14): the primary
  /// stores d'-dimensional projections of the data, the secondary keeps the
  /// full d dimensions for re-ranking. 0 selects the default d/4 (floored
  /// at 1) at Build time; artifacts record the resolved value.
  size_t leanvec_dim = 0;

  /// Sharding (kSharded only).
  PartitionerParams partition;

  /// Dynamic-index extras (kDynamicF32 / kDynamicLvq only).
  DynamicSpec dynamic;

  /// The payload materialization in effect. Build() always produces kLoad
  /// (a built index is heap-resident by construction); Open() records the
  /// mode it actually used, which may be kLoad even when kMap was
  /// requested (fallback for non-static flavors and pre-v3 artifacts).
  LoadMode load_mode = LoadMode::kLoad;

  /// OK iff the spec describes a buildable configuration.
  Status Validate() const;

  /// The spec with alpha/window defaults resolved (what Build() uses and
  /// artifacts record).
  IndexSpec Resolved() const;
};

/// True for the kinds whose handle supports Insert/Delete/Consolidate.
bool IsDynamicKind(IndexKind kind);

/// True when the flavor described by `spec` carries a secondary view for
/// the Reranker seam (graph/reranker.h): the declarative twin of the
/// storages' has_second_level(). LVQ kinds re-rank iff bits2 > 0; the
/// LeanVec kinds always re-rank (a projection without full-dimension
/// re-scoring would cap recall at the projection's accuracy).
bool SpecHasReranker(const IndexSpec& spec);

/// The capability bitmask an Index built from `spec` reports: search + save
/// for every facade kind, shard probing for kSharded, two-level re-ranking
/// when SpecHasReranker() (the Reranker seam), and the mutation trio for
/// the dynamic kinds. The one definition shared by Build/Open (the
/// handle's capabilities()) and Calibrate (which knobs are worth tuning).
Capabilities SpecCapabilities(const IndexSpec& spec);

}  // namespace blink
