// The public front door (DESIGN.md D10): one spec, one Build, one
// self-describing Open, one handle — across every index flavor.
//
//   IndexSpec spec;                       // what you want
//   spec.kind = IndexKind::kStaticLvq;
//   Result<Index> idx = Build(spec, data);            // build it
//   idx.value().Save("/tmp/my_index");                // persist it
//   Result<Index> back = Open("/tmp/my_index");       // reload — no
//                                                     // metric, no params
//
// Open() sniffs the artifact: a "BLDY" file is a dynamic index, a
// directory with a manifest is a sharded index, a `<prefix>.graph` +
// `<prefix>.vecs` pair is a static bundle whose vecs magic picks the
// storage. Version-2 artifacts embed their own metric and build params;
// the handle they reopen into is configured exactly as the one that was
// saved. Version-1 (pre-API) artifacts still load, using the
// OpenOptions fallbacks.
//
// The Index handle is movable and type-erased. Every flavor searches
// through the same SearchIndex seam the evaluation harness and the
// serving engine already use; mutation (Insert/Delete/Consolidate) is
// forwarded to the dynamic flavors and returns an Unsupported Status on
// the rest — probe `capabilities()` to know without trying.
#pragma once

#include <memory>
#include <string>

#include "api/spec.h"
#include "eval/interface.h"
#include "filter/metadata.h"
#include "serve/engine.h"
#include "util/status.h"

namespace blink {

// The Capabilities bitmask (kCapSearch, kCapSave, ...) lives in
// eval/interface.h next to SearchOptions, whose defaulting is
// capability-aware; it is re-exported here through that include.

struct CalibrationTarget;  // api/calibrate.h

namespace detail {
class IndexImpl;
}  // namespace detail

/// Movable, type-erased handle over any index flavor. A default-constructed
/// handle is empty (operator bool is false); every other method requires a
/// non-empty handle.
class Index {
 public:
  Index();
  explicit Index(std::unique_ptr<detail::IndexImpl> impl);
  ~Index();
  Index(Index&&) noexcept;
  Index& operator=(Index&&) noexcept;
  Index(const Index&) = delete;
  Index& operator=(const Index&) = delete;

  explicit operator bool() const { return impl_ != nullptr; }

  // --- identity ------------------------------------------------------------
  std::string name() const;
  size_t size() const;  ///< live vectors (dynamic flavors exclude tombstones)
  size_t dim() const;
  size_t memory_bytes() const;
  IndexKind kind() const;
  Metric metric() const;
  Capabilities capabilities() const;
  bool has(Capabilities caps) const { return (capabilities() & caps) == caps; }
  /// The (resolved) spec this index was built from or reopened with.
  const IndexSpec& spec() const;
  /// True when the configuration came from the artifact itself (every
  /// Build()-made index; Open() of a version-2 artifact). False only for
  /// reopened version-1 artifacts, which used the OpenOptions fallbacks —
  /// the tools warn-and-ignore --metric exactly when this is true.
  bool self_described() const;

  // --- search --------------------------------------------------------------
  void SearchBatch(MatrixViewF queries, size_t k, const SearchOptions& params,
                   uint32_t* ids, ThreadPool* pool = nullptr) const;
  void SearchBatchEx(MatrixViewF queries, size_t k, const SearchOptions& params,
                     uint32_t* ids, float* dists, BatchStats* stats,
                     ThreadPool* pool = nullptr) const;
  std::unique_ptr<Searcher> MakeSearcher() const;
  /// The underlying type-erased index, for call sites that speak the
  /// eval/interface.h seam directly (RunSweep, ServingEngine, ...). Valid
  /// as long as the handle lives.
  const SearchIndex& AsSearchIndex() const;

  /// Deterministically searches the runtime-knob space (binary search on
  /// `window`, then greedy refinement of `nprobe_shards` and
  /// `rerank_window` where capabilities() says they apply) for the cheapest
  /// SearchOptions meeting `target.target_recall` on the given sample
  /// queries + ground truth. See api/calibrate.h for the target struct and
  /// CalibrateIndex() for the full per-step trace.
  Result<SearchOptions> Calibrate(const CalibrationTarget& target) const;

  // --- persistence ---------------------------------------------------------
  /// Saves a self-describing artifact that Open(path) reconstructs with no
  /// further configuration. Unsupported for baseline-wrapped indices.
  Status Save(const std::string& path) const;

  // --- mutation (dynamic flavors; Unsupported Status otherwise) ------------
  Result<uint32_t> Insert(const float* vec);
  Status Delete(uint32_t id);
  Status Consolidate();

  // --- per-vector metadata (filtered search; DESIGN.md D15) ----------------
  /// Attaches a metadata store keyed by vector id: row i describes vector
  /// i, and the store must cover every id the index holds. On success the
  /// handle gains kCapFilter and SearchOptions::filter becomes usable;
  /// Save() then writes the store as a `.meta` sidecar that Open()
  /// re-attaches. Null detaches and clears the capability. Dynamic flavors
  /// take an owned copy (rows are upserted in place); Unsupported for
  /// baseline-wrapped indices.
  Status AttachMetadata(std::shared_ptr<const MetadataStore> metadata);
  /// The attached store, or null when none. For sharded indices this is
  /// the global-id store (each shard holds a local-id slice).
  const MetadataStore* metadata() const;
  /// Dynamic flavors only: overwrites vector `id`'s metadata row — the tag
  /// bitmask plus the first `num_values` numeric columns (remaining
  /// columns keep their values). Unsupported elsewhere.
  Status UpsertMetadata(uint32_t id, uint64_t tags, const double* values,
                        size_t num_values);

  // --- serving -------------------------------------------------------------
  /// Stands up a ServingEngine over this index (searcher pool + async
  /// micro-batching). Validates `options` first — degenerate settings
  /// (max_batch == 0, queue_capacity == 0) return InvalidArgument instead
  /// of an engine that spins or hangs. The handle must outlive the engine.
  Result<std::unique_ptr<ServingEngine>> Serve(
      const ServingOptions& options) const;

 private:
  std::unique_ptr<detail::IndexImpl> impl_;
};

/// Builds the index `spec` describes over `data`. Validates the spec,
/// resolves defaulted fields (alpha, window), and returns a handle with
/// kCapSave plus the kind's mutation capabilities.
Result<Index> Build(const IndexSpec& spec, MatrixViewF data,
                    ThreadPool* pool = nullptr);

/// Wraps an arbitrary SearchIndex (e.g. a baseline) into a search-only
/// handle — no Save, no mutation. `spec` records the configuration it was
/// built from; the registry uses this for the non-facade baselines.
Index WrapSearchIndex(std::unique_ptr<SearchIndex> index,
                      const IndexSpec& spec);

/// Fallback configuration for artifacts that predate the self-describing
/// (version-2) headers. Ignored for version-2 artifacts.
struct OpenOptions {
  Metric fallback_metric = Metric::kL2;
  VamanaBuildParams fallback_graph;
  /// Capacity floor for reopened dynamic indices (applies to both format
  /// versions; capacity is runtime provisioning, not artifact state).
  size_t dynamic_initial_capacity = 1024;
  bool use_huge_pages = true;
  /// kMap serves static bundles out of a read-only file mapping instead of
  /// copying them onto the heap (out-of-core serving; DESIGN.md D12).
  /// A hint, not a demand: non-static flavors and pre-v3 artifacts fall
  /// back to kLoad — check spec().load_mode for the mode in effect.
  LoadMode load_mode = LoadMode::kLoad;
};

/// Opens any artifact Save() (or the legacy per-flavor savers) produced,
/// sniffing the flavor from the artifact itself. See the file comment for
/// the detection rules.
Result<Index> Open(const std::string& path, const OpenOptions& options = {});

}  // namespace blink
