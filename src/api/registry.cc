#include "api/registry.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <mutex>

#include "baselines/hnsw.h"
#include "baselines/ivf.h"
#include "baselines/scann.h"
#include "graph/index.h"

namespace blink {

namespace {

struct RegistryState {
  std::mutex mu;
  std::map<std::string, IndexFactory> factories;
};

/// One factory per facade kind: force the kind, delegate to Build().
IndexFactory KindFactory(IndexKind kind) {
  return [kind](const IndexSpec& spec, MatrixViewF data, ThreadPool* pool) {
    IndexSpec s = spec;
    s.kind = kind;
    return Build(s, data, pool);
  };
}

RegistryState& Registry() {
  static RegistryState* state = [] {
    auto* s = new RegistryState();
    for (IndexKind kind :
         {IndexKind::kStaticF32, IndexKind::kStaticF16, IndexKind::kStaticLvq,
          IndexKind::kSharded, IndexKind::kDynamicF32, IndexKind::kDynamicLvq,
          IndexKind::kStaticLeanVec, IndexKind::kStaticLeanVecLvq}) {
      s->factories.emplace(KindName(kind), KindFactory(kind));
    }
    // Baselines, mapped onto the spec's shared fields. The paper relates
    // graph parameters as R = 2M (Sec. 6.2), so HNSW reads M = R/2 and
    // ef_construction from the build window; search time ef comes from
    // SearchOptions::window (see baselines/hnsw.h). A build window below
    // 2M cannot be honored — HNSW's layer-0 beam must cover the degree —
    // so the clamp is reported instead of applied silently.
    s->factories.emplace(
        "hnsw", [](const IndexSpec& spec, MatrixViewF data, ThreadPool* pool) {
          const IndexSpec r = spec.Resolved();
          HnswParams hp;
          hp.M = std::max<uint32_t>(1, r.graph.graph_max_degree / 2);
          hp.ef_construction = std::max<uint32_t>(r.graph.window_size, 2 * hp.M);
          if (hp.ef_construction != r.graph.window_size) {
            std::fprintf(stderr,
                         "hnsw: window_size %u below 2M=%u; using "
                         "ef_construction=%u\n",
                         r.graph.window_size, 2 * hp.M, hp.ef_construction);
          }
          hp.seed = r.graph.seed;
          auto idx = std::make_unique<HnswIndex>(data, r.metric, hp, pool);
          return Result<Index>(WrapSearchIndex(std::move(idx), r));
        });
    s->factories.emplace(
        "ivf-pq",
        [](const IndexSpec& spec, MatrixViewF data, ThreadPool* pool) {
          const IndexSpec r = spec.Resolved();
          IvfPqParams ip;
          // Square-root-ish list count, bounded for tiny datasets.
          ip.nlist = std::max<size_t>(
              1, std::min<size_t>(1024, data.rows / 32));
          ip.seed = r.graph.seed;
          auto idx = std::make_unique<IvfPqIndex>(data, r.metric, ip, pool);
          return Result<Index>(WrapSearchIndex(std::move(idx), r));
        });
    s->factories.emplace(
        "scann", [](const IndexSpec& spec, MatrixViewF data, ThreadPool* pool) {
          const IndexSpec r = spec.Resolved();
          ScannParams sp;  // n_leaves = 0 -> sqrt(n), the authors' default
          sp.seed = r.graph.seed;
          auto idx = std::make_unique<ScannIndex>(data, r.metric, sp, pool);
          return Result<Index>(WrapSearchIndex(std::move(idx), r));
        });
    s->factories.emplace(
        "og-global",
        [](const IndexSpec& spec, MatrixViewF data,
           ThreadPool* pool) -> Result<Index> {
          const IndexSpec r = spec.Resolved();
          // BuildNamed validates against spec.kind, which need not be an
          // LVQ kind; this factory consumes the bit widths regardless, so
          // re-check them under a kind whose validation covers them.
          IndexSpec bits_check = r;
          bits_check.kind = IndexKind::kStaticLvq;
          BLINK_RETURN_NOT_OK(bits_check.Validate());
          auto idx =
              BuildOgGlobal(data, r.metric, r.bits1, r.bits2, r.graph, pool);
          return WrapSearchIndex(std::move(idx), r);
        });
    return s;
  }();
  return *state;
}

}  // namespace

bool RegisterIndexFactory(const std::string& name, IndexFactory factory) {
  RegistryState& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return reg.factories.emplace(name, std::move(factory)).second;
}

Result<Index> BuildNamed(const std::string& name, const IndexSpec& spec,
                         MatrixViewF data, ThreadPool* pool) {
  // The facade-kind factories re-validate through Build(); checking here
  // covers the baseline factories too, which interpret the shared fields
  // directly (see the extra bit-width check in og-global).
  BLINK_RETURN_NOT_OK(spec.Validate());
  IndexFactory factory;
  {
    RegistryState& reg = Registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    auto it = reg.factories.find(name);
    if (it == reg.factories.end()) {
      std::string msg = "no index factory named '";
      msg += name;
      msg += "' (registered: ";
      bool first = true;
      for (const auto& [k, v] : reg.factories) {
        if (!first) msg += ", ";
        msg += k;
        first = false;
      }
      msg += ")";
      return Status::NotFound(std::move(msg));
    }
    factory = it->second;  // copy so the build runs outside the lock
  }
  return factory(spec, data, pool);
}

std::vector<std::string> RegisteredIndexNames() {
  RegistryState& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<std::string> names;
  names.reserve(reg.factories.size());
  for (const auto& [k, v] : reg.factories) names.push_back(k);
  return names;
}

}  // namespace blink
