// Self-calibrating runtime parameters (DESIGN.md D11): Index::Calibrate
// searches the SearchOptions space for the cheapest configuration meeting a
// recall target, so nobody hand-picks window / nprobe_shards / re-rank
// depth per dataset (the SVS/Faiss auto-tune workflow).
//
// The search is deterministic given the index and the sample:
//   1. Window: exponential growth from k until the target is met (recall
//      is monotone in the window up to FP noise), then binary search for
//      the smallest window that still meets it.
//   2. Shard probes (kCapShardProbe only): greedy ascent over
//      nprobe_shards = 1, 2, ... — the first (cheapest) probe count that
//      meets the target wins; all shards (0) is the fallback.
//   3. Re-rank depth (kCapRerank only): greedy doubling over
//      rerank_window = k, 2k, 4k, ... < window — the first (cheapest)
//      depth that meets the target wins; the full window (0) is the
//      fallback.
// Every probed configuration is measured with SearchBatchEx (recall against
// exact ground truth, distance computations per query, indicative QPS); the
// refinement directions all strictly reduce work, so "first that meets the
// target" is "cheapest that meets the target".
#pragma once

#include <vector>

#include "api/index.h"
#include "eval/interface.h"
#include "util/matrix.h"
#include "util/status.h"

namespace blink {

/// Whether one knob participates in calibration. kAuto follows the index's
/// capabilities; kOn demands the knob (Unsupported Status when the index
/// lacks the capability); kOff pins the seed value.
enum class TuneKnob { kAuto, kOn, kOff };

/// What to calibrate against. `sample_queries` should be held out from the
/// traffic the tuned options will serve (the CLI tools split their query
/// set); `groundtruth` holds the exact k nearest neighbors per sample row.
struct CalibrationTarget {
  double target_recall = 0.9;  ///< mean k-recall@k the options must meet
  MatrixViewF sample_queries;  ///< nq x dim held-out sample
  const Matrix<uint32_t>* groundtruth = nullptr;  ///< nq x >= k exact ids
  size_t k = 10;               ///< neighbors per query
  uint32_t max_window = 1024;  ///< give up above this window
  TuneKnob tune_shard_probes = TuneKnob::kAuto;  ///< nprobe_shards knob
  TuneKnob tune_rerank = TuneKnob::kAuto;        ///< rerank_window knob
  /// Starting values; knobs the calibration does not own (prefetch,
  /// visited set, IVF nprobe/reorder) pass through unchanged.
  SearchOptions seed;
  ThreadPool* pool = nullptr;  ///< batch parallelism during measurement
};

/// One measured configuration.
struct CalibrationPoint {
  SearchOptions options;
  double recall = 0.0;
  double dists_per_query = 0.0;  ///< from BatchStats (0 when untracked)
  double qps = 0.0;  ///< single measurement — indicative, not a benchmark
};

/// The winning configuration plus the full measurement trace, in probe
/// order (the window-growth prefix is monotonically increasing).
struct CalibrationReport {
  SearchOptions options;
  CalibrationPoint achieved;  ///< measurement of `options`
  std::vector<CalibrationPoint> trace;
};

/// Runs the calibration described above. Errors:
///   InvalidArgument — empty/mismatched sample, bad k or target_recall;
///   Unsupported     — a TuneKnob::kOn knob the index has no capability
///                     for, or an index that cannot search;
///   OutOfRange      — the target is unreachable at max_window (the
///                     message reports the best recall measured).
Result<CalibrationReport> CalibrateIndex(const Index& index,
                                         const CalibrationTarget& target);

}  // namespace blink
