#include "api/spec.h"

namespace blink {

const char* KindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kStaticF32: return "static-f32";
    case IndexKind::kStaticF16: return "static-f16";
    case IndexKind::kStaticLvq: return "static-lvq";
    case IndexKind::kSharded: return "sharded";
    case IndexKind::kDynamicF32: return "dynamic-f32";
    case IndexKind::kDynamicLvq: return "dynamic-lvq";
    case IndexKind::kStaticLeanVec: return "static-leanvec";
    case IndexKind::kStaticLeanVecLvq: return "static-leanvec-lvq";
  }
  return "unknown";
}

const char* LoadModeName(LoadMode mode) {
  return mode == LoadMode::kMap ? "map" : "load";
}

Result<IndexKind> ParseIndexKind(const std::string& name) {
  for (IndexKind kind :
       {IndexKind::kStaticF32, IndexKind::kStaticF16, IndexKind::kStaticLvq,
        IndexKind::kSharded, IndexKind::kDynamicF32, IndexKind::kDynamicLvq,
        IndexKind::kStaticLeanVec, IndexKind::kStaticLeanVecLvq}) {
    if (name == KindName(kind)) return kind;
  }
  return Status::InvalidArgument("unknown index kind '" + name +
                                 "' (expected static-f32, static-f16, "
                                 "static-lvq, sharded, dynamic-f32, "
                                 "dynamic-lvq, static-leanvec or "
                                 "static-leanvec-lvq)");
}

bool IsDynamicKind(IndexKind kind) {
  return kind == IndexKind::kDynamicF32 || kind == IndexKind::kDynamicLvq;
}

namespace {

bool UsesLvq(IndexKind kind) {
  return kind == IndexKind::kStaticLvq || kind == IndexKind::kSharded ||
         kind == IndexKind::kDynamicLvq;
}

bool IsLeanVecKind(IndexKind kind) {
  return kind == IndexKind::kStaticLeanVec ||
         kind == IndexKind::kStaticLeanVecLvq;
}

}  // namespace

bool SpecHasReranker(const IndexSpec& spec) {
  // One declarative rule mirroring each storage's has_second_level():
  // LVQ flavors grow a secondary (residual) view iff bits2 > 0; LeanVec
  // flavors always carry the full-dimension secondary their projection
  // search depends on.
  if (IsLeanVecKind(spec.kind)) return true;
  return UsesLvq(spec.kind) && spec.bits2 > 0;
}

Capabilities SpecCapabilities(const IndexSpec& spec) {
  Capabilities caps = kCapSearch | kCapSave;
  if (spec.kind == IndexKind::kSharded) caps |= kCapShardProbe;
  if (SpecHasReranker(spec)) caps |= kCapRerank;
  if (IsDynamicKind(spec.kind)) {
    caps |= kCapInsert | kCapDelete | kCapConsolidate;
  }
  return caps;
}

Status IndexSpec::Validate() const {
  if (graph.graph_max_degree == 0 || graph.graph_max_degree > 4096) {
    return Status::InvalidArgument(
        "graph_max_degree must be in [1, 4096], got " +
        std::to_string(graph.graph_max_degree));
  }
  if (graph.window_size > (1u << 20)) {
    return Status::InvalidArgument("window_size out of range");
  }
  if (graph.alpha > 16.0f) {
    return Status::InvalidArgument("alpha out of range (> 16)");
  }
  if (UsesLvq(kind)) {
    if (bits1 < 1 || bits1 > 16) {
      return Status::InvalidArgument("bits1 must be in [1, 16], got " +
                                     std::to_string(bits1));
    }
    if (bits2 < 0 || bits2 > 16) {
      return Status::InvalidArgument("bits2 must be in [0, 16], got " +
                                     std::to_string(bits2));
    }
  }
  if (kind == IndexKind::kSharded) {
    if (partition.num_shards == 0 || partition.num_shards > (1u << 16)) {
      return Status::InvalidArgument("num_shards must be in [1, 65536]");
    }
  }
  if (IsLeanVecKind(kind) && leanvec_dim > (1u << 20)) {
    return Status::InvalidArgument("leanvec_dim out of range");
  }
  return Status::OK();
}

IndexSpec IndexSpec::Resolved() const {
  IndexSpec r = *this;
  if (r.graph.window_size == 0) {
    r.graph.window_size = 2 * r.graph.graph_max_degree;
  }
  if (!(r.graph.alpha > 0.0f)) {
    r.graph.alpha = r.metric == Metric::kL2 ? 1.2f : 0.95f;
  }
  return r;
}

}  // namespace blink
