#include "api/calibrate.h"

#include <algorithm>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "eval/metrics.h"
#include "util/timer.h"

namespace blink {

namespace {

// Tunability of one knob after reconciling the request with the index's
// capabilities. TuneKnob::kOn on a missing capability is an error the
// caller reports; kAuto silently degrades to "pinned".
Result<bool> ResolveKnob(TuneKnob knob, bool capable, const char* what) {
  switch (knob) {
    case TuneKnob::kOff:
      return false;
    case TuneKnob::kAuto:
      return capable;
    case TuneKnob::kOn:
      if (!capable) {
        return Status::Unsupported(std::string("cannot tune ") + what +
                                   ": the index lacks the capability");
      }
      return true;
  }
  return Status::InvalidArgument("bad TuneKnob");
}

// Measures one configuration over the whole sample. Recall is deterministic
// (RunBatchSlices partitions by query, so thread count never changes
// results); QPS is a single wall-clock reading, indicative only.
class Measurer {
 public:
  Measurer(const Index& index, const CalibrationTarget& target)
      : index_(index),
        target_(target),
        nq_(target.sample_queries.rows),
        ids_(nq_, target.k),
        dists_(nq_ * target.k) {}

  const CalibrationPoint& Measure(const SearchOptions& options) {
    // The probe sequence revisits configurations (the bisection endpoints,
    // the full-window fallback); one batch search each is enough.
    const Key key = KeyOf(options);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;

    BatchStats stats;
    Timer timer;
    index_.SearchBatchEx(target_.sample_queries, target_.k, options,
                         ids_.data(), dists_.data(), &stats, target_.pool);
    const double secs = timer.Seconds();

    CalibrationPoint point;
    point.options = options;
    point.recall = MeanRecallAtK(ids_, *target_.groundtruth, target_.k);
    point.dists_per_query =
        static_cast<double>(stats.distance_computations) / nq_;
    point.qps = secs > 0.0 ? nq_ / secs : 0.0;
    trace_.push_back(point);
    return cache_.emplace(key, point).first->second;
  }

  bool Meets(const SearchOptions& options) {
    return Measure(options).recall >= target_.target_recall;
  }

  std::vector<CalibrationPoint>& trace() { return trace_; }

 private:
  // The three knobs calibration moves; everything else is pinned to the
  // seed, so it cannot differentiate cache entries.
  using Key = std::tuple<uint32_t, uint32_t, uint32_t>;
  static Key KeyOf(const SearchOptions& o) {
    return {o.window, o.nprobe_shards, o.rerank_window};
  }

  const Index& index_;
  const CalibrationTarget& target_;
  size_t nq_;
  Matrix<uint32_t> ids_;
  std::vector<float> dists_;
  std::map<Key, CalibrationPoint> cache_;
  std::vector<CalibrationPoint> trace_;
};

}  // namespace

Result<CalibrationReport> CalibrateIndex(const Index& index,
                                         const CalibrationTarget& target) {
  if (!index) return Status::InvalidArgument("Calibrate on an empty Index");
  const Capabilities caps = index.capabilities();
  if ((caps & kCapSearch) == 0) {
    return Status::Unsupported("index cannot search");
  }
  if (!(target.target_recall > 0.0) || target.target_recall > 1.0) {
    return Status::InvalidArgument("target_recall must be in (0, 1], got " +
                                   std::to_string(target.target_recall));
  }
  if (target.k == 0) return Status::InvalidArgument("k must be >= 1");
  if (target.sample_queries.rows == 0) {
    return Status::InvalidArgument("sample_queries is empty");
  }
  if (target.sample_queries.cols != index.dim()) {
    return Status::InvalidArgument(
        "sample dim " + std::to_string(target.sample_queries.cols) +
        " != index dim " + std::to_string(index.dim()));
  }
  if (target.groundtruth == nullptr) {
    return Status::InvalidArgument("groundtruth is required");
  }
  if (target.groundtruth->rows() != target.sample_queries.rows) {
    return Status::InvalidArgument("groundtruth rows != sample rows");
  }
  if (target.groundtruth->cols() < target.k) {
    return Status::InvalidArgument("groundtruth has fewer than k columns");
  }

  // Only graph kinds answer to `window`; WrapSearchIndex()ed baselines are
  // accepted too (hnsw maps window to ef_search; the flat scans simply
  // plateau, and the plateau either meets the target at window = k or is
  // reported unreachable).
  auto tune_shards_or =
      ResolveKnob(target.tune_shard_probes, (caps & kCapShardProbe) != 0,
                  "nprobe_shards (shard probing)");
  if (!tune_shards_or.ok()) return tune_shards_or.status();
  auto tune_rerank_or = ResolveKnob(
      target.tune_rerank, (caps & kCapRerank) != 0, "rerank_window (re-rank)");
  if (!tune_rerank_or.ok()) return tune_rerank_or.status();
  const bool tune_shards = tune_shards_or.value();
  const bool tune_rerank = tune_rerank_or.value();

  const uint32_t k32 = static_cast<uint32_t>(target.k);
  const uint32_t max_window = std::max(target.max_window, k32);

  // Knobs this calibration owns start from their most-accurate setting so
  // the window phase measures the recall ceiling: probe all shards, re-rank
  // the full window.
  SearchOptions base = target.seed;
  if (tune_shards) base.nprobe_shards = 0;
  if (tune_rerank) {
    base.rerank = true;
    base.rerank_window = 0;
  }
  Status valid = base.Validate();
  if (!valid.ok()) return valid;

  Measurer measure(index, target);

  // Phase 1 — window. Exponential growth k, 2k, 4k, ... until the target is
  // met, then bisect down to the smallest window that still meets it.
  SearchOptions probe = base;
  probe.window = k32;
  // Windows below k are clamped to k by every search path, so k-1 is the
  // bisection floor — probing below it would re-measure the same config.
  uint32_t lo = k32 - 1;  // largest window treated as below target
  uint32_t hi = 0;        // smallest window known to meet it
  while (true) {
    if (measure.Meets(probe)) {
      hi = probe.window;
      break;
    }
    lo = probe.window;
    if (probe.window >= max_window) break;
    probe.window = std::min(max_window, probe.window * 2);
  }
  if (hi == 0) {
    double best = 0.0;
    for (const auto& p : measure.trace()) best = std::max(best, p.recall);
    return Status::OutOfRange(
        "target_recall " + std::to_string(target.target_recall) +
        " unreachable at max_window " + std::to_string(max_window) +
        " (best measured recall " + std::to_string(best) + ")");
  }
  while (hi - lo > 1) {
    probe.window = lo + (hi - lo) / 2;
    if (measure.Meets(probe)) {
      hi = probe.window;
    } else {
      lo = probe.window;
    }
  }
  SearchOptions best = base;
  best.window = hi;

  // Phase 2 — shard probes, cheapest first. nprobe_shards = 0 (all shards)
  // is what phase 1 measured, so it is the guaranteed fallback.
  if (tune_shards) {
    const size_t num_shards = index.spec().partition.num_shards;
    for (uint32_t np = 1; np + 1 <= num_shards; ++np) {
      probe = best;
      probe.nprobe_shards = np;
      if (measure.Meets(probe)) {
        best.nprobe_shards = np;
        break;
      }
    }
  }

  // Phase 3 — re-rank depth, cheapest first: k, 2k, 4k, ... strictly below
  // the window. The full window (0) is what the earlier phases measured,
  // so it is the guaranteed fallback.
  if (tune_rerank) {
    for (uint32_t depth = k32; depth < best.window; depth *= 2) {
      probe = best;
      probe.rerank_window = depth;
      if (measure.Meets(probe)) {
        best.rerank_window = depth;
        break;
      }
    }
  }

  CalibrationReport report;
  report.options = best;
  report.achieved = measure.Measure(best);
  report.trace = std::move(measure.trace());
  return report;
}

}  // namespace blink
