#include "api/index.h"

#include <filesystem>
#include <utility>
#include <vector>

#include "api/calibrate.h"

#include "filter/serialize.h"
#include "graph/index.h"
#include "graph/serialize.h"
#include "quant/leanvec.h"
#include "quant/lvq_dynamic.h"
#include "shard/serialize.h"
#include "shard/sharded_index.h"

namespace blink {

namespace detail {

// ---------------------------------------------------------------------------
// IndexImpl: the type-erasure seam behind the Index handle. One subclass
// per flavor family; mutation defaults to Unsupported so only the dynamic
// flavors opt in.
// ---------------------------------------------------------------------------
class IndexImpl {
 public:
  IndexImpl(IndexSpec spec, Capabilities caps, bool self_described)
      : spec_(std::move(spec)), caps_(caps), self_described_(self_described) {}
  virtual ~IndexImpl() = default;

  virtual const SearchIndex& search() const = 0;

  virtual Status Save(const std::string& /*path*/) const {
    return Status::Unsupported(search().name() + " cannot be saved");
  }
  virtual Result<uint32_t> Insert(const float* /*vec*/) {
    return Status::Unsupported(search().name() + " is immutable");
  }
  virtual Status Delete(uint32_t /*id*/) {
    return Status::Unsupported(search().name() + " is immutable");
  }
  virtual Status Consolidate() {
    return Status::Unsupported(search().name() + " is immutable");
  }
  virtual Status AttachMetadata(std::shared_ptr<const MetadataStore> /*md*/) {
    return Status::Unsupported(search().name() +
                               " does not support per-vector metadata");
  }
  virtual const MetadataStore* metadata() const { return nullptr; }
  virtual Status UpsertMetadata(uint32_t /*id*/, uint64_t /*tags*/,
                                const double* /*values*/,
                                size_t /*num_values*/) {
    return Status::Unsupported(search().name() +
                               " does not support metadata upsert");
  }

  const IndexSpec& spec() const { return spec_; }
  Capabilities capabilities() const { return caps_; }
  bool self_described() const { return self_described_; }

 protected:
  /// kCapFilter is not a spec capability: it tracks whether metadata is
  /// currently attached. Flavors toggle it from AttachMetadata.
  void SetFilterCap(bool on) {
    if (on) {
      caps_ |= kCapFilter;
    } else {
      caps_ &= ~kCapFilter;
    }
  }

 private:
  IndexSpec spec_;
  Capabilities caps_;
  bool self_described_;
};

namespace {

/// Writes the `.meta` sidecar next to a saved artifact, or removes a
/// stale one when the index has no metadata attached — Open() probes the
/// sidecar path, so a leftover from an earlier save must not resurrect.
/// `n_rows` caps the rows written (dynamic stores are sized to capacity);
/// 0 means every row.
Status SaveMetadataSidecar(const std::string& meta_path,
                           const MetadataStore* md, size_t n_rows = 0) {
  if (md == nullptr) {
    std::error_code ec;
    std::filesystem::remove(meta_path, ec);
    return Status::OK();
  }
  return SaveMetadata(meta_path, *md, n_rows == 0 ? md->size() : n_rows);
}

/// Static flavors: a VamanaIndex over Float/F16/Lvq storage, saved as a
/// self-describing <prefix>.{graph,vecs} bundle. In map mode the flavor
/// also owns the file mappings the graph/storage views point into — they
/// must outlive the index, and destruction order here guarantees it
/// (members destroy in reverse declaration order).
template <typename Storage>
class StaticFlavor : public IndexImpl {
 public:
  StaticFlavor(std::unique_ptr<VamanaIndex<Storage>> index, IndexSpec spec,
               Capabilities caps, bool self_described,
               std::vector<MmapFile> mappings = {})
      : IndexImpl(std::move(spec), caps, self_described),
        mappings_(std::move(mappings)),
        index_(std::move(index)) {}

  const SearchIndex& search() const override { return *index_; }

  Status Save(const std::string& path) const override {
    BLINK_RETURN_NOT_OK(SaveIndexBundle(path, *index_));
    return SaveMetadataSidecar(path + ".meta", index_->metadata());
  }

  Status AttachMetadata(std::shared_ptr<const MetadataStore> md) override {
    BLINK_RETURN_NOT_OK(index_->AttachMetadata(std::move(md)));
    SetFilterCap(index_->metadata() != nullptr);
    return Status::OK();
  }
  const MetadataStore* metadata() const override { return index_->metadata(); }

 private:
  std::vector<MmapFile> mappings_;
  std::unique_ptr<VamanaIndex<Storage>> index_;
};

class ShardedFlavor : public IndexImpl {
 public:
  ShardedFlavor(std::unique_ptr<ShardedIndex> index, IndexSpec spec,
                Capabilities caps, bool self_described)
      : IndexImpl(std::move(spec), caps, self_described),
        index_(std::move(index)) {}

  const SearchIndex& search() const override { return *index_; }

  Status Save(const std::string& path) const override {
    BLINK_RETURN_NOT_OK(SaveShardedIndex(path, *index_));
    return SaveMetadataSidecar(path + "/metadata.meta", index_->metadata());
  }

  Status AttachMetadata(std::shared_ptr<const MetadataStore> md) override {
    const bool attach = md != nullptr;
    BLINK_RETURN_NOT_OK(index_->AttachMetadata(std::move(md)));
    SetFilterCap(attach);
    return Status::OK();
  }
  const MetadataStore* metadata() const override { return index_->metadata(); }

 private:
  std::unique_ptr<ShardedIndex> index_;
};

/// Dynamic flavors own the mutable index plus the DynamicView that adapts
/// it to the SearchIndex seam (search sizes report live vectors).
template <typename Storage>
class DynamicFlavor : public IndexImpl {
 public:
  DynamicFlavor(std::unique_ptr<DynamicGraphIndex<Storage>> index,
                IndexSpec spec, Capabilities caps, bool self_described)
      : IndexImpl(std::move(spec), caps, self_described),
        index_(std::move(index)),
        view_(index_.get()) {}

  const SearchIndex& search() const override { return view_; }

  Status Save(const std::string& path) const override {
    BLINK_RETURN_NOT_OK(SaveDynamic(path, *index_));
    // Slot ids 0..size()-1 persist through Save/Open verbatim (tombstones
    // included), so only those rows go into the sidecar — the store itself
    // is sized to capacity.
    return SaveMetadataSidecar(path + ".meta", index_->metadata(),
                               index_->size());
  }
  Result<uint32_t> Insert(const float* vec) override {
    return index_->Insert(vec);
  }
  Status Delete(uint32_t id) override { return index_->Delete(id); }
  Status Consolidate() override {
    index_->ConsolidateDeletes();
    return Status::OK();
  }
  Status AttachMetadata(std::shared_ptr<const MetadataStore> md) override {
    if (md == nullptr) {
      BLINK_RETURN_NOT_OK(index_->AttachMetadata(nullptr));
      SetFilterCap(false);
      return Status::OK();
    }
    // The dynamic store is upserted in place; attach an owned copy so a
    // shared (or mapped) input is never mutated behind the caller's back.
    BLINK_RETURN_NOT_OK(index_->AttachMetadata(
        std::make_shared<MetadataStore>(md->OwnedCopy())));
    SetFilterCap(true);
    return Status::OK();
  }
  const MetadataStore* metadata() const override { return index_->metadata(); }
  Status UpsertMetadata(uint32_t id, uint64_t tags, const double* values,
                        size_t num_values) override {
    return index_->UpsertMetadata(id, tags, values, num_values);
  }

 private:
  std::unique_ptr<DynamicGraphIndex<Storage>> index_;
  DynamicView<Storage> view_;
};

/// Anything else that implements SearchIndex (the baselines): search-only.
class WrappedFlavor : public IndexImpl {
 public:
  WrappedFlavor(std::unique_ptr<SearchIndex> index, IndexSpec spec)
      : IndexImpl(std::move(spec), kCapSearch, /*self_described=*/true),
        index_(std::move(index)) {}

  const SearchIndex& search() const override { return *index_; }

 private:
  std::unique_ptr<SearchIndex> index_;
};

DynamicOptions ToDynamicOptions(const IndexSpec& spec) {
  DynamicOptions opts;
  opts.graph_max_degree = spec.graph.graph_max_degree;
  opts.build_window = spec.graph.window_size;
  opts.alpha = spec.graph.alpha;
  opts.metric = spec.metric;
  opts.initial_capacity = spec.dynamic.initial_capacity;
  return opts;
}

/// Spec as reconstructed from a reopened dynamic index.
template <typename Storage>
IndexSpec DynamicSpecOf(const DynamicGraphIndex<Storage>& index,
                        IndexKind kind) {
  IndexSpec spec;
  spec.kind = kind;
  spec.metric = index.options().metric;
  spec.graph.graph_max_degree = index.options().graph_max_degree;
  spec.graph.window_size = index.options().build_window;
  spec.graph.alpha = index.options().alpha;
  spec.dynamic.initial_capacity = index.options().initial_capacity;
  return spec;
}

}  // namespace
}  // namespace detail

// ---------------------------------------------------------------------------
// Index: thin forwarding over IndexImpl.
// ---------------------------------------------------------------------------

Index::Index() = default;
Index::Index(std::unique_ptr<detail::IndexImpl> impl)
    : impl_(std::move(impl)) {}
Index::~Index() = default;
Index::Index(Index&&) noexcept = default;
Index& Index::operator=(Index&&) noexcept = default;

std::string Index::name() const { return impl_->search().name(); }
size_t Index::size() const { return impl_->search().size(); }
size_t Index::dim() const { return impl_->search().dim(); }
size_t Index::memory_bytes() const { return impl_->search().memory_bytes(); }
IndexKind Index::kind() const { return impl_->spec().kind; }
Metric Index::metric() const { return impl_->spec().metric; }
Capabilities Index::capabilities() const { return impl_->capabilities(); }
const IndexSpec& Index::spec() const { return impl_->spec(); }
bool Index::self_described() const { return impl_->self_described(); }

void Index::SearchBatch(MatrixViewF queries, size_t k,
                        const SearchOptions& params, uint32_t* ids,
                        ThreadPool* pool) const {
  impl_->search().SearchBatch(queries, k, params, ids, pool);
}

void Index::SearchBatchEx(MatrixViewF queries, size_t k,
                          const SearchOptions& params, uint32_t* ids,
                          float* dists, BatchStats* stats,
                          ThreadPool* pool) const {
  impl_->search().SearchBatchEx(queries, k, params, ids, dists, stats, pool);
}

std::unique_ptr<Searcher> Index::MakeSearcher() const {
  return impl_->search().MakeSearcher();
}

const SearchIndex& Index::AsSearchIndex() const { return impl_->search(); }

Result<SearchOptions> Index::Calibrate(const CalibrationTarget& target) const {
  Result<CalibrationReport> report = CalibrateIndex(*this, target);
  if (!report.ok()) return report.status();
  return std::move(report).value().options;
}

Status Index::Save(const std::string& path) const { return impl_->Save(path); }

Result<uint32_t> Index::Insert(const float* vec) { return impl_->Insert(vec); }
Status Index::Delete(uint32_t id) { return impl_->Delete(id); }
Status Index::Consolidate() { return impl_->Consolidate(); }

Status Index::AttachMetadata(std::shared_ptr<const MetadataStore> metadata) {
  return impl_->AttachMetadata(std::move(metadata));
}
const MetadataStore* Index::metadata() const { return impl_->metadata(); }
Status Index::UpsertMetadata(uint32_t id, uint64_t tags, const double* values,
                             size_t num_values) {
  return impl_->UpsertMetadata(id, tags, values, num_values);
}

Result<std::unique_ptr<ServingEngine>> Index::Serve(
    const ServingOptions& options) const {
  BLINK_RETURN_NOT_OK(options.Validate());
  return std::make_unique<ServingEngine>(&impl_->search(), options);
}

// ---------------------------------------------------------------------------
// Build.
// ---------------------------------------------------------------------------

Result<Index> Build(const IndexSpec& spec_in, MatrixViewF data,
                    ThreadPool* pool) {
  BLINK_RETURN_NOT_OK(spec_in.Validate());
  const IndexSpec spec = spec_in.Resolved();
  switch (spec.kind) {
    case IndexKind::kStaticF32: {
      auto idx = BuildVamanaF32(data, spec.metric, spec.graph, pool);
      return Index(std::make_unique<detail::StaticFlavor<FloatStorage>>(
          std::move(idx), spec, SpecCapabilities(spec), true));
    }
    case IndexKind::kStaticF16: {
      auto idx = BuildVamanaF16(data, spec.metric, spec.graph, pool);
      return Index(std::make_unique<detail::StaticFlavor<F16Storage>>(
          std::move(idx), spec, SpecCapabilities(spec), true));
    }
    case IndexKind::kStaticLvq: {
      auto idx = BuildOgLvq(data, spec.metric, spec.bits1, spec.bits2,
                            spec.graph, pool);
      return Index(std::make_unique<detail::StaticFlavor<LvqStorage>>(
          std::move(idx), spec, SpecCapabilities(spec), true));
    }
    case IndexKind::kStaticLeanVec: {
      Result<LeanVecStorage> storage =
          BuildLeanVecStorage(data, spec.metric, spec.leanvec_dim, pool);
      if (!storage.ok()) return storage.status();
      IndexSpec resolved = spec;
      // The spec records the d' actually in effect (0 selected the d/4
      // default) and the fixed encodings, so it matches a reopened one.
      resolved.leanvec_dim = storage.value().primary_dim();
      resolved.bits1 = 8;
      resolved.bits2 = 0;
      auto idx = std::make_unique<VamanaIndex<LeanVecStorage>>(
          std::move(storage).value(), spec.graph, pool);
      const Capabilities caps = SpecCapabilities(resolved);
      return Index(std::make_unique<detail::StaticFlavor<LeanVecStorage>>(
          std::move(idx), std::move(resolved), caps, true));
    }
    case IndexKind::kStaticLeanVecLvq: {
      Result<LeanVecLvqStorage> storage =
          BuildLeanVecLvqStorage(data, spec.metric, spec.leanvec_dim, pool);
      if (!storage.ok()) return storage.status();
      IndexSpec resolved = spec;
      resolved.leanvec_dim = storage.value().primary_dim();
      resolved.bits1 = 8;  // both LeanVec LVQ levels are one-level LVQ-8
      resolved.bits2 = 0;
      auto idx = std::make_unique<VamanaIndex<LeanVecLvqStorage>>(
          std::move(storage).value(), spec.graph, pool);
      const Capabilities caps = SpecCapabilities(resolved);
      return Index(std::make_unique<detail::StaticFlavor<LeanVecLvqStorage>>(
          std::move(idx), std::move(resolved), caps, true));
    }
    case IndexKind::kSharded: {
      ShardedBuildParams sp;
      sp.partition = spec.partition;
      sp.graph = spec.graph;
      sp.bits1 = spec.bits1;
      sp.bits2 = spec.bits2;
      auto idx = BuildShardedLvq(data, spec.metric, sp, pool);
      return Index(std::make_unique<detail::ShardedFlavor>(
          std::move(idx), spec, SpecCapabilities(spec), true));
    }
    case IndexKind::kDynamicF32: {
      auto idx = std::make_unique<DynamicIndex>(data.cols,
                                                detail::ToDynamicOptions(spec));
      for (size_t i = 0; i < data.rows; ++i) idx->Insert(data.row(i));
      return Index(std::make_unique<detail::DynamicFlavor<DynamicFloatStorage>>(
          std::move(idx), spec, SpecCapabilities(spec), true));
    }
    case IndexKind::kDynamicLvq: {
      DynamicLvqDataset::Options lo;
      lo.bits1 = spec.bits1;
      lo.bits2 = spec.bits2;
      lo.mean = DynamicLvqDataset::SampleMean(data);
      auto idx = std::make_unique<DynamicLvqIndex>(
          data.cols, detail::ToDynamicOptions(spec),
          DynamicLvqStorage(data.cols, spec.metric, std::move(lo)));
      for (size_t i = 0; i < data.rows; ++i) idx->Insert(data.row(i));
      return Index(std::make_unique<detail::DynamicFlavor<DynamicLvqStorage>>(
          std::move(idx), spec, SpecCapabilities(spec), true));
    }
  }
  return Status::InvalidArgument("unknown index kind");
}

Index WrapSearchIndex(std::unique_ptr<SearchIndex> index,
                      const IndexSpec& spec) {
  return Index(std::make_unique<detail::WrappedFlavor>(std::move(index), spec));
}

// ---------------------------------------------------------------------------
// Open: sniff the artifact, reconstruct the flavor.
// ---------------------------------------------------------------------------

namespace {

/// Loads a heap-backed metadata sidecar when one exists at `meta_path`;
/// a missing sidecar is not an error (null store, filterless artifact).
Result<std::shared_ptr<const MetadataStore>> LoadSidecar(
    const std::string& meta_path) {
  if (!IsMetadataFile(meta_path)) {
    return std::shared_ptr<const MetadataStore>();
  }
  Result<MetadataStore> md = LoadMetadata(meta_path);
  if (!md.ok()) return md.status();
  return std::make_shared<const MetadataStore>(std::move(md).value());
}

Result<Index> OpenSharded(const std::string& path, const OpenOptions& opts) {
  bool self_described = false;
  auto idx = LoadShardedIndex(path, opts.fallback_metric, opts.fallback_graph,
                              opts.use_huge_pages, &self_described);
  if (!idx.ok()) return idx.status();
  IndexSpec spec;
  spec.kind = IndexKind::kSharded;
  spec.metric = idx.value()->metric();
  spec.bits1 = idx.value()->bits1();
  spec.bits2 = idx.value()->bits2();
  spec.graph = idx.value()->build_params();
  spec.partition.num_shards = idx.value()->num_shards();
  Capabilities caps = SpecCapabilities(spec);
  // The sidecar always heap-loads here (even under kMap): attaching
  // slices it into per-shard owned copies anyway.
  auto md = LoadSidecar(path + "/metadata.meta");
  if (!md.ok()) return md.status();
  if (md.value() != nullptr) {
    BLINK_RETURN_NOT_OK(idx.value()->AttachMetadata(std::move(md).value()));
    caps |= kCapFilter;
  }
  auto flavor = std::make_unique<detail::ShardedFlavor>(
      std::move(idx).value(), std::move(spec), caps, self_described);
  return Index(std::move(flavor));
}

Result<Index> OpenDynamic(const std::string& path, const OpenOptions& opts) {
  Result<DynamicKind> kind = PeekDynamicKind(path);
  if (!kind.ok()) return kind.status();
  DynamicOptions dopts;
  dopts.metric = opts.fallback_metric;
  dopts.alpha = opts.fallback_graph.alpha;
  dopts.build_window = opts.fallback_graph.window_size;
  dopts.initial_capacity = opts.dynamic_initial_capacity;
  bool self_described = false;
  // Dynamic metadata is owned and mutable; the sidecar heap-loads and the
  // index resizes it up to capacity on attach.
  auto md = LoadSidecar(path + ".meta");
  if (!md.ok()) return md.status();
  auto owned_md = [&]() -> std::shared_ptr<MetadataStore> {
    if (md.value() == nullptr) return nullptr;
    return std::make_shared<MetadataStore>(md.value()->OwnedCopy());
  };
  if (kind.value() == DynamicKind::kF32) {
    auto idx = LoadDynamicF32(path, dopts, &self_described);
    if (!idx.ok()) return idx.status();
    IndexSpec spec =
        detail::DynamicSpecOf(*idx.value(), IndexKind::kDynamicF32);
    spec.dynamic.initial_capacity = opts.dynamic_initial_capacity;
    Capabilities caps = SpecCapabilities(spec);
    if (auto store = owned_md(); store != nullptr) {
      BLINK_RETURN_NOT_OK(idx.value()->AttachMetadata(std::move(store)));
      caps |= kCapFilter;
    }
    return Index(std::make_unique<detail::DynamicFlavor<DynamicFloatStorage>>(
        std::move(idx).value(), std::move(spec), caps, self_described));
  }
  auto idx = LoadDynamicLvq(path, dopts, &self_described);
  if (!idx.ok()) return idx.status();
  IndexSpec spec = detail::DynamicSpecOf(*idx.value(), IndexKind::kDynamicLvq);
  spec.dynamic.initial_capacity = opts.dynamic_initial_capacity;
  spec.bits1 = idx.value()->storage().dataset().bits1();
  spec.bits2 = idx.value()->storage().dataset().bits2();
  Capabilities caps = SpecCapabilities(spec);
  if (auto store = owned_md(); store != nullptr) {
    BLINK_RETURN_NOT_OK(idx.value()->AttachMetadata(std::move(store)));
    caps |= kCapFilter;
  }
  return Index(std::make_unique<detail::DynamicFlavor<DynamicLvqStorage>>(
      std::move(idx).value(), std::move(spec), caps, self_described));
}

template <typename Storage>
Result<Index> MakeStatic(Storage storage, BuiltGraph graph, IndexSpec spec,
                         bool self_described,
                         std::vector<MmapFile> mappings = {},
                         std::shared_ptr<const MetadataStore> metadata = {}) {
  spec.graph.graph_max_degree = graph.graph.max_degree();
  auto idx = std::make_unique<VamanaIndex<Storage>>(
      std::move(storage), std::move(graph), spec.graph);
  Capabilities caps = SpecCapabilities(spec);
  if (metadata != nullptr) {
    BLINK_RETURN_NOT_OK(idx->AttachMetadata(std::move(metadata)));
    caps |= kCapFilter;
  }
  return Index(std::make_unique<detail::StaticFlavor<Storage>>(
      std::move(idx), std::move(spec), caps, self_described,
      std::move(mappings)));
}

/// Map-mode static open: both bundle files are v3-aligned (the caller
/// checked), so graph and vectors are served straight from read-only
/// mappings; the flavor keeps the MmapFiles alive alongside the index.
Result<Index> OpenStaticMapped(const std::string& prefix,
                               const OpenOptions& opts) {
  MmapFile::Options mopts;
  mopts.random = true;  // greedy search touches pages in graph order
  mopts.huge_pages = opts.use_huge_pages;
  const std::string graph_path = prefix + ".graph";
  const std::string vecs_path = prefix + ".vecs";
  Result<MmapFile> gmap = MmapFile::Map(graph_path, mopts);
  if (!gmap.ok()) return gmap.status();
  Result<MmapFile> vmap = MmapFile::Map(vecs_path, mopts);
  if (!vmap.ok()) return vmap.status();

  IndexMeta meta;
  bool has_meta = false;
  Result<BuiltGraph> graph =
      MapGraph(gmap.value(), graph_path, &meta, &has_meta);
  if (!graph.ok()) return graph.status();
  IndexSpec spec;
  spec.metric = has_meta ? meta.metric : opts.fallback_metric;
  spec.graph = has_meta ? meta.params : opts.fallback_graph;
  spec.load_mode = LoadMode::kMap;

  std::vector<MmapFile> mappings;
  mappings.push_back(std::move(gmap).value());
  mappings.push_back(std::move(vmap).value());

  // The metadata sidecar maps too: the store's column pointers alias the
  // mapping, which the flavor keeps alive alongside graph and vectors.
  std::shared_ptr<const MetadataStore> metadata;
  const std::string meta_path = prefix + ".meta";
  if (IsMetadataFile(meta_path)) {
    Result<MmapFile> mmeta = MmapFile::Map(meta_path, mopts);
    if (!mmeta.ok()) return mmeta.status();
    Result<MetadataStore> md = MapMetadata(mmeta.value());
    if (!md.ok()) return md.status();
    metadata = std::make_shared<const MetadataStore>(std::move(md).value());
    mappings.push_back(std::move(mmeta).value());
  }
  const MmapFile& vm = mappings[1];

  Result<VecsEncoding> enc = PeekVecsEncoding(vecs_path);
  if (!enc.ok()) return enc.status();
  switch (enc.value()) {
    case VecsEncoding::kLvq1: {
      auto ds = MapLvq(vm, vecs_path);
      if (!ds.ok()) return ds.status();
      spec.kind = IndexKind::kStaticLvq;
      spec.bits1 = ds.value().bits();
      spec.bits2 = 0;
      return MakeStatic(LvqStorage(std::move(ds).value(), spec.metric),
                        std::move(graph).value(), std::move(spec), has_meta,
                        std::move(mappings), metadata);
    }
    case VecsEncoding::kLvq2: {
      auto ds = MapLvq2(vm, vecs_path);
      if (!ds.ok()) return ds.status();
      spec.kind = IndexKind::kStaticLvq;
      spec.bits1 = ds.value().bits1();
      spec.bits2 = ds.value().bits2();
      return MakeStatic(LvqStorage(std::move(ds).value(), spec.metric),
                        std::move(graph).value(), std::move(spec), has_meta,
                        std::move(mappings), metadata);
    }
    case VecsEncoding::kFloat32: {
      auto st = MapFloatVecs(vm, vecs_path, spec.metric);
      if (!st.ok()) return st.status();
      spec.kind = IndexKind::kStaticF32;
      return MakeStatic(std::move(st).value(), std::move(graph).value(),
                        std::move(spec), has_meta, std::move(mappings), metadata);
    }
    case VecsEncoding::kFloat16: {
      auto st = MapF16Vecs(vm, vecs_path, spec.metric);
      if (!st.ok()) return st.status();
      spec.kind = IndexKind::kStaticF16;
      return MakeStatic(std::move(st).value(), std::move(graph).value(),
                        std::move(spec), has_meta, std::move(mappings), metadata);
    }
    case VecsEncoding::kLeanVecF32: {
      auto st = MapLeanVecVecs(vm, vecs_path, spec.metric);
      if (!st.ok()) return st.status();
      spec.kind = IndexKind::kStaticLeanVec;
      spec.leanvec_dim = st.value().primary_dim();
      return MakeStatic(std::move(st).value(), std::move(graph).value(),
                        std::move(spec), has_meta, std::move(mappings), metadata);
    }
    case VecsEncoding::kLeanVecLvq: {
      auto st = MapLeanVecLvqVecs(vm, vecs_path, spec.metric);
      if (!st.ok()) return st.status();
      spec.kind = IndexKind::kStaticLeanVecLvq;
      spec.leanvec_dim = st.value().primary_dim();
      spec.bits1 = st.value().primary().level1().bits();
      spec.bits2 = 0;
      return MakeStatic(std::move(st).value(), std::move(graph).value(),
                        std::move(spec), has_meta, std::move(mappings), metadata);
    }
  }
  return Status::Internal(vecs_path + ": unhandled vecs encoding");
}

Result<Index> OpenStatic(const std::string& prefix, const OpenOptions& opts) {
  // Map mode needs both files in the aligned v3 layout; anything older
  // heap-loads below exactly as before (spec records the fallback).
  if (opts.load_mode == LoadMode::kMap &&
      IsMappableArtifact(prefix + ".graph") &&
      IsMappableArtifact(prefix + ".vecs")) {
    return OpenStaticMapped(prefix, opts);
  }
  IndexMeta meta;
  bool has_meta = false;
  Result<BuiltGraph> graph =
      LoadGraph(prefix + ".graph", opts.use_huge_pages, &meta, &has_meta);
  if (!graph.ok()) return graph.status();
  IndexSpec spec;
  spec.metric = has_meta ? meta.metric : opts.fallback_metric;
  spec.graph = has_meta ? meta.params : opts.fallback_graph;

  auto sidecar = LoadSidecar(prefix + ".meta");
  if (!sidecar.ok()) return sidecar.status();
  std::shared_ptr<const MetadataStore> metadata = std::move(sidecar).value();

  const std::string vecs = prefix + ".vecs";
  Result<VecsEncoding> enc = PeekVecsEncoding(vecs);
  if (!enc.ok()) return enc.status();
  switch (enc.value()) {
    case VecsEncoding::kLvq1: {
      auto ds = LoadLvq(vecs, opts.use_huge_pages);
      if (!ds.ok()) return ds.status();
      spec.kind = IndexKind::kStaticLvq;
      spec.bits1 = ds.value().bits();
      spec.bits2 = 0;
      return MakeStatic(LvqStorage(std::move(ds).value(), spec.metric),
                        std::move(graph).value(), std::move(spec), has_meta, {}, metadata);
    }
    case VecsEncoding::kLvq2: {
      auto ds = LoadLvq2(vecs, opts.use_huge_pages);
      if (!ds.ok()) return ds.status();
      spec.kind = IndexKind::kStaticLvq;
      spec.bits1 = ds.value().bits1();
      spec.bits2 = ds.value().bits2();
      return MakeStatic(LvqStorage(std::move(ds).value(), spec.metric),
                        std::move(graph).value(), std::move(spec), has_meta, {}, metadata);
    }
    case VecsEncoding::kFloat32: {
      auto st = LoadFloatVecs(vecs, spec.metric, opts.use_huge_pages);
      if (!st.ok()) return st.status();
      spec.kind = IndexKind::kStaticF32;
      return MakeStatic(std::move(st).value(), std::move(graph).value(),
                        std::move(spec), has_meta, {}, metadata);
    }
    case VecsEncoding::kFloat16: {
      auto st = LoadF16Vecs(vecs, spec.metric, opts.use_huge_pages);
      if (!st.ok()) return st.status();
      spec.kind = IndexKind::kStaticF16;
      return MakeStatic(std::move(st).value(), std::move(graph).value(),
                        std::move(spec), has_meta, {}, metadata);
    }
    case VecsEncoding::kLeanVecF32: {
      auto st = LoadLeanVecVecs(vecs, spec.metric, opts.use_huge_pages);
      if (!st.ok()) return st.status();
      spec.kind = IndexKind::kStaticLeanVec;
      spec.leanvec_dim = st.value().primary_dim();
      return MakeStatic(std::move(st).value(), std::move(graph).value(),
                        std::move(spec), has_meta, {}, metadata);
    }
    case VecsEncoding::kLeanVecLvq: {
      auto st = LoadLeanVecLvqVecs(vecs, spec.metric, opts.use_huge_pages);
      if (!st.ok()) return st.status();
      spec.kind = IndexKind::kStaticLeanVecLvq;
      spec.leanvec_dim = st.value().primary_dim();
      spec.bits1 = st.value().primary().level1().bits();
      spec.bits2 = 0;
      return MakeStatic(std::move(st).value(), std::move(graph).value(),
                        std::move(spec), has_meta, {}, metadata);
    }
  }
  return Status::Internal(vecs + ": unhandled vecs encoding");
}

}  // namespace

Result<Index> Open(const std::string& path, const OpenOptions& options) {
  std::error_code ec;
  if (IsShardedIndexDir(path)) return OpenSharded(path, options);
  if (std::filesystem::is_directory(path, ec)) {
    return Status::IOError(path + ": directory has no sharded-index manifest");
  }
  if (std::filesystem::is_regular_file(path, ec)) {
    if (IsDynamicIndexFile(path)) return OpenDynamic(path, options);
    return Status::IOError(path +
                           ": not a recognized index artifact (expected a "
                           "BLDY dynamic-index file, a sharded-index "
                           "directory, or a <prefix>.graph/.vecs bundle)");
  }
  if (std::filesystem::is_regular_file(path + ".graph", ec)) {
    return OpenStatic(path, options);
  }
  return Status::NotFound(path +
                          ": no such artifact (tried a sharded directory, a "
                          "dynamic-index file, and " + path + ".graph)");
}

}  // namespace blink
