// Name -> factory registry over the public API, so harness sweeps (and
// anything else that enumerates index families) can instantiate indices
// from an IndexSpec plus a string.
//
// Built-in registrations cover the six facade kinds under their
// KindName()s ("static-lvq", "sharded", ...) and the same-harness
// baselines the paper compares against ("hnsw", "ivf-pq", "scann",
// "og-global"); baselines come back as search-only handles (no Save).
// Call sites can register additional factories — e.g. a bench that wants
// a pre-tuned configuration under a short name.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "api/index.h"
#include "api/spec.h"

namespace blink {

/// Builds an Index for `spec` over `data`. Factories interpret the spec's
/// shared fields (metric, graph params, bits) in their own terms — e.g.
/// HNSW reads graph_max_degree as 2M and window_size as ef_construction.
using IndexFactory =
    std::function<Result<Index>(const IndexSpec&, MatrixViewF, ThreadPool*)>;

/// Registers `factory` under `name`. Returns false (and leaves the
/// existing entry) when the name is already taken. Thread-safe.
bool RegisterIndexFactory(const std::string& name, IndexFactory factory);

/// Instantiates the factory registered under `name`. Unknown names return
/// NotFound listing the registered set.
Result<Index> BuildNamed(const std::string& name, const IndexSpec& spec,
                         MatrixViewF data, ThreadPool* pool = nullptr);

/// Sorted names of every registered factory (built-ins included).
std::vector<std::string> RegisteredIndexNames();

}  // namespace blink
