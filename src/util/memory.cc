#include "util/memory.h"

#include <sys/mman.h>
#include <sys/resource.h>
#include <unistd.h>

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace blink {

namespace {
constexpr size_t kHugePageSize = 2ull << 20;  // 2 MiB

size_t RoundUp(size_t x, size_t to) { return (x + to - 1) / to * to; }
}  // namespace

const char* PageBackingName(PageBacking b) {
  switch (b) {
    case PageBacking::kExplicitHuge: return "explicit-huge(2MiB)";
    case PageBacking::kTransparentHuge: return "transparent-huge";
    case PageBacking::kStandard: return "standard(4KiB)";
  }
  return "?";
}

Arena::Arena(size_t bytes, bool want_huge_pages) {
  if (bytes == 0) return;
  bytes_ = bytes;

  if (want_huge_pages) {
    // Tier 1: explicit huge pages. Requires preallocated hugetlbfs pool
    // (e.g. via hugeadm, as in the paper's setup); commonly absent on VMs.
    const size_t rounded = RoundUp(bytes, kHugePageSize);
    void* p = mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
    if (p != MAP_FAILED) {
      ptr_ = p;
      mapped_bytes_ = rounded;
      backing_ = PageBacking::kExplicitHuge;
      return;
    }
    // Tier 2: transparent huge pages via madvise on a 2MiB-aligned mapping.
    p = mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
             MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p != MAP_FAILED) {
#ifdef MADV_HUGEPAGE
      if (madvise(p, rounded, MADV_HUGEPAGE) == 0) {
        backing_ = PageBacking::kTransparentHuge;
      } else {
        backing_ = PageBacking::kStandard;
      }
#else
      backing_ = PageBacking::kStandard;
#endif
      ptr_ = p;
      mapped_bytes_ = rounded;
      return;
    }
  }
  // Tier 3: plain aligned allocation (zeroed to match mmap semantics).
  ptr_ = AlignedAlloc(bytes, 64);
  std::memset(ptr_, 0, bytes);
  mapped_bytes_ = 0;
  backing_ = PageBacking::kStandard;
}

Arena::~Arena() { Release(); }

Arena::Arena(Arena&& o) noexcept
    : ptr_(std::exchange(o.ptr_, nullptr)),
      bytes_(std::exchange(o.bytes_, 0)),
      mapped_bytes_(std::exchange(o.mapped_bytes_, 0)),
      backing_(o.backing_) {}

Arena& Arena::operator=(Arena&& o) noexcept {
  if (this != &o) {
    Release();
    ptr_ = std::exchange(o.ptr_, nullptr);
    bytes_ = std::exchange(o.bytes_, 0);
    mapped_bytes_ = std::exchange(o.mapped_bytes_, 0);
    backing_ = o.backing_;
  }
  return *this;
}

void Arena::Release() {
  if (ptr_ == nullptr) return;
  if (mapped_bytes_ > 0) {
    munmap(ptr_, mapped_bytes_);
  } else {
    AlignedFree(ptr_);
  }
  ptr_ = nullptr;
  bytes_ = 0;
  mapped_bytes_ = 0;
}

void* AlignedAlloc(size_t bytes, size_t alignment) {
  assert((alignment & (alignment - 1)) == 0 && "alignment must be power of 2");
  if (bytes == 0) bytes = alignment;
  // RoundUp would wrap for sizes within `alignment` of SIZE_MAX; treat the
  // request as unsatisfiable rather than allocating a wrapped tiny size.
  if (bytes > SIZE_MAX - (alignment - 1)) return nullptr;
  void* p = nullptr;
  if (posix_memalign(&p, alignment, RoundUp(bytes, alignment)) != 0) {
    return nullptr;
  }
  return p;
}

void AlignedFree(void* p) { std::free(p); }

size_t PeakRssBytes() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<size_t>(ru.ru_maxrss) * 1024;  // ru_maxrss is KiB on Linux
}

size_t CurrentRssBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long pages_total = 0, pages_resident = 0;
  const int got = std::fscanf(f, "%ld %ld", &pages_total, &pages_resident);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<size_t>(pages_resident) *
         static_cast<size_t>(sysconf(_SC_PAGESIZE));
}

}  // namespace blink
