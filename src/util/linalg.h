// Small dense linear algebra: just enough for OPQ's orthogonal Procrustes
// step (SVD of a d x d matrix via one-sided Jacobi).
#pragma once

#include <cstddef>
#include <vector>

#include "util/matrix.h"

namespace blink {

/// Thin SVD of a square matrix A (n x n, row-major): A = U * diag(s) * V^T.
/// One-sided Jacobi: numerically robust for the moderate d (<= ~1000) used
/// here. U and V are orthogonal; s is non-negative, unsorted.
struct SvdResult {
  MatrixF u;             // n x n
  std::vector<float> s;  // n
  MatrixF v;             // n x n
};

SvdResult JacobiSvd(const MatrixF& a, size_t max_sweeps = 30,
                    double tol = 1e-10);

/// C = A^T * B for row-major (n x d) matrices: result is d x d.
MatrixF GramProduct(MatrixViewF a, MatrixViewF b);

/// y = x * M (row vector times matrix), M is (d x d) row-major.
void RowTimesMatrix(const float* x, const MatrixF& m, float* y);

/// y = x * M^T.
void RowTimesMatrixT(const float* x, const MatrixF& m, float* y);

/// ||A * A^T - I||_max: orthogonality defect, for tests.
double OrthogonalityDefect(const MatrixF& a);

}  // namespace blink
