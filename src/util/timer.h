// Wall-clock timing for the benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace blink {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }
  double Micros() const { return Seconds() * 1e6; }
  double Nanos() const { return Seconds() * 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace blink
