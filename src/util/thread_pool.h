// Minimal thread pool for batch-parallel work.
//
// The paper parallelizes search *across* queries: each worker runs the
// single-threaded search routine on a slice of the query batch (Sec. 5,
// "Optimizing graph search"). ParallelFor implements exactly that pattern;
// it is also used for graph construction and ground-truth computation.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace blink {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Task-queue mode: enqueues one task for asynchronous execution on a
  /// worker thread. Tasks run in FIFO order relative to other Submit()s but
  /// interleave with ParallelFor helper tasks. Pending tasks are drained
  /// (not dropped) by the destructor. Thread-safe.
  void Submit(std::function<void()> task) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      tasks_.push([this, t = std::move(task)] {
        t();
        {
          std::unique_lock<std::mutex> done_lk(mu_);
          ++completed_;
        }
        idle_cv_.notify_all();
      });
      ++submitted_;
    }
    cv_.notify_one();
  }

  /// Blocks until every task enqueued with Submit() before this call has
  /// finished executing. (ParallelFor blocks on its own; this is the
  /// equivalent fence for task-queue mode.)
  void WaitIdle() {
    std::unique_lock<std::mutex> lk(mu_);
    idle_cv_.wait(lk, [this] { return completed_ == submitted_; });
  }

  /// Runs fn(i) for i in [0, n), work-stealing in chunks across the pool
  /// (plus the calling thread). Blocks until every dispatched task has
  /// finished executing — tasks capture this frame's state by reference, so
  /// returning any earlier would leave dangling references.
  /// fn must be thread-safe across distinct i.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
    if (n == 0) return;
    const size_t workers = workers_.size();
    if (workers <= 1 || n == 1) {
      for (size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    struct ForState {
      std::atomic<size_t> next{0};
      std::atomic<size_t> tasks_left{0};
      std::mutex mu;
      std::condition_variable cv;
    };
    ForState st;
    const size_t chunk = std::max<size_t>(1, n / (workers * 8));
    const size_t helper_tasks = workers - 1;
    st.tasks_left.store(helper_tasks, std::memory_order_relaxed);

    auto drain = [&st, &fn, n, chunk] {
      for (;;) {
        const size_t begin = st.next.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= n) break;
        const size_t end = std::min(n, begin + chunk);
        for (size_t i = begin; i < end; ++i) fn(i);
      }
    };
    auto helper = [&st, drain] {
      drain();
      // The decrement must happen under st.mu: were the count to reach
      // zero outside the lock, the caller's predicate could observe it,
      // return, and destroy `st` (a stack frame) before this task takes
      // the lock — a use-after-free that preemption right after an
      // unlocked fetch_sub makes real on single-core runners.
      std::unique_lock<std::mutex> lk(st.mu);
      if (st.tasks_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        st.cv.notify_all();
      }
    };
    {
      std::unique_lock<std::mutex> lk(mu_);
      for (size_t t = 0; t < helper_tasks; ++t) tasks_.push(helper);
    }
    cv_.notify_all();
    drain();  // the calling thread helps
    std::unique_lock<std::mutex> lk(st.mu);
    st.cv.wait(lk, [&st] {
      return st.tasks_left.load(std::memory_order_acquire) == 0;
    });
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
        if (stop_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      task();
    }
  }

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;  // signals Submit-task completion
  uint64_t submitted_ = 0;           // Submit() tasks enqueued (guarded by mu_)
  uint64_t completed_ = 0;           // Submit() tasks finished (guarded by mu_)
  bool stop_ = false;
};

/// Convenience: parallel-for over a temporary pool of `threads` workers, or
/// serial execution when threads <= 1.
inline void ParallelFor(size_t threads, size_t n,
                        const std::function<void(size_t)>& fn) {
  if (threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(threads);
  pool.ParallelFor(n, fn);
}

}  // namespace blink
