#include "util/io.h"

#include <cstdio>
#include <cstring>
#include <memory>

namespace blink {

namespace {

constexpr uint32_t kNativeMagic = 0x4B4E4C42u;  // "BLNK" little-endian
constexpr uint32_t kNativeVersion = 1;

struct FileCloser {
  void operator()(FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<FILE, FileCloser>;

File OpenFile(const std::string& path, const char* mode) {
  return File(std::fopen(path.c_str(), mode));
}

/// Bytes from the stream position to end-of-file (0 on a non-seekable
/// stream). Readers check header-implied payload sizes against this so a
/// forged header fails with a Status instead of sizing an allocation.
uint64_t RemainingBytes(FILE* f) {
  const long pos = std::ftell(f);
  if (pos < 0) return 0;
  if (std::fseek(f, 0, SEEK_END) != 0) return 0;
  const long end = std::ftell(f);
  std::fseek(f, pos, SEEK_SET);
  return end > pos ? static_cast<uint64_t>(end - pos) : 0;
}

template <typename T>
Result<Matrix<T>> ReadXvecs(const std::string& path) {
  File f = OpenFile(path, "rb");
  if (!f) return Status::IOError("cannot open " + path);

  std::fseek(f.get(), 0, SEEK_END);
  const long fsize = std::ftell(f.get());
  std::fseek(f.get(), 0, SEEK_SET);
  if (fsize < 4) return Status::IOError(path + ": truncated xvecs file");

  int32_t d = 0;
  if (std::fread(&d, sizeof(d), 1, f.get()) != 1 || d <= 0) {
    return Status::IOError(path + ": bad dimension header");
  }
  // d is bounded before it sizes row_bytes (and, via rows * d, the Matrix
  // allocation): INT32_MAX * sizeof(T) would already overflow row_bytes'
  // arithmetic on 32-bit size_t, and no real dataset is 2^20-dimensional.
  if (static_cast<uint64_t>(d) > (1u << 20)) {
    return Status::IOError(path + ": implausible dimension header");
  }
  const size_t row_bytes = sizeof(int32_t) + static_cast<size_t>(d) * sizeof(T);
  if (static_cast<size_t>(fsize) % row_bytes != 0) {
    return Status::IOError(path + ": size is not a multiple of the row size");
  }
  const size_t rows = static_cast<size_t>(fsize) / row_bytes;

  Matrix<T> m(rows, static_cast<size_t>(d));
  std::fseek(f.get(), 0, SEEK_SET);
  for (size_t i = 0; i < rows; ++i) {
    int32_t di = 0;
    if (std::fread(&di, sizeof(di), 1, f.get()) != 1 || di != d) {
      return Status::IOError(path + ": inconsistent per-row dimension");
    }
    if (std::fread(m.row(i), sizeof(T), static_cast<size_t>(d), f.get()) !=
        static_cast<size_t>(d)) {
      return Status::IOError(path + ": short read");
    }
  }
  return m;
}

template <typename T>
Status WriteXvecs(const std::string& path, const Matrix<T>& m) {
  File f = OpenFile(path, "wb");
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  const int32_t d = static_cast<int32_t>(m.cols());
  for (size_t i = 0; i < m.rows(); ++i) {
    if (std::fwrite(&d, sizeof(d), 1, f.get()) != 1 ||
        std::fwrite(m.row(i), sizeof(T), m.cols(), f.get()) != m.cols()) {
      return Status::IOError(path + ": short write");
    }
  }
  return Status::OK();
}

template <typename T>
Status WriteNativeImpl(const std::string& path, const Matrix<T>& m,
                       uint32_t dtype) {
  File f = OpenFile(path, "wb");
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  const uint64_t rows = m.rows(), cols = m.cols();
  if (std::fwrite(&kNativeMagic, 4, 1, f.get()) != 1 ||
      std::fwrite(&kNativeVersion, 4, 1, f.get()) != 1 ||
      std::fwrite(&rows, 8, 1, f.get()) != 1 ||
      std::fwrite(&cols, 8, 1, f.get()) != 1 ||
      std::fwrite(&dtype, 4, 1, f.get()) != 1) {
    return Status::IOError(path + ": header write failed");
  }
  const size_t n = m.size();
  if (n > 0 && std::fwrite(m.data(), sizeof(T), n, f.get()) != n) {
    return Status::IOError(path + ": payload write failed");
  }
  return Status::OK();
}

template <typename T>
Result<Matrix<T>> ReadNativeImpl(const std::string& path, uint32_t want_dtype) {
  File f = OpenFile(path, "rb");
  if (!f) return Status::IOError("cannot open " + path);
  uint32_t magic = 0, version = 0, dtype = 0;
  uint64_t rows = 0, cols = 0;
  if (std::fread(&magic, 4, 1, f.get()) != 1 || magic != kNativeMagic) {
    return Status::IOError(path + ": bad magic");
  }
  if (std::fread(&version, 4, 1, f.get()) != 1 || version != kNativeVersion) {
    return Status::IOError(path + ": unsupported version");
  }
  if (std::fread(&rows, 8, 1, f.get()) != 1 ||
      std::fread(&cols, 8, 1, f.get()) != 1 ||
      std::fread(&dtype, 4, 1, f.get()) != 1) {
    return Status::IOError(path + ": truncated header");
  }
  if (dtype != want_dtype) {
    return Status::InvalidArgument(path + ": dtype mismatch");
  }
  // Validate the header-implied payload against the actual file size
  // before rows * cols sizes the Matrix allocation: a forged or corrupt
  // header must produce a Status, not an OOM — and rows * cols itself must
  // not overflow on the way to that check.
  const uint64_t remaining = RemainingBytes(f.get());
  if (cols > (1u << 20) ||
      (cols > 0 && rows > remaining / (cols * sizeof(T))) ||
      (cols == 0 && rows > remaining)) {
    return Status::IOError(path + ": header disagrees with file size");
  }
  Matrix<T> m(rows, cols);
  if (m.size() > 0 &&
      std::fread(m.data(), sizeof(T), m.size(), f.get()) != m.size()) {
    return Status::IOError(path + ": truncated payload");
  }
  return m;
}

}  // namespace

Result<MatrixF> ReadFvecs(const std::string& path) {
  return ReadXvecs<float>(path);
}

Result<Matrix<int32_t>> ReadIvecs(const std::string& path) {
  return ReadXvecs<int32_t>(path);
}

Status WriteFvecs(const std::string& path, const MatrixF& m) {
  return WriteXvecs(path, m);
}

Status WriteIvecs(const std::string& path, const Matrix<int32_t>& m) {
  return WriteXvecs(path, m);
}

Status WriteNative(const std::string& path, const MatrixF& m) {
  return WriteNativeImpl(path, m, 0);
}

Status WriteNative(const std::string& path, const Matrix<uint32_t>& m) {
  return WriteNativeImpl(path, m, 2);
}

Result<MatrixF> ReadNativeF32(const std::string& path) {
  return ReadNativeImpl<float>(path, 0);
}

Result<Matrix<uint32_t>> ReadNativeU32(const std::string& path) {
  return ReadNativeImpl<uint32_t>(path, 2);
}

Result<std::string> ReadTextFile(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::string text;
  char buf[1 << 16];
  size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
    text.append(buf, got);
  }
  if (std::ferror(f.get())) return Status::IOError("read error on " + path);
  return text;
}

Status WriteTextFile(const std::string& path, const std::string& text) {
  File f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return Status::IOError("cannot open " + path);
  if (std::fwrite(text.data(), 1, text.size(), f.get()) != text.size()) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace blink
