// Aligned and huge-page-backed memory allocation (paper Sec. 5, "Memory
// layout and allocation").
//
// Graph-based search makes essentially random accesses across the whole
// index, so with 4 KiB pages a TLB miss per vector access is nearly certain
// at scale. The paper's implementation allocates the graph and the vectors
// in large contiguous blocks backed by explicit huge pages. We implement:
//   1. mmap with MAP_HUGETLB (explicit 2 MiB pages), falling back to
//   2. mmap + madvise(MADV_HUGEPAGE) (transparent huge pages), falling back
//   3. plain aligned allocation,
// and record which tier was obtained so the Fig. 7(b) harness can report it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

namespace blink {

enum class PageBacking {
  kExplicitHuge,     // MAP_HUGETLB succeeded
  kTransparentHuge,  // madvise(MADV_HUGEPAGE) applied
  kStandard,         // regular 4 KiB pages
};

const char* PageBackingName(PageBacking b);

/// A large contiguous allocation, optionally backed by huge pages.
/// Move-only; unmaps/frees on destruction.
class Arena {
 public:
  Arena() = default;
  /// Allocates `bytes` of zeroed memory, aligned to at least 64 bytes.
  /// If `want_huge_pages`, tries explicit then transparent huge pages.
  explicit Arena(size_t bytes, bool want_huge_pages = true);
  ~Arena();

  Arena(Arena&& o) noexcept;
  Arena& operator=(Arena&& o) noexcept;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  uint8_t* data() { return static_cast<uint8_t*>(ptr_); }
  const uint8_t* data() const { return static_cast<const uint8_t*>(ptr_); }
  size_t size() const { return bytes_; }
  PageBacking backing() const { return backing_; }
  bool empty() const { return ptr_ == nullptr; }

 private:
  void Release();

  void* ptr_ = nullptr;
  size_t bytes_ = 0;
  size_t mapped_bytes_ = 0;  // rounded-up size actually mmapped (0 => malloc'd)
  PageBacking backing_ = PageBacking::kStandard;
};

/// Aligned heap allocation helpers for smaller structures.
void* AlignedAlloc(size_t bytes, size_t alignment = 64);
void AlignedFree(void* p);

struct AlignedDeleter {
  void operator()(void* p) const { AlignedFree(p); }
};

template <typename T>
using AlignedPtr = std::unique_ptr<T[], AlignedDeleter>;

template <typename T>
AlignedPtr<T> MakeAligned(size_t count, size_t alignment = 64) {
  // A wrapped count * sizeof(T) would allocate a tiny buffer that
  // type-checks as `count` elements; fail like an allocation failure
  // (null) instead so callers see it immediately.
  if (count > SIZE_MAX / sizeof(T)) return AlignedPtr<T>(nullptr);
  return AlignedPtr<T>(static_cast<T*>(AlignedAlloc(count * sizeof(T), alignment)));
}

/// Maximum resident set size of this process in bytes (from getrusage).
/// Used by the footprint experiments (Fig. 1, Fig. 21, Table 1).
size_t PeakRssBytes();

/// Current resident set size in bytes (from /proc/self/statm).
size_t CurrentRssBytes();

}  // namespace blink
