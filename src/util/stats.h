// Small statistics helpers for the experiment harnesses: running moments,
// percentiles, and fixed-width histograms (used to reproduce the
// distribution figures: Figs. 2, 3, 14, 16).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace blink {

/// Streaming mean/variance (Welford) with min/max tracking.
class RunningStats {
 public:
  void Add(double x);
  size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample (linear interpolation); p in [0, 100].
double Percentile(std::vector<double> values, double p);

/// Fixed-bin histogram over [lo, hi]; out-of-range samples clamp to the
/// edge bins so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);
  void Add(double x);
  size_t count() const { return total_; }
  const std::vector<size_t>& bins() const { return counts_; }
  double bin_center(size_t i) const;
  /// Fraction of samples in bin i.
  double density(size_t i) const;
  /// Fraction of the [lo,hi] range covered by bins holding >= `min_frac` of
  /// the total mass. This is the "range utilization" statistic behind
  /// Fig. 2: LVQ-normalized values should cover ~100% of the range.
  double RangeUtilization(double min_frac = 1e-4) const;
  std::string ToAscii(size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

}  // namespace blink
