#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

namespace blink {

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(values.begin(), values.end());
  const double idx = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::Add(double x) {
  const size_t nbins = counts_.size();
  double t = (x - lo_) / (hi_ - lo_) * static_cast<double>(nbins);
  long idx = static_cast<long>(std::floor(t));
  idx = std::clamp<long>(idx, 0, static_cast<long>(nbins) - 1);
  ++counts_[static_cast<size_t>(idx)];
  ++total_;
}

double Histogram::bin_center(size_t i) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * w;
}

double Histogram::density(size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[i]) / static_cast<double>(total_);
}

double Histogram::RangeUtilization(double min_frac) const {
  if (total_ == 0) return 0.0;
  size_t used = 0;
  for (size_t c : counts_) {
    if (static_cast<double>(c) / static_cast<double>(total_) >= min_frac) ++used;
  }
  return static_cast<double>(used) / static_cast<double>(counts_.size());
}

std::string Histogram::ToAscii(size_t width) const {
  std::ostringstream os;
  size_t max_count = 1;
  for (size_t c : counts_) max_count = std::max(max_count, c);
  for (size_t i = 0; i < counts_.size(); ++i) {
    const size_t bar = counts_[i] * width / max_count;
    os.setf(std::ios::fixed);
    os.precision(4);
    os << bin_center(i) << " | ";
    for (size_t j = 0; j < bar; ++j) os << '#';
    os << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

}  // namespace blink
