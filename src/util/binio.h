// Shared stdio plumbing for the binary index formats (graph/serialize.cc,
// shard/serialize.cc): RAII FILE handle, exact-size read/write helpers,
// and the atomic-save protocol. All formats are little-endian POD
// streams; the helpers return false on short IO so callers can surface a
// Status instead of asserting.
#pragma once

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>

#include "util/status.h"

namespace blink {
namespace binio {

struct FileCloser {
  void operator()(FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<FILE, FileCloser>;

inline bool WriteAll(FILE* f, const void* p, size_t bytes) {
  return bytes == 0 || std::fwrite(p, 1, bytes, f) == bytes;
}

inline bool ReadAll(FILE* f, void* p, size_t bytes) {
  return bytes == 0 || std::fread(p, 1, bytes, f) == bytes;
}

template <typename T>
bool WritePod(FILE* f, const T& v) {
  return WriteAll(f, &v, sizeof(T));
}

template <typename T>
bool ReadPod(FILE* f, T* v) {
  return ReadAll(f, v, sizeof(T));
}

/// Atomic save protocol: every artifact streams to `<path>.tmp.<pid>` and
/// replaces the destination via rename(2) only after Commit() fsyncs the
/// temp — so a crash mid-save (or a failed write) can never leave a torn
/// file where Open()'s sniffing finds one, and readers of the old artifact
/// (including live mappings) keep a consistent view. Destruction without
/// Commit() discards the temp file.
class AtomicFile {
 public:
  explicit AtomicFile(std::string path)
      : path_(std::move(path)),
        tmp_(path_ + ".tmp." + std::to_string(::getpid())) {
    file_.reset(std::fopen(tmp_.c_str(), "wb"));
  }

  ~AtomicFile() {
    if (file_ != nullptr) {
      file_.reset();
      std::remove(tmp_.c_str());
    }
  }

  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  /// False when the temp file could not be opened.
  bool ok() const { return file_ != nullptr; }
  FILE* get() { return file_.get(); }

  /// Flushes, fsyncs and renames the temp over the destination. After a
  /// successful Commit the handle is closed; on any failure the temp is
  /// removed and the original destination file is left untouched.
  Status Commit() {
    if (file_ == nullptr) {
      return Status::IOError("cannot open " + tmp_ + " for writing");
    }
    const bool flushed =
        std::fflush(file_.get()) == 0 && ::fsync(::fileno(file_.get())) == 0;
    file_.reset();
    if (!flushed) {
      std::remove(tmp_.c_str());
      return Status::IOError(path_ + ": flush failed during save");
    }
    if (std::rename(tmp_.c_str(), path_.c_str()) != 0) {
      std::remove(tmp_.c_str());
      return Status::IOError(path_ + ": atomic rename failed");
    }
    return Status::OK();
  }

 private:
  std::string path_;
  std::string tmp_;
  File file_;
};

}  // namespace binio
}  // namespace blink
