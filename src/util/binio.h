// Shared stdio plumbing for the binary index formats (graph/serialize.cc,
// shard/serialize.cc): RAII FILE handle and exact-size read/write helpers.
// All formats are little-endian POD streams; these helpers return false on
// short IO so callers can surface a Status instead of asserting.
#pragma once

#include <cstdio>
#include <memory>

namespace blink {
namespace binio {

struct FileCloser {
  void operator()(FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<FILE, FileCloser>;

inline bool WriteAll(FILE* f, const void* p, size_t bytes) {
  return bytes == 0 || std::fwrite(p, 1, bytes, f) == bytes;
}

inline bool ReadAll(FILE* f, void* p, size_t bytes) {
  return bytes == 0 || std::fread(p, 1, bytes, f) == bytes;
}

template <typename T>
bool WritePod(FILE* f, const T& v) {
  return WriteAll(f, &v, sizeof(T));
}

template <typename T>
bool ReadPod(FILE* f, T* v) {
  return ReadAll(f, v, sizeof(T));
}

}  // namespace binio
}  // namespace blink
