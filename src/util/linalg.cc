#include "util/linalg.h"

#include <cassert>
#include <cmath>

namespace blink {

SvdResult JacobiSvd(const MatrixF& a, size_t max_sweeps, double tol) {
  const size_t n = a.rows();
  assert(a.cols() == n && "JacobiSvd expects a square matrix");

  // Work in double for stability; W starts as A, V as I. Right-rotations
  // orthogonalize W's columns: A V = W  =>  A = W V^T = U diag(s) V^T.
  std::vector<double> w(n * n), v(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) w[i * n + j] = a(i, j);
    v[i * n + i] = 1.0;
  }

  auto col_dot = [&](const std::vector<double>& m, size_t p, size_t q) {
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) acc += m[i * n + p] * m[i * n + q];
    return acc;
  };
  auto rotate_cols = [&](std::vector<double>& m, size_t p, size_t q, double c,
                         double s) {
    for (size_t i = 0; i < n; ++i) {
      const double mp = m[i * n + p], mq = m[i * n + q];
      m[i * n + p] = c * mp - s * mq;
      m[i * n + q] = s * mp + c * mq;
    }
  };

  for (size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double app = col_dot(w, p, p);
        const double aqq = col_dot(w, q, q);
        const double apq = col_dot(w, p, q);
        if (std::fabs(apq) <= tol * std::sqrt(app * aqq) || apq == 0.0) {
          continue;
        }
        off += std::fabs(apq);
        // Jacobi rotation zeroing the (p, q) inner product.
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        rotate_cols(w, p, q, c, s);
        rotate_cols(v, p, q, c, s);
      }
    }
    if (off == 0.0) break;
  }

  SvdResult r;
  r.u = MatrixF(n, n);
  r.v = MatrixF(n, n);
  r.s.resize(n);
  for (size_t j = 0; j < n; ++j) {
    double norm2 = 0.0;
    for (size_t i = 0; i < n; ++i) norm2 += w[i * n + j] * w[i * n + j];
    const double norm = std::sqrt(norm2);
    r.s[j] = static_cast<float>(norm);
    const double inv = norm > 0.0 ? 1.0 / norm : 0.0;
    for (size_t i = 0; i < n; ++i) {
      r.u(i, j) = static_cast<float>(w[i * n + j] * inv);
      r.v(i, j) = static_cast<float>(v[i * n + j]);
    }
  }
  // Zero singular values leave a zero column in U; re-orthogonalize it is
  // unnecessary for Procrustes (the product U V^T stays orthogonal enough
  // for full-rank Gram inputs, which is our use case).
  return r;
}

MatrixF GramProduct(MatrixViewF a, MatrixViewF b) {
  assert(a.rows == b.rows);
  const size_t n = a.rows, da = a.cols, db = b.cols;
  MatrixF out(da, db);
  std::vector<double> acc(da * db, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const float* ra = a.row(i);
    const float* rb = b.row(i);
    for (size_t p = 0; p < da; ++p) {
      const double ap = ra[p];
      double* dst = &acc[p * db];
      for (size_t q = 0; q < db; ++q) dst[q] += ap * rb[q];
    }
  }
  for (size_t p = 0; p < da; ++p) {
    for (size_t q = 0; q < db; ++q) {
      out(p, q) = static_cast<float>(acc[p * db + q]);
    }
  }
  return out;
}

void RowTimesMatrix(const float* x, const MatrixF& m, float* y) {
  const size_t rows = m.rows(), cols = m.cols();
  for (size_t j = 0; j < cols; ++j) y[j] = 0.0f;
  for (size_t i = 0; i < rows; ++i) {
    const float xi = x[i];
    const float* row = m.row(i);
    for (size_t j = 0; j < cols; ++j) y[j] += xi * row[j];
  }
}

void RowTimesMatrixT(const float* x, const MatrixF& m, float* y) {
  const size_t rows = m.rows(), cols = m.cols();
  for (size_t i = 0; i < rows; ++i) {
    const float* row = m.row(i);
    double acc = 0.0;
    for (size_t j = 0; j < cols; ++j) acc += static_cast<double>(x[j]) * row[j];
    y[i] = static_cast<float>(acc);
  }
}

double OrthogonalityDefect(const MatrixF& a) {
  const size_t n = a.rows();
  double worst = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double dot = 0.0;
      for (size_t k = 0; k < n; ++k) {
        dot += static_cast<double>(a(i, k)) * a(j, k);
      }
      const double target = i == j ? 1.0 : 0.0;
      worst = std::max(worst, std::fabs(dot - target));
    }
  }
  return worst;
}

}  // namespace blink
