#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace blink {

MmapFile::~MmapFile() { Release(); }

MmapFile::MmapFile(MmapFile&& o) noexcept
    : ptr_(o.ptr_), bytes_(o.bytes_), backing_(o.backing_) {
  o.ptr_ = nullptr;
  o.bytes_ = 0;
  o.backing_ = PageBacking::kStandard;
}

MmapFile& MmapFile::operator=(MmapFile&& o) noexcept {
  if (this != &o) {
    Release();
    ptr_ = o.ptr_;
    bytes_ = o.bytes_;
    backing_ = o.backing_;
    o.ptr_ = nullptr;
    o.bytes_ = 0;
    o.backing_ = PageBacking::kStandard;
  }
  return *this;
}

void MmapFile::Release() {
  if (ptr_ != nullptr) {
    ::munmap(ptr_, bytes_);
    ptr_ = nullptr;
    bytes_ = 0;
    backing_ = PageBacking::kStandard;
  }
}

Result<MmapFile> MmapFile::Map(const std::string& path, const Options& opts) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("cannot stat " + path + ": " + std::strerror(err));
  }
  if (st.st_size <= 0) {
    ::close(fd);
    return Status::IOError(path + ": empty file cannot be mapped");
  }
  const size_t bytes = static_cast<size_t>(st.st_size);
  // MAP_PRIVATE: the artifact is immutable input; a concurrent writer
  // replacing it via rename (the atomic-save protocol) leaves this mapping
  // pinned to the old inode, which is exactly the hot-swap semantics the
  // serving layer wants.
  void* p = ::mmap(nullptr, bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  const int map_err = errno;
  ::close(fd);  // the mapping keeps its own reference to the inode
  if (p == MAP_FAILED) {
    return Status::IOError("cannot mmap " + path + ": " +
                           std::strerror(map_err));
  }
  MmapFile out;
  out.ptr_ = p;
  out.bytes_ = bytes;
  // Advice is best-effort: a kernel rejecting a hint (e.g. file-backed
  // MADV_HUGEPAGE without CONFIG_READ_ONLY_THP_FOR_FS) degrades the
  // backing tier, never the mapping.
  if (opts.random) ::madvise(p, bytes, MADV_RANDOM);
  if (opts.huge_pages && ::madvise(p, bytes, MADV_HUGEPAGE) == 0) {
    out.backing_ = PageBacking::kTransparentHuge;
  }
  if (opts.willneed) ::madvise(p, bytes, MADV_WILLNEED);
  return out;
}

Status DropFileCache(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  // Flush any dirty pages first — DONTNEED skips them silently.
  ::fsync(fd);
  const int rc = ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
  ::close(fd);
  if (rc != 0) {
    return Status::IOError(path + ": posix_fadvise failed: " +
                           std::strerror(rc));
  }
  return Status::OK();
}

}  // namespace blink
