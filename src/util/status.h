// Lightweight Status / Result<T> error handling, RocksDB-style.
//
// Fallible operations (IO, configuration validation) return Status or
// Result<T>. Hot paths never allocate a Status; internal invariants use
// assert() instead.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace blink {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kIOError,
  kNotFound,
  kOutOfRange,
  kInternal,
  kUnsupported,
};

/// Outcome of a fallible operation. Cheap to return by value; the message
/// is only allocated on error.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    const char* name = "Unknown";
    switch (code_) {
      case StatusCode::kOk: name = "OK"; break;
      case StatusCode::kInvalidArgument: name = "InvalidArgument"; break;
      case StatusCode::kIOError: name = "IOError"; break;
      case StatusCode::kNotFound: name = "NotFound"; break;
      case StatusCode::kOutOfRange: name = "OutOfRange"; break;
      case StatusCode::kInternal: name = "Internal"; break;
      case StatusCode::kUnsupported: name = "Unsupported"; break;
    }
    return std::string(name) + ": " + msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Either a value of type T or an error Status. Access to value() on an
/// error is a programming bug and asserts.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}           // NOLINT implicit
  Result(Status status) : v_(std::move(status)) {     // NOLINT implicit
    assert(!std::get<Status>(v_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(v_);
  }

  const T& value_or(const T& fallback) const {
    return ok() ? std::get<T>(v_) : fallback;
  }

 private:
  std::variant<T, Status> v_;
};

#define BLINK_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::blink::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace blink
