// Epoch-based read guard for single-writer / multi-reader structures
// (DESIGN.md D6; used by the dynamic index and the serving engine).
//
// Readers announce themselves by stamping the current epoch into one of a
// fixed set of cache-line-sized slots — one CAS on entry, one store on exit,
// no mutex on the query hot path. The writer has two levels of coordination:
//
//   - Quiesce(): advance the epoch and wait until every reader that entered
//     *before* the advance has left. New readers are not blocked. Used after
//     unlinking nodes so their memory can be reused once the last possible
//     observer is gone (RCU-style grace period).
//   - LockExclusive()/UnlockExclusive(): stop-the-world — block new readers
//     and drain existing ones. Used for reallocation (index growth), where
//     readers must not touch the old arrays at all. The Dekker-style
//     recheck on the reader side (publish slot, then re-test the writer
//     flag with seq_cst ordering) guarantees a reader is never active
//     inside an exclusive section.
//
// All reader/writer interaction is through std::atomic, so the protocol is
// clean under -fsanitize=thread; passing TSan on the concurrent serving
// tests is part of the contract.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

namespace blink {

class EpochGuard {
 public:
  /// Concurrent-reader slots. More simultaneous readers than this is legal:
  /// the surplus spin-yields for a free slot.
  static constexpr size_t kSlots = 64;

  EpochGuard() = default;
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

  /// RAII read-side critical section.
  class ReadLock {
   public:
    explicit ReadLock(EpochGuard* g) : g_(g), slot_(g->EnterReader()) {}
    ~ReadLock() { g_->ExitReader(slot_); }
    ReadLock(const ReadLock&) = delete;
    ReadLock& operator=(const ReadLock&) = delete;

   private:
    EpochGuard* g_;
    size_t slot_;
  };

  /// Reader entry: claims a slot stamped with the current epoch. Spins only
  /// while a writer holds the exclusive lock or all slots are taken.
  size_t EnterReader() {
    const size_t start =
        std::hash<std::thread::id>()(std::this_thread::get_id()) % kSlots;
    for (;;) {
      while (blocked_.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      const uint64_t e = epoch_.load(std::memory_order_relaxed);
      size_t slot = kSlots;
      for (size_t probe = 0; probe < kSlots; ++probe) {
        const size_t s = (start + probe) % kSlots;
        uint64_t expected = kFree;
        if (slots_[s].v.compare_exchange_strong(expected, e,
                                                std::memory_order_seq_cst)) {
          slot = s;
          break;
        }
      }
      if (slot == kSlots) {  // all slots busy; wait and retry
        std::this_thread::yield();
        continue;
      }
      // Dekker recheck: if a writer set blocked_ before observing our slot,
      // we must retreat; seq_cst total order makes exactly one of us yield.
      if (!blocked_.load(std::memory_order_seq_cst)) return slot;
      slots_[slot].v.store(kFree, std::memory_order_release);
    }
  }

  void ExitReader(size_t slot) {
    slots_[slot].v.store(kFree, std::memory_order_release);
  }

  /// Writer: waits until every reader that entered before this call has
  /// exited. Readers entering afterwards are unaffected and do not delay
  /// the wait (their stamp is >= the advanced epoch).
  void Quiesce() {
    const uint64_t target = epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
    for (size_t s = 0; s < kSlots; ++s) {
      for (;;) {
        const uint64_t v = slots_[s].v.load(std::memory_order_acquire);
        if (v == kFree || v >= target) break;
        std::this_thread::yield();
      }
    }
  }

  /// Writer: blocks new readers and drains active ones. On return the
  /// caller has exclusive access until UnlockExclusive().
  void LockExclusive() {
    blocked_.store(true, std::memory_order_seq_cst);
    for (size_t s = 0; s < kSlots; ++s) {
      while (slots_[s].v.load(std::memory_order_acquire) != kFree) {
        std::this_thread::yield();
      }
    }
  }

  void UnlockExclusive() { blocked_.store(false, std::memory_order_release); }

  /// RAII exclusive section.
  class ExclusiveLock {
   public:
    explicit ExclusiveLock(EpochGuard* g) : g_(g) { g_->LockExclusive(); }
    ~ExclusiveLock() { g_->UnlockExclusive(); }
    ExclusiveLock(const ExclusiveLock&) = delete;
    ExclusiveLock& operator=(const ExclusiveLock&) = delete;

   private:
    EpochGuard* g_;
  };

 private:
  static constexpr uint64_t kFree = 0;

  struct alignas(64) Slot {
    std::atomic<uint64_t> v{kFree};
  };

  std::atomic<uint64_t> epoch_{1};  // starts at 1 so kFree is unambiguous
  std::atomic<bool> blocked_{false};
  Slot slots_[kSlots];
};

}  // namespace blink
