// Row-major dense matrix used for datasets and query batches.
//
// Rows are vectors; the storage is one contiguous aligned block (no
// per-row indirection), matching the paper's "flat memory layout" design.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <span>
#include <vector>

#include "util/memory.h"

namespace blink {

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols) {
    data_ = MakeAligned<T>(rows * cols);
    std::memset(data_.get(), 0, rows * cols * sizeof(T));
  }

  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;
  Matrix(const Matrix&) = delete;
  Matrix& operator=(const Matrix&) = delete;

  /// Deep copy, for call sites that explicitly need one.
  Matrix Clone() const {
    Matrix m(rows_, cols_);
    std::memcpy(m.data(), data(), rows_ * cols_ * sizeof(T));
    return m;
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return rows_ * cols_; }
  bool empty() const { return rows_ == 0; }

  T* data() { return data_.get(); }
  const T* data() const { return data_.get(); }

  T* row(size_t i) {
    assert(i < rows_);
    return data_.get() + i * cols_;
  }
  const T* row(size_t i) const {
    assert(i < rows_);
    return data_.get() + i * cols_;
  }

  std::span<T> row_span(size_t i) { return {row(i), cols_}; }
  std::span<const T> row_span(size_t i) const { return {row(i), cols_}; }

  T& operator()(size_t i, size_t j) {
    assert(i < rows_ && j < cols_);
    return data_.get()[i * cols_ + j];
  }
  const T& operator()(size_t i, size_t j) const {
    assert(i < rows_ && j < cols_);
    return data_.get()[i * cols_ + j];
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  AlignedPtr<T> data_;
};

using MatrixF = Matrix<float>;

/// Non-owning read-only view of a row-major matrix.
template <typename T>
struct MatrixView {
  const T* data = nullptr;
  size_t rows = 0;
  size_t cols = 0;

  MatrixView() = default;
  MatrixView(const T* d, size_t r, size_t c) : data(d), rows(r), cols(c) {}
  MatrixView(const Matrix<T>& m) : data(m.data()), rows(m.rows()), cols(m.cols()) {}  // NOLINT

  const T* row(size_t i) const {
    assert(i < rows);
    return data + i * cols;
  }
};

using MatrixViewF = MatrixView<float>;

}  // namespace blink
