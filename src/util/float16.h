// IEEE 754 binary16 (half-precision) storage type.
//
// The paper uses float16 both as a strong baseline encoding (Figs. 7, 8,
// Table 4) and to store the per-vector LVQ scaling constants u and l
// (B_const = 16 in Eq. 4). Arithmetic is always done in float32; float16 is
// a storage/bandwidth format only, exactly as in the paper.
//
// Conversion uses the F16C intrinsics when compiled for a CPU that has them
// (every AVX2 machine) and a bit-exact scalar fallback otherwise.
#pragma once

#include <cstdint>
#include <cstring>

#if defined(__F16C__)
#include <immintrin.h>
#endif

namespace blink {

namespace detail {

inline uint16_t F32ToF16Bits(float f) {
#if defined(__F16C__)
  return static_cast<uint16_t>(
      _cvtss_sh(f, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
#else
  // Scalar round-to-nearest-even conversion.
  uint32_t x;
  std::memcpy(&x, &f, sizeof(x));
  const uint32_t sign = (x >> 16) & 0x8000u;
  uint32_t mant = x & 0x007FFFFFu;
  int32_t exp = static_cast<int32_t>((x >> 23) & 0xFF) - 127 + 15;
  if (exp >= 31) {  // overflow -> inf; NaN keeps a mantissa bit
    if (((x >> 23) & 0xFF) == 0xFF && mant != 0) return sign | 0x7E00u;
    return sign | 0x7C00u;
  }
  if (exp <= 0) {  // subnormal or zero
    if (exp < -10) return sign;
    mant |= 0x00800000u;
    const int shift = 14 - exp;
    uint32_t half = mant >> shift;
    const uint32_t rem = mant & ((1u << shift) - 1);
    const uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half & 1))) ++half;
    return sign | static_cast<uint16_t>(half);
  }
  uint32_t half = (static_cast<uint32_t>(exp) << 10) | (mant >> 13);
  const uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1))) ++half;
  return sign | static_cast<uint16_t>(half);
#endif
}

inline float F16BitsToF32(uint16_t h) {
#if defined(__F16C__)
  return _cvtsh_ss(h);
#else
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1F;
  uint32_t mant = h & 0x3FFu;
  uint32_t out;
  if (exp == 0) {
    if (mant == 0) {
      out = sign;
    } else {  // subnormal: normalize
      int e = -1;
      do {
        ++e;
        mant <<= 1;
      } while ((mant & 0x400u) == 0);
      out = sign | ((127 - 15 - e) << 23) | ((mant & 0x3FFu) << 13);
    }
  } else if (exp == 31) {
    out = sign | 0x7F800000u | (mant << 13);
  } else {
    out = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float f;
  std::memcpy(&f, &out, sizeof(f));
  return f;
#endif
}

}  // namespace detail

/// Half-precision storage type. Implicitly converts to/from float; all
/// arithmetic happens in float32.
class Float16 {
 public:
  Float16() = default;
  Float16(float f) : bits_(detail::F32ToF16Bits(f)) {}  // NOLINT implicit

  operator float() const { return detail::F16BitsToF32(bits_); }  // NOLINT

  static Float16 FromBits(uint16_t bits) {
    Float16 h;
    h.bits_ = bits;
    return h;
  }
  uint16_t bits() const { return bits_; }

  bool operator==(const Float16& o) const { return bits_ == o.bits_; }

 private:
  uint16_t bits_ = 0;
};

static_assert(sizeof(Float16) == 2, "Float16 must be 2 bytes");

/// Next representable float16 toward -infinity. The LVQ encoders use the
/// nudge pair to widen rounded bounds so the stored (l, u) always cover
/// the true per-vector range (paper Fig. 16); the +0/-0 edge cases matter,
/// so there is exactly one implementation.
inline Float16 NextFloat16Down(Float16 h) {
  const uint16_t b = h.bits();
  if (b == 0x0000) return Float16::FromBits(0x8001);  // +0 -> smallest negative
  if (b & 0x8000) return Float16::FromBits(static_cast<uint16_t>(b + 1));
  return Float16::FromBits(static_cast<uint16_t>(b - 1));
}

/// Next representable float16 toward +infinity.
inline Float16 NextFloat16Up(Float16 h) {
  const uint16_t b = h.bits();
  if (b == 0x8000) return Float16::FromBits(0x0001);  // -0 -> smallest positive
  if (b & 0x8000) return Float16::FromBits(static_cast<uint16_t>(b - 1));
  return Float16::FromBits(static_cast<uint16_t>(b + 1));
}

}  // namespace blink
