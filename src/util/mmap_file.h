// Read-only memory-mapped file access for the out-of-core serving path
// (ROADMAP item 2; paper Sec. 5, "Memory layout and allocation").
//
// Heap loaders copy the whole artifact through a read() stream, so process
// start costs a full file scan and the dataset must fit RAM. A mapping
// instead faults pages in on first touch: start is near-instant on a warm
// page cache, and the kernel evicts cold vector pages under memory
// pressure, letting an index larger than resident memory serve with
// bounded latency loss. Access hints mirror the Arena tier logic in
// util/memory.h: MADV_RANDOM for the graph-search access pattern,
// MADV_WILLNEED to prefault eagerly, and MADV_HUGEPAGE as the
// transparent-huge-page tier (file-backed THP is kernel-config dependent,
// so the achieved backing is recorded, not assumed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/memory.h"
#include "util/status.h"

namespace blink {

/// A read-only, page-aligned mapping of a whole file. Move-only; unmaps on
/// destruction. Anything holding pointers into data() must keep the
/// MmapFile alive.
class MmapFile {
 public:
  struct Options {
    bool random = true;      ///< madvise(MADV_RANDOM): graph-search pattern
    bool willneed = false;   ///< madvise(MADV_WILLNEED): prefault eagerly
    bool huge_pages = true;  ///< try madvise(MADV_HUGEPAGE)
  };

  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& o) noexcept;
  MmapFile& operator=(MmapFile&& o) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-only in full and applies the requested advice.
  static Result<MmapFile> Map(const std::string& path, const Options& opts);
  static Result<MmapFile> Map(const std::string& path) {
    return Map(path, Options());
  }

  const uint8_t* data() const { return static_cast<const uint8_t*>(ptr_); }
  size_t size() const { return bytes_; }
  bool empty() const { return ptr_ == nullptr; }

  /// kTransparentHuge when MADV_HUGEPAGE was accepted, else kStandard
  /// (explicit MAP_HUGETLB does not apply to file-backed mappings).
  PageBacking backing() const { return backing_; }

 private:
  void Release();

  void* ptr_ = nullptr;
  size_t bytes_ = 0;
  PageBacking backing_ = PageBacking::kStandard;
};

/// Asks the kernel to drop `path`'s cached pages (posix_fadvise
/// POSIX_FADV_DONTNEED). Best-effort and unprivileged — dirty or mapped
/// pages stay — but sufficient to make bench/cold_vs_warm's "cold" runs
/// actually fault from disk without root.
Status DropFileCache(const std::string& path);

}  // namespace blink
