// Environment-variable knobs shared by the benchmark harnesses.
//
// BLINK_SCALE   multiplies the default dataset sizes in bench/ (default 1.0).
//               The paper runs up to 10^9 vectors on a 40-core 1TB server;
//               this reproduction defaults to sizes that complete on a small
//               VM and scales up with this knob.
// BLINK_THREADS overrides the number of worker threads (default: hardware).
#pragma once

#include <cstdlib>
#include <string>
#include <thread>

namespace blink {

inline double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  double x = std::strtod(v, &end);
  return (end == v) ? fallback : x;
}

inline int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  long long x = std::strtoll(v, &end, 10);
  return (end == v) ? fallback : static_cast<int64_t>(x);
}

/// Global size multiplier for benchmark datasets.
inline double BenchScale() { return EnvDouble("BLINK_SCALE", 1.0); }

/// Scales a default point count by BLINK_SCALE, with a floor to keep the
/// experiments meaningful.
inline size_t ScaledN(size_t base, size_t floor_n = 1000) {
  double n = static_cast<double>(base) * BenchScale();
  size_t r = static_cast<size_t>(n);
  return r < floor_n ? floor_n : r;
}

/// Worker-thread count for batch search and build.
inline size_t NumThreads() {
  int64_t t = EnvInt("BLINK_THREADS", 0);
  if (t > 0) return static_cast<size_t>(t);
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace blink
