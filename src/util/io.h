// Vector dataset IO.
//
// Supports the TEXMEX interchange formats used by every public ANN dataset
// the paper evaluates (fvecs/ivecs: per-row int32 dimension header followed
// by the row payload) and a simpler native format (single header, then a
// dense row-major block) for fast reload of generated datasets and ground
// truth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/matrix.h"
#include "util/status.h"

namespace blink {

/// Reads a .fvecs file (int32 d, d floats, repeated).
Result<MatrixF> ReadFvecs(const std::string& path);

/// Reads a .ivecs file (int32 d, d int32s, repeated).
Result<Matrix<int32_t>> ReadIvecs(const std::string& path);

/// Writes a matrix in fvecs format.
Status WriteFvecs(const std::string& path, const MatrixF& m);

/// Writes a matrix in ivecs format.
Status WriteIvecs(const std::string& path, const Matrix<int32_t>& m);

/// Native binary: magic "BLNK", u32 version, u64 rows, u64 cols, u32 dtype,
/// then rows*cols elements row-major. dtype: 0=f32, 1=i32, 2=u32.
Status WriteNative(const std::string& path, const MatrixF& m);
Status WriteNative(const std::string& path, const Matrix<uint32_t>& m);
Result<MatrixF> ReadNativeF32(const std::string& path);
Result<Matrix<uint32_t>> ReadNativeU32(const std::string& path);

/// Whole-file text IO (bench reports, baselines).
Result<std::string> ReadTextFile(const std::string& path);
Status WriteTextFile(const std::string& path, const std::string& text);

}  // namespace blink
