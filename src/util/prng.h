// Deterministic, fast pseudo-random number generation.
//
// All stochastic components of the library (dataset synthesis, k-means
// seeding, graph entry point selection) take an explicit seed so that every
// experiment in bench/ is exactly reproducible run-to-run.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace blink {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
/// Satisfies UniformRandomBitGenerator so it plugs into <random> if needed.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding avoids correlated low-entropy states.
    uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9E3779B97F4A7C15ull;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
      s = x ^ (x >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  uint64_t operator()() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float UniformFloat() {
    return static_cast<float>((*this)() >> 40) * 0x1.0p-24f;
  }

  /// Uniform float in [lo, hi).
  float Uniform(float lo, float hi) { return lo + (hi - lo) * UniformFloat(); }

  /// Uniform integer in [0, n). Unbiased via rejection (Lemire).
  uint64_t Bounded(uint64_t n) {
    if (n == 0) return 0;
    uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < n) {
      uint64_t t = (0 - n) % n;
      while (l < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Standard normal via Box-Muller (cached second value).
  float Gaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    float u1, u2;
    do {
      u1 = UniformFloat();
    } while (u1 <= 1e-12f);
    u2 = UniformFloat();
    const float r = std::sqrt(-2.0f * std::log(u1));
    const float theta = 6.28318530717958647692f * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  float Gaussian(float mean, float stddev) { return mean + stddev * Gaussian(); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  float cached_ = 0.0f;
  bool has_cached_ = false;
};

}  // namespace blink
