#include "graph/pruning_error.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "simd/distance.h"

namespace blink {

namespace {

double Dot(const float* a, const float* b, size_t d) {
  double acc = 0.0;
  for (size_t j = 0; j < d; ++j) {
    acc += static_cast<double>(a[j]) * static_cast<double>(b[j]);
  }
  return acc;
}

double Norm2(const float* a, size_t d) { return Dot(a, a, d); }

/// Standard normal CDF.
double Phi(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

}  // namespace

std::vector<PruningTriplet> SamplePruningTriplets(MatrixViewF data,
                                                  size_t num_triplets,
                                                  size_t t_neighbors,
                                                  uint64_t seed,
                                                  ThreadPool* pool) {
  const size_t n = data.rows, d = data.cols;
  std::vector<PruningTriplet> out(num_triplets);
  Rng seeder(seed);
  std::vector<uint64_t> seeds(num_triplets);
  std::vector<uint32_t> xs(num_triplets);
  for (size_t t = 0; t < num_triplets; ++t) {
    xs[t] = static_cast<uint32_t>(seeder.Bounded(n));
    seeds[t] = seeder();
  }

  auto one = [&](size_t t) {
    const uint32_t x = xs[t];
    Rng rng(seeds[t]);
    // T nearest neighbors of x (excluding x), by brute force.
    std::vector<std::pair<float, uint32_t>> dists;
    dists.reserve(n - 1);
    for (size_t i = 0; i < n; ++i) {
      if (i == x) continue;
      dists.push_back({simd::L2Sqr(data.row(x), data.row(i), d),
                       static_cast<uint32_t>(i)});
    }
    const size_t T = std::min(t_neighbors, dists.size());
    std::partial_sort(dists.begin(), dists.begin() + T, dists.end());
    // x* uniform among the T-NN; x' uniform among those farther than x*.
    const size_t star_rank = static_cast<size_t>(rng.Bounded(T > 1 ? T - 1 : 1));
    const size_t remaining = T - star_rank - 1;
    const size_t prime_rank =
        star_rank + 1 +
        static_cast<size_t>(remaining > 0 ? rng.Bounded(remaining) : 0);
    out[t] = {x, dists[star_rank].second,
              dists[std::min(prime_rank, T - 1)].second};
  };
  if (pool != nullptr) {
    pool->ParallelFor(num_triplets, one);
  } else {
    for (size_t t = 0; t < num_triplets; ++t) one(t);
  }
  return out;
}

double PruningErrorE(const float* x, const float* x_star, const float* x_prime,
                     const float* qx, const float* qx_star,
                     const float* qx_prime, size_t d) {
  // z_v = v - Q(v)
  std::vector<double> zx(d), zxs(d), zxp(d);
  for (size_t j = 0; j < d; ++j) {
    zx[j] = static_cast<double>(x[j]) - qx[j];
    zxs[j] = static_cast<double>(x_star[j]) - qx_star[j];
    zxp[j] = static_cast<double>(x_prime[j]) - qx_prime[j];
  }
  auto dotd = [&](const std::vector<double>& a, const std::vector<double>& b) {
    double acc = 0.0;
    for (size_t j = 0; j < d; ++j) acc += a[j] * b[j];
    return acc;
  };
  auto dotf = [&](const std::vector<double>& a, const float* b) {
    double acc = 0.0;
    for (size_t j = 0; j < d; ++j) acc += a[j] * static_cast<double>(b[j]);
    return acc;
  };
  // Eq. 19, term by term.
  double e = 0.0;
  for (size_t j = 0; j < d; ++j) {
    e += (zx[j] - zxs[j]) * static_cast<double>(x_prime[j]);     // (z_x - z_x*)^T x'
    e += (static_cast<double>(x[j]) - x_star[j]) * zxp[j];       // (x - x*)^T z_x'
  }
  e -= dotd(zx, zxp);   // - z_x^T z_x'
  e += dotd(zxs, zxp);  // + z_x*^T z_x'
  e += 0.5 * (dotd(zx, zx) - 2.0 * dotf(zx, x) - dotd(zxs, zxs) +
              2.0 * dotf(zxs, x_star));
  return e;
}

double PruningMargin(const float* x, const float* x_star, const float* x_prime,
                     size_t d) {
  // a = (x - x*) / ||x - x*||, b = (||x||^2 - ||x*||^2) / (2 ||x - x*||)
  std::vector<double> diff(d);
  for (size_t j = 0; j < d; ++j) {
    diff[j] = static_cast<double>(x[j]) - x_star[j];
  }
  double norm2 = 0.0;
  for (size_t j = 0; j < d; ++j) norm2 += diff[j] * diff[j];
  const double norm = std::sqrt(norm2);
  if (norm == 0.0) return 0.0;
  double a_dot_xp = 0.0;
  for (size_t j = 0; j < d; ++j) {
    a_dot_xp += diff[j] * static_cast<double>(x_prime[j]);
  }
  a_dot_xp /= norm;
  const double b = (Norm2(x, d) - Norm2(x_star, d)) / (2.0 * norm);
  return std::fabs(a_dot_xp - b) * norm;
}

PruningErrorTheory ComputePruningErrorTheory(double delta_x, double delta_xs,
                                             double delta_xp,
                                             double dist_x_xp,
                                             double dist_xs_xp,
                                             double dist_x_xs, size_t d) {
  PruningErrorTheory t;
  const double dx2 = delta_x * delta_x;
  const double dxs2 = delta_xs * delta_xs;
  const double dxp2 = delta_xp * delta_xp;
  const double dd = static_cast<double>(d);

  // Eq. 12.
  t.mu_e = dd / 24.0 * (dx2 - dxs2);
  // Eq. 13 (distances enter squared: ||.||^2).
  const double var = dx2 / 12.0 * dist_x_xp * dist_x_xp +
                     dxs2 / 12.0 * dist_xs_xp * dist_xs_xp +
                     dxp2 / 12.0 * dist_x_xs * dist_x_xs +
                     dd * (dx2 * dx2 + dxs2 * dxs2) / 720.0 +
                     dd * dxp2 * (dx2 + dxs2) / 144.0;
  t.sigma_e = std::sqrt(var);

  // Corollary 1: folded normal moments (Eqs. 14-15).
  if (t.sigma_e > 0.0) {
    const double r = t.mu_e / t.sigma_e;
    t.mu_abs_e = t.sigma_e * std::sqrt(2.0 / M_PI) * std::exp(-r * r / 2.0) +
                 t.mu_e * (1.0 - 2.0 * Phi(-r));
    const double var_abs = t.mu_e * t.mu_e + var - t.mu_abs_e * t.mu_abs_e;
    t.sigma_abs_e = var_abs > 0.0 ? std::sqrt(var_abs) : 0.0;
  } else {
    t.mu_abs_e = std::fabs(t.mu_e);
    t.sigma_abs_e = 0.0;
  }
  return t;
}

}  // namespace blink
