// Dynamic graph index: insertions, deletions and model updates, over a
// pluggable (growable) vector storage.
//
// The paper motivates LVQ partly through dynamic indices (Sec. 3.2): when
// the data distribution shifts, LVQ's model update is a linear-time mean
// recompute + re-encode, against PQ's k-means retraining. This module
// supplies the index dynamics that discussion presumes:
//   - Insert: the single-node Vamana update (greedy search for candidates,
//     relaxed pruning, backward edges with overflow pruning),
//   - Delete: tombstoning, with deleted nodes still traversable (so the
//     graph stays navigable) but excluded from results,
//   - ConsolidateDeletes: DiskANN-style repair — neighbors of deleted
//     nodes inherit the deleted nodes' out-edges, then re-prune; slots are
//     recycled by later inserts.
//
// Storage (DESIGN.md D9): DynamicGraphIndex<Storage> is templated on a
// growable storage codec (graph/dynamic_storage.h), mirroring
// VamanaIndex<Storage>. DynamicIndex (float32) is the uncompressed
// baseline; DynamicLvqIndex encodes each vector at insert time against a
// fixed sample mean (LVQ-B, optionally with B2-bit residuals re-ranked at
// the end of every search), so the streaming path gets the same 4-8x
// footprint reduction as the static one. Insert-time pruning measures
// stored-to-stored distances by decoding one endpoint and running the same
// asymmetric kernel the read path uses.
//
// Concurrency (DESIGN.md D6): the index is single-writer / multi-reader.
// Searches run concurrently with Insert/Delete/ConsolidateDeletes without
// taking a lock on the hot path — readers stamp an epoch slot on entry
// (util/epoch.h) and traverse adjacency through FlatGraph's acquire/release
// row protocol. Writers are serialized on an internal mutex; operations
// that invalidate reader-visible memory coordinate through the guard:
//   - Grow() reallocates the vector and graph arenas under the guard's
//     exclusive lock (stop-the-world; rare — amortized doubling, avoidable
//     via `initial_capacity`),
//   - ConsolidateDeletes() purges tombstoned rows under the exclusive lock,
//     so readers entering afterwards see the repaired graph and cannot
//     reach a freed slot,
//   - Insert() into a recycled slot runs a Quiesce() grace period first,
//     draining any straggler reader that could still hold the old id, so
//     the in-place vector overwrite (or re-encode) is race-free.
// A torn read of a row mid-publication yields a stale-but-valid neighbor
// list; greedy search tolerates that (worst case: a wasted hop).
//
// Results follow the eval/interface.h padding contract: Search always
// produces exactly k (id, dist) pairs, padded with kInvalidId/+inf when
// fewer live vectors are reachable.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "eval/interface.h"
#include "filter/metadata.h"
#include "graph/dynamic_storage.h"
#include "graph/graph.h"
#include "graph/search.h"
#include "graph/search_buffer.h"
#include "util/epoch.h"
#include "util/status.h"

namespace blink {

/// Build-time knobs of the dynamic index (storage-independent).
struct DynamicOptions {
  uint32_t graph_max_degree = 32;  ///< R
  uint32_t build_window = 64;      ///< W for insert-time searches
  float alpha = 1.2f;              ///< pruning relaxation (<1 for IP)
  Metric metric = Metric::kL2;
  size_t initial_capacity = 1024;
};

template <typename Storage>
class DynamicGraphIndex {
 public:
  /// entry_point_ sentinel while no live vector exists. Readers never
  /// dereference it, so an empty (or emptied) index can never lead a
  /// search into a freed slot.
  static constexpr uint32_t kNoEntry = UINT32_MAX;

  using Options = DynamicOptions;

  /// Reusable per-thread search state (candidate buffer, visited epochs,
  /// prepared query, re-rank scratch). Create one per serving thread and
  /// pass it to Search() to amortize per-query allocation; see
  /// serve/engine.h.
  struct SearchScratch {
    SearchBuffer buffer;
    SearchBuffer passing;                    // push-down result buffer (D15)
    VisitedSet visited;
    size_t visited_capacity = 0;
    std::vector<uint32_t> neighbors;         // row copy, max_degree entries
    typename Storage::Query query;           // prepared per-query state
    std::vector<float> decode;               // dim floats (two-level re-rank)
    std::vector<std::pair<float, uint32_t>> rerank;
    std::vector<SearchBuffer::Entry> survivors;  // filtered extraction pool
    uint64_t distance_computations = 0;      // of the last search
    uint64_t hops = 0;
  };

  /// Storage built with its default configuration for this (dim, metric).
  DynamicGraphIndex(size_t dim, const Options& opts);
  /// Adopts a configured storage (e.g. DynamicLvqStorage with a sample
  /// mean). `storage.dim()` must equal `dim`; its capacity is grown to
  /// `opts.initial_capacity`.
  DynamicGraphIndex(size_t dim, const Options& opts, Storage storage);

  /// Inserts a vector; returns its id. Ids of consolidated deletions are
  /// recycled. Thread-safe against concurrent Search (writers serialize).
  uint32_t Insert(const float* vec);

  /// Tombstones a vector: it stops appearing in results immediately but
  /// remains traversable until ConsolidateDeletes(). Thread-safe.
  Status Delete(uint32_t id);

  /// Repairs the graph around tombstoned nodes and recycles their slots.
  /// Thread-safe; briefly blocks readers while purging.
  void ConsolidateDeletes();

  /// k nearest *live* vectors, padded to exactly k entries per the
  /// eval/interface.h contract (kInvalidId / +inf). Safe to call from any
  /// number of threads concurrently with writers. The scratch overload
  /// reuses per-thread state; the plain overload allocates fresh scratch
  /// per call. When the storage has a second level and `rerank` is set,
  /// the top `rerank_window` candidates (all of them when 0) are re-scored
  /// at full two-level precision before the top-k selection (Sec. 3.2).
  void Search(const float* query, size_t k, uint32_t window,
              SearchResult* out, SearchScratch* scratch,
              bool rerank = true, uint32_t rerank_window = 0) const;
  void Search(const float* query, size_t k, uint32_t window,
              SearchResult* out) const;

  /// Filtered search: results are restricted to vectors matching
  /// `filter` (which must be bound to this index's metadata store).
  /// `push_down` selects in-search predicate evaluation vs post-filtering;
  /// both run under the adaptive widening loop up to `widen_cap` (floored
  /// at `window`). Tombstoned vectors are excluded as usual, and the
  /// two-level re-rank re-scores only surviving candidates.
  void Search(const float* query, size_t k, uint32_t window,
              SearchResult* out, SearchScratch* scratch, bool rerank,
              uint32_t rerank_window, const FilterView* filter,
              bool push_down, uint32_t widen_cap) const;

  /// Attaches (or, with null, detaches) a metadata store. The store is
  /// resized to the index capacity under the exclusive lock (readers
  /// drained), then grows in lockstep with Grow() and is row-cleared when
  /// Insert() recycles a slot. Must hold rows for every slot in use.
  Status AttachMetadata(std::shared_ptr<MetadataStore> md);
  const MetadataStore* metadata() const { return metadata_.get(); }
  std::shared_ptr<const MetadataStore> shared_metadata() const {
    return metadata_;
  }

  /// Writer-path metadata update for one live vector: stores the tag mask
  /// and the first `num_values` numeric columns (converted to each
  /// column's type). Concurrent searches may observe the row half-applied
  /// (cells are individually atomic, the row is not) — metadata is
  /// eventually consistent by design (DESIGN.md D15).
  Status UpsertMetadata(uint32_t id, uint64_t tags, const double* values,
                        size_t num_values);

  size_t dim() const { return dim_; }
  /// Slots in use (including tombstones awaiting consolidation).
  size_t size() const { return n_.load(std::memory_order_relaxed); }
  /// Live (searchable) vectors. Acquire pairs with Insert's release when a
  /// slot goes live, so a reader that observes the count also observes the
  /// slot's vector bytes.
  size_t live_size() const {
    return n_.load(std::memory_order_acquire) -
           num_deleted_.load(std::memory_order_acquire);
  }
  /// Deleted slots not yet recycled (navigable tombstones + purged slots
  /// awaiting reuse); size() - num_deleted() == live_size().
  size_t num_deleted() const {
    return num_deleted_.load(std::memory_order_acquire);
  }
  /// Tombstones still navigable by searches (deleted but not yet purged by
  /// ConsolidateDeletes) — the window over-provision slack.
  size_t num_tombstones() const {
    return num_tombstones_.load(std::memory_order_acquire);
  }
  /// ReadLock-guarded: capacity_ and the container internals it reports
  /// are mutated by Grow() under the exclusive lock.
  size_t capacity() const {
    EpochGuard::ReadLock reader(&epoch_);
    return capacity_;
  }
  uint32_t max_degree() const { return opts_.graph_max_degree; }
  bool IsDeleted(uint32_t id) const {
    return std::atomic_ref<uint8_t>(
               const_cast<uint8_t&>(deleted_[id]))
               .load(std::memory_order_relaxed) != 0;
  }
  /// Resident bytes of vectors + adjacency + tombstone flags.
  /// ReadLock-guarded like capacity().
  size_t memory_bytes() const {
    EpochGuard::ReadLock reader(&epoch_);
    return storage_.memory_bytes() + graph_.memory_bytes() + deleted_.size();
  }

  const Storage& storage() const { return storage_; }
  /// The configuration the index runs with (metric, alpha, build window).
  const Options& options() const { return opts_; }

  /// Direct row access — float32 storage only (compressed storages have no
  /// materialized float row; use DecodeVector).
  const float* vector(uint32_t id) const
    requires requires(const Storage& s, uint32_t i) { s.row(i); }
  {
    return storage_.row(id);
  }

  /// Reconstructs a stored vector in the original space (`out` must hold
  /// dim() floats). Exact for float32 storage, the LVQ reconstruction for
  /// compressed storage.
  void DecodeVector(uint32_t id, float* out) const {
    storage_.DecodeVector(id, out);
  }

  // --- persistence access (graph/serialize.cc) -----------------------------
  // Save-side accessors and the load-side factory. Both assume no
  // concurrent writer (readers are fine: everything here is
  // writer-published state).

  const FlatGraph& graph() const { return graph_; }
  uint32_t entry_point() const {
    return entry_point_.load(std::memory_order_acquire);
  }
  const std::vector<uint8_t>& deleted_flags() const { return deleted_; }
  const std::vector<uint32_t>& free_slots() const { return free_slots_; }

  /// Reassembles an index from serialized parts. `storage` must already
  /// hold the first `n` rows and have capacity >= n; `graph` must have
  /// storage.capacity() rows; `deleted` is resized to capacity.
  static std::unique_ptr<DynamicGraphIndex> Restore(
      size_t dim, const Options& opts, Storage storage, FlatGraph graph,
      std::vector<uint8_t> deleted, std::vector<uint32_t> free_slots,
      size_t n, size_t num_deleted, uint32_t entry_point);

 private:
  struct Candidate {
    float dist;
    uint32_t id;
    bool operator<(const Candidate& o) const {
      return dist < o.dist || (dist == o.dist && id < o.id);
    }
  };

  DynamicGraphIndex() = default;  // Restore()

  void Grow(size_t min_capacity);
  /// Writer-side greedy search over the current graph; returns the
  /// candidate pool (ascending distance, tombstones included — they remain
  /// navigable). Prepares `writer_query_` from `query`.
  void CollectCandidates(const float* query, uint32_t window,
                         std::vector<Candidate>* out);
  /// Scratch-based variant used by the read path; fills scratch->buffer and
  /// the work counters instead of materializing a candidate vector. The
  /// caller must hold an epoch ReadLock.
  void CollectIntoScratch(const float* query, uint32_t window,
                          SearchScratch* scratch,
                          const FilterView* filter = nullptr,
                          bool push_down = false) const;
  /// Shared result epilogue: tombstone-skipping top-k selection with the
  /// optional two-level re-score, over either the raw candidate buffer or
  /// a filtered survivor pool (both expose operator[](i).{id,dist}).
  template <typename Buf>
  void ExtractResults(const Buf& buf, size_t k, bool rerank,
                      uint32_t rerank_window, size_t tomb, SearchResult* out,
                      SearchScratch* scratch) const;
  /// Algorithm 2 on a sorted candidate list. Stored-to-stored distances go
  /// through PrepareStored + the asymmetric kernel (uses `prune_query_`).
  void RobustPrune(std::vector<Candidate>& cands, std::vector<uint32_t>* out);
  /// Decodes stored vector `id` and prepares `q` for distances against it.
  void PrepareStored(uint32_t id, typename Storage::Query* q);
  void UpdateEntryPoint();
  void SetDeleted(uint32_t id, uint8_t flag) {
    std::atomic_ref<uint8_t>(deleted_[id])
        .store(flag, std::memory_order_relaxed);
  }
  uint8_t DeletedFlag(uint32_t id) const {
    return std::atomic_ref<uint8_t>(const_cast<uint8_t&>(deleted_[id]))
        .load(std::memory_order_relaxed);
  }

  /// deleted_ slot states. A slot advances kLive -> kTombstone (Delete) ->
  /// kPurged (ConsolidateDeletes unlinks it and queues it in free_slots_)
  /// -> kLive (Insert recycles it). The tombstone/purged split keeps a
  /// second consolidation from re-queueing an already-free slot, and lets
  /// the search window slack count only *navigable* tombstones.
  static constexpr uint8_t kLive = 0;
  static constexpr uint8_t kTombstone = 1;
  static constexpr uint8_t kPurged = 2;

  size_t dim_ = 0;
  Options opts_;
  size_t capacity_ = 0;                 // mutated only under exclusive lock
  std::atomic<size_t> n_{0};
  std::atomic<size_t> num_deleted_{0};     // kTombstone + kPurged slots
  std::atomic<size_t> num_tombstones_{0};  // kTombstone slots only
  Storage storage_;                     // capacity slots
  FlatGraph graph_;                     // capacity rows
  std::vector<uint8_t> deleted_;        // capacity (atomic_ref access)
  std::vector<uint32_t> free_slots_;    // recycled ids (writer-only)
  std::atomic<uint32_t> entry_point_{kNoEntry};
  /// Optional per-vector metadata, capacity_ rows once attached. Cell
  /// access is atomic (filter/metadata.h); the container itself is resized
  /// only under the exclusive lock. Attach/detach must not race searches
  /// that are already filtering (the serving engine swaps whole indices
  /// instead).
  std::shared_ptr<MetadataStore> metadata_;

  // Writer-side scratch (guarded by write_mu_): prepared queries for the
  // insert vector / decoded stored vectors, and the decode buffer.
  typename Storage::Query writer_query_;
  typename Storage::Query prune_query_;
  std::vector<float> writer_decode_;

  mutable EpochGuard epoch_;            // reader registration / quiescing
  std::mutex write_mu_;                 // serializes writers
};

/// The uncompressed dynamic index (the pre-D9 DynamicIndex).
using DynamicIndex = DynamicGraphIndex<DynamicFloatStorage>;
/// The compressed dynamic index: LVQ-B (optionally B1xB2) storage encoded
/// at insert time against a fixed sample mean.
using DynamicLvqIndex = DynamicGraphIndex<DynamicLvqStorage>;

extern template class DynamicGraphIndex<DynamicFloatStorage>;
extern template class DynamicGraphIndex<DynamicLvqStorage>;

}  // namespace blink
