// Dynamic graph index: insertions, deletions and model updates.
//
// The paper motivates LVQ partly through dynamic indices (Sec. 3.2): when
// the data distribution shifts, LVQ's model update is a linear-time mean
// recompute + re-encode, against PQ's k-means retraining. This module
// supplies the index dynamics that discussion presumes:
//   - Insert: the single-node Vamana update (greedy search for candidates,
//     relaxed pruning, backward edges with overflow pruning),
//   - Delete: tombstoning, with deleted nodes still traversable (so the
//     graph stays navigable) but excluded from results,
//   - ConsolidateDeletes: DiskANN-style repair — neighbors of deleted
//     nodes inherit the deleted nodes' out-edges, then re-prune; slots are
//     recycled by later inserts.
//
// Storage is growable float32 (dynamic compressed storage would need
// re-encodable arenas; Sec. 3.2 re-encoding is demonstrated in
// examples/dynamic_reencoding.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/search.h"
#include "graph/storage.h"
#include "util/status.h"

namespace blink {

class DynamicIndex {
 public:
  struct Options {
    uint32_t graph_max_degree = 32;  ///< R
    uint32_t build_window = 64;      ///< W for insert-time searches
    float alpha = 1.2f;              ///< pruning relaxation (<1 for IP)
    Metric metric = Metric::kL2;
    size_t initial_capacity = 1024;
  };

  DynamicIndex(size_t dim, const Options& opts);

  /// Inserts a vector; returns its id. Ids of consolidated deletions are
  /// recycled.
  uint32_t Insert(const float* vec);

  /// Tombstones a vector: it stops appearing in results immediately but
  /// remains traversable until ConsolidateDeletes().
  Status Delete(uint32_t id);

  /// Repairs the graph around tombstoned nodes and recycles their slots.
  void ConsolidateDeletes();

  /// k nearest *live* vectors.
  void Search(const float* query, size_t k, uint32_t window,
              SearchResult* out) const;

  size_t dim() const { return dim_; }
  /// Slots in use (including tombstones awaiting consolidation).
  size_t size() const { return n_; }
  /// Live (searchable) vectors.
  size_t live_size() const { return n_ - num_deleted_; }
  size_t capacity() const { return capacity_; }
  uint32_t max_degree() const { return opts_.graph_max_degree; }
  bool IsDeleted(uint32_t id) const { return deleted_[id] != 0; }

  const float* vector(uint32_t id) const { return vectors_.data() + id * dim_; }

 private:
  struct Candidate {
    float dist;
    uint32_t id;
    bool operator<(const Candidate& o) const {
      return dist < o.dist || (dist == o.dist && id < o.id);
    }
  };

  float Dist(const float* a, const float* b) const;
  void Grow(size_t min_capacity);
  /// Greedy search over the current graph; returns the candidate pool
  /// (ascending distance, tombstones included — they remain navigable).
  void CollectCandidates(const float* query, uint32_t window,
                         std::vector<Candidate>* out) const;
  /// Algorithm 2 on a sorted candidate list.
  void RobustPrune(const float* x, std::vector<Candidate>& cands,
                   std::vector<uint32_t>* out) const;
  void UpdateEntryPoint();

  size_t dim_;
  Options opts_;
  size_t capacity_ = 0;
  size_t n_ = 0;
  size_t num_deleted_ = 0;
  std::vector<float> vectors_;        // capacity * dim
  FlatGraph graph_;                   // capacity rows
  std::vector<uint8_t> deleted_;      // capacity
  std::vector<uint32_t> free_slots_;  // recycled ids
  uint32_t entry_point_ = 0;
};

}  // namespace blink
