// Dynamic graph index: insertions, deletions and model updates.
//
// The paper motivates LVQ partly through dynamic indices (Sec. 3.2): when
// the data distribution shifts, LVQ's model update is a linear-time mean
// recompute + re-encode, against PQ's k-means retraining. This module
// supplies the index dynamics that discussion presumes:
//   - Insert: the single-node Vamana update (greedy search for candidates,
//     relaxed pruning, backward edges with overflow pruning),
//   - Delete: tombstoning, with deleted nodes still traversable (so the
//     graph stays navigable) but excluded from results,
//   - ConsolidateDeletes: DiskANN-style repair — neighbors of deleted
//     nodes inherit the deleted nodes' out-edges, then re-prune; slots are
//     recycled by later inserts.
//
// Concurrency (DESIGN.md D6): the index is single-writer / multi-reader.
// Searches run concurrently with Insert/Delete/ConsolidateDeletes without
// taking a lock on the hot path — readers stamp an epoch slot on entry
// (util/epoch.h) and traverse adjacency through FlatGraph's acquire/release
// row protocol. Writers are serialized on an internal mutex; operations
// that invalidate reader-visible memory coordinate through the guard:
//   - Grow() reallocates the vector and graph arenas under the guard's
//     exclusive lock (stop-the-world; rare — amortized doubling, avoidable
//     via `initial_capacity`),
//   - ConsolidateDeletes() purges tombstoned rows under the exclusive lock,
//     so readers entering afterwards see the repaired graph and cannot
//     reach a freed slot,
//   - Insert() into a recycled slot runs a Quiesce() grace period first,
//     draining any straggler reader that could still hold the old id, so
//     the in-place vector overwrite is race-free.
// A torn read of a row mid-publication yields a stale-but-valid neighbor
// list; greedy search tolerates that (worst case: a wasted hop).
//
// Storage is growable float32 (dynamic compressed storage would need
// re-encodable arenas; Sec. 3.2 re-encoding is demonstrated in
// examples/dynamic_reencoding.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "graph/graph.h"
#include "graph/search.h"
#include "graph/search_buffer.h"
#include "graph/storage.h"
#include "util/epoch.h"
#include "util/status.h"

namespace blink {

class DynamicIndex {
 public:
  /// entry_point_ sentinel while no live vector exists. Readers never
  /// dereference it, so an empty (or emptied) index can never lead a
  /// search into a freed slot.
  static constexpr uint32_t kNoEntry = UINT32_MAX;

  struct Options {
    uint32_t graph_max_degree = 32;  ///< R
    uint32_t build_window = 64;      ///< W for insert-time searches
    float alpha = 1.2f;              ///< pruning relaxation (<1 for IP)
    Metric metric = Metric::kL2;
    size_t initial_capacity = 1024;
  };

  /// Reusable per-thread search state (candidate buffer, visited epochs,
  /// neighbor-copy scratch). Create one per serving thread and pass it to
  /// Search() to amortize per-query allocation; see serve/engine.h.
  struct SearchScratch {
    SearchBuffer buffer;
    VisitedSet visited;
    size_t visited_capacity = 0;
    std::vector<uint32_t> neighbors;         // row copy, max_degree entries
    uint64_t distance_computations = 0;      // of the last search
    uint64_t hops = 0;
  };

  DynamicIndex(size_t dim, const Options& opts);

  /// Inserts a vector; returns its id. Ids of consolidated deletions are
  /// recycled. Thread-safe against concurrent Search (writers serialize).
  uint32_t Insert(const float* vec);

  /// Tombstones a vector: it stops appearing in results immediately but
  /// remains traversable until ConsolidateDeletes(). Thread-safe.
  Status Delete(uint32_t id);

  /// Repairs the graph around tombstoned nodes and recycles their slots.
  /// Thread-safe; briefly blocks readers while purging.
  void ConsolidateDeletes();

  /// k nearest *live* vectors. Safe to call from any number of threads
  /// concurrently with writers. The scratch overload reuses per-thread
  /// state; the plain overload allocates fresh scratch per call.
  void Search(const float* query, size_t k, uint32_t window,
              SearchResult* out, SearchScratch* scratch) const;
  void Search(const float* query, size_t k, uint32_t window,
              SearchResult* out) const;

  size_t dim() const { return dim_; }
  /// Slots in use (including tombstones awaiting consolidation).
  size_t size() const { return n_.load(std::memory_order_relaxed); }
  /// Live (searchable) vectors. Acquire pairs with Insert's release when a
  /// slot goes live, so a reader that observes the count also observes the
  /// slot's vector bytes.
  size_t live_size() const {
    return n_.load(std::memory_order_acquire) -
           num_deleted_.load(std::memory_order_acquire);
  }
  /// ReadLock-guarded: capacity_ and the container internals it reports
  /// are mutated by Grow() under the exclusive lock.
  size_t capacity() const {
    EpochGuard::ReadLock reader(&epoch_);
    return capacity_;
  }
  uint32_t max_degree() const { return opts_.graph_max_degree; }
  bool IsDeleted(uint32_t id) const {
    return std::atomic_ref<uint8_t>(
               const_cast<uint8_t&>(deleted_[id]))
               .load(std::memory_order_relaxed) != 0;
  }
  /// Resident bytes of vectors + adjacency + tombstone flags.
  /// ReadLock-guarded like capacity().
  size_t memory_bytes() const {
    EpochGuard::ReadLock reader(&epoch_);
    return capacity_ * dim_ * sizeof(float) + graph_.memory_bytes() +
           deleted_.size();
  }

  const float* vector(uint32_t id) const { return vectors_.data() + id * dim_; }

 private:
  struct Candidate {
    float dist;
    uint32_t id;
    bool operator<(const Candidate& o) const {
      return dist < o.dist || (dist == o.dist && id < o.id);
    }
  };

  float Dist(const float* a, const float* b) const;
  void Grow(size_t min_capacity);
  /// Greedy search over the current graph; returns the candidate pool
  /// (ascending distance, tombstones included — they remain navigable).
  /// Reader-safe: copies adjacency rows through the acquire protocol.
  void CollectCandidates(const float* query, uint32_t window,
                         std::vector<Candidate>* out) const;
  /// Scratch-based variant used by the read path; fills scratch->buffer and
  /// the work counters instead of materializing a candidate vector.
  void CollectIntoScratch(const float* query, uint32_t window,
                          SearchScratch* scratch) const;
  /// Algorithm 2 on a sorted candidate list.
  void RobustPrune(const float* x, std::vector<Candidate>& cands,
                   std::vector<uint32_t>* out) const;
  void UpdateEntryPoint();
  void SetDeleted(uint32_t id, uint8_t flag) {
    std::atomic_ref<uint8_t>(deleted_[id])
        .store(flag, std::memory_order_relaxed);
  }

  size_t dim_;
  Options opts_;
  size_t capacity_ = 0;                 // mutated only under exclusive lock
  std::atomic<size_t> n_{0};
  std::atomic<size_t> num_deleted_{0};
  std::vector<float> vectors_;          // capacity * dim
  FlatGraph graph_;                     // capacity rows
  std::vector<uint8_t> deleted_;        // capacity (atomic_ref access)
  std::vector<uint32_t> free_slots_;    // recycled ids (writer-only)
  std::atomic<uint32_t> entry_point_{kNoEntry};

  mutable EpochGuard epoch_;            // reader registration / quiescing
  std::mutex write_mu_;                 // serializes writers
};

}  // namespace blink
