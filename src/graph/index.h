// OG-LVQ: the paper's system — an optimized Vamana graph over (optionally
// LVQ-compressed) vector storage, with the Sec. 5 search engine.
//
// VamanaIndex<Storage> is the concrete, monomorphic index; the factory
// functions at the bottom build the configurations evaluated in the paper
// and return them behind the type-erased SearchIndex interface.
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "eval/interface.h"
#include "graph/builder.h"
#include "graph/search.h"
#include "graph/storage.h"

namespace blink {

template <typename Storage>
class VamanaIndex : public SearchIndex {
 public:
  /// Builds the graph over the given storage.
  VamanaIndex(Storage storage, const VamanaBuildParams& params,
              ThreadPool* pool = nullptr)
      : storage_(std::move(storage)), build_params_(params) {
    built_ = BuildVamana(storage_, params, pool);
  }

  /// Adopts a pre-built graph (e.g. built from a different storage — the
  /// Sec. 4 "build compressed, search full-precision" experiments).
  VamanaIndex(Storage storage, BuiltGraph graph, VamanaBuildParams params)
      : storage_(std::move(storage)),
        build_params_(params),
        built_(std::move(graph)) {}

  std::string name() const override {
    return std::string("OG-") + storage_.encoding_name() + "-R" +
           std::to_string(build_params_.graph_max_degree);
  }
  size_t size() const override { return storage_.size(); }
  size_t dim() const override { return storage_.dim(); }
  size_t memory_bytes() const override {
    return storage_.memory_bytes() + built_.graph.memory_bytes() +
           (metadata_ != nullptr ? metadata_->memory_bytes() : 0);
  }

  void SearchBatch(MatrixViewF queries, size_t k, const SearchOptions& params,
                   uint32_t* ids, ThreadPool* pool = nullptr) const override {
    SearchBatchEx(queries, k, params, ids, /*dists=*/nullptr,
                  /*stats=*/nullptr, pool);
  }

  /// Batch search that also reports per-query distances and aggregate work
  /// counters (either may be null); the plain batch path used to drop both.
  void SearchBatchEx(MatrixViewF queries, size_t k, const SearchOptions& params,
                     uint32_t* ids, float* dists, BatchStats* stats,
                     ThreadPool* pool = nullptr) const override {
    const SearchParams sp = ToSearchParams(params, k);
    // Filtered queries resolve their execution plan (strategy + widen cap)
    // once per batch; without attached metadata they fail closed (all
    // padded) — ValidateFor rejects that configuration at the boundaries.
    FilterPlan plan;
    if (params.filter != nullptr && !MakeFilterPlan(params, sp, k, &plan)) {
      FailClosed(queries.rows, k, ids, dists);
      return;
    }
    const size_t workers = pool != nullptr ? pool->num_threads() : 1;
    RunBatchSlices(
        queries.rows, workers, pool, stats,
        [&](size_t, size_t lo, size_t hi, BatchStats* slice_stats) {
          GreedySearcher<Storage> searcher(&built_.graph, &storage_);
          SearchResult res;
          for (size_t qi = lo; qi < hi; ++qi) {
            if (plan.active) {
              SearchFiltered(searcher, queries.row(qi), k, sp, plan, &res);
            } else {
              searcher.Search(queries.row(qi), k, built_.entry_point, sp,
                              &res);
            }
            WriteRow(res, k, ids + qi * k,
                     dists != nullptr ? dists + qi * k : nullptr);
            slice_stats->distance_computations += res.distance_computations;
            slice_stats->hops += res.hops;
          }
        });
  }

  /// Single-query search exposing full per-query statistics. Pads ids/dists
  /// to exactly k entries (kInvalidId / +inf) like the batch paths.
  void Search(const float* query, size_t k, const SearchOptions& params,
              SearchResult* out) const {
    GreedySearcher<Storage> searcher(&built_.graph, &storage_);
    const SearchParams sp = ToSearchParams(params, k);
    if (params.filter != nullptr) {
      FilterPlan plan;
      if (MakeFilterPlan(params, sp, k, &plan)) {
        SearchFiltered(searcher, query, k, sp, plan, out);
      } else {
        out->ids.clear();
        out->dists.clear();
      }
    } else {
      searcher.Search(query, k, built_.entry_point, sp, out);
    }
    out->ids.resize(k, kInvalidId);
    out->dists.resize(k, kInvalidDist);
  }

  /// Pooled per-thread searcher: the GreedySearcher (visited epochs, query
  /// scratch, candidate buffer) survives across queries, amortizing the
  /// per-call setup the serving engine relies on.
  std::unique_ptr<Searcher> MakeSearcher() const override {
    class Pooled : public Searcher {
     public:
      explicit Pooled(const VamanaIndex* index)
          : index_(index),
            searcher_(&index->built_.graph, &index->storage_) {}

      void Search(const float* query, size_t k, const SearchOptions& params,
                  uint32_t* ids, float* dists, BatchStats* stats) override {
        const SearchParams sp = ToSearchParams(params, k);
        if (params.filter != nullptr) {
          if (!EnsurePlan(params, sp, k)) {
            res_.ids.clear();
            res_.dists.clear();
            res_.distance_computations = 0;
            res_.hops = 0;
          } else {
            index_->SearchFiltered(searcher_, query, k, sp, plan_, &res_);
          }
        } else {
          searcher_.Search(query, k, index_->built_.entry_point, sp, &res_);
        }
        WriteRow(res_, k, ids, dists);
        if (stats != nullptr) {
          stats->distance_computations += res_.distance_computations;
          stats->hops += res_.hops;
        }
      }

     private:
      /// The filter plan (strategy crossover + widen cap) is cached across
      /// calls keyed on the exact filter configuration, so the pooled
      /// serving path does not re-estimate selectivity per query. The
      /// shared_ptr copy keeps the cache key's address from being recycled.
      bool EnsurePlan(const SearchOptions& p, const SearchParams& sp,
                      size_t k) {
        if (plan_.active && plan_filter_ == p.filter &&
            plan_strategy_ == p.filter_strategy &&
            plan_cap_request_ == p.filter_widen_cap &&
            plan_window_ == sp.window && plan_k_ == k) {
          return true;
        }
        plan_ = FilterPlan();
        if (!index_->MakeFilterPlan(p, sp, k, &plan_)) return false;
        plan_filter_ = p.filter;
        plan_strategy_ = p.filter_strategy;
        plan_cap_request_ = p.filter_widen_cap;
        plan_window_ = sp.window;
        plan_k_ = k;
        return true;
      }

      const VamanaIndex* index_;
      GreedySearcher<Storage> searcher_;
      SearchResult res_;
      FilterPlan plan_;
      std::shared_ptr<const Predicate> plan_filter_;
      FilterStrategy plan_strategy_ = FilterStrategy::kAuto;
      uint32_t plan_cap_request_ = 0;
      uint32_t plan_window_ = 0;
      size_t plan_k_ = 0;
    };
    return std::make_unique<Pooled>(this);
  }

  const Storage& storage() const { return storage_; }
  const FlatGraph& graph() const { return built_.graph; }
  uint32_t entry_point() const { return built_.entry_point; }
  double build_seconds() const { return built_.build_seconds; }
  const VamanaBuildParams& build_params() const { return build_params_; }

  /// Attaches a per-vector metadata store (row i describes vector i); the
  /// store must cover exactly the index's vectors. Null detaches. Search
  /// honors SearchOptions::filter only while a store is attached.
  Status AttachMetadata(std::shared_ptr<const MetadataStore> md) {
    if (md != nullptr && md->size() != storage_.size()) {
      return Status::InvalidArgument(
          "metadata store has " + std::to_string(md->size()) +
          " rows but the index holds " + std::to_string(storage_.size()) +
          " vectors");
    }
    metadata_ = std::move(md);
    return Status::OK();
  }
  const MetadataStore* metadata() const { return metadata_.get(); }
  std::shared_ptr<const MetadataStore> shared_metadata() const {
    return metadata_;
  }

 private:
  /// Resolved execution plan of one filtered batch/query stream.
  struct FilterPlan {
    bool active = false;
    FilterView view;
    bool push_down = false;
    uint32_t window0 = 0;
    uint32_t widen_cap = 0;
  };

  /// Binds the options' predicate to the attached store and resolves the
  /// strategy crossover, starting window, and widening cap. False (fail
  /// closed) when no metadata is attached or the predicate references
  /// missing columns.
  bool MakeFilterPlan(const SearchOptions& p, const SearchParams& sp, size_t k,
                      FilterPlan* plan) const {
    if (metadata_ == nullptr) return false;
    if (!p.filter->ValidateFor(metadata_->num_columns()).ok()) return false;
    plan->active = true;
    plan->view = FilterView{metadata_.get(), p.filter.get()};
    plan->push_down = ResolveFilterStrategy(*metadata_, *p.filter,
                                            p.filter_strategy) ==
                      FilterStrategy::kInSearch;
    plan->widen_cap =
        ResolveWidenCap(p.filter_widen_cap, storage_.size(), sp.window);
    plan->window0 =
        plan->push_down
            ? ResolveInSearchWindow(EstimateSelectivity(*metadata_, *p.filter),
                                    k, sp.window, plan->widen_cap)
            : sp.window;
    return true;
  }

  /// One filtered query: both strategies run under the shared adaptive
  /// widening loop (RunWidened) until k survivors or the cap. In-search
  /// starts from the selectivity-boosted window the plan resolved.
  void SearchFiltered(GreedySearcher<Storage>& searcher, const float* query,
                      size_t k, const SearchParams& base,
                      const FilterPlan& plan, SearchResult* out) const {
    SearchParams sp = base;
    sp.filter = &plan.view;
    sp.filter_push_down = plan.push_down;
    RunWidened(
        k, plan.window0, plan.widen_cap,
        [&](uint32_t w, SearchResult* res) {
          sp.window = w;
          searcher.Search(query, k, built_.entry_point, sp, res);
        },
        out);
  }

  /// All-padded rows: the fail-closed answer for a filtered query the
  /// index cannot evaluate (no metadata / bad column reference).
  static void FailClosed(size_t nq, size_t k, uint32_t* ids, float* dists) {
    for (size_t qi = 0; qi < nq; ++qi) {
      WritePaddedRow(nullptr, nullptr, 0, k, ids + qi * k,
                     dists != nullptr ? dists + qi * k : nullptr);
    }
  }
  /// One result into row-major output via the shared padding contract.
  static void WriteRow(const SearchResult& res, size_t k, uint32_t* ids,
                       float* dists) {
    WritePaddedRow(res.ids.data(), res.dists.data(), res.ids.size(), k, ids,
                   dists);
  }

  static SearchParams ToSearchParams(const SearchOptions& p, size_t k) {
    SearchParams sp;
    sp.window = std::max<uint32_t>(p.window, static_cast<uint32_t>(k));
    sp.prefetch_offset = p.prefetch_offset;
    sp.prefetch_step = p.prefetch_step;
    sp.use_visited_set = p.use_visited_set;
    sp.rerank = p.rerank;
    sp.rerank_window = p.rerank_window;
    return sp;
  }

  Storage storage_;
  VamanaBuildParams build_params_;
  BuiltGraph built_;
  std::shared_ptr<const MetadataStore> metadata_;
};

// ---------------------------------------------------------------------------
// Factories for the configurations evaluated in the paper.
// ---------------------------------------------------------------------------

/// OG-LVQ with one-level LVQ-B (bits2 == 0) or two-level LVQ-B1xB2.
inline std::unique_ptr<VamanaIndex<LvqStorage>> BuildOgLvq(
    MatrixViewF data, Metric metric, int bits1, int bits2,
    const VamanaBuildParams& bp, ThreadPool* pool = nullptr) {
  LvqStorage storage =
      bits2 > 0 ? LvqStorage(data, metric, bits1, bits2, /*padding=*/32, pool)
                : LvqStorage(data, metric, bits1, /*padding=*/32, pool);
  return std::make_unique<VamanaIndex<LvqStorage>>(std::move(storage), bp, pool);
}

/// Vamana over full-precision vectors (the paper's "Vamana" baseline).
inline std::unique_ptr<VamanaIndex<FloatStorage>> BuildVamanaF32(
    MatrixViewF data, Metric metric, const VamanaBuildParams& bp,
    ThreadPool* pool = nullptr) {
  return std::make_unique<VamanaIndex<FloatStorage>>(
      FloatStorage(data, metric), bp, pool);
}

/// Vamana over float16 storage (Table 4 baseline).
inline std::unique_ptr<VamanaIndex<F16Storage>> BuildVamanaF16(
    MatrixViewF data, Metric metric, const VamanaBuildParams& bp,
    ThreadPool* pool = nullptr) {
  return std::make_unique<VamanaIndex<F16Storage>>(F16Storage(data, metric),
                                                   bp, pool);
}

/// Vamana over globally-quantized storage (Fig. 12 ablation baseline).
inline std::unique_ptr<VamanaIndex<GlobalQuantStorage>> BuildOgGlobal(
    MatrixViewF data, Metric metric, int bits, int bits2,
    const VamanaBuildParams& bp, ThreadPool* pool = nullptr) {
  return std::make_unique<VamanaIndex<GlobalQuantStorage>>(
      GlobalQuantStorage(data, metric, bits, bits2, GlobalMode::kGlobal, pool),
      bp, pool);
}

}  // namespace blink
