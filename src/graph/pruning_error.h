// Theory of graph pruning under LVQ compression (paper Sec. 4).
//
// When the graph is built from compressed vectors, the pruning rule of
// Algorithm 2 evaluates sign(a^T x' - b) against quantized points; the
// perturbation is an error term E (Eq. 19) that Proposition 2 shows to be
// Gaussian with closed-form mean (Eq. 12) and variance (Eq. 13), and |E|
// follows a folded normal (Corollary 1, Eqs. 14-15).
//
// This module computes both sides of Fig. 5 (right):
//   - the empirical E for sampled pruning triplets (x, x*, x'), and
//   - the theoretical mu_|E| / sigma_|E| from the propositions,
// together with the safety margin |a^T x' - b| * ||x - x*|| (Eq. 11) that
// the error must stay below for compressed and full-precision pruning to
// agree.
#pragma once

#include <cstdint>
#include <vector>

#include "util/matrix.h"
#include "util/prng.h"
#include "util/thread_pool.h"

namespace blink {

/// One pruning triplet: x (node being wired), x* (closest candidate),
/// x' (candidate tested for removal), sampled as in the paper: x random,
/// x* uniform among x's T nearest neighbors, x' among those farther than x*.
struct PruningTriplet {
  uint32_t x;
  uint32_t x_star;
  uint32_t x_prime;
};

std::vector<PruningTriplet> SamplePruningTriplets(MatrixViewF data,
                                                  size_t num_triplets,
                                                  size_t t_neighbors,
                                                  uint64_t seed,
                                                  ThreadPool* pool = nullptr);

/// Exact perturbation E of the pruning rule (Eq. 19), computed from the
/// original vectors and their quantized reconstructions (z_v = v - Q(v)).
double PruningErrorE(const float* x, const float* x_star, const float* x_prime,
                     const float* qx, const float* qx_star,
                     const float* qx_prime, size_t d);

/// The margin |a^T x' - b| * ||x - x*|| of Eq. 11: pruning decisions agree
/// whenever |E| stays below this.
double PruningMargin(const float* x, const float* x_star, const float* x_prime,
                     size_t d);

/// Closed-form moments of E (Proposition 2) given the per-vector
/// quantization steps Delta and the pairwise distances.
struct PruningErrorTheory {
  double mu_e = 0.0;
  double sigma_e = 0.0;
  double mu_abs_e = 0.0;     ///< folded-normal mean (Eq. 14)
  double sigma_abs_e = 0.0;  ///< folded-normal stddev (Eq. 15)
};

PruningErrorTheory ComputePruningErrorTheory(double delta_x, double delta_xs,
                                             double delta_xp,
                                             double dist_x_xp,
                                             double dist_xs_xp,
                                             double dist_x_xs, size_t d);

}  // namespace blink
