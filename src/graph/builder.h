// Vamana graph construction (paper Sec. 2.1, following Subramanya et al.
// [28]): for each node, greedy-search the current graph with the node as
// query, prune the candidate pool with the relaxed rule of Algorithm 2, set
// the node's out-neighbors, then insert backward edges and re-prune any
// node that exceeds the degree bound R. Two passes are made: the first with
// relaxation alpha = 1.0, the second with the configured alpha.
//
// Because the builder is templated on Storage, graphs can be built directly
// from LVQ-compressed vectors (paper Sec. 4): node queries are decoded on
// the fly and all candidate distances use the storage's fused kernels.
//
// Parallelism: nodes are processed in batches. Within a batch all searches
// run concurrently against a frozen graph snapshot; adjacency updates are
// applied serially between batches. Given a fixed seed the result is
// deterministic for any thread count.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "graph/graph.h"
#include "graph/search.h"
#include "graph/storage.h"
#include "util/prng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace blink {

struct VamanaBuildParams {
  uint32_t graph_max_degree = 64;  ///< R
  uint32_t window_size = 128;      ///< W for the build-time searches
  float alpha = 1.2f;              ///< second-pass relaxation (use <1 for IP)
  uint32_t max_candidates = 512;   ///< cap on the pruning candidate pool
  uint64_t seed = 0x5eed;
  bool two_passes = true;
  bool use_huge_pages = true;
};

/// A built graph plus the search entry point.
struct BuiltGraph {
  FlatGraph graph;
  uint32_t entry_point = 0;
  double build_seconds = 0.0;
};

namespace detail {

struct Candidate {
  float dist;  // distance to the node being wired (lower = more similar)
  uint32_t id;
  bool operator<(const Candidate& o) const {
    return dist < o.dist || (dist == o.dist && id < o.id);
  }
};

/// Algorithm 2 (neighborhood pruning) in distance space. `cands` must be
/// sorted by ascending distance to the target node x and not contain x.
/// The rule "alpha * sim(x*, x') >= sim(x, x')" with sim = -dist becomes
/// "alpha * dist(x*, x') <= dist(x, x')" for L2 (alpha >= 1) and stays in
/// similarity form for IP (alpha <= 1); we evaluate it in similarity space
/// so one code path serves both metrics.
template <typename Storage>
void RobustPrune(const Storage& storage, [[maybe_unused]] uint32_t x,
                 std::vector<Candidate>& cands, float alpha, uint32_t R,
                 std::vector<float>& decode_buf,
                 typename Storage::Query& qstate,
                 std::vector<uint32_t>* out_neighbors) {
  out_neighbors->clear();
  std::vector<char> removed(cands.size(), 0);
  for (size_t s = 0; s < cands.size(); ++s) {
    if (removed[s]) continue;
    const Candidate star = cands[s];
    out_neighbors->push_back(star.id);
    if (out_neighbors->size() == R) break;
    // Prepare x* as a query to measure dist(x*, x') for the prune rule.
    storage.DecodeVector(star.id, decode_buf.data());
    storage.PrepareQuery(decode_buf.data(), &qstate);
    for (size_t t = s + 1; t < cands.size(); ++t) {
      if (removed[t]) continue;
      const float d_star_prime = storage.Distance(qstate, cands[t].id);
      // similarity form: alpha * sim(x*, x') >= sim(x, x')  =>  remove x'
      if (alpha * (-d_star_prime) >= -cands[t].dist) removed[t] = 1;
    }
  }
}

}  // namespace detail

/// Builds a Vamana graph over `storage`. The returned entry point is the
/// medoid (the vector closest to the dataset mean).
template <typename Storage>
BuiltGraph BuildVamana(const Storage& storage, const VamanaBuildParams& params,
                       ThreadPool* pool = nullptr) {
  const size_t n = storage.size();
  const size_t d = storage.dim();
  const uint32_t R = params.graph_max_degree;
  BuiltGraph out;
  out.graph = FlatGraph(n, R, params.use_huge_pages);
  if (n == 0) return out;

  Timer build_timer;

  // Entry point: medoid. Compute the decoded mean, then the closest vector.
  {
    std::vector<double> acc(d, 0.0);
    std::vector<float> buf(d);
    for (size_t i = 0; i < n; ++i) {
      storage.DecodeVector(i, buf.data());
      for (size_t j = 0; j < d; ++j) acc[j] += buf[j];
    }
    std::vector<float> mean(d);
    for (size_t j = 0; j < d; ++j) {
      mean[j] = static_cast<float>(acc[j] / static_cast<double>(n));
    }
    typename Storage::Query q;
    storage.PrepareQuery(mean.data(), &q);
    float best = storage.Distance(q, 0);
    uint32_t best_id = 0;
    for (size_t i = 1; i < n; ++i) {
      const float di = storage.Distance(q, i);
      if (di < best) {
        best = di;
        best_id = static_cast<uint32_t>(i);
      }
    }
    out.entry_point = best_id;
  }

  // Random insertion order, fixed by seed.
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  {
    Rng rng(params.seed);
    for (size_t i = n - 1; i > 0; --i) {
      std::swap(order[i], order[rng.Bounded(i + 1)]);
    }
  }

  const size_t num_workers = pool != nullptr ? pool->num_threads() : 1;
  const size_t batch = std::max<size_t>(num_workers * 8, 64);

  SearchParams sp;
  sp.window = std::max(params.window_size, R + 1);
  sp.use_visited_set = true;  // build-time searches favor fewer recomputes
  sp.rerank = false;          // wiring uses level-1 distances only

  struct Worker {
    GreedySearcher<Storage> searcher;
    SearchResult result;
    std::vector<float> decode_buf;
    typename Storage::Query prune_query;
    std::vector<detail::Candidate> cands;
    std::vector<uint32_t> pruned;
    std::vector<uint32_t> pruned_nb;
    explicit Worker(const FlatGraph* g, const Storage* s)
        : searcher(g, s), decode_buf(s->dim()) {}
  };

  const int passes = params.two_passes ? 2 : 1;
  for (int pass = 0; pass < passes; ++pass) {
    const float alpha = (pass + 1 == passes) ? params.alpha : 1.0f;

    std::vector<Worker> workers;
    workers.reserve(num_workers);
    for (size_t w = 0; w < num_workers; ++w) {
      workers.emplace_back(&out.graph, &storage);
    }
    // Candidate pools of the current batch, collected in parallel.
    std::vector<std::vector<detail::Candidate>> batch_cands(batch);

    for (size_t begin = 0; begin < n; begin += batch) {
      const size_t end = std::min(n, begin + batch);
      const size_t m = end - begin;

      // Phase 1 (parallel, frozen graph): search each node.
      auto search_one = [&](Worker& w, size_t t) {
        const uint32_t node = order[begin + t];
        storage.DecodeVector(node, w.decode_buf.data());
        w.searcher.Search(w.decode_buf.data(), sp.window, out.entry_point, sp,
                          &w.result);
        auto& cands = batch_cands[t];
        cands.clear();
        const SearchBuffer& buf = w.searcher.buffer();
        for (size_t i = 0; i < buf.size(); ++i) {
          if (buf[i].id != node) cands.push_back({buf[i].dist, buf[i].id});
        }
      };
      if (pool != nullptr && num_workers > 1) {
        // One task per worker over a contiguous slice: worker state stays
        // thread-private, and slicing is deterministic for any thread count.
        pool->ParallelFor(num_workers, [&](size_t widx) {
          const size_t lo = m * widx / num_workers;
          const size_t hi = m * (widx + 1) / num_workers;
          for (size_t t = lo; t < hi; ++t) search_one(workers[widx], t);
        });
      } else {
        for (size_t t = 0; t < m; ++t) search_one(workers[0], t);
      }

      // Phase 2 (serial): prune + apply forward and backward edges.
      Worker& w0 = workers[0];
      for (size_t t = 0; t < m; ++t) {
        const uint32_t node = order[begin + t];
        auto& cands = w0.cands;
        cands = batch_cands[t];
        // Merge in current out-neighbors (C ∪ N(x), Algorithm 2 line 1).
        {
          storage.DecodeVector(node, w0.decode_buf.data());
          typename Storage::Query nq;
          storage.PrepareQuery(w0.decode_buf.data(), &nq);
          const uint32_t* nbrs = out.graph.neighbors(node);
          for (uint32_t e = 0; e < out.graph.degree(node); ++e) {
            cands.push_back({storage.Distance(nq, nbrs[e]), nbrs[e]});
          }
        }
        std::sort(cands.begin(), cands.end());
        cands.erase(std::unique(cands.begin(), cands.end(),
                                [](const detail::Candidate& a,
                                   const detail::Candidate& b) {
                                  return a.id == b.id;
                                }),
                    cands.end());
        if (cands.size() > params.max_candidates) {
          cands.resize(params.max_candidates);
        }
        detail::RobustPrune(storage, node, cands, alpha, R, w0.decode_buf,
                            w0.prune_query, &w0.pruned);
        out.graph.SetNeighbors(node, w0.pruned.data(),
                               static_cast<uint32_t>(w0.pruned.size()));

        // Backward edges with overflow pruning.
        for (uint32_t nb : w0.pruned) {
          // Skip if the backward edge already exists (e.g. wired during an
          // earlier batch or the first pass).
          const uint32_t* nb_nbrs = out.graph.neighbors(nb);
          const uint32_t nb_deg = out.graph.degree(nb);
          bool present = false;
          for (uint32_t e = 0; e < nb_deg; ++e) {
            if (nb_nbrs[e] == node) {
              present = true;
              break;
            }
          }
          if (present) continue;
          if (!out.graph.AddNeighbor(nb, node)) {
            // Re-prune nb's neighborhood (now R+1 candidates incl. node).
            storage.DecodeVector(nb, w0.decode_buf.data());
            typename Storage::Query nq;
            storage.PrepareQuery(w0.decode_buf.data(), &nq);
            std::vector<detail::Candidate> nb_cands;
            nb_cands.reserve(out.graph.degree(nb) + 1);
            const uint32_t* nbrs = out.graph.neighbors(nb);
            for (uint32_t e = 0; e < out.graph.degree(nb); ++e) {
              nb_cands.push_back({storage.Distance(nq, nbrs[e]), nbrs[e]});
            }
            nb_cands.push_back({storage.Distance(nq, node), node});
            std::sort(nb_cands.begin(), nb_cands.end());
            detail::RobustPrune(storage, nb, nb_cands, alpha, R, w0.decode_buf,
                                w0.prune_query, &w0.pruned_nb);
            out.graph.SetNeighbors(nb, w0.pruned_nb.data(),
                                   static_cast<uint32_t>(w0.pruned_nb.size()));
          }
        }
      }
    }
  }

  out.build_seconds = build_timer.Seconds();
  return out;
}

}  // namespace blink
