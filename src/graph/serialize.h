// Index persistence: save/load for flat graphs, LVQ datasets and complete
// OG-LVQ index bundles.
//
// Production deployments build once and serve many times; the paper's
// Table 1 is precisely about how expensive construction is. All formats are
// little-endian, versioned, and streamed through plain stdio (no mmap
// dependence), with the same "BLNK" magic family as util/io.h.
#pragma once

#include <memory>
#include <string>

#include "graph/builder.h"
#include "graph/dynamic.h"
#include "graph/graph.h"
#include "graph/index.h"
#include "graph/storage.h"
#include "quant/lvq.h"
#include "util/status.h"

namespace blink {

/// Saves a built graph (adjacency + entry point).
Status SaveGraph(const std::string& path, const FlatGraph& graph,
                 uint32_t entry_point);

/// Loads a graph saved with SaveGraph.
Result<BuiltGraph> LoadGraph(const std::string& path,
                             bool use_huge_pages = true);

/// Saves a one-level LVQ dataset (mean + per-vector blobs).
Status SaveLvq(const std::string& path, const LvqDataset& ds);
Result<LvqDataset> LoadLvq(const std::string& path,
                           bool use_huge_pages = true);

/// Saves a two-level LVQ dataset (level 1 + residual codes).
Status SaveLvq2(const std::string& path, const LvqDataset2& ds);
Result<LvqDataset2> LoadLvq2(const std::string& path,
                             bool use_huge_pages = true);

/// Saves a complete OG-LVQ index as `<prefix>.graph` + `<prefix>.vecs`.
/// Only one-level LvqStorage indices are currently supported for the
/// bundle (the configuration the paper ships as its default).
Status SaveOgLvqIndex(const std::string& prefix,
                      const VamanaIndex<LvqStorage>& index);

/// Loads a bundle saved with SaveOgLvqIndex. `metric` and the build params
/// are not serialized (they are configuration, not state); pass the values
/// used at build time.
Result<std::unique_ptr<VamanaIndex<LvqStorage>>> LoadOgLvqIndex(
    const std::string& prefix, Metric metric, const VamanaBuildParams& bp,
    bool use_huge_pages = true);

/// Saves a dynamic index (storage rows, tombstone flags, free-slot list,
/// adjacency, entry point) as one file. The caller must guarantee no
/// concurrent writer for the duration of the call; concurrent readers are
/// fine. Both storages share the "BLDY" container, tagged by encoding.
Status SaveDynamic(const std::string& path, const DynamicIndex& index);
Status SaveDynamic(const std::string& path, const DynamicLvqIndex& index);

/// Loads a dynamic index saved with SaveDynamic. `opts` supplies the
/// configuration that is not serialized (metric, alpha, build window,
/// initial_capacity floor); graph_max_degree comes from the file. The
/// loader checks that the file's encoding matches the requested index
/// flavor (float32 vs LVQ).
Result<std::unique_ptr<DynamicIndex>> LoadDynamicF32(const std::string& path,
                                                     DynamicOptions opts);
Result<std::unique_ptr<DynamicLvqIndex>> LoadDynamicLvq(const std::string& path,
                                                        DynamicOptions opts);

}  // namespace blink
