// Index persistence: save/load for flat graphs, vector datasets (LVQ,
// float32, float16) and complete index bundles.
//
// Production deployments build once and serve many times; the paper's
// Table 1 is precisely about how expensive construction is. All formats are
// little-endian, versioned, and streamed through plain stdio (no mmap
// dependence), with the same "BLNK" magic family as util/io.h.
//
// Format versions (DESIGN.md D10/D12 have the full tables):
//   graph "BLAG"     v1: header + variable-length adjacency rows.
//                    v2: v1 + an IndexMeta block (metric + build params),
//                        so the artifact is self-describing.
//                    v3: v2 header/meta, then zero-padding to a 64-byte
//                        file offset, then *fixed-stride* rows of
//                        (1 + max_degree) u32 — byte-identical to
//                        FlatGraph's in-memory layout, so a mapping of
//                        the file serves directly (DESIGN.md D12).
//   vecs  "BLAQ"/"BLA2"  LVQ-B / LVQ-B1xB2 payloads. v3 pads to a
//                        64-byte offset before each blob/residual
//                        section (v1 reads kept).
//         "BLAF"/"BLAH"  float32 / float16 payloads; v3 pads before the
//                        row section likewise.
//         "BLLV"         LeanVec two-level payload (v3 only): header
//                        (kind tag, n, d, d'), the projection model
//                        (mean + d x d' matrix), then the primary
//                        (d'-dim) and secondary (full-dim) sections —
//                        raw float32 rows (kind 0) or nested "BLAQ"
//                        LVQ-8 sections (kind 1), each 64-byte aligned.
//   dynamic "BLDY"   v1: header + rows + tombstones + free list + graph.
//                    v2: header additionally carries metric/alpha/window.
//                    (Always heap-loaded: the index is mutable.)
//   sharded manifest "BLSH" — see shard/serialize.h (v2 adds IndexMeta).
//
// Version-1/2 artifacts remain loadable forever; the loaders fall back to
// caller-supplied configuration exactly as the pre-v2 API required. The
// Map* loaders accept only v3 (aligned) artifacts — Open() falls back to
// heap loading for anything older.
//
// All saves are atomic: payloads stream to `<path>.tmp.<pid>` and rename
// over the destination only after an fsync, so a crash mid-save can never
// leave a torn file where Open()'s sniffing finds it.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "graph/builder.h"
#include "graph/dynamic.h"
#include "graph/graph.h"
#include "graph/index.h"
#include "graph/storage.h"
#include "quant/leanvec.h"
#include "quant/lvq.h"
#include "util/mmap_file.h"
#include "util/status.h"

namespace blink {

/// Build-time configuration embedded in version-2 artifacts, so Open()
/// can reconstruct an index without the caller re-supplying the metric or
/// the build parameters.
struct IndexMeta {
  Metric metric = Metric::kL2;
  VamanaBuildParams params;
};

/// Saves a built graph (adjacency + entry point). With `meta` the file is
/// written as version 3 (self-describing, 64-byte-aligned fixed-stride
/// rows, mmap-servable); without it the legacy version-1 layout is
/// produced byte-identically (also how the back-compat test fixtures were
/// generated).
Status SaveGraph(const std::string& path, const FlatGraph& graph,
                 uint32_t entry_point, const IndexMeta* meta = nullptr);

/// Loads a graph saved with SaveGraph (either version). When the file is
/// version 2, `*meta` (if non-null) receives the embedded configuration,
/// with params.graph_max_degree set from the stored graph, and `*has_meta`
/// is set true; version-1 files leave `*meta` untouched and `*has_meta`
/// false.
Result<BuiltGraph> LoadGraph(const std::string& path,
                             bool use_huge_pages = true,
                             IndexMeta* meta = nullptr,
                             bool* has_meta = nullptr);

/// Saves a one-level LVQ dataset (mean + per-vector blobs).
Status SaveLvq(const std::string& path, const LvqDataset& ds);
Result<LvqDataset> LoadLvq(const std::string& path,
                           bool use_huge_pages = true);

/// Saves a two-level LVQ dataset (level 1 + residual codes).
Status SaveLvq2(const std::string& path, const LvqDataset2& ds);
Result<LvqDataset2> LoadLvq2(const std::string& path,
                             bool use_huge_pages = true);

/// Saves / loads a full-precision float32 vector payload ("BLAF").
Status SaveFloatVecs(const std::string& path, const FloatStorage& storage);
Result<FloatStorage> LoadFloatVecs(const std::string& path, Metric metric,
                                   bool use_huge_pages = true);

/// Saves / loads a float16 vector payload ("BLAH").
Status SaveF16Vecs(const std::string& path, const F16Storage& storage);
Result<F16Storage> LoadF16Vecs(const std::string& path, Metric metric,
                               bool use_huge_pages = true);

/// Saves a LeanVec two-level payload ("BLLV"): projection model plus the
/// primary (reduced-dimension) and secondary (full-dimension) sections,
/// tagged by primary encoding (float32 / LVQ-8). Always written v3.
Status SaveLeanVecVecs(const std::string& path, const LeanVecStorage& storage);
Status SaveLeanVecVecs(const std::string& path,
                       const LeanVecLvqStorage& storage);

/// Loads a "BLLV" payload saved with SaveLeanVecVecs. The loader checks
/// that the file's kind tag matches the requested flavor; the embedded
/// model's dimensions are validated against both payload sections.
Result<LeanVecStorage> LoadLeanVecVecs(const std::string& path, Metric metric,
                                       bool use_huge_pages = true);
Result<LeanVecLvqStorage> LoadLeanVecLvqVecs(const std::string& path,
                                             Metric metric,
                                             bool use_huge_pages = true);

/// The storage encoding of a `.vecs` file, sniffed from its magic (plus
/// the kind tag for "BLLV") — how Open() decides which static flavor to
/// reconstruct.
enum class VecsEncoding {
  kLvq1,
  kLvq2,
  kFloat32,
  kFloat16,
  kLeanVecF32,
  kLeanVecLvq,
};
Result<VecsEncoding> PeekVecsEncoding(const std::string& path);

// ---------------------------------------------------------------------------
// Map-mode loaders (ROADMAP item 2). Each parses headers from an
// already-established read-only mapping and returns a graph/storage that
// references the mapping's payload section directly — no copy, no
// allocation proportional to the dataset. The caller must keep `map`
// alive for as long as the returned object (api::Open stores the mapping
// next to the index). Only version-3 (64-byte-aligned) artifacts qualify;
// probe with IsMappableArtifact() and fall back to the heap loaders for
// older files.
//
// Validation policy (DESIGN.md D12): headers and section bounds are fully
// checked, and graph adjacency rows are validated eagerly (they are the
// only ids indexed into other arrays, and the graph is the small section),
// but vector payload pages are never touched — they fault in lazily as
// searches visit them.
// ---------------------------------------------------------------------------

/// True when `path` holds a version-3 aligned artifact of a known magic —
/// i.e. the Map* loaders below can serve it.
bool IsMappableArtifact(const std::string& path);

/// Maps a v3 graph file. Meta semantics match LoadGraph.
Result<BuiltGraph> MapGraph(const MmapFile& map, const std::string& path,
                            IndexMeta* meta = nullptr,
                            bool* has_meta = nullptr);

/// Maps a v3 one-level LVQ payload ("BLAQ").
Result<LvqDataset> MapLvq(const MmapFile& map, const std::string& path);

/// Maps a v3 two-level LVQ payload ("BLA2").
Result<LvqDataset2> MapLvq2(const MmapFile& map, const std::string& path);

/// Maps a v3 float32 payload ("BLAF").
Result<FloatStorage> MapFloatVecs(const MmapFile& map,
                                  const std::string& path, Metric metric);

/// Maps a v3 float16 payload ("BLAH").
Result<F16Storage> MapF16Vecs(const MmapFile& map, const std::string& path,
                              Metric metric);

/// Maps a "BLLV" LeanVec payload. The small projection model is copied
/// (it is read on every query); the primary and secondary row sections
/// are served from the mapping in place.
Result<LeanVecStorage> MapLeanVecVecs(const MmapFile& map,
                                      const std::string& path, Metric metric);
Result<LeanVecLvqStorage> MapLeanVecLvqVecs(const MmapFile& map,
                                            const std::string& path,
                                            Metric metric);

/// Saves a complete static index as `<prefix>.graph` + `<prefix>.vecs`.
/// The graph file embeds the metric and build params (version 2), so the
/// bundle reloads without configuration.
Status SaveIndexBundle(const std::string& prefix,
                       const VamanaIndex<LvqStorage>& index);
Status SaveIndexBundle(const std::string& prefix,
                       const VamanaIndex<FloatStorage>& index);
Status SaveIndexBundle(const std::string& prefix,
                       const VamanaIndex<F16Storage>& index);
Status SaveIndexBundle(const std::string& prefix,
                       const VamanaIndex<LeanVecStorage>& index);
Status SaveIndexBundle(const std::string& prefix,
                       const VamanaIndex<LeanVecLvqStorage>& index);

/// Legacy name for the LVQ bundle save (now writes version 2).
Status SaveOgLvqIndex(const std::string& prefix,
                      const VamanaIndex<LvqStorage>& index);

/// Loads an LVQ bundle. `metric` and `bp` are fallbacks for version-1
/// artifacts; a version-2 graph header overrides both (the artifact is the
/// single source of truth for its own configuration).
Result<std::unique_ptr<VamanaIndex<LvqStorage>>> LoadOgLvqIndex(
    const std::string& prefix, Metric metric, const VamanaBuildParams& bp,
    bool use_huge_pages = true);

/// True when `path` is a dynamic-index ("BLDY") file.
bool IsDynamicIndexFile(const std::string& path);

/// Storage kind of a BLDY file without loading the payload.
enum class DynamicKind { kF32, kLvq };
Result<DynamicKind> PeekDynamicKind(const std::string& path);

/// Saves a dynamic index (storage rows, tombstone flags, free-slot list,
/// adjacency, entry point) as one file, version 2: the header embeds the
/// metric, pruning alpha and build window. The caller must guarantee no
/// concurrent writer for the duration of the call; concurrent readers are
/// fine. Both storages share the "BLDY" container, tagged by encoding.
Status SaveDynamic(const std::string& path, const DynamicIndex& index);
Status SaveDynamic(const std::string& path, const DynamicLvqIndex& index);

/// Loads a dynamic index saved with SaveDynamic. For version-2 files the
/// metric/alpha/build_window come from the header (opts supplies only the
/// initial_capacity floor); version-1 files take all of `opts` as-is.
/// graph_max_degree always comes from the file. The loader checks that the
/// file's encoding matches the requested index flavor (float32 vs LVQ).
/// `*self_described` (if non-null) reports whether the file carried its
/// own configuration.
Result<std::unique_ptr<DynamicIndex>> LoadDynamicF32(
    const std::string& path, DynamicOptions opts,
    bool* self_described = nullptr);
Result<std::unique_ptr<DynamicLvqIndex>> LoadDynamicLvq(
    const std::string& path, DynamicOptions opts,
    bool* self_described = nullptr);

namespace detail {

/// The IndexMeta wire block shared by the graph (v2) and sharded-manifest
/// (v2) headers: metric u32, window u32, alpha f32, max_candidates u32,
/// seed u64, two_passes u32. graph_max_degree is not part of the block —
/// every container already records it.
Status WriteIndexMeta(std::FILE* f, const IndexMeta& meta,
                      const std::string& path);
Status ReadIndexMeta(std::FILE* f, IndexMeta* meta, const std::string& path);

}  // namespace detail

}  // namespace blink
