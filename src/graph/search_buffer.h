// The candidate queue of Algorithm 1 and the visited-tracking structures
// (paper Sec. 5, "Optimizing graph search").
//
// The paper replaces the usual heap with a *sorted linear buffer*: for the
// window sizes W common in practice (a few dozen) insertion-by-memmove into
// a sorted array is faster than heap operations because it is branch- and
// cache-friendly. Whether a node has been explored is stored inline with
// the id and distance.
//
// The paper also found that maintaining a separate visited set can be a net
// regression once distance computations are cheap; both modes are
// supported (DESIGN.md ablation D5). Without a visited set, duplicates are
// suppressed only against the buffer's current contents: equal ids produce
// bit-identical distances, so duplicates are adjacent in the sorted order
// and can be detected during insertion at negligible cost.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace blink {

/// Sorted fixed-capacity candidate buffer ordered by ascending distance.
class SearchBuffer {
 public:
  struct Entry {
    float dist;
    uint32_t id;
    uint32_t explored;  // 0 / 1; u32 keeps Entry at 12 bytes, pow-2-friendly
  };

  explicit SearchBuffer(size_t capacity = 0) { Reset(capacity); }

  void Reset(size_t capacity) {
    capacity_ = capacity;
    entries_.resize(capacity + 1);  // +1 slot simplifies full-buffer insert
    size_ = 0;
    first_unexplored_ = 0;
  }

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  const Entry& operator[](size_t i) const { return entries_[i]; }

  /// Inserts (dist, id) keeping the buffer sorted and capped at capacity.
  /// Returns false if the candidate was rejected (too far) or a duplicate.
  bool Insert(float dist, uint32_t id) {
    if (size_ == capacity_ && dist >= entries_[size_ - 1].dist) return false;
    // Binary search for the insertion position (first entry with
    // entry.dist > dist; ties keep insertion order stable).
    size_t lo = 0, hi = size_;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (entries_[mid].dist <= dist) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    // Duplicate check: an equal id yields a bit-identical distance, so any
    // duplicate sits in the contiguous run of equal distances ending at lo.
    for (size_t p = lo; p > 0 && entries_[p - 1].dist == dist; --p) {
      if (entries_[p - 1].id == id) return false;
    }
    std::memmove(&entries_[lo + 1], &entries_[lo], (size_ - lo) * sizeof(Entry));
    entries_[lo] = {dist, id, 0};
    if (size_ < capacity_) ++size_;
    if (lo < first_unexplored_) first_unexplored_ = lo;
    return true;
  }

  /// Index of the closest unexplored entry, or -1 if all are explored.
  long NextUnexplored() {
    for (size_t i = first_unexplored_; i < size_; ++i) {
      if (!entries_[i].explored) {
        first_unexplored_ = i;
        return static_cast<long>(i);
      }
    }
    first_unexplored_ = size_;
    return -1;
  }

  void MarkExplored(size_t i) { entries_[i].explored = 1; }

  /// Worst (largest) distance currently held, +inf while not full.
  float WorstDist() const {
    if (size_ < capacity_) return kInf;
    return entries_[size_ - 1].dist;
  }

 private:
  static constexpr float kInf = 3.4e38f;

  std::vector<Entry> entries_;
  size_t capacity_ = 0;
  size_t size_ = 0;
  size_t first_unexplored_ = 0;
};

/// O(1)-reset visited tracking: per-node epoch stamps. Marking is a store;
/// a query bump invalidates all previous marks at once.
class VisitedSet {
 public:
  explicit VisitedSet(size_t n = 0) : stamps_(n, 0) {}

  void Resize(size_t n) { stamps_.assign(n, 0); }

  /// Invalidates all marks (start of a new query).
  void NextQuery() {
    if (++epoch_ == 0) {  // epoch wrap: hard reset
      std::fill(stamps_.begin(), stamps_.end(), 0u);
      epoch_ = 1;
    }
  }

  bool Visited(uint32_t id) const { return stamps_[id] == epoch_; }

  /// Returns true if newly marked, false if already visited.
  bool CheckAndMark(uint32_t id) {
    if (stamps_[id] == epoch_) return false;
    stamps_[id] = epoch_;
    return true;
  }

 private:
  std::vector<uint32_t> stamps_;
  uint32_t epoch_ = 0;
};

}  // namespace blink
