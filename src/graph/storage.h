// Vector storage codecs for graph indices.
//
// A Storage binds together (a) how vectors are laid out in memory, (b) the
// fused distance kernel for that encoding, and (c) the per-query
// preparation (LVQ compares in mean-centered space, so queries are centered
// once per query, not once per distance). Graph search and construction are
// templated on Storage, so the hot loop is monomorphic and kernel dispatch
// happens once per index — one of the paper's implementation tenets.
//
// Storage concept:
//   size(), dim(), memory_bytes()
//   struct Query;                       // reusable per-query state
//   PrepareQuery(const float* q, Query*) const
//   float Distance(const Query&, size_t i) const      // traversal distance
//   bool has_second_level() const
//   float FullDistance(const Query&, size_t i, float* scratch) const
//   void DecodeVector(size_t i, float* out) const     // original space
//   void Prefetch(size_t i) const
//   const char* encoding_name() const
//
// Distances are "lower is better": squared L2, or negated inner product.
// Cosine similarity follows the paper: vectors are normalized upstream and
// searched with L2.
#pragma once

#include <cassert>
#include <cstring>
#include <string>
#include <vector>

#include "quant/global.h"
#include "quant/lvq.h"
#include "simd/distance.h"
#include "util/float16.h"
#include "util/matrix.h"
#include "util/memory.h"

namespace blink {

enum class Metric {
  kL2,            ///< squared Euclidean distance
  kInnerProduct,  ///< negated inner product (maximum IP search)
};

inline const char* MetricName(Metric m) {
  return m == Metric::kL2 ? "L2" : "IP";
}

// ---------------------------------------------------------------------------
// Full-precision float32 storage (the paper's baseline encoding).
// ---------------------------------------------------------------------------
class FloatStorage {
 public:
  struct Query {
    std::vector<float> q;
  };

  FloatStorage() = default;
  FloatStorage(MatrixViewF data, Metric metric, bool use_huge_pages = true)
      : n_(data.rows), d_(data.cols), metric_(metric) {
    blob_ = Arena(n_ * d_ * sizeof(float), use_huge_pages);
    for (size_t i = 0; i < n_; ++i) {
      std::memcpy(blob_.data() + i * d_ * sizeof(float), data.row(i),
                  d_ * sizeof(float));
    }
    l2_ = simd::GetL2F32(d_);
    ip_ = simd::GetIpF32(d_);
  }

  /// Non-owning view over externally owned rows (the mmap-serving path:
  /// a v3 "BLAF" payload is exactly this layout). The caller keeps `rows`
  /// alive and 4-byte aligned for the storage's lifetime.
  static FloatStorage FromExternal(const float* rows, size_t n, size_t d,
                                   Metric metric) {
    FloatStorage s;
    s.n_ = n;
    s.d_ = d;
    s.metric_ = metric;
    s.ext_rows_ = rows;
    s.l2_ = simd::GetL2F32(d);
    s.ip_ = simd::GetIpF32(d);
    return s;
  }

  size_t size() const { return n_; }
  size_t dim() const { return d_; }
  Metric metric() const { return metric_; }
  size_t memory_bytes() const { return n_ * d_ * sizeof(float); }
  const char* encoding_name() const { return "float32"; }

  const float* row(size_t i) const {
    return (ext_rows_ != nullptr
                ? ext_rows_
                : reinterpret_cast<const float*>(blob_.data())) +
           i * d_;
  }

  void PrepareQuery(const float* q, Query* out) const {
    out->q.assign(q, q + d_);
  }

  float Distance(const Query& q, size_t i) const {
    return metric_ == Metric::kL2 ? l2_(q.q.data(), row(i), d_)
                                  : ip_(q.q.data(), row(i), d_);
  }

  bool has_second_level() const { return false; }
  float FullDistance(const Query& q, size_t i, float* /*scratch*/) const {
    return Distance(q, i);
  }
  void PrefetchSecondLevel(size_t /*i*/) const {}

  void DecodeVector(size_t i, float* out) const {
    std::memcpy(out, row(i), d_ * sizeof(float));
  }

  void Prefetch(size_t i) const {
    simd::PrefetchBytes(row(i), d_ * sizeof(float));
  }

 private:
  size_t n_ = 0;
  size_t d_ = 0;
  Metric metric_ = Metric::kL2;
  Arena blob_;
  const float* ext_rows_ = nullptr;
  simd::DistF32Fn l2_ = nullptr;
  simd::DistF32Fn ip_ = nullptr;
};

// ---------------------------------------------------------------------------
// float16 storage (bandwidth baseline; Figs. 7, 8, Table 4).
// ---------------------------------------------------------------------------
class F16Storage {
 public:
  struct Query {
    std::vector<float> q;
  };

  F16Storage() = default;
  F16Storage(MatrixViewF data, Metric metric, bool use_huge_pages = true)
      : n_(data.rows), d_(data.cols), metric_(metric) {
    blob_ = Arena(n_ * d_ * sizeof(Float16), use_huge_pages);
    for (size_t i = 0; i < n_; ++i) {
      Float16* dst = row_mut(i);
      const float* src = data.row(i);
      for (size_t j = 0; j < d_; ++j) dst[j] = Float16(src[j]);
    }
    Init();
  }

  /// Adopts already-encoded half rows (the deserialization path — avoids
  /// a full-size float32 intermediary).
  F16Storage(const Float16* rows, size_t n, size_t d, Metric metric,
             bool use_huge_pages = true)
      : n_(n), d_(d), metric_(metric) {
    blob_ = Arena(n_ * d_ * sizeof(Float16), use_huge_pages);
    std::memcpy(blob_.data(), rows, n_ * d_ * sizeof(Float16));
    Init();
  }

  /// Non-owning view over externally owned half rows (map-mode "BLAH"
  /// payload). The caller keeps `rows` alive for the storage's lifetime.
  static F16Storage FromExternal(const Float16* rows, size_t n, size_t d,
                                 Metric metric) {
    F16Storage s;
    s.n_ = n;
    s.d_ = d;
    s.metric_ = metric;
    s.ext_rows_ = rows;
    s.Init();
    return s;
  }

  size_t size() const { return n_; }
  size_t dim() const { return d_; }
  Metric metric() const { return metric_; }
  size_t memory_bytes() const { return n_ * d_ * sizeof(Float16); }
  const char* encoding_name() const { return "float16"; }

  const Float16* row(size_t i) const {
    return (ext_rows_ != nullptr
                ? ext_rows_
                : reinterpret_cast<const Float16*>(blob_.data())) +
           i * d_;
  }

  void PrepareQuery(const float* q, Query* out) const {
    out->q.assign(q, q + d_);
  }

  float Distance(const Query& q, size_t i) const {
    return metric_ == Metric::kL2 ? l2_(q.q.data(), row(i), d_)
                                  : ip_(q.q.data(), row(i), d_);
  }

  bool has_second_level() const { return false; }
  float FullDistance(const Query& q, size_t i, float* /*scratch*/) const {
    return Distance(q, i);
  }
  void PrefetchSecondLevel(size_t /*i*/) const {}

  void DecodeVector(size_t i, float* out) const {
    const Float16* r = row(i);
    for (size_t j = 0; j < d_; ++j) out[j] = static_cast<float>(r[j]);
  }

  void Prefetch(size_t i) const {
    simd::PrefetchBytes(row(i), d_ * sizeof(Float16));
  }

 private:
  void Init() {
    l2_ = simd::GetL2F16(d_);
    ip_ = simd::GetIpF16(d_);
  }

  Float16* row_mut(size_t i) {
    return reinterpret_cast<Float16*>(blob_.data()) + i * d_;
  }

  size_t n_ = 0;
  size_t d_ = 0;
  Metric metric_ = Metric::kL2;
  Arena blob_;
  const Float16* ext_rows_ = nullptr;
  simd::DistF16Fn l2_ = nullptr;
  simd::DistF16Fn ip_ = nullptr;
};

// ---------------------------------------------------------------------------
// One- or two-level LVQ storage (LVQ-B and LVQ-B1xB2, paper Sec. 3).
// ---------------------------------------------------------------------------
class LvqStorage {
 public:
  struct Query {
    std::vector<float> q;  ///< centered query (L2) or raw query (IP)
    float bias = 0.0f;     ///< IP correction: -<q, mu>
  };

  LvqStorage() = default;

  /// One-level LVQ-B.
  LvqStorage(MatrixViewF data, Metric metric, int bits, size_t padding = 32,
             ThreadPool* pool = nullptr) {
    LvqDataset::Options o;
    o.bits = bits;
    o.padding = padding;
    level1_ = LvqDataset::Encode(data, o, pool);
    Init(metric);
  }

  /// Two-level LVQ-B1xB2.
  LvqStorage(MatrixViewF data, Metric metric, int bits1, int bits2,
             size_t padding, ThreadPool* pool = nullptr) {
    LvqDataset2::Options o;
    o.bits1 = bits1;
    o.bits2 = bits2;
    o.padding = padding;
    two_level_ = LvqDataset2::Encode(data, o, pool);
    is_two_level_ = true;
    Init(metric);
  }

  /// Wraps an already-encoded one-level dataset.
  LvqStorage(LvqDataset ds, Metric metric) : level1_(std::move(ds)) {
    Init(metric);
  }

  /// Wraps an already-encoded two-level dataset.
  LvqStorage(LvqDataset2 ds, Metric metric)
      : two_level_(std::move(ds)), is_two_level_(true) {
    Init(metric);
  }

  size_t size() const { return l1().size(); }
  size_t dim() const { return l1().dim(); }
  Metric metric() const { return metric_; }
  int bits1() const { return l1().bits(); }
  int bits2() const { return has_second_level() ? two_level_.bits2() : 0; }

  size_t memory_bytes() const {
    return has_second_level() ? two_level_.memory_bytes() : l1().memory_bytes();
  }
  std::string encoding_name_str() const {
    if (has_second_level()) {
      return "LVQ-" + std::to_string(bits1()) + "x" + std::to_string(bits2());
    }
    return "LVQ-" + std::to_string(bits1());
  }
  const char* encoding_name() const {
    name_cache_ = encoding_name_str();
    return name_cache_.c_str();
  }

  const LvqDataset& level1() const { return l1(); }
  const LvqDataset2* level2() const {
    return has_second_level() ? &two_level_ : nullptr;
  }

  void PrepareQuery(const float* q, Query* out) const {
    const auto& mean = l1().mean();
    const size_t d = dim();
    out->q.resize(d);
    if (metric_ == Metric::kL2) {
      for (size_t j = 0; j < d; ++j) out->q[j] = q[j] - mean[j];
      out->bias = 0.0f;
    } else {
      std::memcpy(out->q.data(), q, d * sizeof(float));
      float dot = 0.0f;
      for (size_t j = 0; j < d; ++j) dot += q[j] * mean[j];
      out->bias = -dot;
    }
  }

  float Distance(const Query& q, size_t i) const {
    const LvqConstants c = l1().constants(i);
    const uint8_t* codes = l1().codes(i);
    const size_t d = dim();
    float dist;
    const int b = l1().bits();
    if (b == 8) {
      dist = metric_ == Metric::kL2 ? l2u8_(q.q.data(), codes, c.delta, c.lower, d)
                                    : ipu8_(q.q.data(), codes, c.delta, c.lower, d);
    } else if (b == 4) {
      dist = metric_ == Metric::kL2 ? l2u4_(q.q.data(), codes, c.delta, c.lower, d)
                                    : ipu4_(q.q.data(), codes, c.delta, c.lower, d);
    } else {
      dist = GenericDistance(q, codes, c, b, d);
    }
    return dist + q.bias;
  }

  bool has_second_level() const { return is_two_level_; }

  /// Two-level distance for the final re-ranking gather (Sec. 3.2).
  float FullDistance(const Query& q, size_t i, float* scratch) const {
    if (!has_second_level()) return Distance(q, i);
    two_level_.DecodeCentered(i, scratch);
    const size_t d = dim();
    if (metric_ == Metric::kL2) return simd::L2Sqr(q.q.data(), scratch, d);
    return simd::IpDist(q.q.data(), scratch, d) + q.bias;
  }

  void DecodeVector(size_t i, float* out) const {
    if (has_second_level()) {
      two_level_.Decode(i, out);
    } else {
      level1_.Decode(i, out);
    }
  }

  void Prefetch(size_t i) const { l1().PrefetchVector(i); }
  void PrefetchSecondLevel(size_t i) const {
    if (has_second_level()) two_level_.PrefetchResidual(i);
  }

 private:
  const LvqDataset& l1() const {
    return is_two_level_ ? two_level_.level1() : level1_;
  }

  void Init(Metric metric) {
    metric_ = metric;
    const size_t d = dim();
    l2u8_ = simd::GetL2U8(d);
    ipu8_ = simd::GetIpU8(d);
    l2u4_ = simd::GetL2U4(d);
    ipu4_ = simd::GetIpU4(d);
  }

  /// Arbitrary-B fallback for the bit-sweep analysis experiments.
  float GenericDistance(const Query& q, const uint8_t* codes,
                        const LvqConstants& c, int bits, size_t d) const {
    return metric_ == Metric::kL2 ? LvqGenericL2(q.q.data(), codes, c, bits, d)
                                  : LvqGenericIp(q.q.data(), codes, c, bits, d);
  }

  LvqDataset level1_;
  LvqDataset2 two_level_;
  bool is_two_level_ = false;
  Metric metric_ = Metric::kL2;
  simd::DistU8Fn l2u8_ = nullptr;
  simd::DistU8Fn ipu8_ = nullptr;
  simd::DistU4Fn l2u4_ = nullptr;
  simd::DistU4Fn ipu4_ = nullptr;
  mutable std::string name_cache_;
};

// ---------------------------------------------------------------------------
// Global / per-dimension scalar quantization storage (ablation baseline).
// ---------------------------------------------------------------------------
class GlobalQuantStorage {
 public:
  struct Query {
    std::vector<float> q;
    float bias = 0.0f;
  };

  GlobalQuantStorage() = default;
  GlobalQuantStorage(MatrixViewF data, Metric metric, int bits, int bits2 = 0,
                     GlobalMode mode = GlobalMode::kGlobal,
                     ThreadPool* pool = nullptr) {
    GlobalDataset::Options o;
    o.bits = bits;
    o.bits2 = bits2;
    o.mode = mode;
    ds_ = GlobalDataset::Encode(data, o, pool);
    metric_ = metric;
    const size_t d = ds_.dim();
    l2u8_ = simd::GetL2U8(d);
    ipu8_ = simd::GetIpU8(d);
    l2u4_ = simd::GetL2U4(d);
    ipu4_ = simd::GetIpU4(d);
  }

  size_t size() const { return ds_.size(); }
  size_t dim() const { return ds_.dim(); }
  Metric metric() const { return metric_; }
  size_t memory_bytes() const { return ds_.memory_bytes(); }
  std::string encoding_name_str() const {
    // Built with += (not operator+ chains): GCC 12's -Wrestrict trips a
    // false positive on `const char* + std::string&&` at -O2.
    std::string s = "global-";
    s += std::to_string(ds_.bits());
    if (ds_.bits2() > 0) {
      s += "x";
      s += std::to_string(ds_.bits2());
    }
    return s;
  }
  const char* encoding_name() const {
    name_cache_ = encoding_name_str();
    return name_cache_.c_str();
  }
  const GlobalDataset& dataset() const { return ds_; }

  void PrepareQuery(const float* q, Query* out) const {
    const auto& mean = ds_.mean();
    const size_t d = dim();
    out->q.resize(d);
    if (metric_ == Metric::kL2) {
      for (size_t j = 0; j < d; ++j) out->q[j] = q[j] - mean[j];
      out->bias = 0.0f;
    } else {
      std::memcpy(out->q.data(), q, d * sizeof(float));
      float dot = 0.0f;
      for (size_t j = 0; j < d; ++j) dot += q[j] * mean[j];
      out->bias = -dot;
    }
  }

  float Distance(const Query& q, size_t i) const {
    const size_t d = dim();
    const uint8_t* codes = ds_.codes(i);
    const int b = ds_.bits();
    float dist;
    if (ds_.mode() == GlobalMode::kGlobal && b == 8) {
      const ScalarQuantizer& sq = ds_.quantizers()[0];
      dist = metric_ == Metric::kL2
                 ? l2u8_(q.q.data(), codes, sq.delta(), sq.lower(), d)
                 : ipu8_(q.q.data(), codes, sq.delta(), sq.lower(), d);
    } else if (ds_.mode() == GlobalMode::kGlobal && b == 4) {
      const ScalarQuantizer& sq = ds_.quantizers()[0];
      dist = metric_ == Metric::kL2
                 ? l2u4_(q.q.data(), codes, sq.delta(), sq.lower(), d)
                 : ipu4_(q.q.data(), codes, sq.delta(), sq.lower(), d);
    } else {
      dist = GenericDistance(q, i);
    }
    return dist + q.bias;
  }

  bool has_second_level() const { return ds_.bits2() > 0; }

  float FullDistance(const Query& q, size_t i, float* scratch) const {
    if (!has_second_level()) return Distance(q, i);
    ds_.DecodeCenteredFull(i, scratch);
    const size_t d = dim();
    if (metric_ == Metric::kL2) return simd::L2Sqr(q.q.data(), scratch, d);
    return simd::IpDist(q.q.data(), scratch, d) + q.bias;
  }

  void DecodeVector(size_t i, float* out) const { ds_.Decode(i, out); }
  void Prefetch(size_t i) const { ds_.PrefetchVector(i); }
  void PrefetchSecondLevel(size_t i) const {
    if (has_second_level()) {
      simd::PrefetchBytes(ds_.residual_codes(i), PackedBytes(dim(), ds_.bits2()));
    }
  }

 private:
  float GenericDistance(const Query& q, size_t i) const {
    const size_t d = dim();
    const uint8_t* codes = ds_.codes(i);
    const int b = ds_.bits();
    float acc = 0.0f;
    if (metric_ == Metric::kL2) {
      for (size_t j = 0; j < d; ++j) {
        const float v = ds_.quantizer(j).Decode(UnpackCode(codes, j, b));
        const float diff = q.q[j] - v;
        acc += diff * diff;
      }
      return acc;
    }
    for (size_t j = 0; j < d; ++j) {
      const float v = ds_.quantizer(j).Decode(UnpackCode(codes, j, b));
      acc += q.q[j] * v;
    }
    return -acc;
  }

  GlobalDataset ds_;
  Metric metric_ = Metric::kL2;
  simd::DistU8Fn l2u8_ = nullptr;
  simd::DistU8Fn ipu8_ = nullptr;
  simd::DistU4Fn l2u4_ = nullptr;
  simd::DistU4Fn ipu4_ = nullptr;
  mutable std::string name_cache_;
};

}  // namespace blink
