#include "graph/dynamic.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "graph/reranker.h"

namespace blink {

template <typename Storage>
DynamicGraphIndex<Storage>::DynamicGraphIndex(size_t dim, const Options& opts)
    : DynamicGraphIndex(dim, opts, Storage(dim, opts.metric)) {}

template <typename Storage>
DynamicGraphIndex<Storage>::DynamicGraphIndex(size_t dim, const Options& opts,
                                              Storage storage)
    : dim_(dim), opts_(opts), storage_(std::move(storage)) {
  assert(storage_.dim() == dim);
  writer_decode_.resize(dim);
  Grow(std::max<size_t>(opts.initial_capacity, 16));
}

template <typename Storage>
void DynamicGraphIndex<Storage>::Grow(size_t min_capacity) {
  if (min_capacity <= capacity_) return;
  const size_t new_cap = std::max<size_t>(capacity_ * 2, min_capacity);
  // Reallocation invalidates every pointer a concurrent search could hold;
  // stop the world for the swap (rare: amortized doubling, and avoidable
  // entirely by sizing initial_capacity for the workload).
  EpochGuard::ExclusiveLock lock(&epoch_);
  storage_.Grow(new_cap);
  deleted_.resize(new_cap, 0);
  if (metadata_ != nullptr) metadata_->Resize(new_cap);
  FlatGraph bigger(new_cap, opts_.graph_max_degree, /*use_huge_pages=*/false);
  const size_t n = n_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < n; ++i) {
    bigger.SetNeighbors(i, graph_.neighbors(i), graph_.degree(i));
  }
  graph_ = std::move(bigger);
  capacity_ = new_cap;
}

template <typename Storage>
void DynamicGraphIndex<Storage>::PrepareStored(uint32_t id,
                                               typename Storage::Query* q) {
  storage_.DecodeVector(id, writer_decode_.data());
  storage_.PrepareQuery(writer_decode_.data(), q);
}

// Writer-side candidate gathering (Insert). The writer is the only thread
// that stores rows, so it may read them plainly; vectors it touches are
// live or tombstoned and never concurrently overwritten (recycled slots are
// only written by this same serialized writer).
template <typename Storage>
void DynamicGraphIndex<Storage>::CollectCandidates(
    const float* query, uint32_t window, std::vector<Candidate>* out) {
  out->clear();
  const uint32_t ep = entry_point_.load(std::memory_order_relaxed);
  if (ep == kNoEntry) return;
  storage_.PrepareQuery(query, &writer_query_);
  SearchBuffer buffer(window);
  VisitedSet visited(capacity_);
  visited.NextQuery();
  buffer.Insert(storage_.Distance(writer_query_, ep), ep);
  visited.CheckAndMark(ep);
  long idx;
  while ((idx = buffer.NextUnexplored()) >= 0) {
    const uint32_t node = buffer[static_cast<size_t>(idx)].id;
    buffer.MarkExplored(static_cast<size_t>(idx));
    const uint32_t* nbrs = graph_.neighbors(node);
    const uint32_t deg = graph_.degree(node);
    for (uint32_t t = 0; t < deg; ++t) {
      const uint32_t cand = nbrs[t];
      if (!visited.CheckAndMark(cand)) continue;
      buffer.Insert(storage_.Distance(writer_query_, cand), cand);
    }
  }
  out->reserve(buffer.size());
  for (size_t i = 0; i < buffer.size(); ++i) {
    out->push_back({buffer[i].dist, buffer[i].id});
  }
}

// Reader-side traversal: adjacency is copied row-by-row through the
// acquire/release protocol (graph.h), so it is safe against the concurrent
// writer; the caller must hold an epoch ReadLock.
template <typename Storage>
void DynamicGraphIndex<Storage>::CollectIntoScratch(
    const float* query, uint32_t window, SearchScratch* scratch,
    const FilterView* filter, bool push_down) const {
  // In-search push-down (DESIGN.md D15): a second sorted buffer collects
  // predicate-passing candidates while the traversal buffer still routes
  // through failing ones. Tombstones are handled later, at extraction.
  const bool push = filter != nullptr && push_down;
  scratch->buffer.Reset(window);
  if (push) scratch->passing.Reset(window);
  scratch->distance_computations = 0;
  scratch->hops = 0;
  // Acquire pairs with the entry-point release store: observing an id here
  // implies its vector bytes are visible. kNoEntry means nothing is live
  // (or the only live vector is still mid-publication) — return empty.
  const uint32_t ep = entry_point_.load(std::memory_order_acquire);
  if (ep == kNoEntry) return;
  storage_.PrepareQuery(query, &scratch->query);
  if (scratch->visited_capacity != capacity_) {
    scratch->visited.Resize(capacity_);
    scratch->visited_capacity = capacity_;
  }
  scratch->visited.NextQuery();
  scratch->neighbors.resize(graph_.max_degree());
  uint32_t* nbrs = scratch->neighbors.data();

  const float d0 = storage_.Distance(scratch->query, ep);
  scratch->buffer.Insert(d0, ep);
  if (push && filter->Pass(ep)) scratch->passing.Insert(d0, ep);
  scratch->visited.CheckAndMark(ep);
  ++scratch->distance_computations;
  long idx;
  while ((idx = scratch->buffer.NextUnexplored()) >= 0) {
    const uint32_t node = scratch->buffer[static_cast<size_t>(idx)].id;
    scratch->buffer.MarkExplored(static_cast<size_t>(idx));
    ++scratch->hops;
    const uint32_t deg = graph_.CopyNeighborsAcquire(node, nbrs);
    for (uint32_t t = 0; t < deg; ++t) {
      const uint32_t cand = nbrs[t];
      if (!scratch->visited.CheckAndMark(cand)) continue;
      const float d = storage_.Distance(scratch->query, cand);
      scratch->buffer.Insert(d, cand);
      if (push && filter->Pass(cand)) scratch->passing.Insert(d, cand);
      ++scratch->distance_computations;
    }
  }
}

template <typename Storage>
void DynamicGraphIndex<Storage>::RobustPrune(std::vector<Candidate>& cands,
                                             std::vector<uint32_t>* out) {
  std::sort(cands.begin(), cands.end());
  cands.erase(std::unique(cands.begin(), cands.end(),
                          [](const Candidate& a, const Candidate& b) {
                            return a.id == b.id;
                          }),
              cands.end());
  out->clear();
  std::vector<char> removed(cands.size(), 0);
  const float alpha = opts_.alpha;
  for (size_t s = 0; s < cands.size(); ++s) {
    if (removed[s]) continue;
    out->push_back(cands[s].id);
    if (out->size() == opts_.graph_max_degree) break;
    // Stored-to-stored distances: decode the selected star once, then run
    // the same asymmetric kernel the read path uses against each remaining
    // candidate's stored form.
    PrepareStored(cands[s].id, &prune_query_);
    for (size_t t = s + 1; t < cands.size(); ++t) {
      if (removed[t]) continue;
      // alpha * sim(x*, x') >= sim(x, x')  =>  remove (similarity form).
      if (alpha * (-storage_.Distance(prune_query_, cands[t].id)) >=
          -cands[t].dist) {
        removed[t] = 1;
      }
    }
  }
}

template <typename Storage>
uint32_t DynamicGraphIndex<Storage>::Insert(const float* vec) {
  std::lock_guard<std::mutex> writer(write_mu_);
  uint32_t id;
  bool recycled = false;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
    recycled = true;
    // Grace period before overwriting the slot: it was purged under the
    // exclusive lock in ConsolidateDeletes(), so readers entering since
    // then cannot reach it — but a reader that predates the purge (or one
    // holding a stale entry point) could still hold the id. Wait those out.
    epoch_.Quiesce();
  } else {
    Grow(n_.load(std::memory_order_relaxed) + 1);
    id = static_cast<uint32_t>(n_.load(std::memory_order_relaxed));
  }
  // The vector must be fully written (encoded, for compressed storage)
  // before anything can name the id: the liveness flip below (release)
  // covers the entry-point path, and FlatGraph's release row stores cover
  // the edge paths.
  storage_.Set(id, vec);
  // A recycled slot must not inherit the previous occupant's metadata:
  // clear the row before the liveness flip publishes the id. (Fresh slots
  // are already zero from Resize; clearing is idempotent.)
  if (metadata_ != nullptr) metadata_->ClearRow(id);
  if (recycled) {
    SetDeleted(id, kLive);  // was kPurged since the consolidation
    num_deleted_.fetch_sub(1, std::memory_order_release);
  } else {
    n_.fetch_add(1, std::memory_order_release);
  }

  if (live_size() == 1) {  // first (or only) live vector
    graph_.PublishClear(id);
    entry_point_.store(id, std::memory_order_release);
    return id;
  }

  // Vamana single-node update.
  std::vector<Candidate> cands;
  CollectCandidates(vec, std::max(opts_.build_window, opts_.graph_max_degree + 1),
                    &cands);
  cands.erase(std::remove_if(cands.begin(), cands.end(),
                             [&](const Candidate& c) { return c.id == id; }),
              cands.end());
  std::vector<uint32_t> pruned;
  RobustPrune(cands, &pruned);
  graph_.PublishNeighbors(id, pruned.data(),
                          static_cast<uint32_t>(pruned.size()));

  // Backward edges with overflow pruning.
  std::vector<Candidate> nb_cands;
  std::vector<uint32_t> nb_pruned;
  for (uint32_t nb : pruned) {
    const uint32_t* nbrs = graph_.neighbors(nb);
    const uint32_t deg = graph_.degree(nb);
    bool present = false;
    for (uint32_t e = 0; e < deg; ++e) {
      if (nbrs[e] == id) {
        present = true;
        break;
      }
    }
    if (present) continue;
    if (!graph_.PublishAddNeighbor(nb, id)) {
      nb_cands.clear();
      PrepareStored(nb, &writer_query_);
      for (uint32_t e = 0; e < deg; ++e) {
        nb_cands.push_back({storage_.Distance(writer_query_, nbrs[e]), nbrs[e]});
      }
      nb_cands.push_back({storage_.Distance(writer_query_, id), id});
      RobustPrune(nb_cands, &nb_pruned);
      graph_.PublishNeighbors(nb, nb_pruned.data(),
                              static_cast<uint32_t>(nb_pruned.size()));
    }
  }
  return id;
}

template <typename Storage>
Status DynamicGraphIndex<Storage>::Delete(uint32_t id) {
  std::lock_guard<std::mutex> writer(write_mu_);
  if (id >= n_.load(std::memory_order_relaxed)) {
    return Status::OutOfRange("id beyond index size");
  }
  if (IsDeleted(id)) return Status::InvalidArgument("id already deleted");
  SetDeleted(id, kTombstone);
  num_deleted_.fetch_add(1, std::memory_order_relaxed);
  num_tombstones_.fetch_add(1, std::memory_order_relaxed);
  if (id == entry_point_.load(std::memory_order_relaxed)) UpdateEntryPoint();
  return Status::OK();
}

template <typename Storage>
void DynamicGraphIndex<Storage>::UpdateEntryPoint() {
  const size_t n = n_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < n; ++i) {
    if (!IsDeleted(static_cast<uint32_t>(i))) {
      entry_point_.store(static_cast<uint32_t>(i), std::memory_order_release);
      return;
    }
  }
  entry_point_.store(kNoEntry, std::memory_order_release);  // empty index
}

template <typename Storage>
void DynamicGraphIndex<Storage>::ConsolidateDeletes() {
  std::lock_guard<std::mutex> writer(write_mu_);
  // Purged slots are already unlinked and queued; only navigable
  // tombstones need repair + purge.
  if (num_tombstones_.load(std::memory_order_relaxed) == 0) return;
  // DiskANN-style repair: every live node that points at a deleted node
  // inherits that node's live out-neighbors, then re-prunes to R. This
  // phase runs concurrently with searches (atomic row publication).
  const size_t n = n_.load(std::memory_order_relaxed);
  std::vector<Candidate> cands;
  std::vector<uint32_t> pruned;
  for (size_t i = 0; i < n; ++i) {
    if (IsDeleted(static_cast<uint32_t>(i))) continue;
    const uint32_t* nbrs = graph_.neighbors(i);
    const uint32_t deg = graph_.degree(i);
    bool touches_deleted = false;
    for (uint32_t e = 0; e < deg; ++e) {
      if (IsDeleted(nbrs[e])) {
        touches_deleted = true;
        break;
      }
    }
    if (!touches_deleted) continue;

    cands.clear();
    PrepareStored(static_cast<uint32_t>(i), &writer_query_);
    for (uint32_t e = 0; e < deg; ++e) {
      const uint32_t nb = nbrs[e];
      if (!IsDeleted(nb)) {
        cands.push_back({storage_.Distance(writer_query_, nb), nb});
        continue;
      }
      const uint32_t* second = graph_.neighbors(nb);
      for (uint32_t s = 0; s < graph_.degree(nb); ++s) {
        const uint32_t nn = second[s];
        if (!IsDeleted(nn) && nn != i) {
          cands.push_back({storage_.Distance(writer_query_, nn), nn});
        }
      }
    }
    RobustPrune(cands, &pruned);
    graph_.PublishNeighbors(i, pruned.data(),
                            static_cast<uint32_t>(pruned.size()));
  }
  // Purge tombstones: clear their adjacency and recycle the slots. Under
  // the exclusive lock so that (a) a reader mid-traversal cannot still hold
  // a purged id when we return, and (b) readers entering afterwards are
  // guaranteed to see the re-pruned rows above — together making the freed
  // slots unreachable until a later Insert republishes them.
  {
    EpochGuard::ExclusiveLock lock(&epoch_);
    size_t purged = 0;
    for (size_t i = 0; i < n; ++i) {
      // Only kTombstone slots: a slot purged by an earlier consolidation
      // and not yet recycled is already in free_slots_ — re-queueing it
      // would hand the same slot to two Inserts.
      if (DeletedFlag(static_cast<uint32_t>(i)) == kTombstone) {
        graph_.Clear(i);
        free_slots_.push_back(static_cast<uint32_t>(i));
        SetDeleted(static_cast<uint32_t>(i), kPurged);
        ++purged;
      }
    }
    num_tombstones_.fetch_sub(purged, std::memory_order_relaxed);
  }
  // Slots stay flagged (kPurged) until re-used; num_deleted_ is
  // decremented on recycle so live_size() remains correct throughout.
}

template <typename Storage>
template <typename Buf>
void DynamicGraphIndex<Storage>::ExtractResults(const Buf& buf, size_t k,
                                                bool rerank,
                                                uint32_t rerank_window,
                                                size_t tomb, SearchResult* out,
                                                SearchScratch* scratch) const {
  out->ids.clear();
  out->dists.clear();
  const bool use_rerank = rerank && storage_.has_second_level();
  // Partial re-rank depth, over-provisioned by the navigable tombstone
  // count like the window (tombstoned candidates are filtered from
  // results after re-ranking, so the depth must cover them too).
  const size_t m = use_rerank
                       ? RerankDepth(buf.size(), k, rerank_window,
                                     /*slack=*/tomb)
                       : buf.size();
  if (use_rerank && m > 0) {
    // Re-score every candidate in the depth through the shared Reranker
    // seam (graph/reranker.h). The full depth is sorted (not just k) so
    // the tombstone filter below can skim past any prefix of dead ids.
    // On the filtered paths `buf` holds only predicate-surviving
    // candidates, so failing vectors never cost a FullDistance gather.
    scratch->decode.resize(dim_);
    RescoreCandidates(storage_, scratch->query, buf, m,
                      /*sorted_prefix=*/m, scratch->decode.data(),
                      &scratch->rerank);
    out->distance_computations += m;
    scratch->distance_computations += m;
    EmitRescored(
        scratch->rerank, k, [this](uint32_t id) { return IsDeleted(id); },
        &out->ids, &out->dists);
  } else {
    for (size_t i = 0; i < m; ++i) {
      const uint32_t id = buf[i].id;
      if (IsDeleted(id)) continue;
      out->ids.push_back(id);
      out->dists.push_back(buf[i].dist);
      if (out->ids.size() == k) break;
    }
  }
}

template <typename Storage>
void DynamicGraphIndex<Storage>::Search(const float* query, size_t k,
                                        uint32_t window, SearchResult* out,
                                        SearchScratch* scratch, bool rerank,
                                        uint32_t rerank_window,
                                        const FilterView* filter,
                                        bool push_down,
                                        uint32_t widen_cap) const {
  out->ids.clear();
  out->dists.clear();
  out->distance_computations = 0;
  out->hops = 0;
  EpochGuard::ReadLock reader(&epoch_);
  // Over-provision the window by the *navigable* tombstone count:
  // tombstones occupy candidate-buffer slots but are filtered from
  // results, so a window sized for the live case could surface fewer than
  // k live results even when k are reachable. Purged slots are unreachable
  // and do not count; ConsolidateDeletes therefore resets the slack.
  const size_t tomb = num_tombstones_.load(std::memory_order_relaxed);
  auto run_one = [&](uint32_t base_window, SearchResult* res) {
    const size_t want = std::max<size_t>(base_window, k + tomb);
    const uint32_t w = static_cast<uint32_t>(
        std::min<size_t>(want, std::numeric_limits<uint32_t>::max()));
    CollectIntoScratch(query, w, scratch, filter, push_down);
    res->distance_computations = scratch->distance_computations;
    res->hops = scratch->hops;
    if (filter == nullptr) {
      ExtractResults(scratch->buffer, k, rerank, rerank_window, tomb, res,
                     scratch);
      return;
    }
    // Filtered extraction pool: the passing buffer (push-down) or the
    // predicate-surviving prefix of the traversal buffer (post-filter).
    scratch->survivors.clear();
    if (push_down) {
      for (size_t i = 0; i < scratch->passing.size(); ++i) {
        scratch->survivors.push_back(scratch->passing[i]);
      }
    } else {
      for (size_t i = 0; i < scratch->buffer.size(); ++i) {
        if (filter->Pass(scratch->buffer[i].id)) {
          scratch->survivors.push_back(scratch->buffer[i]);
        }
      }
    }
    ExtractResults(scratch->survivors, k, rerank, rerank_window, tomb, res,
                   scratch);
  };
  if (filter == nullptr) {
    run_one(window, out);
  } else {
    RunWidened(k, window, std::max(widen_cap, window), run_one, out);
  }
  // Contract (eval/interface.h): exactly k entries on every path, invalid
  // slots padded with kInvalidId / +inf — including the empty-index case.
  out->ids.resize(k, kInvalidId);
  out->dists.resize(k, kInvalidDist);
}

template <typename Storage>
void DynamicGraphIndex<Storage>::Search(const float* query, size_t k,
                                        uint32_t window, SearchResult* out,
                                        SearchScratch* scratch, bool rerank,
                                        uint32_t rerank_window) const {
  Search(query, k, window, out, scratch, rerank, rerank_window,
         /*filter=*/nullptr, /*push_down=*/false, /*widen_cap=*/0);
}

template <typename Storage>
void DynamicGraphIndex<Storage>::Search(const float* query, size_t k,
                                        uint32_t window,
                                        SearchResult* out) const {
  SearchScratch scratch;
  Search(query, k, window, out, &scratch);
}

template <typename Storage>
Status DynamicGraphIndex<Storage>::AttachMetadata(
    std::shared_ptr<MetadataStore> md) {
  std::lock_guard<std::mutex> writer(write_mu_);
  if (md == nullptr) {
    EpochGuard::ExclusiveLock lock(&epoch_);
    metadata_ = nullptr;
    return Status::OK();
  }
  if (md->external()) {
    return Status::InvalidArgument(
        "dynamic metadata must be an owned store (mapped stores are "
        "read-only)");
  }
  const size_t n = n_.load(std::memory_order_relaxed);
  if (md->size() < n) {
    return Status::InvalidArgument(
        "metadata store has " + std::to_string(md->size()) +
        " rows but the index has " + std::to_string(n) + " slots in use");
  }
  // Resize to capacity under the exclusive lock: concurrent searches may
  // hold cell pointers into a store being swapped/reallocated otherwise.
  EpochGuard::ExclusiveLock lock(&epoch_);
  md->Resize(capacity_);
  metadata_ = std::move(md);
  return Status::OK();
}

template <typename Storage>
Status DynamicGraphIndex<Storage>::UpsertMetadata(uint32_t id, uint64_t tags,
                                                  const double* values,
                                                  size_t num_values) {
  std::lock_guard<std::mutex> writer(write_mu_);
  if (metadata_ == nullptr) {
    return Status::Unsupported("no metadata store attached");
  }
  if (id >= n_.load(std::memory_order_relaxed)) {
    return Status::OutOfRange("id beyond index size");
  }
  if (num_values > metadata_->num_columns()) {
    return Status::InvalidArgument(
        "more numeric values than metadata columns");
  }
  // Cells are individually atomic; readers filtering concurrently may see
  // the row half-applied (eventual consistency, DESIGN.md D15).
  metadata_->set_tags(id, tags);
  for (size_t c = 0; c < num_values; ++c) {
    metadata_->SetNumeric(c, id, values[c]);
  }
  return Status::OK();
}

template <typename Storage>
std::unique_ptr<DynamicGraphIndex<Storage>> DynamicGraphIndex<Storage>::Restore(
    size_t dim, const Options& opts, Storage storage, FlatGraph graph,
    std::vector<uint8_t> deleted, std::vector<uint32_t> free_slots, size_t n,
    size_t num_deleted, uint32_t entry_point) {
  assert(storage.dim() == dim);
  assert(graph.size() == storage.capacity());
  assert(n <= storage.capacity());
  std::unique_ptr<DynamicGraphIndex> idx(new DynamicGraphIndex());
  idx->dim_ = dim;
  idx->opts_ = opts;
  idx->capacity_ = storage.capacity();
  idx->storage_ = std::move(storage);
  idx->graph_ = std::move(graph);
  deleted.resize(idx->capacity_, 0);
  idx->deleted_ = std::move(deleted);
  idx->free_slots_ = std::move(free_slots);
  idx->n_.store(n, std::memory_order_relaxed);
  idx->num_deleted_.store(num_deleted, std::memory_order_relaxed);
  size_t tombstones = 0;
  for (size_t i = 0; i < n; ++i) {
    if (idx->deleted_[i] == kTombstone) ++tombstones;
  }
  idx->num_tombstones_.store(tombstones, std::memory_order_relaxed);
  idx->entry_point_.store(entry_point, std::memory_order_relaxed);
  idx->writer_decode_.resize(dim);
  return idx;
}

template class DynamicGraphIndex<DynamicFloatStorage>;
template class DynamicGraphIndex<DynamicLvqStorage>;

}  // namespace blink
