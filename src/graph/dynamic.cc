#include "graph/dynamic.h"

#include <algorithm>
#include <cassert>

#include "graph/search_buffer.h"
#include "simd/distance.h"

namespace blink {

DynamicIndex::DynamicIndex(size_t dim, const Options& opts)
    : dim_(dim), opts_(opts) {
  Grow(std::max<size_t>(opts.initial_capacity, 16));
}

float DynamicIndex::Dist(const float* a, const float* b) const {
  return opts_.metric == Metric::kL2 ? simd::L2Sqr(a, b, dim_)
                                     : simd::IpDist(a, b, dim_);
}

void DynamicIndex::Grow(size_t min_capacity) {
  if (min_capacity <= capacity_) return;
  size_t new_cap = std::max<size_t>(capacity_ * 2, min_capacity);
  vectors_.resize(new_cap * dim_);
  deleted_.resize(new_cap, 0);
  FlatGraph bigger(new_cap, opts_.graph_max_degree, /*use_huge_pages=*/false);
  for (size_t i = 0; i < n_; ++i) {
    bigger.SetNeighbors(i, graph_.neighbors(i), graph_.degree(i));
  }
  graph_ = std::move(bigger);
  capacity_ = new_cap;
}

void DynamicIndex::CollectCandidates(const float* query, uint32_t window,
                                     std::vector<Candidate>* out) const {
  out->clear();
  if (n_ == 0) return;
  SearchBuffer buffer(window);
  VisitedSet visited(capacity_);
  visited.NextQuery();
  buffer.Insert(Dist(query, vector(entry_point_)), entry_point_);
  visited.CheckAndMark(entry_point_);
  long idx;
  while ((idx = buffer.NextUnexplored()) >= 0) {
    const uint32_t node = buffer[static_cast<size_t>(idx)].id;
    buffer.MarkExplored(static_cast<size_t>(idx));
    const uint32_t* nbrs = graph_.neighbors(node);
    const uint32_t deg = graph_.degree(node);
    for (uint32_t t = 0; t < deg; ++t) {
      const uint32_t cand = nbrs[t];
      if (!visited.CheckAndMark(cand)) continue;
      buffer.Insert(Dist(query, vector(cand)), cand);
    }
  }
  out->reserve(buffer.size());
  for (size_t i = 0; i < buffer.size(); ++i) {
    out->push_back({buffer[i].dist, buffer[i].id});
  }
}

void DynamicIndex::RobustPrune([[maybe_unused]] const float* x,
                               std::vector<Candidate>& cands,
                               std::vector<uint32_t>* out) const {
  std::sort(cands.begin(), cands.end());
  cands.erase(std::unique(cands.begin(), cands.end(),
                          [](const Candidate& a, const Candidate& b) {
                            return a.id == b.id;
                          }),
              cands.end());
  out->clear();
  std::vector<char> removed(cands.size(), 0);
  const float alpha = opts_.alpha;
  for (size_t s = 0; s < cands.size(); ++s) {
    if (removed[s]) continue;
    out->push_back(cands[s].id);
    if (out->size() == opts_.graph_max_degree) break;
    const float* star = vector(cands[s].id);
    for (size_t t = s + 1; t < cands.size(); ++t) {
      if (removed[t]) continue;
      // alpha * sim(x*, x') >= sim(x, x')  =>  remove (similarity form).
      if (alpha * (-Dist(star, vector(cands[t].id))) >= -cands[t].dist) {
        removed[t] = 1;
      }
    }
  }
}

uint32_t DynamicIndex::Insert(const float* vec) {
  uint32_t id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
    deleted_[id] = 0;
    --num_deleted_;  // slot was counted deleted until recycled
  } else {
    Grow(n_ + 1);
    id = static_cast<uint32_t>(n_);
    ++n_;
  }
  std::copy(vec, vec + dim_, vectors_.data() + id * dim_);

  if (live_size() == 1) {  // first (or only) live vector
    graph_.Clear(id);
    entry_point_ = id;
    return id;
  }

  // Vamana single-node update.
  std::vector<Candidate> cands;
  CollectCandidates(vec, std::max(opts_.build_window, opts_.graph_max_degree + 1),
                    &cands);
  cands.erase(std::remove_if(cands.begin(), cands.end(),
                             [&](const Candidate& c) { return c.id == id; }),
              cands.end());
  std::vector<uint32_t> pruned;
  RobustPrune(vec, cands, &pruned);
  graph_.SetNeighbors(id, pruned.data(), static_cast<uint32_t>(pruned.size()));

  // Backward edges with overflow pruning.
  std::vector<Candidate> nb_cands;
  std::vector<uint32_t> nb_pruned;
  for (uint32_t nb : pruned) {
    const uint32_t* nbrs = graph_.neighbors(nb);
    const uint32_t deg = graph_.degree(nb);
    bool present = false;
    for (uint32_t e = 0; e < deg; ++e) {
      if (nbrs[e] == id) {
        present = true;
        break;
      }
    }
    if (present) continue;
    if (!graph_.AddNeighbor(nb, id)) {
      nb_cands.clear();
      const float* vnb = vector(nb);
      for (uint32_t e = 0; e < deg; ++e) {
        nb_cands.push_back({Dist(vnb, vector(nbrs[e])), nbrs[e]});
      }
      nb_cands.push_back({Dist(vnb, vec), id});
      RobustPrune(vnb, nb_cands, &nb_pruned);
      graph_.SetNeighbors(nb, nb_pruned.data(),
                          static_cast<uint32_t>(nb_pruned.size()));
    }
  }
  return id;
}

Status DynamicIndex::Delete(uint32_t id) {
  if (id >= n_) return Status::OutOfRange("id beyond index size");
  if (deleted_[id]) return Status::InvalidArgument("id already deleted");
  deleted_[id] = 1;
  ++num_deleted_;
  if (id == entry_point_) UpdateEntryPoint();
  return Status::OK();
}

void DynamicIndex::UpdateEntryPoint() {
  for (size_t i = 0; i < n_; ++i) {
    if (!deleted_[i]) {
      entry_point_ = static_cast<uint32_t>(i);
      return;
    }
  }
  entry_point_ = 0;  // empty index
}

void DynamicIndex::ConsolidateDeletes() {
  if (num_deleted_ == 0) return;
  // DiskANN-style repair: every live node that points at a deleted node
  // inherits that node's live out-neighbors, then re-prunes to R.
  std::vector<Candidate> cands;
  std::vector<uint32_t> pruned;
  for (size_t i = 0; i < n_; ++i) {
    if (deleted_[i]) continue;
    const uint32_t* nbrs = graph_.neighbors(i);
    const uint32_t deg = graph_.degree(i);
    bool touches_deleted = false;
    for (uint32_t e = 0; e < deg; ++e) {
      if (deleted_[nbrs[e]]) {
        touches_deleted = true;
        break;
      }
    }
    if (!touches_deleted) continue;

    cands.clear();
    const float* x = vector(static_cast<uint32_t>(i));
    for (uint32_t e = 0; e < deg; ++e) {
      const uint32_t nb = nbrs[e];
      if (!deleted_[nb]) {
        cands.push_back({Dist(x, vector(nb)), nb});
        continue;
      }
      const uint32_t* second = graph_.neighbors(nb);
      for (uint32_t s = 0; s < graph_.degree(nb); ++s) {
        const uint32_t nn = second[s];
        if (!deleted_[nn] && nn != i) {
          cands.push_back({Dist(x, vector(nn)), nn});
        }
      }
    }
    RobustPrune(x, cands, &pruned);
    graph_.SetNeighbors(i, pruned.data(), static_cast<uint32_t>(pruned.size()));
  }
  // Purge tombstones: clear their adjacency and recycle the slots.
  for (size_t i = 0; i < n_; ++i) {
    if (deleted_[i]) {
      graph_.Clear(i);
      free_slots_.push_back(static_cast<uint32_t>(i));
    }
  }
  // Slots stay flagged deleted until re-used; num_deleted_ is decremented
  // on recycle so live_size() remains correct throughout.
}

void DynamicIndex::Search(const float* query, size_t k, uint32_t window,
                          SearchResult* out) const {
  out->ids.clear();
  out->dists.clear();
  if (live_size() == 0) return;
  // Over-provision the window so tombstones cannot crowd out live results.
  const uint32_t w = std::max<uint32_t>(
      window, static_cast<uint32_t>(k) +
                  static_cast<uint32_t>(std::min<size_t>(num_deleted_, 64)));
  std::vector<Candidate> cands;
  CollectCandidates(query, w, &cands);
  for (const Candidate& c : cands) {
    if (deleted_[c.id]) continue;
    out->ids.push_back(c.id);
    out->dists.push_back(c.dist);
    if (out->ids.size() == k) break;
  }
}

}  // namespace blink
